(* Quickstart: compile a small Fortran 90D/HPF program, run it on a
   simulated 4-processor machine, and look at what the compiler did.

     dune exec examples/quickstart.exe *)

let source =
  {|
      PROGRAM SAXPY
      INTEGER, PARAMETER :: N = 16
      REAL X(16), Y(16)
      REAL ALPHA
C$    TEMPLATE T(16)
C$    ALIGN X(I) WITH T(I)
C$    ALIGN Y(I) WITH T(I)
C$    DISTRIBUTE T(BLOCK)

      ALPHA = 2.5
      FORALL (I = 1:N) X(I) = I
      FORALL (I = 1:N) Y(I) = 100 - I
      Y = ALPHA*X + Y
      PRINT *, 'Y(1) =', Y(1), ' Y(N) =', Y(N), ' SUM =', SUM(Y)
      END
|}

let () =
  (* one call compiles the program: parse -> analyze -> normalize ->
     detect communication -> lower -> optimize *)
  let compiled = F90d.Driver.compile source in

  (* run it on four simulated iPSC/860 nodes *)
  let result =
    F90d.Driver.run ~model:F90d_machine.Model.ipsc860 ~nprocs:4 compiled
  in
  print_string result.F90d.Driver.outcome.F90d_exec.Interp.output;
  Printf.printf "simulated time on 4 nodes: %.6f s,  %d messages\n"
    result.F90d.Driver.elapsed result.F90d.Driver.stats.F90d_machine.Stats.messages;

  (* the gathered global contents of any array are available for checking *)
  let y = F90d.Driver.final result "Y" in
  Format.printf "final Y = %a@." F90d_base.Ndarray.pp y;

  (* and the generated SPMD node program can be inspected *)
  print_endline "---- generated Fortran 77+MP (excerpt) ----";
  let emitted = F90d_ir.Emit_f77.emit_program compiled.F90d.Driver.c_ir in
  String.split_on_char '\n' emitted
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline
