(* Gaussian elimination -- the paper's benchmark application (§8).

   Compiles the Fortran 90D source, runs it on simulated iPSC/860 nodes,
   verifies the solution against a sequential oracle, and compares with
   the hand-written message-passing version the paper measures against.

     dune exec examples/gauss_solver.exe *)

open F90d_machine

let n = 128

let () =
  let compiled = F90d.Driver.compile (F90d.Programs.gauss ~n) in
  let seq = F90d.Baselines.seq_gauss ~n in

  Printf.printf "Gaussian elimination, %dx%d, column BLOCK distributed\n" n (n + 1);
  Printf.printf "%4s  %14s  %14s  %8s\n" "P" "hand-written" "compiler" "ratio";
  List.iter
    (fun p ->
      let r =
        F90d.Driver.run ~collect_finals:(p = 4) ~model:Model.ipsc860
          ~topology:Topology.Hypercube ~nprocs:p compiled
      in
      let h = F90d.Baselines.run_hand_gauss ~nprocs:p ~n () in
      Printf.printf "%4d  %12.3f s  %12.3f s  %8.3f\n" p h.F90d.Baselines.elapsed
        r.F90d.Driver.elapsed
        (r.F90d.Driver.elapsed /. h.F90d.Baselines.elapsed);
      (* verify both against the oracle once *)
      if p = 4 then begin
        let a = F90d.Driver.final r "A" in
        let dev = ref 0. in
        for i = 1 to n do
          let x = F90d_base.Scalar.to_real (F90d_base.Ndarray.get a [| i; n + 1 |]) in
          dev := Float.max !dev (Float.abs (x -. seq.(i - 1)));
          dev :=
            Float.max !dev (Float.abs (h.F90d.Baselines.solution.(i - 1) -. seq.(i - 1)))
        done;
        Printf.printf "      (max deviation from sequential oracle: %.2e)\n" !dev
      end)
    [ 1; 2; 4; 8 ]
