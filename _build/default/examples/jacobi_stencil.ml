(* The paper's canonical-form example (§4, Example 1): 2-D Jacobi
   relaxation with (BLOCK, BLOCK) distribution on a 2x2 logical grid.
   The compiler detects the four (i, i+-1) patterns and generates
   overlap_shift ghost-cell communication; we verify against a sequential
   stencil and compare the two 1993 machines.

     dune exec examples/jacobi_stencil.exe *)

open F90d_machine

let n = 32
let iters = 8

(* sequential oracle for the same program *)
let oracle () =
  let m = n + 2 in
  let a = Array.make_matrix (m + 1) (m + 1) 0. in
  for i = 1 to m do
    for j = 1 to m do
      a.(i).(j) <- float_of_int ((((i * 5) + (j * 3)) mod 13))
    done
  done;
  for _ = 1 to iters do
    let b = Array.map Array.copy a in
    for i = 2 to n + 1 do
      for j = 2 to n + 1 do
        b.(i).(j) <- 0.25 *. (a.(i - 1).(j) +. a.(i + 1).(j) +. a.(i).(j - 1) +. a.(i).(j + 1))
      done
    done;
    for i = 2 to n + 1 do
      for j = 2 to n + 1 do
        a.(i).(j) <- b.(i).(j)
      done
    done
  done;
  a

let () =
  let source = F90d.Programs.jacobi2d ~n ~iters ~p:2 ~q:2 in
  let compiled = F90d.Driver.compile source in

  (* correctness first: ideal machine, compare against the oracle *)
  let r = F90d.Driver.run ~nprocs:4 compiled in
  let got = F90d.Driver.final r "A" in
  let want = oracle () in
  let max_err = ref 0. in
  for i = 1 to n + 2 do
    for j = 1 to n + 2 do
      let v = F90d_base.Scalar.to_real (F90d_base.Ndarray.get got [| i; j |]) in
      max_err := Float.max !max_err (Float.abs (v -. want.(i).(j)))
    done
  done;
  Printf.printf "max |parallel - sequential| = %.3e\n" !max_err;

  (* then performance shape on the paper's machines *)
  List.iter
    (fun model ->
      let r =
        F90d.Driver.run ~collect_finals:false ~model ~topology:Topology.Hypercube ~nprocs:4
          compiled
      in
      Printf.printf "%-10s  time %.4f s   %4d messages   %d bytes\n"
        model.Model.name r.F90d.Driver.elapsed r.F90d.Driver.stats.Stats.messages
        r.F90d.Driver.stats.Stats.bytes)
    [ Model.ipsc860; Model.ncube2 ]
