examples/heat_convergence.ml: F90d F90d_base F90d_exec F90d_machine Float Model Printf Stats Topology
