examples/quickstart.ml: F90d F90d_base F90d_exec F90d_ir F90d_machine Format List Printf String
