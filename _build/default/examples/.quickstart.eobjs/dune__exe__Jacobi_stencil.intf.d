examples/jacobi_stencil.mli:
