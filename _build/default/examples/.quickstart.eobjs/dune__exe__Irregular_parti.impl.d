examples/irregular_parti.ml: F90d F90d_base F90d_machine F90d_opt F90d_runtime Format Printf Schedule
