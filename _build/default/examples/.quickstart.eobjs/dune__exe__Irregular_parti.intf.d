examples/irregular_parti.mli:
