examples/heat_convergence.mli:
