examples/quickstart.mli:
