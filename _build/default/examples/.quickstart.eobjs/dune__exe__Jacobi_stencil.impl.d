examples/jacobi_stencil.ml: Array F90d F90d_base F90d_machine Float List Model Printf Stats Topology
