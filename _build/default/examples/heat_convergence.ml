(* Heat diffusion to convergence: a DO WHILE loop driven by a MAXVAL
   reduction — the loosely synchronous pattern of §2, where sequential
   control flow on every processor is steered by collective reductions.

     dune exec examples/heat_convergence.exe *)

open F90d_machine

let n = 48

let () =
  let compiled = F90d.Driver.compile (F90d.Programs.heat ~n ~tol:0.05) in
  let r = F90d.Driver.run ~model:Model.ipsc860 ~topology:Topology.Hypercube ~nprocs:4 compiled in
  print_string r.F90d.Driver.outcome.F90d_exec.Interp.output;
  Printf.printf "simulated time: %.4f s, %d messages\n" r.F90d.Driver.elapsed
    r.F90d.Driver.stats.Stats.messages;
  (* the steady state is the linear profile between the fixed endpoints *)
  let u = F90d.Driver.final r "U" in
  let max_dev = ref 0. and tol_profile = 12.0 in
  for i = 1 to n do
    let exact = 100. *. float_of_int (i - 1) /. float_of_int (n - 1) in
    let got = F90d_base.Scalar.to_real (F90d_base.Ndarray.get u [| i |]) in
    max_dev := Float.max !max_dev (Float.abs (got -. exact))
  done;
  Printf.printf "max deviation from the linear steady state: %.2f (loose tol %.1f)\n" !max_dev
    tol_profile;
  (* the residual threshold stops well before full convergence; what must
     hold exactly is determinism across processor counts *)
  let r1 = F90d.Driver.run ~nprocs:1 compiled in
  Printf.printf "same answer on 1 processor: %b\n"
    (F90d_base.Ndarray.approx_equal (F90d.Driver.final r1 "U") u)
