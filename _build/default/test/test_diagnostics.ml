(* Diagnostic quality: the compiler must reject programs outside the
   supported subset with located, comprehensible errors rather than
   failing downstream. *)

open F90d_base
open F90d

let checkb = Alcotest.(check bool)

let expect_error ?(substring = "") src =
  match Driver.compile src with
  | _ -> Alcotest.failf "expected a compile-time diagnostic for:\n%s" src
  | exception Diag.Error (loc, msg) ->
      if substring <> "" then
        checkb
          (Printf.sprintf "message %S mentions %S" msg substring)
          true
          (try
             ignore (Str.search_forward (Str.regexp_string substring) msg 0);
             true
           with Not_found -> false);
      (* the front end should point into the source *)
      ignore loc

let expect_runtime_error ?(nprocs = 2) src =
  match Driver.run ~nprocs (Driver.compile src) with
  | _ -> Alcotest.failf "expected a runtime diagnostic for:\n%s" src
  | exception Diag.Error _ -> ()

let test_unknown_template () =
  expect_error ~substring:"unknown template"
    {|
    PROGRAM T
    REAL A(8)
C$  ALIGN A(I) WITH NOPE(I)
    END
    |}

let test_nonaffine_align () =
  expect_error ~substring:"non-affine"
    {|
    PROGRAM T
    REAL A(8)
C$  TEMPLATE TT(64)
C$  ALIGN A(I) WITH TT(I*I)
C$  DISTRIBUTE TT(BLOCK)
    END
    |}

let test_distribute_rank_mismatch () =
  expect_error ~substring:"rank"
    {|
    PROGRAM T
C$  TEMPLATE TT(8, 8)
C$  DISTRIBUTE TT(BLOCK)
    END
    |}

let test_parameter_needs_value () =
  expect_error ~substring:"PARAMETER"
    {|
    PROGRAM T
    INTEGER, PARAMETER :: N
    END
    |}

let test_where_non_assignment () =
  expect_error ~substring:"WHERE"
    {|
    PROGRAM T
    REAL A(8)
    WHERE (A > 0)
      PRINT *, 'no'
    END WHERE
    END
    |}

let test_nonconforming_section () =
  expect_error ~substring:"conform"
    {|
    PROGRAM T
    REAL A(8), B(4, 4)
    A(1:8) = B
    END
    |}

let test_undeclared_variable_runtime () =
  expect_runtime_error
    {|
    PROGRAM T
    REAL X
    X = Y + 1
    END
    |}

let test_call_arity () =
  expect_runtime_error
    {|
    PROGRAM T
    REAL X
    CALL S(X, X)
    END
    SUBROUTINE S(A)
    REAL A
    END
    |}

let test_transformational_in_forall () =
  expect_runtime_error
    {|
    PROGRAM T
    REAL A(8), B(8)
C$  DISTRIBUTE A(BLOCK)
    FORALL (I = 1:8) A(I) = SUM(B)
    END
    |}

let test_grid_size_mismatch () =
  let compiled =
    Driver.compile
      {|
      PROGRAM T
      REAL A(8)
C$    PROCESSORS P(3)
C$    DISTRIBUTE A(BLOCK)
      END
      |}
  in
  match Driver.run ~nprocs:4 compiled with
  | _ -> Alcotest.fail "expected grid/machine mismatch"
  | exception Diag.Error (_, msg) ->
      checkb "mentions machine size" true
        (try
           ignore (Str.search_forward (Str.regexp_string "machine") msg 0);
           true
         with Not_found -> false)

let test_located_syntax_error () =
  match Driver.compile "PROGRAM T\nX = (1 +\nEND" with
  | _ -> Alcotest.fail "expected syntax error"
  | exception Diag.Error (loc, _) ->
      Alcotest.(check int) "error on line 2 or 3" 0 (if loc.Loc.line >= 2 then 0 else 1)

let () =
  Alcotest.run "f90d_diagnostics"
    [
      ( "compile-time",
        [
          Alcotest.test_case "unknown template" `Quick test_unknown_template;
          Alcotest.test_case "non-affine align" `Quick test_nonaffine_align;
          Alcotest.test_case "distribute rank" `Quick test_distribute_rank_mismatch;
          Alcotest.test_case "parameter value" `Quick test_parameter_needs_value;
          Alcotest.test_case "where body" `Quick test_where_non_assignment;
          Alcotest.test_case "non-conforming section" `Quick test_nonconforming_section;
          Alcotest.test_case "located syntax error" `Quick test_located_syntax_error;
        ] );
      ( "run-time",
        [
          Alcotest.test_case "undeclared variable" `Quick test_undeclared_variable_runtime;
          Alcotest.test_case "call arity" `Quick test_call_arity;
          Alcotest.test_case "reduction in forall" `Quick test_transformational_in_forall;
          Alcotest.test_case "grid size mismatch" `Quick test_grid_size_mismatch;
        ] );
    ]
