(* Execution-semantics corner cases of the SPMD interpreter: processor
   masking via guards, even iteration partitioning, whole-array intrinsic
   movement through the compiler, CYCLIC(k) distributions, sequential
   control flow, and scalar coercions. *)

open F90d_base
open F90d

let checkb = Alcotest.(check bool)

let compile_run ?flags ?(nprocs = 4) src = Driver.run ~nprocs (Driver.compile ?flags src)

let check_reals r name expected =
  let got = Driver.final r name in
  let want = Ndarray.of_reals [| Array.length expected |] expected in
  if not (Ndarray.approx_equal ~eps:1e-9 got want) then
    Alcotest.failf "%s: got %s want %s" name
      (Format.asprintf "%a" Ndarray.pp got)
      (Format.asprintf "%a" Ndarray.pp want)

let test_guard_masks_processors () =
  (* writes to a single owned column: only one processor iterates, but all
     join the collective phases *)
  let r =
    compile_run
      {|
      PROGRAM G1
      REAL A(4, 8), B(4, 8)
C$    TEMPLATE T(8)
C$    ALIGN A(I, J) WITH T(J)
C$    ALIGN B(I, J) WITH T(J)
C$    DISTRIBUTE T(BLOCK)
      FORALL (I = 1:4, J = 1:8) B(I, J) = 10*I + J
      FORALL (I = 1:4) A(I, 7) = B(I, 2)
      END
      |}
  in
  let a = Driver.final r "A" in
  for i = 1 to 4 do
    for j = 1 to 8 do
      let expect = if j = 7 then float_of_int ((10 * i) + 2) else 0. in
      Alcotest.(check (float 1e-9)) "A" expect (Scalar.to_real (Ndarray.get a [| i; j |]))
    done
  done

let test_even_partition_counts () =
  (* non-canonical lhs: every processor computes a block of iterations and
     the results land via postcomp_write; total writes must cover exactly
     the image *)
  let r =
    compile_run ~nprocs:3
      {|
      PROGRAM G2
      REAL A(18), B(6)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(*)
C$    DISTRIBUTE B(BLOCK)
      FORALL (I = 1:6) B(I) = I + 0.25
      FORALL (I = 1:6) A(3*I) = B(I)
      END
      |}
  in
  let a = Driver.final r "A" in
  for g = 1 to 18 do
    let expect = if g mod 3 = 0 then (float_of_int (g / 3)) +. 0.25 else 0. in
    Alcotest.(check (float 1e-9)) "A" expect (Scalar.to_real (Ndarray.get a [| g |]))
  done

let test_cyclic_k_distribution () =
  let r =
    compile_run
      {|
      PROGRAM G3
      REAL A(16), B(16)
C$    TEMPLATE T(16)
C$    ALIGN A(I) WITH T(I)
C$    ALIGN B(I) WITH T(I)
C$    DISTRIBUTE T(CYCLIC(2))
      FORALL (I = 1:16) B(I) = 3*I
      FORALL (I = 1:16) A(I) = B(I) + 1
      END
      |}
  in
  check_reals r "A" (Array.init 16 (fun i -> float_of_int ((3 * (i + 1)) + 1)))

let test_movers_through_compiler () =
  let r =
    compile_run
      {|
      PROGRAM G4
      REAL A(8), E(8), V(8), S2(3, 8), RS(4, 2)
      LOGICAL M(8)
      REAL F(8), U(8)
C$    TEMPLATE T(8)
C$    ALIGN A(I) WITH T(I)
C$    ALIGN E(I) WITH T(I)
C$    ALIGN V(I) WITH T(I)
C$    ALIGN M(I) WITH T(I)
C$    ALIGN F(I) WITH T(I)
C$    ALIGN U(I) WITH T(I)
C$    ALIGN S2(J, I) WITH T(I)
C$    DISTRIBUTE T(BLOCK)
      FORALL (I = 1:8) A(I) = I
      FORALL (I = 1:8) M(I) = MOD(I, 2) == 1
      FORALL (I = 1:8) F(I) = -I
      E = EOSHIFT(A, 2, -1.0)
      V = PACK(A, M)
      U = UNPACK(V, M, F)
      S2 = SPREAD(A, 1, 3)
      RS = RESHAPE(A, 8)
      END
      |}
  in
  check_reals r "E" [| 3.; 4.; 5.; 6.; 7.; 8.; -1.; -1. |];
  check_reals r "V" [| 1.; 3.; 5.; 7.; 0.; 0.; 0.; 0. |];
  check_reals r "U" [| 1.; -2.; 3.; -4.; 5.; -6.; 7.; -8. |];
  let s2 = Driver.final r "S2" in
  for j = 1 to 3 do
    for i = 1 to 8 do
      Alcotest.(check (float 1e-9)) "spread" (float_of_int i)
        (Scalar.to_real (Ndarray.get s2 [| j; i |]))
    done
  done;
  let rs = Driver.final r "RS" in
  (* column-major reshape of 1..8 into 4x2 *)
  Alcotest.(check (float 1e-9)) "reshape(1,1)" 1. (Scalar.to_real (Ndarray.get rs [| 1; 1 |]));
  Alcotest.(check (float 1e-9)) "reshape(4,2)" 8. (Scalar.to_real (Ndarray.get rs [| 4; 2 |]))

let test_negative_stride_do () =
  let r =
    compile_run
      {|
      PROGRAM G5
      INTEGER K
      REAL A(6)
      DO K = 6, 1, -1
        A(K) = 7 - K
      END DO
      END
      |}
  in
  check_reals r "A" [| 6.; 5.; 4.; 3.; 2.; 1. |]

let test_while_and_nested_if () =
  let r =
    compile_run
      {|
      PROGRAM G6
      INTEGER K
      REAL S
      S = 0.0
      K = 1
      DO WHILE (K <= 10)
        IF (MOD(K, 2) == 0) THEN
          IF (K > 5) THEN
            S = S + K
          END IF
        END IF
        K = K + 1
      END DO
      END
      |}
  in
  checkb "6+8+10" true (Scalar.equal (Driver.final_scalar r "S") (Scalar.Real 24.))

let test_integer_coercion () =
  let r =
    compile_run
      {|
      PROGRAM G7
      INTEGER K
      REAL X
      X = 7.9
      K = X / 2.0
      END
      |}
  in
  (* INTEGER = REAL truncates *)
  checkb "coerced" true (Scalar.equal (Driver.final_scalar r "K") (Scalar.Int 3))

let test_forall_descending_range () =
  let r =
    compile_run
      {|
      PROGRAM G8
      REAL A(8)
C$    DISTRIBUTE A(BLOCK)
      FORALL (I = 8:1:-1) A(I) = I*I
      END
      |}
  in
  check_reals r "A" (Array.init 8 (fun i -> float_of_int ((i + 1) * (i + 1))))

let test_empty_iteration_space () =
  (* K-dependent empty ranges must be harmless (the GE first step) *)
  let r =
    compile_run
      {|
      PROGRAM G9
      INTEGER K
      REAL A(8), B(8)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:8) B(I) = I
      DO K = 1, 3
        FORALL (I = 1:K-1) A(I) = B(I) + 100
      END DO
      END
      |}
  in
  check_reals r "A" [| 101.; 102.; 0.; 0.; 0.; 0.; 0.; 0. |]

let test_subroutine_local_arrays () =
  (* callee-local distributed arrays live only for the call *)
  let r =
    compile_run
      {|
      PROGRAM G10
      REAL X(8), S
C$    DISTRIBUTE X(BLOCK)
      FORALL (I = 1:8) X(I) = I
      CALL NORM(X, S)
      END

      SUBROUTINE NORM(A, OUT)
      REAL A(8), OUT
      REAL SQ(8)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN SQ(I) WITH A(I)
      FORALL (I = 1:8) SQ(I) = A(I)*A(I)
      OUT = SQRT(SUM(SQ))
      END
      |}
  in
  let expect = sqrt (float_of_int (8 * 9 * 17 / 6)) in
  Alcotest.(check (float 1e-9)) "norm" expect (Scalar.to_real (Driver.final_scalar r "S"))

let test_print_array_and_scalars () =
  let r =
    compile_run
      {|
      PROGRAM G11
      REAL A(3)
C$    DISTRIBUTE A(BLOCK)
      FORALL (I = 1:3) A(I) = I * 1.5
      PRINT *, 'A:', A
      PRINT *, 'n=', 3, 'done'
      END
      |}
  in
  let out = r.Driver.outcome.F90d_exec.Interp.output in
  checkb "array printed" true
    (try
       ignore (Str.search_forward (Str.regexp_string "1.5; 3; 4.5") out 0);
       true
     with Not_found -> false);
  checkb "two lines" true (List.length (String.split_on_char '\n' (String.trim out)) = 2)

let () =
  Alcotest.run "f90d_exec"
    [
      ( "partitioning",
        [
          Alcotest.test_case "guards mask processors" `Quick test_guard_masks_processors;
          Alcotest.test_case "even partitioning" `Quick test_even_partition_counts;
          Alcotest.test_case "cyclic(k)" `Quick test_cyclic_k_distribution;
          Alcotest.test_case "descending forall" `Quick test_forall_descending_range;
          Alcotest.test_case "empty ranges" `Quick test_empty_iteration_space;
        ] );
      ( "movers",
        [ Alcotest.test_case "eoshift/pack/unpack/spread/reshape" `Quick test_movers_through_compiler ]
      );
      ( "control",
        [
          Alcotest.test_case "negative stride DO" `Quick test_negative_stride_do;
          Alcotest.test_case "while + nested if" `Quick test_while_and_nested_if;
          Alcotest.test_case "integer coercion" `Quick test_integer_coercion;
          Alcotest.test_case "subroutine locals" `Quick test_subroutine_local_arrays;
          Alcotest.test_case "print" `Quick test_print_array_and_scalars;
        ] );
    ]
