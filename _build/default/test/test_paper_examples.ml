(* The paper's worked examples (§5.3.1), compiled verbatim: the generated
   Fortran 77+MP must contain the same calls the paper prints, and the
   programs must execute correctly.  Also: collectives on a one-processor
   machine (every tree degenerates to a no-op). *)

open F90d_base
open F90d

let checkb = Alcotest.(check bool)

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

(* All three §5.3.1 examples share the paper's mapping:
   PROCESSORS(P,Q); A, B aligned to TEMPL(BLOCK, BLOCK). *)
let preamble =
  {|
      PROGRAM PAPER531
      INTEGER, PARAMETER :: N = 8
      INTEGER, PARAMETER :: M = 8
      INTEGER S
      REAL A(8, 8), B(8, 8)
C$    PROCESSORS P(2, 2)
C$    TEMPLATE TEMPL(8, 8)
C$    ALIGN A(I, J) WITH TEMPL(I, J)
C$    ALIGN B(I, J) WITH TEMPL(I, J)
C$    DISTRIBUTE TEMPL(BLOCK, BLOCK)
      S = 1
      FORALL (I = 1:N, J = 1:M) B(I, J) = 10*I + J
|}

let emit body =
  let compiled = Driver.compile (preamble ^ body ^ "\n      END\n") in
  (compiled, F90d_ir.Emit_f77.emit_program compiled.Driver.c_ir)

let test_example1_transfer () =
  (* FORALL(I=1:N) A(I,8)=B(I,3): one column of grid processors
     communicates with another (paper's Figure 4a) *)
  let compiled, text = emit "      FORALL (I = 1:N) A(I, 8) = B(I, 3)" in
  checkb "emits transfer with both endpoints" true
    (contains text "call transfer(B, B_DAD, TMP");
  checkb "source is column 3" true (contains text "source=global_to_proc(3)");
  checkb "dest is column 8" true (contains text "dest=global_to_proc(8)");
  checkb "set_BOUND before the loop" true (contains text "call set_BOUND(lb1, ub1, st1, 1, N, 1");
  let r = Driver.run ~nprocs:4 compiled in
  let a = Driver.final r "A" in
  for i = 1 to 8 do
    Alcotest.(check (float 1e-9)) "A(I,8)=B(I,3)"
      (float_of_int ((10 * i) + 3))
      (Scalar.to_real (Ndarray.get a [| i; 8 |]))
  done

let test_example2_multicast () =
  (* FORALL(I,J) A(I,J)=B(I,3): broadcast along dimension 2 of the grid
     (paper's Figure 4b) *)
  let compiled, text = emit "      FORALL (I = 1:N, J = 1:M) A(I, J) = B(I, 3)" in
  checkb "emits multicast along dim 2" true
    (contains text "call multicast(B, B_DAD, TMP");
  checkb "root is the owner of column 3" true (contains text "source_proc=global_to_proc(3)");
  let r = Driver.run ~nprocs:4 compiled in
  let a = Driver.final r "A" in
  for i = 1 to 8 do
    for j = 1 to 8 do
      Alcotest.(check (float 1e-9)) "A(I,J)=B(I,3)"
        (float_of_int ((10 * i) + 3))
        (Scalar.to_real (Ndarray.get a [| i; j |]))
    done
  done

let test_example3_multicast_shift () =
  (* FORALL(I,J) A(I,J)=B(3,J+S): the fused multicast_shift primitive *)
  let compiled, text = emit "      FORALL (I = 1:N, J = 1:M-1) A(I, J) = B(3, J+S)" in
  checkb "emits the fused primitive" true (contains text "call multicast_shift(B, B_DAD, TMP");
  checkb "shift amount is the scalar" true (contains text "shift=S");
  let r = Driver.run ~nprocs:4 compiled in
  let a = Driver.final r "A" in
  for i = 1 to 8 do
    for j = 1 to 7 do
      Alcotest.(check (float 1e-9)) "A(I,J)=B(3,J+S)"
        (float_of_int (30 + j + 1))
        (Scalar.to_real (Ndarray.get a [| i; j |]))
    done
  done

let test_paper_jacobi_statement () =
  (* §4 Example 1's canonical-form relaxation statement compiles to
     overlap shifts in both dimensions and runs correctly *)
  let src =
    {|
      PROGRAM JREX
      INTEGER, PARAMETER :: N = 8
      REAL A(8, 8), B(8, 8)
C$    PROCESSORS P(2, 2)
C$    TEMPLATE T(8, 8)
C$    ALIGN A(I, J) WITH T(I, J)
C$    ALIGN B(I, J) WITH T(I, J)
C$    DISTRIBUTE T(BLOCK, BLOCK)
      FORALL (I = 1:N, J = 1:N) A(I, J) = I + J
      FORALL (I = 2:N-1, J = 2:N-1)
        B(I, J) = 0.25*(A(I-1, J) + A(I+1, J) + A(I, J-1) + A(I, J+1))
      END FORALL
      END
|}
  in
  let compiled = Driver.compile src in
  let text = F90d_ir.Emit_f77.emit_program compiled.Driver.c_ir in
  checkb "overlap shifts in dim 1" true (contains text "call overlap_shift(A, A_DAD, width=1, dim=1)");
  checkb "overlap shifts in dim 2" true (contains text "call overlap_shift(A, A_DAD, width=1, dim=2)");
  let r = Driver.run ~nprocs:4 compiled in
  let b = Driver.final r "B" in
  for i = 2 to 7 do
    for j = 2 to 7 do
      (* the 5-point average of i+j is i+j *)
      Alcotest.(check (float 1e-9)) "relaxation" (float_of_int (i + j))
        (Scalar.to_real (Ndarray.get b [| i; j |]))
    done
  done

let test_single_processor_degenerate () =
  (* every collective must degenerate gracefully on one processor *)
  let r =
    Driver.run ~nprocs:1
      (Driver.compile
         {|
      PROGRAM ONE
      REAL A(6), B(6), S
      INTEGER V(6)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
C$    ALIGN V(I) WITH A(I)
      FORALL (I = 1:6) B(I) = I
      FORALL (I = 1:6) V(I) = 7 - I
      FORALL (I = 1:5) A(I) = B(I+1)
      FORALL (I = 1:6) A(I) = A(I) + B(V(I))
      S = SUM(A)
      B = CSHIFT(A, 2)
      END
      |})
  in
  Alcotest.(check int) "no messages on one processor" 0 r.Driver.stats.F90d_machine.Stats.messages;
  checkb "sum computed" true (Scalar.to_real (Driver.final_scalar r "S") > 0.)

let () =
  Alcotest.run "f90d_paper_examples"
    [
      ( "section 5.3.1",
        [
          Alcotest.test_case "example 1: transfer" `Quick test_example1_transfer;
          Alcotest.test_case "example 2: multicast" `Quick test_example2_multicast;
          Alcotest.test_case "example 3: multicast_shift" `Quick test_example3_multicast_shift;
        ] );
      ( "section 4",
        [ Alcotest.test_case "jacobi canonical form" `Quick test_paper_jacobi_statement ] );
      ( "degenerate",
        [ Alcotest.test_case "single processor" `Quick test_single_processor_degenerate ] );
    ]
