test/test_base.ml: Affine Alcotest Array F90d_base List Ndarray QCheck QCheck_alcotest Scalar Util
