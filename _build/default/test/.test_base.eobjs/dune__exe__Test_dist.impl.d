test/test_dist.ml: Affine Alcotest Array Bounds Dad Distrib F90d_base F90d_dist F90d_machine Gen Grid Layout List Ndarray QCheck QCheck_alcotest Scalar Util
