test/test_frontend.ml: Affine Alcotest Array Ast Diag F90d_base F90d_dist F90d_frontend Format Lexer List Normalize Parser Printf Scalar Sema Token
