test/test_machine.ml: Alcotest Array Engine F90d_base F90d_machine List Message Model QCheck QCheck_alcotest Scalar Stats Topology
