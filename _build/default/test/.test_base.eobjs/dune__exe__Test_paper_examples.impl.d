test/test_paper_examples.ml: Alcotest Driver F90d F90d_base F90d_ir F90d_machine Ndarray Scalar Str
