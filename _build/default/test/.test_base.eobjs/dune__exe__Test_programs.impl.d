test/test_programs.ml: Alcotest Array Baselines Driver F90d F90d_base F90d_exec F90d_ir F90d_machine F90d_opt Float List Model Ndarray Printf Programs QCheck QCheck_alcotest Scalar Str Topology
