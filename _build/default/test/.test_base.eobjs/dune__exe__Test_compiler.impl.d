test/test_compiler.ml: Alcotest Array Driver F90d F90d_base F90d_exec F90d_machine F90d_opt Float Format List Model Ndarray Printf Scalar Stats
