test/test_diagnostics.ml: Alcotest Diag Driver F90d F90d_base Loc Printf Str
