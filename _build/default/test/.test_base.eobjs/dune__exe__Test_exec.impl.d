test/test_exec.ml: Alcotest Array Driver F90d F90d_base F90d_exec Format List Ndarray Scalar Str String
