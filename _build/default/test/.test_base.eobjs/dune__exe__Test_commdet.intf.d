test/test_commdet.mli:
