test/test_commdet.ml: Alcotest Array Ast F90d_commdet F90d_frontend List Option Parser Pattern Sema
