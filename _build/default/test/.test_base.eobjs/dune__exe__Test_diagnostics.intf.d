test/test_diagnostics.mli:
