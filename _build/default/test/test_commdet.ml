open F90d_frontend
open F90d_commdet

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* A unit environment with the standard mapping of the paper's §5.3.1
   examples: A, B aligned to TEMPL(BLOCK, BLOCK) on P(2, 2), plus some
   extra shapes. *)
let env =
  Sema.main_env
    (Sema.analyze
       (Parser.parse ~file:"t"
          {|
      PROGRAM T
      INTEGER, PARAMETER :: N = 16
      INTEGER S, D
      REAL A(16, 16), B(16, 16)
      REAL X(16), Y(16), R(16), CYC(16)
      REAL G(16, 16)
      INTEGER V(16)
      REAL AFF(33)
C$    PROCESSORS P(2, 2)
C$    TEMPLATE TEMPL(16, 16)
C$    TEMPLATE T1(16)
C$    TEMPLATE T33(33)
C$    ALIGN A(I, J) WITH TEMPL(I, J)
C$    ALIGN B(I, J) WITH TEMPL(I, J)
C$    ALIGN X(I) WITH T1(I)
C$    ALIGN Y(I) WITH T1(I)
C$    ALIGN V(I) WITH T1(I)
C$    ALIGN AFF(I) WITH T33(I)
C$    ALIGN G(I, J) WITH T1(J)
C$    DISTRIBUTE TEMPL(BLOCK, BLOCK)
C$    DISTRIBUTE T1(BLOCK)
C$    DISTRIBUTE T33(BLOCK)
C$    DISTRIBUTE CYC(CYCLIC)
      END
      |}))

let plan_of ~vars ?mask lhs rhs =
  let parse = Parser.parse_expr_string in
  let vars =
    List.map
      (fun (v, lo, hi) -> (v, { Ast.lo = parse lo; hi = parse hi; st = None }))
      vars
  in
  Pattern.analyze_forall env ~vars ~mask:(Option.map parse mask) ~lhs:(parse lhs)
    ~rhs:(parse rhs)

let rhs_plan plan name =
  match
    List.find_opt (fun ((r : Ast.ref_), _) -> r.Ast.base = name) plan.Pattern.refs
  with
  | Some (_, p) -> p
  | None -> Alcotest.failf "no plan recorded for %s" name

let plan_kind = function
  | Pattern.Direct -> "direct"
  | Pattern.Structured _ -> "structured"
  | Pattern.Precomp_read -> "precomp"
  | Pattern.Gather -> "gather"
  | Pattern.Concat -> "concat"

let lhs_kind plan =
  match plan.Pattern.lhs with
  | Pattern.Lhs_canonical _ -> "canonical"
  | Pattern.Lhs_replicated -> "replicated"
  | Pattern.Lhs_postcomp -> "postcomp"
  | Pattern.Lhs_scatter -> "scatter"

let tag_at plan name d =
  match rhs_plan plan name with
  | Pattern.Structured tags -> tags.(d)
  | p -> Alcotest.failf "%s is %s, not structured" name (plan_kind p)

(* the paper's §5.3.1 example 1: FORALL(I=1:N) A(I,8)=B(I,3) *)
let test_paper_transfer_example () =
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "A(I, 8)" "B(I, 3)" in
  checks "lhs" "canonical" (lhs_kind plan);
  (match plan.Pattern.lhs with
  | Pattern.Lhs_canonical { guards; _ } ->
      Alcotest.(check int) "guard on dim 2" 1 (List.length guards)
  | _ -> ());
  (match tag_at plan "B" 0 with
  | Pattern.No_comm -> ()
  | _ -> Alcotest.fail "dim 1 should be no-comm");
  match tag_at plan "B" 1 with
  | Pattern.Transfer _ -> ()
  | _ -> Alcotest.fail "dim 2 should be transfer"

(* example 2: FORALL(I,J) A(I,J)=B(I,3) -> multicast *)
let test_paper_multicast_example () =
  let plan =
    plan_of ~vars:[ ("I", "1", "16"); ("J", "1", "16") ] "A(I, J)" "B(I, 3)"
  in
  match tag_at plan "B" 1 with
  | Pattern.Multicast _ -> ()
  | _ -> Alcotest.fail "dim 2 should be multicast"

(* example 3: FORALL(I,J) A(I,J)=B(3,J+S) -> multicast + temporary shift *)
let test_paper_multicast_shift_example () =
  let plan =
    plan_of ~vars:[ ("I", "1", "16"); ("J", "1", "14") ] "A(I, J)" "B(3, J+S)"
  in
  (match tag_at plan "B" 0 with
  | Pattern.Multicast _ -> ()
  | _ -> Alcotest.fail "dim 1 should be multicast");
  match tag_at plan "B" 1 with
  | Pattern.Temp_shift _ -> ()
  | _ -> Alcotest.fail "dim 2 should be temporary shift"

let test_jacobi_overlap () =
  let plan = plan_of ~vars:[ ("I", "2", "15") ] "X(I)" "Y(I-1) + Y(I+1)" in
  let tags =
    List.filter_map
      (fun ((r : Ast.ref_), p) ->
        if r.Ast.base = "Y" then
          match p with Pattern.Structured t -> Some t.(0) | _ -> None
        else None)
      plan.Pattern.refs
  in
  checkb "two overlap shifts" true
    (match tags with
    | [ Pattern.Overlap a; Pattern.Overlap b ] -> (a = -1 && b = 1) || (a = 1 && b = -1)
    | _ -> false)

let test_canonical_no_comm () =
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "X(I)" "Y(I) * 2.0" in
  checks "direct" "direct" (plan_kind (rhs_plan plan "Y"))

let test_invertible_precomp () =
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "X(I)" "AFF(2*I + 1)" in
  checks "precomp" "precomp" (plan_kind (rhs_plan plan "AFF"))

let test_vector_gather () =
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "X(I)" "Y(V(I))" in
  checks "gather" "gather" (plan_kind (rhs_plan plan "Y"));
  (* the indirection array itself is aligned: direct *)
  checks "V direct" "direct" (plan_kind (rhs_plan plan "V"))

let test_vector_lhs_scatter () =
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "X(V(I))" "Y(I)" in
  checks "lhs" "scatter" (lhs_kind plan);
  (* under even iterations the rhs reads through an inspector *)
  checks "rhs precomp" "precomp" (plan_kind (rhs_plan plan "Y"))

let test_affine_lhs_postcomp () =
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "AFF(2*I)" "X(I)" in
  checks "lhs" "postcomp" (lhs_kind plan)

let test_unknown_two_vars () =
  let plan =
    plan_of ~vars:[ ("I", "1", "4"); ("J", "0", "3") ] "X(I)" "Y(I + J)"
  in
  checks "gather for i+j" "gather" (plan_kind (rhs_plan plan "Y"))

let test_misaligned_distributions () =
  (* CYC is cyclic, X is block: same subscript but layouts differ *)
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "X(I)" "CYC(I)" in
  checks "misaligned -> inspector" "precomp" (plan_kind (rhs_plan plan "CYC"))

let test_replicated_lhs_const_multicast () =
  (* the Gaussian-elimination shape: G has a replicated first dimension, so the pivot column
     G(:, 5) is a slice an owner can multicast (the refinement over the
     paper's line 11) *)
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "R(I)" "G(I, 5)" in
  checks "lhs replicated" "replicated" (lhs_kind plan);
  match tag_at plan "G" 1 with
  | Pattern.Multicast _ -> ()
  | _ -> Alcotest.fail "constant subscript should multicast the slice"

let test_replicated_lhs_fully_distributed_concat () =
  (* when the rhs varies over a distributed dimension the whole array is
     concatenated (the paper's line 11 fallback) *)
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "R(I)" "A(I, 5)" in
  checks "concat fallback" "concat" (plan_kind (rhs_plan plan "A"))

let test_replicated_lhs_varying_concat () =
  let plan = plan_of ~vars:[ ("I", "1", "16") ] "R(I)" "X(I) + 1.0" in
  checks "concat" "concat" (plan_kind (rhs_plan plan "X"))

let test_mask_refs_planned () =
  let plan =
    plan_of ~vars:[ ("I", "1", "16") ] ~mask:"Y(I) > 0.0" "X(I)" "1.0"
  in
  checks "mask ref direct" "direct" (plan_kind (rhs_plan plan "Y"))

let test_scalar_subscript_shift () =
  let plan = plan_of ~vars:[ ("I", "1", "10") ] "X(I)" "Y(I + S)" in
  match tag_at plan "Y" 0 with
  | Pattern.Temp_shift _ -> ()
  | _ -> Alcotest.fail "i+s should be a temporary shift"

let test_large_const_shift_demoted () =
  (* |c| beyond the overlap bound falls back to temporary shift *)
  let plan = plan_of ~vars:[ ("I", "1", "8") ] "X(I)" "Y(I + 7)" in
  match tag_at plan "Y" 0 with
  | Pattern.Temp_shift _ -> ()
  | _ -> Alcotest.fail "wide shift should use a temporary"

let () =
  Alcotest.run "f90d_commdet"
    [
      ( "paper examples",
        [
          Alcotest.test_case "transfer (ex.1)" `Quick test_paper_transfer_example;
          Alcotest.test_case "multicast (ex.2)" `Quick test_paper_multicast_example;
          Alcotest.test_case "multicast_shift (ex.3)" `Quick test_paper_multicast_shift_example;
          Alcotest.test_case "jacobi overlap" `Quick test_jacobi_overlap;
        ] );
      ( "table 1",
        [
          Alcotest.test_case "no comm" `Quick test_canonical_no_comm;
          Alcotest.test_case "i+s temp shift" `Quick test_scalar_subscript_shift;
          Alcotest.test_case "wide shift demotes" `Quick test_large_const_shift_demoted;
        ] );
      ( "table 2",
        [
          Alcotest.test_case "invertible precomp" `Quick test_invertible_precomp;
          Alcotest.test_case "vector gather" `Quick test_vector_gather;
          Alcotest.test_case "vector lhs scatter" `Quick test_vector_lhs_scatter;
          Alcotest.test_case "affine lhs postcomp" `Quick test_affine_lhs_postcomp;
          Alcotest.test_case "unknown i+j" `Quick test_unknown_two_vars;
          Alcotest.test_case "misaligned layouts" `Quick test_misaligned_distributions;
        ] );
      ( "replication",
        [
          Alcotest.test_case "const -> multicast" `Quick test_replicated_lhs_const_multicast;
          Alcotest.test_case "2-D distributed -> concat" `Quick
            test_replicated_lhs_fully_distributed_concat;
          Alcotest.test_case "varying -> concat" `Quick test_replicated_lhs_varying_concat;
          Alcotest.test_case "mask references" `Quick test_mask_refs_planned;
        ] );
    ]
