open F90d_base

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Util                                                                *)
(* ------------------------------------------------------------------ *)

let test_floor_div () =
  check "7/2" 3 (Util.floor_div 7 2);
  check "-7/2" (-4) (Util.floor_div (-7) 2);
  check "7/-2" (-4) (Util.floor_div 7 (-2));
  check "-7/-2" 3 (Util.floor_div (-7) (-2));
  check "0/5" 0 (Util.floor_div 0 5)

let test_ceil_div () =
  check "7/2" 4 (Util.ceil_div 7 2);
  check "-7/2" (-3) (Util.ceil_div (-7) 2);
  check "6/2" 3 (Util.ceil_div 6 2);
  check "0/3" 0 (Util.ceil_div 0 3)

let test_modulo () =
  check "7%3" 1 (Util.modulo 7 3);
  check "-7%3" 2 (Util.modulo (-7) 3);
  check "-6%3" 0 (Util.modulo (-6) 3)

let test_gcd_egcd () =
  check "gcd" 6 (Util.gcd 12 18);
  check "gcd0" 5 (Util.gcd 0 5);
  let g, x, y = Util.egcd 240 46 in
  check "egcd g" 2 g;
  check "bezout" 2 ((240 * x) + (46 * y))

let test_crt () =
  (* x = 2 mod 3, x = 3 mod 5 -> x = 8 mod 15 *)
  (match Util.crt_first_ge ~lo:0 ~r1:2 ~m1:3 ~r2:3 ~m2:5 with
  | Some x -> check "crt 8" 8 x
  | None -> Alcotest.fail "crt: expected solution");
  (match Util.crt_first_ge ~lo:10 ~r1:2 ~m1:3 ~r2:3 ~m2:5 with
  | Some x -> check "crt 23" 23 x
  | None -> Alcotest.fail "crt: expected solution");
  (* incompatible: x = 0 mod 2, x = 1 mod 4 *)
  (match Util.crt_first_ge ~lo:0 ~r1:0 ~m1:2 ~r2:1 ~m2:4 with
  | None -> ()
  | Some x -> Alcotest.failf "crt: expected no solution, got %d" x);
  (* non-coprime compatible: x = 2 mod 4, x = 0 mod 6 -> 6 mod 12 *)
  match Util.crt_first_ge ~lo:0 ~r1:2 ~m1:4 ~r2:0 ~m2:6 with
  | Some x -> check "crt 6" 6 x
  | None -> Alcotest.fail "crt: expected solution"

let prop_crt =
  QCheck.Test.make ~name:"crt_first_ge agrees with brute force" ~count:500
    QCheck.(quad (int_range 1 12) (int_range 1 12) (int_range 0 11) (int_range 0 11))
    (fun (m1, m2, r1, r2) ->
      let r1 = r1 mod m1 and r2 = r2 mod m2 in
      let lo = 3 in
      let brute =
        List.find_opt (fun x -> x mod m1 = r1 && x mod m2 = r2) (Util.range lo (lo + (m1 * m2 * 2)))
      in
      Util.crt_first_ge ~lo ~r1 ~m1 ~r2 ~m2 = brute)

let test_pow2_log2 () =
  checkb "16 pow2" true (Util.is_pow2 16);
  checkb "12 pow2" false (Util.is_pow2 12);
  checkb "0 pow2" false (Util.is_pow2 0);
  check "ilog2 1" 0 (Util.ilog2 1);
  check "ilog2 16" 4 (Util.ilog2 16);
  check "ilog2 17" 4 (Util.ilog2 17);
  check "ceil_log2 17" 5 (Util.ceil_log2 17);
  check "ceil_log2 16" 4 (Util.ceil_log2 16)

let prop_gray =
  QCheck.Test.make ~name:"gray codes of neighbours differ in one bit" ~count:200
    QCheck.(int_range 0 1000)
    (fun n -> Util.popcount (Util.gray n lxor Util.gray (n + 1)) = 1)

let prop_gray_inv =
  QCheck.Test.make ~name:"gray_inverse inverts gray" ~count:200
    QCheck.(int_range 0 100000)
    (fun n -> Util.gray_inverse (Util.gray n) = n)

(* ------------------------------------------------------------------ *)
(* Scalar                                                              *)
(* ------------------------------------------------------------------ *)

let test_scalar_promotion () =
  checkb "int+int" true (Scalar.equal (Scalar.add (Int 2) (Int 3)) (Int 5));
  checkb "int+real" true (Scalar.equal (Scalar.add (Int 2) (Real 0.5)) (Real 2.5));
  checkb "int/int" true (Scalar.equal (Scalar.div (Int 7) (Int 2)) (Int 3));
  checkb "real/int" true (Scalar.equal (Scalar.div (Real 7.) (Int 2)) (Real 3.5));
  checkb "int**int" true (Scalar.equal (Scalar.pow (Int 2) (Int 10)) (Int 1024));
  checkb "neg" true (Scalar.equal (Scalar.neg (Int 4)) (Int (-4)))

let test_scalar_compare () =
  checkb "2<3" true (Scalar.to_bool (Scalar.cmp_lt (Int 2) (Int 3)));
  checkb "2.5>=2" true (Scalar.to_bool (Scalar.cmp_ge (Real 2.5) (Int 2)));
  checkb "min" true (Scalar.equal (Scalar.min2 (Real 1.5) (Int 2)) (Real 1.5));
  checkb "max" true (Scalar.equal (Scalar.max2 (Int 5) (Real 2.5)) (Int 5));
  checkb "and" true (Scalar.to_bool (Scalar.and_ (Log true) (Log true)));
  checkb "not" false (Scalar.to_bool (Scalar.not_ (Log true)))

let test_scalar_errors () =
  Alcotest.check_raises "to_bool of int" (Failure "F90D bug: scalar: expected logical")
    (fun () -> ignore (Scalar.to_bool (Int 1)))

(* ------------------------------------------------------------------ *)
(* Ndarray                                                             *)
(* ------------------------------------------------------------------ *)

let test_nd_column_major () =
  let a = Ndarray.create Scalar.Kint [| 3; 2 |] in
  (* column-major: (1,1) (2,1) (3,1) (1,2) (2,2) (3,2) *)
  Ndarray.set a [| 2; 1 |] (Int 42);
  check "flat offset of (2,1)" 42 (Scalar.to_int (Ndarray.get_flat a 1));
  Ndarray.set a [| 1; 2 |] (Int 7);
  check "flat offset of (1,2)" 7 (Scalar.to_int (Ndarray.get_flat a 3));
  check "strides" 3 (Ndarray.strides a).(1)

let test_nd_lbounds () =
  let a = Ndarray.create Scalar.Kreal ~lb:[| 0; -1 |] [| 2; 3 |] in
  Ndarray.set a [| 0; -1 |] (Real 1.);
  Ndarray.set a [| 1; 1 |] (Real 2.);
  check "offset first" 0 (Ndarray.offset a [| 0; -1 |]);
  check "offset last" 5 (Ndarray.offset a [| 1; 1 |]);
  checkb "get" true (Scalar.equal (Ndarray.get a [| 1; 1 |]) (Real 2.))

let test_nd_oob () =
  let a = Ndarray.create Scalar.Kint [| 2; 2 |] in
  (match Ndarray.get a [| 3; 1 |] with
  | _ -> Alcotest.fail "expected out-of-bounds failure"
  | exception Failure _ -> ())

let test_nd_iteri_order () =
  let a = Ndarray.init Scalar.Kint [| 2; 2 |] (fun idx -> Scalar.Int ((10 * idx.(0)) + idx.(1))) in
  let seen = ref [] in
  Ndarray.iteri a (fun _ v -> seen := Scalar.to_int v :: !seen);
  Alcotest.(check (list int)) "column-major order" [ 11; 21; 12; 22 ] (List.rev !seen)

let test_nd_blit () =
  let a = Ndarray.of_reals [| 4 |] [| 1.; 2.; 3.; 4. |] in
  let b = Ndarray.create Scalar.Kreal [| 4 |] in
  Ndarray.blit_flat ~src:a ~src_pos:1 ~dst:b ~dst_pos:0 ~len:2;
  checkb "blit" true (Ndarray.approx_equal (Ndarray.slice_flat b ~pos:0 ~len:2)
                        (Ndarray.of_reals [| 2 |] [| 2.; 3. |]))

let test_nd_bytes () =
  let a = Ndarray.create Scalar.Kreal [| 5 |] in
  check "real bytes" 40 (Ndarray.bytes a);
  let b = Ndarray.create Scalar.Kint [| 5 |] in
  check "int bytes" 20 (Ndarray.bytes b)

let prop_nd_roundtrip =
  QCheck.Test.make ~name:"ndarray get/set roundtrip at random index" ~count:200
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 0 1000))
    (fun (d1, d2, seed) ->
      let a = Ndarray.create Scalar.Kint [| d1; d2 |] in
      let i = 1 + (seed mod d1) and j = 1 + (seed / 7 mod d2) in
      Ndarray.set a [| i; j |] (Int seed);
      Scalar.to_int (Ndarray.get a [| i; j |]) = seed)

(* ------------------------------------------------------------------ *)
(* Affine                                                              *)
(* ------------------------------------------------------------------ *)

let test_affine_basic () =
  let f = Affine.make ~a:2 ~b:1 in
  check "eval" 7 (Affine.eval f 3);
  checkb "invertible" true (Affine.invertible f);
  Alcotest.(check (option int)) "inverse exact" (Some 3) (Affine.apply_inverse f 7);
  Alcotest.(check (option int)) "inverse inexact" None (Affine.apply_inverse f 8);
  checkb "identity" true (Affine.is_identity Affine.ident);
  checkb "const" true (Affine.is_const (Affine.const 5))

let prop_affine_compose =
  QCheck.Test.make ~name:"compose is function composition" ~count:300
    QCheck.(
      quad (int_range (-5) 5) (int_range (-10) 10) (int_range (-5) 5) (int_range (-10) 10))
    (fun (a1, b1, a2, b2) ->
      let f = Affine.make ~a:a1 ~b:b1 and g = Affine.make ~a:a2 ~b:b2 in
      let i = 13 in
      Affine.eval (Affine.compose f g) i = Affine.eval f (Affine.eval g i))

let prop_affine_inverse =
  QCheck.Test.make ~name:"apply_inverse inverts eval" ~count:300
    QCheck.(triple (int_range 1 7) (int_range (-10) 10) (int_range (-20) 20))
    (fun (a, b, i) ->
      let f = Affine.make ~a ~b in
      Affine.apply_inverse f (Affine.eval f i) = Some i)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_crt; prop_gray; prop_gray_inv; prop_nd_roundtrip; prop_affine_compose; prop_affine_inverse ]

let () =
  Alcotest.run "f90d_base"
    [
      ( "util",
        [
          Alcotest.test_case "floor_div" `Quick test_floor_div;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "modulo" `Quick test_modulo;
          Alcotest.test_case "gcd/egcd" `Quick test_gcd_egcd;
          Alcotest.test_case "crt" `Quick test_crt;
          Alcotest.test_case "pow2/log2" `Quick test_pow2_log2;
        ] );
      ( "scalar",
        [
          Alcotest.test_case "promotion" `Quick test_scalar_promotion;
          Alcotest.test_case "comparisons" `Quick test_scalar_compare;
          Alcotest.test_case "kind errors" `Quick test_scalar_errors;
        ] );
      ( "ndarray",
        [
          Alcotest.test_case "column-major layout" `Quick test_nd_column_major;
          Alcotest.test_case "lower bounds" `Quick test_nd_lbounds;
          Alcotest.test_case "bounds check" `Quick test_nd_oob;
          Alcotest.test_case "iteri order" `Quick test_nd_iteri_order;
          Alcotest.test_case "blit/slice" `Quick test_nd_blit;
          Alcotest.test_case "bytes" `Quick test_nd_bytes;
        ] );
      ("affine", [ Alcotest.test_case "basics" `Quick test_affine_basic ]);
      ("properties", qsuite);
    ]
