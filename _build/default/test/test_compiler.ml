open F90d_base
open F90d
open F90d_machine

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile_run ?flags ?(nprocs = 4) ?(model = Model.ideal) src =
  let compiled = Driver.compile ?flags src in
  Driver.run ~model ~nprocs compiled

let check_array result name expected =
  let got = Driver.final result name in
  if not (Ndarray.approx_equal ~eps:1e-6 got expected) then
    Alcotest.failf "array %s mismatch:@.got      %s@.expected %s" name
      (Format.asprintf "%a" Ndarray.pp got)
      (Format.asprintf "%a" Ndarray.pp expected)

let reals_1d lb n f =
  Ndarray.init Scalar.Kreal ~lb:[| lb |] [| n |] (fun g -> Scalar.Real (f g.(0)))

let reals_2d n m f =
  Ndarray.init Scalar.Kreal [| n; m |] (fun g -> Scalar.Real (f g.(0) g.(1)))

(* ------------------------------------------------------------------ *)
(* Local (no communication) patterns                                   *)
(* ------------------------------------------------------------------ *)

let test_local_forall () =
  let r =
    compile_run
      {|
      PROGRAM T1
      REAL A(12)
C$    DISTRIBUTE A(BLOCK)
      FORALL (I = 1:12) A(I) = 2*I
      END
      |}
  in
  check_array r "A" (reals_1d 1 12 (fun i -> float_of_int (2 * i)));
  (* without the final verification gathers the program is communication-free *)
  let quiet =
    Driver.run ~collect_finals:false ~nprocs:4
      (Driver.compile
         {|
         PROGRAM T1B
         REAL A(12)
C$       DISTRIBUTE A(BLOCK)
         FORALL (I = 1:12) A(I) = 2*I
         END
         |})
  in
  check_int "no messages for aligned forall" 0 quiet.Driver.stats.Stats.messages

let test_array_assignment_normalized () =
  let r =
    compile_run
      {|
      PROGRAM T2
      REAL A(10), B(10)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:10) B(I) = I
      A = 2*B + 1
      END
      |}
  in
  check_array r "A" (reals_1d 1 10 (fun i -> float_of_int ((2 * i) + 1)))

let test_section_assignment () =
  let r =
    compile_run
      {|
      PROGRAM T3
      REAL A(10), B(12)
C$    DISTRIBUTE A(BLOCK)
      FORALL (I = 1:12) B(I) = 10*I
      A(2:9) = B(3:10)
      END
      |}
  in
  (* B replicated, so the shifted read is local *)
  let expected =
    Ndarray.init Scalar.Kreal [| 10 |] (fun g ->
        if g.(0) >= 2 && g.(0) <= 9 then Scalar.Real (float_of_int (10 * (g.(0) + 1)))
        else Scalar.Real 0.)
  in
  check_array r "A" expected

(* ------------------------------------------------------------------ *)
(* Structured communication                                            *)
(* ------------------------------------------------------------------ *)

let test_overlap_shift_jacobi_like () =
  let r =
    compile_run
      {|
      PROGRAM T4
      REAL A(16), B(16)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:16) A(I) = I*I
      FORALL (I = 2:15) B(I) = 0.5*(A(I-1) + A(I+1))
      END
      |}
  in
  let expected =
    Ndarray.init Scalar.Kreal [| 16 |] (fun g ->
        let i = g.(0) in
        if i >= 2 && i <= 15 then
          Scalar.Real (0.5 *. float_of_int (((i - 1) * (i - 1)) + ((i + 1) * (i + 1))))
        else Scalar.Real 0.)
  in
  check_array r "B" expected

let test_temporary_shift_scalar_amount () =
  let r =
    compile_run
      {|
      PROGRAM T5
      INTEGER S
      REAL A(12), B(12)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      S = 5
      FORALL (I = 1:12) A(I) = 3*I
      FORALL (I = 1:7) B(I) = A(I+S)
      END
      |}
  in
  let expected =
    Ndarray.init Scalar.Kreal [| 12 |] (fun g ->
        if g.(0) <= 7 then Scalar.Real (float_of_int (3 * (g.(0) + 5))) else Scalar.Real 0.)
  in
  check_array r "B" expected

let test_multicast_2d () =
  let r =
    compile_run ~nprocs:4
      {|
      PROGRAM T6
C$    PROCESSORS P(2, 2)
      REAL A(4, 6), B(4, 6)
C$    TEMPLATE T(4, 6)
C$    ALIGN A(I, J) WITH T(I, J)
C$    ALIGN B(I, J) WITH T(I, J)
C$    DISTRIBUTE T(BLOCK, BLOCK)
      FORALL (I = 1:4, J = 1:6) B(I, J) = 100*I + J
      FORALL (I = 1:4, J = 1:6) A(I, J) = B(I, 3)
      END
      |}
  in
  check_array r "A" (reals_2d 4 6 (fun i _ -> float_of_int ((100 * i) + 3)))

let test_transfer_columns () =
  let r =
    compile_run ~nprocs:4
      {|
      PROGRAM T7
C$    PROCESSORS P(4)
      REAL A(4, 8), B(4, 8)
C$    TEMPLATE T(8)
C$    ALIGN A(I, J) WITH T(J)
C$    ALIGN B(I, J) WITH T(J)
C$    DISTRIBUTE T(BLOCK)
      FORALL (I = 1:4, J = 1:8) B(I, J) = 10*I + J
      FORALL (I = 1:4) A(I, 8) = B(I, 3)
      END
      |}
  in
  let expected =
    reals_2d 4 8 (fun i j -> if j = 8 then float_of_int ((10 * i) + 3) else 0.)
  in
  check_array r "A" expected

(* ------------------------------------------------------------------ *)
(* Unstructured communication                                          *)
(* ------------------------------------------------------------------ *)

let test_precomp_read () =
  let r =
    compile_run
      {|
      PROGRAM T8
      REAL A(5), B(11)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(*)
C$    DISTRIBUTE B(BLOCK)
      FORALL (I = 1:11) B(I) = I + 100
      FORALL (I = 1:5) A(I) = B(2*I + 1)
      END
      |}
  in
  check_array r "A" (reals_1d 1 5 (fun i -> float_of_int ((2 * i) + 1 + 100)))

let test_gather_indirection () =
  let r =
    compile_run
      {|
      PROGRAM T9
      INTEGER V(8)
      REAL A(8), B(8)
C$    DISTRIBUTE A(BLOCK)
C$    DISTRIBUTE B(CYCLIC)
      FORALL (I = 1:8) V(I) = 9 - I
      FORALL (I = 1:8) B(I) = I*I
      FORALL (I = 1:8) A(I) = B(V(I))
      END
      |}
  in
  check_array r "A" (reals_1d 1 8 (fun i -> float_of_int ((9 - i) * (9 - i))))

let test_scatter_indirection () =
  let r =
    compile_run
      {|
      PROGRAM T10
      INTEGER U(8)
      REAL A(8), B(8)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:8) U(I) = 9 - I
      FORALL (I = 1:8) B(I) = 5*I
      FORALL (I = 1:8) A(U(I)) = B(I)
      END
      |}
  in
  (* A(9-i) = 5i  =>  A(j) = 5*(9-j) *)
  check_array r "A" (reals_1d 1 8 (fun j -> float_of_int (5 * (9 - j))))

let test_postcomp_affine_lhs () =
  let r =
    compile_run
      {|
      PROGRAM T11
      REAL A(16), B(8)
C$    DISTRIBUTE A(BLOCK)
C$    DISTRIBUTE B(BLOCK)
      FORALL (I = 1:8) B(I) = I + 0.5
      FORALL (I = 1:8) A(2*I) = B(I)
      END
      |}
  in
  let expected =
    Ndarray.init Scalar.Kreal [| 16 |] (fun g ->
        if g.(0) mod 2 = 0 then Scalar.Real (float_of_int (g.(0) / 2) +. 0.5) else Scalar.Real 0.)
  in
  check_array r "A" expected

(* ------------------------------------------------------------------ *)
(* Replicated lhs / slab broadcast                                     *)
(* ------------------------------------------------------------------ *)

let test_replicated_lhs_multicast () =
  let r =
    compile_run
      {|
      PROGRAM T12
      REAL W(6), A(6, 8)
C$    DISTRIBUTE A(*, BLOCK)
      FORALL (I = 1:6, J = 1:8) A(I, J) = 10*I + J
      FORALL (I = 1:6) W(I) = A(I, 5)
      END
      |}
  in
  check_array r "W" (reals_1d 1 6 (fun i -> float_of_int ((10 * i) + 5)))

let test_replicated_lhs_concat () =
  let r =
    compile_run
      {|
      PROGRAM T13
      REAL W(8), B(8)
C$    DISTRIBUTE B(CYCLIC)
      FORALL (I = 1:8) B(I) = I*I
      FORALL (I = 1:8) W(I) = B(I) + 1
      END
      |}
  in
  check_array r "W" (reals_1d 1 8 (fun i -> float_of_int ((i * i) + 1)))

(* ------------------------------------------------------------------ *)
(* WHERE, masks, control flow                                          *)
(* ------------------------------------------------------------------ *)

let test_where_elsewhere () =
  let r =
    compile_run
      {|
      PROGRAM T14
      REAL A(10), B(10)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:10) A(I) = I - 5.5
      WHERE (A > 0.0)
        B = A
      ELSEWHERE
        B = -A
      END WHERE
      END
      |}
  in
  check_array r "B" (reals_1d 1 10 (fun i -> Float.abs (float_of_int i -. 5.5)))

let test_forall_mask () =
  let r =
    compile_run
      {|
      PROGRAM T15
      REAL A(10)
C$    DISTRIBUTE A(CYCLIC)
      FORALL (I = 1:10, MOD(I, 2) == 0) A(I) = I
      END
      |}
  in
  let expected =
    Ndarray.init Scalar.Kreal [| 10 |] (fun g ->
        if g.(0) mod 2 = 0 then Scalar.Real (float_of_int g.(0)) else Scalar.Real 0.)
  in
  check_array r "A" expected

let test_do_if_scalar () =
  let r =
    compile_run
      {|
      PROGRAM T16
      INTEGER K
      REAL S
      REAL A(8)
C$    DISTRIBUTE A(BLOCK)
      FORALL (I = 1:8) A(I) = I
      S = 0.0
      DO K = 1, 8
        IF (A(K) > 4.0) THEN
          S = S + A(K)
        END IF
      END DO
      END
      |}
  in
  checkb "scalar accumulation over distributed reads" true
    (Scalar.equal (Driver.final_scalar r "S") (Scalar.Real 26.))

(* ------------------------------------------------------------------ *)
(* Intrinsics through the compiler                                     *)
(* ------------------------------------------------------------------ *)

let test_reduction_intrinsics () =
  let r =
    compile_run
      {|
      PROGRAM T17
      REAL A(9), S, MX
      INTEGER LOC
C$    DISTRIBUTE A(BLOCK)
      FORALL (I = 1:9) A(I) = I
      S = SUM(A)
      MX = MAXVAL(A)
      LOC = MAXLOC(A)
      END
      |}
  in
  checkb "sum" true (Scalar.equal (Driver.final_scalar r "S") (Scalar.Real 45.));
  checkb "maxval" true (Scalar.equal (Driver.final_scalar r "MX") (Scalar.Real 9.));
  check_int "maxloc" 9 (Scalar.to_int (Driver.final_scalar r "LOC"))

let test_cshift_mover () =
  let r =
    compile_run
      {|
      PROGRAM T18
      REAL A(8), B(8)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:8) A(I) = I
      B = CSHIFT(A, 2)
      END
      |}
  in
  check_array r "B" (reals_1d 1 8 (fun i -> float_of_int ((((i - 1) + 2) mod 8) + 1)))

let test_matmul_transpose () =
  let r =
    compile_run ~nprocs:4
      {|
      PROGRAM T19
C$    PROCESSORS P(2, 2)
      REAL A(3, 4), B(4, 2), C(3, 2), AT(4, 3)
C$    TEMPLATE T(4, 4)
C$    ALIGN A(I, J) WITH T(I, J)
C$    ALIGN B(I, J) WITH T(I, J)
C$    ALIGN C(I, J) WITH T(I, J)
C$    ALIGN AT(I, J) WITH T(I, J)
C$    DISTRIBUTE T(BLOCK, BLOCK)
      FORALL (I = 1:3, J = 1:4) A(I, J) = I + J
      FORALL (I = 1:4, J = 1:2) B(I, J) = I*J
      C = MATMUL(A, B)
      AT = TRANSPOSE(A)
      END
      |}
  in
  let a i j = float_of_int (i + j) and b i j = float_of_int (i * j) in
  let expected_c =
    reals_2d 3 2 (fun i j ->
        let acc = ref 0. in
        for k = 1 to 4 do
          acc := !acc +. (a i k *. b k j)
        done;
        !acc)
  in
  check_array r "C" expected_c;
  check_array r "AT" (reals_2d 4 3 (fun i j -> a j i))

(* ------------------------------------------------------------------ *)
(* Subroutines and redistribution                                      *)
(* ------------------------------------------------------------------ *)

let test_dimensional_reductions () =
  let r =
    compile_run ~nprocs:4
      {|
      PROGRAM DR
      INTEGER, PARAMETER :: N = 6
      REAL A(6, 4), RS(4), CM(6)
C$    PROCESSORS P(2, 2)
C$    TEMPLATE T(6, 4)
C$    ALIGN A(I, J) WITH T(I, J)
C$    DISTRIBUTE T(BLOCK, BLOCK)
C$    DISTRIBUTE RS(BLOCK)
C$    DISTRIBUTE CM(CYCLIC)
      FORALL (I = 1:6, J = 1:4) A(I, J) = 10*I + J
      RS = SUM(A, 1)
      CM = MAXVAL(A, 2)
      END
      |}
  in
  (* SUM over rows: RS(j) = sum_i (10i + j) = 210 + 6j *)
  check_array r "RS" (reals_1d 1 4 (fun j -> float_of_int (210 + (6 * j))));
  (* MAXVAL over columns: CM(i) = 10i + 4 *)
  check_array r "CM" (reals_1d 1 6 (fun i -> float_of_int ((10 * i) + 4)))

let test_call_with_redistribution () =
  let r =
    compile_run
      {|
      PROGRAM T20
      REAL A(12), S
C$    DISTRIBUTE A(BLOCK)
      FORALL (I = 1:12) A(I) = I
      CALL DOUBLER(A, S)
      END

      SUBROUTINE DOUBLER(X, TOTAL)
      REAL X(12), TOTAL
C$    DISTRIBUTE X(CYCLIC)
      X = 2*X
      TOTAL = SUM(X)
      END
      |}
  in
  check_array r "A" (reals_1d 1 12 (fun i -> float_of_int (2 * i)));
  checkb "sum computed in callee" true
    (Scalar.equal (Driver.final_scalar r "S") (Scalar.Real 156.))

let test_print_output () =
  let r =
    compile_run
      {|
      PROGRAM T21
      REAL X
      X = 1.5
      PRINT *, 'X is', X
      END
      |}
  in
  checkb "print output" true (r.Driver.outcome.F90d_exec.Interp.output = "\"X is\" 1.5\n")

(* ------------------------------------------------------------------ *)
(* Distribution variants / determinism                                 *)
(* ------------------------------------------------------------------ *)

let test_cyclic_alignment_offset () =
  let r =
    compile_run
      {|
      PROGRAM T22
      REAL A(10), B(10)
C$    TEMPLATE T(12)
C$    ALIGN A(I) WITH T(I)
C$    ALIGN B(I) WITH T(I + 2)
C$    DISTRIBUTE T(CYCLIC)
      FORALL (I = 1:10) B(I) = I
      FORALL (I = 3:9) A(I) = B(I-1) + 1
      END
      |}
  in
  let expected =
    Ndarray.init Scalar.Kreal [| 10 |] (fun g ->
        if g.(0) >= 3 && g.(0) <= 9 then Scalar.Real (float_of_int g.(0)) else Scalar.Real 0.)
  in
  check_array r "A" expected

let test_same_result_across_nprocs () =
  let src =
    {|
      PROGRAM T23
      REAL A(24), B(24)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:24) A(I) = MOD(7*I, 5) + 0.25
      FORALL (I = 2:23) B(I) = A(I+1) - A(I-1)
      B(1) = A(1)
      B(24) = A(24)
      END
      |}
  in
  let baseline = Driver.final (compile_run ~nprocs:1 src) "B" in
  List.iter
    (fun p ->
      let got = Driver.final (compile_run ~nprocs:p src) "B" in
      checkb (Printf.sprintf "same result on %d procs" p) true
        (Ndarray.approx_equal ~eps:1e-9 got baseline))
    [ 2; 3; 4; 6; 8 ]

let test_multicast_shift_end_to_end () =
  (* the paper's §5.3.1 example 3 through the whole pipeline, fused and
     unfused, against an elementwise oracle *)
  let src =
    {|
      PROGRAM MS
      INTEGER, PARAMETER :: N = 8
      INTEGER S
      REAL A(8, 8), B(8, 8)
C$    PROCESSORS P(2, 2)
C$    TEMPLATE T(8, 8)
C$    ALIGN A(I, J) WITH T(I, J)
C$    ALIGN B(I, J) WITH T(I, J)
C$    DISTRIBUTE T(BLOCK, BLOCK)
      S = 2
      FORALL (I = 1:N, J = 1:N) B(I, J) = 10*I + J
      FORALL (I = 1:N, J = 1:N-2) A(I, J) = B(3, J+S)
      END
      |}
  in
  let expected =
    Ndarray.init Scalar.Kreal [| 8; 8 |] (fun g ->
        if g.(1) <= 6 then Scalar.Real (float_of_int (30 + g.(1) + 2)) else Scalar.Real 0.)
  in
  List.iter
    (fun flags ->
      let r = compile_run ~flags src in
      check_array r "A" expected)
    [ F90d_opt.Passes.all_on; F90d_opt.Passes.all_off ]

let test_power_method_intrinsics () =
  (* dense power iteration: MATMUL + SUM + elementwise normalisation *)
  let n = 6 and iters = 12 in
  let r =
    compile_run ~nprocs:4
      (Printf.sprintf
         {|
      PROGRAM POWER
      INTEGER, PARAMETER :: N = %d
      INTEGER T
      REAL A(%d, %d), X(%d, 1), Y(%d, 1), S
C$    PROCESSORS P(2, 2)
C$    TEMPLATE TT(%d, %d)
C$    ALIGN A(I, J) WITH TT(I, J)
C$    ALIGN X(I, J) WITH TT(I, J)
C$    ALIGN Y(I, J) WITH TT(I, J)
C$    DISTRIBUTE TT(BLOCK, BLOCK)
      FORALL (I = 1:N, J = 1:N) A(I, J) = 1.0 / (I + J)
      FORALL (I = 1:N) X(I, 1) = 1.0
      DO T = 1, %d
        Y = MATMUL(A, X)
        S = SUM(Y)
        FORALL (I = 1:N) X(I, 1) = Y(I, 1) / S
      END DO
      END
|}
         n n n n n n n iters)
  in
  (* oracle in OCaml *)
  let a = Array.init n (fun i -> Array.init n (fun j -> 1. /. float_of_int (i + j + 2))) in
  let x = ref (Array.make n 1.) in
  let s = ref 0. in
  for _ = 1 to iters do
    let y = Array.init n (fun i -> Array.fold_left ( +. ) 0. (Array.mapi (fun j v -> a.(i).(j) *. v) !x)) in
    s := Array.fold_left ( +. ) 0. y;
    x := Array.map (fun v -> v /. !s) y
  done;
  Alcotest.(check (float 1e-9)) "dominant eigenvalue estimate" !s
    (Scalar.to_real (Driver.final_scalar r "S"));
  let gx = Driver.final r "X" in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9)) "eigenvector" v
        (Scalar.to_real (Ndarray.get gx [| i + 1; 1 |])))
    !x

let test_optimization_equivalence () =
  let src =
    {|
      PROGRAM T24
      REAL A(20), B(20)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:20) B(I) = I*I
      FORALL (I = 1:17) A(I) = B(I+2) + B(I+3)
      END
      |}
  in
  let with_opt = compile_run ~flags:F90d_opt.Passes.all_on src in
  let without = compile_run ~flags:F90d_opt.Passes.all_off src in
  checkb "same numerical result" true
    (Ndarray.approx_equal (Driver.final with_opt "A") (Driver.final without "A"));
  checkb "shift union saves messages" true
    (with_opt.Driver.stats.Stats.messages < without.Driver.stats.Stats.messages)

let () =
  Alcotest.run "f90d_compiler"
    [
      ( "local",
        [
          Alcotest.test_case "forall canonical" `Quick test_local_forall;
          Alcotest.test_case "array assignment" `Quick test_array_assignment_normalized;
          Alcotest.test_case "sections" `Quick test_section_assignment;
        ] );
      ( "structured",
        [
          Alcotest.test_case "overlap shift" `Quick test_overlap_shift_jacobi_like;
          Alcotest.test_case "temporary shift" `Quick test_temporary_shift_scalar_amount;
          Alcotest.test_case "multicast" `Quick test_multicast_2d;
          Alcotest.test_case "transfer" `Quick test_transfer_columns;
        ] );
      ( "unstructured",
        [
          Alcotest.test_case "precomp_read" `Quick test_precomp_read;
          Alcotest.test_case "gather" `Quick test_gather_indirection;
          Alcotest.test_case "scatter" `Quick test_scatter_indirection;
          Alcotest.test_case "postcomp affine" `Quick test_postcomp_affine_lhs;
        ] );
      ( "replication",
        [
          Alcotest.test_case "slab multicast" `Quick test_replicated_lhs_multicast;
          Alcotest.test_case "concatenation" `Quick test_replicated_lhs_concat;
        ] );
      ( "control",
        [
          Alcotest.test_case "where/elsewhere" `Quick test_where_elsewhere;
          Alcotest.test_case "forall mask" `Quick test_forall_mask;
          Alcotest.test_case "do/if scalar" `Quick test_do_if_scalar;
        ] );
      ( "intrinsics",
        [
          Alcotest.test_case "reductions" `Quick test_reduction_intrinsics;
          Alcotest.test_case "cshift" `Quick test_cshift_mover;
          Alcotest.test_case "matmul/transpose" `Quick test_matmul_transpose;
          Alcotest.test_case "dimensional reductions" `Quick test_dimensional_reductions;
        ] );
      ( "procedures",
        [
          Alcotest.test_case "call + redistribute" `Quick test_call_with_redistribution;
          Alcotest.test_case "print" `Quick test_print_output;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "multicast_shift end-to-end" `Quick test_multicast_shift_end_to_end;
          Alcotest.test_case "power method" `Quick test_power_method_intrinsics;
          Alcotest.test_case "aligned cyclic offset" `Quick test_cyclic_alignment_offset;
          Alcotest.test_case "nprocs invariance" `Quick test_same_result_across_nprocs;
          Alcotest.test_case "optimizations preserve results" `Quick test_optimization_equivalence;
        ] );
    ]
