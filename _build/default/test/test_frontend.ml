open F90d_base
open F90d_frontend

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map fst (Lexer.tokenize ~file:"t" src)

let test_lex_basics () =
  checkb "idents upper-cased" true
    (toks "abc Def" = [ Token.Ident "ABC"; Token.Ident "DEF"; Token.Newline; Token.Eof ]);
  checkb "numbers" true
    (toks "42 3.5 1e3 2.5e-2 7."
    = [ Token.Int 42; Token.Float 3.5; Token.Float 1000.; Token.Float 0.025; Token.Float 7.;
        Token.Newline; Token.Eof ]);
  checkb "double-precision exponent" true (toks "1.5d2" = [ Token.Float 150.; Token.Newline; Token.Eof ]);
  checkb "operators" true
    (toks "a**b == c /= d"
    = [ Token.Ident "A"; Token.Power; Token.Ident "B"; Token.Eq; Token.Ident "C"; Token.Ne;
        Token.Ident "D"; Token.Newline; Token.Eof ])

let test_lex_dotted () =
  checkb "dotted ops" true
    (toks "a .AND. b .or. .not. c"
    = [ Token.Ident "A"; Token.And; Token.Ident "B"; Token.Or; Token.Not; Token.Ident "C";
        Token.Newline; Token.Eof ]);
  checkb "dotted comparisons" true
    (toks "x .LT. y .ge. z"
    = [ Token.Ident "X"; Token.Lt; Token.Ident "Y"; Token.Ge; Token.Ident "Z"; Token.Newline;
        Token.Eof ]);
  checkb "logical literals" true
    (toks ".TRUE. .false." = [ Token.True; Token.False; Token.Newline; Token.Eof ]);
  (* "1.AND." must not eat the dot into the number *)
  checkb "number then dotted" true
    (toks "1.AND.x" = [ Token.Int 1; Token.And; Token.Ident "X"; Token.Newline; Token.Eof ])

let test_lex_comments_continuation () =
  checkb "bang comment" true (toks "a ! rest\nb" =
    [ Token.Ident "A"; Token.Newline; Token.Ident "B"; Token.Newline; Token.Eof ]);
  checkb "fixed-form C comment" true
    (toks "C whole line comment\nx = 1"
    = [ Token.Ident "X"; Token.Assign; Token.Int 1; Token.Newline; Token.Eof ]);
  checkb "trailing & joins lines" true
    (toks "a + &\n  b" = [ Token.Ident "A"; Token.Plus; Token.Ident "B"; Token.Newline; Token.Eof ]);
  checkb "leading & joins lines" true
    (toks "a +\n     &  b"
    = [ Token.Ident "A"; Token.Plus; Token.Ident "B"; Token.Newline; Token.Eof ])

let test_lex_directive () =
  (match toks "C$ DISTRIBUTE A(BLOCK)" with
  | Token.Directive :: Token.Ident "DISTRIBUTE" :: Token.Ident "A" :: _ -> ()
  | _ -> Alcotest.fail "directive prefix not recognised");
  match toks "!HPF$ ALIGN X WITH T" with
  | Token.Directive :: Token.Ident "ALIGN" :: _ -> ()
  | _ -> Alcotest.fail "!HPF$ prefix not recognised"

let test_lex_strings () =
  checkb "single quotes" true (toks "'hi there'" = [ Token.String "hi there"; Token.Newline; Token.Eof ]);
  checkb "escaped quote" true (toks "'it''s'" = [ Token.String "it's"; Token.Newline; Token.Eof ])

let test_lex_errors () =
  (match toks "'unterminated" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Diag.Error _ -> ());
  match toks "a # b" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Diag.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let expr s = Parser.parse_expr_string s
let expr_str s = Format.asprintf "%a" Ast.pp_expr (expr s)

let test_parse_precedence () =
  checks "mul binds tighter" "(1 + (2 * 3))" (expr_str "1 + 2*3");
  checks "power right assoc" "(2 ** (3 ** 2))" (expr_str "2 ** 3 ** 2");
  checks "unary minus" "((-1) + 2)" (expr_str "-1 + 2");
  checks "comparison" "((A + 1) .LT. (B * 2))" (expr_str "a + 1 < b*2");
  checks "and over or" "(A .OR. (B .AND. C))" (expr_str "a .or. b .and. c");
  checks "not" "((.NOT. A) .AND. B)" (expr_str ".not. a .and. b")

let test_parse_sections () =
  (match (expr "A(2:5, K)").Ast.e with
  | Ast.Ref { args = [ Ast.Range (Some _, Some _, None); Ast.Elem _ ]; _ } -> ()
  | _ -> Alcotest.fail "section shape");
  (match (expr "A(:, 1:10:2)").Ast.e with
  | Ast.Ref { args = [ Ast.Range (None, None, None); Ast.Range (Some _, Some _, Some _) ]; _ } ->
      ()
  | _ -> Alcotest.fail "full + strided section");
  match (expr "A(:5)").Ast.e with
  | Ast.Ref { args = [ Ast.Range (None, Some _, None) ]; _ } -> ()
  | _ -> Alcotest.fail "upper-bounded section"

let parse_main src = (Parser.parse ~file:"t" src).Ast.main

let test_parse_program_units () =
  let p =
    Parser.parse ~file:"t"
      {|
      PROGRAM MAIN
      REAL X
      X = 1
      CALL S(X)
      END

      SUBROUTINE S(Y)
      REAL Y
      Y = Y + 1
      END SUBROUTINE
      |}
  in
  checks "main name" "MAIN" p.Ast.main.Ast.pname;
  check "one subroutine" 1 (List.length p.Ast.subs);
  Alcotest.(check (list string)) "args" [ "Y" ] (List.hd p.Ast.subs).Ast.args

let test_parse_decls () =
  let u =
    parse_main
      {|
      PROGRAM T
      INTEGER, PARAMETER :: N = 8
      REAL A(N, N+1), B(0:N)
      REAL, DIMENSION(3) :: U, V
      LOGICAL FLAG
      END
      |}
  in
  check "decl count" 6 (List.length u.Ast.decls);
  let a = List.find (fun d -> d.Ast.dname = "A") u.Ast.decls in
  check "A rank" 2 (List.length a.Ast.ddims);
  let u' = List.find (fun d -> d.Ast.dname = "U") u.Ast.decls in
  check "shared DIMENSION" 1 (List.length u'.Ast.ddims);
  let f = List.find (fun d -> d.Ast.dname = "FLAG") u.Ast.decls in
  checkb "logical kind" true (f.Ast.dkind = Ast.Logical)

let test_parse_directives () =
  let u =
    parse_main
      {|
      PROGRAM T
      REAL A(8, 8)
C$    PROCESSORS P(2, 2)
C$    TEMPLATE TT(8, 8)
C$    ALIGN A(I, J) WITH TT(J, I)
C$    DISTRIBUTE TT(BLOCK, CYCLIC) ONTO P
      END
      |}
  in
  check "directive count" 4 (List.length u.Ast.directives);
  (match List.map fst u.Ast.directives with
  | [ Ast.Processors { pdims; _ }; Ast.Template { tdims; _ }; Ast.Align { dummies; _ };
      Ast.Distribute { forms; onto; _ } ] ->
      check "grid rank" 2 (List.length pdims);
      check "template rank" 2 (List.length tdims);
      Alcotest.(check (list string)) "dummies" [ "I"; "J" ] dummies;
      checkb "forms" true (forms = [ Ast.Dblock; Ast.Dcyclic ]);
      checkb "onto" true (onto = Some "P")
  | _ -> Alcotest.fail "directive shapes")

let test_parse_statements () =
  let u =
    parse_main
      {|
      PROGRAM T
      INTEGER I, K
      REAL A(10)
      DO K = 1, 10, 2
        IF (K > 5) THEN
          A(K) = 1
        ELSE IF (K > 2) THEN
          A(K) = 2
        ELSE
          A(K) = 3
        END IF
      END DO
      WHERE (A > 0)
        A = A + 1
      ELSEWHERE
        A = 0
      END WHERE
      FORALL (I = 1:10, A(I) > 0) A(I) = -A(I)
      DO WHILE (A(1) < 10)
        A(1) = A(1) + 1
      END DO
      PRINT *, 'done', A(1)
      RETURN
      END
      |}
  in
  check "statement count" 6 (List.length u.Ast.body);
  match List.map (fun s -> s.Ast.s) u.Ast.body with
  | [ Ast.Do (_, _, [ { Ast.s = Ast.If (arms, els); _ } ]); Ast.Where (_, _, elsw);
      Ast.Forall (_, Some _, _); Ast.While _; Ast.Print [ _; _ ]; Ast.Return ] ->
      check "if arms" 2 (List.length arms);
      check "else body" 1 (List.length els);
      check "elsewhere body" 1 (List.length elsw)
  | _ -> Alcotest.fail "statement shapes"

let test_parse_errors () =
  let bad src =
    match Parser.parse ~file:"t" src with
    | _ -> Alcotest.failf "expected syntax error for %s" src
    | exception Diag.Error _ -> ()
  in
  bad "PROGRAM T\nDO K = 1, 10\nEND";
  bad "PROGRAM T\nIF (X THEN\nEND";
  bad "PROGRAM T\nX = \nEND";
  bad "PROGRAM T\nFORALL (I) X(I) = 1\nEND"

(* ------------------------------------------------------------------ *)
(* Sema                                                                *)
(* ------------------------------------------------------------------ *)

let analyze src = Sema.analyze (Parser.parse ~file:"t" src)

let test_sema_params_and_dims () =
  let env =
    Sema.main_env
      (analyze
         {|
         PROGRAM T
         INTEGER, PARAMETER :: N = 6
         INTEGER, PARAMETER :: M = 2*N + 1
         REAL A(M, 0:N)
         END
         |})
  in
  checkb "param N" true (List.assoc "N" env.Sema.uparams = Scalar.Int 6);
  checkb "param M" true (List.assoc "M" env.Sema.uparams = Scalar.Int 13);
  match Sema.array_spec env "A" with
  | Some spec ->
      check "extent 1" 13 spec.Sema.sdims.(0).Sema.sext;
      check "flb 2" 0 spec.Sema.sdims.(1).Sema.sflb;
      check "extent 2" 7 spec.Sema.sdims.(1).Sema.sext
  | None -> Alcotest.fail "A not found"

let test_sema_alignment () =
  let env =
    Sema.main_env
      (analyze
         {|
         PROGRAM T
         REAL A(10), B(10)
C$       TEMPLATE TT(21)
C$       ALIGN A(I) WITH TT(2*I + 1)
C$       ALIGN B(I) WITH TT(*)
C$       DISTRIBUTE TT(BLOCK)
         END
         |})
  in
  (match Sema.array_spec env "A" with
  | Some spec ->
      let d = spec.Sema.sdims.(0) in
      (* Fortran A(1) -> TT(3); 0-based: align(0) = 3 - 1 = 2 *)
      check "align a" 2 d.Sema.salign.Affine.a;
      check "align b" 2 d.Sema.salign.Affine.b;
      checkb "distributed" true (d.Sema.spdim = Some 0);
      check "template extent" 21 d.Sema.stn
  | None -> Alcotest.fail "A not found");
  match Sema.array_spec env "B" with
  | Some spec -> checkb "star align replicates" true (spec.Sema.sdims.(0).Sema.spdim = None)
  | None -> Alcotest.fail "B not found"

let test_sema_grid_and_instantiate () =
  let penv =
    analyze
      {|
      PROGRAM T
      REAL A(8, 12)
C$    PROCESSORS P(2, 3)
C$    TEMPLATE TT(8, 12)
C$    ALIGN A(I, J) WITH TT(I, J)
C$    DISTRIBUTE TT(BLOCK, CYCLIC)
      END
      |}
  in
  Alcotest.(check (array int)) "grid dims" [| 2; 3 |] (Sema.grid_dims penv ~nprocs:6);
  (match Sema.grid_dims penv ~nprocs:4 with
  | _ -> Alcotest.fail "expected grid size mismatch error"
  | exception Diag.Error _ -> ());
  let grid = F90d_dist.Grid.make [| 2; 3 |] in
  let dads = Sema.instantiate (Sema.main_env penv) ~grid in
  let dad = List.assoc "A" dads in
  let dims = F90d_dist.Dad.dims dad in
  checkb "dim1 block" true (dims.(0).F90d_dist.Dad.dist.F90d_dist.Distrib.form = F90d_dist.Distrib.Block);
  checkb "dim2 cyclic" true (dims.(1).F90d_dist.Dad.dist.F90d_dist.Distrib.form = F90d_dist.Distrib.Cyclic);
  checkb "pdims" true (dims.(0).F90d_dist.Dad.pdim = Some 0 && dims.(1).F90d_dist.Dad.pdim = Some 1)

let test_sema_errors () =
  let bad src =
    match analyze src with
    | _ -> Alcotest.fail "expected semantic error"
    | exception Diag.Error _ -> ()
  in
  bad {|
      PROGRAM T
      REAL A(10)
C$    ALIGN A(I) WITH NOWHERE(I)
      END
      |};
  bad {|
      PROGRAM T
      REAL A(10)
C$    TEMPLATE TT(10)
C$    ALIGN A(I) WITH TT(I*I)
C$    DISTRIBUTE TT(BLOCK)
      END
      |};
  bad {|
      PROGRAM T
C$    TEMPLATE TT(4, 4)
C$    DISTRIBUTE TT(BLOCK)
      END
      |}

let test_affine_of () =
  let lookup = function "C" -> Some (Scalar.Int 4) | _ -> None in
  let aff s =
    match Sema.affine_of ~var:"I" ~lookup (Parser.parse_expr_string s) with
    | Some f -> (f.Affine.a, f.Affine.b)
    | None -> (min_int, min_int)
  in
  checkb "i" true (aff "I" = (1, 0));
  checkb "i+3" true (aff "I + 3" = (1, 3));
  checkb "2*i-1" true (aff "2*I - 1" = (2, -1));
  (* leading blank: a column-1 'C' would be a fixed-form comment *)
  checkb "c*i+c" true (aff " C*I + C" = (4, 4));
  checkb "(i+1)*2" true (aff "(I+1)*2" = (2, 2));
  checkb "-i" true (aff "-I" = (-1, 0));
  checkb "i*i rejected" true (aff "I*I" = (min_int, min_int));
  checkb "unknown var rejected" true (aff "I + Z" = (min_int, min_int))

(* ------------------------------------------------------------------ *)
(* Normalizer                                                          *)
(* ------------------------------------------------------------------ *)

let normalized src =
  let penv = analyze src in
  let env = Sema.main_env penv in
  Normalize.normalize_unit env env.Sema.usub.Ast.body

let count_foralls stmts =
  List.length (List.filter (fun s -> match s.Ast.s with Ast.Forall _ -> true | _ -> false) stmts)

let test_normalize_whole_array () =
  let body =
    normalized
      {|
      PROGRAM T
      REAL A(4, 5), B(4, 5)
C$    DISTRIBUTE A(BLOCK, *)
      A = 2*B + 1
      END
      |}
  in
  check "one forall" 1 (count_foralls body);
  match (List.hd body).Ast.s with
  | Ast.Forall (vars, None, [ { Ast.s = Ast.Assign (lhs, _); _ } ]) ->
      check "two vars" 2 (List.length vars);
      (match lhs.Ast.e with
      | Ast.Ref { args = [ Ast.Elem _; Ast.Elem _ ]; _ } -> ()
      | _ -> Alcotest.fail "lhs not fully indexed")
  | _ -> Alcotest.fail "expected a forall"

let test_normalize_section_offsets () =
  let body =
    normalized
      {|
      PROGRAM T
      REAL A(10), B(12)
      A(2:9) = B(4:11)
      END
      |}
  in
  match (List.hd body).Ast.s with
  | Ast.Forall ([ (v, r) ], None, [ { Ast.s = Ast.Assign (_, rhs); _ } ]) ->
      checks "range lo" "2" (Format.asprintf "%a" Ast.pp_expr r.Ast.lo);
      checks "range hi" "9" (Format.asprintf "%a" Ast.pp_expr r.Ast.hi);
      (* B's index must be v + 2 *)
      let s = Format.asprintf "%a" Ast.pp_expr rhs in
      checkb "shifted subscript" true (s = Printf.sprintf "B((%s + 2))" v)
  | _ -> Alcotest.fail "expected single-var forall"

let test_normalize_where () =
  let body =
    normalized
      {|
      PROGRAM T
      REAL A(8), B(8)
C$    DISTRIBUTE A(BLOCK)
      WHERE (A > 1.0)
        B = A
      ELSEWHERE
        B = 0.0
      END WHERE
      END
      |}
  in
  check "two masked foralls" 2 (count_foralls body);
  List.iter
    (fun st ->
      match st.Ast.s with
      | Ast.Forall (_, Some _, _) -> ()
      | _ -> Alcotest.fail "expected masked forall")
    body

let test_normalize_forall_split () =
  let body =
    normalized
      {|
      PROGRAM T
      REAL A(8), B(8)
      FORALL (I = 1:8)
        A(I) = I
        B(I) = 2*I
      END FORALL
      END
      |}
  in
  check "split into two" 2 (count_foralls body)

let test_normalize_movers_untouched () =
  let body =
    normalized
      {|
      PROGRAM T
      REAL A(8), B(8)
      B = CSHIFT(A, 1)
      END
      |}
  in
  check "no forall for mover" 0 (count_foralls body)

let test_normalize_transformational_arg_kept () =
  let body =
    normalized
      {|
      PROGRAM T
      REAL A(8), S
      S = SUM(A) + 1.0
      END
      |}
  in
  match (List.hd body).Ast.s with
  | Ast.Assign (_, rhs) ->
      let s = Format.asprintf "%a" Ast.pp_expr rhs in
      checkb "SUM arg stays whole" true (s = "(SUM(A) + 1)")
  | _ -> Alcotest.fail "expected scalar assignment"

let () =
  Alcotest.run "f90d_frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "dotted operators" `Quick test_lex_dotted;
          Alcotest.test_case "comments/continuation" `Quick test_lex_comments_continuation;
          Alcotest.test_case "directives" `Quick test_lex_directive;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "sections" `Quick test_parse_sections;
          Alcotest.test_case "program units" `Quick test_parse_program_units;
          Alcotest.test_case "declarations" `Quick test_parse_decls;
          Alcotest.test_case "directives" `Quick test_parse_directives;
          Alcotest.test_case "statements" `Quick test_parse_statements;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "sema",
        [
          Alcotest.test_case "parameters/dims" `Quick test_sema_params_and_dims;
          Alcotest.test_case "alignment" `Quick test_sema_alignment;
          Alcotest.test_case "grid/instantiate" `Quick test_sema_grid_and_instantiate;
          Alcotest.test_case "errors" `Quick test_sema_errors;
          Alcotest.test_case "affine recognition" `Quick test_affine_of;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "whole array" `Quick test_normalize_whole_array;
          Alcotest.test_case "section offsets" `Quick test_normalize_section_offsets;
          Alcotest.test_case "where" `Quick test_normalize_where;
          Alcotest.test_case "forall split" `Quick test_normalize_forall_split;
          Alcotest.test_case "movers untouched" `Quick test_normalize_movers_untouched;
          Alcotest.test_case "transformational args" `Quick test_normalize_transformational_arg_kept;
        ] );
    ]
