open F90d_base
open F90d_dist

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Distrib                                                             *)
(* ------------------------------------------------------------------ *)

let forms = [ Distrib.Block; Distrib.Cyclic; Distrib.Block_cyclic 3; Distrib.Replicated ]

let test_block_basic () =
  let d = Distrib.make Block ~n:10 ~p:4 in
  check "chunk" 3 (Distrib.chunk d);
  check "owner 0" 0 (Distrib.owner d 0);
  check "owner 9" 3 (Distrib.owner d 9);
  check "local of 4" 1 (Distrib.local_of_global d 4);
  check "count p0" 3 (Distrib.local_count d ~proc:0);
  check "count p3" 1 (Distrib.local_count d ~proc:3)

let test_cyclic_basic () =
  let d = Distrib.make Cyclic ~n:10 ~p:4 in
  check "owner 6" 2 (Distrib.owner d 6);
  check "local of 6" 1 (Distrib.local_of_global d 6);
  check "count p0" 3 (Distrib.local_count d ~proc:0);
  check "count p3" 2 (Distrib.local_count d ~proc:3)

let test_block_cyclic_basic () =
  let d = Distrib.make (Block_cyclic 2) ~n:10 ~p:2 in
  (* courses: [0,1][2,3][4,5][6,7][8,9] owned 0,1,0,1,0 *)
  check "owner 4" 0 (Distrib.owner d 4);
  check "owner 7" 1 (Distrib.owner d 7);
  check "local of 5" 3 (Distrib.local_of_global d 5);
  check "count p0" 6 (Distrib.local_count d ~proc:0)

let prop_distrib_partition =
  QCheck.Test.make ~name:"distrib: owned sets partition [0,n)" ~count:300
    QCheck.(triple (int_range 0 3) (int_range 0 40) (int_range 1 7))
    (fun (fi, n, p) ->
      let d = Distrib.make (List.nth forms fi) ~n ~p in
      if (List.nth forms fi) = Distrib.Replicated then true
      else
        let all =
          List.concat_map (fun proc -> Distrib.owned_indices d ~proc) (Util.range 0 (p - 1))
        in
        List.sort compare all = Util.range 0 (n - 1))

let prop_distrib_roundtrip =
  QCheck.Test.make ~name:"distrib: global->local->global roundtrip" ~count:300
    QCheck.(triple (int_range 0 3) (int_range 1 40) (int_range 1 7))
    (fun (fi, n, p) ->
      let d = Distrib.make (List.nth forms fi) ~n ~p in
      List.for_all
        (fun g ->
          let proc = Distrib.owner d g in
          Distrib.global_of_local d ~proc (Distrib.local_of_global d g) = g)
        (Util.range 0 (n - 1)))

let prop_distrib_counts =
  QCheck.Test.make ~name:"distrib: local_count matches owned_indices" ~count:300
    QCheck.(triple (int_range 0 3) (int_range 0 40) (int_range 1 7))
    (fun (fi, n, p) ->
      let d = Distrib.make (List.nth forms fi) ~n ~p in
      List.for_all
        (fun proc ->
          Distrib.local_count d ~proc = List.length (Distrib.owned_indices d ~proc))
        (Util.range 0 (p - 1)))

let prop_distrib_local_order =
  QCheck.Test.make ~name:"distrib: local indices are 0..count-1 in global order" ~count:300
    QCheck.(triple (int_range 0 3) (int_range 0 40) (int_range 1 7))
    (fun (fi, n, p) ->
      let d = Distrib.make (List.nth forms fi) ~n ~p in
      List.for_all
        (fun proc ->
          let owned = Distrib.owned_indices d ~proc in
          List.mapi (fun i _ -> i) owned
          = List.map (Distrib.local_of_global d) owned)
        (Util.range 0 (p - 1)))

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let brute_layout (d : Distrib.t) (al : Affine.t) extent proc =
  List.filter
    (fun i ->
      let t = Affine.eval al i in
      t >= 0 && t < d.Distrib.n && Distrib.is_owned d ~proc t)
    (Util.range 0 (extent - 1))

let layout_gen =
  QCheck.(
    Gen.(
      let* fi = int_range 0 2 in
      let* n = int_range 1 30 in
      let* p = int_range 1 5 in
      let* proc = int_range 0 (p - 1) in
      let* a = int_range 1 3 in
      let* b = int_range 0 4 in
      let* extent = int_range 0 20 in
      return (fi, n, p, proc, a, b, extent)))

let prop_layout_matches_brute =
  QCheck.Test.make ~name:"layout resolve = brute-force ownership" ~count:800
    (QCheck.make layout_gen)
    (fun (fi, n, p, proc, a, b, extent) ->
      let form = List.nth [ Distrib.Block; Distrib.Cyclic; Distrib.Block_cyclic 2 ] fi in
      let d = Distrib.make form ~n ~p in
      let al = Affine.make ~a ~b in
      let l = Layout.resolve d ~align:al ~extent ~proc in
      Layout.to_list l = brute_layout d al extent proc)

let prop_layout_local_global =
  QCheck.Test.make ~name:"layout local/global roundtrip" ~count:500 (QCheck.make layout_gen)
    (fun (fi, n, p, proc, a, b, extent) ->
      let form = List.nth [ Distrib.Block; Distrib.Cyclic; Distrib.Block_cyclic 2 ] fi in
      let d = Distrib.make form ~n ~p in
      let al = Affine.make ~a ~b in
      let l = Layout.resolve d ~align:al ~extent ~proc in
      List.for_all
        (fun g ->
          Layout.is_owned l g
          && Layout.global_of_local l (Layout.local_of_global l g) = g)
        (Layout.to_list l))

let set_bound_gen =
  QCheck.(
    Gen.(
      let* fi = int_range 0 1 in
      let* n = int_range 1 40 in
      let* p = int_range 1 5 in
      let* proc = int_range 0 (p - 1) in
      let* a = int_range 1 3 in
      let* glb = int_range (-2) 20 in
      let* len = int_range 0 25 in
      let* gst = int_range 1 4 in
      return (fi, n, p, proc, a, glb, glb + len, gst)))

let prop_set_bound_matches_brute =
  QCheck.Test.make ~name:"set_bound = brute-force range intersection" ~count:1000
    (QCheck.make set_bound_gen)
    (fun (fi, n, p, proc, a, glb, gub, gst) ->
      let form = List.nth [ Distrib.Block; Distrib.Cyclic ] fi in
      let d = Distrib.make form ~n ~p in
      let al = Affine.make ~a ~b:0 in
      let extent = n / a in
      let l = Layout.resolve d ~align:al ~extent ~proc in
      let expected =
        List.filter
          (fun g -> Layout.is_owned l g && g <= gub && (g - glb) mod gst = 0)
          (Util.range (max 0 glb) (min (extent - 1) gub))
        |> List.map (Layout.local_of_global l)
      in
      let actual =
        match Layout.set_bound l ~glb ~gub ~gst with
        | None -> []
        | Some (llb, lub, lst) ->
            List.filter (fun x -> (x - llb) mod lst = 0) (Util.range llb lub)
      in
      actual = expected)

let prop_set_bound_partitions =
  QCheck.Test.make ~name:"set_bound partitions the iteration space over procs" ~count:500
    QCheck.(
      quad (int_range 0 1) (int_range 1 40) (int_range 1 6) (pair (int_range 0 10) (int_range 1 3)))
    (fun (fi, n, p, (glb, gst)) ->
      let form = List.nth [ Distrib.Block; Distrib.Cyclic ] fi in
      let d = Distrib.make form ~n ~p in
      let gub = n - 1 in
      let total = ref 0 in
      List.iter
        (fun proc ->
          let l = Layout.resolve d ~align:Affine.ident ~extent:n ~proc in
          match Layout.set_bound l ~glb ~gub ~gst with
          | None -> ()
          | Some (llb, lub, lst) -> if lub >= llb then total := !total + (((lub - llb) / lst) + 1))
        (Util.range 0 (p - 1));
      let expected = if gub < glb then 0 else ((gub - glb) / gst) + 1 in
      !total = expected)

let test_set_bound_negative_stride () =
  let d = Distrib.make Block ~n:12 ~p:3 in
  let l = Layout.resolve d ~align:Affine.ident ~extent:12 ~proc:1 in
  (* global 10:2:-2 = {10,8,6,4,2}; proc 1 owns 4..7 -> {6,4} -> local {2,0} *)
  match Layout.set_bound l ~glb:10 ~gub:2 ~gst:(-2) with
  | Some (llb, lub, lst) ->
      check "llb" 0 llb;
      check "lub" 2 lub;
      check "lst" 2 lst
  | None -> Alcotest.fail "expected a non-empty triplet"

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_roundtrip () =
  let g = Grid.make [| 3; 4 |] in
  check "size" 12 (Grid.size g);
  for r = 0 to 11 do
    check "roundtrip" r (Grid.rank_of_coords g (Grid.coords_of_rank g r))
  done

let test_grid_ranks_along () =
  let g = Grid.make [| 2; 3 |] in
  (* rank 3 = coords (1,1); along dim 1: coords (1,0),(1,1),(1,2) = ranks 1,3,5 *)
  Alcotest.(check (array int)) "row" [| 1; 3; 5 |] (Grid.ranks_along g ~rank:3 ~dim:1);
  Alcotest.(check (array int)) "col" [| 2; 3 |] (Grid.ranks_along g ~rank:3 ~dim:0)

let test_grid_neighbour () =
  let g = Grid.make [| 2; 2 |] in
  Alcotest.(check (option int)) "right" (Some 3) (Grid.neighbour g ~rank:1 ~dim:1 ~delta:1);
  Alcotest.(check (option int)) "edge" None (Grid.neighbour g ~rank:1 ~dim:0 ~delta:1)

let test_grid_embedding_validity () =
  match F90d_machine.Topology.grid_embedding Hypercube ~nprocs:16 [| 4; 4 |] with
  | None -> Alcotest.fail "expected an embedding"
  | Some phys ->
      let g = Grid.make ~phys_of_rank:phys [| 4; 4 |] in
      (* grid neighbours are at hypercube distance 1 *)
      for r = 0 to 15 do
        for dim = 0 to 1 do
          match Grid.neighbour g ~rank:r ~dim ~delta:1 with
          | None -> ()
          | Some r' ->
              check "gray neighbours" 1
                (F90d_machine.Topology.hops Hypercube ~nprocs:16 (Grid.phys_of_rank g r)
                   (Grid.phys_of_rank g r'))
        done
      done

(* ------------------------------------------------------------------ *)
(* Dad / Bounds                                                        *)
(* ------------------------------------------------------------------ *)

let mk_dad_2d ~n ~m ~p ~q forms =
  let grid = Grid.make [| p; q |] in
  let f1, f2 = forms in
  let dim1 =
    match f1 with
    | `Block -> Dad.block_dim ~flb:1 ~extent:n ~pdim:0 ~p ()
    | `Cyclic -> Dad.cyclic_dim ~flb:1 ~extent:n ~pdim:0 ~p ()
    | `Repl -> Dad.replicated_dim ~flb:1 ~extent:n
  in
  let dim2 =
    match f2 with
    | `Block -> Dad.block_dim ~flb:1 ~extent:m ~pdim:1 ~p:q ()
    | `Cyclic -> Dad.cyclic_dim ~flb:1 ~extent:m ~pdim:1 ~p:q ()
    | `Repl -> Dad.replicated_dim ~flb:1 ~extent:m
  in
  Dad.make ~name:"A" ~kind:Scalar.Kreal ~grid [| dim1; dim2 |]

let test_dad_home_partition () =
  let dad = mk_dad_2d ~n:7 ~m:5 ~p:2 ~q:3 (`Block, `Cyclic) in
  (* each element has exactly one home; local counts sum to the global size *)
  let counts = Array.make 6 0 in
  for i = 1 to 7 do
    for j = 1 to 5 do
      let r = Dad.home_rank dad [| i; j |] in
      counts.(r) <- counts.(r) + 1;
      checkb "home is local" true (Dad.is_local dad ~rank:r [| i; j |])
    done
  done;
  let total = Array.fold_left ( + ) 0 counts in
  check "partition covers all" 35 total;
  Array.iteri
    (fun r c ->
      let lc = Dad.local_counts dad ~rank:r in
      check "local count matches" c (lc.(0) * lc.(1)))
    counts

let test_dad_replicated_dim () =
  let dad = mk_dad_2d ~n:4 ~m:6 ~p:2 ~q:2 (`Block, `Repl) in
  (* dim 2 replicated: element owned by all ranks in the same grid row *)
  let owners = Dad.owning_ranks dad [| 3; 2 |] in
  check "replicated over q=2" 2 (List.length owners);
  List.iter (fun r -> checkb "is_local" true (Dad.is_local dad ~rank:r [| 3; 2 |])) owners

let test_dad_local_global_roundtrip () =
  let dad = mk_dad_2d ~n:9 ~m:8 ~p:3 ~q:2 (`Cyclic, `Block) in
  for i = 1 to 9 do
    for j = 1 to 8 do
      let r = Dad.home_rank dad [| i; j |] in
      match Dad.local_indices dad ~rank:r [| i; j |] with
      | None -> Alcotest.fail "home rank must own the element"
      | Some l ->
          Alcotest.(check (array int)) "roundtrip" [| i; j |] (Dad.global_of_local dad ~rank:r l)
    done
  done

let test_dad_alloc_ghosts () =
  let dad = mk_dad_2d ~n:8 ~m:8 ~p:2 ~q:2 (`Block, `Block) in
  (Dad.dims dad).(0).Dad.ghost_lo <- 1;
  (Dad.dims dad).(0).Dad.ghost_hi <- 2;
  let local = Dad.alloc_local dad ~rank:0 in
  (* dim0: 4 owned + 3 ghost = 7, storage lb = -1 *)
  check "ghost extent" 7 (Ndarray.size local / 4);
  check "storage lb" (-1) local.Ndarray.lb.(0)

let test_bounds_set_bound () =
  let dad = mk_dad_2d ~n:12 ~m:4 ~p:3 ~q:1 (`Block, `Repl) in
  (* dim0 BLOCK over 3 procs, chunk 4; range 2:11 on grid coord 1 (owns 5..8) -> global 5..8, local 0..3 *)
  let rank1 = Grid.rank_of_coords (Dad.grid dad) [| 1; 0 |] in
  (match Bounds.set_bound dad ~dim:0 ~rank:rank1 ~glb:2 ~gub:11 ~gst:1 with
  | Some { llb; lub; lst } ->
      check "llb" 0 llb;
      check "lub" 3 lub;
      check "lst" 1 lst
  | None -> Alcotest.fail "expected non-empty bounds");
  (* inactive processor masking: range 1:4 entirely on coord 0 *)
  let rank2 = Grid.rank_of_coords (Dad.grid dad) [| 2; 0 |] in
  checkb "masked" true (Bounds.set_bound dad ~dim:0 ~rank:rank2 ~glb:1 ~gub:4 ~gst:1 = None)

let prop_bounds_partition =
  QCheck.Test.make ~name:"DAD set_bound partitions iterations across the grid" ~count:300
    QCheck.(quad (int_range 1 30) (int_range 1 5) (int_range 1 10) (int_range 1 3))
    (fun (n, p, glb, gst) ->
      let grid = Grid.make [| p |] in
      let dad =
        Dad.make ~name:"X" ~kind:Scalar.Kreal ~grid [| Dad.block_dim ~flb:1 ~extent:n ~pdim:0 ~p () |]
      in
      let gub = n in
      let total =
        List.fold_left
          (fun acc r -> acc + Bounds.iterations (Bounds.set_bound dad ~dim:0 ~rank:r ~glb ~gub ~gst))
          0
          (Util.range 0 (p - 1))
      in
      let expected = if gub < glb then 0 else ((gub - glb) / gst) + 1 in
      total = expected)

let test_global_of_local_index () =
  let dad = mk_dad_2d ~n:10 ~m:10 ~p:2 ~q:1 (`Cyclic, `Repl) in
  let rank1 = Grid.rank_of_coords (Dad.grid dad) [| 1; 0 |] in
  (* cyclic over 2: coord 1 owns globals 2,4,6,8,10 (Fortran 1-based) *)
  check "local 0" 2 (Bounds.global_of_local_index dad ~dim:0 ~rank:rank1 0);
  check "local 2" 6 (Bounds.global_of_local_index dad ~dim:0 ~rank:rank1 2);
  Alcotest.(check (option int)) "local of global" (Some 1)
    (Bounds.local_of_global_index dad ~dim:0 ~rank:rank1 4);
  Alcotest.(check (option int)) "not owned" None
    (Bounds.local_of_global_index dad ~dim:0 ~rank:rank1 5)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_distrib_partition;
      prop_distrib_roundtrip;
      prop_distrib_counts;
      prop_distrib_local_order;
      prop_layout_matches_brute;
      prop_layout_local_global;
      prop_set_bound_matches_brute;
      prop_set_bound_partitions;
      prop_bounds_partition;
    ]

let () =
  Alcotest.run "f90d_dist"
    [
      ( "distrib",
        [
          Alcotest.test_case "block basics" `Quick test_block_basic;
          Alcotest.test_case "cyclic basics" `Quick test_cyclic_basic;
          Alcotest.test_case "block-cyclic basics" `Quick test_block_cyclic_basic;
        ] );
      ( "layout",
        [ Alcotest.test_case "negative stride set_bound" `Quick test_set_bound_negative_stride ] );
      ( "grid",
        [
          Alcotest.test_case "rank/coords roundtrip" `Quick test_grid_roundtrip;
          Alcotest.test_case "ranks_along" `Quick test_grid_ranks_along;
          Alcotest.test_case "neighbour" `Quick test_grid_neighbour;
          Alcotest.test_case "hypercube gray embedding" `Quick test_grid_embedding_validity;
        ] );
      ( "dad",
        [
          Alcotest.test_case "home partition" `Quick test_dad_home_partition;
          Alcotest.test_case "replication" `Quick test_dad_replicated_dim;
          Alcotest.test_case "local/global roundtrip" `Quick test_dad_local_global_roundtrip;
          Alcotest.test_case "ghost allocation" `Quick test_dad_alloc_ghosts;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "set_bound block" `Quick test_bounds_set_bound;
          Alcotest.test_case "global/local index" `Quick test_global_of_local_index;
        ] );
      ("properties", qsuite);
    ]
