lib/commdet/subscript.mli: Ast F90d_base F90d_frontend Format
