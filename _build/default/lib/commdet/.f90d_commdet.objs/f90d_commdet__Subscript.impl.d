lib/commdet/subscript.ml: Affine Ast F90d_base F90d_frontend Format List Sema
