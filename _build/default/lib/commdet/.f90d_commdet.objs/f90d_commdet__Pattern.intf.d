lib/commdet/pattern.mli: Ast F90d_frontend Format Sema Subscript
