lib/commdet/pattern.ml: Affine Array Ast Diag F90d_base F90d_frontend Format List Printf Sema String Subscript
