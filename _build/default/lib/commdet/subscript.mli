(** Classification of one array subscript relative to the FORALL index
    variables — the raw material of Tables 1 and 2.

    [s] denotes a loop-invariant scalar expression (known only at run
    time), [c] a compile-time constant, [i] a FORALL index. *)

open F90d_frontend

type t =
  | Canonical of string  (** exactly [i] *)
  | Var_const of string * int  (** [i + c], [c <> 0] *)
  | Var_scalar of string * Ast.expr  (** [i + s] *)
  | Const of Ast.expr  (** no FORALL variable: [c] or [s] *)
  | Affine of string * F90d_base.Affine.t  (** [a*i + b], [a not in {0,1}]: invertible *)
  | Vector of string * Ast.expr  (** [V(f(i))]: indirection array *)
  | Unknown  (** several indices ([i+j]), non-linear, ... *)

val classify :
  vars:string list ->
  is_const:(string -> F90d_base.Scalar.t option) ->
  is_int_array:(string -> bool) ->
  Ast.expr ->
  t

val uses_var : t -> string option
(** The FORALL variable a classification depends on, if any. *)

val pp : Format.formatter -> t -> unit
