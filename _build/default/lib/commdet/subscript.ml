open F90d_base
open F90d_frontend

type t =
  | Canonical of string
  | Var_const of string * int
  | Var_scalar of string * Ast.expr
  | Const of Ast.expr
  | Affine of string * Affine.t
  | Vector of string * Ast.expr
  | Unknown

let uses_var = function
  | Canonical v | Var_const (v, _) | Var_scalar (v, _) | Affine (v, _) | Vector (v, _) ->
      (* Vector's variable comes from its inner subscript *)
      Some v
  | Const _ | Unknown -> None

(* i + s / s + i / i - s with [s] free of FORALL variables. *)
let var_plus_scalar ~vars (e : Ast.expr) =
  let no_forall_vars x = not (List.exists (fun v -> List.mem v vars) (Ast.vars_of x)) in
  match e.Ast.e with
  | Ast.Bin (Ast.Add, { Ast.e = Ast.Var v; _ }, s) when List.mem v vars && no_forall_vars s ->
      Some (v, s)
  | Ast.Bin (Ast.Add, s, { Ast.e = Ast.Var v; _ }) when List.mem v vars && no_forall_vars s ->
      Some (v, s)
  | Ast.Bin (Ast.Sub, { Ast.e = Ast.Var v; _ }, s) when List.mem v vars && no_forall_vars s ->
      Some (v, Ast.mk (Ast.Un (Ast.Neg, s)))
  | _ -> None

let classify ~vars ~is_const ~is_int_array (e : Ast.expr) =
  let used = List.filter (fun v -> List.mem v vars) (Ast.vars_of e) in
  let used = List.sort_uniq compare used in
  match used with
  | [] -> Const e
  | [ v ] -> (
      match Sema.affine_of ~var:v ~lookup:is_const e with
      | Some f when Affine.is_identity f -> Canonical v
      | Some f when f.Affine.a = 1 -> Var_const (v, f.Affine.b)
      | Some f when Affine.invertible f -> Affine (v, f)
      | Some _ -> Unknown (* a = 0 cannot happen: v occurs in e *)
      | None -> (
          match var_plus_scalar ~vars e with
          | Some (v, s) -> Var_scalar (v, s)
          | None -> (
              (* indirection: V(inner) with V an integer array *)
              match e.Ast.e with
              | Ast.Ref r when is_int_array r.Ast.base -> Vector (v, e)
              | _ -> Unknown)))
  | _ :: _ :: _ -> Unknown

let pp ppf = function
  | Canonical v -> Format.fprintf ppf "(%s)" v
  | Var_const (v, c) -> Format.fprintf ppf "(%s%+d)" v c
  | Var_scalar (v, _) -> Format.fprintf ppf "(%s+s)" v
  | Const _ -> Format.fprintf ppf "(s)"
  | Affine (v, f) -> Format.fprintf ppf "(%d*%s%+d)" f.Affine.a v f.Affine.b
  | Vector (v, _) -> Format.fprintf ppf "(V(%s))" v
  | Unknown -> Format.fprintf ppf "(?)"
