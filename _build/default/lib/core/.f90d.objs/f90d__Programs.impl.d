lib/core/programs.ml: Printf
