lib/core/baselines.mli: F90d_machine F90d_runtime Model Stats Topology
