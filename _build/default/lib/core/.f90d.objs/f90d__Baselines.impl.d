lib/core/baselines.ml: Array Collectives Diag Distrib Engine F90d_base F90d_dist F90d_machine F90d_runtime Float Grid Message Model Programs Rctx Stats Topology
