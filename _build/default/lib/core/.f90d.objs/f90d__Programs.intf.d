lib/core/programs.mli:
