lib/core/driver.mli: F90d_base F90d_exec F90d_frontend F90d_ir F90d_machine F90d_opt Model Stats Topology
