lib/core/driver.ml: Array Diag Engine F90d_base F90d_codegen F90d_dist F90d_exec F90d_frontend F90d_ir F90d_machine F90d_opt F90d_runtime Grid List Model Parser Rctx Schedule Sema Stats Topology
