let gauss_coeff ~n i j =
  ignore n;
  float_of_int ((((7 * i) + (11 * j)) mod 19) - 9) +. if i = j then 30. else 0.

let gauss_rhs ~n i =
  ignore n;
  float_of_int (((3 * i) mod 7) + 1)

let gauss_dist ~dist ~n =
  let dist_name = match dist with `Block -> "BLOCK" | `Cyclic -> "CYCLIC" in
  Printf.sprintf
    {|
      PROGRAM GAUSS
      INTEGER, PARAMETER :: N = %d
      REAL A(%d, %d)
      REAL W(%d), F(%d), TMPR(%d)
      REAL PIVOT, PIVMAX, T1
      INTEGER K, I, INDXR
C$    TEMPLATE T(%d)
C$    ALIGN A(I, J) WITH T(J)
C$    ALIGN TMPR(J) WITH T(J)
C$    DISTRIBUTE T(%s)

      FORALL (I = 1:N, J = 1:N)
        A(I, J) = MOD(7*I + 11*J, 19) - 9 + MERGE(30.0, 0.0, I == J)
      END FORALL
      FORALL (I = 1:N) A(I, N+1) = MOD(3*I, 7) + 1

      DO K = 1, N
C       fetch the pivot column (owner multicasts the slab)
        FORALL (I = 1:N) W(I) = A(I, K)
C       partial pivoting: scan the replicated column locally
        PIVMAX = -1.0
        INDXR = K
        DO I = K, N
          IF (ABS(W(I)) > PIVMAX) THEN
            PIVMAX = ABS(W(I))
            INDXR = I
          END IF
        END DO
C       swap rows K and INDXR (purely local under column distribution)
        IF (INDXR /= K) THEN
          FORALL (J = K:N+1) TMPR(J) = A(K, J)
          FORALL (J = K:N+1) A(K, J) = A(INDXR, J)
          FORALL (J = K:N+1) A(INDXR, J) = TMPR(J)
          T1 = W(K)
          W(K) = W(INDXR)
          W(INDXR) = T1
        END IF
C       the pivot element read: the compiler turns this into a broadcast
C       from the owner of column K -- the extra communication step of
C       Table 4 / Figure 6
        PIVOT = A(K, K)
        FORALL (J = K:N+1) A(K, J) = A(K, J) / PIVOT
C       re-fetch the multiplier column after the swap: a second multicast
C       the hand-written code fuses away (the Table 4 / Figure 6 gap)
        FORALL (I = 1:N) F(I) = A(I, K)
        FORALL (I = 1:K-1, J = K+1:N+1) A(I, J) = A(I, J) - F(I)*A(K, J)
        FORALL (I = K+1:N, J = K+1:N+1) A(I, J) = A(I, J) - F(I)*A(K, J)
        FORALL (I = 1:K-1) A(I, K) = 0.0
        FORALL (I = K+1:N) A(I, K) = 0.0
      END DO
      END
|}
    n n (n + 1) n n (n + 1) (n + 1) dist_name

let gauss ~n = gauss_dist ~dist:`Block ~n

let jacobi ~n ~iters =
  Printf.sprintf
    {|
      PROGRAM JACOBI
      INTEGER, PARAMETER :: N = %d
      INTEGER, PARAMETER :: STEPS = %d
      REAL U(%d), V(%d)
      INTEGER T
C$    TEMPLATE TP(%d)
C$    ALIGN U(I) WITH TP(I)
C$    ALIGN V(I) WITH TP(I)
C$    DISTRIBUTE TP(BLOCK)

      FORALL (I = 1:N) U(I) = MOD(3*I, 17)
      DO T = 1, STEPS
        FORALL (I = 2:N-1) V(I) = 0.5*(U(I-1) + U(I+1))
        V(1) = U(1)
        V(N) = U(N)
        U = V
      END DO
      END
|}
    n iters n n n

let jacobi2d ~n ~iters ~p ~q =
  let m = n + 2 in
  Printf.sprintf
    {|
      PROGRAM JACOBI2
      INTEGER, PARAMETER :: N = %d
      INTEGER, PARAMETER :: STEPS = %d
      REAL A(%d, %d), B(%d, %d)
      INTEGER T
C$    PROCESSORS P(%d, %d)
C$    TEMPLATE TP(%d, %d)
C$    ALIGN A(I, J) WITH TP(I, J)
C$    ALIGN B(I, J) WITH TP(I, J)
C$    DISTRIBUTE TP(BLOCK, BLOCK)

      FORALL (I = 1:N+2, J = 1:N+2) A(I, J) = MOD(I*5 + J*3, 13)
      DO T = 1, STEPS
        FORALL (I = 2:N+1, J = 2:N+1)
          B(I, J) = 0.25*(A(I-1, J) + A(I+1, J) + A(I, J-1) + A(I, J+1))
        END FORALL
        FORALL (I = 2:N+1, J = 2:N+1) A(I, J) = B(I, J)
      END DO
      END
|}
    n iters m m m m p q m m

let heat ~n ~tol =
  Printf.sprintf
    {|
      PROGRAM HEAT
      INTEGER, PARAMETER :: N = %d
      REAL, PARAMETER :: TOL = %g
      REAL U(%d), V(%d), D(%d)
      REAL ERR
      INTEGER STEPS
C$    TEMPLATE TP(%d)
C$    ALIGN U(I) WITH TP(I)
C$    ALIGN V(I) WITH TP(I)
C$    ALIGN D(I) WITH TP(I)
C$    DISTRIBUTE TP(BLOCK)

      FORALL (I = 1:N) U(I) = 0.0
      U(1) = 0.0
      U(N) = 100.0
      ERR = TOL + 1.0
      STEPS = 0
      DO WHILE (ERR > TOL)
        FORALL (I = 2:N-1) V(I) = 0.5*(U(I-1) + U(I+1))
        V(1) = U(1)
        V(N) = U(N)
        FORALL (I = 1:N) D(I) = ABS(V(I) - U(I))
        ERR = MAXVAL(D)
        U = V
        STEPS = STEPS + 1
      END DO
      PRINT *, 'converged after', STEPS, 'sweeps, residual', ERR
      END
|}
    n tol n n n n

let irregular ~n =
  Printf.sprintf
    {|
      PROGRAM IRREG
      INTEGER, PARAMETER :: N = %d
      REAL A(%d), B(%d), C(%d)
      INTEGER V(%d), U(%d)
      INTEGER T
C$    TEMPLATE TP(%d)
C$    ALIGN A(I) WITH TP(I)
C$    ALIGN B(I) WITH TP(I)
C$    ALIGN C(I) WITH TP(I)
C$    DISTRIBUTE TP(BLOCK)

      FORALL (I = 1:N) V(I) = MOD(I + N/2, N) + 1
      FORALL (I = 1:N) U(I) = N + 1 - I
      FORALL (I = 1:N) B(I) = 3*I
      DO T = 1, 4
C       gather through V, scatter through U; schedules are reused
        FORALL (I = 1:N) A(I) = B(V(I)) + T
        FORALL (I = 1:N) C(U(I)) = A(I)
      END DO
      END
|}
    n n n n n n n

let fft_butterfly ~n =
  (* one butterfly stage of the paper's Example 2 (non-canonical lhs) *)
  let incrm = n / 4 in
  Printf.sprintf
    {|
      PROGRAM BFLY
      INTEGER, PARAMETER :: N = %d
      INTEGER, PARAMETER :: INCRM = %d
      REAL X(%d), TERM2(%d)
C$    TEMPLATE TP(%d)
C$    ALIGN X(I) WITH TP(I)
C$    ALIGN TERM2(I) WITH TP(I)
C$    DISTRIBUTE TP(BLOCK)

      FORALL (I = 1:N) X(I) = MOD(7*I, 23)
      FORALL (I = 1:N) TERM2(I) = MOD(3*I, 11)
      FORALL (I = 1:INCRM, J = 0:N/(2*INCRM)-1)
        X(I + J*INCRM*2 + INCRM) = X(I + J*INCRM*2) - TERM2(I + J*INCRM*2 + INCRM)
      END FORALL
      END
|}
    n incrm n n n
