open F90d_base
open F90d_dist
open F90d_machine
open F90d_runtime

(* Column-BLOCK Gaussian elimination with partial pivoting, hand-coded
   against the runtime library.  Matrix entries come from
   [Programs.gauss_coeff]/[gauss_rhs] so results are comparable with the
   compiled program. *)
let hand_gauss_node ctx ~n =
  let p = Rctx.nprocs ctx in
  let me = Rctx.me ctx in
  let cols = Distrib.make Block ~n:(n + 1) ~p in
  let my_cols = Distrib.local_count cols ~proc:me in
  (* local section: full rows of my columns, column-major *)
  let a = Array.make (n * my_cols) 0. in
  let idx i lc = (i - 1) + (lc * n) in
  for lc = 0 to my_cols - 1 do
    let j = Distrib.global_of_local cols ~proc:me lc + 1 in
    for i = 1 to n do
      a.(idx i lc) <-
        (if j = n + 1 then Programs.gauss_rhs ~n i else Programs.gauss_coeff ~n i j)
    done
  done;
  Rctx.charge_iops ctx (2 * n * my_cols);
  let team = Collectives.team_all ctx in
  let col = Array.make n 0. in
  for k = 1 to n do
    let owner = Distrib.owner cols (k - 1) in
    (* the owner finds the pivot, swaps its own column and broadcasts the
       row index together with the swapped multiplier column: one fused
       message per step *)
    let payload =
      if me = owner then begin
        let lc = Distrib.local_of_global cols (k - 1) in
        let indxr = ref k and pivmax = ref (-1.) in
        for i = k to n do
          let v = Float.abs a.(idx i lc) in
          if v > !pivmax then begin
            pivmax := v;
            indxr := i
          end
        done;
        Rctx.charge_flops ctx (n - k + 1);
        if !indxr <> k then begin
          let t = a.(idx k lc) in
          a.(idx k lc) <- a.(idx !indxr lc);
          a.(idx !indxr lc) <- t
        end;
        let c = Array.init n (fun i0 -> a.(idx (i0 + 1) lc)) in
        Rctx.charge_copy_bytes ctx (8 * n);
        Message.Pair (Message.Ints [| !indxr |], Message.Floats c)
      end
      else Message.Empty
    in
    (match Collectives.broadcast ctx team ~root:owner payload with
    | Message.Pair (Message.Ints ix, Message.Floats c) ->
        let indxr = ix.(0) in
        Array.blit c 0 col 0 n;
        (* swap rows k and indxr in my columns (the owner's column k is
           already swapped; swapping it again would undo it) *)
        if indxr <> k then
          for lc = 0 to my_cols - 1 do
            if not (me = owner && lc = Distrib.local_of_global cols (k - 1)) then begin
              let t = a.(idx k lc) in
              a.(idx k lc) <- a.(idx indxr lc);
              a.(idx indxr lc) <- t
            end
          done
    | _ -> Diag.bug "hand_gauss: broadcast protocol error");
    let pivot = col.(k - 1) in
    (* normalise row k and eliminate, over my columns with global j >= k *)
    for lc = 0 to my_cols - 1 do
      let j = Distrib.global_of_local cols ~proc:me lc + 1 in
      if j >= k then begin
        a.(idx k lc) <- a.(idx k lc) /. pivot;
        let akj = a.(idx k lc) in
        for i = 1 to n do
          if i <> k then a.(idx i lc) <- a.(idx i lc) -. (col.(i - 1) *. akj)
        done
      end
    done;
    let active = ref 0 in
    for lc = 0 to my_cols - 1 do
      if Distrib.global_of_local cols ~proc:me lc + 1 >= k then incr active
    done;
    (* same per-element charge as the compiled loop: 2 flops + a store,
       and comparable index arithmetic *)
    Rctx.charge_flops ctx (3 * n * !active);
    Rctx.charge_iops ctx (12 * n * !active)
  done;
  (* replicate the solution column for verification *)
  let owner = Distrib.owner cols n in
  let payload =
    if me = owner then begin
      let lc = Distrib.local_of_global cols n in
      Message.Floats (Array.init n (fun i0 -> a.(idx (i0 + 1) lc)))
    end
    else Message.Empty
  in
  match Collectives.broadcast ctx team ~root:owner payload with
  | Message.Floats x -> x
  | _ -> Diag.bug "hand_gauss: final broadcast protocol error"

type gauss_run = { elapsed : float; stats : Stats.t; solution : float array }

let run_hand_gauss ?(model = Model.ipsc860) ?(topology = Topology.Hypercube) ~nprocs ~n () =
  let dims = [| nprocs |] in
  let phys_of_rank = Topology.grid_embedding topology ~nprocs dims in
  let grid = Grid.make ?phys_of_rank dims in
  let cfg = Engine.config ~model ~topology nprocs in
  let report = Engine.run cfg (fun eng -> hand_gauss_node (Rctx.make eng grid) ~n) in
  {
    elapsed = report.Engine.elapsed;
    stats = report.Engine.stats;
    solution = report.Engine.results.(Grid.phys_of_rank grid 0);
  }

let seq_gauss ~n =
  let a = Array.make_matrix (n + 1) (n + 2) 0. in
  for i = 1 to n do
    for j = 1 to n do
      a.(i).(j) <- Programs.gauss_coeff ~n i j
    done;
    a.(i).(n + 1) <- Programs.gauss_rhs ~n i
  done;
  for k = 1 to n do
    let indxr = ref k in
    for i = k to n do
      if Float.abs a.(i).(k) > Float.abs a.(!indxr).(k) then indxr := i
    done;
    if !indxr <> k then begin
      let t = a.(k) in
      a.(k) <- a.(!indxr);
      a.(!indxr) <- t
    end;
    let pivot = a.(k).(k) in
    for j = k to n + 1 do
      a.(k).(j) <- a.(k).(j) /. pivot
    done;
    for i = 1 to n do
      if i <> k then begin
        let f = a.(i).(k) in
        for j = k to n + 1 do
          a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
        done
      end
    done
  done;
  Array.init n (fun i0 -> a.(i0 + 1).(n + 1))
