(** Hand-written message-passing baselines (the "Fortran 77+MP" codes of
    §8.2), written directly against the run-time library the way a careful
    1993 programmer would.

    The Gaussian elimination baseline runs the same algorithm on the same
    column-BLOCK data layout as the compiled {!Programs.gauss}, but fuses
    each step's communication into a {e single} broadcast carrying the
    pivot row index, the pivot value and the swapped multiplier column —
    where the compiler-generated code issues a column multicast for the
    pivot search, a scalar pivot broadcast and a second multiplier-column
    multicast.  That fused-vs-separate difference is exactly the gap of
    Table 4 / Figure 6. *)

open F90d_machine

type gauss_run = {
  elapsed : float;  (** simulated parallel time, seconds *)
  stats : Stats.t;
  solution : float array;  (** replicated solution vector *)
}

val hand_gauss_node : F90d_runtime.Rctx.t -> n:int -> float array
(** The SPMD node program (exposed so tests can run it on custom
    machines); returns the solution vector on every processor. *)

val run_hand_gauss :
  ?model:Model.t -> ?topology:Topology.t -> nprocs:int -> n:int -> unit -> gauss_run
(** Set up the machine and grid and run the baseline. *)

val seq_gauss : n:int -> float array
(** Sequential oracle for the same system (host arithmetic, no machine):
    the reference solution for verification. *)
