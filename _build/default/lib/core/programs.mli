(** Canonical Fortran 90D/HPF benchmark sources (the paper's workloads),
    parameterised by problem size.  Shared by the examples, the test suite
    and the benchmark harness so everyone compiles exactly the same
    programs. *)

val gauss : n:int -> string
(** Gaussian elimination with partial pivoting on an N x (N+1) augmented
    system, column distributed — the Fortran D/HPF benchmark-suite
    program of §8 (Figure 5, Table 4, Figure 6).  Row swaps and the
    elimination update are local under column distribution; each step
    costs one column multicast plus the compiler's extra pivot broadcast —
    the O(log P) gap of Figure 6.  The matrix is seeded deterministically
    and diagonally dominated; the solution ends in column N+1.

    Column BLOCK distributed; see {!gauss_dist} for the CYCLIC variant. *)

val gauss_dist : dist:[ `Block | `Cyclic ] -> n:int -> string
(** {!gauss} with an explicit column distribution.  CYCLIC balances the
    shrinking active region across processors — the distribution-choice
    effect §3 describes — at the price of strided local loops. *)

val gauss_rhs : n:int -> int -> float
(** The right-hand side used by {!gauss} (for residual checks). *)

val gauss_coeff : n:int -> int -> int -> float
(** The coefficient matrix used by {!gauss}. *)

val jacobi : n:int -> iters:int -> string
(** 1-D Jacobi relaxation (the paper's §4 canonical-form example shape):
    BLOCK distribution, overlap shifts at the boundaries. *)

val jacobi2d : n:int -> iters:int -> p:int -> q:int -> string
(** 2-D Jacobi relaxation on an (n+2)^2 grid over a [p] x [q] processor
    grid — the paper's Example 1 stencil, overlap shifts in both
    dimensions ([p*q] must equal the machine size at run time). *)

val heat : n:int -> tol:float -> string
(** 1-D heat diffusion to convergence: a DO WHILE loop whose condition is
    a MAXVAL reduction of the residual — reductions feeding sequential
    control flow, the loosely synchronous pattern of §2.  Fixed endpoints
    0 and 100; converges to the linear profile. *)

val irregular : n:int -> string
(** Irregular gather/scatter through indirection arrays (the PARTI
    workload of §5.3.2): A(I) = B(V(I)) and C(U(I)) = A(I) inside a time
    loop, exercising schedule construction and reuse. *)

val fft_butterfly : n:int -> string
(** The paper's §4 Example 2: a non-canonical lhs butterfly step
    (x(i+j*incrm*2+incrm) = ...), exercising even iteration partitioning
    with postcomp_write. *)
