(** Lowering normalized Fortran 90D/HPF to the SPMD IR: computation
    partitioning (§4), communication detection (§5.2, via [F90d_commdet])
    and communication insertion (§5.3).

    Each FORALL becomes a pre-communication phase, a local loop nest and
    an optional write-back phase; everything else (scalar code, DO/IF,
    CALL with automatic redistribution, whole-array intrinsic movement)
    lowers structurally. *)

open F90d_frontend

val lower_program : Sema.program_env -> F90d_ir.Ir.program_ir
(** @raise F90d_base.Diag.Error on constructs outside the supported subset. *)

val lower_forall :
  Sema.unit_env ->
  vars:(string * Ast.range) list ->
  mask:Ast.expr option ->
  lhs:Ast.expr ->
  rhs:Ast.expr ->
  F90d_ir.Ir.forall * (string * int * int * int) list
(** The lowered statement plus its ghost-cell requirements (exposed for
    tests). *)
