lib/codegen/lower.mli: Ast F90d_frontend F90d_ir Sema
