lib/codegen/lower.ml: Array Ast Diag F90d_base F90d_commdet F90d_frontend F90d_ir Hashtbl Intrinsic_names Ir List Normalize Option Pattern Sema Subscript
