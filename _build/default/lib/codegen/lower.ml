open F90d_base
open F90d_frontend
open F90d_commdet
open F90d_ir

(* Fresh temporary ids, unique within one lowered unit. *)
let temp_counter = ref 0

let fresh_temp () =
  incr temp_counter;
  !temp_counter

let stmt_counter = ref 0

(* Accesses for the dimensions of a structured temporary: broadcast and
   transferred dimensions collapse to extent 1; shifted dimensions keep the
   owned extent and are indexed by the local position of their FORALL
   variable; untouched dimensions by their own subscript's local position. *)
let box_dims classes tags =
  Array.mapi
    (fun d tag ->
      match (tag, classes.(d)) with
      | (Pattern.Multicast _ | Pattern.Transfer _), _ -> Ir.Collapsed
      | Pattern.Temp_shift _, (Subscript.Var_const (v, _) | Subscript.Var_scalar (v, _)) ->
          Ir.By_sub (Ast.var v)
      | _, Subscript.Canonical v -> Ir.By_sub (Ast.var v)
      | _, Subscript.Const e -> Ir.By_sub e
      | _, Subscript.Var_const (v, _) | _, Subscript.Var_scalar (v, _) ->
          Ir.By_sub (Ast.var v)
      | _, (Subscript.Affine _ | Subscript.Vector _ | Subscript.Unknown) ->
          Diag.bug "lower: unstructured subscript in a structured temporary")
    tags

let lower_ref env ~vars (r : Ast.ref_) (plan : Pattern.ref_plan) =
  let var_names = List.map fst vars in
  let lookup v = List.assoc_opt v env.Sema.uparams in
  let is_int_array n =
    match Sema.array_spec env n with Some s -> s.Sema.skind = Ast.Integer | None -> false
  in
  let classes =
    List.map
      (fun (s : Ast.section) ->
        match s with
        | Ast.Elem e -> Subscript.classify ~vars:var_names ~is_const:lookup ~is_int_array e
        | Ast.Range _ -> Diag.bug "lower: section survived normalization")
      r.Ast.args
    |> Array.of_list
  in
  match plan with
  | Pattern.Direct -> ([], [ (r.Ast.rid, Ir.Acc_direct) ], [])
  | Pattern.Precomp_read ->
      let t = fresh_temp () in
      ([ Ir.Precomp_read { r; itemp = t; key = None } ], [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ], [])
  | Pattern.Gather ->
      let t = fresh_temp () in
      ([ Ir.Gather_read { r; itemp = t; key = None } ], [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ], [])
  | Pattern.Concat ->
      let t = fresh_temp () in
      ([ Ir.Concat { arr = r.Ast.base; temp = t } ], [ (r.Ast.rid, Ir.Acc_global_temp { temp = t }) ], [])
  | Pattern.Structured tags ->
      let comm_dims =
        Array.to_list (Array.mapi (fun d t -> (d, t)) tags)
        |> List.filter_map (fun (d, tag) ->
               match tag with
               | Pattern.Multicast _ | Pattern.Transfer _ | Pattern.Overlap _
               | Pattern.Temp_shift _ ->
                   Some d
               | Pattern.No_comm | Pattern.Local_dim -> None)
      in
      (match comm_dims with
      | [] -> ([], [ (r.Ast.rid, Ir.Acc_direct) ], [])
      | [ d ] -> (
          match tags.(d) with
          | Pattern.Overlap c ->
              let ghost = if c > 0 then (r.Ast.base, d, 0, c) else (r.Ast.base, d, -c, 0) in
              ( [ Ir.Overlap_shift { arr = r.Ast.base; dim = d; amount = c } ],
                [ (r.Ast.rid, Ir.Acc_direct) ],
                [ ghost ] )
          | Pattern.Multicast g ->
              let t = fresh_temp () in
              ( [ Ir.Multicast { arr = r.Ast.base; dim = d; g; temp = t } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.Transfer { src; dest } ->
              let t = fresh_temp () in
              ( [ Ir.Transfer { arr = r.Ast.base; dim = d; src; dest; temp = t } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.Temp_shift s ->
              let t = fresh_temp () in
              ( [ Ir.Temp_shift { arr = r.Ast.base; dim = d; amount = s; temp = t } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.No_comm | Pattern.Local_dim -> Diag.bug "lower: no-comm dim counted as comm")
      | [ d1; d2 ] -> (
          (* the fusable pair: one multicast + one shift *)
          match (tags.(d1), tags.(d2)) with
          | Pattern.Multicast g, Pattern.Temp_shift s ->
              let t = fresh_temp () in
              ( [ Ir.Multicast_shift
                    { ms_arr = r.Ast.base; mdim = d1; ms_g = g; sdim = d2; ms_amount = s; ms_temp = t; fused = true } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.Temp_shift s, Pattern.Multicast g ->
              let t = fresh_temp () in
              ( [ Ir.Multicast_shift
                    { ms_arr = r.Ast.base; mdim = d2; ms_g = g; sdim = d1; ms_amount = s; ms_temp = t; fused = true } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | _ ->
              (* other double-communication patterns: inspector fallback *)
              let t = fresh_temp () in
              ( [ Ir.Precomp_read { r; itemp = t; key = None } ],
                [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ],
                [] ))
      | _ ->
          let t = fresh_temp () in
          ( [ Ir.Precomp_read { r; itemp = t; key = None } ],
            [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ],
            [] ))

let lower_forall env ~vars ~mask ~lhs ~rhs =
  incr stmt_counter;
  let plan = Pattern.analyze_forall env ~vars ~mask ~lhs ~rhs in
  let iter, post =
    match plan.Pattern.lhs with
    | Pattern.Lhs_canonical { var_dims; guards } ->
        (Ir.It_canonical { var_dims; guards }, None)
    | Pattern.Lhs_replicated -> (Ir.It_replicated, None)
    | Pattern.Lhs_postcomp -> (Ir.It_even, Some (Ir.Postcomp_write { key = None }))
    | Pattern.Lhs_scatter -> (Ir.It_even, Some (Ir.Scatter_write { key = None }))
  in
  let pre, accesses, ghosts =
    List.fold_left
      (fun (pre, accs, ghosts) (r, rplan) ->
        let p, a, g = lower_ref env ~vars r rplan in
        (pre @ p, accs @ a, ghosts @ g))
      ([], [], []) plan.Pattern.refs
  in
  ( {
      Ir.f_vars = vars;
      f_mask = mask;
      f_lhs = plan.Pattern.lhs_ref;
      f_rhs = rhs;
      f_iter = iter;
      f_pre = pre;
      f_access = accesses;
      f_post = post;
    },
    ghosts )

let is_mover_call (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Ref r when Intrinsic_names.returns_array ~nargs:(List.length r.Ast.args) r.Ast.base ->
      Some r
  | _ -> None

let rec lower_stmt env ghosts (st : Ast.stmt) : Ir.stmt list =
  match st.Ast.s with
  | Ast.Assign (({ Ast.e = Ast.Var v; _ } as _lhs), rhs) -> (
      match is_mover_call rhs with
      | Some call ->
          if Sema.array_spec env v = None then
            Diag.error ~loc:st.Ast.sloc "intrinsic '%s' must be assigned to an array"
              call.Ast.base;
          [ Ir.Mover { target = v; call } ]
      | None ->
          if Sema.array_spec env v <> None then
            Diag.error ~loc:st.Ast.sloc "unexpected whole-array assignment after normalization";
          [ Ir.Scalar_assign { name = v; rhs } ])
  | Ast.Assign (({ Ast.e = Ast.Ref r; _ } as _lhs), rhs) ->
      if Sema.array_spec env r.Ast.base = None then
        Diag.error ~loc:st.Ast.sloc "assignment to undeclared array '%s'" r.Ast.base;
      if is_mover_call rhs <> None then
        Diag.error ~loc:st.Ast.sloc "movement intrinsics must target a whole array";
      [ Ir.Element_assign { lhs = r; rhs } ]
  | Ast.Assign _ -> Diag.error ~loc:st.Ast.sloc "invalid assignment target"
  | Ast.Forall (vars, mask, [ { Ast.s = Ast.Assign (lhs, rhs); _ } ]) ->
      let f, g = lower_forall env ~vars ~mask ~lhs ~rhs in
      ghosts := g @ !ghosts;
      [ Ir.Forall f ]
  | Ast.Forall _ -> Diag.error ~loc:st.Ast.sloc "FORALL bodies must be single assignments here"
  | Ast.Where _ -> Diag.bug "lower: WHERE survived normalization"
  | Ast.Do (var, range, body) ->
      [ Ir.Do_loop { var; range; body = lower_body env ghosts body } ]
  | Ast.While (cond, body) -> [ Ir.While_loop { cond; body = lower_body env ghosts body } ]
  | Ast.If (arms, els) ->
      [
        Ir.If_block
          {
            arms = List.map (fun (c, b) -> (c, lower_body env ghosts b)) arms;
            els = lower_body env ghosts els;
          };
      ]
  | Ast.Call (sub, args) -> [ Ir.Call_sub { sub; args } ]
  | Ast.Print args -> [ Ir.Print_stmt args ]
  | Ast.Return -> [ Ir.Return_stmt ]

and lower_body env ghosts body = List.concat_map (lower_stmt env ghosts) body

let lower_unit env =
  temp_counter := 0;
  let normalized = Normalize.normalize_unit env env.Sema.usub.Ast.body in
  let ghosts = ref [] in
  let body = lower_body env ghosts normalized in
  (* consolidate ghost requirements: widest wins per (array, dim) *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (arr, dim, lo, hi) ->
      let k = (arr, dim) in
      let lo0, hi0 = Option.value (Hashtbl.find_opt tbl k) ~default:(0, 0) in
      Hashtbl.replace tbl k (max lo lo0, max hi hi0))
    !ghosts;
  let u_ghosts = Hashtbl.fold (fun (arr, dim) (lo, hi) acc -> (arr, dim, lo, hi) :: acc) tbl [] in
  { Ir.u_name = env.Sema.usub.Ast.pname; u_env = env; u_body = body; u_ghosts }

let lower_program (penv : Sema.program_env) =
  stmt_counter := 0;
  let units = List.map (fun (name, uenv) -> (name, lower_unit uenv)) penv.Sema.uunits in
  { Ir.p_env = penv; p_units = units }
