(** Pretty-printer from the SPMD IR to the paper's "Fortran 77+MP" output
    style (§5.3): [set_BOUND] loop-bound calls, [set_DAD] descriptor
    setup, collective-communication calls, inspector scheduling and plain
    DO nests over local bounds.

    This is the human-readable artefact of compilation — what the real
    compiler handed to the node Fortran compiler; execution goes through
    the interpreter instead, so the emitted text is documentation-faithful
    rather than re-parsed. *)

val emit_unit : Ir.unit_ir -> string
val emit_program : Ir.program_ir -> string
