lib/ir/emit_f77.mli: Ir
