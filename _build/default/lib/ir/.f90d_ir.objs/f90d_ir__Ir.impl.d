lib/ir/ir.ml: Ast F90d_base F90d_frontend List Sema
