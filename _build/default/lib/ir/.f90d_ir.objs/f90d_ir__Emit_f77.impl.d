lib/ir/emit_f77.ml: Array Ast Buffer F90d_frontend Format Ir List Printf String
