lib/frontend/lexer.mli: F90d_base Token
