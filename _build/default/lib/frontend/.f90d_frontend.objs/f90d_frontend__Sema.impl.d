lib/frontend/sema.ml: Affine Array Ast Dad Diag Distrib F90d_base F90d_dist Grid Hashtbl List Loc Option Printf Scalar
