lib/frontend/intrinsic_names.ml: List
