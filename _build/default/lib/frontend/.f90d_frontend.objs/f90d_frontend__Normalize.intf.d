lib/frontend/normalize.mli: Ast Sema
