lib/frontend/parser.ml: Array Ast Diag F90d_base Lexer List Loc String Token
