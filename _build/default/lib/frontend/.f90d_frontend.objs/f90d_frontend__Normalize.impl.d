lib/frontend/normalize.ml: Array Ast Diag F90d_base Intrinsic_names List Option Printf Sema
