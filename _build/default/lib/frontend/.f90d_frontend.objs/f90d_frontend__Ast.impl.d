lib/frontend/ast.ml: F90d_base Format List Loc Option
