lib/frontend/sema.mli: Affine Ast F90d_base F90d_dist Scalar
