lib/frontend/lexer.ml: Buffer Diag F90d_base List Loc String Token
