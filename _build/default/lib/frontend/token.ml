(** Lexical tokens.  Keywords are recognised by the parser from [Ident]
    spellings (Fortran has no reserved words), except the handful with
    operator-like syntax. *)

type t =
  | Ident of string  (** upper-cased *)
  | Int of int
  | Float of float
  | String of string
  | Plus | Minus | Star | Slash | Power  (** ** *)
  | Lparen | Rparen
  | Comma | Colon | Dcolon  (** :: *)
  | Assign  (** = *)
  | Eq | Ne | Lt | Le | Gt | Ge  (** ==, /=, <, <=, >, >= and .EQ. etc. *)
  | And | Or | Not | True | False
  | Newline
  | Directive  (** start of a C$ / !HPF$ directive line *)
  | Eof

let to_string = function
  | Ident s -> s
  | Int n -> string_of_int n
  | Float f -> string_of_float f
  | String s -> Printf.sprintf "'%s'" s
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Power -> "**"
  | Lparen -> "(" | Rparen -> ")"
  | Comma -> "," | Colon -> ":" | Dcolon -> "::"
  | Assign -> "="
  | Eq -> "==" | Ne -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> ".AND." | Or -> ".OR." | Not -> ".NOT." | True -> ".TRUE." | False -> ".FALSE."
  | Newline -> "<newline>"
  | Directive -> "<directive>"
  | Eof -> "<eof>"
