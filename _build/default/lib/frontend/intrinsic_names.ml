(** Classification of Fortran 90 intrinsic names, used by the normalizer
    (elemental intrinsics distribute over FORALL indices; transformational
    ones consume whole arrays) and by code generation. *)

let elemental =
  [
    "ABS"; "SQRT"; "EXP"; "LOG"; "LOG10"; "SIN"; "COS"; "TAN"; "ASIN"; "ACOS"; "ATAN";
    "ATAN2"; "MOD"; "MODULO"; "MIN"; "MAX"; "SIGN"; "INT"; "NINT"; "REAL"; "FLOAT"; "DBLE";
    "MERGE";
  ]

let reductions = [ "SUM"; "PRODUCT"; "MAXVAL"; "MINVAL"; "ALL"; "ANY"; "COUNT"; "DOT_PRODUCT"; "DOTPRODUCT" ]
let locations = [ "MAXLOC"; "MINLOC" ]
let movers = [ "CSHIFT"; "EOSHIFT"; "SPREAD"; "TRANSPOSE"; "RESHAPE"; "PACK"; "UNPACK"; "MATMUL" ]

let queries = [ "SIZE"; "LBOUND"; "UBOUND" ]

let is_elemental n = List.mem n elemental
let is_reduction n = List.mem n reductions
let is_location n = List.mem n locations
let is_mover n = List.mem n movers
let is_query n = List.mem n queries

let is_transformational n = is_reduction n || is_location n || is_mover n || is_query n
let is_intrinsic n = is_elemental n || is_transformational n

(* Calls whose value is a whole array: the movement intrinsics, and the
   reductions in their dimensional (two-argument) form — DOT_PRODUCT's two
   arguments are both data, so it stays scalar-valued. *)
let dimensional = [ "SUM"; "PRODUCT"; "MAXVAL"; "MINVAL"; "ALL"; "ANY"; "COUNT" ]
let returns_array ~nargs n = is_mover n || (List.mem n dimensional && nargs = 2)
