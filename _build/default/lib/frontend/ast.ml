(** Abstract syntax of the Fortran 90D/HPF subset.

    Array references carry a unique id ([rid]) so later passes can attach
    communication annotations without mutating the tree. *)

open F90d_base

type kind = Integer | Real | Logical

type binop = Add | Sub | Mul | Div | Pow | Eq | Ne | Lt | Le | Gt | Ge | And | Or
type unop = Neg | Not

type expr = { e : expr_node; loc : Loc.t }

and expr_node =
  | Int_lit of int
  | Real_lit of float
  | Log_lit of bool
  | Str_lit of string
  | Var of string
  | Ref of ref_  (** array element/section reference, or function call *)
  | Bin of binop * expr * expr
  | Un of unop * expr

and ref_ = { base : string; args : section list; rid : int }

and section =
  | Elem of expr
  | Range of expr option * expr option * expr option  (** lo : hi : stride *)

type range = { lo : expr; hi : expr; st : expr option }

type stmt = { s : stmt_node; sloc : Loc.t }

and stmt_node =
  | Assign of expr * expr  (** lhs is Var or Ref *)
  | Where of expr * stmt list * stmt list
  | Forall of (string * range) list * expr option * stmt list
  | Do of string * range * stmt list
  | While of expr * stmt list
  | If of (expr * stmt list) list * stmt list
  | Call of string * expr list
  | Print of expr list
  | Return

type distform = Dblock | Dcyclic | Dcyclic_k of int | Dstar

type directive =
  | Processors of { pname : string; pdims : expr list }
  | Template of { tname : string; tdims : (expr * expr) list }
  | Align of { array : string; dummies : string list; target : string; subscripts : expr list }
  | Distribute of { template : string; forms : distform list; onto : string option }

type decl = {
  dname : string;
  dkind : kind;
  ddims : (expr * expr) list;  (** (lower, upper) bound expressions; [] = scalar *)
  dparam : expr option;  (** PARAMETER initial value *)
  dloc : Loc.t;
}

type subprogram = {
  pname : string;
  args : string list;
  decls : decl list;
  directives : (directive * Loc.t) list;
  body : stmt list;
  ploc : Loc.t;
}

type program = { main : subprogram; subs : subprogram list }

(* ------------------------------------------------------------------ *)
(* Constructors and helpers                                            *)
(* ------------------------------------------------------------------ *)

let next_rid = ref 0

let fresh_rid () =
  incr next_rid;
  !next_rid

let mk ?(loc = Loc.none) e = { e; loc }
let int_lit ?loc n = mk ?loc (Int_lit n)
let var ?loc name = mk ?loc (Var name)

let ref_ ?loc base args = mk ?loc (Ref { base; args; rid = fresh_rid () })
let bin ?loc op a b = mk ?loc (Bin (op, a, b))

let rec map_expr f expr =
  let e =
    match expr.e with
    | Int_lit _ | Real_lit _ | Log_lit _ | Str_lit _ | Var _ -> expr.e
    | Ref r ->
        Ref
          {
            r with
            args =
              List.map
                (function
                  | Elem x -> Elem (map_expr f x)
                  | Range (a, b, c) ->
                      Range
                        ( Option.map (map_expr f) a,
                          Option.map (map_expr f) b,
                          Option.map (map_expr f) c ))
                r.args;
          }
    | Bin (op, a, b) -> Bin (op, map_expr f a, map_expr f b)
    | Un (op, a) -> Un (op, map_expr f a)
  in
  f { expr with e }

(** All array/function references in an expression, left to right. *)
let rec refs_of expr =
  match expr.e with
  | Int_lit _ | Real_lit _ | Log_lit _ | Str_lit _ | Var _ -> []
  | Ref r ->
      let inner =
        List.concat_map
          (function
            | Elem x -> refs_of x
            | Range (a, b, c) ->
                List.concat_map (function Some x -> refs_of x | None -> []) [ a; b; c ])
          r.args
      in
      (r :: inner)
  | Bin (_, a, b) -> refs_of a @ refs_of b
  | Un (_, a) -> refs_of a

(** Free variable names of an expression. *)
let rec vars_of expr =
  match expr.e with
  | Int_lit _ | Real_lit _ | Log_lit _ | Str_lit _ -> []
  | Var v -> [ v ]
  | Ref r ->
      List.concat_map
        (function
          | Elem x -> vars_of x
          | Range (a, b, c) ->
              List.concat_map (function Some x -> vars_of x | None -> []) [ a; b; c ])
        r.args
  | Bin (_, a, b) -> vars_of a @ vars_of b
  | Un (_, a) -> vars_of a

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "**"
  | Eq -> ".EQ." | Ne -> ".NE." | Lt -> ".LT." | Le -> ".LE." | Gt -> ".GT." | Ge -> ".GE."
  | And -> ".AND." | Or -> ".OR."

let rec pp_expr ppf expr =
  match expr.e with
  | Int_lit n -> Format.pp_print_int ppf n
  | Real_lit r -> Format.fprintf ppf "%g" r
  | Log_lit b -> Format.pp_print_string ppf (if b then ".TRUE." else ".FALSE.")
  | Str_lit s -> Format.fprintf ppf "'%s'" s
  | Var v -> Format.pp_print_string ppf v
  | Ref r ->
      Format.fprintf ppf "%s(%a)" r.base
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp_section)
        r.args
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Un (Neg, a) -> Format.fprintf ppf "(-%a)" pp_expr a
  | Un (Not, a) -> Format.fprintf ppf "(.NOT. %a)" pp_expr a

and pp_section ppf = function
  | Elem e -> pp_expr ppf e
  | Range (a, b, c) ->
      let pp_opt ppf = function Some e -> pp_expr ppf e | None -> () in
      Format.fprintf ppf "%a:%a" pp_opt a pp_opt b;
      match c with Some e -> Format.fprintf ppf ":%a" pp_expr e | None -> ()

let kind_name = function Integer -> "INTEGER" | Real -> "REAL" | Logical -> "LOGICAL"
