(** Hand-written lexer for free-form Fortran 90D/HPF source.

    - case-insensitive (identifiers are upper-cased);
    - [!] starts a comment; [&] at end of line continues the statement;
    - lines beginning with [C$], [c$], [!HPF$] or [CHPF$] become a
      {!Token.Directive} marker followed by the directive's tokens;
    - statement boundaries are {!Token.Newline} tokens (consecutive ones
      are collapsed). *)

val tokenize : file:string -> string -> (Token.t * F90d_base.Loc.t) list
(** @raise F90d_base.Diag.Error on malformed input. *)
