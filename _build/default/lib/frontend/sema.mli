(** Semantic analysis: symbol tables and directive resolution.

    For each program unit, PARAMETER constants are folded, scalars and
    arrays are catalogued, and the PROCESSORS / TEMPLATE / ALIGN /
    DISTRIBUTE directives are resolved into per-array mapping {e specs} —
    alignment affine functions, distribution forms, template extents and
    processor-grid dimensions.  Specs are machine-independent;
    {!instantiate} turns them into DADs over a concrete grid (whose
    physical embedding the driver picks from the target topology), which
    is what keeps compilation decoupled from the machine (§3, stage 3). *)

open F90d_base

type sdim = {
  sflb : int;  (** declared lower bound *)
  sext : int;
  salign : Affine.t;  (** 0-based array index -> 0-based template index *)
  sform : Ast.distform;
  stn : int;  (** template extent *)
  spdim : int option;  (** processor-grid dimension *)
}

type array_spec = { skind : Ast.kind; sdims : sdim array }

type unit_env = {
  usub : Ast.subprogram;
  uparams : (string * Scalar.t) list;
  uscalars : (string * Ast.kind) list;
  uarrays : (string * array_spec) list;
  ugrid : int array option;  (** evaluated PROCESSORS extents *)
}

type program_env = { uprog : Ast.program; uunits : (string * unit_env) list }

val analyze : Ast.program -> program_env
(** @raise Diag.Error on semantic errors (unknown template, non-affine
    alignment, more distributed dimensions than grid dimensions, ...). *)

val find_unit : program_env -> string -> unit_env
val main_env : program_env -> unit_env

val grid_dims : program_env -> nprocs:int -> int array
(** The main program's PROCESSORS extents; a 1-D grid covering the whole
    machine when the directive is absent.  Errors if the product does not
    equal [nprocs]. *)

val instantiate : unit_env -> grid:F90d_dist.Grid.t -> (string * F90d_dist.Dad.t) list
(** Build this unit's DADs over a concrete grid. *)

val array_spec : unit_env -> string -> array_spec option
val scalar_kind : unit_env -> string -> Ast.kind option
val is_distributed : array_spec -> bool

val eval_const : (string -> Scalar.t option) -> Ast.expr -> Scalar.t
(** Constant folding over parameters; errors on non-constant input. *)

val affine_of : var:string -> lookup:(string -> Scalar.t option) -> Ast.expr -> Affine.t option
(** Recognise [a*var + b] with constant [a], [b]. *)
