open F90d_base

let counter = ref 0

let fresh_var () =
  incr counter;
  Printf.sprintf "I__%d" !counter

let is_array env name = Sema.array_spec env name <> None

(* Default bounds of dimension [d] of array [name]. *)
let dim_bounds env name d =
  match Sema.array_spec env name with
  | Some spec when d < Array.length spec.Sema.sdims ->
      let sd = spec.Sema.sdims.(d) in
      (sd.Sema.sflb, sd.Sema.sflb + sd.Sema.sext - 1)
  | _ -> Diag.error "'%s' has no dimension %d" name (d + 1)

(* The index expression substituted for the k-th Range of an rhs reference:
   position p of the lhs section (var iterating lo..hi:st) maps to
   rlo + (var - lo)/st * rst.  With unit strides this folds to var + (rlo-lo). *)
let mapped_index ~var ~(lhs : Ast.expr * Ast.expr option) ~(rhs : Ast.expr option * Ast.expr option)
    =
  let llo, lst = lhs in
  let rlo, rst = rhs in
  let one = Ast.int_lit 1 in
  let lst = Option.value lst ~default:one in
  let rst = Option.value rst ~default:one in
  let rlo = Option.value rlo ~default:one in
  let v = Ast.var var in
  let is_one (e : Ast.expr) = match e.Ast.e with Ast.Int_lit 1 -> true | _ -> false in
  if is_one lst && is_one rst then
    (* var + (rlo - llo) *)
    match (rlo.Ast.e, llo.Ast.e) with
    | Ast.Int_lit a, Ast.Int_lit b when a = b -> v
    | Ast.Int_lit a, Ast.Int_lit b -> Ast.bin Ast.Add v (Ast.int_lit (a - b))
    | _ -> Ast.bin Ast.Add v (Ast.bin Ast.Sub rlo llo)
  else
    Ast.bin Ast.Add rlo
      (Ast.bin Ast.Mul (Ast.bin Ast.Div (Ast.bin Ast.Sub v llo) lst) rst)

(* Rewrite an expression elementwise: every Range in a reference to a known
   array is replaced positionally using the lhs section descriptors; bare
   Vars naming arrays become fully-indexed references.  Transformational
   intrinsic calls are left whole. *)
let rec rewrite_elementwise env ~vars ~lhs_secs (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Log_lit _ | Ast.Str_lit _ -> e
  | Ast.Var v when is_array env v ->
      (* whole array: conforming rank required *)
      let spec = Option.get (Sema.array_spec env v) in
      if Array.length spec.Sema.sdims <> List.length vars then
        Diag.error ~loc:e.Ast.loc "array '%s' does not conform to the assignment target" v;
      Ast.ref_ ~loc:e.Ast.loc v (List.map (fun var -> Ast.Elem (Ast.var var)) vars)
  | Ast.Var _ -> e
  | Ast.Un (op, a) -> { e with Ast.e = Ast.Un (op, rewrite_elementwise env ~vars ~lhs_secs a) }
  | Ast.Bin (op, a, b) ->
      {
        e with
        Ast.e =
          Ast.Bin
            ( op,
              rewrite_elementwise env ~vars ~lhs_secs a,
              rewrite_elementwise env ~vars ~lhs_secs b );
      }
  | Ast.Ref r when is_array env r.Ast.base ->
      let next = ref 0 in
      let args =
        List.map
          (fun (sec : Ast.section) ->
            match sec with
            | Ast.Elem x -> Ast.Elem (rewrite_elementwise env ~vars ~lhs_secs x)
            | Ast.Range (rlo, _rhi, rst) ->
                let k = !next in
                incr next;
                if k >= List.length vars then
                  Diag.error ~loc:e.Ast.loc
                    "section of '%s' has more dimensions than the assignment target" r.Ast.base;
                let var = List.nth vars k in
                let llo, lst = List.nth lhs_secs k in
                let dim_idx =
                  (* position of this section in the reference *)
                  let rec count i = function
                    | [] -> i
                    | s :: _ when s == sec -> i
                    | _ :: tl -> count (i + 1) tl
                  in
                  count 0 r.Ast.args
                in
                let dlb, _ = dim_bounds env r.Ast.base dim_idx in
                let rlo = match rlo with Some x -> Some x | None -> Some (Ast.int_lit dlb) in
                Ast.Elem (mapped_index ~var ~lhs:(llo, lst) ~rhs:(rlo, rst)))
          r.Ast.args
      in
      if !next <> 0 && !next <> List.length vars then
        Diag.error ~loc:e.Ast.loc "section of '%s' does not conform to the assignment target"
          r.Ast.base;
      { e with Ast.e = Ast.Ref { r with Ast.args = args } }
  | Ast.Ref r when Intrinsic_names.is_transformational r.Ast.base -> e
  | Ast.Ref r when Intrinsic_names.is_elemental r.Ast.base ->
      let args =
        List.map
          (function
            | Ast.Elem x -> Ast.Elem (rewrite_elementwise env ~vars ~lhs_secs x)
            | Ast.Range _ ->
                Diag.error ~loc:e.Ast.loc "array section as elemental intrinsic argument")
          r.Ast.args
      in
      { e with Ast.e = Ast.Ref { r with Ast.args } }
  | Ast.Ref _ -> e

(* Does an expression mention a whole known array or an array section
   (i.e. does the assignment need forall-ization)? *)
let rec has_array_context env (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Log_lit _ | Ast.Str_lit _ -> false
  | Ast.Var v -> is_array env v
  | Ast.Un (_, a) -> has_array_context env a
  | Ast.Bin (_, a, b) -> has_array_context env a || has_array_context env b
  | Ast.Ref r when Intrinsic_names.is_transformational r.Ast.base -> false
  | Ast.Ref r ->
      List.exists
        (function Ast.Range _ -> true | Ast.Elem x -> has_array_context env x)
        r.Ast.args

let is_mover_call (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Ref r -> Intrinsic_names.returns_array ~nargs:(List.length r.Ast.args) r.Ast.base
  | _ -> false

(* Build the FORALL for an array assignment.  Returns None when the
   statement is already elemental/scalar. *)
let forallize env ?(mask = None) ~loc lhs rhs =
  (* normalise the lhs to a reference with explicit sections *)
  let base, secs =
    match lhs.Ast.e with
    | Ast.Var v when is_array env v ->
        let spec = Option.get (Sema.array_spec env v) in
        (v, List.init (Array.length spec.Sema.sdims) (fun _ -> Ast.Range (None, None, None)))
    | Ast.Ref r when is_array env r.Ast.base -> (r.Ast.base, r.Ast.args)
    | _ -> ("", [])
  in
  if base = "" then None
  else begin
    let has_range = List.exists (function Ast.Range _ -> true | _ -> false) secs in
    if (not has_range) && not (has_array_context env rhs || Option.is_some mask) then None
    else begin
      (* one forall variable per lhs Range *)
      let triplets = ref [] and lhs_secs = ref [] and vars = ref [] in
      let new_args =
        List.mapi
          (fun d sec ->
            match sec with
            | Ast.Elem x -> Ast.Elem x
            | Ast.Range (lo, hi, stp) ->
                let dlb, dub = dim_bounds env base d in
                let lo = Option.value lo ~default:(Ast.int_lit dlb) in
                let hi = Option.value hi ~default:(Ast.int_lit dub) in
                let v = fresh_var () in
                triplets := (v, { Ast.lo; hi; st = stp }) :: !triplets;
                lhs_secs := (lo, stp) :: !lhs_secs;
                vars := v :: !vars;
                Ast.Elem (Ast.var v))
          secs
      in
      let vars = List.rev !vars
      and lhs_secs = List.rev !lhs_secs
      and triplets = List.rev !triplets in
      if vars = [] then None
      else begin
        let rhs' = rewrite_elementwise env ~vars ~lhs_secs rhs in
        let mask' = Option.map (rewrite_elementwise env ~vars ~lhs_secs) mask in
        let lhs' = Ast.ref_ ~loc base new_args in
        Some
          {
            Ast.s =
              Ast.Forall (triplets, mask', [ { Ast.s = Ast.Assign (lhs', rhs'); sloc = loc } ]);
            sloc = loc;
          }
      end
    end
  end

let rec normalize_stmt env (st : Ast.stmt) : Ast.stmt list =
  match st.Ast.s with
  | Ast.Assign (lhs, rhs) ->
      (* whole-array intrinsic movement stays a single statement *)
      if is_mover_call rhs then [ st ]
      else (
        match forallize env ~loc:st.Ast.sloc lhs rhs with
        | Some f -> [ f ]
        | None -> [ st ])
  | Ast.Where (mask, body, els) ->
      let assigns_of stmts which_mask =
        List.concat_map
          (fun (s : Ast.stmt) ->
            match s.Ast.s with
            | Ast.Assign (lhs, rhs) -> (
                match forallize env ~mask:(Some which_mask) ~loc:s.Ast.sloc lhs rhs with
                | Some f -> [ f ]
                | None ->
                    Diag.error ~loc:s.Ast.sloc "WHERE body assignment is not an array assignment")
            | _ -> Diag.error ~loc:s.Ast.sloc "only assignments are allowed in WHERE")
          stmts
      in
      let neg = Ast.mk (Ast.Un (Ast.Not, mask)) in
      assigns_of body mask @ assigns_of els neg
  | Ast.Forall (triplets, mask, body) ->
      (* statement-at-a-time semantics: split multi-statement constructs *)
      List.map
        (fun (s : Ast.stmt) ->
          match s.Ast.s with
          | Ast.Assign _ -> { Ast.s = Ast.Forall (triplets, mask, [ s ]); sloc = st.Ast.sloc }
          | _ -> Diag.error ~loc:s.Ast.sloc "only assignments are allowed in FORALL")
        body
  | Ast.Do (v, r, body) -> [ { st with Ast.s = Ast.Do (v, r, normalize_body env body) } ]
  | Ast.While (c, body) -> [ { st with Ast.s = Ast.While (c, normalize_body env body) } ]
  | Ast.If (arms, els) ->
      [
        {
          st with
          Ast.s =
            Ast.If
              ( List.map (fun (c, b) -> (c, normalize_body env b)) arms,
                normalize_body env els );
        };
      ]
  | Ast.Call _ | Ast.Print _ | Ast.Return -> [ st ]

and normalize_body env body = List.concat_map (normalize_stmt env) body

let normalize_unit env body = normalize_body env body
