(** The array-statement normalizer (§2): every array assignment and WHERE
    statement becomes an equivalent FORALL, so all later passes deal with
    FORALL only.

    - [A = B + 1]                  -> [FORALL (i1=..,i2=..) A(i1,i2) = B(i1,i2) + 1]
    - [A(1:N,k) = 2*B(2:N+1,k)]    -> [FORALL (i=1:N) A(i,k) = 2*B(i+1,k)]
    - [WHERE (M > 0) A = B]        -> [FORALL (...) with mask M(...) > 0]
    - multi-statement FORALL constructs split into consecutive
      single-statement FORALLs (Fortran's statement-at-a-time semantics).

    Elemental intrinsics distribute over the new indices; transformational
    intrinsics (SUM, CSHIFT, MATMUL, ...) keep whole-array arguments. *)

val normalize_unit : Sema.unit_env -> Ast.stmt list -> Ast.stmt list
(** @raise F90d_base.Diag.Error on non-conforming array expressions. *)
