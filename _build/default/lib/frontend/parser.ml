open F90d_base

type state = { toks : (Token.t * Loc.t) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let peek_loc st = snd st.toks.(st.cur)
let peek2 st = if st.cur + 1 < Array.length st.toks then fst st.toks.(st.cur + 1) else Token.Eof

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let next st =
  let t = peek st and l = peek_loc st in
  advance st;
  (t, l)

let error st fmt = Diag.error ~loc:(peek_loc st) fmt

let expect st tok =
  if peek st = tok then advance st
  else error st "expected '%s' but found '%s'" (Token.to_string tok) (Token.to_string (peek st))

let expect_ident st =
  match next st with
  | Token.Ident name, _ -> name
  | t, l -> Diag.error ~loc:l "expected an identifier, found '%s'" (Token.to_string t)

let at_keyword st kw = match peek st with Token.Ident name -> name = kw | _ -> false

let eat_keyword st kw =
  if at_keyword st kw then begin
    advance st;
    true
  end
  else false

let skip_newlines st =
  while peek st = Token.Newline do
    advance st
  done

let end_of_stmt st =
  match peek st with
  | Token.Newline ->
      advance st;
      skip_newlines st
  | Token.Eof -> ()
  | t -> error st "unexpected '%s' at end of statement" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* precedence: .OR. < .AND. < .NOT. < comparisons < +,- < *,/ < unary < ** *)
let rec parse_expr st = parse_or st

and parse_or st =
  let a = parse_and st in
  if peek st = Token.Or then begin
    let loc = peek_loc st in
    advance st;
    Ast.bin ~loc Ast.Or a (parse_or st)
  end
  else a

and parse_and st =
  let a = parse_not st in
  if peek st = Token.And then begin
    let loc = peek_loc st in
    advance st;
    Ast.bin ~loc Ast.And a (parse_and st)
  end
  else a

and parse_not st =
  if peek st = Token.Not then begin
    let loc = peek_loc st in
    advance st;
    Ast.mk ~loc (Ast.Un (Ast.Not, parse_not st))
  end
  else parse_cmp st

and parse_cmp st =
  let a = parse_additive st in
  let op =
    match peek st with
    | Token.Eq -> Some Ast.Eq
    | Token.Ne -> Some Ast.Ne
    | Token.Lt -> Some Ast.Lt
    | Token.Le -> Some Ast.Le
    | Token.Gt -> Some Ast.Gt
    | Token.Ge -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> a
  | Some op ->
      let loc = peek_loc st in
      advance st;
      Ast.bin ~loc op a (parse_additive st)

and parse_additive st =
  let rec go a =
    match peek st with
    | Token.Plus ->
        let loc = peek_loc st in
        advance st;
        go (Ast.bin ~loc Ast.Add a (parse_multiplicative st))
    | Token.Minus ->
        let loc = peek_loc st in
        advance st;
        go (Ast.bin ~loc Ast.Sub a (parse_multiplicative st))
    | _ -> a
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go a =
    match peek st with
    | Token.Star ->
        let loc = peek_loc st in
        advance st;
        go (Ast.bin ~loc Ast.Mul a (parse_unary st))
    | Token.Slash ->
        let loc = peek_loc st in
        advance st;
        go (Ast.bin ~loc Ast.Div a (parse_unary st))
    | _ -> a
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.Minus ->
      let loc = peek_loc st in
      advance st;
      Ast.mk ~loc (Ast.Un (Ast.Neg, parse_unary st))
  | Token.Plus ->
      advance st;
      parse_unary st
  | _ -> parse_power st

and parse_power st =
  let a = parse_primary st in
  if peek st = Token.Power then begin
    let loc = peek_loc st in
    advance st;
    (* right-associative *)
    Ast.bin ~loc Ast.Pow a (parse_unary st)
  end
  else a

and parse_primary st =
  match next st with
  | Token.Int n, loc -> Ast.int_lit ~loc n
  | Token.Float f, loc -> Ast.mk ~loc (Ast.Real_lit f)
  | Token.True, loc -> Ast.mk ~loc (Ast.Log_lit true)
  | Token.False, loc -> Ast.mk ~loc (Ast.Log_lit false)
  | Token.String s, loc -> Ast.mk ~loc (Ast.Str_lit s)
  | Token.Lparen, _ ->
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Ident name, loc ->
      if peek st = Token.Lparen then begin
        advance st;
        let args = parse_sections st in
        expect st Token.Rparen;
        Ast.ref_ ~loc name args
      end
      else Ast.var ~loc name
  | t, l -> Diag.error ~loc:l "expected an expression, found '%s'" (Token.to_string t)

and parse_sections st =
  let rec go acc =
    let s = parse_section st in
    if peek st = Token.Comma then begin
      advance st;
      go (s :: acc)
    end
    else List.rev (s :: acc)
  in
  go []

and parse_section st =
  (* ':'-led, or expr possibly followed by ':' *)
  if peek st = Token.Colon then begin
    advance st;
    parse_section_tail st None
  end
  else begin
    let e = parse_expr st in
    if peek st = Token.Colon then begin
      advance st;
      parse_section_tail st (Some e)
    end
    else Ast.Elem e
  end

and parse_section_tail st lo =
  let hi =
    match peek st with
    | Token.Comma | Token.Rparen | Token.Colon -> None
    | _ -> Some (parse_expr st)
  in
  let stp =
    if peek st = Token.Colon then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  Ast.Range (lo, hi, stp)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let kind_of_keyword = function
  | "INTEGER" -> Some Ast.Integer
  | "REAL" | "DOUBLEPRECISION" -> Some Ast.Real
  | "LOGICAL" -> Some Ast.Logical
  | _ -> None

let parse_dim_decl st =
  (* e or e:e *)
  let parse_one () =
    let a = parse_expr st in
    if peek st = Token.Colon then begin
      advance st;
      let b = parse_expr st in
      (a, b)
    end
    else (Ast.int_lit 1, a)
  in
  let rec go acc =
    let d = parse_one () in
    if peek st = Token.Comma then begin
      advance st;
      go (d :: acc)
    end
    else List.rev (d :: acc)
  in
  go []

let parse_decl_line st kind =
  let loc = peek_loc st in
  let is_param = ref false in
  let shared_dims = ref [] in
  (* attribute list: , PARAMETER / , DIMENSION(...) *)
  while peek st = Token.Comma do
    advance st;
    match next st with
    | Token.Ident "PARAMETER", _ -> is_param := true
    | Token.Ident "DIMENSION", _ ->
        expect st Token.Lparen;
        shared_dims := parse_dim_decl st;
        expect st Token.Rparen
    | t, l -> Diag.error ~loc:l "unknown declaration attribute '%s'" (Token.to_string t)
  done;
  if peek st = Token.Dcolon then advance st;
  let rec items acc =
    let dname = expect_ident st in
    let ddims =
      if peek st = Token.Lparen then begin
        advance st;
        let d = parse_dim_decl st in
        expect st Token.Rparen;
        d
      end
      else !shared_dims
    in
    let dparam =
      if peek st = Token.Assign then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    if !is_param && dparam = None then
      Diag.error ~loc "PARAMETER '%s' needs an initial value" dname;
    let decl = { Ast.dname; dkind = kind; ddims; dparam; dloc = loc } in
    if peek st = Token.Comma then begin
      advance st;
      items (decl :: acc)
    end
    else List.rev (decl :: acc)
  in
  let ds = items [] in
  end_of_stmt st;
  ds

(* ------------------------------------------------------------------ *)
(* Directives                                                          *)
(* ------------------------------------------------------------------ *)

let parse_distform st =
  match next st with
  | Token.Ident "BLOCK", _ -> Ast.Dblock
  | Token.Ident "CYCLIC", _ ->
      if peek st = Token.Lparen then begin
        advance st;
        let k =
          match next st with
          | Token.Int k, _ -> k
          | t, l -> Diag.error ~loc:l "CYCLIC(k) expects an integer, found '%s'" (Token.to_string t)
        in
        expect st Token.Rparen;
        Ast.Dcyclic_k k
      end
      else Ast.Dcyclic
  | Token.Star, _ -> Ast.Dstar
  | t, l -> Diag.error ~loc:l "unknown distribution '%s'" (Token.to_string t)

let parse_directive st =
  let loc = peek_loc st in
  let d =
    match next st with
    | Token.Ident "PROCESSORS", _ ->
        let pname, _ =
          if peek st = Token.Lparen then ("PROCS", ())
          else (expect_ident st, ())
        in
        expect st Token.Lparen;
        let rec dims acc =
          let e = parse_expr st in
          if peek st = Token.Comma then begin
            advance st;
            dims (e :: acc)
          end
          else List.rev (e :: acc)
        in
        let pdims = dims [] in
        expect st Token.Rparen;
        Ast.Processors { pname; pdims }
    | Token.Ident ("TEMPLATE" | "DECOMPOSITION"), _ ->
        let tname = expect_ident st in
        expect st Token.Lparen;
        let tdims = parse_dim_decl st in
        expect st Token.Rparen;
        Ast.Template { tname; tdims }
    | Token.Ident "ALIGN", _ ->
        let array = expect_ident st in
        let dummies =
          if peek st = Token.Lparen then begin
            advance st;
            let rec go acc =
              let v = expect_ident st in
              if peek st = Token.Comma then begin
                advance st;
                go (v :: acc)
              end
              else List.rev (v :: acc)
            in
            let ds = go [] in
            expect st Token.Rparen;
            ds
          end
          else []
        in
        if not (eat_keyword st "WITH") then error st "expected WITH in ALIGN directive";
        let target = expect_ident st in
        let subscripts =
          if peek st = Token.Lparen then begin
            advance st;
            let rec go acc =
              let e =
                if peek st = Token.Star then begin
                  advance st;
                  Ast.mk (Ast.Var "*")
                end
                else parse_expr st
              in
              if peek st = Token.Comma then begin
                advance st;
                go (e :: acc)
              end
              else List.rev (e :: acc)
            in
            let es = go [] in
            expect st Token.Rparen;
            es
          end
          else []
        in
        Ast.Align { array; dummies; target; subscripts }
    | Token.Ident "DISTRIBUTE", _ ->
        let template = expect_ident st in
        expect st Token.Lparen;
        let rec go acc =
          let f = parse_distform st in
          if peek st = Token.Comma then begin
            advance st;
            go (f :: acc)
          end
          else List.rev (f :: acc)
        in
        let forms = go [] in
        expect st Token.Rparen;
        let onto = if eat_keyword st "ONTO" then Some (expect_ident st) else None in
        Ast.Distribute { template; forms; onto }
    | t, l -> Diag.error ~loc:l "unknown directive '%s'" (Token.to_string t)
  in
  end_of_stmt st;
  (d, loc)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_range_after_assign st =
  let lo = parse_expr st in
  expect st Token.Comma;
  let hi = parse_expr st in
  let stp =
    if peek st = Token.Comma then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  { Ast.lo; hi; st = stp }

let parse_forall_triplet st =
  let name = expect_ident st in
  expect st Token.Assign;
  let lo = parse_expr st in
  expect st Token.Colon;
  let hi = parse_expr st in
  let stp =
    if peek st = Token.Colon then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  (name, { Ast.lo; hi; st = stp })

let is_end_keyword st kws =
  (* END <kw> | END<kw> *)
  (at_keyword st "END" && match peek2 st with Token.Ident k -> List.mem k kws | _ -> false)
  || List.exists (fun k -> at_keyword st ("END" ^ k)) kws

let eat_end st kws =
  (if at_keyword st "END" then begin
     advance st;
     match peek st with Token.Ident k when List.mem k kws -> advance st | _ -> ()
   end
   else
     match peek st with
     | Token.Ident k when List.exists (fun kw -> k = "END" ^ kw) kws -> advance st
     | _ -> error st "expected END %s" (String.concat "/" kws));
  end_of_stmt st

let rec parse_stmt st =
  let loc = peek_loc st in
  match peek st with
  | Token.Ident "DO" -> parse_do st loc
  | Token.Ident "IF" -> parse_if st loc
  | Token.Ident "FORALL" -> parse_forall st loc
  | Token.Ident "WHERE" -> parse_where st loc
  | Token.Ident "CALL" ->
      advance st;
      let name = expect_ident st in
      let args =
        if peek st = Token.Lparen then begin
          advance st;
          if peek st = Token.Rparen then begin
            advance st;
            []
          end
          else begin
            let rec go acc =
              let e = parse_expr st in
              if peek st = Token.Comma then begin
                advance st;
                go (e :: acc)
              end
              else List.rev (e :: acc)
            in
            let es = go [] in
            expect st Token.Rparen;
            es
          end
        end
        else []
      in
      end_of_stmt st;
      { Ast.s = Ast.Call (name, args); sloc = loc }
  | Token.Ident "PRINT" ->
      advance st;
      expect st Token.Star;
      let args =
        if peek st = Token.Comma then begin
          advance st;
          let rec go acc =
            let e = parse_expr st in
            if peek st = Token.Comma then begin
              advance st;
              go (e :: acc)
            end
            else List.rev (e :: acc)
          in
          go []
        end
        else []
      in
      end_of_stmt st;
      { Ast.s = Ast.Print args; sloc = loc }
  | Token.Ident "RETURN" ->
      advance st;
      end_of_stmt st;
      { Ast.s = Ast.Return; sloc = loc }
  | _ -> parse_assignment st loc

and parse_assignment st loc =
  let lhs = parse_primary st in
  (match lhs.Ast.e with
  | Ast.Var _ | Ast.Ref _ -> ()
  | _ -> Diag.error ~loc "assignment target must be a variable or array reference");
  expect st Token.Assign;
  let rhs = parse_expr st in
  end_of_stmt st;
  { Ast.s = Ast.Assign (lhs, rhs); sloc = loc }

and parse_body st ~stop =
  let rec go acc =
    skip_newlines st;
    if stop () || peek st = Token.Eof then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_do st loc =
  advance st;
  if at_keyword st "WHILE" then begin
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    end_of_stmt st;
    let body = parse_body st ~stop:(fun () -> is_end_keyword st [ "DO" ]) in
    eat_end st [ "DO" ];
    { Ast.s = Ast.While (cond, body); sloc = loc }
  end
  else begin
    let v = expect_ident st in
    expect st Token.Assign;
    let range = parse_range_after_assign st in
    end_of_stmt st;
    let body = parse_body st ~stop:(fun () -> is_end_keyword st [ "DO" ]) in
    eat_end st [ "DO" ];
    { Ast.s = Ast.Do (v, range, body); sloc = loc }
  end

and parse_if st loc =
  advance st;
  expect st Token.Lparen;
  let cond = parse_expr st in
  expect st Token.Rparen;
  if at_keyword st "THEN" then begin
    advance st;
    end_of_stmt st;
    let arms = ref [] in
    let cur_cond = ref cond in
    let els = ref [] in
    let finished = ref false in
    while not !finished do
      let stop () =
        is_end_keyword st [ "IF" ] || at_keyword st "ELSE" || at_keyword st "ELSEIF"
      in
      let body = parse_body st ~stop in
      arms := (!cur_cond, body) :: !arms;
      if at_keyword st "ELSEIF" || (at_keyword st "ELSE" && peek2 st = Token.Ident "IF") then begin
        if at_keyword st "ELSEIF" then advance st
        else begin
          advance st;
          advance st
        end;
        expect st Token.Lparen;
        cur_cond := parse_expr st;
        expect st Token.Rparen;
        if not (eat_keyword st "THEN") then error st "expected THEN";
        end_of_stmt st
      end
      else if at_keyword st "ELSE" then begin
        advance st;
        end_of_stmt st;
        els := parse_body st ~stop:(fun () -> is_end_keyword st [ "IF" ]);
        eat_end st [ "IF" ];
        finished := true
      end
      else begin
        eat_end st [ "IF" ];
        finished := true
      end
    done;
    { Ast.s = Ast.If (List.rev !arms, !els); sloc = loc }
  end
  else begin
    (* one-line IF *)
    let body = parse_stmt st in
    { Ast.s = Ast.If ([ (cond, [ body ]) ], []); sloc = loc }
  end

and parse_forall st loc =
  advance st;
  expect st Token.Lparen;
  let rec go triplets =
    let t = parse_forall_triplet st in
    if peek st = Token.Comma then begin
      advance st;
      (* next element: triplet (ident '=') or mask expression *)
      match (peek st, peek2 st) with
      | Token.Ident _, Token.Assign -> go (t :: triplets)
      | _ ->
          let mask = parse_expr st in
          (List.rev (t :: triplets), Some mask)
    end
    else (List.rev (t :: triplets), None)
  in
  let triplets, mask = go [] in
  expect st Token.Rparen;
  if peek st = Token.Newline then begin
    end_of_stmt st;
    let body = parse_body st ~stop:(fun () -> is_end_keyword st [ "FORALL" ]) in
    eat_end st [ "FORALL" ];
    { Ast.s = Ast.Forall (triplets, mask, body); sloc = loc }
  end
  else begin
    let body = parse_stmt st in
    { Ast.s = Ast.Forall (triplets, mask, [ body ]); sloc = loc }
  end

and parse_where st loc =
  advance st;
  expect st Token.Lparen;
  let mask = parse_expr st in
  expect st Token.Rparen;
  if peek st = Token.Newline then begin
    end_of_stmt st;
    let body =
      parse_body st ~stop:(fun () ->
          is_end_keyword st [ "WHERE" ] || at_keyword st "ELSEWHERE")
    in
    let els =
      if at_keyword st "ELSEWHERE" then begin
        advance st;
        end_of_stmt st;
        parse_body st ~stop:(fun () -> is_end_keyword st [ "WHERE" ])
      end
      else []
    in
    eat_end st [ "WHERE" ];
    { Ast.s = Ast.Where (mask, body, els); sloc = loc }
  end
  else begin
    let body = parse_stmt st in
    { Ast.s = Ast.Where (mask, [ body ], []); sloc = loc }
  end

(* ------------------------------------------------------------------ *)
(* Program units                                                       *)
(* ------------------------------------------------------------------ *)

let parse_unit st ~implicit_main =
  skip_newlines st;
  let loc = peek_loc st in
  let pname, args =
    if at_keyword st "PROGRAM" then begin
      advance st;
      let n = expect_ident st in
      end_of_stmt st;
      (n, [])
    end
    else if at_keyword st "SUBROUTINE" then begin
      advance st;
      let n = expect_ident st in
      let args =
        if peek st = Token.Lparen then begin
          advance st;
          if peek st = Token.Rparen then begin
            advance st;
            []
          end
          else begin
            let rec go acc =
              let a = expect_ident st in
              if peek st = Token.Comma then begin
                advance st;
                go (a :: acc)
              end
              else List.rev (a :: acc)
            in
            let l = go [] in
            expect st Token.Rparen;
            l
          end
        end
        else []
      in
      end_of_stmt st;
      (n, args)
    end
    else if implicit_main then ("MAIN", [])
    else Diag.error ~loc "expected PROGRAM or SUBROUTINE"
  in
  let decls = ref [] and directives = ref [] in
  (* header section: declarations and directives *)
  let rec header () =
    skip_newlines st;
    match peek st with
    | Token.Directive ->
        advance st;
        directives := parse_directive st :: !directives;
        header ()
    | Token.Ident kw when kind_of_keyword kw <> None && peek2 st <> Token.Assign -> (
        (* a type keyword starts a declaration unless it is an assignment
           to a variable that happens to shadow the keyword *)
        match kind_of_keyword kw with
        | Some k ->
            advance st;
            decls := !decls @ parse_decl_line st k;
            header ()
        | None -> ())
    | _ -> ()
  in
  header ();
  let stop () =
    is_end_keyword st [ "PROGRAM"; "SUBROUTINE" ]
    || (at_keyword st "END" && (peek2 st = Token.Newline || peek2 st = Token.Eof))
  in
  let body = parse_body st ~stop in
  (* consume END [PROGRAM|SUBROUTINE] [name] *)
  if at_keyword st "END" then begin
    advance st;
    (match peek st with Token.Ident _ -> advance st | _ -> ());
    (match peek st with Token.Ident _ -> advance st | _ -> ());
    end_of_stmt st
  end
  else if at_keyword st "ENDPROGRAM" || at_keyword st "ENDSUBROUTINE" then begin
    advance st;
    (match peek st with Token.Ident _ -> advance st | _ -> ());
    end_of_stmt st
  end
  else error st "expected END";
  { Ast.pname; args; decls = !decls; directives = List.rev !directives; body; ploc = loc }

let parse ~file src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; cur = 0 } in
  skip_newlines st;
  let first = parse_unit st ~implicit_main:true in
  let rec more acc =
    skip_newlines st;
    if peek st = Token.Eof then List.rev acc else more (parse_unit st ~implicit_main:false :: acc)
  in
  let rest = more [] in
  { Ast.main = first; subs = rest }

let parse_expr_string s =
  let toks = Array.of_list (Lexer.tokenize ~file:"<expr>" s) in
  let st = { toks; cur = 0 } in
  let e = parse_expr st in
  e
