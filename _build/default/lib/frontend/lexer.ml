open F90d_base

(* Lex one logical line at a time: continuation handling ('&' before the
   line break) and directive prefixes are line-level concerns in Fortran. *)

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_alpha c || is_digit c || c = '_'

type state = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
  mutable out : (Token.t * Loc.t) list;  (* reversed *)
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)
let emit st tok l = st.out <- (tok, l) :: st.out

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let newline st =
  st.pos <- st.pos + 1;
  st.line <- st.line + 1;
  st.bol <- st.pos

(* Dotted operators and logical literals: .AND. .OR. .NOT. .TRUE. .FALSE.
   .EQ. .NE. .LT. .LE. .GT. .GE. *)
let dotted_token st l =
  let start = st.pos in
  advance st;
  let word_start = st.pos in
  while (match peek st with Some c when is_alpha c -> true | _ -> false) do
    advance st
  done;
  let word = String.uppercase_ascii (String.sub st.src word_start (st.pos - word_start)) in
  (match peek st with
  | Some '.' -> advance st
  | _ -> Diag.error ~loc:l "unterminated dotted operator");
  ignore start;
  let tok : Token.t =
    match word with
    | "AND" -> And
    | "OR" -> Or
    | "NOT" -> Not
    | "TRUE" -> True
    | "FALSE" -> False
    | "EQ" -> Eq
    | "NE" -> Ne
    | "LT" -> Lt
    | "LE" -> Le
    | "GT" -> Gt
    | "GE" -> Ge
    | w -> Diag.error ~loc:l "unknown operator .%s." w
  in
  emit st tok l

let number st l =
  let start = st.pos in
  while (match peek st with Some c when is_digit c -> true | _ -> false) do
    advance st
  done;
  let is_real = ref false in
  (* fractional part; careful not to eat '1:2' ranges or '1.AND.' *)
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_real := true;
      advance st;
      while (match peek st with Some c when is_digit c -> true | _ -> false) do
        advance st
      done
  | Some '.', Some c when is_alpha c -> () (* 1.AND. — leave the dot *)
  | Some '.', (Some _ | None) ->
      is_real := true;
      advance st
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E' | 'd' | 'D') -> (
      (* exponent must be followed by digits or sign+digits *)
      let save = st.pos in
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      match peek st with
      | Some c when is_digit c ->
          is_real := true;
          while (match peek st with Some c when is_digit c -> true | _ -> false) do
            advance st
          done
      | _ -> st.pos <- save)
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_real then
    let text = String.map (function 'd' | 'D' -> 'e' | c -> c) text in
    emit st (Token.Float (float_of_string text)) l
  else emit st (Token.Int (int_of_string text)) l

let ident st l =
  let start = st.pos in
  while (match peek st with Some c when is_ident_char c -> true | _ -> false) do
    advance st
  done;
  emit st (Token.Ident (String.uppercase_ascii (String.sub st.src start (st.pos - start)))) l

let string_lit st l quote =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> Diag.error ~loc:l "unterminated string literal"
    | Some c when c = quote ->
        advance st;
        (* doubled quote = escaped quote *)
        if peek st = Some quote then begin
          Buffer.add_char buf quote;
          advance st;
          go ()
        end
    | Some '\n' -> Diag.error ~loc:l "unterminated string literal"
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  emit st (Token.String (Buffer.contents buf)) l

(* Directive prefix at beginning of line: C$ / c$ / !HPF$ / CHPF$ *)
let directive_prefix st =
  let rest = String.length st.src - st.pos in
  let starts s =
    let n = String.length s in
    rest >= n && String.uppercase_ascii (String.sub st.src st.pos n) = s
  in
  if starts "!HPF$" || starts "CHPF$" then Some 5 else if starts "C$" then Some 2 else None

let skip_comment st =
  while (match peek st with Some c when c <> '\n' -> true | _ -> false) do
    advance st
  done

let tokenize ~file src =
  let st = { file; src; pos = 0; line = 1; bol = 0; out = [] } in
  let at_line_start = ref true in
  let emit_newline () =
    match st.out with
    | (Token.Newline, _) :: _ | [] -> ()
    | _ -> emit st Token.Newline (loc st)
  in
  while st.pos < String.length st.src do
    let l = loc st in
    (if !at_line_start then begin
       match directive_prefix st with
       | Some n ->
           st.pos <- st.pos + n;
           emit st Token.Directive l
       | None -> (
           (* fixed-form comment: 'C', 'c' or '*' in column 1 (not C$) *)
           match (peek st, peek2 st) with
           | Some ('C' | 'c' | '*'), Some c when c <> '$' && not (is_ident_char c) ->
               skip_comment st
           | Some ('C' | 'c' | '*'), None -> skip_comment st
           | _ -> ())
     end);
    at_line_start := false;
    match peek st with
    | None -> ()
    | Some ' ' | Some '\t' | Some '\r' -> advance st
    | Some '\n' ->
        emit_newline ();
        newline st;
        at_line_start := true
    | Some '!' -> skip_comment st
    | Some '&' when String.trim (String.sub st.src st.bol (st.pos - st.bol)) = "" ->
        (* '&' leading a line: fixed-form-style continuation of the
           previous statement — cancel the statement break *)
        advance st;
        (match st.out with (Token.Newline, _) :: rest -> st.out <- rest | _ -> ())
    | Some '&' ->
        (* continuation: swallow up to and including the line break *)
        advance st;
        let rec to_eol () =
          match peek st with
          | Some (' ' | '\t' | '\r') ->
              advance st;
              to_eol ()
          | Some '!' ->
              skip_comment st;
              to_eol ()
          | Some '\n' -> newline st
          | Some c -> Diag.error ~loc:l "unexpected '%c' after continuation '&'" c
          | None -> ()
        in
        to_eol ();
        (* swallow a leading '&' on the continued line *)
        let rec skip_ws () =
          match peek st with
          | Some (' ' | '\t' | '\r') ->
              advance st;
              skip_ws ()
          | Some '&' -> advance st
          | _ -> ()
        in
        skip_ws ()
    | Some '\'' -> string_lit st l '\''
    | Some '"' -> string_lit st l '"'
    | Some '.' -> (
        match peek2 st with
        | Some c when is_digit c -> number st l
        | Some c when is_alpha c -> dotted_token st l
        | _ -> Diag.error ~loc:l "unexpected '.'")
    | Some c when is_digit c -> number st l
    | Some c when is_alpha c -> ident st l
    | Some '+' -> advance st; emit st Token.Plus l
    | Some '-' -> advance st; emit st Token.Minus l
    | Some '*' ->
        advance st;
        if peek st = Some '*' then begin advance st; emit st Token.Power l end
        else emit st Token.Star l
    | Some '/' ->
        advance st;
        if peek st = Some '=' then begin advance st; emit st Token.Ne l end
        else emit st Token.Slash l
    | Some '(' -> advance st; emit st Token.Lparen l
    | Some ')' -> advance st; emit st Token.Rparen l
    | Some ',' -> advance st; emit st Token.Comma l
    | Some ':' ->
        advance st;
        if peek st = Some ':' then begin advance st; emit st Token.Dcolon l end
        else emit st Token.Colon l
    | Some '=' ->
        advance st;
        if peek st = Some '=' then begin advance st; emit st Token.Eq l end
        else emit st Token.Assign l
    | Some '<' ->
        advance st;
        if peek st = Some '=' then begin advance st; emit st Token.Le l end
        else emit st Token.Lt l
    | Some '>' ->
        advance st;
        if peek st = Some '=' then begin advance st; emit st Token.Ge l end
        else emit st Token.Gt l
    | Some ';' ->
        advance st;
        emit_newline ()
    | Some c -> Diag.error ~loc:l "unexpected character '%c'" c
  done;
  emit_newline ();
  emit st Token.Eof (loc st);
  List.rev st.out
