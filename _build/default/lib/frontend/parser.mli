(** Recursive-descent parser for the Fortran 90D/HPF subset:

    program units (PROGRAM / SUBROUTINE), type declarations with PARAMETER
    and DIMENSION, the data-mapping directives (PROCESSORS,
    TEMPLATE/DECOMPOSITION, ALIGN, DISTRIBUTE), and the executable subset
    the paper compiles — assignments over array sections, WHERE, FORALL,
    DO / DO WHILE, IF, CALL, PRINT, RETURN. *)

val parse : file:string -> string -> Ast.program
(** @raise F90d_base.Diag.Error with a source location on syntax errors. *)

val parse_expr_string : string -> Ast.expr
(** Parse a standalone expression (testing convenience). *)
