lib/base/loc.ml: Format
