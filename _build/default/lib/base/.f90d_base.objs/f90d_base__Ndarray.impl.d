lib/base/ndarray.ml: Array Diag Float Format Scalar
