lib/base/diag.ml: Format Loc
