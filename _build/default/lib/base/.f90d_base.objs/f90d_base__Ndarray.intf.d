lib/base/ndarray.mli: Format Scalar
