lib/base/affine.ml: Format
