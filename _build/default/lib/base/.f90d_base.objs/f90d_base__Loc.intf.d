lib/base/loc.mli: Format
