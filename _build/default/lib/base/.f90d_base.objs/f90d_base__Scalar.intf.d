lib/base/scalar.mli: Format
