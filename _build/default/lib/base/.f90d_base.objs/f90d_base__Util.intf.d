lib/base/util.mli:
