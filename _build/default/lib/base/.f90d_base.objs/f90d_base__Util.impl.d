lib/base/util.ml: List
