lib/base/affine.mli: Format
