lib/base/scalar.ml: Diag Float Format String
