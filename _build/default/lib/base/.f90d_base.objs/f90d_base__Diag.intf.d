lib/base/diag.mli: Format Loc
