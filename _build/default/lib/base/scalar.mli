(** Fortran scalar values and their arithmetic.

    The interpreter evaluates expressions over these values; integers are
    promoted to reals when mixed, as in Fortran. *)

type t =
  | Int of int
  | Real of float
  | Log of bool
  | Str of string

type kind = Kint | Kreal | Klog | Kstr

val kind : t -> kind
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit

val to_int : t -> int
(** Truncates reals; errors on logicals/strings. *)

val to_real : t -> float
val to_bool : t -> bool

val zero : kind -> t
(** Additive identity of the kind ([Log] -> [false], [Str] -> [""]). *)

(** Binary operations; numeric ops promote [Int] to [Real] as needed,
    comparisons yield [Log]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> t -> t
val neg : t -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val cmp_eq : t -> t -> t
val cmp_ne : t -> t -> t
val cmp_lt : t -> t -> t
val cmp_le : t -> t -> t
val cmp_gt : t -> t -> t
val cmp_ge : t -> t -> t

val min2 : t -> t -> t
val max2 : t -> t -> t

val equal : t -> t -> bool
(** Structural equality (exact on floats); for tests. *)
