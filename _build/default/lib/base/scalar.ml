type t = Int of int | Real of float | Log of bool | Str of string
type kind = Kint | Kreal | Klog | Kstr

let kind = function
  | Int _ -> Kint
  | Real _ -> Kreal
  | Log _ -> Klog
  | Str _ -> Kstr

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.fprintf ppf "%g" r
  | Log b -> Format.pp_print_string ppf (if b then ".TRUE." else ".FALSE.")
  | Str s -> Format.fprintf ppf "%S" s

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Kint -> "INTEGER" | Kreal -> "REAL" | Klog -> "LOGICAL" | Kstr -> "CHARACTER")

let to_int = function
  | Int i -> i
  | Real r -> int_of_float r
  | Log _ | Str _ -> Diag.bug "scalar: expected numeric, got logical/string"

let to_real = function
  | Int i -> float_of_int i
  | Real r -> r
  | Log _ | Str _ -> Diag.bug "scalar: expected numeric, got logical/string"

let to_bool = function
  | Log b -> b
  | Int _ | Real _ | Str _ -> Diag.bug "scalar: expected logical"

let zero = function
  | Kint -> Int 0
  | Kreal -> Real 0.
  | Klog -> Log false
  | Kstr -> Str ""

let num_op fint freal a b =
  match (a, b) with
  | Int x, Int y -> Int (fint x y)
  | (Int _ | Real _), (Int _ | Real _) -> Real (freal (to_real a) (to_real b))
  | _ -> Diag.bug "scalar: numeric operation on non-numeric value"

let add = num_op ( + ) ( +. )
let sub = num_op ( - ) ( -. )
let mul = num_op ( * ) ( *. )

let div a b =
  match (a, b) with
  | Int x, Int y ->
      if y = 0 then Diag.bug "scalar: integer division by zero" else Int (x / y)
  | (Int _ | Real _), (Int _ | Real _) -> Real (to_real a /. to_real b)
  | _ -> Diag.bug "scalar: division on non-numeric value"

let pow a b =
  match (a, b) with
  | Int x, Int y when y >= 0 ->
      let rec go acc b e = if e = 0 then acc else go (if e land 1 = 1 then acc * b else acc) (b * b) (e lsr 1) in
      Int (go 1 x y)
  | (Int _ | Real _), (Int _ | Real _) -> Real (Float.pow (to_real a) (to_real b))
  | _ -> Diag.bug "scalar: power on non-numeric value"

let neg = function
  | Int i -> Int (-i)
  | Real r -> Real (-.r)
  | Log _ | Str _ -> Diag.bug "scalar: negation of non-numeric value"

let not_ = function
  | Log b -> Log (not b)
  | Int _ | Real _ | Str _ -> Diag.bug "scalar: .NOT. of non-logical value"

let and_ a b = Log (to_bool a && to_bool b)
let or_ a b = Log (to_bool a || to_bool b)

let compare_num a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | (Int _ | Real _), (Int _ | Real _) -> compare (to_real a) (to_real b)
  | Str x, Str y -> compare x y
  | Log x, Log y -> compare x y
  | _ -> Diag.bug "scalar: comparison of incompatible values"

let cmp_eq a b = Log (compare_num a b = 0)
let cmp_ne a b = Log (compare_num a b <> 0)
let cmp_lt a b = Log (compare_num a b < 0)
let cmp_le a b = Log (compare_num a b <= 0)
let cmp_gt a b = Log (compare_num a b > 0)
let cmp_ge a b = Log (compare_num a b >= 0)
let min2 a b = if compare_num a b <= 0 then a else b
let max2 a b = if compare_num a b >= 0 then a else b

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Log x, Log y -> x = y
  | Str x, Str y -> String.equal x y
  | _ -> false
