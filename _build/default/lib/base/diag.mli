(** Compiler diagnostics.

    All passes report user-level problems through {!error} (raising
    {!Error}); internal invariant violations use [assert] or {!bug}. *)

exception Error of Loc.t * string
(** A diagnosed error in the user's program. *)

val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~loc fmt ...] raises {!Error} with a formatted message. *)

val bug : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Internal compiler error: raises [Failure] with a "F90D bug:" prefix. *)

val pp_error : Format.formatter -> Loc.t * string -> unit
(** Renders an error as ["loc: error: msg"]. *)

val protect : (unit -> 'a) -> ('a, string) result
(** Runs a compilation thunk, converting {!Error} into [Error msg]. *)
