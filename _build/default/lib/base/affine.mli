(** Integer affine forms [a*i + b] over a single index variable.

    Array subscripts in canonical and near-canonical FORALLs reduce to this
    form; alignment directives ([ALIGN A(I) WITH T(2*I+1)]) are also affine.
    The paper's precomp_read test (§5.3.2, Table 2) requires invertibility:
    [f(i) = a*i + b] with [a <> 0], whose inverse [g(t) = (t - b) / a] is
    exact only when [a] divides [t - b]. *)

type t = { a : int; b : int }

val const : int -> t
val ident : t
(** The identity form [i]. *)

val make : a:int -> b:int -> t
val eval : t -> int -> int
val is_identity : t -> bool
val is_const : t -> bool

val invertible : t -> bool
(** [a <> 0]. *)

val apply_inverse : t -> int -> int option
(** [apply_inverse f t] is [Some i] with [f i = t] if it exists. *)

val compose : t -> t -> t
(** [compose f g] is [fun i -> f (g i)]. *)

val add_const : t -> int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
