exception Error of Loc.t * string

let error ?(loc = Loc.none) fmt =
  Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt

let bug fmt = Format.kasprintf (fun msg -> failwith ("F90D bug: " ^ msg)) fmt

let pp_error ppf (loc, msg) = Format.fprintf ppf "%a: error: %s" Loc.pp loc msg

let protect f =
  try Ok (f ()) with Error (loc, msg) -> Error (Format.asprintf "%a" pp_error (loc, msg))
