type t = { a : int; b : int }

let const b = { a = 0; b }
let ident = { a = 1; b = 0 }
let make ~a ~b = { a; b }
let eval f i = (f.a * i) + f.b
let is_identity f = f.a = 1 && f.b = 0
let is_const f = f.a = 0
let invertible f = f.a <> 0

let apply_inverse f t =
  if f.a = 0 then None
  else
    let d = t - f.b in
    if d mod f.a = 0 then Some (d / f.a) else None

let compose f g = { a = f.a * g.a; b = (f.a * g.b) + f.b }
let add_const f c = { f with b = f.b + c }
let equal f g = f.a = g.a && f.b = g.b

let pp ppf f =
  if f.a = 0 then Format.pp_print_int ppf f.b
  else begin
    if f.a = 1 then Format.pp_print_string ppf "i"
    else if f.a = -1 then Format.pp_print_string ppf "-i"
    else Format.fprintf ppf "%d*i" f.a;
    if f.b > 0 then Format.fprintf ppf "+%d" f.b
    else if f.b < 0 then Format.fprintf ppf "%d" f.b
  end
