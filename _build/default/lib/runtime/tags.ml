let transfer = 100
let broadcast = 200
let reduce = 300
let gatherv = 400
let shift = 500
let schedule_counts = 600
let schedule_indices = 700
let exec_data = 800
let redistribute = 900
let concat = 1000

let family_name tag =
  match tag / 100 * 100 with
  | 100 -> "transfer"
  | 200 -> "broadcast/multicast"
  | 300 -> "reduction"
  | 400 -> "gather/concatenation"
  | 500 -> "shift"
  | 600 | 700 -> "inspector (scheduling)"
  | 800 -> "executor (data)"
  | 900 -> "redistribution"
  | 1000 -> "concatenation"
  | _ -> "other"
