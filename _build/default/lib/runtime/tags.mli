(** Message-tag namespace of the run-time library.

    Matching in the engine is FIFO per (source, tag), and SPMD programs
    issue communication in identical program order on every node, so tags
    exist for protocol clarity and debuggability rather than correctness. *)

val transfer : int
val broadcast : int
val reduce : int
val gatherv : int
val shift : int
val schedule_counts : int
val schedule_indices : int
val exec_data : int
val redistribute : int
val concat : int

val family_name : int -> string
(** Human name of a tag's hundreds-family, for statistics breakdowns. *)
