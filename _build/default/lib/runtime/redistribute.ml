open F90d_dist

(* needs/writes list for moving [src] into [dst] where both descriptors are
   global knowledge: for [rank]'s owned dst elements, in local order, the
   (source owner, source storage flat) pairs. *)
let needs_for ~(src : Darray.t) ~(dst_dad : Dad.t) ~f rank =
  let acc = ref [] in
  Dad.iter_local dst_dad ~rank (fun g _ ->
      let sg = f g in
      let owner = Dad.home_rank src.Darray.dad sg in
      let lidx =
        match Dad.local_indices src.Darray.dad ~rank:owner sg with
        | Some l -> l
        | None -> F90d_base.Diag.bug "redistribute: home rank does not own source element"
      in
      acc := (owner, Dad.storage_flat src.Darray.dad ~rank:owner lidx) :: !acc);
  Array.of_list (List.rev !acc)

let store_tmp ctx ~(dst : Darray.t) tmp =
  let me = Rctx.me ctx in
  let i = ref 0 in
  Darray.iter_owned dst ~rank:me (fun _ flat ->
      F90d_base.Ndarray.set_flat dst.Darray.local flat (F90d_base.Ndarray.get_flat tmp !i);
      incr i);
  Rctx.charge_copy_bytes ctx (F90d_base.Ndarray.bytes tmp)

let redistribute ctx (src : Darray.t) dst_dad =
  let dst = Darray.create ctx dst_dad in
  let me = Rctx.me ctx in
  let key = Format.asprintf "redist:%a->%a" Dad.pp src.Darray.dad Dad.pp dst_dad in
  let sched =
    Schedule.cached ctx ~key (fun () ->
        Schedule.build_read_local ctx
          ~needs:(needs_for ~src ~dst_dad ~f:Fun.id me)
          ~peer_needs:(needs_for ~src ~dst_dad ~f:Fun.id))
  in
  let tmp = Schedule.read ctx sched src in
  store_tmp ctx ~dst tmp;
  dst

let remap ctx ~(dst : Darray.t) ~(src : Darray.t) ~f =
  let me = Rctx.me ctx in
  let sched = Schedule.build_read_comm ctx ~needs:(needs_for ~src ~dst_dad:dst.Darray.dad ~f me) in
  let tmp = Schedule.read ctx sched src in
  store_tmp ctx ~dst tmp
