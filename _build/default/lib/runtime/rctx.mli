(** Grid-aware processor context.

    The engine deals in physical node ids; the run-time system and the
    compiled node programs deal in logical grid ranks (stage 3 of the
    paper's mapping keeps them distinct).  An [Rctx.t] carries both the
    engine context and the grid, translating at every send/receive. *)

type t

val make : F90d_machine.Engine.ctx -> F90d_dist.Grid.t -> t
(** The grid must exactly cover the machine ([Grid.size = nprocs]). *)

val engine : t -> F90d_machine.Engine.ctx
val grid : t -> F90d_dist.Grid.t

val me : t -> int
(** This processor's logical grid rank. *)

val nprocs : t -> int
val my_coords : t -> int array
val time : t -> float

val send : t -> dest:int -> tag:int -> F90d_machine.Message.payload -> unit
(** [dest] is a grid rank. *)

val recv : t -> src:int -> tag:int -> F90d_machine.Message.t

val charge_flops : t -> int -> unit
val charge_iops : t -> int -> unit
val charge_copy_bytes : t -> int -> unit
