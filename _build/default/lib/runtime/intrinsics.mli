(** The parallel intrinsic-function library (§6, Table 3).

    All functions are SPMD-collective over the whole grid.  The five
    communication categories of Table 3 map to implementations as follows:

    - {e structured} (CSHIFT, EOSHIFT): one vectorized message per
      neighbouring pair along the shifted dimension;
    - {e reduction} (SUM, PRODUCT, MAXVAL, MINVAL, ALL, ANY, COUNT,
      DOTPRODUCT, MAXLOC, MINLOC): local fold + binomial reduction tree;
    - {e multicast} (SPREAD): gather/broadcast trees;
    - {e unstructured} (TRANSPOSE, RESHAPE, PACK, UNPACK): schedule-driven
      all-to-all remapping (PARTI executors);
    - {e special} (MATMUL): replicate-operands block algorithm; each
      processor computes only its owned block of the result.

    Result descriptors are supplied by the caller (the compiler knows the
    distribution of the assignment target). *)

open F90d_base

val table3_category : string -> string option
(** Communication category of an intrinsic name (upper-case), used to
    regenerate Table 3. *)

(** {2 Structured} *)

val cshift : Rctx.t -> Darray.t -> dim:int -> shift:int -> Darray.t
(** Circular shift along a dimension (0-based [dim]); same descriptor. *)

val eoshift : Rctx.t -> Darray.t -> dim:int -> shift:int -> boundary:Scalar.t -> Darray.t

(** {2 Reductions} *)

val reduce : Rctx.t -> Redop.t -> Darray.t -> Scalar.t
(** SUM / PRODUCT / MAXVAL / MINVAL / ALL / ANY over every element. *)

val reduce_dim :
  Rctx.t -> Redop.t -> Darray.t -> dim:int -> dad:F90d_dist.Dad.t -> Darray.t
(** SUM(A, dim) and friends: fold away dimension [dim] (0-based).  Each
    processor folds its owned box locally, partial slabs combine in a
    reduction tree along that dimension's grid axis, and the result is
    remapped into the caller's rank-1-lower descriptor. *)

val count : Rctx.t -> Darray.t -> Scalar.t
(** Number of [.TRUE.] elements of a logical array. *)

val dotproduct : Rctx.t -> Darray.t -> Darray.t -> Scalar.t
(** Identically-distributed vectors reduce without data motion; otherwise
    one operand is remapped first. *)

val maxloc : Rctx.t -> Darray.t -> int array
(** Global Fortran indices of the first maximal element. *)

val minloc : Rctx.t -> Darray.t -> int array

(** {2 Multicast} *)

val spread : Rctx.t -> Darray.t -> dim:int -> dad:F90d_dist.Dad.t -> Darray.t
(** SPREAD(source, dim, copies): [dad] is the rank+1 result descriptor;
    [dim] (0-based) is the broadcast dimension. *)

(** {2 Unstructured} *)

val transpose : Rctx.t -> Darray.t -> dad:F90d_dist.Dad.t -> Darray.t
val reshape : Rctx.t -> Darray.t -> dad:F90d_dist.Dad.t -> Darray.t
(** Column-major element-order reshape into the target descriptor. *)

val pack : Rctx.t -> Darray.t -> mask:Darray.t -> dad:F90d_dist.Dad.t -> Darray.t * int
(** Masked elements in array-element order, padded with zeros; also
    returns the number of packed elements. *)

val unpack : Rctx.t -> Darray.t -> mask:Darray.t -> field:Darray.t -> Darray.t
(** Inverse of {!pack}: vector elements dropped into [.TRUE.] positions of
    the mask, field values elsewhere; result shaped like [mask]/[field]. *)

(** {2 Special} *)

val matmul : Rctx.t -> Darray.t -> Darray.t -> dad:F90d_dist.Dad.t -> Darray.t
