(** Dynamic data redistribution (§6).

    Used when a distributed actual argument meets a differently-distributed
    dummy argument at a subroutine boundary: the array is redistributed on
    entry and back on exit.  Because both descriptors are known everywhere,
    both sides of every exchange are computed locally (schedule1-style) and
    the data moves in one vectorized message per processor pair. *)

val redistribute : Rctx.t -> Darray.t -> F90d_dist.Dad.t -> Darray.t
(** A new array with the same global contents under the target descriptor.
    Schedules are cached under the (source, target) descriptor pair. *)

val remap :
  Rctx.t -> dst:Darray.t -> src:Darray.t -> f:(int array -> int array) -> unit
(** Generalised movement: set [dst(idx) = src(f idx)] for every global
    index of [dst], where [f] maps to global indices of [src].  [f] need
    not be invertible; the request lists are exchanged (schedule2), which
    is how the unstructured intrinsics (TRANSPOSE, RESHAPE, ...) are
    implemented. *)
