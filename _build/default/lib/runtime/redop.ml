open F90d_base
open F90d_machine

type t = Sum | Prod | Max | Min | And | Or

let name = function
  | Sum -> "SUM"
  | Prod -> "PRODUCT"
  | Max -> "MAX"
  | Min -> "MIN"
  | And -> "ALL"
  | Or -> "ANY"

let scalar op a b =
  match op with
  | Sum -> Scalar.add a b
  | Prod -> Scalar.mul a b
  | Max -> Scalar.max2 a b
  | Min -> Scalar.min2 a b
  | And -> Scalar.and_ a b
  | Or -> Scalar.or_ a b

let identity op kind =
  match (op, kind) with
  | Sum, k -> Scalar.zero k
  | Prod, Scalar.Kint -> Scalar.Int 1
  | Prod, _ -> Scalar.Real 1.
  | Max, Scalar.Kint -> Scalar.Int min_int
  | Max, _ -> Scalar.Real neg_infinity
  | Min, Scalar.Kint -> Scalar.Int max_int
  | Min, _ -> Scalar.Real infinity
  | And, _ -> Scalar.Log true
  | Or, _ -> Scalar.Log false

let rec payload op a b =
  match (a, b) with
  | Message.Empty, x | x, Message.Empty -> x
  | Message.Scalar x, Message.Scalar y -> Message.Scalar (scalar op x y)
  | Message.Floats x, Message.Floats y ->
      let f = match op with
        | Sum -> ( +. ) | Prod -> ( *. ) | Max -> Float.max | Min -> Float.min
        | And | Or -> Diag.bug "redop: logical reduction over float payload"
      in
      Message.Floats (Array.mapi (fun i v -> f v y.(i)) x)
  | Message.Ints x, Message.Ints y ->
      let f = match op with
        | Sum -> ( + ) | Prod -> ( * ) | Max -> max | Min -> min
        | And | Or -> Diag.bug "redop: logical reduction over int payload"
      in
      Message.Ints (Array.mapi (fun i v -> f v y.(i)) x)
  | Message.Arr x, Message.Arr y ->
      let out = Ndarray.copy x in
      for i = 0 to Ndarray.size x - 1 do
        Ndarray.set_flat out i (scalar op (Ndarray.get_flat x i) (Ndarray.get_flat y i))
      done;
      Message.Arr out
  | Message.Pair (a1, a2), Message.Pair (b1, b2) ->
      Message.Pair (payload op a1 b1, payload op a2 b2)
  | _ -> Diag.bug "redop: payload shape mismatch in reduction"

(* [Pair (Scalar value, Ints location)]: keep the better value; on ties the
   left (earlier team member) wins. *)
let loc_combine better a b =
  match (a, b) with
  | Message.Empty, x | x, Message.Empty -> x
  | Message.Pair (Message.Scalar va, _), Message.Pair (Message.Scalar vb, _) ->
      if Scalar.to_bool (better vb va) then b else a
  | _ -> Diag.bug "redop: MAXLOC/MINLOC payload must be (value, location)"

let maxloc a b = loc_combine Scalar.cmp_gt a b
let minloc a b = loc_combine Scalar.cmp_lt a b
