(** A processor's handle on a distributed array: the shared DAD plus this
    processor's local section (including ghost cells).

    Every processor of the grid holds one [Darray.t] per program array;
    collective operations take the handles SPMD-style. *)

open F90d_base

type t = { dad : F90d_dist.Dad.t; local : Ndarray.t }

val create : Rctx.t -> F90d_dist.Dad.t -> t
(** Allocate a zeroed local section for this processor. *)

val init_global : Rctx.t -> F90d_dist.Dad.t -> (int array -> Scalar.t) -> t
(** Every processor fills its owned elements from a (deterministic) global
    initialiser — the standard way tests and examples set up inputs
    without communication. *)

val kind : t -> Scalar.kind

val get_local : t -> rank:int -> int array -> Scalar.t option
(** Value of a global element if owned here ([rank] is the grid rank). *)

val set_local : t -> rank:int -> int array -> Scalar.t -> bool
(** Store into a global element if owned here; returns whether it was. *)

val owned_flat_of_global : t -> rank:int -> int array -> int option
(** Flat position in [local]'s payload of a global element, if owned.
    Accounts for ghost offsets. *)

val storage_flat : t -> int array -> int
(** Flat position of per-dimension local indices (0-based owned positions,
    ghost offset applied). *)

val iter_owned : t -> rank:int -> (int array -> int -> unit) -> unit
(** Iterate owned elements in local column-major order as
    [(global_indices, flat_storage_position)]. *)

val owned_count : t -> rank:int -> int

val pack_owned : t -> rank:int -> Ndarray.t
(** Compact copy of the owned elements (no ghosts), local column-major. *)

val gather_global : Rctx.t -> t -> Ndarray.t
(** Assemble the full global array on every processor (the paper's
    concatenation primitive; also the test oracle). *)

val get_global : Rctx.t -> t -> int array -> Scalar.t
(** Collective: the home owner broadcasts one element to everyone. *)
