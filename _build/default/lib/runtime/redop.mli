(** Reduction operators used by the reduction intrinsics (Table 3,
    category 2) and by reduction collectives.

    Combiners work on message payloads so they can ride directly on
    {!Collectives.reduce}: scalar payloads combine pointwise, array
    payloads elementwise, and [Pair (Scalar v, Ints loc)] payloads
    implement MAXLOC/MINLOC (ties keep the earlier location, matching
    Fortran's first-occurrence rule when combined in team order). *)

type t = Sum | Prod | Max | Min | And | Or

val scalar : t -> F90d_base.Scalar.t -> F90d_base.Scalar.t -> F90d_base.Scalar.t

val payload : t -> F90d_machine.Message.payload -> F90d_machine.Message.payload -> F90d_machine.Message.payload
(** Elementwise combination of equal-shaped payloads. *)

val maxloc : F90d_machine.Message.payload -> F90d_machine.Message.payload -> F90d_machine.Message.payload
val minloc : F90d_machine.Message.payload -> F90d_machine.Message.payload -> F90d_machine.Message.payload

val identity : t -> F90d_base.Scalar.kind -> F90d_base.Scalar.t
(** Neutral element ([0] for Sum, [1] for Prod, type extrema for Max/Min,
    [.TRUE.]/[.FALSE.] for And/Or). *)

val name : t -> string
