open F90d_base
open F90d_dist
open F90d_machine

type t = { dad : Dad.t; local : Ndarray.t }

let create ctx dad =
  { dad; local = Dad.alloc_local dad ~rank:(Rctx.me ctx) }

let kind t = Dad.kind t.dad

let storage_flat t lidx =
  (* lidx are 0-based owned positions; storage lower bound is -ghost_lo *)
  Ndarray.offset t.local lidx

let owned_flat_of_global t ~rank gidx =
  match Dad.local_indices t.dad ~rank gidx with
  | None -> None
  | Some lidx -> Some (Ndarray.offset t.local lidx)

let get_local t ~rank gidx =
  Option.map (Ndarray.get_flat t.local) (owned_flat_of_global t ~rank gidx)

let set_local t ~rank gidx v =
  match owned_flat_of_global t ~rank gidx with
  | None -> false
  | Some f ->
      Ndarray.set_flat t.local f v;
      true

let iter_owned t ~rank f =
  Dad.iter_local t.dad ~rank (fun g lidx -> f g (Ndarray.offset t.local lidx))

let owned_count t ~rank = Array.fold_left ( * ) 1 (Dad.local_counts t.dad ~rank)

let init_global ctx dad f =
  let t = create ctx dad in
  let me = Rctx.me ctx in
  iter_owned t ~rank:me (fun g flat -> Ndarray.set_flat t.local flat (f g));
  t

let pack_owned t ~rank =
  let n = owned_count t ~rank in
  let out = Ndarray.create (kind t) [| n |] in
  let i = ref 0 in
  iter_owned t ~rank (fun _ flat ->
      Ndarray.set_flat out !i (Ndarray.get_flat t.local flat);
      incr i);
  out

let gather_global ctx t =
  let me = Rctx.me ctx in
  let team = Collectives.team_all ctx in
  let mine = pack_owned t ~rank:me in
  Rctx.charge_copy_bytes ctx (Ndarray.bytes mine);
  let parts = Collectives.allgather ctx team (Message.Arr mine) in
  let extents = Dad.global_extents t.dad in
  let lbs = Array.map (fun d -> d.Dad.flb) (Dad.dims t.dad) in
  let out = Ndarray.create (kind t) ~lb:lbs extents in
  Array.iteri
    (fun r payload ->
      let part = match payload with Message.Arr a -> a | _ -> Diag.bug "gather_global: protocol" in
      (* re-enumerate rank r's owned elements in the same order it packed *)
      let i = ref 0 in
      Dad.iter_local t.dad ~rank:team.(r) (fun g _ ->
          Ndarray.set out g (Ndarray.get_flat part !i);
          incr i))
    parts;
  Rctx.charge_copy_bytes ctx (Ndarray.bytes out);
  out

let get_global ctx t gidx =
  let home = Dad.home_rank t.dad gidx in
  let team = Collectives.team_all ctx in
  let payload =
    if Rctx.me ctx = home then
      match get_local t ~rank:home gidx with
      | Some v -> Message.Scalar v
      | None -> Diag.bug "get_global: home rank does not own the element"
    else Message.Empty
  in
  match Collectives.broadcast ctx team ~root:(Collectives.index_in team home) payload with
  | Message.Scalar v -> v
  | _ -> Diag.bug "get_global: protocol error"
