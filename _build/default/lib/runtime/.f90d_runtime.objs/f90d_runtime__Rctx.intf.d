lib/runtime/rctx.mli: F90d_dist F90d_machine
