lib/runtime/schedule.ml: Array Darray F90d_base F90d_machine Hashtbl List Message Ndarray Rctx Seq Tags
