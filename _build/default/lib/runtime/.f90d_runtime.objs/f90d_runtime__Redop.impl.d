lib/runtime/redop.ml: Array Diag F90d_base F90d_machine Float Message Ndarray Scalar
