lib/runtime/redistribute.mli: Darray F90d_dist Rctx
