lib/runtime/structured.mli: Darray F90d_base Ndarray Rctx
