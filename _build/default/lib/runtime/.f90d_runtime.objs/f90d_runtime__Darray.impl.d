lib/runtime/darray.ml: Array Collectives Dad Diag F90d_base F90d_dist F90d_machine Message Ndarray Option Rctx
