lib/runtime/tags.mli:
