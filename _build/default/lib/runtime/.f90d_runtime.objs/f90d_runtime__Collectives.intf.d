lib/runtime/collectives.mli: F90d_machine Message Rctx
