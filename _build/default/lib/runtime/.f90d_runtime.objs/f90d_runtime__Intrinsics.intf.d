lib/runtime/intrinsics.mli: Darray F90d_base F90d_dist Rctx Redop Scalar
