lib/runtime/structured.ml: Affine Array Collectives Dad Darray Diag Distrib F90d_base F90d_dist F90d_machine Fun Layout List Message Ndarray Rctx Seq Tags
