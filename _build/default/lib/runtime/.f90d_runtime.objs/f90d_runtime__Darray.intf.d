lib/runtime/darray.mli: F90d_base F90d_dist Ndarray Rctx Scalar
