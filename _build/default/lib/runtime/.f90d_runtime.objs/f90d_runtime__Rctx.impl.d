lib/runtime/rctx.ml: Diag Engine F90d_base F90d_dist F90d_machine Grid
