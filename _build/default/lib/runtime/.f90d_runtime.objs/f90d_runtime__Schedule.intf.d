lib/runtime/schedule.mli: Darray F90d_base Rctx
