lib/runtime/collectives.ml: Array Diag F90d_base F90d_dist F90d_machine Fun Grid Message Rctx Tags Util
