lib/runtime/redop.mli: F90d_base F90d_machine
