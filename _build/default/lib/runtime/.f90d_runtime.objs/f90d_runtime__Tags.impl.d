lib/runtime/tags.ml:
