lib/runtime/redistribute.ml: Array Dad Darray F90d_base F90d_dist Format Fun List Rctx Schedule
