lib/opt/passes.mli: F90d_ir
