lib/opt/passes.ml: Ast F90d_frontend F90d_ir Hashtbl Ir List Option Printf Sema
