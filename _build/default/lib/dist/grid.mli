(** Stage-3 mapping (§3): the logical processor grid and its embedding onto
    physical nodes.

    Grid ranks are column-major (dimension 0 varies fastest), matching the
    Fortran convention used everywhere else.  The embedding φ (grid rank →
    physical node) is a permutation supplied by the machine topology — for
    hypercubes a Gray-code embedding so grid neighbours are physical
    neighbours; the identity for fully connected models. *)

type t

val make : ?phys_of_rank:int array -> int array -> t
(** [make dims] builds a grid with extents [dims]; the embedding defaults to
    the identity.  [phys_of_rank] must be a permutation of [0..size-1]. *)

val dims : t -> int array
val ndims : t -> int
val size : t -> int

val rank_of_coords : t -> int array -> int
val coords_of_rank : t -> int -> int array

val phys_of_rank : t -> int -> int
(** φ *)

val rank_of_phys : t -> int -> int
(** φ⁻¹ *)

val ranks_along : t -> rank:int -> dim:int -> int array
(** All grid ranks whose coordinates agree with [rank] except along [dim],
    ordered by that coordinate — the processor row/column used by multicast
    and shift primitives. *)

val neighbour : t -> rank:int -> dim:int -> delta:int -> int option
(** Grid rank at coordinate+delta along [dim], or [None] off the edge. *)

val pp : Format.formatter -> t -> unit
