(** Distributed Array Descriptors (§6).

    A DAD carries everything the run-time primitives need about a
    distributed array: global shape, per-dimension alignment to the
    template, the template dimensions' distributions, the grid dimensions
    they map to, and the ghost ("overlap") widths used by overlap_shift.

    Array indices in the public API are Fortran indices (declared lower
    bound, usually 1); template indices and local indices are 0-based. *)

type dim = {
  flb : int;  (** Fortran declared lower bound *)
  extent : int;
  align : F90d_base.Affine.t;
      (** 0-based array index -> 0-based template index *)
  dist : Distrib.t;
  pdim : int option;  (** grid dimension, [None] when replicated/collapsed *)
  mutable ghost_lo : int;
  mutable ghost_hi : int;
}

type t

val make : name:string -> kind:F90d_base.Scalar.kind -> grid:Grid.t -> dim array -> t
(** Checks that no two dimensions map to the same grid dimension. *)

val name : t -> string
val kind : t -> F90d_base.Scalar.kind
val grid : t -> Grid.t
val dims : t -> dim array

val replicated_dim : flb:int -> extent:int -> dim
(** A dimension that is not distributed at all. *)

val block_dim :
  ?align:F90d_base.Affine.t ->
  ?tn:int ->
  flb:int ->
  extent:int ->
  pdim:int ->
  p:int ->
  unit ->
  dim
(** Convenience: dimension aligned by [align] (identity by default) to a
    template dimension of size [tn] (defaults to covering the array)
    distributed BLOCK over [p] processors on grid dimension [pdim]. *)

val cyclic_dim :
  ?align:F90d_base.Affine.t ->
  ?tn:int ->
  flb:int ->
  extent:int ->
  pdim:int ->
  p:int ->
  unit ->
  dim

val rank : t -> int
val is_replicated : t -> bool
val global_extents : t -> int array
val global_size : t -> int
val elem_bytes : t -> int

val layout : t -> dim:int -> coord:int -> Layout.t
(** Owned 0-based array indices of dimension [dim] on grid coordinate
    [coord] (memoised). *)

val layout_at : t -> dim:int -> rank:int -> Layout.t
(** Same, taking a grid rank and projecting out the right coordinate. *)

val local_counts : t -> rank:int -> int array
(** Owned element counts per dimension on a grid rank. *)

val alloc_local : t -> rank:int -> F90d_base.Ndarray.t
(** Fresh zeroed local section including ghost cells; the storage lower
    bound of each dimension is [-ghost_lo] so owned local indices start
    at 0. *)

val owner_coords : t -> int array -> int array
(** Grid coordinates owning a global (Fortran-indexed) element; grid
    dimensions the array is not distributed over get coordinate 0. *)

val home_rank : t -> int array -> int
val owning_ranks : t -> int array -> int list
(** Every rank holding the element (several when replicated along unused
    grid dimensions). *)

val is_local : t -> rank:int -> int array -> bool

val local_indices : t -> rank:int -> int array -> int array option
(** Storage indices (per-dimension local positions, valid for
    [Ndarray.get] on [alloc_local]) of a global element, or [None] if the
    element does not live on [rank]. *)

val global_of_local : t -> rank:int -> int array -> int array
(** Inverse of {!local_indices} for owned (non-ghost) positions, returning
    Fortran global indices. *)

val zero_based : t -> int array -> int array
(** Fortran indices -> 0-based indices. *)

val storage_flat : t -> rank:int -> int array -> int
(** Flat position of per-dimension local indices within [rank]'s local
    section (column-major, ghost offsets applied) — computable for any
    rank without materialising its section, which is how locally-built
    communication schedules address remote memory. *)

val iter_local : t -> rank:int -> (int array -> int array -> unit) -> unit
(** Iterate [rank]'s owned elements in local column-major order as
    [(global Fortran indices, local positions)]. *)

val pp : Format.formatter -> t -> unit
