open F90d_base

type t = Prog of { first : int; step : int; count : int } | Explicit of int array

let empty = Prog { first = 0; step = 1; count = 0 }
let count = function Prog p -> p.count | Explicit a -> Array.length a

(* Owned array indices for BLOCK: align maps the contiguous block of template
   cells back to a contiguous interval of array indices. *)
let resolve_block (d : Distrib.t) (al : Affine.t) extent proc =
  let c = Distrib.chunk d in
  let blo = proc * c and bhi = min d.n ((proc + 1) * c) - 1 in
  if bhi < blo then empty
  else
    let lo, hi =
      if al.a > 0 then (Util.ceil_div (blo - al.b) al.a, Util.floor_div (bhi - al.b) al.a)
      else (Util.ceil_div (bhi - al.b) al.a, Util.floor_div (blo - al.b) al.a)
    in
    let lo = max lo 0 and hi = min hi (extent - 1) in
    if hi < lo then empty else Prog { first = lo; step = 1; count = hi - lo + 1 }

(* Owned array indices for CYCLIC with a > 0: a*i + b = proc (mod P). *)
let resolve_cyclic (d : Distrib.t) (al : Affine.t) extent proc =
  let p = d.p in
  let g = Util.gcd al.a p in
  if Util.modulo (proc - al.b) g <> 0 then empty
  else
    (* solve a*i = proc - b (mod p): solutions are i = first (mod p/g) *)
    let step = p / g in
    let rec find i =
      if i >= extent then None
      else if Affine.eval al i >= 0 && Util.modulo (Affine.eval al i) p = proc then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> empty
    | Some first ->
        (* also require the template index in range [0, n) *)
        let max_i = min (extent - 1) (Util.floor_div (d.n - 1 - al.b) al.a) in
        if max_i < first then empty
        else Prog { first; step; count = ((max_i - first) / step) + 1 }

let resolve_explicit (d : Distrib.t) (al : Affine.t) extent proc =
  let owned = ref [] in
  for i = extent - 1 downto 0 do
    let t = Affine.eval al i in
    if t >= 0 && t < d.n && Distrib.is_owned d ~proc t then owned := i :: !owned
  done;
  Explicit (Array.of_list !owned)

let resolve (d : Distrib.t) ~align ~extent ~proc =
  match d.form with
  | Distrib.Replicated -> Prog { first = 0; step = 1; count = extent }
  | _ when not (Affine.invertible align) ->
      Diag.bug "layout: non-invertible alignment on a distributed dimension"
  | Distrib.Block -> resolve_block d align extent proc
  | Distrib.Cyclic when align.a > 0 -> resolve_cyclic d align extent proc
  | Distrib.Cyclic | Distrib.Block_cyclic _ -> resolve_explicit d align extent proc

let is_owned t g =
  match t with
  | Prog { first; step; count } ->
      g >= first && (g - first) mod step = 0 && (g - first) / step < count
  | Explicit a ->
      let rec bisect lo hi =
        if lo > hi then false
        else
          let mid = (lo + hi) / 2 in
          if a.(mid) = g then true else if a.(mid) < g then bisect (mid + 1) hi else bisect lo (mid - 1)
      in
      bisect 0 (Array.length a - 1)

let local_of_global t g =
  match t with
  | Prog { first; step; count } ->
      let l = (g - first) / step in
      if g < first || (g - first) mod step <> 0 || l >= count then
        Diag.bug "layout: global index %d not owned" g;
      l
  | Explicit a ->
      let rec bisect lo hi =
        if lo > hi then Diag.bug "layout: global index %d not owned" g
        else
          let mid = (lo + hi) / 2 in
          if a.(mid) = g then mid else if a.(mid) < g then bisect (mid + 1) hi else bisect lo (mid - 1)
      in
      bisect 0 (Array.length a - 1)

let global_of_local t l =
  match t with
  | Prog { first; step; count } ->
      if l < 0 || l >= count then Diag.bug "layout: local index %d out of range" l;
      first + (l * step)
  | Explicit a -> a.(l)

let to_list t = List.init (count t) (global_of_local t)

(* Normalise a possibly-descending Fortran triplet to an ascending one
   describing the same index set. *)
let normalise ~glb ~gub ~gst =
  if gst = 0 then Diag.bug "set_bound: zero stride";
  if gst > 0 then if gub < glb then None else Some (glb, gub, gst)
  else if glb < gub then None
  else
    let k = (glb - gub) / -gst in
    Some (glb + (k * gst), glb, -gst)

let set_bound t ~glb ~gub ~gst =
  match normalise ~glb ~gub ~gst with
  | None -> None
  | Some (glb, gub, gst) -> (
      match t with
      | Prog { first; step; count } ->
          if count = 0 then None
          else
            let last = first + ((count - 1) * step) in
            let lo = max glb first and hi = min gub last in
            (* smallest g >= lo with g = glb (mod gst) and g = first (mod step) *)
            ( match Util.crt_first_ge ~lo ~r1:(Util.modulo glb gst) ~m1:gst
                      ~r2:(Util.modulo first step) ~m2:step
              with
            | None -> None
            | Some g0 ->
                if g0 > hi then None
                else
                  let bigstep = gst / Util.gcd gst step * step in
                  let glast = g0 + ((hi - g0) / bigstep * bigstep) in
                  let llb = (g0 - first) / step
                  and lub = (glast - first) / step
                  and lst = bigstep / step in
                  Some (llb, lub, lst) )
      | Explicit a ->
          (* collect matching local indices; they need not be evenly spaced,
             so return the tightest triplet only when they are *)
          let locals = ref [] in
          Array.iteri
            (fun l g ->
              if g >= glb && g <= gub && (g - glb) mod gst = 0 then locals := l :: !locals)
            a;
          match List.rev !locals with
          | [] -> None
          | [ l ] -> Some (l, l, 1)
          | l0 :: l1 :: rest ->
              let st = l1 - l0 in
              let ok, last =
                List.fold_left (fun (ok, prev) l -> (ok && l - prev = st, l)) (true, l1) rest
              in
              if ok then Some (l0, last, st)
              else
                Diag.error
                  "strided iteration over a CYCLIC(k) dimension does not form a \
                   local triplet; use stride 1 or a BLOCK/CYCLIC distribution")

let pp ppf = function
  | Prog { first; step; count } -> Format.fprintf ppf "prog(first=%d,step=%d,count=%d)" first step count
  | Explicit a -> Format.fprintf ppf "explicit(%d indices)" (Array.length a)
