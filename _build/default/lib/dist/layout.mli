(** Resolved local layout of one array dimension on one processor
    coordinate: the set of owned 0-based array indices, combining stage 1
    (alignment [t = a*i + b]) and stage 2 (distribution of the template
    dimension).

    For BLOCK and CYCLIC with affine alignment the owned indices always form
    an arithmetic progression; CYCLIC(k) falls back to an explicit sorted
    index vector.  The local index of an owned global index is its position
    in this set — that is how node programs address their local memory. *)

type t =
  | Prog of { first : int; step : int; count : int }
  | Explicit of int array  (** sorted ascending *)

val empty : t
val count : t -> int

val resolve : Distrib.t -> align:F90d_base.Affine.t -> extent:int -> proc:int -> t
(** Owned 0-based array indices of a dimension of [extent] elements whose
    index [i] is aligned to template cell [align i], on grid coordinate
    [proc].  [align] must be invertible unless the distribution is
    [Replicated]. *)

val is_owned : t -> int -> bool
val local_of_global : t -> int -> int
(** Position of an owned global index; errors if not owned. *)

val global_of_local : t -> int -> int
val to_list : t -> int list

val set_bound : t -> glb:int -> gub:int -> gst:int -> (int * int * int) option
(** The paper's [set_BOUND] primitive (§4): intersect the owned set with the
    global range [glb:gub:gst] (0-based, [gst] may be negative) and return
    the local triplet [(llb, lub, lst)] in ascending order, or [None] when
    this processor has no iterations (masking inactive processors). *)

val pp : Format.formatter -> t -> unit
