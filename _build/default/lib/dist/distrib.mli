(** Stage-2 mapping of the paper's three-stage scheme (§3): distribution of
    one template dimension of global size [n] over [p] processor-grid
    coordinates.  All indices here are 0-based template indices.

    [Block] divides the template into contiguous chunks of [ceil(n/p)];
    [Cyclic] deals indices round-robin; [Block_cyclic k] deals chunks of [k]
    round-robin (HPF's CYCLIC(k), included as the natural generalisation);
    [Replicated] leaves the dimension undistributed (collapsed template
    dimension or [*] in DISTRIBUTE). *)

type form = Block | Cyclic | Block_cyclic of int | Replicated

type t = { n : int; p : int; form : form }

val make : form -> n:int -> p:int -> t
(** Validates [n >= 0], [p >= 1], [k >= 1]. *)

val pp : Format.formatter -> t -> unit
val form_name : form -> string

val chunk : t -> int
(** Block chunk size [ceil(n/p)] (meaningful for [Block]). *)

val owner : t -> int -> int
(** Processor coordinate owning global template index [g]; [0] for
    [Replicated]. *)

val is_owned : t -> proc:int -> int -> bool

val local_of_global : t -> int -> int
(** µ: local index of [g] on [owner g] (for [Replicated], [g] itself). *)

val global_of_local : t -> proc:int -> int -> int
(** µ⁻¹: global index of local index [l] on processor [proc]. *)

val local_count : t -> proc:int -> int
(** Number of template indices owned by [proc]. *)

val owned_indices : t -> proc:int -> int list
(** All owned global indices in ascending order (test oracle; O(n/p)). *)
