open F90d_base

type t = { dims : int array; phys_of_rank : int array; rank_of_phys : int array }

let size_of dims = Array.fold_left ( * ) 1 dims

let make ?phys_of_rank dims =
  Array.iter (fun d -> if d < 1 then Diag.bug "grid: dimension extent %d < 1" d) dims;
  let n = size_of dims in
  let phys = match phys_of_rank with Some p -> p | None -> Array.init n Fun.id in
  if Array.length phys <> n then Diag.bug "grid: embedding size mismatch";
  let inv = Array.make n (-1) in
  Array.iteri
    (fun rank node ->
      if node < 0 || node >= n || inv.(node) <> -1 then Diag.bug "grid: embedding is not a permutation";
      inv.(node) <- rank)
    phys;
  { dims; phys_of_rank = phys; rank_of_phys = inv }

let dims t = t.dims
let ndims t = Array.length t.dims
let size t = size_of t.dims

let rank_of_coords t coords =
  if Array.length coords <> ndims t then Diag.bug "grid: coordinate rank mismatch";
  let rank = ref 0 and stride = ref 1 in
  for d = 0 to ndims t - 1 do
    if coords.(d) < 0 || coords.(d) >= t.dims.(d) then
      Diag.bug "grid: coordinate %d out of range in dim %d" coords.(d) d;
    rank := !rank + (coords.(d) * !stride);
    stride := !stride * t.dims.(d)
  done;
  !rank

let coords_of_rank t rank =
  if rank < 0 || rank >= size t then Diag.bug "grid: rank %d out of range" rank;
  let coords = Array.make (ndims t) 0 in
  let r = ref rank in
  for d = 0 to ndims t - 1 do
    coords.(d) <- !r mod t.dims.(d);
    r := !r / t.dims.(d)
  done;
  coords

let phys_of_rank t rank = t.phys_of_rank.(rank)
let rank_of_phys t node = t.rank_of_phys.(node)

let ranks_along t ~rank ~dim =
  let coords = coords_of_rank t rank in
  Array.init t.dims.(dim) (fun c ->
      let coords = Array.copy coords in
      coords.(dim) <- c;
      rank_of_coords t coords)

let neighbour t ~rank ~dim ~delta =
  let coords = coords_of_rank t rank in
  let c = coords.(dim) + delta in
  if c < 0 || c >= t.dims.(dim) then None
  else begin
    let coords = Array.copy coords in
    coords.(dim) <- c;
    Some (rank_of_coords t coords)
  end

let pp ppf t =
  Format.fprintf ppf "grid(%s)"
    (String.concat "x" (Array.to_list (Array.map string_of_int t.dims)))
