open F90d_base

type form = Block | Cyclic | Block_cyclic of int | Replicated
type t = { n : int; p : int; form : form }

let make form ~n ~p =
  if n < 0 then Diag.bug "distrib: negative extent %d" n;
  if p < 1 then Diag.bug "distrib: processor count %d < 1" p;
  (match form with
  | Block_cyclic k when k < 1 -> Diag.bug "distrib: CYCLIC(%d) block size < 1" k
  | _ -> ());
  { n; p; form }

let form_name = function
  | Block -> "BLOCK"
  | Cyclic -> "CYCLIC"
  | Block_cyclic k -> Printf.sprintf "CYCLIC(%d)" k
  | Replicated -> "*"

let pp ppf t = Format.fprintf ppf "%s[n=%d,p=%d]" (form_name t.form) t.n t.p

let chunk t = if t.n = 0 then 1 else Util.ceil_div t.n t.p

let owner t g =
  if g < 0 || g >= t.n then Diag.bug "distrib: index %d outside [0,%d)" g t.n;
  match t.form with
  | Replicated -> 0
  | Block -> g / chunk t
  | Cyclic -> g mod t.p
  | Block_cyclic k -> g / k mod t.p

let is_owned t ~proc g = match t.form with Replicated -> true | _ -> owner t g = proc

let local_of_global t g =
  match t.form with
  | Replicated -> g
  | Block -> g mod chunk t
  | Cyclic -> g / t.p
  | Block_cyclic k ->
      let course = g / k in
      ((course / t.p) * k) + (g mod k)

let global_of_local t ~proc l =
  match t.form with
  | Replicated -> l
  | Block -> (proc * chunk t) + l
  | Cyclic -> (l * t.p) + proc
  | Block_cyclic k ->
      let course = l / k in
      ((((course * t.p) + proc) * k) + (l mod k))

let local_count t ~proc =
  match t.form with
  | Replicated -> t.n
  | Block ->
      let c = chunk t in
      max 0 (min t.n ((proc + 1) * c) - (proc * c))
  | Cyclic -> if t.n <= proc then 0 else ((t.n - proc - 1) / t.p) + 1
  | Block_cyclic k ->
      (* full courses plus the possibly partial last course *)
      let courses = Util.ceil_div t.n k in
      let rec count acc course =
        if course >= courses then acc
        else if course mod t.p <> proc then count acc (course + 1)
        else
          let len = min k (t.n - (course * k)) in
          count (acc + len) (course + 1)
      in
      count 0 0

let owned_indices t ~proc =
  List.filter (fun g -> is_owned t ~proc g) (Util.range 0 (t.n - 1))
