lib/dist/dad.mli: Distrib F90d_base Format Grid Layout
