lib/dist/distrib.mli: Format
