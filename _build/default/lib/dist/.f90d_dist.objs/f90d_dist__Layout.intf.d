lib/dist/layout.mli: Distrib F90d_base Format
