lib/dist/dad.ml: Affine Array Diag Distrib F90d_base Format Grid Hashtbl Layout List Ndarray Printf Scalar
