lib/dist/layout.ml: Affine Array Diag Distrib F90d_base Format List Util
