lib/dist/bounds.ml: Array Dad Layout
