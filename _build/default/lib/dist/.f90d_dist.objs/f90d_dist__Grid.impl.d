lib/dist/grid.ml: Array Diag F90d_base Format Fun String
