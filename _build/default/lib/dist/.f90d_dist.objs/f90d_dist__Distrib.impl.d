lib/dist/distrib.ml: Diag F90d_base Format List Printf Util
