lib/dist/bounds.mli: Dad
