lib/dist/grid.mli: Format
