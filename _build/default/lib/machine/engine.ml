open F90d_base
open Effect
open Effect.Deep

type config = { nprocs : int; model : Model.t; topology : Topology.t }

let config ?(model = Model.ideal) ?(topology = Topology.Full) nprocs =
  if nprocs < 1 then Diag.bug "engine: nprocs %d < 1" nprocs;
  { nprocs; model; topology }

exception Deadlock of string

type shared = {
  cfg : config;
  clocks : float array;
  (* mailbox: (dest, src, tag) -> FIFO of messages *)
  mail : (int * int * int, Message.t Queue.t) Hashtbl.t;
  stats : Stats.t;
}

type ctx = { me : int; sh : shared }

type _ Effect.t += Wait_recv : (int * int * int) -> Message.t Effect.t
(* (dest, src, tag): suspend until a matching message is in the mailbox *)

let rank ctx = ctx.me
let nprocs ctx = ctx.sh.cfg.nprocs
let model ctx = ctx.sh.cfg.model
let time ctx = ctx.sh.clocks.(ctx.me)

let advance ctx dt =
  if dt < 0. then Diag.bug "engine: negative time advance";
  ctx.sh.clocks.(ctx.me) <- ctx.sh.clocks.(ctx.me) +. dt

let charge_flops ctx n = advance ctx (float_of_int n *. (model ctx).Model.flop)
let charge_iops ctx n = advance ctx (float_of_int n *. (model ctx).Model.iop)
let charge_copy_bytes ctx n = advance ctx (float_of_int n *. (model ctx).Model.memcpy)

let mailbox sh key =
  match Hashtbl.find_opt sh.mail key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add sh.mail key q;
      q

let send ctx ~dest ~tag payload =
  let sh = ctx.sh in
  if dest < 0 || dest >= sh.cfg.nprocs then Diag.bug "engine: send to rank %d" dest;
  let bytes = Message.payload_bytes payload in
  let m = sh.cfg.model in
  (* blocking csend: the sender is busy for startup + transfer *)
  advance ctx (m.Model.alpha +. (float_of_int bytes *. m.Model.beta));
  let hops = Topology.hops sh.cfg.topology ~nprocs:sh.cfg.nprocs ctx.me dest in
  let arrival = time ctx +. (float_of_int (max 0 (hops - 1)) *. m.Model.hop) in
  Stats.record_send ~tag sh.stats ~rank:ctx.me ~bytes;
  Queue.add
    { Message.src = ctx.me; tag; payload; bytes; arrival }
    (mailbox sh (dest, ctx.me, tag))

let recv ctx ~src ~tag =
  let msg = perform (Wait_recv (ctx.me, src, tag)) in
  let sh = ctx.sh in
  let before = time ctx in
  if msg.Message.arrival > before then begin
    Stats.record_wait sh.stats (msg.Message.arrival -. before);
    sh.clocks.(ctx.me) <- msg.Message.arrival
  end;
  msg

type 'a report = { results : 'a array; elapsed : float; clocks : float array; stats : Stats.t }

type 'a fiber_state =
  | Not_started
  | Blocked of (int * int * int) * (Message.t, unit) continuation
  | Finished of 'a
  | Failed of exn * Printexc.raw_backtrace

let run cfg main =
  let sh =
    {
      cfg;
      clocks = Array.make cfg.nprocs 0.;
      mail = Hashtbl.create 64;
      stats = Stats.create cfg.nprocs;
    }
  in
  let states = Array.make cfg.nprocs Not_started in
  (* Run one fiber slice: either start a fiber or resume a blocked one whose
     message is available.  Returns true if any progress was made. *)
  let deliver key =
    match Hashtbl.find_opt sh.mail key with
    | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
    | _ -> None
  in
  let handle me thunk =
    match_with thunk ()
      {
        retc = (fun v -> states.(me) <- Finished v);
        exnc = (fun e -> states.(me) <- Failed (e, Printexc.get_raw_backtrace ()));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait_recv key ->
                Some
                  (fun (k : (a, unit) continuation) -> states.(me) <- Blocked (key, k))
            | _ -> None);
      }
  in
  let progress = ref true in
  let all_done () =
    Array.for_all (function Finished _ | Failed _ -> true | _ -> false) states
  in
  while (not (all_done ())) && !progress do
    progress := false;
    for me = 0 to cfg.nprocs - 1 do
      match states.(me) with
      | Not_started ->
          progress := true;
          let ctx = { me; sh } in
          handle me (fun () -> main ctx)
      | Blocked (key, k) -> (
          match deliver key with
          | Some msg ->
              progress := true;
              (* the fiber's original deep handler updates [states.(me)] *)
              continue k msg
          | None -> ())
      | Finished _ | Failed _ -> ()
    done
  done;
  (* Propagate the first failure, if any. *)
  Array.iteri
    (fun _ st ->
      match st with
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | _ -> ())
    states;
  if not (all_done ()) then begin
    let blocked =
      Array.to_seq states
      |> Seq.filter_map (function
           | Blocked ((me, src, tag), _) -> Some (Printf.sprintf "p%d waiting on (src=%d,tag=%d)" me src tag)
           | _ -> None)
      |> List.of_seq
    in
    raise (Deadlock (String.concat "; " blocked))
  end;
  let results =
    Array.map
      (function
        | Finished v -> v
        | Not_started | Blocked _ | Failed _ -> Diag.bug "engine: unfinished fiber after run")
      states
  in
  let elapsed = Array.fold_left Float.max 0. sh.clocks in
  { results; elapsed; clocks = Array.copy sh.clocks; stats = sh.stats }
