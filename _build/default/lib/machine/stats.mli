(** Per-run communication and computation statistics, used by the
    benchmark harness and by tests that assert message counts (e.g. that
    schedule reuse removes preprocessing messages).

    Sends are also accounted per message-tag family so benches can print
    a breakdown by communication primitive. *)

type t = {
  mutable messages : int;
  mutable bytes : int;
  mutable recv_wait : float;  (** total time receivers spent blocked *)
  per_rank_messages : int array;
  per_rank_bytes : int array;
  by_tag : (int, int * int) Hashtbl.t;  (** tag -> (messages, bytes) *)
}

val create : int -> t
val record_send : ?tag:int -> t -> rank:int -> bytes:int -> unit
val record_wait : t -> float -> unit

val breakdown : t -> name_of:(int -> string) -> (string * int * int) list
(** (family name, messages, bytes) per tag family (tags grouped by
    hundreds, matching the runtime's namespace), most messages first. *)

val pp : Format.formatter -> t -> unit
