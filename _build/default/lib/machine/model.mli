(** Machine cost models.

    The simulator charges virtual time for computation and communication
    from these parameters.  The two 1993 hypercubes of the paper's
    evaluation are calibrated from their published characteristics
    (per-node compiled-Fortran throughput, message startup latency and
    point-to-point bandwidth); [ideal] makes communication free and each
    operation cost one unit, which tests use to count operations exactly. *)

type t = {
  name : string;
  alpha : float;  (** message startup / software latency, seconds *)
  beta : float;  (** transfer time per byte, seconds *)
  hop : float;  (** additional latency per network hop beyond the first *)
  flop : float;  (** time per floating-point operation (compiled code) *)
  iop : float;  (** time per integer/index operation *)
  memcpy : float;  (** local copy cost per byte *)
}

val ipsc860 : t
(** Intel iPSC/860 hypercube. *)

val ncube2 : t
(** nCUBE/2 hypercube. *)

val ideal : t
(** Free communication, unit-cost ops: op counting for tests. *)

val scaled : t -> comp:float -> comm:float -> t
(** Scale computation (flop/iop/memcpy) and communication (alpha/beta/hop)
    costs; used by ablation benches. *)

val transfer_time : t -> bytes:int -> hops:int -> float
(** End-to-end latency of one message. *)

val pp : Format.formatter -> t -> unit
