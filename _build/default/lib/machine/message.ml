open F90d_base

type payload =
  | Empty
  | Scalar of Scalar.t
  | Arr of Ndarray.t
  | Ints of int array
  | Floats of float array
  | Pair of payload * payload
  | List of payload list

type t = { src : int; tag : int; payload : payload; bytes : int; arrival : float }

let rec payload_bytes = function
  | Empty -> 0
  | Scalar _ -> 8
  | Arr a -> Ndarray.bytes a
  | Ints a -> 4 * Array.length a
  | Floats a -> 8 * Array.length a
  | Pair (a, b) -> payload_bytes a + payload_bytes b
  | List l -> List.fold_left (fun acc p -> acc + payload_bytes p) 0 l

let scalar t =
  match t.payload with Scalar s -> s | _ -> Diag.bug "message: expected scalar payload"

let arr t = match t.payload with Arr a -> a | _ -> Diag.bug "message: expected array payload"
let ints t = match t.payload with Ints a -> a | _ -> Diag.bug "message: expected int payload"

let floats t =
  match t.payload with Floats a -> a | _ -> Diag.bug "message: expected float payload"

let pair t =
  match t.payload with Pair (a, b) -> (a, b) | _ -> Diag.bug "message: expected pair payload"

let list t =
  match t.payload with List l -> l | _ -> Diag.bug "message: expected list payload"
