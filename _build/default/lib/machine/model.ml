type t = {
  name : string;
  alpha : float;
  beta : float;
  hop : float;
  flop : float;
  iop : float;
  memcpy : float;
}

(* iPSC/860: ~75us startup, ~2.8 MB/s sustained.  The computation costs
   are calibrated so the paper's sequential Gaussian-elimination time
   (Table 4, 1023x1024, ~620 s) is reproduced by the simulator's static
   operation counts. *)
let ipsc860 =
  {
    name = "iPSC/860";
    alpha = 75e-6;
    beta = 0.36e-6;
    hop = 11e-6;
    flop = 0.30e-6;
    iop = 0.020e-6;
    memcpy = 0.04e-6;
  }

(* nCUBE/2: ~154us startup, ~1.7 MB/s, roughly 2.5-3x slower per node in
   compiled Fortran than the i860. *)
let ncube2 =
  {
    name = "nCUBE/2";
    alpha = 154e-6;
    beta = 0.57e-6;
    hop = 4e-6;
    flop = 0.80e-6;
    iop = 0.055e-6;
    memcpy = 0.11e-6;
  }

let ideal =
  { name = "ideal"; alpha = 0.; beta = 0.; hop = 0.; flop = 1.; iop = 1.; memcpy = 1. }

let scaled t ~comp ~comm =
  {
    name = Printf.sprintf "%s[comp*%g,comm*%g]" t.name comp comm;
    alpha = t.alpha *. comm;
    beta = t.beta *. comm;
    hop = t.hop *. comm;
    flop = t.flop *. comp;
    iop = t.iop *. comp;
    memcpy = t.memcpy *. comp;
  }

let transfer_time t ~bytes ~hops =
  t.alpha +. (float_of_int bytes *. t.beta) +. (float_of_int (max 0 (hops - 1)) *. t.hop)

let pp ppf t =
  Format.fprintf ppf "%s(alpha=%.1fus, beta=%.2fus/B, flop=%.2fus)" t.name (t.alpha *. 1e6)
    (t.beta *. 1e6) (t.flop *. 1e6)
