lib/machine/model.mli: Format
