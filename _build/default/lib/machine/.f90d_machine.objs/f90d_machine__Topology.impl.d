lib/machine/topology.ml: Array F90d_base Util
