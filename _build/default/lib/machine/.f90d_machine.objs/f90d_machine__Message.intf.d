lib/machine/message.mli: F90d_base
