lib/machine/engine.ml: Array Diag Effect F90d_base Float Hashtbl List Message Model Printexc Printf Queue Seq Stats String Topology
