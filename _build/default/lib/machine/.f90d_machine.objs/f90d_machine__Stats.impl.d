lib/machine/stats.ml: Array Format Hashtbl List Option
