lib/machine/topology.mli:
