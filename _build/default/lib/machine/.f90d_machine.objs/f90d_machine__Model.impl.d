lib/machine/model.ml: Format Printf
