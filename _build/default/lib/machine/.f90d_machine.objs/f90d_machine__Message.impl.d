lib/machine/message.ml: Array Diag F90d_base List Ndarray Scalar
