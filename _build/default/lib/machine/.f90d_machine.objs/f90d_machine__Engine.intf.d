lib/machine/engine.mli: Message Model Stats Topology
