(** Interconnect topologies: hop counts between physical nodes and
    logical-grid embeddings (the φ of stage 3).

    The paper's machines are binary hypercubes; grids whose extents are all
    powers of two embed by per-dimension Gray coding, making grid
    neighbours physical neighbours.  [Full] models an ideal crossbar. *)

type t = Hypercube | Mesh | Full

val hops : t -> nprocs:int -> int -> int -> int
(** Network distance between two physical node ids (>= 1 for distinct
    nodes, 0 for self). *)

val grid_embedding : t -> nprocs:int -> int array -> int array option
(** [grid_embedding topo ~nprocs dims] is the [phys_of_rank] permutation
    for a logical grid with extents [dims] covering [nprocs] nodes, or
    [None] for the identity (no better embedding available). *)

val name : t -> string
