type t = {
  mutable messages : int;
  mutable bytes : int;
  mutable recv_wait : float;
  per_rank_messages : int array;
  per_rank_bytes : int array;
  by_tag : (int, int * int) Hashtbl.t;
}

let create nprocs =
  {
    messages = 0;
    bytes = 0;
    recv_wait = 0.;
    per_rank_messages = Array.make nprocs 0;
    per_rank_bytes = Array.make nprocs 0;
    by_tag = Hashtbl.create 16;
  }

let record_send ?(tag = 0) t ~rank ~bytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  t.per_rank_messages.(rank) <- t.per_rank_messages.(rank) + 1;
  t.per_rank_bytes.(rank) <- t.per_rank_bytes.(rank) + bytes;
  let m, b = Option.value (Hashtbl.find_opt t.by_tag tag) ~default:(0, 0) in
  Hashtbl.replace t.by_tag tag (m + 1, b + bytes)

let record_wait t dt = t.recv_wait <- t.recv_wait +. dt

(* message tags are namespaced by hundreds (see F90d_runtime.Tags) *)
let tag_family tag = tag / 100 * 100

let breakdown t ~name_of =
  let fams = Hashtbl.create 8 in
  Hashtbl.iter
    (fun tag (m, b) ->
      let f = tag_family tag in
      let m0, b0 = Option.value (Hashtbl.find_opt fams f) ~default:(0, 0) in
      Hashtbl.replace fams f (m0 + m, b0 + b))
    t.by_tag;
  Hashtbl.fold (fun f (m, b) acc -> (name_of f, m, b) :: acc) fams []
  |> List.sort (fun (_, m1, _) (_, m2, _) -> compare m2 m1)

let pp ppf t =
  Format.fprintf ppf "messages=%d bytes=%d recv_wait=%.6fs" t.messages t.bytes t.recv_wait
