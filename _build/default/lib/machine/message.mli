(** Messages exchanged on the simulated machine. *)

type payload =
  | Empty
  | Scalar of F90d_base.Scalar.t
  | Arr of F90d_base.Ndarray.t
  | Ints of int array
  | Floats of float array
  | Pair of payload * payload
      (** composed messages (e.g. multicast_shift, combined pivot+factors) *)
  | List of payload list  (** concatenation/gather results in team order *)

type t = {
  src : int;  (** sender's physical node id *)
  tag : int;
  payload : payload;
  bytes : int;
  arrival : float;  (** virtual time at which the receiver may consume it *)
}

val payload_bytes : payload -> int
(** Wire size: 8 bytes per real or scalar, 4 per integer/logical. *)

val scalar : t -> F90d_base.Scalar.t
(** Projections that fail loudly on a payload of the wrong shape —
    a protocol error in the runtime library. *)

val arr : t -> F90d_base.Ndarray.t
val ints : t -> int array
val floats : t -> float array
val pair : t -> payload * payload
val list : t -> payload list
