open F90d_base

type t = Hypercube | Mesh | Full

let name = function Hypercube -> "hypercube" | Mesh -> "mesh" | Full -> "full"

(* Mesh: nodes arranged in a near-square 2D grid, row-major. *)
let mesh_side nprocs =
  let rec find s = if s * s >= nprocs then s else find (s + 1) in
  find 1

let hops t ~nprocs a b =
  if a = b then 0
  else
    match t with
    | Full -> 1
    | Hypercube -> Util.popcount (a lxor b)
    | Mesh ->
        let side = mesh_side nprocs in
        abs ((a mod side) - (b mod side)) + abs ((a / side) - (b / side))

(* Per-dimension Gray coding: coordinate c_d of log2(dims d) bits becomes
   gray(c_d); bit fields are concatenated in dimension order.  Adjacent
   coordinates along any dimension then differ in exactly one node bit. *)
let grid_embedding t ~nprocs dims =
  match t with
  | Mesh | Full -> None
  | Hypercube ->
      let total = Array.fold_left ( * ) 1 dims in
      if total <> nprocs || not (Array.for_all Util.is_pow2 dims) then None
      else
        let bits = Array.map Util.ilog2 dims in
        let n = total in
        let phys = Array.make n 0 in
        for rank = 0 to n - 1 do
          (* decode column-major coordinates, then pack gray fields *)
          let r = ref rank and node = ref 0 and shift = ref 0 in
          Array.iteri
            (fun d extent ->
              let c = !r mod extent in
              r := !r / extent;
              node := !node lor (Util.gray c lsl !shift);
              shift := !shift + bits.(d))
            dims;
          phys.(rank) <- !node
        done;
        Some phys
