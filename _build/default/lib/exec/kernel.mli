(** Elementwise kernel specializer — the stand-in for the node Fortran
    compiler's scalar optimizer/vectorizer that §7 delegates to.

    A FORALL whose iteration sets are arithmetic progressions, whose
    references all resolve to flat offsets affine in the loop counters,
    and whose body is real arithmetic, is compiled once per execution into
    a closure-tree over raw [float array]s and run as a tight loop nest —
    two to three orders of magnitude faster than generic interpretation,
    which is what makes the paper's 1023x1024 Table 4 matrix tractable.

    Anything else (masks, integer bodies, indirection, write-back phases)
    returns [None] and falls back to the general interpreter; results are
    bit-identical either way (same operations, same order). *)

open F90d_frontend

type temp_nd =
  | Tbox of F90d_base.Ndarray.t
  | Tflat of F90d_base.Ndarray.t
  | Tglobal of F90d_base.Ndarray.t

val runs : unit -> int
(** Number of loop nests executed by the specializer since {!reset_runs}
    (summed over all simulated processors) — lets performance tests assert
    that hot FORALLs actually take the fast path. *)

val reset_runs : unit -> unit

val try_run :
  env:Sema.unit_env ->
  me:int ->
  scalar_lookup:(string -> F90d_base.Scalar.t option) ->
  darr_of:(string -> F90d_runtime.Darray.t) ->
  temp_of:(int -> temp_nd option) ->
  values:int array list ->
  f:F90d_ir.Ir.forall ->
  bool
(** Runs the whole local loop nest if specialization applies; [false]
    means the caller must interpret.  [values] are this processor's
    per-variable global index values in nest order. *)
