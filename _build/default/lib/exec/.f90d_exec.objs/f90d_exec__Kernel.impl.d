lib/exec/kernel.ml: Array Ast Dad Darray F90d_base F90d_dist F90d_frontend F90d_ir F90d_runtime Float Intrinsic_names Ir Layout List Ndarray Scalar Sema
