lib/exec/kernel.mli: F90d_base F90d_frontend F90d_ir F90d_runtime Sema
