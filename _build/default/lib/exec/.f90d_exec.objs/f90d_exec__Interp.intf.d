lib/exec/interp.mli: Ast F90d_base F90d_dist F90d_frontend F90d_ir F90d_runtime Hashtbl Logs
