(* Irregular access through indirection arrays (§5.3.2): the PARTI-style
   inspector/executor path -- gather for A(I) = B(V(I)), scatter for
   C(U(I)) = A(I) -- inside a time loop, showing the schedule-reuse
   optimization at work.

     dune exec examples/irregular_parti.exe *)

let n = 48

let () =
  let source = F90d.Programs.irregular ~n in

  (* with schedule reuse (default): the inspectors run once *)
  let with_reuse =
    F90d.Driver.run ~collect_finals:true ~nprocs:4 (F90d.Driver.compile source)
  in
  let stats = with_reuse.F90d.Driver.stats in
  Printf.printf "with reuse   : %4d messages, %d schedule builds, %d cache hits\n"
    stats.F90d_machine.Stats.messages stats.F90d_machine.Stats.sched_builds
    stats.F90d_machine.Stats.sched_hits;

  (* without: every time step re-runs the preprocessing communication *)
  let without =
    F90d.Driver.run ~collect_finals:true ~nprocs:4
      (F90d.Driver.compile ~flags:F90d_opt.Passes.all_off source)
  in
  Printf.printf "without reuse: %4d messages\n"
    without.F90d.Driver.stats.F90d_machine.Stats.messages;

  (* same numerical results either way *)
  let a = F90d.Driver.final with_reuse "C" and b = F90d.Driver.final without "C" in
  Printf.printf "identical results: %b\n" (F90d_base.Ndarray.approx_equal a b);

  (* the final C: C(U(I)) = A(I) with A(I) = B(V(I)) + T at the last step *)
  Format.printf "C = %a@." F90d_base.Ndarray.pp a
