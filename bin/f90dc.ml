(* f90dc — the Fortran 90D/HPF compiler driver.

   Compiles a Fortran 90D/HPF source file, optionally emits the generated
   Fortran 77+MP node program, and/or executes it on the simulated
   distributed-memory machine.  --serve turns the same compiler into a
   persistent daemon behind a Unix-domain socket; --client scripts it. *)

open Cmdliner

let read_source = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let demo_source name nprocs =
  let n =
    match Sys.getenv_opt "F90D_DEMO_N" with
    | Some s -> (try max 4 (int_of_string (String.trim s)) with _ -> 64)
    | None -> 64
  in
  F90d_serve.Service.demo_source name ~nprocs ~n

(* ------------------------------------------------------------------ *)
(* Service mode                                                        *)
(* ------------------------------------------------------------------ *)

module Log = F90d_obs.Log

let serve_cmd sock cache_dir no_cache request_timeout serve_workers log_slow =
  let store =
    if no_cache then None
    else
      let dir =
        match cache_dir with
        | Some d -> d
        | None -> F90d_serve.Store.default_dir ()
      in
      Some (F90d_serve.Store.create ~dir)
  in
  let workers =
    match serve_workers with Some n -> n | None -> 0 (* Server picks its default *)
  in
  let service =
    F90d_serve.Service.create ?store
      ?timeout:request_timeout ?slow:log_slow
      ~workers:(if workers > 0 then workers else 1)
      ()
  in
  let srv =
    if workers > 0 then F90d_serve.Server.start ~workers ~service ~sock_path:sock ()
    else F90d_serve.Server.start ~service ~sock_path:sock ()
  in
  Printf.printf "f90dc: serving on %s (%s, f90d_cache_version %d)%s\n%!" sock
    F90d_base.Util.package_version F90d_base.Util.cache_version
    (match store with
    | Some st -> Printf.sprintf " (schedule store: %s)" (F90d_serve.Store.dir st)
    | None -> " (caching disabled)");
  Log.info "daemon_start"
    [
      ("socket", Log.S sock);
      ("version", Log.S F90d_base.Util.package_version);
      ("cache_version", Log.I F90d_base.Util.cache_version);
      ( "store",
        Log.S
          (match store with Some st -> F90d_serve.Store.dir st | None -> "disabled") );
    ];
  F90d_serve.Server.wait srv;
  Log.info "daemon_stop" [ ("socket", Log.S sock) ];
  Printf.printf "f90dc: daemon on %s stopped\n%!" sock

(* Forward newline-delimited JSON requests from stdin, one frame each,
   and print one response per line. *)
let client_cmd sock =
  F90d_serve.Client.with_conn sock (fun conn ->
      let rec loop () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line when String.trim line = "" -> loop ()
        | Some line ->
            let reply = F90d_serve.Client.request_raw conn line in
            print_endline reply;
            loop ()
      in
      try loop ()
      with F90d_serve.Wire.Closed ->
        prerr_endline "f90dc: daemon closed the connection")

(* Scrape a running daemon: one metrics request, print the exposition
   text — `f90dc --metrics /run/f90d.sock | promtool check metrics`. *)
let metrics_cmd sock =
  F90d_serve.Client.with_conn sock (fun conn ->
      let reply =
        F90d_serve.Client.request conn (F90d_serve.Json.Obj [ ("op", F90d_serve.Json.Str "metrics") ])
      in
      match F90d_serve.Json.mem reply "body" with
      | Some body when F90d_serve.Json.str body <> None ->
          print_string (Option.get (F90d_serve.Json.str body))
      | _ ->
          failwith
            (match F90d_serve.Json.mem reply "error" with
            | Some e when F90d_serve.Json.str e <> None ->
                "daemon refused the metrics request: " ^ Option.get (F90d_serve.Json.str e)
            | _ -> "daemon returned no metrics body"))

(* ------------------------------------------------------------------ *)
(* One-shot mode                                                       *)
(* ------------------------------------------------------------------ *)

let run_cmd source demo nprocs jobs machine emit explain explain_json profile_json no_opt
    no_passes show_finals trace profile log_comm serve client cache_dir no_cache
    request_timeout serve_workers metrics_sock metrics_out log_file log_level log_slow =
  try
    (match log_file with Some path -> Log.set_file path | None -> ());
    (match log_level with
    | Some s -> (
        match Log.level_of_string s with
        | Ok l -> Log.set_level l
        | Error msg -> failwith msg)
    | None -> ());
    match (serve, client, metrics_sock) with
    | Some sock, _, _ ->
        serve_cmd sock cache_dir no_cache request_timeout serve_workers log_slow;
        `Ok ()
    | None, Some sock, _ ->
        client_cmd sock;
        `Ok ()
    | None, None, Some sock ->
        metrics_cmd sock;
        `Ok ()
    | None, None, None ->
        let t_start = Unix.gettimeofday () in
        if log_comm then begin
          Logs.set_reporter (Logs.format_reporter ());
          Logs.Src.set_level F90d_exec.Interp.log_src (Some Logs.Debug)
        end;
        let nprocs = max 1 nprocs in
        let src =
          match (demo, source) with
          | Some d, _ -> demo_source d nprocs
          | None, Some path -> read_source path
          | None, None -> read_source "-"
        in
        let flags = F90d_serve.Service.flags_of_names ~no_opt no_passes in
        let compiled = F90d.Driver.compile ~flags src in
        let metrics_store = ref None in
        let metrics_run = ref None in
        if emit then print_string (F90d_ir.Emit_f77.emit_program compiled.F90d.Driver.c_ir)
        else if explain then
          print_string (F90d_report.Report.explain_text compiled.F90d.Driver.c_ir)
        else if explain_json then
          print_string (F90d_report.Report.explain_json compiled.F90d.Driver.c_ir)
        else begin
          let model = F90d_serve.Service.model_of_name machine in
          let topology =
            if F90d_base.Util.is_pow2 nprocs then F90d_machine.Topology.Hypercube
            else F90d_machine.Topology.Full
          in
          let tracing = trace <> None || profile || profile_json <> None in
          let store =
            match (cache_dir, no_cache) with
            | Some dir, false -> Some (F90d_serve.Store.create ~dir)
            | _ -> None
          in
          let sio =
            F90d_serve.Service.sched_io store ~use:(store <> None) ~source:src ~flags ~nprocs
          in
          let poll =
            match request_timeout with
            | Some s when s > 0. ->
                let deadline = Unix.gettimeofday () +. s in
                Some
                  (fun () ->
                    if Unix.gettimeofday () > deadline then
                      raise (F90d_serve.Service.Timed_out s))
            | _ -> None
          in
          let result =
            F90d.Driver.run ~collect_finals:show_finals ~model ~topology ?jobs ~trace:tracing
              ?poll ?sched_preload:sio.F90d_serve.Service.sio_preload
              ?sched_collect:sio.F90d_serve.Service.sio_collect ~nprocs compiled
          in
          sio.F90d_serve.Service.sio_commit ();
          metrics_store := store;
          metrics_run := Some result;
          Log.info "run_done"
            [
              ("nprocs", Log.I nprocs);
              ("machine", Log.S model.F90d_machine.Model.name);
              ("sim_elapsed_s", Log.F result.F90d.Driver.elapsed);
              ("messages", Log.I result.F90d.Driver.stats.F90d_machine.Stats.messages);
              ( "sched_builds",
                Log.I result.F90d.Driver.stats.F90d_machine.Stats.sched_builds );
              ("host_s", Log.F (Unix.gettimeofday () -. t_start));
            ];
          print_string result.F90d.Driver.outcome.F90d_exec.Interp.output;
          Printf.printf "--- %d processors on %s ---\n" nprocs model.F90d_machine.Model.name;
          Printf.printf "simulated time : %.6f s\n" result.F90d.Driver.elapsed;
          Printf.printf "messages       : %d (%d bytes)\n"
            result.F90d.Driver.stats.F90d_machine.Stats.messages
            result.F90d.Driver.stats.F90d_machine.Stats.bytes;
          (match store with
          | Some st ->
              Printf.printf "schedule store : %s (%s)\n"
                sio.F90d_serve.Service.sio_temp (F90d_serve.Store.dir st)
          | None -> ());
          (match (result.F90d.Driver.trace, trace) with
          | Some tr, Some file ->
              Out_channel.with_open_text file (fun oc ->
                  Out_channel.output_string oc (F90d_trace.Trace.to_chrome_json tr));
              Printf.printf "trace          : %s (%d events)\n" file
                (F90d_trace.Trace.total_events tr)
          | _ -> ());
          (match result.F90d.Driver.trace with
          | Some tr when profile ->
              print_string
                (F90d_trace.Analyze.render_profile tr ~name_of:F90d_runtime.Tags.family_name);
              print_newline ();
              print_string
                (F90d_report.Report.hot_text
                   (F90d_report.Report.hot_statements compiled.F90d.Driver.c_ir tr))
          | _ -> ());
          (match (result.F90d.Driver.trace, profile_json) with
          | Some tr, Some file ->
              Out_channel.with_open_text file (fun oc ->
                  Out_channel.output_string oc
                    (F90d_report.Report.profile_json compiled.F90d.Driver.c_ir tr));
              Printf.printf "profile json   : %s\n" file
          | _ -> ());
          if show_finals then
            List.iter
              (fun (name, arr) ->
                Format.printf "%s = %a@." name F90d_base.Ndarray.pp arr)
              result.F90d.Driver.outcome.F90d_exec.Interp.finals
        end;
        (* One-shot metrics dump: the same families the daemon's metrics
           op exposes, with this invocation counted as one request. *)
        (match metrics_out with
        | None -> ()
        | Some path ->
            let tel =
              F90d_serve.Telemetry.create ?store:!metrics_store ~started:t_start
                ~ops:F90d_serve.Service.ops ()
            in
            let op =
              if emit then "compile" else if explain || explain_json then "explain" else "run"
            in
            F90d_serve.Telemetry.count_request tel op;
            F90d_serve.Telemetry.observe_duration tel op (Unix.gettimeofday () -. t_start);
            (match !metrics_run with
            | Some r ->
                F90d_serve.Telemetry.observe_run tel ~elapsed:r.F90d.Driver.elapsed
                  r.F90d.Driver.stats
            | None -> ());
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (F90d_serve.Telemetry.render tel));
            Printf.printf "metrics        : %s\n" path);
        `Ok ()
  with
  | F90d_base.Diag.Error (loc, msg) ->
      `Error (false, Format.asprintf "%a: %s" F90d_base.Loc.pp loc msg)
  | F90d_serve.Service.Timed_out s ->
      `Error (false, Printf.sprintf "run exceeded its %gs wall-clock limit" s)
  | Failure msg | Invalid_argument msg -> `Error (false, msg)
  | Unix.Unix_error (e, fn, arg) ->
      `Error (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

let source =
  let doc = "Fortran 90D/HPF source file ('-' for stdin)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let demo =
  let doc =
    "Compile a built-in demo program: gauss, gauss-cyclic, jacobi, jacobi2d, irregular, \
     fft.  The F90D_DEMO_N environment variable overrides the problem size (default 64)."
  in
  Arg.(value & opt (some string) None & info [ "demo" ] ~docv:"NAME" ~doc)

let nprocs =
  let doc = "Number of simulated processors." in
  Arg.(value & opt int 4 & info [ "p"; "nprocs" ] ~docv:"P" ~doc)

let jobs =
  let doc =
    "Worker domains for the host-parallel engine (results are bit-identical to the \
     sequential engine).  Defaults to the F90D_JOBS environment variable, else 1."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let machine =
  let doc = "Machine model: ipsc860, ncube2 or ideal." in
  Arg.(value & opt string "ipsc860" & info [ "machine" ] ~docv:"MODEL" ~doc)

let emit =
  let doc = "Emit the generated Fortran 77+MP node program instead of running." in
  Arg.(value & flag & info [ "emit-f77" ] ~doc)

let explain =
  let doc =
    "Print the compilation report instead of running: per comm-bearing statement, the \
     detected subscript patterns, the Table 1/2 classification with its reason, the \
     distribution facts and the communication primitives emitted."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let explain_json =
  let doc = "Like --explain, but emit the report as a JSON document on stdout." in
  Arg.(value & flag & info [ "explain-json" ] ~doc)

let profile_json =
  let doc =
    "Run with tracing and write the per-statement profile (messages, bytes, send-busy, \
     recv-wait, critical-path share, joined with the compile-time decision) to $(docv) as \
     JSON."
  in
  Arg.(value & opt (some string) None & info [ "profile-json" ] ~docv:"FILE" ~doc)

let no_opt =
  let doc = "Disable the communication optimizations of the paper's section 7." in
  Arg.(value & flag & info [ "no-opt" ] ~doc)

(* Per-pass disables in the familiar -fno-<pass> spelling.  Cmdliner has
   no single-dash long options, so each is declared as its own flag and
   folded into a list of pass names to turn off. *)
let no_passes =
  let pass name doc =
    Arg.(
      value & flag
      & info [ "fno-" ^ name ] ~doc:(Printf.sprintf "Disable the %s optimization pass." doc))
  in
  let combine su fm sr hc co sp la bk =
    List.concat
      [
        (if su then [ "shift-union" ] else []);
        (if fm then [ "fuse-mshift" ] else []);
        (if sr then [ "schedule-reuse" ] else []);
        (if hc then [ "hoist-comm" ] else []);
        (if co then [ "coalesce" ] else []);
        (if sp then [ "split-comm" ] else []);
        (if la then [ "lookahead" ] else []);
        (if bk then [ "blocked-kernels" ] else []);
      ]
  in
  Term.(
    const combine
    $ pass "shift-union" "shift-union (merge opposite-direction overlap shifts)"
    $ pass "fuse-mshift" "multicast-shift fusion"
    $ pass "schedule-reuse" "inspector schedule reuse"
    $ pass "hoist-comm" "loop-invariant communication hoisting"
    $ pass "coalesce" "cross-statement message coalescing (and its replica cache)"
    $ pass "split-comm" "split-phase communication (issue/wait overlap)"
    $ pass "lookahead" "loop-carried multicast lookahead pipelining"
    $ pass "blocked-kernels" "blocked node-kernel execution layer (plan cache, fused updates)")

let show_finals =
  let doc = "Print the final contents of every array of the main program." in
  Arg.(value & flag & info [ "show-arrays" ] ~doc)

let trace =
  let doc =
    "Record every send, receive, collective and compute span and write the run's trace to \
     $(docv) in Chrome trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile =
  let doc =
    "Print a communication profile (per-primitive/per-tag time and bytes, critical path) \
     after the run."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let log_comm =
  let doc = "Log every communication primitive to stderr as the node programs execute." in
  Arg.(value & flag & info [ "log-comm" ] ~doc)

let serve =
  let doc =
    "Run as a compile-and-simulate daemon on the Unix-domain socket $(docv): accepts \
     length-prefixed JSON requests (ops: compile, run, trace, explain, profile, stats, \
     shutdown), dispatches them to a pool of worker domains, and answers through a \
     three-level content-addressed cache (front IR, optimized IR, persisted PARTI \
     schedules)."
  in
  Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"SOCK" ~doc)

let client =
  let doc =
    "Connect to a daemon at $(docv), forward one JSON request per stdin line, and print \
     one JSON response per line."
  in
  Arg.(value & opt (some string) None & info [ "client" ] ~docv:"SOCK" ~doc)

let cache_dir =
  let doc =
    "Directory of the persistent schedule store.  With --serve this overrides the default \
     (\\$XDG_CACHE_HOME/f90d or ~/.cache/f90d); in one-shot mode it $(i,enables) the \
     store, so a rerun of the same program preloads its PARTI schedules and reports \
     sched_builds = 0."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache =
  let doc = "Disable the persistent schedule store (serve mode caches nothing on disk)." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let request_timeout =
  let doc =
    "Wall-clock limit in seconds for a run; in serve mode the per-request default \
     (requests may override it with \"timeout_s\").  A timed-out request is cancelled \
     cooperatively and answered with an error; the daemon keeps serving."
  in
  Arg.(value & opt (some float) None & info [ "request-timeout" ] ~docv:"SECS" ~doc)

let serve_workers =
  let doc = "Size of the daemon's worker-domain pool." in
  Arg.(value & opt (some int) None & info [ "serve-workers" ] ~docv:"N" ~doc)

let metrics_sock =
  let doc =
    "Scrape a running daemon at $(docv): print its metrics (request counters and latency \
     histograms per op, cache hits/misses per level, store size, worker-pool gauges, \
     engine totals) in the Prometheus text exposition format."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"SOCK" ~doc)

let metrics_out =
  let doc =
    "After a one-shot compile or run, write the same metric families the daemon's metrics \
     op exposes to $(docv) (Prometheus text exposition)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let log_file =
  let doc =
    "Append structured JSON-lines log records to $(docv) instead of stderr (one object \
     per line: ts, level, event, fields)."
  in
  Arg.(value & opt (some string) None & info [ "log-file" ] ~docv:"FILE" ~doc)

let log_level =
  let doc = "Minimum log level: debug, info, warn or error (default warn)." in
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_slow =
  let doc =
    "In serve mode, log a warn-level slow_request record for any request taking longer \
     than $(docv) seconds (default 10; 0 disables)."
  in
  Arg.(value & opt (some float) None & info [ "log-slow" ] ~docv:"SECS" ~doc)

let cmd =
  let doc = "Fortran 90D/HPF compiler for (simulated) distributed-memory MIMD computers" in
  let version =
    Printf.sprintf "%s (f90d_cache_version %d)" F90d_base.Util.package_version
      F90d_base.Util.cache_version
  in
  let info = Cmd.info "f90dc" ~version ~doc in
  Cmd.v info
    Term.(
      ret
        (const run_cmd $ source $ demo $ nprocs $ jobs $ machine $ emit $ explain
       $ explain_json $ profile_json $ no_opt $ no_passes $ show_finals $ trace $ profile
       $ log_comm $ serve $ client $ cache_dir $ no_cache $ request_timeout $ serve_workers
       $ metrics_sock $ metrics_out $ log_file $ log_level $ log_slow))

let () = exit (Cmd.eval cmd)
