(* Differential fuzzing driver.

   Generates seeded random programs, runs each through the full compiler
   at every (nprocs, jobs, passes) configuration, and diffs final array
   and scalar state bit-for-bit against the sequential reference
   evaluator.  On divergence the failing program is (optionally) shrunk
   and written out as a standalone .f90d repro. *)

open F90d_fuzz

let seeds = ref 100
let start = ref 0
let one_seed = ref (-1)
let do_shrink = ref false
let out_dir = ref "fuzz-repros"
let emit = ref (-1)
let ranks = ref Diff.default_ranks
let jobs = ref Diff.default_jobs
let flag_sets = ref Diff.default_flag_sets
let quiet = ref false
let replay = ref ""
let daemon_seeds = ref 0

let parse_csv s = List.map int_of_string (String.split_on_char ',' s)

let parse_flag_sets s =
  List.map
    (fun name ->
      let name = String.trim name in
      match Diff.flag_set name with
      | Some fs -> fs
      | None ->
          raise
            (Arg.Bad
               (Printf.sprintf "unknown flag set '%s' (known: %s)" name
                  (String.concat ", " (List.map fst Diff.named_flag_sets)))))
    (String.split_on_char ',' s)

let spec =
  [
    ("--seeds", Arg.Set_int seeds, "N  number of seeds to fuzz (default 100)");
    ("--start", Arg.Set_int start, "S  first seed (default 0)");
    ("--seed", Arg.Set_int one_seed, "K  fuzz exactly one seed");
    ("--shrink", Arg.Set do_shrink, "   shrink failing programs before emitting repros");
    ("--out", Arg.Set_string out_dir, "DIR  directory for shrunk repros (default fuzz-repros)");
    ("--emit", Arg.Set_int emit, "K  print the program for seed K and exit");
    ("--ranks", Arg.String (fun s -> ranks := parse_csv s), "CSV  rank axis (default 1,2,4)");
    ("--jobs", Arg.String (fun s -> jobs := parse_csv s), "CSV  jobs axis (default 1,4)");
    ( "--flags",
      Arg.String (fun s -> flag_sets := parse_flag_sets s),
      "CSV  pass-flag axis: on, off, hoist, coalesce, split, lookahead, no-hoist, \
       no-coalesce, no-split, no-lookahead (default on,off)" );
    ("--quiet", Arg.Set quiet, "   only report failures");
    ("--replay", Arg.Set_string replay, "FILE  differentially check one .f90d source file");
    ( "--daemon",
      Arg.Set_int daemon_seeds,
      "N  replay N seeds through a --serve daemon (cold + warm) and diff each response \
       bit-for-bit against the in-process service" );
  ]

let usage = "fuzz/main.exe [--seeds N] [--start S] [--shrink] ..."

let check p = Diff.check_prog ~ranks:!ranks ~jobs:!jobs ~flag_sets:!flag_sets p

let report_failure seed (p : Gen.prog) (failures : Diff.failure list) =
  Printf.printf "seed %d: FAILED\n" seed;
  List.iter (fun f -> Printf.printf "  %s\n" (Diff.pp_failure f)) failures;
  let p =
    if !do_shrink then begin
      (* a variant that breaks the reference evaluator (e.g. out-of-bounds
         after an extent shrink) is invalid, not still-failing *)
      let still_fails c =
        List.exists
          (function Diff.Ref_error _ -> false | Diff.Config_error _ | Diff.Mismatch _ -> true)
          (check c)
      in
      let shrunk = Shrink.shrink ~still_fails p in
      Printf.printf "  shrunk: %d -> %d statements\n" (List.length p.Gen.body)
        (List.length shrunk.Gen.body);
      shrunk
    end
    else p
  in
  let failures = match check p with [] -> failures | fs -> fs in
  let failing_nprocs =
    List.fold_left
      (fun acc f ->
        match f with
        | Diff.Config_error (c, _) | Diff.Mismatch (c, _) -> max acc c.Diff.nprocs
        | Diff.Ref_error _ -> acc)
      1 failures
  in
  (try Sys.mkdir !out_dir 0o755 with _ -> ());
  let path = Filename.concat !out_dir (Printf.sprintf "seed_%d.f90d" seed) in
  let oc = open_out path in
  Printf.fprintf oc "* fuzz repro: seed %d\n" seed;
  List.iter (fun f -> Printf.fprintf oc "* %s\n" (Diff.pp_failure f)) failures;
  output_string oc (Gen.print ~nprocs:failing_nprocs p);
  close_out oc;
  Printf.printf "  repro written to %s\n%!" path

(* Daemon axis: the same generated programs, but routed through a real
   [--serve] daemon over its Unix socket.  Each seed is requested twice
   (cold, then warm — the second hits every cache level) and every
   response must be byte-identical to an in-process service following
   the identical request sequence against its own store, which pins the
   whole transport + worker-pool + persistence path to the reference. *)
let run_daemon_axis n =
  let module S = F90d_serve in
  let dir = Filename.temp_dir "f90d-fuzz-daemon" "" in
  let sock = Filename.concat dir "fuzz.sock" in
  let service =
    S.Service.create ~store:(S.Store.create ~dir:(Filename.concat dir "store-daemon")) ()
  in
  let srv = S.Server.start ~workers:2 ~service ~sock_path:sock () in
  let solo =
    S.Service.create ~store:(S.Store.create ~dir:(Filename.concat dir "store-solo")) ()
  in
  let nprocs = List.fold_left max 1 !ranks in
  let strip r = S.Json.to_string (S.Service.strip_volatile r) in
  let diverged = ref 0 in
  let done_ = ref 0 in
  S.Client.with_conn sock (fun c ->
      for seed = !start to !start + n - 1 do
        let source = Gen.print ~nprocs (Gen.generate ~seed) in
        let req =
          S.Json.Obj
            [
              ("op", S.Json.Str "run");
              ("source", S.Json.Str source);
              ("nprocs", S.Json.Int nprocs);
              ("finals", S.Json.Bool true);
            ]
        in
        List.iter
          (fun phase ->
            let via_daemon = S.Client.request c req in
            let in_process = S.Service.handle solo req in
            if strip via_daemon <> strip in_process then begin
              incr diverged;
              Printf.printf "seed %d (%s): daemon response DIVERGED from in-process\n%!" seed
                phase
            end)
          [ "cold"; "warm" ];
        incr done_;
        if (not !quiet) && !done_ mod 25 = 0 then
          Printf.printf "... %d/%d daemon seeds, %d divergence(s)\n%!" !done_ n !diverged
      done);
  S.Client.with_conn sock (fun c ->
      ignore (S.Client.request c (S.Json.Obj [ ("op", S.Json.Str "shutdown") ])));
  S.Server.wait srv;
  if !diverged = 0 then begin
    if not !quiet then
      Printf.printf "OK: %d seeds bit-identical through the daemon (cold and warm)\n" n;
    exit 0
  end
  else begin
    Printf.printf "FAILED: %d divergence(s) across %d seeds through the daemon\n" !diverged n;
    exit 1
  end

let () =
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) usage;
  if !daemon_seeds > 0 then run_daemon_axis !daemon_seeds;
  if !replay <> "" then begin
    let ic = open_in !replay in
    let n = in_channel_length ic in
    let source = really_input_string ic n in
    close_in ic;
    (match Refeval.run ~file:!replay source with
    | r ->
        Printf.printf "reference output:\n%s" r.Refeval.r_output;
        List.iter
          (fun (name, nd) ->
            Format.printf "  %s = %a@." name F90d_base.Ndarray.pp nd)
          r.Refeval.r_finals
    | exception e -> Printf.printf "reference evaluator failed: %s\n" (Printexc.to_string e));
    match Diff.check_source ~ranks:!ranks ~jobs:!jobs ~flag_sets:!flag_sets source with
    | [] ->
        Printf.printf "OK: no divergence\n";
        exit 0
    | failures ->
        List.iter (fun f -> Printf.printf "%s\n" (Diff.pp_failure f)) failures;
        exit 1
  end;
  if !emit >= 0 then begin
    let p = Gen.generate ~seed:!emit in
    print_string (Gen.print ~nprocs:(List.fold_left max 1 !ranks) p);
    exit 0
  end;
  let todo = if !one_seed >= 0 then [ !one_seed ] else List.init !seeds (fun i -> !start + i) in
  let failed = ref 0 in
  let done_ = ref 0 in
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed in
      (match check p with
      | [] -> ()
      | failures ->
          incr failed;
          report_failure seed p failures);
      incr done_;
      if (not !quiet) && !done_ mod 50 = 0 then
        Printf.printf "... %d/%d seeds, %d failure(s)\n%!" !done_ (List.length todo) !failed)
    todo;
  if !failed = 0 then begin
    if not !quiet then
      Printf.printf "OK: %d seeds, zero divergences across %d configurations each\n"
        (List.length todo)
        (List.length (Diff.matrix ~ranks:!ranks ~jobs:!jobs ~flag_sets:!flag_sets ()));
    exit 0
  end
  else begin
    Printf.printf "FAILED: %d of %d seeds diverged\n" !failed (List.length todo);
    exit 1
  end
