type data = Reals of float array | Ints of int array | Logs of bool array
type t = { lb : int array; extents : int array; data : data }

let kind t =
  match t.data with Reals _ -> Scalar.Kreal | Ints _ -> Scalar.Kint | Logs _ -> Scalar.Klog

let rank t = Array.length t.extents
let size t = Array.fold_left ( * ) 1 t.extents

let elem_bytes t = match t.data with Reals _ -> 8 | Ints _ -> 4 | Logs _ -> 4
let bytes t = size t * elem_bytes t

let check_shape lb extents =
  if Array.length lb <> Array.length extents then
    Diag.bug "ndarray: lb/extents rank mismatch";
  Array.iter (fun e -> if e < 0 then Diag.bug "ndarray: negative extent") extents

let default_lb extents = Array.make (Array.length extents) 1

let create k ?lb extents =
  let lb = match lb with Some l -> l | None -> default_lb extents in
  check_shape lb extents;
  let n = Array.fold_left ( * ) 1 extents in
  let data =
    match k with
    | Scalar.Kreal -> Reals (Array.make n 0.)
    | Scalar.Kint -> Ints (Array.make n 0)
    | Scalar.Klog -> Logs (Array.make n false)
    | Scalar.Kstr -> Diag.bug "ndarray: string arrays are not supported"
  in
  { lb; extents; data }

let of_reals ?lb extents a =
  let lb = match lb with Some l -> l | None -> default_lb extents in
  check_shape lb extents;
  if Array.length a <> Array.fold_left ( * ) 1 extents then
    Diag.bug "ndarray: payload size mismatch";
  { lb; extents; data = Reals a }

let of_ints ?lb extents a =
  let lb = match lb with Some l -> l | None -> default_lb extents in
  check_shape lb extents;
  if Array.length a <> Array.fold_left ( * ) 1 extents then
    Diag.bug "ndarray: payload size mismatch";
  { lb; extents; data = Ints a }

let strides t =
  let r = rank t in
  let s = Array.make r 1 in
  for d = 1 to r - 1 do
    s.(d) <- s.(d - 1) * t.extents.(d - 1)
  done;
  s

let offset t idx =
  if Array.length idx <> rank t then Diag.bug "ndarray: index rank mismatch";
  let off = ref 0 and stride = ref 1 in
  for d = 0 to rank t - 1 do
    let i = idx.(d) - t.lb.(d) in
    if i < 0 || i >= t.extents.(d) then
      Diag.bug "ndarray: index %d out of bounds [%d,%d] in dim %d" idx.(d) t.lb.(d)
        (t.lb.(d) + t.extents.(d) - 1)
        (d + 1);
    off := !off + (i * !stride);
    stride := !stride * t.extents.(d)
  done;
  !off

let get_flat t i =
  match t.data with
  | Reals a -> Scalar.Real a.(i)
  | Ints a -> Scalar.Int a.(i)
  | Logs a -> Scalar.Log a.(i)

let set_flat t i v =
  match t.data with
  | Reals a -> a.(i) <- Scalar.to_real v
  | Ints a -> a.(i) <- Scalar.to_int v
  | Logs a -> a.(i) <- Scalar.to_bool v

let get t idx = get_flat t (offset t idx)
let set t idx v = set_flat t (offset t idx) v

let reals t = match t.data with Reals a -> a | _ -> Diag.bug "ndarray: expected REAL payload"
let ints t = match t.data with Ints a -> a | _ -> Diag.bug "ndarray: expected INTEGER payload"
let logs t = match t.data with Logs a -> a | _ -> Diag.bug "ndarray: expected LOGICAL payload"

let fill t v =
  match t.data with
  | Reals a -> Array.fill a 0 (Array.length a) (Scalar.to_real v)
  | Ints a -> Array.fill a 0 (Array.length a) (Scalar.to_int v)
  | Logs a -> Array.fill a 0 (Array.length a) (Scalar.to_bool v)

let copy t =
  let data =
    match t.data with
    | Reals a -> Reals (Array.copy a)
    | Ints a -> Ints (Array.copy a)
    | Logs a -> Logs (Array.copy a)
  in
  { t with data }

let map_into src f dst =
  if size src <> size dst then Diag.bug "ndarray: map_into size mismatch";
  for i = 0 to size src - 1 do
    set_flat dst i (f (get_flat src i))
  done

let iteri t f =
  let r = rank t in
  if size t = 0 then ()
  else begin
    let idx = Array.copy t.lb in
    let n = size t in
    for flat = 0 to n - 1 do
      f idx (get_flat t flat);
      (* advance the column-major odometer *)
      let rec bump d =
        if d < r then
          if idx.(d) < t.lb.(d) + t.extents.(d) - 1 then idx.(d) <- idx.(d) + 1
          else begin
            idx.(d) <- t.lb.(d);
            bump (d + 1)
          end
      in
      bump 0
    done
  end

let init k ?lb extents f =
  let t = create k ?lb extents in
  iteri t (fun idx _ -> set t (Array.copy idx) (f idx));
  t

let equal a b =
  a.lb = b.lb && a.extents = b.extents
  &&
  match (a.data, b.data) with
  | Reals x, Reals y -> x = y
  | Ints x, Ints y -> x = y
  | Logs x, Logs y -> x = y
  | _ -> false

let approx_equal ?(eps = 1e-9) a b =
  a.extents = b.extents
  &&
  match (a.data, b.data) with
  | Reals x, Reals y ->
      let ok = ref true in
      Array.iteri (fun i v -> if Float.abs (v -. y.(i)) > eps then ok := false) x;
      !ok
  | Ints x, Ints y -> x = y
  | Logs x, Logs y -> x = y
  | _ -> false

let pp ppf t =
  let pp_dims ppf () =
    Array.iteri
      (fun d e ->
        if d > 0 then Format.pp_print_string ppf ",";
        Format.fprintf ppf "%d:%d" t.lb.(d) (t.lb.(d) + e - 1))
      t.extents
  in
  Format.fprintf ppf "@[<hov 2>%a(%a)[" Scalar.pp_kind (kind t) pp_dims ();
  let n = min (size t) 16 in
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf ppf ";@ ";
    Scalar.pp ppf (get_flat t i)
  done;
  if size t > n then Format.fprintf ppf ";@ ...";
  Format.fprintf ppf "]@]"

let iter_box extents f =
  let nd = Array.length extents in
  let total = Array.fold_left ( * ) 1 extents in
  if total > 0 then begin
    let idx = Array.make nd 0 in
    for _ = 1 to total do
      f idx;
      let rec bump d =
        if d < nd then
          if idx.(d) < extents.(d) - 1 then idx.(d) <- idx.(d) + 1
          else begin
            idx.(d) <- 0;
            bump (d + 1)
          end
      in
      bump 0
    done
  end

let get_box t ~lo ~extents =
  let out = create (kind t) extents in
  let src_idx = Array.make (rank t) 0 in
  iter_box extents (fun idx ->
      Array.iteri (fun d i -> src_idx.(d) <- lo.(d) + i) idx;
      let dst_idx = Array.map (( + ) 1) idx in
      set out dst_idx (get t src_idx));
  out

let set_box t ~lo box =
  let dst_idx = Array.make (rank t) 0 in
  iter_box box.extents (fun idx ->
      Array.iteri (fun d i -> dst_idx.(d) <- lo.(d) + i) idx;
      let src_idx = Array.map (( + ) 1) idx in
      set t dst_idx (get box src_idx))

let slice_flat t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > size t then Diag.bug "ndarray: slice out of range";
  let data =
    match t.data with
    | Reals a -> Reals (Array.sub a pos len)
    | Ints a -> Ints (Array.sub a pos len)
    | Logs a -> Logs (Array.sub a pos len)
  in
  { lb = [| 1 |]; extents = [| len |]; data }

(* Kind-matched unboxed index-list copies: the executor's pack/unpack and
   the kernel layer move whole segments through these, so no Scalar boxes
   are allocated per element. *)
let gather_flat src positions =
  let n = Array.length positions in
  let data =
    match src.data with
    | Reals a -> Reals (Array.init n (fun i -> a.(positions.(i))))
    | Ints a -> Ints (Array.init n (fun i -> a.(positions.(i))))
    | Logs a -> Logs (Array.init n (fun i -> a.(positions.(i))))
  in
  { lb = [| 1 |]; extents = [| n |]; data }

let scatter_flat dst positions values =
  match (dst.data, values.data) with
  | Reals d, Reals v -> Array.iteri (fun i p -> d.(p) <- v.(i)) positions
  | Ints d, Ints v -> Array.iteri (fun i p -> d.(p) <- v.(i)) positions
  | Logs d, Logs v -> Array.iteri (fun i p -> d.(p) <- v.(i)) positions
  | _ -> Diag.bug "ndarray: scatter between different kinds"

let copy_flat ~src ~src_positions ~dst ~dst_positions =
  if Array.length src_positions <> Array.length dst_positions then
    Diag.bug "ndarray: copy_flat length mismatch";
  match (src.data, dst.data) with
  | Reals s, Reals d ->
      Array.iteri (fun i p -> d.(dst_positions.(i)) <- s.(p)) src_positions
  | Ints s, Ints d ->
      Array.iteri (fun i p -> d.(dst_positions.(i)) <- s.(p)) src_positions
  | Logs s, Logs d ->
      Array.iteri (fun i p -> d.(dst_positions.(i)) <- s.(p)) src_positions
  | _ -> Diag.bug "ndarray: copy_flat between different kinds"

let blit_flat ~src ~src_pos ~dst ~dst_pos ~len =
  match (src.data, dst.data) with
  | Reals a, Reals b -> Array.blit a src_pos b dst_pos len
  | Ints a, Ints b -> Array.blit a src_pos b dst_pos len
  | Logs a, Logs b -> Array.blit a src_pos b dst_pos len
  | _ -> Diag.bug "ndarray: blit between different kinds"
