let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let ceil_div a b = -floor_div (-a) b

let modulo a b =
  let r = a mod b in
  if r < 0 then r + abs b else r

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b) * y)

(* Solve x = r1 (mod m1), x = r2 (mod m2); smallest solution >= lo. *)
let crt_first_ge ~lo ~r1 ~m1 ~r2 ~m2 =
  let g, p, _ = egcd m1 m2 in
  if modulo (r2 - r1) g <> 0 then None
  else
    let lcm = m1 / g * m2 in
    let diff = (r2 - r1) / g in
    (* x = r1 + m1 * p * diff  (mod lcm) *)
    let x0 = modulo (r1 + (m1 * modulo (p * diff) (m2 / g))) lcm in
    let k = ceil_div (lo - x0) lcm in
    Some (x0 + (k * lcm))

let is_pow2 n = n > 0 && n land (n - 1) = 0

let ilog2 n =
  assert (n >= 1);
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  assert (n >= 1);
  let l = ilog2 n in
  if 1 lsl l = n then l else l + 1

let gray n = n lxor (n lsr 1)

let gray_inverse g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

let range a b = List.init (max 0 (b - a + 1)) (fun i -> a + i)
let sum_floats = List.fold_left ( +. ) 0.
let mean = function [] -> 0. | l -> sum_floats l /. float_of_int (List.length l)

(* Version identity, stamped into persisted cache artifacts and bench
   JSON so stale files and old baselines are self-identifying.  Keep
   [package_version] in sync with dune-project; bump [cache_version]
   whenever an on-disk serve-cache layout changes. *)
let package_version = "f90d 1.0.0"
let cache_version = 1
