(** Small arithmetic and combinatorial helpers shared across the compiler
    and the machine simulator. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a/b] rounded towards positive infinity; [b > 0]. *)

val floor_div : int -> int -> int
(** Floor division, correct for negative numerators. *)

val modulo : int -> int -> int
(** Mathematical modulo: result in [0, b); [b > 0]. *)

val gcd : int -> int -> int

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, x, y)] with [a*x + b*y = g = gcd a b]. *)

val crt_first_ge :
  lo:int -> r1:int -> m1:int -> r2:int -> m2:int -> int option
(** Smallest [x >= lo] with [x = r1 (mod m1)] and [x = r2 (mod m2)], or
    [None] if the congruences are incompatible.  Used by the cyclic
    [set_BOUND] algorithm (§4 of the paper). *)

val is_pow2 : int -> bool
val ilog2 : int -> int
(** [ilog2 n] for [n >= 1] is the floor of log2 n. *)

val ceil_log2 : int -> int
(** Smallest [k] with [2^k >= n]; [n >= 1]. *)

val gray : int -> int
(** Binary-reflected Gray code, used for ring/grid embedding in hypercubes. *)

val gray_inverse : int -> int

val popcount : int -> int

val range : int -> int -> int list
(** [range a b] is [[a; a+1; ...; b]] (empty if [a > b]). *)

val sum_floats : float list -> float
val mean : float list -> float

val package_version : string
(** The dune package name and version ("f90d 1.0.0"), recorded in every
    bench JSON document and persisted cache artifact. *)

val cache_version : int
(** Layout version of on-disk cache artifacts ([f90d_cache_version] in
    their headers); readers reject artifacts from other versions. *)
