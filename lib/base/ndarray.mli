(** Column-major (Fortran order) multi-dimensional arrays.

    The element payload is monomorphic per array — real, integer or
    logical — so inner loops over reals run on flat [float array]s.
    Indices are expressed in each dimension's declared bounds
    ([lb.(d) .. lb.(d) + extent.(d) - 1]), as in Fortran. *)

type data =
  | Reals of float array
  | Ints of int array
  | Logs of bool array

type t = { lb : int array; extents : int array; data : data }

val kind : t -> Scalar.kind
val rank : t -> int
val size : t -> int
(** Total number of elements. *)

val elem_bytes : t -> int
(** Bytes per element under the machine model (real: 8, integer: 4,
    logical: 4), used for communication costing. *)

val bytes : t -> int

val create : Scalar.kind -> ?lb:int array -> int array -> t
(** [create kind ~lb extents]; [lb] defaults to all-ones.  Elements are
    zero-initialised. *)

val of_reals : ?lb:int array -> int array -> float array -> t
val of_ints : ?lb:int array -> int array -> int array -> t

val strides : t -> int array
(** Column-major strides (first dimension contiguous). *)

val offset : t -> int array -> int
(** Flat offset of a multi-index (checked against bounds). *)

val get : t -> int array -> Scalar.t
val set : t -> int array -> Scalar.t -> unit

val get_flat : t -> int -> Scalar.t
val set_flat : t -> int -> Scalar.t -> unit

val reals : t -> float array
(** Underlying payload; errors if the array is not real (resp. below). *)

val ints : t -> int array
val logs : t -> bool array

val fill : t -> Scalar.t -> unit
val copy : t -> t
val map_into : t -> (Scalar.t -> Scalar.t) -> t -> unit
(** [map_into src f dst] writes [f src.(i)] to [dst.(i)] flat-wise. *)

val iteri : t -> (int array -> Scalar.t -> unit) -> unit
(** Iterates in column-major order with full multi-indices. *)

val init : Scalar.kind -> ?lb:int array -> int array -> (int array -> Scalar.t) -> t

val equal : t -> t -> bool
val approx_equal : ?eps:float -> t -> t -> bool
(** Same shape and elementwise within [eps] for reals ([1e-9] default). *)

val pp : Format.formatter -> t -> unit
(** Compact rendering for diagnostics and tests. *)

val get_box : t -> lo:int array -> extents:int array -> t
(** Copy of the rectangular sub-box starting at index [lo] (in the array's
    own index space) with the given extents; the result has lower bounds
    all 1. *)

val set_box : t -> lo:int array -> t -> unit
(** Write a box (shaped like a {!get_box} result) back at [lo]. *)

val slice_flat : t -> pos:int -> len:int -> t
(** One-dimensional window over the flat payload (copies). *)

val blit_flat : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Flat blit between arrays of the same kind. *)

val gather_flat : t -> int array -> t
(** [gather_flat src positions] is the rank-1 array whose element [i] is
    [src]'s flat element [positions.(i)] — the executor's message-pack
    primitive, copying without per-element {!Scalar} boxing. *)

val scatter_flat : t -> int array -> t -> unit
(** [scatter_flat dst positions values] writes rank-1 [values] element
    [i] to [dst]'s flat position [positions.(i)] (kinds must match). *)

val copy_flat : src:t -> src_positions:int array -> dst:t -> dst_positions:int array -> unit
(** Pairwise flat copy [dst.(dst_positions.(i)) <- src.(src_positions.(i))]
    between same-kind arrays — the self-segment of an exchange. *)
