(** Source locations for diagnostics.

    A location identifies a point (or the start of a construct) in a
    Fortran 90D/HPF source file: file name, 1-based line, 1-based column. *)

type t = { file : string; line : int; col : int }

val none : t
(** Placeholder for synthesized constructs with no source position. *)

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit
(** Prints ["file:line:col"], or ["<no-loc>"] for {!none}. *)

val to_string : t -> string

val file_line : t -> string
(** ["file:line"] without the column (provenance reports key statements by
    source line), or ["<no-loc>"] for {!none}. *)
