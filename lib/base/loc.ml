type t = { file : string; line : int; col : int }

let none = { file = ""; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }

let pp ppf t =
  if t.line = 0 then Format.pp_print_string ppf "<no-loc>"
  else Format.fprintf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Format.asprintf "%a" pp t

let file_line t =
  if t.line = 0 then "<no-loc>" else Printf.sprintf "%s:%d" t.file t.line
