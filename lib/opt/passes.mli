(** The communication optimizations of §7, as IR-to-IR passes.  Each can
    be toggled independently so the ablation benchmarks can measure its
    contribution (message vectorization, the fourth §7 item, is inherent
    in the runtime primitives and has its own ablation knob there).

    - {e shift union}: several overlap shifts of the same array dimension
      in one statement collapse into the widest one (the paper's
      [B(I+2)+B(I+3)] example);
    - {e multicast_shift fusion}: a multicast and a shift on different
      dimensions of one reference combine into the fused primitive
      (§5.3.1 example 3); disabling lowers to the two-step sequence;
    - {e schedule reuse}: inspector-built schedules whose index sets are
      provably loop-invariant (all inputs are named constants) get stable
      cache keys, so re-executions skip preprocessing entirely;
    - {e communication hoisting}: comms over arrays a DO/WHILE body never
      writes, with loop-invariant subscripts, move to a guarded
      {!F90d_ir.Ir.Comm_block} pre-header and run once instead of every
      iteration;
    - {e message coalescing}: within a straight-line FORALL run,
      same-direction overlap shifts and same-endpoint transfers on
      different arrays batch into one {!F90d_ir.Ir.Comm_batch} — one
      packed message (one latency charge) per communicating rank pair.
      The flag also enables the runtime's multicast replica cache, which
      serves later reads of an unmodified broadcast slice locally;
    - {e split-phase communication}: each FORALL's plain multicasts split
      into a {!F90d_ir.Ir.Comm_issue} that moves up across provably
      independent statements and a {!F90d_ir.Ir.Comm_wait} immediately
      before the reading statement, so the message travels while the
      processor computes;
    - {e lookahead pipelining}: a loop-carried split multicast whose
      slice moves with the DO variable (gauss's pivot column) is issued
      one step ahead — the in-body issue for step k+1 slots after the
      last statement writing that slice (fissioned out of the bulk
      update when possible), the first step's issue moves in front of
      the loop, and the wait stays at the top of the body.  Implies
      nothing unless split-phase is also on. *)

type flags = {
  shift_union : bool;
  fuse_mshift : bool;
  schedule_reuse : bool;
  hoist_comm : bool;
  coalesce : bool;
  split_comm : bool;
  lookahead : bool;
  blocked_kernels : bool;
      (** enable the blocked node-kernel execution layer
          ({!F90d_exec.Kernel}); not an IR transformation — [apply]
          ignores it, the interpreter and intrinsics read it.  On in
          both [all_on] and [all_off] (which toggle only the
          communication passes); disable with [--fno-blocked-kernels]. *)
}

val all_on : flags
val all_off : flags

val union_shifts : F90d_ir.Ir.comm list -> F90d_ir.Ir.comm list
(** Keep only the widest overlap shift per (array, dim, direction);
    zero-amount shifts are no-ops and are dropped.  Exposed for unit
    testing. *)

val apply : flags -> F90d_ir.Ir.program_ir -> F90d_ir.Ir.program_ir
