open F90d_frontend
open F90d_ir

type flags = {
  shift_union : bool;
  fuse_mshift : bool;
  schedule_reuse : bool;
  hoist_comm : bool;
  coalesce : bool;
}

let all_on =
  {
    shift_union = true;
    fuse_mshift = true;
    schedule_reuse = true;
    hoist_comm = true;
    coalesce = true;
  }

let all_off =
  {
    shift_union = false;
    fuse_mshift = false;
    schedule_reuse = false;
    hoist_comm = false;
    coalesce = false;
  }

module S = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Shift union                                                         *)
(* ------------------------------------------------------------------ *)

(* Keep only the widest overlap shift per (array, dim, direction); the
   wider ghost transfer carries the narrower one's data.  A zero-amount
   shift moves nothing — it is dropped outright (it would otherwise never
   receive a [widest] binding and crash the filter below). *)
let union_shifts pre =
  let widest = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match c with
      | Ir.Overlap_shift { amount = 0; _ } -> ()
      | Ir.Overlap_shift { arr; dim; amount } ->
          let key = (arr, dim, amount > 0) in
          let cur = Option.value (Hashtbl.find_opt widest key) ~default:0 in
          if abs amount > abs cur then Hashtbl.replace widest key amount
      | _ -> ())
    pre;
  let emitted = Hashtbl.create 8 in
  List.filter
    (fun c ->
      match c with
      | Ir.Overlap_shift { amount = 0; _ } -> false
      | Ir.Overlap_shift { arr; dim; amount } ->
          let key = (arr, dim, amount > 0) in
          if Hashtbl.find widest key = amount && not (Hashtbl.mem emitted key) then begin
            Hashtbl.replace emitted key ();
            true
          end
          else false
      | _ -> true)
    pre

(* ------------------------------------------------------------------ *)
(* Multicast/shift fusion control                                      *)
(* ------------------------------------------------------------------ *)

let set_fusion fused pre =
  List.map
    (function
      | Ir.Multicast_shift m -> Ir.Multicast_shift { m with Ir.fused }
      | c -> c)
    pre

(* ------------------------------------------------------------------ *)
(* Schedule reuse                                                      *)
(* ------------------------------------------------------------------ *)

(* A schedule's index sets are invariant when every input is a named
   constant: range bounds and reference subscripts may mention only
   parameters and the FORALL variables themselves. *)
let invariant_forall env (f : Ir.forall) (r : Ast.ref_) =
  let params = List.map fst env.Sema.uparams in
  let forall_vars = List.map fst f.Ir.f_vars in
  let ok_expr e =
    List.for_all (fun v -> List.mem v params || List.mem v forall_vars) (Ast.vars_of e)
  in
  let ok_range (rg : Ast.range) =
    ok_expr rg.Ast.lo && ok_expr rg.Ast.hi
    && (match rg.Ast.st with Some e -> ok_expr e | None -> true)
  in
  List.for_all (fun (_, rg) -> ok_range rg) f.Ir.f_vars
  && List.for_all
       (function Ast.Elem e -> ok_expr e | Ast.Range _ -> false)
       r.Ast.args

let key_schedules env ~unit_name counter (f : Ir.forall) =
  let mk_key arr =
    incr counter;
    Some (Printf.sprintf "%s:s%d:%s" unit_name !counter arr)
  in
  let pre =
    List.map
      (fun c ->
        match c with
        | Ir.Precomp_read p when invariant_forall env f p.Ir.r ->
            Ir.Precomp_read { p with Ir.key = mk_key p.Ir.r.Ast.base }
        | Ir.Gather_read p when invariant_forall env f p.Ir.r ->
            Ir.Gather_read { p with Ir.key = mk_key p.Ir.r.Ast.base }
        | c -> c)
      f.Ir.f_pre
  in
  let post =
    match f.Ir.f_post with
    | Some (Ir.Postcomp_write _) when invariant_forall env f f.Ir.f_lhs && f.Ir.f_mask = None ->
        Some (Ir.Postcomp_write { key = mk_key f.Ir.f_lhs.Ast.base })
    | Some (Ir.Scatter_write _) when invariant_forall env f f.Ir.f_lhs && f.Ir.f_mask = None ->
        Some (Ir.Scatter_write { key = mk_key f.Ir.f_lhs.Ast.base })
    | p -> p
  in
  { f with Ir.f_pre = pre; f_post = post }

(* ------------------------------------------------------------------ *)
(* Loop-invariant communication hoisting                               *)
(* ------------------------------------------------------------------ *)

(* Everything a statement list may write: array and scalar names in one
   set (they share the front-end namespace).  [unsafe] is raised by
   constructs whose effects we don't model precisely enough to hoist
   across: CALL (the callee may write any actual argument) and RETURN
   (the loop may exit before a later statement's comm would have run). *)
let rec written_of stmts =
  List.fold_left
    (fun (w, unsafe) st ->
      match st.Ir.s with
      | Ir.Forall f -> (S.add f.Ir.f_lhs.Ast.base w, unsafe)
      | Ir.Scalar_assign { name; _ } -> (S.add name w, unsafe)
      | Ir.Element_assign { lhs; _ } -> (S.add lhs.Ast.base w, unsafe)
      | Ir.Mover { target; _ } -> (S.add target w, unsafe)
      | Ir.Do_loop { var; body; _ } ->
          let w', u' = written_of body in
          (S.add var (S.union w w'), unsafe || u')
      | Ir.While_loop { body; _ } ->
          let w', u' = written_of body in
          (S.union w w', unsafe || u')
      | Ir.If_block { arms; els } ->
          List.fold_left
            (fun (w, unsafe) ss ->
              let w', u' = written_of ss in
              (S.union w w', unsafe || u'))
            (w, unsafe)
            (els :: List.map snd arms)
      | Ir.Call_sub _ | Ir.Return_stmt -> (w, true)
      | Ir.Print_stmt _ | Ir.Comm_block _ -> (w, unsafe))
    (S.empty, false) stmts

(* An expression is loop-invariant when it mentions no scalar or array
   the loop writes (Ast.vars_of covers scalars, refs_of covers array
   reads inside subscripts). *)
let invariant_expr forbidden e =
  List.for_all (fun v -> not (S.mem v forbidden)) (Ast.vars_of e)
  && List.for_all (fun (r : Ast.ref_) -> not (S.mem r.Ast.base forbidden)) (Ast.refs_of e)

(* A comm may leave the loop when its source array is never written in
   the body and every expression it evaluates is loop-invariant.  The
   inspector-executor pair stays put (schedule reuse already amortizes
   it), as do fused multicast-shifts and already-formed batches. *)
let hoistable forbidden c =
  match c with
  | Ir.Overlap_shift { arr; _ } | Ir.Concat { arr; _ } -> not (S.mem arr forbidden)
  | Ir.Multicast { arr; g; _ } -> (not (S.mem arr forbidden)) && invariant_expr forbidden g
  | Ir.Transfer { arr; src; dest; _ } ->
      (not (S.mem arr forbidden))
      && invariant_expr forbidden src && invariant_expr forbidden dest
  | Ir.Temp_shift { arr; amount; _ } ->
      (not (S.mem arr forbidden)) && invariant_expr forbidden amount
  | Ir.Multicast_shift _ | Ir.Precomp_read _ | Ir.Gather_read _ | Ir.Comm_batch _ -> false

(* Pull hoistable pre-comms out of the foralls at the top level of a
   loop body.  Foralls nested under IF arms stay untouched: their comms
   run only when the (replicated) condition holds, and their subscripts
   may not even be evaluable otherwise. *)
let split_hoistable forbidden body =
  let members = ref [] in
  let body =
    List.map
      (fun bst ->
        match bst.Ir.s with
        | Ir.Forall f ->
            let go, stay = List.partition (hoistable forbidden) f.Ir.f_pre in
            members :=
              !members
              @ List.map (fun c -> { Ir.hc = c; hc_sid = bst.Ir.sid; hc_loc = bst.Ir.sloc }) go;
            { bst with Ir.s = Ir.Forall { f with Ir.f_pre = stay } }
        | _ -> bst)
      body
  in
  (!members, body)

let rec hoist_stmts stmts = List.concat_map hoist_stmt stmts

and hoist_loop st ~guard ~loop_desc ~extra_forbidden body =
  let body = hoist_stmts body in
  let written, unsafe = written_of body in
  let forbidden = S.union extra_forbidden written in
  let members, body = if unsafe then ([], body) else split_hoistable forbidden body in
  (members, body, guard, loop_desc, st)

and hoist_stmt st =
  let emit (members, body, guard, loop_desc, st) rebuild =
    let loop = { st with Ir.s = rebuild body } in
    if members = [] then [ loop ]
    else
      [
        {
          st with
          Ir.s = Ir.Comm_block { cb_members = members; cb_guard = guard; cb_loop = loop_desc };
        };
        loop;
      ]
  in
  match st.Ir.s with
  | Ir.Do_loop { var; range; body } ->
      emit
        (hoist_loop st ~guard:(Ir.Guard_do range) ~loop_desc:("DO " ^ var)
           ~extra_forbidden:(S.singleton var) body)
        (fun body -> Ir.Do_loop { var; range; body })
  | Ir.While_loop { cond; body } ->
      emit
        (hoist_loop st ~guard:(Ir.Guard_while cond) ~loop_desc:"DO WHILE"
           ~extra_forbidden:S.empty body)
        (fun body -> Ir.While_loop { cond; body })
  | Ir.If_block { arms; els } ->
      [
        {
          st with
          Ir.s =
            Ir.If_block
              {
                arms = List.map (fun (c, ss) -> (c, hoist_stmts ss)) arms;
                els = hoist_stmts els;
              };
        };
      ]
  | _ -> [ st ]

(* ------------------------------------------------------------------ *)
(* Cross-statement message coalescing                                  *)
(* ------------------------------------------------------------------ *)

let expr_str e = Format.asprintf "%a" Ast.pp_expr e

(* Comms that may join a batch, keyed so members of one batch target the
   same communicating rank pairs: overlap shifts by (dim, direction),
   transfers by (dim, src, dest). *)
let batch_key = function
  | Ir.Overlap_shift { dim; amount; _ } when amount <> 0 ->
      Some (Printf.sprintf "shift:d%d:%c" dim (if amount > 0 then '+' else '-'))
  | Ir.Transfer { dim; src; dest; _ } ->
      Some (Printf.sprintf "transfer:d%d:%s:%s" dim (expr_str src) (expr_str dest))
  | _ -> None

(* Batch compatible comms within one maximal run of consecutive
   FORALLs.  A later member may move up to the anchor statement when no
   statement in between (the anchor included — its store phase runs
   after its pre-comms) writes the member's source array or an array its
   subscript expressions read.  Scalars cannot change inside a FORALL
   run, so lhs arrays are the only hazard. *)
let batch_run (run : Ir.stmt list) =
  let stmts = Array.of_list run in
  let n = Array.length stmts in
  let foralls =
    Array.map (fun st -> match st.Ir.s with Ir.Forall f -> f | _ -> assert false) stmts
  in
  let pres = Array.map (fun f -> Array.map Option.some (Array.of_list f.Ir.f_pre)) foralls in
  let cands = ref [] in
  Array.iteri
    (fun i pre ->
      Array.iteri
        (fun j c ->
          match c with
          | Some c -> (
              match batch_key c with Some k -> cands := (k, i, j) :: !cands | None -> ())
          | None -> ())
        pre)
    pres;
  let cands = List.rev !cands in
  let keys =
    List.sort_uniq compare (List.map (fun (k, _, _) -> k) cands)
  in
  List.iter
    (fun key ->
      match List.filter (fun (k, _, _) -> k = key) cands with
      | [] | [ _ ] -> ()
      | (_, i0, j0) :: rest ->
          let written_upto i =
            let s = ref S.empty in
            for k = i0 to i - 1 do
              s := S.add foralls.(k).Ir.f_lhs.Ast.base !s
            done;
            !s
          in
          let ok (_, i, j) =
            let c = Option.get pres.(i).(j) in
            let w = written_upto i in
            (match Ir.comm_source c with Some a -> not (S.mem a w) | None -> false)
            && (match c with
               | Ir.Transfer { src; dest; _ } -> invariant_expr w src && invariant_expr w dest
               | _ -> true)
          in
          let eligible = List.filter ok rest in
          if eligible <> [] then begin
            let all = (key, i0, j0) :: eligible in
            let batch =
              List.map (fun (_, i, j) -> (Option.get pres.(i).(j), stmts.(i).Ir.sid)) all
            in
            List.iter (fun (_, i, j) -> pres.(i).(j) <- None) all;
            pres.(i0).(j0) <- Some (Ir.Comm_batch batch)
          end)
    keys;
  List.init n (fun i ->
      let pre = Array.to_list pres.(i) |> List.filter_map Fun.id in
      { (stmts.(i)) with Ir.s = Ir.Forall { (foralls.(i)) with Ir.f_pre = pre } })

let rec coalesce_stmts stmts =
  let stmts = List.map coalesce_stmt stmts in
  let out = ref [] in
  let run = ref [] in
  let flush () =
    if !run <> [] then begin
      out := List.rev_append (batch_run (List.rev !run)) !out;
      run := []
    end
  in
  List.iter
    (fun st ->
      match st.Ir.s with
      | Ir.Forall _ -> run := st :: !run
      | _ ->
          flush ();
          out := st :: !out)
    stmts;
  flush ();
  List.rev !out

and coalesce_stmt st =
  match st.Ir.s with
  | Ir.Do_loop { var; range; body } ->
      { st with Ir.s = Ir.Do_loop { var; range; body = coalesce_stmts body } }
  | Ir.While_loop { cond; body } ->
      { st with Ir.s = Ir.While_loop { cond; body = coalesce_stmts body } }
  | Ir.If_block { arms; els } ->
      {
        st with
        Ir.s =
          Ir.If_block
            {
              arms = List.map (fun (c, ss) -> (c, coalesce_stmts ss)) arms;
              els = coalesce_stmts els;
            };
      }
  | _ -> st

(* ------------------------------------------------------------------ *)
(* Pass driver                                                         *)
(* ------------------------------------------------------------------ *)

(* Statement provenance (sid, sloc) is preserved: passes rewrite the
   node, never the identity. *)
let rec map_stmt f (st : Ir.stmt) =
  let node =
    match st.Ir.s with
    | Ir.Forall fo -> Ir.Forall (f fo)
    | Ir.Do_loop { var; range; body } ->
        Ir.Do_loop { var; range; body = List.map (map_stmt f) body }
    | Ir.While_loop { cond; body } ->
        Ir.While_loop { cond; body = List.map (map_stmt f) body }
    | Ir.If_block { arms; els } ->
        Ir.If_block
          {
            arms = List.map (fun (c, ss) -> (c, List.map (map_stmt f) ss)) arms;
            els = List.map (map_stmt f) els;
          }
    | s -> s
  in
  { st with Ir.s = node }

let apply flags (ir : Ir.program_ir) =
  let units =
    List.map
      (fun (name, u) ->
        let counter = ref 0 in
        let on_forall fo =
          let fo =
            if flags.shift_union then { fo with Ir.f_pre = union_shifts fo.Ir.f_pre } else fo
          in
          let fo = { fo with Ir.f_pre = set_fusion flags.fuse_mshift fo.Ir.f_pre } in
          if flags.schedule_reuse then key_schedules u.Ir.u_env ~unit_name:name counter fo
          else fo
        in
        let body = List.map (map_stmt on_forall) u.Ir.u_body in
        let body = if flags.hoist_comm then hoist_stmts body else body in
        let body = if flags.coalesce then coalesce_stmts body else body in
        (name, { u with Ir.u_body = body }))
      ir.Ir.p_units
  in
  { ir with Ir.p_units = units }
