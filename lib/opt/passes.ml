open F90d_frontend
open F90d_ir

type flags = { shift_union : bool; fuse_mshift : bool; schedule_reuse : bool }

let all_on = { shift_union = true; fuse_mshift = true; schedule_reuse = true }
let all_off = { shift_union = false; fuse_mshift = false; schedule_reuse = false }

(* ------------------------------------------------------------------ *)
(* Shift union                                                         *)
(* ------------------------------------------------------------------ *)

(* Keep only the widest overlap shift per (array, dim, direction); the
   wider ghost transfer carries the narrower one's data.  A zero-amount
   shift moves nothing — it is dropped outright (it would otherwise never
   receive a [widest] binding and crash the filter below). *)
let union_shifts pre =
  let widest = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match c with
      | Ir.Overlap_shift { amount = 0; _ } -> ()
      | Ir.Overlap_shift { arr; dim; amount } ->
          let key = (arr, dim, amount > 0) in
          let cur = Option.value (Hashtbl.find_opt widest key) ~default:0 in
          if abs amount > abs cur then Hashtbl.replace widest key amount
      | _ -> ())
    pre;
  let emitted = Hashtbl.create 8 in
  List.filter
    (fun c ->
      match c with
      | Ir.Overlap_shift { amount = 0; _ } -> false
      | Ir.Overlap_shift { arr; dim; amount } ->
          let key = (arr, dim, amount > 0) in
          if Hashtbl.find widest key = amount && not (Hashtbl.mem emitted key) then begin
            Hashtbl.replace emitted key ();
            true
          end
          else false
      | _ -> true)
    pre

(* ------------------------------------------------------------------ *)
(* Multicast/shift fusion control                                      *)
(* ------------------------------------------------------------------ *)

let set_fusion fused pre =
  List.map
    (function
      | Ir.Multicast_shift m -> Ir.Multicast_shift { m with Ir.fused }
      | c -> c)
    pre

(* ------------------------------------------------------------------ *)
(* Schedule reuse                                                      *)
(* ------------------------------------------------------------------ *)

(* A schedule's index sets are invariant when every input is a named
   constant: range bounds and reference subscripts may mention only
   parameters and the FORALL variables themselves. *)
let invariant_forall env (f : Ir.forall) (r : Ast.ref_) =
  let params = List.map fst env.Sema.uparams in
  let forall_vars = List.map fst f.Ir.f_vars in
  let ok_expr e =
    List.for_all (fun v -> List.mem v params || List.mem v forall_vars) (Ast.vars_of e)
  in
  let ok_range (rg : Ast.range) =
    ok_expr rg.Ast.lo && ok_expr rg.Ast.hi
    && (match rg.Ast.st with Some e -> ok_expr e | None -> true)
  in
  List.for_all (fun (_, rg) -> ok_range rg) f.Ir.f_vars
  && List.for_all
       (function Ast.Elem e -> ok_expr e | Ast.Range _ -> false)
       r.Ast.args

let key_schedules env ~unit_name counter (f : Ir.forall) =
  let mk_key arr =
    incr counter;
    Some (Printf.sprintf "%s:s%d:%s" unit_name !counter arr)
  in
  let pre =
    List.map
      (fun c ->
        match c with
        | Ir.Precomp_read p when invariant_forall env f p.Ir.r ->
            Ir.Precomp_read { p with Ir.key = mk_key p.Ir.r.Ast.base }
        | Ir.Gather_read p when invariant_forall env f p.Ir.r ->
            Ir.Gather_read { p with Ir.key = mk_key p.Ir.r.Ast.base }
        | c -> c)
      f.Ir.f_pre
  in
  let post =
    match f.Ir.f_post with
    | Some (Ir.Postcomp_write _) when invariant_forall env f f.Ir.f_lhs && f.Ir.f_mask = None ->
        Some (Ir.Postcomp_write { key = mk_key f.Ir.f_lhs.Ast.base })
    | Some (Ir.Scatter_write _) when invariant_forall env f f.Ir.f_lhs && f.Ir.f_mask = None ->
        Some (Ir.Scatter_write { key = mk_key f.Ir.f_lhs.Ast.base })
    | p -> p
  in
  { f with Ir.f_pre = pre; f_post = post }

(* ------------------------------------------------------------------ *)
(* Pass driver                                                         *)
(* ------------------------------------------------------------------ *)

(* Statement provenance (sid, sloc) is preserved: passes rewrite the
   node, never the identity. *)
let rec map_stmt f (st : Ir.stmt) =
  let node =
    match st.Ir.s with
    | Ir.Forall fo -> Ir.Forall (f fo)
    | Ir.Do_loop { var; range; body } ->
        Ir.Do_loop { var; range; body = List.map (map_stmt f) body }
    | Ir.While_loop { cond; body } ->
        Ir.While_loop { cond; body = List.map (map_stmt f) body }
    | Ir.If_block { arms; els } ->
        Ir.If_block
          {
            arms = List.map (fun (c, ss) -> (c, List.map (map_stmt f) ss)) arms;
            els = List.map (map_stmt f) els;
          }
    | s -> s
  in
  { st with Ir.s = node }

let apply flags (ir : Ir.program_ir) =
  let units =
    List.map
      (fun (name, u) ->
        let counter = ref 0 in
        let on_forall fo =
          let fo =
            if flags.shift_union then { fo with Ir.f_pre = union_shifts fo.Ir.f_pre } else fo
          in
          let fo = { fo with Ir.f_pre = set_fusion flags.fuse_mshift fo.Ir.f_pre } in
          if flags.schedule_reuse then key_schedules u.Ir.u_env ~unit_name:name counter fo
          else fo
        in
        (name, { u with Ir.u_body = List.map (map_stmt on_forall) u.Ir.u_body }))
      ir.Ir.p_units
  in
  { ir with Ir.p_units = units }
