open F90d_frontend
open F90d_ir

type flags = {
  shift_union : bool;
  fuse_mshift : bool;
  schedule_reuse : bool;
  hoist_comm : bool;
  coalesce : bool;
  split_comm : bool;
  lookahead : bool;  (* only effective when split_comm is on *)
  blocked_kernels : bool;
      (* execution strategy, not an IR pass: [apply] ignores it, the
         runtime reads it to enable the blocked node-kernel layer *)
}

let all_on =
  {
    shift_union = true;
    fuse_mshift = true;
    schedule_reuse = true;
    hoist_comm = true;
    coalesce = true;
    split_comm = true;
    lookahead = true;
    blocked_kernels = true;
  }

let all_off =
  {
    shift_union = false;
    fuse_mshift = false;
    schedule_reuse = false;
    hoist_comm = false;
    coalesce = false;
    split_comm = false;
    lookahead = false;
    (* [all_off] disables the communication passes; the kernel layer is a
       node-local execution strategy with its own toggle, so ablations
       over comm passes keep tractable wall time at bench problem sizes *)
    blocked_kernels = true;
  }

module S = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Shift union                                                         *)
(* ------------------------------------------------------------------ *)

(* Keep only the widest overlap shift per (array, dim, direction); the
   wider ghost transfer carries the narrower one's data.  A zero-amount
   shift moves nothing — it is dropped outright (it would otherwise never
   receive a [widest] binding and crash the filter below). *)
let union_shifts pre =
  let widest = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match c with
      | Ir.Overlap_shift { amount = 0; _ } -> ()
      | Ir.Overlap_shift { arr; dim; amount } ->
          let key = (arr, dim, amount > 0) in
          let cur = Option.value (Hashtbl.find_opt widest key) ~default:0 in
          if abs amount > abs cur then Hashtbl.replace widest key amount
      | _ -> ())
    pre;
  let emitted = Hashtbl.create 8 in
  List.filter
    (fun c ->
      match c with
      | Ir.Overlap_shift { amount = 0; _ } -> false
      | Ir.Overlap_shift { arr; dim; amount } ->
          let key = (arr, dim, amount > 0) in
          if Hashtbl.find widest key = amount && not (Hashtbl.mem emitted key) then begin
            Hashtbl.replace emitted key ();
            true
          end
          else false
      | _ -> true)
    pre

(* ------------------------------------------------------------------ *)
(* Multicast/shift fusion control                                      *)
(* ------------------------------------------------------------------ *)

let set_fusion fused pre =
  List.map
    (function
      | Ir.Multicast_shift m -> Ir.Multicast_shift { m with Ir.fused }
      | c -> c)
    pre

(* ------------------------------------------------------------------ *)
(* Schedule reuse                                                      *)
(* ------------------------------------------------------------------ *)

(* A schedule's index sets are invariant when every input is a named
   constant: range bounds and reference subscripts may mention only
   parameters and the FORALL variables themselves. *)
let invariant_forall env (f : Ir.forall) (r : Ast.ref_) =
  let params = List.map fst env.Sema.uparams in
  let forall_vars = List.map fst f.Ir.f_vars in
  let ok_expr e =
    List.for_all (fun v -> List.mem v params || List.mem v forall_vars) (Ast.vars_of e)
  in
  let ok_range (rg : Ast.range) =
    ok_expr rg.Ast.lo && ok_expr rg.Ast.hi
    && (match rg.Ast.st with Some e -> ok_expr e | None -> true)
  in
  List.for_all (fun (_, rg) -> ok_range rg) f.Ir.f_vars
  && List.for_all
       (function Ast.Elem e -> ok_expr e | Ast.Range _ -> false)
       r.Ast.args

let key_schedules env ~unit_name counter (f : Ir.forall) =
  let mk_key arr =
    incr counter;
    Some (Printf.sprintf "%s:s%d:%s" unit_name !counter arr)
  in
  let pre =
    List.map
      (fun c ->
        match c with
        | Ir.Precomp_read p when invariant_forall env f p.Ir.r ->
            Ir.Precomp_read { p with Ir.key = mk_key p.Ir.r.Ast.base }
        | Ir.Gather_read p when invariant_forall env f p.Ir.r ->
            Ir.Gather_read { p with Ir.key = mk_key p.Ir.r.Ast.base }
        | c -> c)
      f.Ir.f_pre
  in
  let post =
    match f.Ir.f_post with
    | Some (Ir.Postcomp_write _) when invariant_forall env f f.Ir.f_lhs && f.Ir.f_mask = None ->
        Some (Ir.Postcomp_write { key = mk_key f.Ir.f_lhs.Ast.base })
    | Some (Ir.Scatter_write _) when invariant_forall env f f.Ir.f_lhs && f.Ir.f_mask = None ->
        Some (Ir.Scatter_write { key = mk_key f.Ir.f_lhs.Ast.base })
    | p -> p
  in
  { f with Ir.f_pre = pre; f_post = post }

(* ------------------------------------------------------------------ *)
(* Loop-invariant communication hoisting                               *)
(* ------------------------------------------------------------------ *)

(* Everything a statement list may write: array and scalar names in one
   set (they share the front-end namespace).  [unsafe] is raised by
   constructs whose effects we don't model precisely enough to hoist
   across: CALL (the callee may write any actual argument) and RETURN
   (the loop may exit before a later statement's comm would have run). *)
let rec written_of stmts =
  List.fold_left
    (fun (w, unsafe) st ->
      match st.Ir.s with
      | Ir.Forall f -> (S.add f.Ir.f_lhs.Ast.base w, unsafe)
      | Ir.Scalar_assign { name; _ } -> (S.add name w, unsafe)
      | Ir.Element_assign { lhs; _ } -> (S.add lhs.Ast.base w, unsafe)
      | Ir.Mover { target; _ } -> (S.add target w, unsafe)
      | Ir.Do_loop { var; body; _ } ->
          let w', u' = written_of body in
          (S.add var (S.union w w'), unsafe || u')
      | Ir.While_loop { body; _ } ->
          let w', u' = written_of body in
          (S.union w w', unsafe || u')
      | Ir.If_block { arms; els } ->
          List.fold_left
            (fun (w, unsafe) ss ->
              let w', u' = written_of ss in
              (S.union w w', unsafe || u'))
            (w, unsafe)
            (els :: List.map snd arms)
      | Ir.Call_sub _ | Ir.Return_stmt -> (w, true)
      | Ir.Print_stmt _ | Ir.Comm_block _ | Ir.Comm_issue _ | Ir.Comm_wait _ -> (w, unsafe))
    (S.empty, false) stmts

(* An expression is loop-invariant when it mentions no scalar or array
   the loop writes (Ast.vars_of covers scalars, refs_of covers array
   reads inside subscripts). *)
let invariant_expr forbidden e =
  List.for_all (fun v -> not (S.mem v forbidden)) (Ast.vars_of e)
  && List.for_all (fun (r : Ast.ref_) -> not (S.mem r.Ast.base forbidden)) (Ast.refs_of e)

(* A comm may leave the loop when its source array is never written in
   the body and every expression it evaluates is loop-invariant.  The
   inspector-executor pair stays put (schedule reuse already amortizes
   it), as do fused multicast-shifts and already-formed batches. *)
let hoistable forbidden c =
  match c with
  | Ir.Overlap_shift { arr; _ } | Ir.Concat { arr; _ } -> not (S.mem arr forbidden)
  | Ir.Multicast { arr; g; _ } -> (not (S.mem arr forbidden)) && invariant_expr forbidden g
  | Ir.Transfer { arr; src; dest; _ } ->
      (not (S.mem arr forbidden))
      && invariant_expr forbidden src && invariant_expr forbidden dest
  | Ir.Temp_shift { arr; amount; _ } ->
      (not (S.mem arr forbidden)) && invariant_expr forbidden amount
  | Ir.Multicast_shift _ | Ir.Precomp_read _ | Ir.Gather_read _ | Ir.Comm_batch _ -> false

(* Pull hoistable pre-comms out of the foralls at the top level of a
   loop body.  Foralls nested under IF arms stay untouched: their comms
   run only when the (replicated) condition holds, and their subscripts
   may not even be evaluable otherwise. *)
let split_hoistable forbidden body =
  let members = ref [] in
  let body =
    List.map
      (fun bst ->
        match bst.Ir.s with
        | Ir.Forall f ->
            let go, stay = List.partition (hoistable forbidden) f.Ir.f_pre in
            members :=
              !members
              @ List.map (fun c -> { Ir.hc = c; hc_sid = bst.Ir.sid; hc_loc = bst.Ir.sloc }) go;
            { bst with Ir.s = Ir.Forall { f with Ir.f_pre = stay } }
        | _ -> bst)
      body
  in
  (!members, body)

let rec hoist_stmts stmts = List.concat_map hoist_stmt stmts

and hoist_loop st ~guard ~loop_desc ~extra_forbidden body =
  let body = hoist_stmts body in
  let written, unsafe = written_of body in
  let forbidden = S.union extra_forbidden written in
  let members, body = if unsafe then ([], body) else split_hoistable forbidden body in
  (members, body, guard, loop_desc, st)

and hoist_stmt st =
  let emit (members, body, guard, loop_desc, st) rebuild =
    let loop = { st with Ir.s = rebuild body } in
    if members = [] then [ loop ]
    else
      [
        {
          st with
          Ir.s = Ir.Comm_block { cb_members = members; cb_guard = guard; cb_loop = loop_desc };
        };
        loop;
      ]
  in
  match st.Ir.s with
  | Ir.Do_loop { var; range; body } ->
      emit
        (hoist_loop st ~guard:(Ir.Guard_do range) ~loop_desc:("DO " ^ var)
           ~extra_forbidden:(S.singleton var) body)
        (fun body -> Ir.Do_loop { var; range; body })
  | Ir.While_loop { cond; body } ->
      emit
        (hoist_loop st ~guard:(Ir.Guard_while cond) ~loop_desc:"DO WHILE"
           ~extra_forbidden:S.empty body)
        (fun body -> Ir.While_loop { cond; body })
  | Ir.If_block { arms; els } ->
      [
        {
          st with
          Ir.s =
            Ir.If_block
              {
                arms = List.map (fun (c, ss) -> (c, hoist_stmts ss)) arms;
                els = hoist_stmts els;
              };
        };
      ]
  | _ -> [ st ]

(* ------------------------------------------------------------------ *)
(* Cross-statement message coalescing                                  *)
(* ------------------------------------------------------------------ *)

let expr_str e = Format.asprintf "%a" Ast.pp_expr e

(* Comms that may join a batch, keyed so members of one batch target the
   same communicating rank pairs: overlap shifts by (dim, direction),
   transfers by (dim, src, dest). *)
let batch_key = function
  | Ir.Overlap_shift { dim; amount; _ } when amount <> 0 ->
      Some (Printf.sprintf "shift:d%d:%c" dim (if amount > 0 then '+' else '-'))
  | Ir.Transfer { dim; src; dest; _ } ->
      Some (Printf.sprintf "transfer:d%d:%s:%s" dim (expr_str src) (expr_str dest))
  | _ -> None

(* Batch compatible comms within one maximal run of consecutive
   FORALLs.  A later member may move up to the anchor statement when no
   statement in between (the anchor included — its store phase runs
   after its pre-comms) writes the member's source array or an array its
   subscript expressions read.  Scalars cannot change inside a FORALL
   run, so lhs arrays are the only hazard. *)
let batch_run (run : Ir.stmt list) =
  let stmts = Array.of_list run in
  let n = Array.length stmts in
  let foralls =
    Array.map (fun st -> match st.Ir.s with Ir.Forall f -> f | _ -> assert false) stmts
  in
  let pres = Array.map (fun f -> Array.map Option.some (Array.of_list f.Ir.f_pre)) foralls in
  let cands = ref [] in
  Array.iteri
    (fun i pre ->
      Array.iteri
        (fun j c ->
          match c with
          | Some c -> (
              match batch_key c with Some k -> cands := (k, i, j) :: !cands | None -> ())
          | None -> ())
        pre)
    pres;
  let cands = List.rev !cands in
  let keys =
    List.sort_uniq compare (List.map (fun (k, _, _) -> k) cands)
  in
  List.iter
    (fun key ->
      match List.filter (fun (k, _, _) -> k = key) cands with
      | [] | [ _ ] -> ()
      | (_, i0, j0) :: rest ->
          let written_upto i =
            let s = ref S.empty in
            for k = i0 to i - 1 do
              s := S.add foralls.(k).Ir.f_lhs.Ast.base !s
            done;
            !s
          in
          let ok (_, i, j) =
            let c = Option.get pres.(i).(j) in
            let w = written_upto i in
            (match Ir.comm_source c with Some a -> not (S.mem a w) | None -> false)
            && (match c with
               | Ir.Transfer { src; dest; _ } -> invariant_expr w src && invariant_expr w dest
               | _ -> true)
          in
          let eligible = List.filter ok rest in
          if eligible <> [] then begin
            let all = (key, i0, j0) :: eligible in
            let batch =
              List.map (fun (_, i, j) -> (Option.get pres.(i).(j), stmts.(i).Ir.sid)) all
            in
            List.iter (fun (_, i, j) -> pres.(i).(j) <- None) all;
            pres.(i0).(j0) <- Some (Ir.Comm_batch batch)
          end)
    keys;
  List.init n (fun i ->
      let pre = Array.to_list pres.(i) |> List.filter_map Fun.id in
      { (stmts.(i)) with Ir.s = Ir.Forall { (foralls.(i)) with Ir.f_pre = pre } })

let rec coalesce_stmts stmts =
  let stmts = List.map coalesce_stmt stmts in
  let out = ref [] in
  let run = ref [] in
  let flush () =
    if !run <> [] then begin
      out := List.rev_append (batch_run (List.rev !run)) !out;
      run := []
    end
  in
  List.iter
    (fun st ->
      match st.Ir.s with
      | Ir.Forall _ -> run := st :: !run
      | _ ->
          flush ();
          out := st :: !out)
    stmts;
  flush ();
  List.rev !out

and coalesce_stmt st =
  match st.Ir.s with
  | Ir.Do_loop { var; range; body } ->
      { st with Ir.s = Ir.Do_loop { var; range; body = coalesce_stmts body } }
  | Ir.While_loop { cond; body } ->
      { st with Ir.s = Ir.While_loop { cond; body = coalesce_stmts body } }
  | Ir.If_block { arms; els } ->
      {
        st with
        Ir.s =
          Ir.If_block
            {
              arms = List.map (fun (c, ss) -> (c, coalesce_stmts ss)) arms;
              els = coalesce_stmts els;
            };
      }
  | _ -> st

(* ------------------------------------------------------------------ *)
(* Split-phase communication                                           *)
(* ------------------------------------------------------------------ *)

let subst_var v repl =
  Ast.map_expr (fun x -> match x.Ast.e with Ast.Var n when n = v -> repl | _ -> x)

(* Affine view of a subscript: integer constant + sum of coeff * var.
   [None] for anything non-affine; all disjointness questions below are
   answered [false] (= "may overlap") in that case. *)
module Aff = struct
  module M = Map.Make (String)

  type t = { c : int; vs : int M.t }

  let norm a = { a with vs = M.filter (fun _ k -> k <> 0) a.vs }
  let add a b = norm { c = a.c + b.c; vs = M.union (fun _ x y -> Some (x + y)) a.vs b.vs }
  let neg a = { c = -a.c; vs = M.map (fun k -> -k) a.vs }
  let sub a b = add a (neg b)
  let scale n a = norm { c = n * a.c; vs = M.map (fun k -> n * k) a.vs }

  let rec of_expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Int_lit n -> Some { c = n; vs = M.empty }
    | Ast.Var v -> Some { c = 0; vs = M.singleton v 1 }
    | Ast.Bin (Ast.Add, a, b) -> (
        match (of_expr a, of_expr b) with Some a, Some b -> Some (add a b) | _ -> None)
    | Ast.Bin (Ast.Sub, a, b) -> (
        match (of_expr a, of_expr b) with Some a, Some b -> Some (sub a b) | _ -> None)
    | Ast.Bin (Ast.Mul, a, b) -> (
        match (of_expr a, of_expr b) with
        | Some { c = n; vs }, Some x when M.is_empty vs -> Some (scale n x)
        | Some x, Some { c = n; vs } when M.is_empty vs -> Some (scale n x)
        | _ -> None)
    | _ -> None

  (* [e1 - e2] when it folds to a plain integer. *)
  let const_diff e1 e2 =
    match (of_expr e1, of_expr e2) with
    | Some a, Some b ->
        let d = sub a b in
        if M.is_empty d.vs then Some d.c else None
    | _ -> None

  let coeff v a = Option.value (M.find_opt v a.vs) ~default:0
  let vars a = List.map fst (M.bindings a.vs)
end

let range_pure (r : Ast.range) =
  Ast.refs_of r.Ast.lo = [] && Ast.refs_of r.Ast.hi = []
  && (match r.Ast.st with Some e -> Ast.refs_of e = [] | None -> true)

(* A statement that provably performs no communication of its own, so a
   split-phase message may stay in flight across it without disturbing
   per-channel FIFO order or collective call order.  Conservative:
   ref-free scalar assignments and owner-computes FORALLs whose every
   read is already local (no pre-comms, no mask, no write-back; a
   snapshot is a local copy and is fine). *)
let comm_free st =
  match st.Ir.s with
  | Ir.Scalar_assign { rhs; _ } -> Ast.refs_of rhs = []
  | Ir.Forall f ->
      f.Ir.f_pre = [] && f.Ir.f_post = None && f.Ir.f_mask = None
      && (match f.Ir.f_iter with Ir.It_canonical _ -> true | _ -> false)
      && List.for_all (fun (_, r) -> range_pure r) f.Ir.f_vars
      && List.for_all
           (function Ast.Elem e -> Ast.refs_of e = [] | Ast.Range _ -> false)
           f.Ir.f_lhs.Ast.args
  | _ -> false

(* May the issue half move up across [st]?  [arr] is the multicast
   source and [gvars] the free variables of its slice subscript: the
   data in flight is the source {e as of the issue}, so a crossed
   statement must not communicate, not write [arr], and not change the
   subscript's value. *)
let issue_crossable ~arr ~gvars st =
  comm_free st
  && (match st.Ir.s with
     | Ir.Scalar_assign { name; _ } -> name <> arr && not (S.mem name gvars)
     | Ir.Forall f -> f.Ir.f_lhs.Ast.base <> arr && not (S.mem f.Ir.f_lhs.Ast.base gvars)
     | _ -> false)

(* Only plain multicasts split: they are the latency that dominates the
   solver kernels (gauss's pivot column), the issue half is cheap on
   every non-root (post one receive), and the slice subscript pins down
   exactly which intervening writes are hazards.  A subscript that
   itself reads an array stays blocking — evaluating it early would add
   an array-element fetch whose safety we cannot see locally. *)
let splittable = function
  | Ir.Multicast { g; _ } -> Ast.refs_of g = []
  | _ -> false

(* Split eligible FORALL pre-comms in a statement list into an issue
   and a wait.  The wait sits immediately before the reading FORALL
   (sinking it further serves nothing: the next statement reads the
   data); the issue then moves up across preceding crossable
   statements, opening the window in which the message travels while
   the processor still computes.  A pair whose issue cannot move stays
   blocking — splitting it in place is pure IR noise — with one
   exception: when the issue would come to rest at the very top of a DO
   body it is kept split even with nothing to cross, because that is
   exactly the shape the lookahead pass turns into cross-iteration
   overlap. *)
let rec split_stmts fresh ~do_body stmts =
  let out = ref [] (* reversed *) in
  List.iter
    (fun st ->
      let st = split_stmt fresh st in
      match st.Ir.s with
      | Ir.Forall f ->
          let stay = ref [] in
          let waits = ref [] in
          List.iter
            (fun c ->
              let crossing () =
                match c with
                | Ir.Multicast { arr; g; _ } ->
                    let gvars = S.of_list (Ast.vars_of g) in
                    let rec count k = function
                      | p :: rest when issue_crossable ~arr ~gvars p -> count (k + 1) rest
                      | rest -> (k, rest = [])
                    in
                    let crossed, at_top = count 0 !out in
                    (arr, gvars, crossed, at_top)
                | _ -> assert false
              in
              if not (splittable c) then stay := c :: !stay
              else begin
                let arr, gvars, crossed, at_top = crossing () in
                if crossed = 0 && not (do_body && at_top) then stay := c :: !stay
                else begin
                  incr fresh;
                  let sp =
                    {
                      Ir.sp_hid = !fresh;
                      sp_comm = { Ir.hc = c; hc_sid = st.Ir.sid; hc_loc = st.Ir.sloc };
                      sp_guard = Ir.Sg_always;
                    }
                  in
                  let issue = { st with Ir.s = Ir.Comm_issue sp } in
                  let rec insert_rev = function
                    | p :: rest when issue_crossable ~arr ~gvars p -> p :: insert_rev rest
                    | rest -> issue :: rest
                  in
                  out := insert_rev !out;
                  waits := { st with Ir.s = Ir.Comm_wait sp } :: !waits
                end
              end)
            f.Ir.f_pre;
          out :=
            { st with Ir.s = Ir.Forall { f with Ir.f_pre = List.rev !stay } }
            :: (!waits @ !out)
      | _ -> out := st :: !out)
    stmts;
  List.rev !out

and split_stmt fresh st =
  let node =
    match st.Ir.s with
    | Ir.Do_loop { var; range; body } ->
        Ir.Do_loop { var; range; body = split_stmts fresh ~do_body:true body }
    | Ir.While_loop { cond; body } ->
        Ir.While_loop { cond; body = split_stmts fresh ~do_body:false body }
    | Ir.If_block { arms; els } ->
        Ir.If_block
          {
            arms = List.map (fun (c, ss) -> (c, split_stmts fresh ~do_body:false ss)) arms;
            els = split_stmts fresh ~do_body:false els;
          }
    | s -> s
  in
  { st with Ir.s = node }

(* Fold back the split pairs lookahead could not use: an issue still
   directly in front of its wait (both unconditional) gained nothing,
   so the comm returns to the reading FORALL's blocking pre list. *)
let rec refuse_stmts stmts =
  let rec go = function
    | { Ir.s = Ir.Comm_issue sp; _ }
      :: { Ir.s = Ir.Comm_wait spw; _ }
      :: ({ Ir.s = Ir.Forall f; _ } as fs)
      :: rest
      when sp.Ir.sp_hid = spw.Ir.sp_hid && sp.Ir.sp_guard = Ir.Sg_always ->
        go
          ({ fs with Ir.s = Ir.Forall { f with Ir.f_pre = sp.Ir.sp_comm.Ir.hc :: f.Ir.f_pre } }
          :: rest)
    | st :: rest -> refuse_stmt st :: go rest
    | [] -> []
  in
  go stmts

and refuse_stmt st =
  let node =
    match st.Ir.s with
    | Ir.Do_loop { var; range; body } -> Ir.Do_loop { var; range; body = refuse_stmts body }
    | Ir.While_loop { cond; body } -> Ir.While_loop { cond; body = refuse_stmts body }
    | Ir.If_block { arms; els } ->
        Ir.If_block
          {
            arms = List.map (fun (c, ss) -> (c, refuse_stmts ss)) arms;
            els = refuse_stmts els;
          }
    | s -> s
  in
  { st with Ir.s = node }

(* ------------------------------------------------------------------ *)
(* Lookahead pipelining                                                *)
(* ------------------------------------------------------------------ *)

(* Is the value set of subscript [e] — with the FORALL variables
   [fvars] ranging over their bounds — provably disjoint from the
   single index [gn]?  Handles a subscript with no FORALL variable
   (constant distance test) and a unit-coefficient, step-1 variable
   (compare [gn] against the substituted range ends). *)
let subscript_disjoint ~fvars e gn =
  match Aff.of_expr e with
  | None -> false
  | Some ae -> (
      match List.filter (fun v -> List.mem_assoc v fvars) (Aff.vars ae) with
      | [] -> ( match Aff.const_diff e gn with Some d -> d <> 0 | None -> false)
      | [ j ] when Aff.coeff j ae = 1 ->
          let rj : Ast.range = List.assoc j fvars in
          let step_one =
            match rj.Ast.st with
            | None -> true
            | Some s -> ( match s.Ast.e with Ast.Int_lit 1 -> true | _ -> false)
          in
          step_one
          && ((match Aff.const_diff (subst_var j rj.Ast.hi e) gn with
              | Some d -> d < 0
              | None -> false)
             ||
             match Aff.const_diff (subst_var j rj.Ast.lo e) gn with
             | Some d -> d > 0
             | None -> false)
      | _ -> false)

(* Does [st] possibly write the slice [dim = gn] of [arr]?  [false]
   means provably not: either [arr] is untouched or every write lands
   at a provably different [dim]-subscript. *)
let rec writes_slice ~arr ~dim ~gn st =
  match st.Ir.s with
  | Ir.Forall f ->
      f.Ir.f_lhs.Ast.base = arr
      && not
           (match List.nth_opt f.Ir.f_lhs.Ast.args dim with
           | Some (Ast.Elem e) -> subscript_disjoint ~fvars:f.Ir.f_vars e gn
           | _ -> false)
  | Ir.Element_assign { lhs; _ } ->
      lhs.Ast.base = arr
      && not
           (match List.nth_opt lhs.Ast.args dim with
           | Some (Ast.Elem e) -> subscript_disjoint ~fvars:[] e gn
           | _ -> false)
  | Ir.Mover { target; _ } -> target = arr
  | Ir.Call_sub _ -> true
  | Ir.Do_loop { body; _ } | Ir.While_loop { body; _ } ->
      List.exists (writes_slice ~arr ~dim ~gn) body
  | Ir.If_block { arms; els } ->
      List.exists
        (fun ss -> List.exists (writes_slice ~arr ~dim ~gn) ss)
        (els :: List.map snd arms)
  | Ir.Scalar_assign _ | Ir.Print_stmt _ | Ir.Return_stmt | Ir.Comm_block _ | Ir.Comm_issue _
  | Ir.Comm_wait _ ->
      false

(* Fission the last blocker — a FORALL writing the slice — into a head
   iteration [b1] that performs the slice write and a provably disjoint
   bulk [b2], so the next step's issue can slot between them (the
   classic lookahead fission: peel the column the pipeline needs next
   out of the bulk update).  Requires the [dim]-subscript to be a
   step-1 FORALL variable (plus a constant) whose {e first} iteration
   is exactly [gn], and every rhs read of [arr] to use that same
   [dim]-subscript — then each [dim]-index is self-contained and the
   halves touch disjoint slices outright, snapshot or not. *)
let try_fission ~arr ~dim ~gn st =
  match st.Ir.s with
  | Ir.Forall f
    when f.Ir.f_lhs.Ast.base = arr && f.Ir.f_pre = [] && f.Ir.f_post = None
         && f.Ir.f_mask = None
         && (match f.Ir.f_iter with Ir.It_canonical _ -> true | _ -> false)
         && List.for_all (fun (_, r) -> range_pure r) f.Ir.f_vars -> (
      match List.nth_opt f.Ir.f_lhs.Ast.args dim with
      | Some (Ast.Elem e) -> (
          match Aff.of_expr e with
          | Some ae -> (
              match List.filter (fun v -> List.mem_assoc v f.Ir.f_vars) (Aff.vars ae) with
              | [ j ] when Aff.coeff j ae = 1 -> (
                  let rj = List.assoc j f.Ir.f_vars in
                  let step_one =
                    match rj.Ast.st with
                    | None -> true
                    | Some s -> ( match s.Ast.e with Ast.Int_lit 1 -> true | _ -> false)
                  in
                  let same_dim_sub (r : Ast.ref_) =
                    r.Ast.base <> arr
                    || (match List.nth_opt r.Ast.args dim with
                       | Some (Ast.Elem e') -> Aff.const_diff e' e = Some 0
                       | _ -> false)
                  in
                  match Aff.const_diff (subst_var j rj.Ast.lo e) gn with
                  | Some 0
                    when step_one
                         && List.for_all same_dim_sub (Ast.refs_of f.Ir.f_rhs) ->
                      let with_range r =
                        {
                          st with
                          Ir.s =
                            Ir.Forall
                              {
                                f with
                                Ir.f_vars =
                                  List.map
                                    (fun (v, r0) -> if v = j then (v, r) else (v, r0))
                                    f.Ir.f_vars;
                              };
                        }
                      in
                      Some
                        ( with_range { rj with Ast.hi = rj.Ast.lo; st = None },
                          with_range
                            {
                              rj with
                              Ast.lo = Ast.bin Ast.Add rj.Ast.lo (Ast.int_lit 1);
                              st = None;
                            } )
                  | _ -> None)
              | _ -> None)
          | None -> None)
      | _ -> None)
  | _ -> None

(* One-step lookahead on a DO loop whose body begins with a split
   multicast of a slice that moves with the loop variable (gauss's
   pivot column): issue step k+1's multicast during step k's update, so
   its latency overlaps the bulk computation.  The issue for the first
   step moves in front of the loop (guarded on the loop tripping at
   all); the in-body issue for [v + step] is guarded on a next
   iteration existing; the wait stays at the top of the body.  The
   in-body issue goes after the {e last} statement that may write the
   next slice — fissioned, when possible, so only the slice-writing
   head iteration precedes it — and everything left between the issue
   and the loop's back edge must be provably communication-free. *)
let rec lookahead_stmts stmts = List.concat_map lookahead_stmt stmts

and lookahead_stmt st =
  match st.Ir.s with
  | Ir.Do_loop { var; range; body } -> (
      let body = lookahead_stmts body in
      let keep = [ { st with Ir.s = Ir.Do_loop { var; range; body } } ] in
      match try_lookahead st ~var ~range body with
      | Some (prologue, body) ->
          [ prologue; { st with Ir.s = Ir.Do_loop { var; range; body } } ]
      | None -> keep)
  | Ir.While_loop { cond; body } ->
      [ { st with Ir.s = Ir.While_loop { cond; body = lookahead_stmts body } } ]
  | Ir.If_block { arms; els } ->
      [
        {
          st with
          Ir.s =
            Ir.If_block
              {
                arms = List.map (fun (c, ss) -> (c, lookahead_stmts ss)) arms;
                els = lookahead_stmts els;
              };
        };
      ]
  | _ -> [ st ]

and try_lookahead loop_st ~var ~range body =
  match body with
  | { Ir.s = Ir.Comm_issue sp; _ } :: ({ Ir.s = Ir.Comm_wait spw; _ } as wait_st) :: rest
    when sp.Ir.sp_hid = spw.Ir.sp_hid
         && sp.Ir.sp_guard = Ir.Sg_always
         && spw.Ir.sp_guard = Ir.Sg_always -> (
      match sp.Ir.sp_comm.Ir.hc with
      | Ir.Multicast { arr; dim; g; temp } -> (
          let step =
            match range.Ast.st with
            | None -> Some 1
            | Some s -> ( match s.Ast.e with Ast.Int_lit n when n <> 0 -> Some n | _ -> None)
          in
          match step with
          | Some stp when List.mem var (Ast.vars_of g) ->
              let written, unsafe = written_of rest in
              let forbidden =
                S.add var
                  (S.union (S.of_list (Ast.vars_of g))
                     (S.union
                        (S.of_list (Ast.vars_of range.Ast.hi))
                        (match range.Ast.st with
                        | Some s -> S.of_list (Ast.vars_of s)
                        | None -> S.empty)))
              in
              if unsafe || not (S.is_empty (S.inter written forbidden)) then None
              else begin
                let gn = subst_var var (Ast.bin Ast.Add (Ast.var var) (Ast.int_lit stp)) g in
                let stmts = Array.of_list rest in
                let n = Array.length stmts in
                let lb = ref (-1) in
                Array.iteri (fun i s -> if writes_slice ~arr ~dim ~gn s then lb := i) stmts;
                (* first index from which everything to the loop's end is
                   provably communication-free *)
                let cf = ref n in
                (let i = ref (n - 1) in
                 while !i >= 0 && comm_free stmts.(!i) do
                   cf := !i;
                   decr i
                 done);
                let issue guard g' =
                  {
                    loop_st with
                    Ir.s =
                      Ir.Comm_issue
                        {
                          sp with
                          Ir.sp_comm =
                            { sp.Ir.sp_comm with Ir.hc = Ir.Multicast { arr; dim; g = g'; temp } };
                          sp_guard = guard;
                        };
                  }
                in
                let issue_next = issue (Ir.Sg_next { var; range }) gn in
                let seg a b = Array.to_list (Array.sub stmts a (b - a)) in
                let rebuilt =
                  if !lb >= 0 && !cf <= !lb + 1 then
                    (* the last blocker is followed only by comm-free
                       statements: fission it if we can, else slot the
                       issue right after it *)
                    match try_fission ~arr ~dim ~gn stmts.(!lb) with
                    | Some (b1, b2) ->
                        Some (seg 0 !lb @ [ b1; issue_next; b2 ] @ seg (!lb + 1) n)
                    | None -> Some (seg 0 (!lb + 1) @ [ issue_next ] @ seg (!lb + 1) n)
                  else if !lb < 0 && !cf = 0 then
                    (* nothing in the body writes the next slice and the
                       whole body is comm-free: issue immediately *)
                    Some (issue_next :: Array.to_list stmts)
                  else None
                in
                match rebuilt with
                | Some tail ->
                    let prologue =
                      issue (Ir.Sg_trip range) (subst_var var range.Ast.lo g)
                    in
                    Some (prologue, wait_st :: tail)
                | None -> None
              end
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pass driver                                                         *)
(* ------------------------------------------------------------------ *)

(* Statement provenance (sid, sloc) is preserved: passes rewrite the
   node, never the identity. *)
let rec map_stmt f (st : Ir.stmt) =
  let node =
    match st.Ir.s with
    | Ir.Forall fo -> Ir.Forall (f fo)
    | Ir.Do_loop { var; range; body } ->
        Ir.Do_loop { var; range; body = List.map (map_stmt f) body }
    | Ir.While_loop { cond; body } ->
        Ir.While_loop { cond; body = List.map (map_stmt f) body }
    | Ir.If_block { arms; els } ->
        Ir.If_block
          {
            arms = List.map (fun (c, ss) -> (c, List.map (map_stmt f) ss)) arms;
            els = List.map (map_stmt f) els;
          }
    | s -> s
  in
  { st with Ir.s = node }

let apply flags (ir : Ir.program_ir) =
  let units =
    List.map
      (fun (name, u) ->
        let counter = ref 0 in
        let on_forall fo =
          let fo =
            if flags.shift_union then { fo with Ir.f_pre = union_shifts fo.Ir.f_pre } else fo
          in
          let fo = { fo with Ir.f_pre = set_fusion flags.fuse_mshift fo.Ir.f_pre } in
          if flags.schedule_reuse then key_schedules u.Ir.u_env ~unit_name:name counter fo
          else fo
        in
        let body = List.map (map_stmt on_forall) u.Ir.u_body in
        let body = if flags.hoist_comm then hoist_stmts body else body in
        let body = if flags.coalesce then coalesce_stmts body else body in
        let body =
          if flags.split_comm then begin
            let hid = ref 0 in
            let body = split_stmts hid ~do_body:false body in
            let body = if flags.lookahead then lookahead_stmts body else body in
            refuse_stmts body
          end
          else body
        in
        (name, { u with Ir.u_body = body }))
      ir.Ir.p_units
  in
  { ir with Ir.p_units = units }
