open F90d_base
open Effect
open Effect.Deep

open F90d_trace

type config = {
  nprocs : int;
  model : Model.t;
  topology : Topology.t;
  tracing : bool;
  poll : (unit -> unit) option;
}

let config ?(model = Model.ideal) ?(topology = Topology.Full) ?(tracing = false) ?poll nprocs =
  if nprocs < 1 then Diag.bug "engine: nprocs %d < 1" nprocs;
  (match Topology.validate topology ~nprocs with
  | Some msg -> Diag.error "engine: %s" msg
  | None -> ());
  { nprocs; model; topology; tracing; poll }

exception Deadlock of string

(* Shared machine state, laid out so that a rank's fiber slice only ever
   touches rank-private slots: clocks.(me), rank_stats.(me) and
   outboxes.(me).  Mailboxes are sharded by destination rank and keyed by
   (src, tag) channel; they are mutated exclusively by the (sequential)
   scheduler when it drains outboxes and pops messages for delivery, so
   the same state supports both the sequential and the domain-parallel
   engine without locks on the data path.

   Mailbox memory is O(active channels), not O(channels ever used): a
   channel's queue is detached from the table the moment its last
   buffered message is consumed and parked on a free list for the next
   channel to reuse, so a 4096-rank broadcast leaves no per-rank residue
   once delivered. *)
type shared = {
  cfg : config;
  geom : Topology.geom;
  (* topology geometry resolved once per machine; [hops] on the send
     path must not redo an O(sqrt P) side search per message *)
  clocks : float array;
  mail : (int * int, Message.t Queue.t) Hashtbl.t array;
  (* mail.(dest): (src, tag) -> FIFO of undelivered messages *)
  outboxes : (int * Message.t) Queue.t array;
  (* outboxes.(src): (dest, msg) sends not yet moved into a mailbox *)
  mutable free_queues : Message.t Queue.t list;
  (* drained channel queues, recycled by [channel]; touched only by the
     scheduler/coordinator, like the mailboxes themselves *)
  touched_scratch : bool array;
  (* per-destination dedup flags for [drain_outbox]; scheduler-private,
     always all-false between calls *)
  rank_stats : Stats.rank array;
  traces : Trace.handle array;
  (* traces.(me): rank-private event recorder (all Trace.disabled when
     cfg.tracing is off, making every recording call a no-op) *)
  cur_sid : int array;
  cur_loc : Loc.t array;
  (* cur_sid.(me)/cur_loc.(me): provenance of the statement rank [me] is
     currently executing — maintained even when tracing is off so that
     Deadlock diagnostics can name the source line each rank is stuck
     on.  Rank-private, like the clocks. *)
  outstanding : handle list array;
  (* outstanding.(me): issued-but-unwaited receive handles, newest first.
     Rank-private; read by [finish] for Deadlock diagnostics. *)
}

(* A posted (nonblocking) receive.  The message itself stays in the
   mailbox until [wait] consumes it through the same Wait_recv effect a
   blocking receive uses, so channel FIFO pairing — and therefore
   bit-identity between engines — is unaffected by splitting.  Only the
   cost accounting changes: latency that elapsed between [h_posted] and
   the wait is counted as hidden rather than charged as blocking time. *)
and handle = {
  h_src : int;
  h_tag : int;
  h_posted : float;
  h_sid : int;
  h_loc : Loc.t;
  mutable h_done : bool;
}

type ctx = { me : int; sh : shared }

type _ Effect.t += Wait_recv : (int * int * int) -> Message.t Effect.t
(* (dest, src, tag): suspend until a matching message is in the mailbox *)

let rank ctx = ctx.me
let nprocs ctx = ctx.sh.cfg.nprocs
let model ctx = ctx.sh.cfg.model
let time ctx = ctx.sh.clocks.(ctx.me)
let rank_stats ctx = ctx.sh.rank_stats.(ctx.me)
let trace ctx = ctx.sh.traces.(ctx.me)
let live_channels ctx = Hashtbl.length ctx.sh.mail.(ctx.me)

let set_stmt ctx ~sid ~loc =
  ctx.sh.cur_sid.(ctx.me) <- sid;
  ctx.sh.cur_loc.(ctx.me) <- loc;
  Trace.set_stmt ctx.sh.traces.(ctx.me) ~sid

let current_stmt ctx = (ctx.sh.cur_sid.(ctx.me), ctx.sh.cur_loc.(ctx.me))

let advance ctx dt =
  if dt < 0. then Diag.bug "engine: negative time advance";
  ctx.sh.clocks.(ctx.me) <- ctx.sh.clocks.(ctx.me) +. dt;
  Trace.computed ctx.sh.traces.(ctx.me) dt

let charge_flops ctx n = advance ctx (float_of_int n *. (model ctx).Model.flop)
let charge_iops ctx n = advance ctx (float_of_int n *. (model ctx).Model.iop)
let charge_copy_bytes ctx n = advance ctx (float_of_int n *. (model ctx).Model.memcpy)

let channel sh ~dest key =
  let box = sh.mail.(dest) in
  match Hashtbl.find_opt box key with
  | Some q -> q
  | None ->
      let q =
        match sh.free_queues with
        | q :: rest ->
            sh.free_queues <- rest;
            q
        | [] -> Queue.create ()
      in
      Hashtbl.add box key q;
      q

let send ?parts ctx ~dest ~tag payload =
  let sh = ctx.sh in
  if dest < 0 || dest >= sh.cfg.nprocs then Diag.bug "engine: send to rank %d" dest;
  let bytes = Message.payload_bytes payload in
  let m = sh.cfg.model in
  (* blocking csend: the sender is busy for startup + transfer (charged
     directly, not through [advance], so traced compute time counts only
     computation) *)
  let t0 = time ctx in
  sh.clocks.(ctx.me) <- t0 +. m.Model.alpha +. (float_of_int bytes *. m.Model.beta);
  let hops = Topology.geom_hops sh.geom ctx.me dest in
  let arrival = time ctx +. (float_of_int (max 0 (hops - 1)) *. m.Model.hop) in
  Stats.record_send ~tag sh.rank_stats.(ctx.me) ~bytes;
  Trace.send ?parts sh.traces.(ctx.me) ~t0 ~t1:(time ctx) ~dest ~tag ~bytes ~arrival;
  Queue.add (dest, { Message.src = ctx.me; tag; payload; bytes; arrival }) sh.outboxes.(ctx.me)

(* Hand a just-arrived message onward without occupying the CPU: the
   message system forwards it as soon as the data is available
   ([from_t] — normally the arrival time of the message being relayed),
   the way interrupt-driven broadcast forwarding behaves on the real
   machines.  The relaying rank's clock is untouched; link startup and
   transfer time are paid on the relay timeline instead.  Returns the
   time the outgoing link falls idle so chained relays (one node
   forwarding to several children) serialize on it.  Message counts,
   bytes and per-channel send order are recorded exactly as for
   {!send}. *)
let relay ctx ~from_t ~dest ~tag payload =
  let sh = ctx.sh in
  if dest < 0 || dest >= sh.cfg.nprocs then Diag.bug "engine: relay to rank %d" dest;
  let bytes = Message.payload_bytes payload in
  let m = sh.cfg.model in
  let t1 = from_t +. m.Model.alpha +. (float_of_int bytes *. m.Model.beta) in
  let hops = Topology.geom_hops sh.geom ctx.me dest in
  let arrival = t1 +. (float_of_int (max 0 (hops - 1)) *. m.Model.hop) in
  Stats.record_send ~tag sh.rank_stats.(ctx.me) ~bytes;
  Trace.send ~relay:true sh.traces.(ctx.me) ~t0:from_t ~t1 ~dest ~tag ~bytes ~arrival;
  Queue.add (dest, { Message.src = ctx.me; tag; payload; bytes; arrival }) sh.outboxes.(ctx.me);
  t1

(* Cooperative cancellation: the poll hook (when configured) runs inside
   the calling fiber, so raising from it unwinds that rank's node program
   like any other node failure — the scheduler keeps delivering until no
   runnable fiber remains, worker domains are joined, and [finish]
   re-raises the poll's exception.  Called at every receive point and by
   the interpreter once per statement. *)
let check_cancel ctx = match ctx.sh.cfg.poll with Some f -> f () | None -> ()

let recv ctx ~src ~tag =
  check_cancel ctx;
  let msg = perform (Wait_recv (ctx.me, src, tag)) in
  let sh = ctx.sh in
  let before = time ctx in
  if msg.Message.arrival > before then begin
    Stats.record_wait sh.rank_stats.(ctx.me) (msg.Message.arrival -. before);
    sh.clocks.(ctx.me) <- msg.Message.arrival
  end;
  Trace.recv sh.traces.(ctx.me) ~t0:before ~t1:(time ctx) ~src ~tag ~arrival:msg.Message.arrival;
  msg

(* Split-phase receive.  [irecv] only records the post time (and the
   posting statement's provenance); no effect is performed, so the fiber
   never suspends at issue.  [wait] suspends on the same (src, tag)
   channel a blocking receive would, charges only the wait that remains
   at the wait site, and books the latency the program overlapped —
   max(0, arrival - posted) - charged wait — as hidden. *)
let irecv ctx ~src ~tag =
  let sh = ctx.sh in
  if src < 0 || src >= sh.cfg.nprocs then Diag.bug "engine: irecv from rank %d" src;
  let h =
    {
      h_src = src;
      h_tag = tag;
      h_posted = time ctx;
      h_sid = sh.cur_sid.(ctx.me);
      h_loc = sh.cur_loc.(ctx.me);
      h_done = false;
    }
  in
  sh.outstanding.(ctx.me) <- h :: sh.outstanding.(ctx.me);
  h

let wait ctx h =
  check_cancel ctx;
  if h.h_done then Diag.bug "engine: wait on an already-completed handle";
  let msg = perform (Wait_recv (ctx.me, h.h_src, h.h_tag)) in
  let sh = ctx.sh in
  let before = time ctx in
  if msg.Message.arrival > before then begin
    Stats.record_wait sh.rank_stats.(ctx.me) (msg.Message.arrival -. before);
    sh.clocks.(ctx.me) <- msg.Message.arrival
  end;
  let hidden =
    Float.max 0. (msg.Message.arrival -. h.h_posted) -. (time ctx -. before)
  in
  if hidden > 0. then Stats.record_wait_hidden sh.rank_stats.(ctx.me) hidden;
  h.h_done <- true;
  sh.outstanding.(ctx.me) <- List.filter (fun h' -> h' != h) sh.outstanding.(ctx.me);
  Trace.recv ~posted:h.h_posted sh.traces.(ctx.me) ~t0:before ~t1:(time ctx) ~src:h.h_src
    ~tag:h.h_tag ~arrival:msg.Message.arrival;
  msg

type 'a report = {
  results : 'a array;
  elapsed : float;
  clocks : float array;
  stats : Stats.t;
  trace : Trace.t option;  (* Some iff cfg.tracing *)
}

type 'a fiber_state =
  | Not_started
  | Blocked of (int * int * int) * (Message.t, unit) continuation
  | Finished of 'a
  | Failed of exn * Printexc.raw_backtrace

let make_shared cfg =
  {
    cfg;
    geom = Topology.geom cfg.topology ~nprocs:cfg.nprocs;
    clocks = Array.make cfg.nprocs 0.;
    mail = Array.init cfg.nprocs (fun _ -> Hashtbl.create 8);
    outboxes = Array.init cfg.nprocs (fun _ -> Queue.create ());
    free_queues = [];
    touched_scratch = Array.make cfg.nprocs false;
    rank_stats = Array.init cfg.nprocs (fun _ -> Stats.rank_create ());
    traces =
      (if cfg.tracing then Array.init cfg.nprocs (fun me -> Trace.rank_create ~me)
       else Array.make cfg.nprocs Trace.disabled);
    cur_sid = Array.make cfg.nprocs 0;
    cur_loc = Array.make cfg.nprocs Loc.none;
    outstanding = Array.make cfg.nprocs [];
  }

(* Move rank [me]'s pending sends into the destination mailboxes, in send
   order (each channel has a single producer, so per-channel FIFO order is
   preserved no matter how slices interleave).  Returns the destination
   ranks that received mail, deduplicated in O(fan-out) with the shared
   scratch flags (a broadcast root drains thousands of sends in one
   call; a List.mem dedup would make that quadratic). *)
let drain_outbox sh me =
  let ob = sh.outboxes.(me) in
  let touched = ref [] in
  while not (Queue.is_empty ob) do
    let dest, msg = Queue.pop ob in
    Queue.add msg (channel sh ~dest (msg.Message.src, msg.Message.tag));
    if not sh.touched_scratch.(dest) then begin
      sh.touched_scratch.(dest) <- true;
      touched := dest :: !touched
    end
  done;
  List.iter (fun dest -> sh.touched_scratch.(dest) <- false) !touched;
  !touched

let take sh (dest, src, tag) =
  let box = sh.mail.(dest) in
  let key = (src, tag) in
  match Hashtbl.find_opt box key with
  | Some q when not (Queue.is_empty q) ->
      let msg = Queue.pop q in
      if Queue.is_empty q then begin
        (* drop the drained channel so mailbox memory tracks the number
           of channels with data in flight, and park the queue for reuse *)
        Hashtbl.remove box key;
        sh.free_queues <- q :: sh.free_queues
      end;
      Some msg
  | _ -> None

(* Run one slice of rank [me]: from [thunk] until the fiber blocks on
   Wait_recv, returns or raises.  The deep handler owns states.(me). *)
let handler states me =
  {
    retc = (fun v -> states.(me) <- Finished v);
    exnc = (fun e -> states.(me) <- Failed (e, Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Wait_recv key ->
            Some (fun (k : (a, unit) continuation) -> states.(me) <- Blocked (key, k))
        | _ -> None);
  }

(* At 4096 ranks an exhaustive deadlock report would enumerate thousands
   of blocked ranks (and a root's mailbox can hold thousands of pending
   channels); cap both lists and say how much was elided.  Small machines
   still get the full detail. *)
let deadlock_max_ranks = 8
let deadlock_max_channels = 8

let finish (sh : shared) states =
  (* Propagate the first failure, if any. *)
  Array.iteri
    (fun _ st ->
      match st with
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | _ -> ())
    states;
  let all_done =
    Array.for_all (function Finished _ | Failed _ -> true | _ -> false) states
  in
  if not all_done then begin
    (* Diagnosable without a debugger: alongside the awaited (src, tag)
       channel, show what actually IS pending in the blocked rank's
       mailbox, so tag or source mismatches are visible in the message. *)
    let pending_of me =
      let all =
        Hashtbl.fold
          (fun (src, tag) q acc ->
            if Queue.is_empty q then acc else (src, tag, Queue.length q) :: acc)
          sh.mail.(me) []
        |> List.sort compare
      in
      let shown, elided =
        if List.length all <= deadlock_max_channels then (all, 0)
        else (List.filteri (fun i _ -> i < deadlock_max_channels) all,
              List.length all - deadlock_max_channels)
      in
      List.map
        (fun (src, tag, n) ->
          if n = 1 then Printf.sprintf "(src=%d,tag=%d)" src tag
          else Printf.sprintf "(src=%d,tag=%d)x%d" src tag n)
        shown
      @ (if elided > 0 then [ Printf.sprintf "... +%d more channels" elided ] else [])
    in
    let stmt_of me =
      (* Name the statement the rank is stuck inside when provenance is
         available (sid 0 = engine internals / epilogue before any
         statement ran). *)
      let sid = sh.cur_sid.(me) and loc = sh.cur_loc.(me) in
      if sid = 0 && loc.Loc.line = 0 then ""
      else Printf.sprintf " at %s (stmt %d)" (Loc.file_line loc) sid
    in
    let issued_of me =
      (* Issued-but-unwaited split-phase receives: a rank stuck with
         handles outstanding usually means a wait was sunk past the point
         that should have consumed it. *)
      match sh.outstanding.(me) with
      | [] -> ""
      | hs ->
          List.rev_map
            (fun h ->
              Printf.sprintf "(src=%d,tag=%d, issued at stmt %d)" h.h_src h.h_tag h.h_sid)
            hs
          |> String.concat " "
          |> Printf.sprintf ", issued-unwaited %s"
    in
    let blocked_keys =
      Array.to_seq states
      |> Seq.filter_map (function Blocked (key, _) -> Some key | _ -> None)
      |> List.of_seq
    in
    let total = List.length blocked_keys in
    let detailed =
      if total <= deadlock_max_ranks then blocked_keys
      else List.filteri (fun i _ -> i < deadlock_max_ranks) blocked_keys
    in
    let blocked =
      List.map
        (fun (me, src, tag) ->
          Printf.sprintf "p%d waiting on (src=%d,tag=%d)%s, mailbox has %s%s" me src tag
            (stmt_of me)
            (match pending_of me with [] -> "nothing" | l -> String.concat " " l)
            (issued_of me))
        detailed
      @
      if total > deadlock_max_ranks then
        [ Printf.sprintf "... and %d more blocked ranks" (total - deadlock_max_ranks) ]
      else []
    in
    raise (Deadlock (String.concat "; " blocked))
  end;
  let results =
    Array.map
      (function
        | Finished v -> v
        | Not_started | Blocked _ | Failed _ -> Diag.bug "engine: unfinished fiber after run")
      states
  in
  let elapsed = Array.fold_left Float.max 0. sh.clocks in
  let trace =
    if sh.cfg.tracing then Some (Trace.merge ~clocks:sh.clocks sh.traces) else None
  in
  { results; elapsed; clocks = Array.copy sh.clocks; stats = Stats.merge sh.rank_stats; trace }

(* Ready-queue scheduler: only runnable fibers are ever visited.  A rank
   is enqueued when it has not started, or when it is blocked on a
   channel that just received mail; after each slice the scheduler
   drains the rank's outbox and re-examines exactly the touched
   destinations (plus the rank itself, whose awaited message may already
   be sitting in its mailbox from an earlier drain).  Total scheduling
   work is O(starts + messages), independent of how many of the P fibers
   are finished or idle — the old full-array round-robin re-scan was
   O(P) per delivery and O(P^2) per simulated step at scale.

   Scheduling order differs from the round-robin engine, but reports
   cannot: each channel is a single-producer single-consumer exact-match
   FIFO, so which message a receive consumes — and therefore every
   clock, stat and result, all rank-private — is a function of the node
   programs alone, not of visit order. *)
let run cfg main =
  let sh = make_shared cfg in
  let states = Array.make cfg.nprocs Not_started in
  let queued = Array.make cfg.nprocs false in
  let ready = Queue.create () in
  let push me =
    if not queued.(me) then begin
      queued.(me) <- true;
      Queue.add me ready
    end
  in
  (* A blocked rank becomes ready when its awaited channel has mail. *)
  let consider me =
    match states.(me) with
    | Blocked ((dest, src, tag), _) -> (
        match Hashtbl.find_opt sh.mail.(dest) (src, tag) with
        | Some q when not (Queue.is_empty q) -> push me
        | _ -> ())
    | Not_started | Finished _ | Failed _ -> ()
  in
  for me = 0 to cfg.nprocs - 1 do
    push me
  done;
  while not (Queue.is_empty ready) do
    let me = Queue.pop ready in
    queued.(me) <- false;
    (match states.(me) with
    | Not_started ->
        let ctx = { me; sh } in
        match_with (fun () -> main ctx) () (handler states me)
    | Blocked (key, k) -> (
        match take sh key with
        | Some msg ->
            (* the fiber's original deep handler updates [states.(me)] *)
            continue k msg
        | None -> ())
    | Finished _ | Failed _ -> ());
    let touched = drain_outbox sh me in
    List.iter consider touched;
    (* not redundant with [touched]: the message this rank now awaits may
       have been delivered while it was still running its slice *)
    consider me
  done;
  finish sh states

(* ------------------------------------------------------------------ *)
(* Domain-parallel execution                                           *)
(* ------------------------------------------------------------------ *)

(* A minimal blocking queue: the only synchronization in the parallel
   engine.  Pushes and pops establish the happens-before edges that make
   a rank's private slots (clocks, stats, outbox, fiber state) visible to
   the coordinator after each slice and back. *)
module Bqueue = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t x =
    Mutex.lock t.m;
    Queue.add x t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let x = Queue.pop t.q in
    Mutex.unlock t.m;
    x
end

type job = Slice of (unit -> unit) | Stop

(* Loosely synchronous SPMD execution (§2, §8): between communication
   points node programs are independent, so each slice — resume until the
   fiber blocks on a receive or finishes — runs on a pool of worker
   domains.  The coordinator alone moves messages from outboxes into the
   sharded mailboxes and decides which blocked fiber a message unblocks;
   like the sequential scheduler it is event-driven, re-examining only
   the completed rank and the destinations its drain touched.  Channels
   are exact-match (src, tag) FIFOs with a single producer and a single
   consumer, so every receive consumes the same message as under the
   sequential engine regardless of slice interleaving; clocks and
   statistics are rank-private; hence reports are bit-identical. *)
let run_parallel ?jobs cfg main =
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  if jobs <= 1 || cfg.nprocs <= 1 then run cfg main
  else begin
    let sh = make_shared cfg in
    let states = Array.make cfg.nprocs Not_started in
    let tasks = Bqueue.create () in
    let completions = Bqueue.create () in
    let nworkers = min jobs cfg.nprocs in
    let worker () =
      let rec loop () =
        match Bqueue.pop tasks with
        | Stop -> ()
        | Slice f ->
            f ();
            loop ()
      in
      loop ()
    in
    let domains = Array.init nworkers (fun _ -> Domain.spawn worker) in
    let running = Array.make cfg.nprocs false in
    let in_flight = ref 0 in
    let dispatch me f =
      running.(me) <- true;
      incr in_flight;
      Bqueue.push tasks
        (Slice
           (fun () ->
             f ();
             Bqueue.push completions me))
    in
    let consider me =
      if not running.(me) then
        match states.(me) with
        | Blocked (key, k) -> (
            match take sh key with
            | Some msg -> dispatch me (fun () -> continue k msg)
            | None -> ())
        | _ -> ()
    in
    for me = 0 to cfg.nprocs - 1 do
      let ctx = { me; sh } in
      dispatch me (fun () -> match_with (fun () -> main ctx) () (handler states me))
    done;
    while !in_flight > 0 do
      let me = Bqueue.pop completions in
      running.(me) <- false;
      decr in_flight;
      let touched = drain_outbox sh me in
      consider me;
      List.iter (fun dest -> if dest <> me then consider dest) touched
    done;
    for _ = 1 to nworkers do
      Bqueue.push tasks Stop
    done;
    Array.iter Domain.join domains;
    finish sh states
  end
