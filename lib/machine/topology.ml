open F90d_base

type t = Hypercube | Mesh | Full

let name = function Hypercube -> "hypercube" | Mesh -> "mesh" | Full -> "full"

(* Mesh: nodes arranged in a near-square 2D grid, row-major. *)
let mesh_side_uncached nprocs =
  let rec find s = if s * s >= nprocs then s else find (s + 1) in
  find 1

(* One-entry memo: the side search is O(sqrt nprocs), and callers that
   bypass {!geom} (tests, ad-hoc probes) ask about the same machine size
   over and over.  Reads and writes of an immutable pair are atomic, so
   concurrent domains at worst recompute. *)
let mesh_side_cache = ref (0, 0)

let mesh_side nprocs =
  let n, side = !mesh_side_cache in
  if n = nprocs then side
  else begin
    let side = mesh_side_uncached nprocs in
    mesh_side_cache := (nprocs, side);
    side
  end

(* Pre-resolved geometry: everything [hops] needs that depends only on
   (topology, nprocs), computed once per machine instead of per message. *)
type geom = { g_topo : t; g_side : int }

let geom t ~nprocs =
  { g_topo = t; g_side = (match t with Mesh -> mesh_side nprocs | Hypercube | Full -> 0) }

let geom_hops g a b =
  if a = b then 0
  else
    match g.g_topo with
    | Full -> 1
    | Hypercube -> Util.popcount (a lxor b)
    | Mesh ->
        let side = g.g_side in
        abs ((a mod side) - (b mod side)) + abs ((a / side) - (b / side))

let hops t ~nprocs a b = geom_hops (geom t ~nprocs) a b

(* Hypercube distances are XOR popcounts, which only measure the real
   machine when every node id is a corner of the cube — i.e. nprocs is a
   power of two.  On 12 "nodes" the formula silently yields distances of
   a 16-node cube with 4 missing corners. *)
let validate t ~nprocs =
  match t with
  | Hypercube when not (Util.is_pow2 nprocs) ->
      Some
        (Printf.sprintf
           "a %d-node hypercube does not exist (nprocs must be a power of two; nearest are %d and %d)"
           nprocs
           (1 lsl (Util.ilog2 nprocs))
           (1 lsl (Util.ilog2 nprocs + 1)))
  | Hypercube | Mesh | Full -> None

(* Per-dimension Gray coding: coordinate c_d of log2(dims d) bits becomes
   gray(c_d); bit fields are concatenated in dimension order.  Adjacent
   coordinates along any dimension then differ in exactly one node bit. *)
let grid_embedding t ~nprocs dims =
  match t with
  | Mesh | Full -> None
  | Hypercube ->
      let total = Array.fold_left ( * ) 1 dims in
      if total <> nprocs || not (Array.for_all Util.is_pow2 dims) then None
      else
        let bits = Array.map Util.ilog2 dims in
        let n = total in
        let phys = Array.make n 0 in
        for rank = 0 to n - 1 do
          (* decode column-major coordinates, then pack gray fields *)
          let r = ref rank and node = ref 0 and shift = ref 0 in
          Array.iteri
            (fun d extent ->
              let c = !r mod extent in
              r := !r / extent;
              node := !node lor (Util.gray c lsl !shift);
              shift := !shift + bits.(d))
            dims;
          phys.(rank) <- !node
        done;
        Some phys
