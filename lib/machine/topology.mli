(** Interconnect topologies: hop counts between physical nodes and
    logical-grid embeddings (the φ of stage 3).

    The paper's machines are binary hypercubes; grids whose extents are all
    powers of two embed by per-dimension Gray coding, making grid
    neighbours physical neighbours.  [Full] models an ideal crossbar. *)

type t = Hypercube | Mesh | Full

type geom
(** Geometry pre-resolved for one (topology, nprocs) pair: the mesh side
    search and any other size-derived quantity run once, at
    {!F90d_machine.Engine.config} time, instead of per message. *)

val geom : t -> nprocs:int -> geom

val geom_hops : geom -> int -> int -> int
(** Network distance between two physical node ids under a pre-resolved
    geometry — the per-message hot path. *)

val hops : t -> nprocs:int -> int -> int -> int
(** Network distance between two physical node ids (>= 1 for distinct
    nodes, 0 for self).  Convenience form of {!geom_hops}; the mesh side
    is memoized per machine size, so casual callers stay O(1) too. *)

val validate : t -> nprocs:int -> string option
(** [Some msg] when the machine cannot exist — today only a hypercube
    whose nprocs is not a power of two, where the XOR-popcount metric
    would silently report distances of a larger cube. *)

val grid_embedding : t -> nprocs:int -> int array -> int array option
(** [grid_embedding topo ~nprocs dims] is the [phys_of_rank] permutation
    for a logical grid with extents [dims] covering [nprocs] nodes, or
    [None] for the identity (no better embedding available). *)

val name : t -> string
