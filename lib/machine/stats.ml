(* Each simulated processor accumulates into its own [rank] collector, so
   node programs running concurrently on real domains never share a
   mutable statistics record; [merge] folds the collectors into the
   read-only per-run view the harness and the tests consume. *)

type rank = {
  mutable r_messages : int;
  mutable r_bytes : int;
  mutable r_recv_wait : float;
  mutable r_recv_wait_hidden : float;
  r_by_tag : (int, int * int) Hashtbl.t;
  mutable r_sched_builds : int;
  mutable r_sched_hits : int;
  mutable r_kernel_runs : int;
  mutable r_kernel_fallbacks : int;
  mutable r_kernel_blocked : int;
}

type t = {
  messages : int;
  bytes : int;
  recv_wait : float;
  recv_wait_hidden : float;
  (* latency that a split-phase receive absorbed between issue and wait:
     the message was in flight that long while the receiver kept
     computing, so it never surfaced in [recv_wait] *)
  per_rank_messages : int array;
  per_rank_bytes : int array;
  by_tag : (int, int * int) Hashtbl.t;
  sched_builds : int;
  sched_hits : int;
  kernel_runs : int;
  kernel_fallbacks : int;
  kernel_blocked : int;
}

let rank_create () =
  {
    r_messages = 0;
    r_bytes = 0;
    r_recv_wait = 0.;
    r_recv_wait_hidden = 0.;
    r_by_tag = Hashtbl.create 16;
    r_sched_builds = 0;
    r_sched_hits = 0;
    r_kernel_runs = 0;
    r_kernel_fallbacks = 0;
    r_kernel_blocked = 0;
  }

let record_send ?(tag = 0) r ~bytes =
  r.r_messages <- r.r_messages + 1;
  r.r_bytes <- r.r_bytes + bytes;
  let m, b = Option.value (Hashtbl.find_opt r.r_by_tag tag) ~default:(0, 0) in
  Hashtbl.replace r.r_by_tag tag (m + 1, b + bytes)

let record_wait r dt = r.r_recv_wait <- r.r_recv_wait +. dt
let record_wait_hidden r dt = r.r_recv_wait_hidden <- r.r_recv_wait_hidden +. dt
let record_sched_build r = r.r_sched_builds <- r.r_sched_builds + 1
let record_sched_hit r = r.r_sched_hits <- r.r_sched_hits + 1
let record_kernel_run r = r.r_kernel_runs <- r.r_kernel_runs + 1
let record_kernel_fallback r = r.r_kernel_fallbacks <- r.r_kernel_fallbacks + 1
let record_kernel_blocked r n = r.r_kernel_blocked <- r.r_kernel_blocked + n

let merge ranks =
  let by_tag = Hashtbl.create 16 in
  let messages = ref 0 and bytes = ref 0 and recv_wait = ref 0. in
  let hidden = ref 0. in
  let builds = ref 0 and hits = ref 0 in
  let kruns = ref 0 and kfalls = ref 0 and kblocked = ref 0 in
  Array.iter
    (fun r ->
      messages := !messages + r.r_messages;
      bytes := !bytes + r.r_bytes;
      recv_wait := !recv_wait +. r.r_recv_wait;
      hidden := !hidden +. r.r_recv_wait_hidden;
      builds := !builds + r.r_sched_builds;
      hits := !hits + r.r_sched_hits;
      kruns := !kruns + r.r_kernel_runs;
      kfalls := !kfalls + r.r_kernel_fallbacks;
      kblocked := !kblocked + r.r_kernel_blocked;
      Hashtbl.iter
        (fun tag (m, b) ->
          let m0, b0 = Option.value (Hashtbl.find_opt by_tag tag) ~default:(0, 0) in
          Hashtbl.replace by_tag tag (m0 + m, b0 + b))
        r.r_by_tag)
    ranks;
  {
    messages = !messages;
    bytes = !bytes;
    recv_wait = !recv_wait;
    recv_wait_hidden = !hidden;
    per_rank_messages = Array.map (fun r -> r.r_messages) ranks;
    per_rank_bytes = Array.map (fun r -> r.r_bytes) ranks;
    by_tag;
    sched_builds = !builds;
    sched_hits = !hits;
    kernel_runs = !kruns;
    kernel_fallbacks = !kfalls;
    kernel_blocked = !kblocked;
  }

let per_tag t =
  Hashtbl.fold (fun tag mb acc -> (tag, mb) :: acc) t.by_tag []
  |> List.sort (fun (t1, _) (t2, _) -> compare t1 t2)

(* message tags are namespaced by hundreds (see F90d_runtime.Tags) *)
let tag_family tag = tag / 100 * 100

let breakdown t ~name_of =
  let fams = Hashtbl.create 8 in
  Hashtbl.iter
    (fun tag (m, b) ->
      let f = tag_family tag in
      let m0, b0 = Option.value (Hashtbl.find_opt fams f) ~default:(0, 0) in
      Hashtbl.replace fams f (m0 + m, b0 + b))
    t.by_tag;
  Hashtbl.fold (fun f (m, b) acc -> (name_of f, m, b) :: acc) fams []
  |> List.sort (fun (_, m1, _) (_, m2, _) -> compare m2 m1)

let pp ppf t =
  Format.fprintf ppf "messages=%d bytes=%d recv_wait=%.6fs" t.messages t.bytes t.recv_wait

(* The canonical export of a run's totals to the fleet-metrics layer:
   one (Prometheus family name, value) pair per counter.  The serve
   telemetry accumulates these into its registry after every run, and
   builds its counter set from this list — adding a field here is the
   single step that adds the family everywhere. *)
let metric_families t =
  [
    ("f90d_sim_messages_total", "simulated messages sent", float_of_int t.messages);
    ("f90d_sim_bytes_total", "simulated bytes sent", float_of_int t.bytes);
    ("f90d_sim_recv_wait_seconds_total", "simulated time receivers spent blocked", t.recv_wait);
    ( "f90d_sim_recv_wait_hidden_seconds_total",
      "simulated receive latency overlapped with compute by split-phase comms",
      t.recv_wait_hidden );
    ("f90d_sched_builds_total", "PARTI inspector schedules built", float_of_int t.sched_builds);
    ("f90d_sched_hits_total", "PARTI schedule-cache hits", float_of_int t.sched_hits);
    ("f90d_kernel_runs_total", "FORALL nests executed by the node kernel layer", float_of_int t.kernel_runs);
    ( "f90d_kernel_fallbacks_total",
      "FORALL nests that fell back to the tree interpreter",
      float_of_int t.kernel_fallbacks );
    ( "f90d_kernel_blocked_loops_total",
      "kernel nests executed through the blocked/fused fast path",
      float_of_int t.kernel_blocked );
  ]

let empty = merge [||]
