(** Per-run communication and computation statistics, used by the
    benchmark harness and by tests that assert message counts (e.g. that
    schedule reuse removes preprocessing messages).

    Recording is sharded: each simulated processor owns a private {!rank}
    collector (written only by that processor's fiber, so the parallel
    engine needs no locking around statistics), and the engine {!merge}s
    the collectors into the read-only totals record {!t} when the run
    completes.

    Sends are also accounted per message-tag family so benches can print
    a breakdown by communication primitive. *)

type rank
(** One processor's private statistics collector. *)

type t = {
  messages : int;
  bytes : int;
  recv_wait : float;  (** total time receivers spent blocked *)
  recv_wait_hidden : float;
      (** latency absorbed between issue and wait of split-phase receives
          — time the message spent in flight while the receiver kept
          computing, which a blocking receive would have charged to
          [recv_wait] *)
  per_rank_messages : int array;
  per_rank_bytes : int array;
  by_tag : (int, int * int) Hashtbl.t;  (** tag -> (messages, bytes) *)
  sched_builds : int;  (** inspector schedules built (see {!F90d_runtime.Schedule}) *)
  sched_hits : int;  (** schedule-cache hits *)
  kernel_runs : int;  (** FORALL nests executed by the node kernel layer *)
  kernel_fallbacks : int;  (** nests the kernel layer handed back to the interpreter *)
  kernel_blocked : int;  (** nests that went through the blocked/fused fast path *)
}

val rank_create : unit -> rank
val record_send : ?tag:int -> rank -> bytes:int -> unit
val record_wait : rank -> float -> unit
val record_wait_hidden : rank -> float -> unit
val record_sched_build : rank -> unit
val record_sched_hit : rank -> unit
val record_kernel_run : rank -> unit
val record_kernel_fallback : rank -> unit

val record_kernel_blocked : rank -> int -> unit
(** Count [n] blocked/fused loop nests (a single kernel run may execute
    several tiles but counts once, with the nest granularity chosen by
    the caller). *)

val merge : rank array -> t
(** Fold per-processor collectors (indexed by physical rank) into the
    per-run totals. *)

val per_tag : t -> (int * (int * int)) list
(** [(tag, (messages, bytes))] sorted by tag — a canonical form for
    equality checks between runs. *)

val breakdown : t -> name_of:(int -> string) -> (string * int * int) list
(** (family name, messages, bytes) per tag family (tags grouped by
    hundreds, matching the runtime's namespace), most messages first. *)

val pp : Format.formatter -> t -> unit

val metric_families : t -> (string * string * float) list
(** The run's totals as [(Prometheus family name, help, value)] rows —
    the canonical contract between a finished run and the fleet-metrics
    layer ([f90d_sim_messages_total], [f90d_sim_bytes_total],
    [f90d_sim_recv_wait_seconds_total],
    [f90d_sim_recv_wait_hidden_seconds_total], [f90d_sched_builds_total],
    [f90d_sched_hits_total]).  Consumers build their counter set from
    this list, so a new [t] field propagates by adding one row here. *)

val empty : t
(** An all-zero totals record ([merge] of no ranks) — the family list of
    [metric_families empty] names every family at value 0. *)
