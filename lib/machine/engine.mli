(** The simulated distributed-memory MIMD machine.

    [run config node_main] executes one fiber per processor (OCaml effect
    handlers provide the blocking-receive suspension).  Each processor has
    a virtual clock: computation advances it explicitly ({!advance},
    {!charge_flops}, ...), a send charges the sender
    [alpha + bytes*beta], and a message becomes consumable at
    [sender-completion + hop * (hops-1)]; a receive completes at
    [max(local clock, arrival)].

    Sends are asynchronous and buffered (csend-style); receives match
    exactly on (source, tag) in FIFO order, so simulations are
    deterministic.  If every unfinished fiber is blocked on a receive that
    can never be satisfied the engine raises {!Deadlock}. *)

type config = {
  nprocs : int;
  model : Model.t;
  topology : Topology.t;
  tracing : bool;
  poll : (unit -> unit) option;
      (** cooperative-cancellation hook, called inside node fibers at
          every receive point (and by the interpreter per statement);
          raise from it to abort the run — the engine unwinds every
          fiber, joins its worker domains and re-raises *)
}

val config :
  ?model:Model.t -> ?topology:Topology.t -> ?tracing:bool -> ?poll:(unit -> unit) -> int -> config
(** Defaults: {!Model.ideal}, [Full] crossbar, tracing off, no poll hook.
    With [~tracing:true] every send, receive, collective span and compute
    charge is recorded into per-rank {!F90d_trace.Trace} buffers and the
    merged trace is returned in the report; with tracing off every
    recording call is a no-op and the run is unchanged.

    The (topology, nprocs) pair is validated here ({!Topology.validate})
    — a hypercube whose nprocs is not a power of two raises
    [F90d_base.Diag.Error] instead of silently simulating wrong hop
    counts — and the topology geometry is resolved once, so per-message
    routing does no size-dependent work. *)

type ctx
(** A processor's view of the machine, passed to node programs. *)

exception Deadlock of string
(** The payload lists, for every blocked processor, the awaited
    [(src, tag)] channel, the source [file:line] and statement id the
    rank was executing (when the node program supplied provenance via
    {!set_stmt}), the channels actually pending in its mailbox {e and}
    any issued-but-unwaited split-phase handles (channel plus issuing
    statement id) — enough to diagnose tag/source mismatches and lost
    waits from the message alone.

    At scale the report is bounded rather than exhaustive: at most 8
    blocked ranks are detailed (suffixed ["... and N more blocked
    ranks"]) and at most 8 pending channels are shown per mailbox
    (suffixed ["... +N more channels"]); small machines still get the
    full detail. *)

(** {2 Node-program API} *)

val rank : ctx -> int
(** Physical node id in [0 .. nprocs-1]. *)

val nprocs : ctx -> int
val model : ctx -> Model.t
val time : ctx -> float
(** This processor's virtual clock, seconds. *)

val send : ?parts:(int * int) array -> ctx -> dest:int -> tag:int -> Message.payload -> unit
(** [parts], when given, tags the traced event with a (member sid,
    member bytes) split for coalesced batch messages; the engine still
    charges and counts exactly one message. *)

val recv : ctx -> src:int -> tag:int -> Message.t

val relay : ctx -> from_t:float -> dest:int -> tag:int -> Message.payload -> float
(** Forward a just-arrived message without occupying the CPU: the
    transfer runs on the message system's timeline starting at [from_t]
    (the relayed message's arrival, or the link-idle time a previous
    relay returned), modelling interrupt-driven forwarding.  The
    caller's clock
    is not advanced; returns the time the outgoing link falls idle so
    consecutive relays can serialize on it.  Counted and traced exactly
    like a {!send}. *)

type handle
(** A posted (split-phase) receive — see {!irecv}/{!wait}. *)

val irecv : ctx -> src:int -> tag:int -> handle
(** Post a nonblocking receive on the (src, tag) channel.  Costs nothing
    and never suspends; it records the post time and the posting
    statement's provenance.  The message is consumed by the matching
    {!wait} — through the same exact-match FIFO a blocking {!recv} uses,
    so splitting a receive never changes which message it pairs with. *)

val wait : ctx -> handle -> Message.t
(** Complete a posted receive: suspend until the message is deliverable,
    charge only the wait remaining at the wait site (clock advances to
    the arrival if it is still in the future) and account the latency
    that elapsed since {!irecv} as [recv_wait_hidden].  Waits on one
    channel must be issued in the same order as their irecvs.  Waiting
    twice on a handle is a bug. *)

val advance : ctx -> float -> unit
(** Charge raw seconds of local computation. *)

val charge_flops : ctx -> int -> unit
val charge_iops : ctx -> int -> unit
val charge_copy_bytes : ctx -> int -> unit

val rank_stats : ctx -> Stats.rank
(** This processor's private statistics collector (the run-time system
    records schedule-cache builds/hits through it). *)

val live_channels : ctx -> int
(** Number of (src, tag) channels currently holding undelivered messages
    in this processor's mailbox.  Drained channels are dropped from the
    table eagerly, so this is the sparse-mailbox invariant made
    observable: after a completed broadcast it returns to 0 no matter
    how many ranks took part.  A debugging/test probe — meaningful from
    inside a node program only under the sequential engine (the
    parallel coordinator may be mid-drain elsewhere). *)

val trace : ctx -> F90d_trace.Trace.handle
(** This processor's private trace recorder ({!F90d_trace.Trace.disabled}
    when the config has tracing off).  The run-time system and the
    interpreter record collective/inspector/compute spans through it. *)

val set_stmt : ctx -> sid:int -> loc:F90d_base.Loc.t -> unit
(** Declare the statement this processor is about to execute.  The pair
    is kept per rank even when tracing is off (it names the stuck source
    line in {!Deadlock} payloads) and, when tracing is on, stamps every
    subsequent trace event with [sid] until the next call. *)

val current_stmt : ctx -> int * F90d_base.Loc.t
(** The provenance last declared with {!set_stmt} —
    [(0, Loc.none)] initially. *)

val check_cancel : ctx -> unit
(** Run the config's poll hook, if any.  The interpreter calls this once
    per statement so a request-timeout can interrupt long computations
    between communication points; {!recv} and {!wait} call it
    themselves. *)

(** {2 Driving the machine} *)

type 'a report = {
  results : 'a array;  (** per-processor return values *)
  elapsed : float;  (** max over final clocks: parallel execution time *)
  clocks : float array;
  stats : Stats.t;
  trace : F90d_trace.Trace.t option;  (** [Some] iff the config enables tracing *)
}

val run : config -> (ctx -> 'a) -> 'a report
(** Runs the SPMD program to completion.  Any exception raised by a node
    program is re-raised after the machine stops; unsatisfiable receives
    raise {!Deadlock}.

    Scheduling is event-driven: a ready queue holds exactly the fibers
    that can make progress (not yet started, or blocked on a channel
    that has mail), so scheduler work is O(slices + messages) and
    independent of how many of the P fibers are finished or idle.
    Visit order differs from a round-robin scan, but every channel is a
    single-producer single-consumer exact-match FIFO and all clocks and
    statistics are rank-private, so the report is a function of the
    node programs alone. *)

val run_parallel : ?jobs:int -> config -> (ctx -> 'a) -> 'a report
(** Like {!run}, but executes fiber slices — from resume until the fiber
    blocks on a receive or finishes — on a pool of [jobs] worker domains
    ([Domain.recommended_domain_count] by default; [jobs <= 1] falls back
    to {!run}).  A sequential coordinator performs all message delivery
    and unblocking decisions, and every (src, tag) channel is an
    exact-match FIFO with one producer and one consumer, so the report
    (results, [elapsed], [clocks], [stats]) is bit-identical to the
    sequential engine's. *)
