type triplet = { llb : int; lub : int; lst : int }

let set_bound dad ~dim ~rank ~glb ~gub ~gst =
  let d = (Dad.dims dad).(dim) in
  let layout = Dad.layout_at dad ~dim ~rank in
  match Layout.set_bound layout ~glb:(glb - d.Dad.flb) ~gub:(gub - d.Dad.flb) ~gst with
  | None -> None
  | Some (llb, lub, lst) -> Some { llb; lub; lst }

let full_range dad ~dim ~rank =
  let d = (Dad.dims dad).(dim) in
  set_bound dad ~dim ~rank ~glb:d.Dad.flb ~gub:(d.Dad.flb + d.Dad.extent - 1) ~gst:1

let global_of_local_index dad ~dim ~rank l =
  let d = (Dad.dims dad).(dim) in
  Layout.global_of_local (Dad.layout_at dad ~dim ~rank) l + d.Dad.flb

let local_of_global_index dad ~dim ~rank g =
  let d = (Dad.dims dad).(dim) in
  let layout = Dad.layout_at dad ~dim ~rank in
  let a0 = g - d.Dad.flb in
  if Layout.is_owned layout a0 then Some (Layout.local_of_global layout a0) else None

let iterations = function
  | None -> 0
  | Some { lst = 0; _ } -> invalid_arg "Bounds.iterations: zero stride"
  | Some { llb; lub; lst } when lst > 0 -> if lub < llb then 0 else ((lub - llb) / lst) + 1
  | Some { llb; lub; lst } -> if lub > llb then 0 else ((llb - lub) / -lst) + 1
