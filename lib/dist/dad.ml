open F90d_base

type dim = {
  flb : int;
  extent : int;
  align : Affine.t;
  dist : Distrib.t;
  pdim : int option;
  mutable ghost_lo : int;
  mutable ghost_hi : int;
}

type t = {
  name : string;
  kind : Scalar.kind;
  grid : Grid.t;
  dims : dim array;
  cache : (int * int, Layout.t) Hashtbl.t;  (* (dim, coord) -> layout *)
  (* one-entry memo of a whole rank's layouts, one per dimension: almost
     every query is for the fiber's own rank, and element accesses make
     one per subscript — the tuple-keyed table above is too slow there *)
  mutable lr_rank : int;
  mutable lr_layouts : Layout.t array;
}

let make ~name ~kind ~grid dims =
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun d ->
      match d.pdim with
      | None -> ()
      | Some p ->
          if p < 0 || p >= Grid.ndims grid then
            Diag.bug "dad %s: grid dimension %d out of range" name p;
          if Hashtbl.mem seen p then
            Diag.bug "dad %s: two dimensions distributed over grid dim %d" name p;
          Hashtbl.add seen p ())
    dims;
  { name; kind; grid; dims; cache = Hashtbl.create 16; lr_rank = -1; lr_layouts = [||] }

let replicated_dim ~flb ~extent =
  {
    flb;
    extent;
    align = Affine.ident;
    dist = Distrib.make Replicated ~n:(max extent 1) ~p:1;
    pdim = None;
    ghost_lo = 0;
    ghost_hi = 0;
  }

let dist_dim form ?(align = Affine.ident) ?tn ~flb ~extent ~pdim ~p () =
  let tn =
    match tn with
    | Some n -> n
    | None -> max 1 (max (Affine.eval align 0) (Affine.eval align (extent - 1)) + 1)
  in
  { flb; extent; align; dist = Distrib.make form ~n:tn ~p; pdim = Some pdim; ghost_lo = 0; ghost_hi = 0 }

let block_dim ?align ?tn ~flb ~extent ~pdim ~p () =
  dist_dim Distrib.Block ?align ?tn ~flb ~extent ~pdim ~p ()

let cyclic_dim ?align ?tn ~flb ~extent ~pdim ~p () =
  dist_dim Distrib.Cyclic ?align ?tn ~flb ~extent ~pdim ~p ()

let name t = t.name
let kind t = t.kind
let grid t = t.grid
let dims t = t.dims
let rank t = Array.length t.dims
let is_replicated t = Array.for_all (fun d -> d.pdim = None) t.dims
let global_extents t = Array.map (fun d -> d.extent) t.dims
let global_size t = Array.fold_left (fun acc d -> acc * d.extent) 1 t.dims
let elem_bytes t = match t.kind with Scalar.Kreal -> 8 | _ -> 4

(* layouts are queried in every local-bounds computation; memoise them *)
let layout t ~dim ~coord =
  let key = (dim, coord) in
  match Hashtbl.find_opt t.cache key with
  | Some l -> l
  | None ->
      let d = t.dims.(dim) in
      let l = Layout.resolve d.dist ~align:d.align ~extent:d.extent ~proc:coord in
      Hashtbl.add t.cache key l;
      l

let coord_of ~t ~rank dim_idx =
  let d = t.dims.(dim_idx) in
  match d.pdim with
  | None -> 0
  | Some p -> (Grid.coords_of_rank t.grid rank).(p)

let layouts_at t ~rank =
  if t.lr_rank = rank then t.lr_layouts
  else begin
    let ls =
      Array.init (Array.length t.dims) (fun dim -> layout t ~dim ~coord:(coord_of ~t ~rank dim))
    in
    t.lr_rank <- rank;
    t.lr_layouts <- ls;
    ls
  end

let layout_at t ~dim ~rank = (layouts_at t ~rank).(dim)

let local_counts t ~rank =
  Array.mapi (fun i _ -> Layout.count (layout_at t ~dim:i ~rank)) t.dims

let alloc_local t ~rank =
  let counts = local_counts t ~rank in
  let extents =
    Array.mapi (fun i c -> c + t.dims.(i).ghost_lo + t.dims.(i).ghost_hi) counts
  in
  let lb = Array.map (fun d -> -d.ghost_lo) t.dims in
  Ndarray.create t.kind ~lb extents

let zero_based t idx = Array.mapi (fun i g -> g - t.dims.(i).flb) idx

let owner_coords t idx =
  let coords = Array.make (Grid.ndims t.grid) 0 in
  Array.iteri
    (fun i d ->
      match d.pdim with
      | None -> ()
      | Some p ->
          let a0 = idx.(i) - d.flb in
          coords.(p) <- Distrib.owner d.dist (Affine.eval d.align a0))
    t.dims;
  coords

let home_rank t idx = Grid.rank_of_coords t.grid (owner_coords t idx)

let owning_ranks t idx =
  let base = owner_coords t idx in
  (* grid dims not used by this array replicate the element *)
  let used = Array.make (Grid.ndims t.grid) false in
  Array.iter (fun d -> match d.pdim with Some p -> used.(p) <- true | None -> ()) t.dims;
  let rec expand dim acc =
    if dim >= Grid.ndims t.grid then List.map (Grid.rank_of_coords t.grid) acc
    else if used.(dim) then expand (dim + 1) acc
    else
      let acc =
        List.concat_map
          (fun coords ->
            List.init (Grid.dims t.grid).(dim) (fun c ->
                let coords = Array.copy coords in
                coords.(dim) <- c;
                coords))
          acc
      in
      expand (dim + 1) acc
  in
  expand 0 [ base ]

let is_local t ~rank idx =
  let rec go i =
    i >= Array.length t.dims
    || (Layout.is_owned (layout_at t ~dim:i ~rank) (idx.(i) - t.dims.(i).flb) && go (i + 1))
  in
  go 0

let local_indices t ~rank idx =
  let n = Array.length t.dims in
  let out = Array.make n 0 in
  let rec go i =
    if i >= n then Some out
    else
      let l = layout_at t ~dim:i ~rank in
      let a0 = idx.(i) - t.dims.(i).flb in
      if Layout.is_owned l a0 then begin
        out.(i) <- Layout.local_of_global l a0;
        go (i + 1)
      end
      else None
  in
  go 0

let global_of_local t ~rank lidx =
  Array.mapi
    (fun i l -> Layout.global_of_local (layout_at t ~dim:i ~rank) l + t.dims.(i).flb)
    lidx

let storage_flat t ~rank lidx =
  let counts = local_counts t ~rank in
  let off = ref 0 and stride = ref 1 in
  Array.iteri
    (fun d c ->
      let ghost_lo = t.dims.(d).ghost_lo and ghost_hi = t.dims.(d).ghost_hi in
      let pos = lidx.(d) + ghost_lo in
      if pos < 0 || pos >= c + ghost_lo + ghost_hi then
        Diag.bug "dad %s: local index %d out of storage in dim %d" t.name lidx.(d) (d + 1);
      off := !off + (pos * !stride);
      stride := !stride * (c + ghost_lo + ghost_hi))
    counts;
  !off

let iter_local t ~rank f =
  let counts = local_counts t ~rank in
  let nd = Array.length counts in
  let total = Array.fold_left ( * ) 1 counts in
  if total > 0 then begin
    let lidx = Array.make nd 0 in
    for _ = 1 to total do
      f (global_of_local t ~rank lidx) lidx;
      let rec bump d =
        if d < nd then
          if lidx.(d) < counts.(d) - 1 then lidx.(d) <- lidx.(d) + 1
          else begin
            lidx.(d) <- 0;
            bump (d + 1)
          end
      in
      bump 0
    done
  end

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>DAD %s %a(" t.name Scalar.pp_kind t.kind;
  Array.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_string ppf ", ";
      Format.fprintf ppf "%d:%d %s%s" d.flb
        (d.flb + d.extent - 1)
        (Distrib.form_name d.dist.form)
        (match d.pdim with Some p -> Printf.sprintf "@p%d" p | None -> ""))
    t.dims;
  Format.fprintf ppf ") on %a@]" Grid.pp t.grid
