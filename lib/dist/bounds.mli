(** The paper's [set_BOUND] primitive lifted to DAD dimensions (§4).

    Given a global computation range in Fortran indices of an array
    dimension, compute each processor's local triplet — masking inactive
    processors by returning [None]. *)

type triplet = { llb : int; lub : int; lst : int }

val set_bound :
  Dad.t -> dim:int -> rank:int -> glb:int -> gub:int -> gst:int -> triplet option
(** Local (0-based storage, ghost-offset excluded) bounds on [rank] of the
    global Fortran range [glb:gub:gst] over dimension [dim]. *)

val full_range : Dad.t -> dim:int -> rank:int -> triplet option
(** [set_bound] over the whole declared dimension. *)

val global_of_local_index : Dad.t -> dim:int -> rank:int -> int -> int
(** Fortran global index corresponding to a local position — the
    [global_to_local]⁻¹ used inside generated loops. *)

val local_of_global_index : Dad.t -> dim:int -> rank:int -> int -> int option
(** The generated code's [global_to_local]: storage position of a global
    Fortran index if owned by [rank]. *)

val iterations : triplet option -> int
(** Number of local iterations a triplet yields (0 for [None]; correct for
    ascending and descending strides alike).
    @raise Invalid_argument on a zero stride. *)
