(* Own splitmix64 stream: the fuzzer's programs must be reproducible from
   a seed across OCaml releases, which Stdlib.Random does not promise. *)

type t = { mutable s : int64 }

let make seed = { s = Int64.of_int seed }

let next t =
  t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
  let z = t.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

(* inclusive *)
let range t lo hi = lo + int t (hi - lo + 1)
let bool t = Int64.logand (next t) 1L = 1L

(* true with probability [pct]/100 *)
let chance t pct = int t 100 < pct
let pick t arr = arr.(int t (Array.length arr))
let pickl t l = List.nth l (int t (List.length l))
