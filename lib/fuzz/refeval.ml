(* Plain sequential reference evaluator.

   Executes the *normalized* AST (the same statement stream the compiler
   lowers) over global arrays with no distribution, no communication and
   no processors.  Semantics deliberately mirror the SPMD interpreter
   element for element — same elemental intrinsics ([Interp.apply_elemental]),
   same scalar coercions ([Ndarray.set_flat] truncation), same reduction
   operators ([Redop.scalar]) — so a generated program has exactly one
   bit-exact answer and any difference against [Driver.run] is a compiler
   or runtime bug, not numeric noise.

   FORALL is executed with true evaluate-all-then-store semantics: every
   (mask, index, value) triple is computed against the pre-statement
   state before any element is written. *)

open F90d_base
open F90d_frontend
open F90d_runtime

type result = {
  r_output : string;
  r_finals : (string * Ndarray.t) list;
  r_scalars : (string * Scalar.t) list;
}

exception Return_unwind

type st = {
  env : Sema.unit_env;
  arrays : (string, Ndarray.t) Hashtbl.t;
  scalars : (string, Scalar.t ref) Hashtbl.t;
  out : Buffer.t;
}

let kind_of_decl = function
  | Ast.Integer -> Scalar.Kint
  | Ast.Real -> Scalar.Kreal
  | Ast.Logical -> Scalar.Klog

(* global array matching an array_spec: Fortran lower bounds, full extents *)
let alloc_array (spec : Sema.array_spec) =
  let lb = Array.map (fun d -> d.Sema.sflb) spec.Sema.sdims in
  let extents = Array.map (fun d -> d.Sema.sext) spec.Sema.sdims in
  Ndarray.create (kind_of_decl spec.Sema.skind) ~lb extents

let is_array st name = Hashtbl.mem st.arrays name
let array_of st name = Hashtbl.find st.arrays name

let coerce kind v =
  match kind with
  | Scalar.Kint -> Scalar.Int (Scalar.to_int v)
  | Scalar.Kreal -> Scalar.Real (Scalar.to_real v)
  | Scalar.Klog -> Scalar.Log (Scalar.to_bool v)
  | Scalar.Kstr -> v

(* fvals: FORALL loop variables in scope, as in the interpreter's frame *)
let rec eval st (fvals : (string * int) list) (e : Ast.expr) : Scalar.t =
  match e.Ast.e with
  | Ast.Int_lit n -> Scalar.Int n
  | Ast.Real_lit r -> Scalar.Real r
  | Ast.Log_lit b -> Scalar.Log b
  | Ast.Str_lit s -> Scalar.Str s
  | Ast.Var v -> (
      match List.assoc_opt v fvals with
      | Some g -> Scalar.Int g
      | None -> (
          match Hashtbl.find_opt st.scalars v with
          | Some r -> !r
          | None -> (
              match List.assoc_opt v st.env.Sema.uparams with
              | Some s -> s
              | None -> Diag.error ~loc:e.Ast.loc "undefined variable '%s'" v)))
  | Ast.Un (Ast.Neg, a) -> Scalar.neg (eval st fvals a)
  | Ast.Un (Ast.Not, a) -> Scalar.not_ (eval st fvals a)
  | Ast.Bin (op, a, b) -> (
      let x = eval st fvals a in
      (* same short-circuit as the interpreter *)
      match (op, x) with
      | Ast.And, Scalar.Log false -> Scalar.Log false
      | Ast.Or, Scalar.Log true -> Scalar.Log true
      | _ ->
          let y = eval st fvals b in
          let f =
            match op with
            | Ast.Add -> Scalar.add
            | Ast.Sub -> Scalar.sub
            | Ast.Mul -> Scalar.mul
            | Ast.Div -> Scalar.div
            | Ast.Pow -> Scalar.pow
            | Ast.Eq -> Scalar.cmp_eq
            | Ast.Ne -> Scalar.cmp_ne
            | Ast.Lt -> Scalar.cmp_lt
            | Ast.Le -> Scalar.cmp_le
            | Ast.Gt -> Scalar.cmp_gt
            | Ast.Ge -> Scalar.cmp_ge
            | Ast.And -> Scalar.and_
            | Ast.Or -> Scalar.or_
          in
          f x y)
  | Ast.Ref r -> eval_ref st fvals e.Ast.loc r

and eval_ref st fvals loc (r : Ast.ref_) =
  let elem_args () =
    List.map
      (function
        | Ast.Elem x -> x
        | Ast.Range _ -> Diag.error ~loc "unexpected array section")
      r.Ast.args
  in
  if Intrinsic_names.is_elemental r.Ast.base && not (is_array st r.Ast.base) then
    F90d_exec.Interp.apply_elemental r.Ast.base loc
      (List.map (eval st fvals) (elem_args ()))
  else if Intrinsic_names.is_transformational r.Ast.base && not (is_array st r.Ast.base) then
    eval_transformational st fvals loc r
  else if is_array st r.Ast.base then
    let g =
      Array.of_list (List.map (fun e -> Scalar.to_int (eval st fvals e)) (elem_args ()))
    in
    Ndarray.get (array_of st r.Ast.base) g
  else Diag.error ~loc "unknown function or array '%s'" r.Ast.base

and eval_transformational st fvals loc (r : Ast.ref_) =
  let args =
    List.map
      (function
        | Ast.Elem x -> x
        | Ast.Range _ -> Diag.error ~loc "array section argument for %s" r.Ast.base)
      r.Ast.args
  in
  let whole_array (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Var v when is_array st v -> array_of st v
    | _ -> Diag.error ~loc "%s expects a whole array argument" r.Ast.base
  in
  let fold op nd =
    let acc = ref (Redop.identity op (Ndarray.kind nd)) in
    for i = 0 to Ndarray.size nd - 1 do
      acc := Redop.scalar op !acc (Ndarray.get_flat nd i)
    done;
    !acc
  in
  let spec_of v =
    match Sema.array_spec st.env v with
    | Some s -> s
    | None -> Diag.error ~loc "'%s' is not an array" v
  in
  match (r.Ast.base, args) with
  | ("SUM" | "PRODUCT" | "MAXVAL" | "MINVAL" | "ALL" | "ANY"), [ a ] ->
      let op =
        match r.Ast.base with
        | "SUM" -> Redop.Sum
        | "PRODUCT" -> Redop.Prod
        | "MAXVAL" -> Redop.Max
        | "MINVAL" -> Redop.Min
        | "ALL" -> Redop.And
        | _ -> Redop.Or
      in
      fold op (whole_array a)
  | "COUNT", [ a ] ->
      let nd = whole_array a in
      let n = ref 0 in
      for i = 0 to Ndarray.size nd - 1 do
        if Scalar.to_bool (Ndarray.get_flat nd i) then incr n
      done;
      Scalar.Int !n
  | ("DOT_PRODUCT" | "DOTPRODUCT"), [ a; b ] ->
      (* the runtime accumulates in a float, whatever the element kinds *)
      let x = whole_array a and y = whole_array b in
      let acc = ref 0. in
      for i = 0 to Ndarray.size x - 1 do
        acc := !acc +. (Scalar.to_real (Ndarray.get_flat x i) *. Scalar.to_real (Ndarray.get_flat y i))
      done;
      Scalar.Real !acc
  | ("MAXLOC" | "MINLOC"), [ a ] ->
      let nd = whole_array a in
      if Ndarray.rank nd <> 1 then
        Diag.error ~loc "%s is supported for rank-1 arrays (assign to a scalar)" r.Ast.base;
      let better = if r.Ast.base = "MAXLOC" then Scalar.cmp_gt else Scalar.cmp_lt in
      let name = match args with [ { Ast.e = Ast.Var v; _ } ] -> v | _ -> assert false in
      let flb = (spec_of name).Sema.sdims.(0).Sema.sflb in
      let best = ref (Ndarray.get_flat nd 0) and at = ref 0 in
      for i = 1 to Ndarray.size nd - 1 do
        let v = Ndarray.get_flat nd i in
        (* strict improvement only: ties keep the first occurrence, the
           runtime's global_flat tie-break *)
        if Scalar.to_bool (better v !best) then begin
          best := v;
          at := i
        end
      done;
      Scalar.Int (flb + !at)
  | "SIZE", [ a ] -> Scalar.Int (Ndarray.size (whole_array a))
  | "SIZE", [ a; d ] ->
      let name = match a.Ast.e with Ast.Var v -> v | _ -> Diag.error ~loc "SIZE argument" in
      let dim = Scalar.to_int (eval st fvals d) in
      Scalar.Int (spec_of name).Sema.sdims.(dim - 1).Sema.sext
  | "LBOUND", [ a; d ] ->
      let name = match a.Ast.e with Ast.Var v -> v | _ -> Diag.error ~loc "LBOUND argument" in
      let dim = Scalar.to_int (eval st fvals d) in
      Scalar.Int (spec_of name).Sema.sdims.(dim - 1).Sema.sflb
  | "UBOUND", [ a; d ] ->
      let name = match a.Ast.e with Ast.Var v -> v | _ -> Diag.error ~loc "UBOUND argument" in
      let dim = Scalar.to_int (eval st fvals d) in
      let sd = (spec_of name).Sema.sdims.(dim - 1) in
      Scalar.Int (sd.Sema.sflb + sd.Sema.sext - 1)
  | _ -> Diag.error ~loc "unsupported use of intrinsic %s" r.Ast.base

(* ------------------------------------------------------------------ *)
(* Movers (whole-array intrinsic assignments)                          *)
(* ------------------------------------------------------------------ *)

(* Fortran metadata of a global array: per-dim (flb, extent) *)
let dims_of nd spec =
  ignore nd;
  Array.map (fun d -> (d.Sema.sflb, d.Sema.sext)) spec.Sema.sdims

let iter_indices dims f =
  let rank = Array.length dims in
  let idx = Array.map fst dims in
  let n = Array.fold_left (fun acc (_, e) -> acc * e) 1 dims in
  for _ = 1 to n do
    f (Array.copy idx);
    let rec bump d =
      if d < rank then begin
        let flb, e = dims.(d) in
        if idx.(d) < flb + e - 1 then idx.(d) <- idx.(d) + 1
        else begin
          idx.(d) <- flb;
          bump (d + 1)
        end
      end
    in
    bump 0
  done

let exec_mover st ~target ~(call : Ast.ref_) loc =
  let args =
    List.map
      (function
        | Ast.Elem x -> x
        | Ast.Range _ -> Diag.error ~loc "array section argument for %s" call.Ast.base)
      call.Ast.args
  in
  let arr_name (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Var v when is_array st v -> v
    | _ -> Diag.error ~loc "%s expects whole-array arguments" call.Ast.base
  in
  let int_arg e = Scalar.to_int (eval st [] e) in
  let tspec =
    match Sema.array_spec st.env target with
    | Some s -> s
    | None -> Diag.error ~loc "'%s' is not an array" target
  in
  let fresh_target () = alloc_array tspec in
  let shifted src_name ~dim ~shift ~circular ~boundary =
    let src = array_of st src_name in
    let spec = Option.get (Sema.array_spec st.env src_name) in
    let dims = dims_of src spec in
    let out = fresh_target () in
    let flb, e = dims.(dim) in
    iter_indices dims (fun g ->
        let p = g.(dim) - flb + shift in
        let v =
          if circular then begin
            let sg = Array.copy g in
            sg.(dim) <- flb + F90d_base.Util.modulo p e;
            Ndarray.get src sg
          end
          else if p >= 0 && p < e then begin
            let sg = Array.copy g in
            sg.(dim) <- flb + p;
            Ndarray.get src sg
          end
          else boundary
        in
        Ndarray.set out g v);
    out
  in
  let result =
    match (call.Ast.base, args) with
    | "CSHIFT", [ a; s ] ->
        shifted (arr_name a) ~dim:0 ~shift:(int_arg s) ~circular:true ~boundary:(Scalar.Int 0)
    | "CSHIFT", [ a; s; d ] ->
        shifted (arr_name a) ~dim:(int_arg d - 1) ~shift:(int_arg s) ~circular:true
          ~boundary:(Scalar.Int 0)
    | "EOSHIFT", [ a; s ] ->
        let src = array_of st (arr_name a) in
        shifted (arr_name a) ~dim:0 ~shift:(int_arg s) ~circular:false
          ~boundary:(Scalar.zero (Ndarray.kind src))
    | "EOSHIFT", [ a; s; b ] ->
        shifted (arr_name a) ~dim:0 ~shift:(int_arg s) ~circular:false ~boundary:(eval st [] b)
    | "EOSHIFT", [ a; s; b; d ] ->
        shifted (arr_name a) ~dim:(int_arg d - 1) ~shift:(int_arg s) ~circular:false
          ~boundary:(eval st [] b)
    | "TRANSPOSE", [ a ] ->
        let src = array_of st (arr_name a) in
        let spec = Option.get (Sema.array_spec st.env (arr_name a)) in
        let dims = dims_of src spec in
        let out = fresh_target () in
        iter_indices dims (fun g -> Ndarray.set out [| g.(1); g.(0) |] (Ndarray.get src g));
        out
    | _ -> Diag.error ~loc "intrinsic %s is not supported by the reference evaluator" call.Ast.base
  in
  Hashtbl.replace st.arrays target result

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec exec_stmt st (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Assign ({ Ast.e = Ast.Var v; _ }, rhs) when is_array st v -> (
      match rhs.Ast.e with
      | Ast.Ref call when Intrinsic_names.is_transformational call.Ast.base ->
          exec_mover st ~target:v ~call s.Ast.sloc
      | _ ->
          Diag.error ~loc:s.Ast.sloc
            "whole-array assignment to '%s' survived normalization" v)
  | Ast.Assign ({ Ast.e = Ast.Var v; _ }, rhs) -> (
      let value = eval st [] rhs in
      match Hashtbl.find_opt st.scalars v with
      | Some r ->
          let kind =
            match Sema.scalar_kind st.env v with
            | Some k -> kind_of_decl k
            | None -> Scalar.kind value
          in
          r := coerce kind value
      | None -> Hashtbl.replace st.scalars v (ref value))
  | Ast.Assign ({ Ast.e = Ast.Ref lhs; _ }, rhs) ->
      let value = eval st [] rhs in
      let g =
        List.map
          (function
            | Ast.Elem e -> Scalar.to_int (eval st [] e)
            | Ast.Range _ ->
                Diag.error ~loc:s.Ast.sloc "array section survived normalization")
          lhs.Ast.args
        |> Array.of_list
      in
      Ndarray.set (array_of st lhs.Ast.base) g value
  | Ast.Assign _ -> Diag.error ~loc:s.Ast.sloc "malformed assignment"
  | Ast.Forall (triplets, mask, body) -> List.iter (exec_forall st triplets mask) body
  | Ast.Where _ -> Diag.error ~loc:s.Ast.sloc "WHERE survived normalization"
  | Ast.Do (var, range, body) ->
      let lo = Scalar.to_int (eval st [] range.Ast.lo) in
      let hi = Scalar.to_int (eval st [] range.Ast.hi) in
      let stp =
        match range.Ast.st with Some e -> Scalar.to_int (eval st [] e) | None -> 1
      in
      if stp = 0 then Diag.error ~loc:s.Ast.sloc "zero DO stride";
      let cell =
        match Hashtbl.find_opt st.scalars var with
        | Some r -> r
        | None ->
            let r = ref (Scalar.Int lo) in
            Hashtbl.replace st.scalars var r;
            r
      in
      let i = ref lo in
      while (stp > 0 && !i <= hi) || (stp < 0 && !i >= hi) do
        cell := Scalar.Int !i;
        List.iter (exec_stmt st) body;
        i := !i + stp
      done
  | Ast.While (cond, body) ->
      while Scalar.to_bool (eval st [] cond) do
        List.iter (exec_stmt st) body
      done
  | Ast.If (arms, els) ->
      let rec go = function
        | [] -> List.iter (exec_stmt st) els
        | (c, body) :: rest ->
            if Scalar.to_bool (eval st [] c) then List.iter (exec_stmt st) body else go rest
      in
      go arms
  | Ast.Print args ->
      let line = Buffer.create 64 in
      List.iter
        (fun (e : Ast.expr) ->
          if Buffer.length line > 0 then Buffer.add_char line ' ';
          match e.Ast.e with
          | Ast.Var v when is_array st v ->
              Buffer.add_string line (Format.asprintf "%a" Ndarray.pp (array_of st v))
          | _ -> Buffer.add_string line (Format.asprintf "%a" Scalar.pp (eval st [] e)))
        args;
      Buffer.add_buffer st.out line;
      Buffer.add_char st.out '\n'
  | Ast.Return -> raise Return_unwind
  | Ast.Call _ -> Diag.error ~loc:s.Ast.sloc "CALL is not supported by the reference evaluator"

(* evaluate-all-then-store FORALL over the global arrays *)
and exec_forall st triplets mask (body_stmt : Ast.stmt) =
  let lhs, rhs =
    match body_stmt.Ast.s with
    | Ast.Assign ({ Ast.e = Ast.Ref r; _ }, rhs) -> (r, rhs)
    | _ -> Diag.error ~loc:body_stmt.Ast.sloc "FORALL body must be an assignment"
  in
  let ranges =
    List.map
      (fun (v, (rg : Ast.range)) ->
        let lo = Scalar.to_int (eval st [] rg.Ast.lo) in
        let hi = Scalar.to_int (eval st [] rg.Ast.hi) in
        let stp =
          match rg.Ast.st with Some e -> Scalar.to_int (eval st [] e) | None -> 1
        in
        if stp = 0 then Diag.error ~loc:body_stmt.Ast.sloc "zero FORALL stride";
        let n =
          if stp > 0 then max 0 (((hi - lo) / stp) + 1) else max 0 (((lo - hi) / -stp) + 1)
        in
        (v, Array.init n (fun k -> lo + (k * stp))))
      triplets
  in
  let target = array_of st lhs.Ast.base in
  let stores = ref [] in
  let rec iterate fvals = function
    | [] ->
        let fvals = List.rev fvals in
        let masked =
          match mask with
          | None -> false
          | Some m -> not (Scalar.to_bool (eval st fvals m))
        in
        if not masked then begin
          let v = eval st fvals rhs in
          let g =
            List.map
              (function
                | Ast.Elem e -> Scalar.to_int (eval st fvals e)
                | Ast.Range _ ->
                    Diag.error ~loc:body_stmt.Ast.sloc "lhs section survived normalization")
              lhs.Ast.args
            |> Array.of_list
          in
          stores := (g, v) :: !stores
        end
    | (v, values) :: rest ->
        Array.iter (fun gval -> iterate ((v, gval) :: fvals) rest) values
  in
  iterate [] ranges;
  List.iter (fun (g, v) -> Ndarray.set target g v) (List.rev !stores)

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let run ?(file = "<fuzz>") source =
  let ast = Parser.parse ~file source in
  let env = Sema.analyze ast in
  let unit_env = Sema.main_env env in
  let body = Normalize.normalize_unit unit_env ast.Ast.main.Ast.body in
  let st =
    {
      env = unit_env;
      arrays = Hashtbl.create 8;
      scalars = Hashtbl.create 8;
      out = Buffer.create 256;
    }
  in
  List.iter
    (fun (n, spec) -> Hashtbl.replace st.arrays n (alloc_array spec))
    unit_env.Sema.uarrays;
  List.iter
    (fun (n, k) -> Hashtbl.replace st.scalars n (ref (Scalar.zero (kind_of_decl k))))
    unit_env.Sema.uscalars;
  (try List.iter (exec_stmt st) body with Return_unwind -> ());
  let finals = List.map (fun (n, _) -> (n, array_of st n)) unit_env.Sema.uarrays in
  let scalars =
    Hashtbl.fold (fun n r acc -> (n, !r) :: acc) st.scalars []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { r_output = Buffer.contents st.out; r_finals = finals; r_scalars = scalars }
