(* Greedy structural shrinker.

   Transformations propose smaller variants of a failing program; a
   variant is accepted when the caller's predicate says it still fails.
   The predicate runs the reference evaluator first, so a transformation
   that breaks program validity (out-of-bounds subscript after an extent
   shrink, an index array read before its initialisation survived, ...)
   is simply rejected — no transformation needs its own bounds proof. *)

open Gen

(* every array name a statement mentions *)
let rec sub_arrays = function
  | Sind (v, _, _) -> [ v ]
  | Splus _ | Sminus _ | Stwo _ | Sconst _ -> []

and expr_arrays = function
  | L _ | F _ | V _ -> []
  | A (a, subs) -> a :: List.concat_map sub_arrays subs
  | B (_, x, y) -> expr_arrays x @ expr_arrays y
  | C (_, args) -> List.concat_map expr_arrays args

let rec aexpr_arrays = function
  | AA a -> [ a ]
  | ACst e -> expr_arrays e
  | AB (_, x, y) -> aexpr_arrays x @ aexpr_arrays y
  | AC (_, args) -> List.concat_map aexpr_arrays args

let rec stm_arrays = function
  | Forall { mask; lhs; lsubs; rhs; _ } ->
      lhs :: List.concat_map sub_arrays lsubs @ expr_arrays rhs
      @ (match mask with Some m -> expr_arrays m | None -> [])
  | Arr { lhs; rhs } -> lhs :: aexpr_arrays rhs
  | Sec { lhs; rhs; _ } -> [ lhs; rhs ]
  | Where { mask; lhs; rhs; els } ->
      (lhs :: aexpr_arrays mask) @ aexpr_arrays rhs
      @ (match els with Some e -> aexpr_arrays e | None -> [])
  | Mover { lhs; src; boundary; _ } ->
      [ lhs; src ] @ (match boundary with Some e -> expr_arrays e | None -> [])
  | Reduce { src; _ } -> [ src ]
  | SAssign (_, e) -> expr_arrays e
  | Elem { lhs; subs; rhs } -> lhs :: List.concat_map sub_arrays subs @ expr_arrays rhs
  | Do { body; _ } -> List.concat_map stm_arrays body
  | If { cond; then_; els } ->
      expr_arrays cond @ List.concat_map stm_arrays then_ @ List.concat_map stm_arrays els

(* immediate subterms: candidates for replacing an expression wholesale *)
let expr_children = function
  | B (_, x, y) -> [ x; y ]
  | C (_, args) -> args
  | _ -> []

let simpler_exprs e =
  expr_children e @ (match e with L 1 -> [] | _ -> [ L 1 ])

let simpler_sub = function
  | Splus (_, 0) -> []
  | Splus (v, _) -> [ Splus (v, 0) ]
  | Sminus (v, _) | Stwo (v, _) | Sind (_, v, _) -> [ Splus (v, 0) ]
  | Sconst 1 -> []
  | Sconst _ -> [ Sconst 1 ]

(* all one-step reductions of a statement (empty list = drop is the only move) *)
let rec stm_variants s =
  let at_pos l i f = List.mapi (fun j x -> if i = j then f x else [ x ]) l in
  let subs_variants subs rebuild =
    List.concat
      (List.mapi
         (fun i su ->
           List.map
             (fun su' -> rebuild (List.concat (at_pos subs i (fun _ -> [ su' ]))))
             (simpler_sub su))
         subs)
  in
  match s with
  | Forall f ->
      (match f.mask with Some _ -> [ Forall { f with mask = None } ] | None -> [])
      @ List.map (fun r -> Forall { f with rhs = r }) (simpler_exprs f.rhs)
      @ subs_variants f.lsubs (fun lsubs -> Forall { f with lsubs })
  | Arr a ->
      List.filter_map
        (function AA n -> Some (Arr { a with rhs = AA n }) | _ -> None)
        (match a.rhs with AB (_, x, y) -> [ x; y ] | AC (_, l) -> l | _ -> [])
  | Sec sec -> if sec.count > 2 then [ Sec { sec with count = 2 } ] else []
  | Where w -> (
      match w.els with
      | Some _ -> [ Where { w with els = None } ]
      | None -> [ Arr { lhs = w.lhs; rhs = w.rhs } ])
  | Mover m ->
      (if m.boundary <> None then [ Mover { m with boundary = None } ] else [])
      @ (if m.amount <> 1 && m.call <> "TRANSPOSE" then [ Mover { m with amount = 1 } ] else [])
  | Reduce _ | SAssign _ -> []
  | Elem e ->
      List.map (fun r -> Elem { e with rhs = r }) (simpler_exprs e.rhs)
      @ subs_variants e.subs (fun subs -> Elem { e with subs })
  | Do d ->
      (* fewer iterations, then unwrapped body, then inner shrinks *)
      (if d.lo <> d.hi then [ Do { d with hi = d.lo } ] else [])
      @ [ Do { d with body = [] } ]
      @ List.concat
          (List.mapi
             (fun i inner ->
               List.map
                 (fun inner' ->
                   Do { d with body = List.concat (at_pos d.body i (fun _ -> [ inner' ])) })
                 (stm_variants inner)
               @ [ Do { d with body = List.concat (at_pos d.body i (fun _ -> [])) } ])
             d.body)
  | If i ->
      (if i.els <> [] then [ If { i with els = [] } ] else [])
      @ List.map (fun s -> s) i.then_ (* hoist the guarded statements *)

(* one-step reductions of the whole program, most aggressive first *)
let candidates (p : prog) : prog list =
  let n = List.length p.body in
  let drop_stmt =
    List.init n (fun i -> { p with body = List.filteri (fun j _ -> j <> i) p.body })
  in
  let shrink_stmt =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun s' -> { p with body = List.mapi (fun j x -> if i = j then s' else x) p.body })
             (stm_variants s))
         p.body)
  in
  let drop_arrays =
    List.filter_map
      (fun (a : arr) ->
        let keeps (s : stm) = not (List.mem a.aname (stm_arrays s)) in
        let body = List.filter keeps p.body in
        if List.length p.arrays > 1 then
          Some { p with arrays = List.filter (fun x -> x.aname <> a.aname) p.arrays; body }
        else None)
      p.arrays
  in
  let degrid =
    match p.grid with
    | Some 2 -> [ { p with grid = Some 1 }; { p with grid = None } ]
    | Some _ -> [ { p with grid = None } ]
    | None -> []
  in
  let deblock =
    let all_block =
      List.map
        (fun a -> { a with adist = List.map (fun d -> if d = Dstar then Dstar else Dblock) a.adist })
        p.arrays
    in
    if all_block <> p.arrays then [ { p with arrays = all_block } ] else []
  in
  let resize =
    (if p.n1 > 4 then [ { p with n1 = max 4 (p.n1 / 2) } ] else [])
    @ if p.n2 > 4 then [ { p with n2 = max 4 (p.n2 / 2) } ] else []
  in
  drop_stmt @ drop_arrays @ shrink_stmt @ degrid @ deblock @ resize

let shrink ~(still_fails : prog -> bool) (p : prog) : prog =
  let budget = ref 500 in
  let rec go p =
    if !budget <= 0 then p
    else
      match
        List.find_opt
          (fun c ->
            decr budget;
            !budget >= 0 && still_fails c)
          (candidates p)
      with
      | Some c -> go c
      | None -> p
  in
  go p
