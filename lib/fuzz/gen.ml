(* Seeded random-program generator over the compiled Fortran 90D subset.

   Programs are built as a small internal representation (so the shrinker
   can transform them structurally) and pretty-printed to source text.
   Every subscript is in-bounds by construction, FORALL left-hand sides
   are injective, and floating-point accumulation across elements (whose
   order the SPMD schedule may permute) is kept out of the grammar:
   SUM/PRODUCT apply to INTEGER arrays only, so every generated program
   has one bit-exact answer for the differential driver to check.

   The PROCESSORS directive cannot name a fixed machine size when the
   same program runs at 1, 2 and 4 processors, so the internal rep stores
   only the grid *rank*; [print ~nprocs] factorises the actual grid. *)

type kind = KI | KR
type dist = Dblock | Dcyclic | Dstar

type arr = {
  aname : string;
  akind : kind;
  adims : int list;  (* extents; length 1 or 2; lower bounds are all 1 *)
  adist : dist list;
  aindex : bool;  (* index array: INTEGER, values always within [1, n1] *)
}

(* affine / indirect subscript forms *)
type sub =
  | Splus of string * int  (* var + off *)
  | Sminus of string * int  (* off - var *)
  | Stwo of string * int  (* 2*var + off *)
  | Sconst of int
  | Sind of string * string * int  (* V(var + off): indirection *)

type expr =
  | L of int
  | F of float  (* quarters only: exact in binary *)
  | V of string  (* scalar or loop variable *)
  | A of string * sub list
  | B of string * expr * expr  (* "+" "-" "*" "/" "==" "<" ".AND." ... *)
  | C of string * expr list  (* elemental intrinsic *)

(* whole-array (conformable, elementwise) expression *)
type aexpr =
  | AA of string
  | ACst of expr  (* scalar-valued, broadcast *)
  | AB of string * aexpr * aexpr
  | AC of string * aexpr list

type stm =
  | Forall of {
      vars : (string * int * int * int) list;  (* var, lo, hi, step (as printed) *)
      mask : expr option;
      lhs : string;
      lsubs : sub list;
      rhs : expr;
    }
  | Arr of { lhs : string; rhs : aexpr }
  | Sec of { lhs : string; llo : int; lst : int; rhs : string; rlo : int; rst : int; count : int }
  | Where of { mask : aexpr; lhs : string; rhs : aexpr; els : aexpr option }
  | Mover of { lhs : string; call : string; src : string; amount : int; dim : int; boundary : expr option }
  | Reduce of { target : string; op : string; src : string }
  | SAssign of string * expr
  | Elem of { lhs : string; subs : sub list; rhs : expr }
  | Do of { var : string; lo : int; hi : int; step : int; body : stm list }
  | If of { cond : expr; then_ : stm list; els : stm list }

type prog = {
  pseed : int;
  n1 : int;  (* extent of every 1-D array *)
  n2 : int;  (* 2-D arrays are n2 x n2 *)
  grid : int option;  (* PROCESSORS rank: None, Some 1 or Some 2 *)
  arrays : arr list;
  iscalars : string list;
  rscalars : string list;
  body : stm list;
}

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

type g = { rng : Rng.t; n1 : int; n2 : int; arrays : arr list }

let extent g a = if List.length a.adims = 1 then g.n1 else g.n2
let arrays_of_rank g r = List.filter (fun a -> List.length a.adims = r) g.arrays
let writable g = List.filter (fun a -> not a.aindex) g.arrays
let index_arr g = List.find_opt (fun a -> a.aindex) g.arrays

(* venv: variables in scope with the [min,max] range of their values *)
type venv = (string * (int * int)) list

let clamp lo hi v = max lo (min hi v)

(* a subscript for a dimension of extent [e], in-bounds over all of venv *)
let gen_sub g (venv : venv) ~e ~indirect =
  let cands = ref [ Sconst (Rng.range g.rng 1 e) ] in
  List.iter
    (fun (v, (lo, hi)) ->
      if 1 - lo <= e - hi then begin
        let o = Rng.range g.rng (max (1 - lo) (-4)) (min (e - hi) 4) in
        cands := Splus (v, o) :: Splus (v, clamp (1 - lo) (e - hi) 0) :: !cands
      end;
      (* off - var: image [off-hi, off-lo] *)
      if 1 + hi <= e + lo then
        cands := Sminus (v, Rng.range g.rng (1 + hi) (min (e + lo) (1 + hi + 4))) :: !cands;
      if 1 - (2 * lo) <= e - (2 * hi) then
        cands := Stwo (v, Rng.range g.rng (1 - (2 * lo)) (e - (2 * hi))) :: !cands;
      match indirect with
      | Some ia when e = g.n1 && 1 - lo <= g.n1 - hi ->
          cands := Sind (ia.aname, v, Rng.range g.rng (max (1 - lo) (-3)) (min (g.n1 - hi) 3)) :: !cands
      | _ -> ())
    venv;
  Rng.pickl g.rng !cands

let pick_scalar g kind =
  match kind with
  | KI -> Rng.pickl g.rng [ "S1"; "S2" ]
  | KR -> Rng.pickl g.rng [ "R1"; "R2" ]

let quarters g = float_of_int (Rng.range g.rng (-12) 12) /. 4.

(* expression of the wanted kind, all array reads in-bounds over venv *)
let rec gen_expr g (venv : venv) ~depth ~want =
  let leaf () =
    match want with
    | KI -> (
        match Rng.int g.rng 4 with
        | 0 -> L (Rng.range g.rng (-9) 9)
        | 1 when venv <> [] -> V (fst (Rng.pickl g.rng venv))
        | 2 -> V (pick_scalar g KI)
        | _ -> (
            match arrays_of_rank g 1 @ arrays_of_rank g 2 |> List.filter (fun a -> a.akind = KI) with
            | [] -> L (Rng.range g.rng (-9) 9)
            | l -> gen_ref g venv (Rng.pickl g.rng l)))
    | KR -> (
        match Rng.int g.rng 4 with
        | 0 -> F (quarters g)
        | 1 -> V (pick_scalar g KR)
        | 2 -> (
            match List.filter (fun a -> a.akind = KR) g.arrays with
            | [] -> F (quarters g)
            | l -> gen_ref g venv (Rng.pickl g.rng l))
        | _ -> gen_expr g venv ~depth:0 ~want:KI (* promote *))
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int g.rng 10 with
    | 0 | 1 | 2 ->
        let op = Rng.pickl g.rng [ "+"; "-"; "*" ] in
        B (op, gen_expr g venv ~depth:(depth - 1) ~want, gen_expr g venv ~depth:(depth - 1) ~want)
    | 3 ->
        (* division by a nonzero literal only: Scalar.div faults on 0 *)
        let d = Rng.range g.rng 2 4 in
        let divisor = match want with KI -> L d | KR -> F (float_of_int d /. 2.) in
        B ("/", gen_expr g venv ~depth:(depth - 1) ~want, divisor)
    | 4 -> C ("ABS", [ gen_expr g venv ~depth:(depth - 1) ~want ])
    | 5 when want = KI -> C ("MOD", [ gen_expr g venv ~depth:(depth - 1) ~want:KI; L (Rng.range g.rng 2 7) ])
    | 5 -> C ("NINT", [ gen_expr g venv ~depth:(depth - 1) ~want:KR ])
    | 6 ->
        C
          ( Rng.pickl g.rng [ "MIN"; "MAX" ],
            [ gen_expr g venv ~depth:(depth - 1) ~want; gen_expr g venv ~depth:(depth - 1) ~want ] )
    | 7 ->
        C
          ( "MERGE",
            [
              gen_expr g venv ~depth:(depth - 1) ~want;
              gen_expr g venv ~depth:(depth - 1) ~want;
              gen_cond g venv ~depth:(depth - 1);
            ] )
    | _ -> leaf ()

and gen_ref g venv a =
  let ind = index_arr g in
  let indirect = match ind with Some ia when ia.aname <> a.aname -> Some ia | _ -> None in
  A (a.aname, List.map (fun e -> gen_sub g venv ~e ~indirect) a.adims)

and gen_cond g venv ~depth =
  if depth > 0 && Rng.chance g.rng 25 then
    B
      ( Rng.pickl g.rng [ ".AND."; ".OR." ],
        gen_cond g venv ~depth:(depth - 1),
        gen_cond g venv ~depth:(depth - 1) )
  else
    let want = if Rng.chance g.rng 70 then KI else KR in
    let op = Rng.pickl g.rng [ "=="; "/="; "<"; "<="; ">"; ">=" ] in
    B (op, gen_expr g venv ~depth:1 ~want, gen_expr g venv ~depth:0 ~want)

(* FORALL header: a variable per non-constant lhs dimension, iteration
   range and lhs subscript chosen together so the image stays in-bounds *)
let gen_forall g (venv : venv) =
  let a = Rng.pickl g.rng (writable g) in
  let rank = List.length a.adims in
  let var_names = [ "I"; "J" ] in
  let const_dim = rank = 2 && Rng.chance g.rng 25 in
  let const_at = if const_dim then Rng.int g.rng 2 else -1 in
  let vars = ref [] and lsubs = ref [] and fvenv = ref [] in
  List.iteri
    (fun d e ->
      if d = const_at then lsubs := Sconst (Rng.range g.rng 1 e) :: !lsubs
      else begin
        let v = List.nth var_names (List.length !vars) in
        let vlo = Rng.range g.rng 1 (max 1 (e / 3)) in
        let vhi = Rng.range g.rng (min e (vlo + 1)) e in
        let vlo, vhi = if vlo <= vhi then (vlo, vhi) else (vhi, vlo) in
        (* lhs subscript pattern with in-bounds image over [vlo,vhi] *)
        let pat =
          let c = ref [ Splus (v, 0) ] in
          if 1 - vlo <= e - vhi then
            c := Splus (v, Rng.range g.rng (max (1 - vlo) (-3)) (min (e - vhi) 3)) :: !c;
          if 1 + vhi <= e + vlo then c := Sminus (v, Rng.range g.rng (1 + vhi) (min (e + vlo) (1 + vhi + 3))) :: !c;
          if 1 - (2 * vlo) <= e - (2 * vhi) then c := Stwo (v, Rng.range g.rng (1 - (2 * vlo)) (e - (2 * vhi))) :: !c;
          Rng.pickl g.rng !c
        in
        let step = if Rng.chance g.rng 70 then 1 else if Rng.chance g.rng 60 then -1 else 2 in
        let lo, hi = if step < 0 then (vhi, vlo) else (vlo, vhi) in
        vars := (v, lo, hi, step) :: !vars;
        lsubs := pat :: !lsubs;
        fvenv := (v, (vlo, vhi)) :: !fvenv
      end)
    a.adims;
  let venv' = !fvenv @ venv in
  let mask = if Rng.chance g.rng 30 then Some (gen_cond g venv' ~depth:1) else None in
  let rhs = gen_expr g venv' ~depth:(Rng.range g.rng 1 3) ~want:a.akind in
  Forall { vars = List.rev !vars; mask; lhs = a.aname; lsubs = List.rev !lsubs; rhs }

(* invariant-preserving rewrite of the index array *)
let gen_vrewrite g ia =
  let c1 = Rng.range g.rng 1 5 and c2 = Rng.range g.rng 0 9 in
  Forall
    {
      vars = [ ("I", 1, g.n1, 1) ];
      mask = None;
      lhs = ia.aname;
      lsubs = [ Splus ("I", 0) ];
      rhs = B ("+", C ("MODULO", [ B ("+", B ("*", L c1, V "I"), L c2); L g.n1 ]), L 1);
    }

let rec gen_aexpr g ~rank ~depth =
  let conforming = arrays_of_rank g rank in
  if depth <= 0 || Rng.chance g.rng 40 then
    if Rng.chance g.rng 75 then AA (Rng.pickl g.rng conforming).aname
    else ACst (gen_expr g [] ~depth:1 ~want:(if Rng.bool g.rng then KI else KR))
  else
    match Rng.int g.rng 5 with
    | 0 | 1 -> AB (Rng.pickl g.rng [ "+"; "-"; "*" ], gen_aexpr g ~rank ~depth:(depth - 1), gen_aexpr g ~rank ~depth:(depth - 1))
    | 2 -> AB ("/", gen_aexpr g ~rank ~depth:(depth - 1), ACst (L (Rng.range g.rng 2 4)))
    | 3 -> AC ("ABS", [ gen_aexpr g ~rank ~depth:(depth - 1) ])
    | _ -> AC (Rng.pickl g.rng [ "MIN"; "MAX" ], [ gen_aexpr g ~rank ~depth:(depth - 1); gen_aexpr g ~rank ~depth:(depth - 1) ])

let gen_arr_assign g =
  let lhs = Rng.pickl g.rng (writable g) in
  Arr { lhs = lhs.aname; rhs = gen_aexpr g ~rank:(List.length lhs.adims) ~depth:2 }

let gen_sec g =
  let one_d = List.filter (fun a -> List.length a.adims = 1 && not a.aindex) g.arrays in
  let lhs = Rng.pickl g.rng one_d and rhs = Rng.pickl g.rng one_d in
  let lst = if Rng.chance g.rng 70 then 1 else 2 in
  let rst = if Rng.chance g.rng 70 then 1 else 2 in
  let count = Rng.range g.rng 2 (max 2 (1 + ((g.n1 - 1) / max lst rst))) in
  let count = min count (1 + ((g.n1 - 1) / lst)) in
  let count = min count (1 + ((g.n1 - 1) / rst)) in
  let llo = Rng.range g.rng 1 (g.n1 - ((count - 1) * lst)) in
  let rlo = Rng.range g.rng 1 (g.n1 - ((count - 1) * rst)) in
  Sec { lhs = lhs.aname; llo; lst; rhs = rhs.aname; rlo; rst; count }

let gen_where g =
  let lhs = Rng.pickl g.rng (writable g) in
  let rank = List.length lhs.adims in
  let m = Rng.pickl g.rng (arrays_of_rank g rank) in
  let lit = match m.akind with KI -> L (Rng.range g.rng (-3) 6) | KR -> F (quarters g) in
  let mask = AB (Rng.pickl g.rng [ ">"; "<"; ">="; "=="; "/=" ], AA m.aname, ACst lit) in
  let rhs = gen_aexpr g ~rank ~depth:1 in
  let els = if Rng.chance g.rng 40 then Some (gen_aexpr g ~rank ~depth:1) else None in
  Where { mask; lhs = lhs.aname; rhs; els }

let gen_mover g =
  let lhs = Rng.pickl g.rng (writable g) in
  let rank = List.length lhs.adims in
  let srcs =
    List.filter (fun a -> a.akind = lhs.akind && a.adims = lhs.adims) (arrays_of_rank g rank)
  in
  let src = Rng.pickl g.rng srcs in
  let e = extent g lhs in
  if rank = 2 && Rng.chance g.rng 30 then
    Mover { lhs = lhs.aname; call = "TRANSPOSE"; src = src.aname; amount = 0; dim = 1; boundary = None }
  else begin
    let call = if Rng.chance g.rng 60 then "CSHIFT" else "EOSHIFT" in
    let amount = Rng.range g.rng (-e) e in
    let dim = Rng.range g.rng 1 rank in
    let boundary =
      if call = "EOSHIFT" && Rng.chance g.rng 50 then
        Some (match lhs.akind with KI -> L (Rng.range g.rng (-9) 9) | KR -> F (quarters g))
      else None
    in
    Mover { lhs = lhs.aname; call; src = src.aname; amount; dim; boundary }
  end

let gen_reduce g =
  let ints = List.filter (fun a -> a.akind = KI) g.arrays in
  let choice = Rng.int g.rng 4 in
  match choice with
  | 0 when ints <> [] ->
      let src = Rng.pickl g.rng ints in
      Reduce { target = pick_scalar g KI; op = Rng.pickl g.rng [ "SUM"; "PRODUCT" ]; src = src.aname }
  | 1 ->
      let src = Rng.pickl g.rng g.arrays in
      let t = pick_scalar g (if src.akind = KR then KR else KI) in
      Reduce { target = t; op = Rng.pickl g.rng [ "MAXVAL"; "MINVAL" ]; src = src.aname }
  | _ -> (
      match arrays_of_rank g 1 with
      | [] -> Reduce { target = "S1"; op = "MAXVAL"; src = (List.hd g.arrays).aname }
      | l ->
          let src = Rng.pickl g.rng l in
          Reduce { target = pick_scalar g KI; op = Rng.pickl g.rng [ "MAXLOC"; "MINLOC" ]; src = src.aname })

let gen_elem g venv =
  let a = Rng.pickl g.rng (writable g) in
  let ind = index_arr g in
  let indirect = match ind with Some ia when ia.aname <> a.aname -> Some ia | _ -> None in
  let subs = List.map (fun e -> gen_sub g venv ~e ~indirect) a.adims in
  Elem { lhs = a.aname; subs; rhs = gen_expr g venv ~depth:2 ~want:a.akind }

let rec gen_stm g venv ~depth =
  let r = Rng.int g.rng 100 in
  if r < 28 then gen_forall g venv
  else if r < 42 then gen_arr_assign g
  else if r < 50 then gen_sec g
  else if r < 60 then gen_where g
  else if r < 70 then gen_mover g
  else if r < 78 then gen_reduce g
  else if r < 84 then SAssign (pick_scalar g (if Rng.bool g.rng then KI else KR), gen_expr g venv ~depth:2 ~want:KI)
  else if r < 90 then gen_elem g venv
  else if r < 93 then
    match index_arr g with Some ia -> gen_vrewrite g ia | None -> gen_forall g venv
  else if r < 97 && depth < 2 then begin
    let var = if depth = 0 then "K" else "L" in
    let lo = Rng.range g.rng 1 3 in
    let hi = lo + Rng.range g.rng 1 3 in
    let down = Rng.chance g.rng 20 in
    let body =
      List.init (Rng.range g.rng 1 3) (fun _ ->
          gen_stm g ((var, (lo, hi)) :: venv) ~depth:(depth + 1))
    in
    if down then Do { var; lo = hi; hi = lo; step = -1; body }
    else Do { var; lo; hi; step = 1; body }
  end
  else if depth < 2 then
    If
      {
        cond = gen_cond g venv ~depth:1;
        then_ = List.init (Rng.range g.rng 1 2) (fun _ -> gen_stm g venv ~depth:(depth + 1));
        els =
          (if Rng.chance g.rng 50 then
             List.init (Rng.range g.rng 1 2) (fun _ -> gen_stm g venv ~depth:(depth + 1))
           else []);
      }
  else gen_forall g venv

(* full-range deterministic initialisation of one array *)
let init_stm g (a : arr) =
  match a.adims with
  | [ e ] ->
      let rhs =
        if a.aindex then
          B ("+", C ("MODULO", [ B ("+", B ("*", L (Rng.range g.rng 1 5), V "I"), L (Rng.range g.rng 0 7)); L g.n1 ]), L 1)
        else
          let base = B ("+", B ("*", L (Rng.range g.rng (-4) 6), V "I"), L (Rng.range g.rng (-5) 9)) in
          match a.akind with
          | KI -> C ("MOD", [ base; L (Rng.range g.rng 5 13) ])
          | KR -> B ("/", base, F 4.)
      in
      Forall { vars = [ ("I", 1, e, 1) ]; mask = None; lhs = a.aname; lsubs = [ Splus ("I", 0) ]; rhs }
  | [ e1; e2 ] ->
      let base =
        B
          ( "+",
            B ("*", L (Rng.range g.rng (-3) 5), V "I"),
            B ("*", L (Rng.range g.rng (-3) 5), V "J") )
      in
      let rhs =
        match a.akind with
        | KI -> C ("MOD", [ base; L (Rng.range g.rng 5 13) ])
        | KR -> B ("/", base, F 4.)
      in
      Forall
        {
          vars = [ ("I", 1, e1, 1); ("J", 1, e2, 1) ];
          mask = None;
          lhs = a.aname;
          lsubs = [ Splus ("I", 0); Splus ("J", 0) ];
          rhs;
        }
  | _ -> assert false

let gen_dists g ~grid_rank ~rank =
  (* at most [grid_rank] distributed dimensions (sema rejects more) *)
  let forms = List.init rank (fun _ -> Rng.pickl g.rng [ Dblock; Dblock; Dcyclic; Dstar ]) in
  let distributed = List.filter (fun f -> f <> Dstar) forms in
  if List.length distributed <= grid_rank then forms
  else
    (* keep the first [grid_rank] distributed dims, star the rest *)
    let kept = ref 0 in
    List.map
      (fun f ->
        if f = Dstar then f
        else if !kept < grid_rank then begin incr kept; f end
        else Dstar)
      forms

let generate ~seed =
  let rng = Rng.make seed in
  let n1 = Rng.range rng 6 12 in
  let n2 = Rng.range rng 4 6 in
  let grid =
    match Rng.int rng 10 with 0 | 1 | 2 -> None | 3 | 4 | 5 | 6 -> Some 1 | _ -> Some 2
  in
  let grid_rank = match grid with None -> 1 | Some r -> r in
  let g0 = { rng; n1; n2; arrays = [] } in
  let n_one = Rng.range rng 2 4 and n_two = Rng.range rng 1 2 in
  let with_index = Rng.chance rng 50 in
  let arrays = ref [] in
  for i = 1 to n_one do
    let akind = if Rng.chance rng 50 then KI else KR in
    arrays :=
      { aname = Printf.sprintf "A%d" i; akind; adims = [ n1 ];
        adist = gen_dists g0 ~grid_rank ~rank:1; aindex = false }
      :: !arrays
  done;
  for i = 1 to n_two do
    let akind = if Rng.chance rng 50 then KI else KR in
    arrays :=
      { aname = Printf.sprintf "B%d" i; akind; adims = [ n2; n2 ];
        adist = gen_dists g0 ~grid_rank ~rank:2; aindex = false }
      :: !arrays
  done;
  if with_index then
    arrays :=
      { aname = "V"; akind = KI; adims = [ n1 ]; adist = gen_dists g0 ~grid_rank ~rank:1;
        aindex = true }
      :: !arrays;
  let arrays = List.rev !arrays in
  let g = { g0 with arrays } in
  let inits =
    List.map (init_stm g) arrays
    @ [
        SAssign ("S1", L (Rng.range rng (-5) 9));
        SAssign ("S2", L (Rng.range rng 1 6));
        SAssign ("R1", F (quarters g));
        SAssign ("R2", F (quarters g));
      ]
  in
  let body = List.init (Rng.range rng 4 10) (fun _ -> gen_stm g [] ~depth:0) in
  {
    pseed = seed;
    n1;
    n2;
    grid;
    arrays;
    iscalars = [ "S1"; "S2"; "K"; "L" ];
    rscalars = [ "R1"; "R2" ];
    body = inits @ body;
  }

(* ------------------------------------------------------------------ *)
(* Pretty-printer: internal rep -> Fortran 90D source                  *)
(* ------------------------------------------------------------------ *)

let pp_sub = function
  | Splus (v, 0) -> v
  | Splus (v, o) when o > 0 -> Printf.sprintf "%s + %d" v o
  | Splus (v, o) -> Printf.sprintf "%s - %d" v (-o)
  | Sminus (v, o) -> Printf.sprintf "%d - %s" o v
  | Stwo (v, 0) -> Printf.sprintf "2*%s" v
  | Stwo (v, o) when o > 0 -> Printf.sprintf "2*%s + %d" v o
  | Stwo (v, o) -> Printf.sprintf "2*%s - %d" v (-o)
  | Sconst c -> string_of_int c
  | Sind (va, v, 0) -> Printf.sprintf "%s(%s)" va v
  | Sind (va, v, o) when o > 0 -> Printf.sprintf "%s(%s + %d)" va v o
  | Sind (va, v, o) -> Printf.sprintf "%s(%s - %d)" va v (-o)

let pp_float x =
  if Float.is_integer x then Printf.sprintf "%.1f" x else Printf.sprintf "%.2f" x

let rec pp_expr = function
  | L n when n < 0 -> Printf.sprintf "(%d)" n
  | L n -> string_of_int n
  | F x when x < 0. -> Printf.sprintf "(%s)" (pp_float x)
  | F x -> pp_float x
  | V v -> v
  | A (a, subs) -> Printf.sprintf "%s(%s)" a (String.concat ", " (List.map pp_sub subs))
  | B (op, a, b) -> Printf.sprintf "(%s %s %s)" (pp_expr a) op (pp_expr b)
  | C (f, args) -> Printf.sprintf "%s(%s)" f (String.concat ", " (List.map pp_expr args))

let rec pp_aexpr = function
  | AA a -> a
  | ACst e -> pp_expr e
  | AB (op, a, b) -> Printf.sprintf "(%s %s %s)" (pp_aexpr a) op (pp_aexpr b)
  | AC (f, args) -> Printf.sprintf "%s(%s)" f (String.concat ", " (List.map pp_aexpr args))

let pp_triplet (v, lo, hi, step) =
  if step = 1 then Printf.sprintf "%s = %d:%d" v lo hi
  else Printf.sprintf "%s = %d:%d:%d" v lo hi step

let rec pp_stm buf ind s =
  let pad = String.make ind ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match s with
  | Forall { vars; mask; lhs; lsubs; rhs } ->
      let heads = List.map pp_triplet vars @ (match mask with Some m -> [ pp_expr m ] | None -> []) in
      line "FORALL (%s) %s(%s) = %s" (String.concat ", " heads) lhs
        (String.concat ", " (List.map pp_sub lsubs))
        (pp_expr rhs)
  | Arr { lhs; rhs } -> line "%s = %s" lhs (pp_aexpr rhs)
  | Sec { lhs; llo; lst; rhs; rlo; rst; count } ->
      let sec lo st =
        let hi = lo + ((count - 1) * st) in
        if st = 1 then Printf.sprintf "%d:%d" lo hi else Printf.sprintf "%d:%d:%d" lo hi st
      in
      line "%s(%s) = %s(%s)" lhs (sec llo lst) rhs (sec rlo rst)
  | Where { mask; lhs; rhs; els = None } -> line "WHERE (%s) %s = %s" (pp_aexpr mask) lhs (pp_aexpr rhs)
  | Where { mask; lhs; rhs; els = Some e } ->
      line "WHERE (%s)" (pp_aexpr mask);
      line "  %s = %s" lhs (pp_aexpr rhs);
      line "ELSEWHERE";
      line "  %s = %s" lhs (pp_aexpr e);
      line "END WHERE"
  | Mover { lhs; call = "TRANSPOSE"; src; _ } -> line "%s = TRANSPOSE(%s)" lhs src
  | Mover { lhs; call; src; amount; dim; boundary } ->
      let b = match boundary with Some e -> ", " ^ pp_expr e | None -> "" in
      (* the 4-argument EOSHIFT form is the only one carrying a dim *)
      if dim = 1 && boundary = None then line "%s = %s(%s, %d)" lhs call src amount
      else if call = "CSHIFT" then line "%s = CSHIFT(%s, %d, %d)" lhs src amount dim
      else
        line "%s = EOSHIFT(%s, %d%s, %d)" lhs src amount
          (if boundary = None then ", 0" else b)
          dim
  | Reduce { target; op; src } -> line "%s = %s(%s)" target op src
  | SAssign (v, e) -> line "%s = %s" v (pp_expr e)
  | Elem { lhs; subs; rhs } ->
      line "%s(%s) = %s" lhs (String.concat ", " (List.map pp_sub subs)) (pp_expr rhs)
  | Do { var; lo; hi; step; body } ->
      if step = 1 then line "DO %s = %d, %d" var lo hi else line "DO %s = %d, %d, %d" var lo hi step;
      List.iter (pp_stm buf (ind + 2)) body;
      line "END DO"
  | If { cond; then_; els } ->
      line "IF (%s) THEN" (pp_expr cond);
      List.iter (pp_stm buf (ind + 2)) then_;
      if els <> [] then begin
        line "ELSE";
        List.iter (pp_stm buf (ind + 2)) els
      end;
      line "END IF"

let pp_dist = function Dblock -> "BLOCK" | Dcyclic -> "CYCLIC" | Dstar -> "*"

(* factorise [nprocs] over a grid of the requested rank *)
let grid_dims ~rank ~nprocs =
  if rank = 1 then [ nprocs ]
  else begin
    (* largest divisor a <= sqrt(nprocs): the squarest a x b grid *)
    let a = ref 1 in
    let i = ref 1 in
    while !i * !i <= nprocs do
      if nprocs mod !i = 0 then a := !i;
      incr i
    done;
    [ !a; nprocs / !a ]
  end

let print ~nprocs (p : prog) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "      PROGRAM FZ%d" p.pseed;
  line "      INTEGER, PARAMETER :: N1 = %d" p.n1;
  line "      INTEGER, PARAMETER :: N2 = %d" p.n2;
  line "      INTEGER %s" (String.concat ", " p.iscalars);
  line "      REAL %s" (String.concat ", " p.rscalars);
  List.iter
    (fun a ->
      let kw = match a.akind with KI -> "INTEGER" | KR -> "REAL" in
      let dims = match a.adims with [ _ ] -> "N1" | _ -> "N2, N2" in
      line "      %s %s(%s)" kw a.aname dims)
    p.arrays;
  (match p.grid with
  | None -> ()
  | Some rank ->
      let dims = grid_dims ~rank ~nprocs in
      line "C$    PROCESSORS P(%s)" (String.concat ", " (List.map string_of_int dims)));
  List.iter
    (fun a ->
      if List.exists (fun f -> f <> Dstar) a.adist then begin
        let onto = match p.grid with Some _ -> " ONTO P" | None -> "" in
        line "C$    DISTRIBUTE %s(%s)%s" a.aname
          (String.concat ", " (List.map pp_dist a.adist))
          onto
      end)
    p.arrays;
  List.iter (pp_stm buf 6) p.body;
  line "      END";
  Buffer.contents buf
