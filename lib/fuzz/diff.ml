(* Differential driver: one program, one reference answer, a matrix of
   compiled configurations that must all reproduce it bit for bit. *)

open F90d_base

type cfg = { nprocs : int; jobs : int; passes : string * F90d_opt.Passes.flags }

type failure =
  | Ref_error of string  (* the reference evaluator itself failed: generator bug *)
  | Config_error of cfg * string  (* compile or run crashed under this config *)
  | Mismatch of cfg * string  (* first bit-level difference found *)

let pp_cfg { nprocs; jobs; passes = pname, _ } =
  Printf.sprintf "nprocs=%d jobs=%d passes=%s" nprocs jobs pname

let pp_failure = function
  | Ref_error m -> "reference evaluator failed: " ^ m
  | Config_error (c, m) -> Printf.sprintf "[%s] crashed: %s" (pp_cfg c) m
  | Mismatch (c, m) -> Printf.sprintf "[%s] diverged: %s" (pp_cfg c) m

let default_ranks = [ 1; 2; 4 ]
let default_jobs = [ 1; 4 ]

(* Named pass-flag sets for the matrix: "on"/"off" exercise everything
   against nothing (the default axis); the single-pass and all-but-one
   sets isolate one optimization when hunting a divergence. *)
let named_flag_sets =
  let open F90d_opt.Passes in
  [
    ("on", all_on);
    ("off", all_off);
    ("hoist", { all_off with hoist_comm = true });
    ("coalesce", { all_off with coalesce = true });
    ("no-hoist", { all_on with hoist_comm = false });
    ("no-coalesce", { all_on with coalesce = false });
    ("split", { all_off with split_comm = true });
    ("lookahead", { all_off with split_comm = true; lookahead = true });
    ("no-split", { all_on with split_comm = false; lookahead = false });
    ("no-lookahead", { all_on with lookahead = false });
    ("no-kernels", { all_on with blocked_kernels = false });
  ]

let flag_set name =
  Option.map (fun f -> (name, f)) (List.assoc_opt name named_flag_sets)

let default_flag_sets =
  [ ("on", F90d_opt.Passes.all_on); ("off", F90d_opt.Passes.all_off) ]

let matrix ?(ranks = default_ranks) ?(jobs = default_jobs)
    ?(flag_sets = default_flag_sets) () =
  List.concat_map
    (fun nprocs ->
      List.concat_map
        (fun j -> List.map (fun passes -> { nprocs; jobs = j; passes }) flag_sets)
        jobs)
    ranks

let scalar_str s = Format.asprintf "%a" Scalar.pp s
let nd_str nd = Format.asprintf "%a" Ndarray.pp nd

(* first difference between the reference answer and one run, or None *)
let compare_outcomes (r : Refeval.result) (o : F90d_exec.Interp.outcome) =
  let diff = ref None in
  let note msg = if !diff = None then diff := Some msg in
  List.iter
    (fun (name, ref_nd) ->
      match List.assoc_opt name o.F90d_exec.Interp.finals with
      | None -> note (Printf.sprintf "array %s missing from SPMD finals" name)
      | Some got ->
          if not (Ndarray.equal ref_nd got) then
            note
              (Printf.sprintf "array %s differs\n  reference: %s\n  spmd:      %s" name
                 (nd_str ref_nd) (nd_str got)))
    r.Refeval.r_finals;
  List.iter
    (fun (name, ref_s) ->
      match List.assoc_opt name o.F90d_exec.Interp.final_scalars with
      | None -> note (Printf.sprintf "scalar %s missing from SPMD finals" name)
      | Some got ->
          if not (Scalar.equal ref_s got) then
            note
              (Printf.sprintf "scalar %s differs: reference %s, spmd %s" name
                 (scalar_str ref_s) (scalar_str got)))
    r.Refeval.r_scalars;
  if List.length o.F90d_exec.Interp.final_scalars <> List.length r.Refeval.r_scalars then
    note "scalar sets differ";
  if o.F90d_exec.Interp.output <> r.Refeval.r_output then
    note
      (Printf.sprintf "output differs\n  reference: %S\n  spmd:      %S" r.Refeval.r_output
         o.F90d_exec.Interp.output);
  !diff

let describe_exn = function
  | Diag.Error (loc, msg) when loc.Loc.line > 0 ->
      Printf.sprintf "%s:%d: %s" loc.Loc.file loc.Loc.line msg
  | Diag.Error (_, msg) -> msg
  | e -> Printexc.to_string e

(* [print ~nprocs] yields the source for a machine size: the PROCESSORS
   directive, when present, must name the machine it runs on *)
let check ?ranks ?jobs ?flag_sets (print : nprocs:int -> string) : failure list =
  match
    (try Ok (Refeval.run (print ~nprocs:1)) with e -> Error (describe_exn e))
  with
  | Error m -> [ Ref_error m ]
  | Ok reference ->
      List.filter_map
        (fun cfg ->
          let _, flags = cfg.passes in
          match
            let compiled = F90d.Driver.compile ~flags (print ~nprocs:cfg.nprocs) in
            F90d.Driver.run ~nprocs:cfg.nprocs ~jobs:cfg.jobs compiled
          with
          | result -> (
              match compare_outcomes reference result.F90d.Driver.outcome with
              | None -> None
              | Some msg -> Some (Mismatch (cfg, msg)))
          | exception e -> Some (Config_error (cfg, describe_exn e)))
        (matrix ?ranks ?jobs ?flag_sets ())

let check_prog ?ranks ?jobs ?flag_sets (p : Gen.prog) =
  check ?ranks ?jobs ?flag_sets (fun ~nprocs -> Gen.print ~nprocs p)

(* fixed source text (corpus replay): the PROCESSORS directive, if any,
   pins the machine size, so restrict the rank axis to its grid product *)
let processors_product source =
  let re = Str.regexp "PROCESSORS +[A-Z0-9_]+(\\([0-9, ]+\\))" in
  try
    ignore (Str.search_forward re source 0);
    let dims = String.split_on_char ',' (Str.matched_group 1 source) in
    Some (List.fold_left (fun acc d -> acc * int_of_string (String.trim d)) 1 dims)
  with Not_found -> None

let check_source ?ranks ?jobs ?flag_sets source =
  let ranks =
    match processors_product source with
    | Some p -> [ p ]
    | None -> ( match ranks with Some r -> r | None -> default_ranks)
  in
  check ~ranks ?jobs ?flag_sets (fun ~nprocs:_ -> source)
