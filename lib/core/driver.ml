open F90d_base
open F90d_dist
open F90d_machine
open F90d_runtime
open F90d_frontend

type compiled = {
  c_source : string;
  c_env : Sema.program_env;
  c_ir : F90d_ir.Ir.program_ir;
  c_flags : F90d_opt.Passes.flags;
}

(* The front half (parse, analyze, lower) is independent of the pass
   flags, so the serve-mode compile cache can keep one front per source
   digest and re-optimize it per flag set.  Both stages produce immutable
   structures: a cached [front] or [compiled] can be optimized or run
   from concurrent domains. *)
type front = { f_source : string; f_env : Sema.program_env; f_ir : F90d_ir.Ir.program_ir }

let front ?(file = "<input>") source =
  let ast = Parser.parse ~file source in
  let env = Sema.analyze ast in
  { f_source = source; f_env = env; f_ir = F90d_codegen.Lower.lower_program env }

let optimize ?(flags = F90d_opt.Passes.all_on) f =
  {
    c_source = f.f_source;
    c_env = f.f_env;
    c_ir = F90d_opt.Passes.apply flags f.f_ir;
    c_flags = flags;
  }

let compile ?flags ?file source = optimize ?flags (front ?file source)

type run_result = {
  outcome : F90d_exec.Interp.outcome;
  elapsed : float;
  clocks : float array;
  stats : Stats.t;
  trace : F90d_trace.Trace.t option;
}

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some _ -> Error (Printf.sprintf "F90D_JOBS=%S is not positive; using 1" s)
  | None -> Error (Printf.sprintf "F90D_JOBS=%S is not an integer; using 1" s)

let default_jobs () =
  match Sys.getenv_opt "F90D_JOBS" with
  | None -> 1
  | Some s -> (
      match parse_jobs s with
      | Ok n -> n
      | Error msg ->
          Printf.eprintf "f90d: warning: %s\n%!" msg;
          1)

let run ?(collect_finals = true) ?(model = Model.ideal) ?(topology = Topology.Full) ?jobs
    ?(trace = false) ?poll ?sched_preload ?sched_collect ~nprocs compiled =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let dims = Sema.grid_dims compiled.c_env ~nprocs in
  let phys_of_rank = Topology.grid_embedding topology ~nprocs dims in
  let grid = Grid.make ?phys_of_rank dims in
  let cfg = Engine.config ~model ~topology ~tracing:trace ?poll nprocs in
  let kcfg =
    { Rctx.default_kcfg with Rctx.kc_blocked = compiled.c_flags.F90d_opt.Passes.blocked_kernels }
  in
  let node eng =
    let rctx = Rctx.make ~kcfg eng grid in
    (* Seed the rank's schedule cache from the persistent store (serve
       mode).  Preloading is all-or-nothing across ranks — the store
       layer guarantees it by keeping every rank's schedules in one
       digest-checked artifact — so either every rank hits a key or
       every rank rebuilds it collectively. *)
    (match sched_preload with
    | Some load -> Schedule.preload rctx (load (Rctx.me rctx))
    | None -> ());
    let outcome =
      F90d_exec.Interp.node_main ~collect_finals
        ~coalesce:compiled.c_flags.F90d_opt.Passes.coalesce compiled.c_ir rctx
    in
    (match sched_collect with
    | Some collect -> collect (Rctx.me rctx) (Schedule.export rctx)
    | None -> ());
    outcome
  in
  let report = if jobs > 1 then Engine.run_parallel ~jobs cfg node else Engine.run cfg node in
  (* rank 0 of the grid carries the program output *)
  let root_phys = Grid.phys_of_rank grid 0 in
  {
    outcome = report.Engine.results.(root_phys);
    elapsed = report.Engine.elapsed;
    clocks = report.Engine.clocks;
    stats = report.Engine.stats;
    trace = report.Engine.trace;
  }

let final result name =
  match List.assoc_opt name result.outcome.F90d_exec.Interp.finals with
  | Some a -> a
  | None -> Diag.error "no final array '%s' (was collect_finals set?)" name

let final_scalar result name =
  match List.assoc_opt name result.outcome.F90d_exec.Interp.final_scalars with
  | Some s -> s
  | None -> Diag.error "no final scalar '%s'" name
