(** The Fortran 90D/HPF compiler driver: source text in, SPMD program out,
    executed on the simulated distributed-memory machine.

    {[
      let compiled = Driver.compile source in
      let result = Driver.run ~nprocs:16 ~model:Model.ipsc860 compiled in
      print_string result.outcome.output
    ]} *)

open F90d_machine

type compiled = {
  c_source : string;
  c_env : F90d_frontend.Sema.program_env;
  c_ir : F90d_ir.Ir.program_ir;
  c_flags : F90d_opt.Passes.flags;
}

val compile : ?flags:F90d_opt.Passes.flags -> ?file:string -> string -> compiled
(** Lex, parse, analyze, normalize, detect communication, lower and
    optimize.  @raise F90d_base.Diag.Error on any front-end or lowering
    diagnostic. *)

type front = {
  f_source : string;
  f_env : F90d_frontend.Sema.program_env;
  f_ir : F90d_ir.Ir.program_ir;  (** lowered, pre-optimization *)
}
(** The pass-flag-independent half of {!compile}.  Both [front] and
    {!compiled} are immutable once built: the serve-mode caches hand one
    instance to concurrent {!optimize}/{!run} calls on separate domains. *)

val front : ?file:string -> string -> front
(** Parse, analyze and lower — everything up to (but excluding) the
    optimization passes. *)

val optimize : ?flags:F90d_opt.Passes.flags -> front -> compiled
(** Apply the optimization passes ([Passes.all_on] by default).  Pure:
    the same [front] can be optimized under several flag sets. *)

type run_result = {
  outcome : F90d_exec.Interp.outcome;
  elapsed : float;  (** simulated parallel execution time, seconds *)
  clocks : float array;
  stats : Stats.t;
  trace : F90d_trace.Trace.t option;  (** [Some] iff [run ~trace:true] *)
}

val parse_jobs : string -> (int, string) result
(** Parse an [F90D_JOBS] value: [Ok n] for an integer [>= 1], otherwise
    [Error msg] where [msg] is a one-line warning naming the bad value. *)

val default_jobs : unit -> int
(** Worker-domain count from the [F90D_JOBS] environment variable; 1 —
    the sequential engine — when unset.  An unparsable or non-positive
    value emits a one-line warning on stderr and falls back to 1. *)

val run :
  ?collect_finals:bool ->
  ?model:Model.t ->
  ?topology:Topology.t ->
  ?jobs:int ->
  ?trace:bool ->
  ?poll:(unit -> unit) ->
  ?sched_preload:(int -> (string * string) list) ->
  ?sched_collect:(int -> (string * string) list -> unit) ->
  nprocs:int ->
  compiled ->
  run_result
(** Instantiate the processor grid (PROCESSORS directive, or a 1-D grid of
    the whole machine), embed it in the topology, and execute.  Defaults:
    ideal model, fully connected.  [jobs] selects the execution engine:
    [jobs > 1] runs node programs on that many worker domains
    ({!F90d_machine.Engine.run_parallel} — reports are bit-identical to
    the sequential engine); the default comes from the [F90D_JOBS]
    environment variable, falling back to the sequential engine.  Run-time
    state (mailboxes, statistics, schedule caches) is per-run, so
    consecutive runs are fully independent.

    [poll] is the engine's cooperative-cancellation hook (see
    {!F90d_machine.Engine.config}): serve mode raises from it to enforce
    per-request timeouts.

    [sched_preload rank] supplies persisted PARTI schedules (as
    {!F90d_runtime.Schedule.export} pairs) to seed that grid rank's cache
    before its node program starts; [sched_collect rank entries] receives
    the rank's cache contents when its node program finishes.  Both are
    called from the node's fiber — under [jobs > 1] that means
    concurrently from worker domains, so callers must touch only
    rank-private state (e.g. one array slot per rank). *)

val final : run_result -> string -> F90d_base.Ndarray.t
(** A gathered final array by name (requires [collect_finals]). *)

val final_scalar : run_result -> string -> F90d_base.Scalar.t
