(** Compiler explain reports ([-Minfo]/[-qreport]-style) and the
    compile-time/runtime join.

    The explain side renders, for every comm-bearing statement, the
    Table 1/2 classification recorded at lowering time: the detected
    subscript patterns, the chosen communication primitive, the
    distribution facts and the reason each decision was made.  The
    profile side joins {!F90d_trace.Analyze.per_stmt_profile} rows back
    to source [file:line] through {!F90d_ir.Ir.prov_table}, producing a
    "hot statements" table with the predicted pattern next to its
    measured traffic. *)

open F90d_ir

val explain_text : Ir.program_ir -> string
(** Human-readable report, one block per comm-bearing statement.  When
    optimization passes changed the emitted primitives (fusion, shift
    union), both the detected and the emitted list are shown. *)

val explain_json : Ir.program_ir -> string
(** The same report as one JSON document:
    [{"explain":[{"unit":...,"statements":[...]}]}]. *)

(** {2 Hot statements} *)

type hot = {
  h_sid : int;
  h_loc : F90d_base.Loc.t;
  h_unit : string;
  h_desc : string;  (** statement description from provenance *)
  h_decision : string;  (** comm primitives the compiler chose, "+"-joined *)
  h_msgs : int;
  h_bytes : int;
  h_send_s : float;
  h_wait_s : float;
  h_hidden_s : float;  (** latency overlapped by split-phase receives *)
  h_cp_s : float;  (** this statement's wire time on the critical path *)
}

val hot_statements : Ir.program_ir -> F90d_trace.Trace.t -> hot list
(** Per-statement measured cost joined with the compile-time decision,
    hottest (send busy + recv wait) first.  Rows whose sid is not in the
    provenance table (sid 0) appear as ["<runtime>"]. *)

val hot_text : ?top:int -> hot list -> string
(** Render as a table; [top] truncates to the k hottest. *)

val profile_json : Ir.program_ir -> F90d_trace.Trace.t -> string
(** [{"statements":[...],"totals":{...}}] — one row per statement with
    messages, bytes, send-busy, recv-wait and critical-path share. *)
