(* Compiler explain reports and the compile-time/runtime join.

   The explain side renders what Lower recorded per comm-bearing
   statement (Pattern's Table 1/2 decision trail plus distribution
   facts); the profile side joins Analyze's per-statement trace rows
   back to source lines through the program's provenance table, so a
   "hot statements" table shows the predicted pattern next to its
   measured traffic. *)

open F90d_base
open F90d_ir

(* ------------------------------------------------------------------ *)
(* Post-optimization communication per sid                             *)
(* ------------------------------------------------------------------ *)

(* u_explain records the primitives as detected; optimization passes may
   have fused or unioned them afterwards.  The statements themselves are
   the ground truth, so collect the final comm names per sid. *)
(* Append-merge: the hoisting/coalescing passes move comms away from
   their statement, so one sid's comms may be contributed from several
   syntactic places (its own f_pre, a loop pre-header, another
   statement's batch). *)
let add_comms acc sid names =
  let cur = match Hashtbl.find_opt acc sid with Some l -> l | None -> [] in
  Hashtbl.replace acc sid (cur @ names)

let rec stmt_comms acc (st : Ir.stmt) =
  match st.Ir.s with
  | Ir.Forall f ->
      let pre = List.map Ir.comm_name f.Ir.f_pre in
      let post =
        match f.Ir.f_post with
        | Some (Ir.Postcomp_write _) -> [ "postcomp_write" ]
        | Some (Ir.Scatter_write _) -> [ "scatter_write" ]
        | None -> []
      in
      add_comms acc st.Ir.sid (pre @ post);
      (* batch members lifted from *other* statements still belong to
         those statements in the report *)
      List.iter
        (function
          | Ir.Comm_batch members ->
              List.iter
                (fun (c, sid) ->
                  if sid <> st.Ir.sid then
                    add_comms acc sid
                      [ Printf.sprintf "%s (coalesced into stmt %d)" (Ir.comm_name c) st.Ir.sid ])
                members
          | _ -> ())
        f.Ir.f_pre
  | Ir.Comm_block { cb_members; cb_loop; _ } ->
      List.iter
        (fun { Ir.hc; hc_sid; _ } ->
          add_comms acc hc_sid
            [
              Printf.sprintf "%s (hoisted out of %s, line %d)" (Ir.comm_name hc) cb_loop
                st.Ir.sloc.Loc.line;
            ])
        cb_members
  | Ir.Comm_issue { Ir.sp_comm = { Ir.hc; hc_sid; _ }; _ } ->
      (* the wait half carries the same handle; report the pair once,
         on the statement that originally owned the communication *)
      add_comms acc hc_sid
        [ Printf.sprintf "%s (split-phase, issued at line %d)" (Ir.comm_name hc)
            st.Ir.sloc.Loc.line ]
  | Ir.Comm_wait _ -> ()
  | Ir.Do_loop { body; _ } | Ir.While_loop { body; _ } -> List.iter (stmt_comms acc) body
  | Ir.If_block { arms; els } ->
      List.iter (fun (_, b) -> List.iter (stmt_comms acc) b) arms;
      List.iter (stmt_comms acc) els
  | _ -> ()

let comm_map (ir : Ir.program_ir) =
  let acc = Hashtbl.create 32 in
  List.iter (fun (_, u) -> List.iter (stmt_comms acc) u.Ir.u_body) ir.Ir.p_units;
  acc

(* Emitted comms for an explain record: the final IR's when the sid still
   exists there (forall), the lower-time record otherwise (mover). *)
let final_comms comms (x : Ir.explain) =
  match Hashtbl.find_opt comms x.Ir.x_sid with Some l -> l | None -> x.Ir.x_comms

(* ------------------------------------------------------------------ *)
(* Explain: text                                                       *)
(* ------------------------------------------------------------------ *)

let explain_text (ir : Ir.program_ir) =
  let comms = comm_map ir in
  let b = Buffer.create 4096 in
  List.iter
    (fun (_, u) ->
      Printf.bprintf b "=== unit %s: %d comm-bearing statement(s) ===\n" u.Ir.u_name
        (List.length u.Ir.u_explain);
      List.iter
        (fun (x : Ir.explain) ->
          Printf.bprintf b "\nstmt %d at %s\n" x.Ir.x_sid (Loc.file_line x.Ir.x_loc);
          Printf.bprintf b "  %s\n" x.Ir.x_stmt;
          Printf.bprintf b "  partitioning : %s\n" x.Ir.x_iter;
          Printf.bprintf b "      because  : %s\n" x.Ir.x_iter_why;
          List.iter (fun d -> Printf.bprintf b "  distribution : %s\n" d) x.Ir.x_dist;
          List.iter
            (fun (r : Ir.explain_ref) ->
              Printf.bprintf b "  ref %-12s -> %s\n" r.Ir.xr_ref r.Ir.xr_plan;
              List.iter (fun w -> Printf.bprintf b "      %s\n" w) r.Ir.xr_why)
            x.Ir.x_refs;
          let detected = x.Ir.x_comms and emitted = final_comms comms x in
          let render = function [] -> "(none)" | l -> String.concat " + " l in
          if emitted = detected then
            Printf.bprintf b "  communication: %s\n" (render emitted)
          else
            Printf.bprintf b "  communication: %s (detected: %s)\n" (render emitted)
              (render detected);
          match x.Ir.x_post with
          | Some p -> Printf.bprintf b "  write-back   : %s\n" p
          | None -> ())
        u.Ir.u_explain;
      Buffer.add_char b '\n')
    ir.Ir.p_units;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON helpers (no external dependency; same escaping as Trace)       *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""
let jlist l = "[" ^ String.concat "," l ^ "]"
let jobj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"
let jfloat v = Printf.sprintf "%.9g" v

(* ------------------------------------------------------------------ *)
(* Explain: JSON                                                       *)
(* ------------------------------------------------------------------ *)

let explain_json (ir : Ir.program_ir) =
  let comms = comm_map ir in
  let stmt_obj (x : Ir.explain) =
    jobj
      [
        ("sid", string_of_int x.Ir.x_sid);
        ("file", jstr x.Ir.x_loc.Loc.file);
        ("line", string_of_int x.Ir.x_loc.Loc.line);
        ("unit", jstr x.Ir.x_unit);
        ("stmt", jstr x.Ir.x_stmt);
        ("lhs", jstr x.Ir.x_lhs);
        ("partitioning", jstr x.Ir.x_iter);
        ("partitioning_why", jstr x.Ir.x_iter_why);
        ("distribution", jlist (List.map jstr x.Ir.x_dist));
        ( "refs",
          jlist
            (List.map
               (fun (r : Ir.explain_ref) ->
                 jobj
                   [
                     ("ref", jstr r.Ir.xr_ref);
                     ("plan", jstr r.Ir.xr_plan);
                     ("why", jlist (List.map jstr r.Ir.xr_why));
                   ])
               x.Ir.x_refs) );
        ("comms_detected", jlist (List.map jstr x.Ir.x_comms));
        ("comms_emitted", jlist (List.map jstr (final_comms comms x)));
        ( "post",
          match x.Ir.x_post with Some p -> jstr p | None -> "null" );
      ]
  in
  let units =
    List.map
      (fun (_, u) ->
        jobj
          [
            ("unit", jstr u.Ir.u_name);
            ("statements", jlist (List.map stmt_obj u.Ir.u_explain));
          ])
      ir.Ir.p_units
  in
  jobj [ ("explain", jlist units) ] ^ "\n"

(* ------------------------------------------------------------------ *)
(* Runtime join: hot statements                                        *)
(* ------------------------------------------------------------------ *)

type hot = {
  h_sid : int;
  h_loc : Loc.t;
  h_unit : string;
  h_desc : string;  (** statement description from provenance *)
  h_decision : string;  (** comm primitives the compiler chose, "+"-joined *)
  h_msgs : int;
  h_bytes : int;
  h_send_s : float;
  h_wait_s : float;
  h_hidden_s : float;
  h_cp_s : float;
}

let hot_statements (ir : Ir.program_ir) tr =
  let prov = Ir.prov_table ir in
  let comms = comm_map ir in
  let decisions = Hashtbl.create 32 in
  List.iter
    (fun (_, u) ->
      List.iter
        (fun (x : Ir.explain) ->
          Hashtbl.replace decisions x.Ir.x_sid (String.concat "+" (final_comms comms x)))
        u.Ir.u_explain)
    ir.Ir.p_units;
  F90d_trace.Analyze.per_stmt_profile tr
  |> List.map (fun (r : F90d_trace.Analyze.srow) ->
         let loc, unit_, desc =
           match Hashtbl.find_opt prov r.F90d_trace.Analyze.s_sid with
           | Some p -> (p.Ir.pv_loc, p.Ir.pv_unit, p.Ir.pv_desc)
           | None -> (Loc.none, "", "<runtime>")
         in
         {
           h_sid = r.F90d_trace.Analyze.s_sid;
           h_loc = loc;
           h_unit = unit_;
           h_desc = desc;
           h_decision =
             Option.value
               (Hashtbl.find_opt decisions r.F90d_trace.Analyze.s_sid)
               ~default:"-";
           h_msgs = r.F90d_trace.Analyze.s_msgs;
           h_bytes = r.F90d_trace.Analyze.s_bytes;
           h_send_s = r.F90d_trace.Analyze.s_send_s;
           h_wait_s = r.F90d_trace.Analyze.s_wait_s;
           h_hidden_s = r.F90d_trace.Analyze.s_hidden_s;
           h_cp_s = r.F90d_trace.Analyze.s_cp_s;
         })
  |> List.sort (fun a b ->
         compare
           (b.h_send_s +. b.h_wait_s, b.h_bytes, a.h_sid)
           (a.h_send_s +. a.h_wait_s, a.h_bytes, b.h_sid))

let hot_text ?top hots =
  let hots = match top with Some k -> List.filteri (fun i _ -> i < k) hots | None -> hots in
  let b = Buffer.create 2048 in
  Printf.bprintf b "hot statements (compile-time decision vs measured cost)\n";
  Printf.bprintf b "%-24s %-22s %-24s %8s %12s %12s %12s %12s %10s\n" "source" "statement"
    "decision" "msgs" "bytes" "send busy(s)" "recv wait(s)" "hidden(s)" "cp wire(s)";
  List.iter
    (fun h ->
      Printf.bprintf b "%-24s %-22s %-24s %8d %12d %12.6f %12.6f %12.6f %10.6f\n"
        (Printf.sprintf "%s (stmt %d)" (Loc.file_line h.h_loc) h.h_sid)
        h.h_desc h.h_decision h.h_msgs h.h_bytes h.h_send_s h.h_wait_s h.h_hidden_s h.h_cp_s)
    hots;
  Buffer.contents b

let hot_obj h =
  jobj
    [
      ("sid", string_of_int h.h_sid);
      ("file", jstr h.h_loc.Loc.file);
      ("line", string_of_int h.h_loc.Loc.line);
      ("unit", jstr h.h_unit);
      ("stmt", jstr h.h_desc);
      ("decision", jstr h.h_decision);
      ("messages", string_of_int h.h_msgs);
      ("bytes", string_of_int h.h_bytes);
      ("send_busy_s", jfloat h.h_send_s);
      ("recv_wait_s", jfloat h.h_wait_s);
      ("recv_wait_hidden_s", jfloat h.h_hidden_s);
      ("critical_path_wire_s", jfloat h.h_cp_s);
    ]

let profile_json (ir : Ir.program_ir) tr =
  let hots = hot_statements ir tr in
  let msgs = List.fold_left (fun a h -> a + h.h_msgs) 0 hots in
  let bytes = List.fold_left (fun a h -> a + h.h_bytes) 0 hots in
  let hidden = List.fold_left (fun a h -> a +. h.h_hidden_s) 0. hots in
  jobj
    [
      ("statements", jlist (List.map hot_obj hots));
      ( "totals",
        jobj
          [
            ("messages", string_of_int msgs);
            ("bytes", string_of_int bytes);
            ("recv_wait_hidden_s", jfloat hidden);
          ] );
    ]
  ^ "\n"
