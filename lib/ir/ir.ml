(** The loosely synchronous SPMD intermediate representation.

    A lowered FORALL is an explicit phase sequence — collective
    pre-communication into temporaries, a purely local loop nest over
    [set_BOUND]-restricted bounds, and an optional write-back phase — the
    code shape of §5.3.  Scalar expressions stay as front-end ASTs; array
    references are resolved through {!access} annotations keyed by the
    reference's [rid]. *)

open F90d_frontend

type mshift = {
  ms_arr : string;
  mdim : int;
  ms_g : Ast.expr;
  sdim : int;
  ms_amount : Ast.expr;
  ms_temp : int;
  fused : bool;  (** §5.3.1 example 3; unfused variant kept for ablation *)
}

type inspector = { r : Ast.ref_; itemp : int; key : string option }

(** Pre-communication operations (one per communicating rhs reference). *)
type comm =
  | Multicast of { arr : string; dim : int; g : Ast.expr; temp : int }
      (** broadcast slice [dim = g] along its grid dimension *)
  | Transfer of { arr : string; dim : int; src : Ast.expr; dest : Ast.expr; temp : int }
  | Overlap_shift of { arr : string; dim : int; amount : int }
      (** fills ghost cells in place; no temporary *)
  | Temp_shift of { arr : string; dim : int; amount : Ast.expr; temp : int }
  | Multicast_shift of mshift
  | Concat of { arr : string; temp : int }
  | Precomp_read of inspector
      (** schedule1 inspector over the reference's subscripts *)
  | Gather_read of inspector
  | Comm_batch of (comm * int) list
      (** cross-statement coalesced batch: structurally-compatible
          members (same-direction overlap shifts, same-endpoint
          transfers) in program order, each tagged with the sid of the
          statement whose traffic it performs.  The runtime packs all
          members bound for the same rank pair into one message, so the
          engine charges one latency [alpha] per pair instead of one per
          member. *)

(** Post-communication (non-canonical lhs). *)
type post =
  | Postcomp_write of { key : string option }
  | Scatter_write of { key : string option }

(** How a reference is addressed inside the local loop. *)
type box_dim =
  | Collapsed  (** communicated dimension of the temporary: extent 1 *)
  | By_sub of Ast.expr
      (** indexed by the local position (under this array dimension's own
          layout) of the given global index expression — the FORALL
          variable itself for no-comm and shifted dimensions *)

type access =
  | Acc_direct  (** own local section (ghosts included) or a replicated array *)
  | Acc_box of { temp : int; dims : box_dim array }
  | Acc_flat of { temp : int }  (** unstructured temp, iteration-counter order *)
  | Acc_global_temp of { temp : int }  (** concatenated full copy *)

(** Computation partitioning (§4). *)
type iter =
  | It_canonical of {
      var_dims : (string * int option) list;
      guards : (int * Ast.expr) list;
    }  (** owner computes: set_BOUND per lhs dimension *)
  | It_even  (** iteration space block-split over all processors *)
  | It_replicated  (** lhs replicated: every processor runs every iteration *)

type forall = {
  f_vars : (string * Ast.range) list;
  f_mask : Ast.expr option;
  f_lhs : Ast.ref_;
  f_rhs : Ast.expr;
  f_iter : iter;
  f_pre : comm list;
  f_access : (int * access) list;  (** rid -> access *)
  f_post : post option;
  f_snapshot : bool;
      (** the rhs/mask reads the lhs array through {!Acc_direct} with a
          subscript differing from the lhs subscript: the loop must read a
          pre-loop snapshot of the local section, or in-place stores would
          leak new values into later iterations (FORALL evaluates every
          rhs before any write) *)
}

(** One communication lifted out of a loop by the hoisting pass, tagged
    with the provenance of the statement it was lifted from so traces
    and profiles still attribute the traffic to the originating line. *)
type hoisted = { hc : comm; hc_sid : int; hc_loc : F90d_base.Loc.t }

(** Pre-header guard: hoisted comms may only run when the loop body
    would execute at least once (a zero-trip loop must communicate
    nothing, and its subscripts may not even be evaluable). *)
type cb_guard = Guard_do of Ast.range | Guard_while of Ast.expr

(** Guard on a split-phase communication half (see [Comm_issue] /
    [Comm_wait]).  The split pass arranges that an issue and its wait
    always execute the same number of times, so guards are how lookahead
    handles loop edges: the pre-loop (prologue) issue runs only when the
    loop trips at least once, and the in-body issue for step k+1 runs
    only while the loop variable has a next iteration. *)
type split_guard =
  | Sg_always
  | Sg_trip of Ast.range
      (** execute iff the DO range yields at least one iteration
          (same trip test as [Guard_do]) *)
  | Sg_next of { var : string; range : Ast.range }
      (** execute iff [var + step] is still within the range bounds —
          i.e. the surrounding DO loop has another iteration coming *)

(** One half of a split-phase communication.  [sp_hid] pairs an issue
    with its wait at run time (a unit-unique slot id); [sp_comm] carries
    the original comm and its origin sid/loc so traffic stays attributed
    to the statement the data is for. *)
type split = { sp_hid : int; sp_comm : hoisted; sp_guard : split_guard }

(* Every statement carries provenance: a program-unique statement id
   (sid, allocated by Lower in emission order, > 0) and the source
   location of the Ast statement it was lowered from.  The sid is the
   join key between the compile-time explain report, trace events and
   the per-statement runtime profile. *)
type stmt = { sid : int; sloc : F90d_base.Loc.t; s : stmt_node }

and stmt_node =
  | Forall of forall
  | Scalar_assign of { name : string; rhs : Ast.expr }
  | Element_assign of { lhs : Ast.ref_; rhs : Ast.expr }
      (** all-scalar subscripts: owners store, everyone evaluates *)
  | Mover of { target : string; call : Ast.ref_ }
      (** whole-array intrinsic movement: A = CSHIFT(B, 1) etc. *)
  | Do_loop of { var : string; range : Ast.range; body : stmt list }
  | While_loop of { cond : Ast.expr; body : stmt list }
  | If_block of { arms : (Ast.expr * stmt list) list; els : stmt list }
  | Call_sub of { sub : string; args : Ast.expr list }
  | Print_stmt of Ast.expr list
  | Return_stmt
  | Comm_block of { cb_members : hoisted list; cb_guard : cb_guard; cb_loop : string }
      (** loop pre-header synthesized by the hoisting pass: the
          loop-invariant communications of the loop it precedes (which
          shares its sid/sloc), executed once under the trip guard.
          [cb_loop] is a rendering of the loop head for reports, e.g.
          ["DO K"]. *)
  | Comm_issue of split
      (** start the communication: snapshot/send the source data and
          post the receives, without blocking.  Synthesized by the
          split-comm pass from a FORALL pre-comm; shares the reading
          statement's sid/sloc. *)
  | Comm_wait of split
      (** complete the matching [Comm_issue]: block until the data has
          arrived and store the communication temporary.  Placed
          immediately before the first statement that reads the data. *)

(** One provenance table entry: what a sid resolves to. *)
type prov = {
  pv_sid : int;
  pv_loc : F90d_base.Loc.t;
  pv_unit : string;  (** owning program unit *)
  pv_desc : string;  (** short statement description, e.g. ["forall A"] *)
}

(** Compile-time communication decision for one rhs/mask reference of a
    comm-bearing statement, as the explain report presents it. *)
type explain_ref = {
  xr_ref : string;  (** rendered reference, e.g. ["B(i,k)"] *)
  xr_plan : string;  (** {!Pattern.plan_name} of the chosen plan *)
  xr_why : string list;  (** per-dimension Table 1/2 decision trail *)
}

(** Explain record for one comm-bearing statement (FORALL / array
    assignment / intrinsic mover), keyed by sid. *)
type explain = {
  x_sid : int;
  x_loc : F90d_base.Loc.t;
  x_unit : string;
  x_stmt : string;  (** rendered statement head, e.g. ["FORALL (i,j) A(i,j) = ..."] *)
  x_lhs : string;  (** lhs array *)
  x_iter : string;  (** computation partitioning (§4 case) *)
  x_iter_why : string;
  x_dist : string list;  (** distribution facts for every array involved *)
  x_refs : explain_ref list;
  x_comms : string list;  (** comm primitives actually emitted (post-optimization) *)
  x_post : string option;  (** write-back phase, if any *)
}

type unit_ir = {
  u_name : string;
  u_env : Sema.unit_env;
  u_body : stmt list;
  u_ghosts : (string * int * int * int) list;
      (** (array, dim, ghost_lo, ghost_hi) requirements from overlap shifts *)
  u_prov : prov list;  (** provenance of every sid in this unit, in sid order *)
  u_explain : explain list;  (** comm-bearing statements, in sid order *)
  u_epilogue : prov;
      (** synthetic sid for the unit's epilogue (final-value gather,
          copy-back): real communication that belongs to no body
          statement still resolves to the unit header's line *)
}

type program_ir = { p_env : Sema.program_env; p_units : (string * unit_ir) list }

(** [sid -> prov] over the whole program (body statements and unit
    epilogues). *)
let prov_table ir =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, u) ->
      List.iter (fun p -> Hashtbl.replace tbl p.pv_sid p) u.u_prov;
      Hashtbl.replace tbl u.u_epilogue.pv_sid u.u_epilogue)
    ir.p_units;
  tbl

let find_unit ir name =
  match List.assoc_opt name ir.p_units with
  | Some u -> u
  | None -> F90d_base.Diag.error "unknown subroutine '%s'" name

let comm_temp = function
  | Multicast { temp; _ } | Transfer { temp; _ } | Temp_shift { temp; _ } | Concat { temp; _ } ->
      Some temp
  | Multicast_shift { ms_temp; _ } -> Some ms_temp
  | Precomp_read { itemp; _ } | Gather_read { itemp; _ } -> Some itemp
  | Overlap_shift _ | Comm_batch _ -> None

let rec comm_name = function
  | Multicast _ -> "multicast"
  | Transfer _ -> "transfer"
  | Overlap_shift _ -> "overlap_shift"
  | Temp_shift _ -> "temporary_shift"
  | Multicast_shift { fused; _ } -> if fused then "multicast_shift" else "multicast+shift"
  | Concat _ -> "concatenation"
  | Precomp_read _ -> "precomp_read"
  | Gather_read _ -> "gather"
  | Comm_batch [] -> "comm_batch"
  | Comm_batch ((c, _) :: _ as members) ->
      Printf.sprintf "%s[batch of %d]" (comm_name c) (List.length members)

(** The array whose data a comm moves (None for batches, which carry
    several). *)
let comm_source = function
  | Multicast { arr; _ }
  | Transfer { arr; _ }
  | Overlap_shift { arr; _ }
  | Temp_shift { arr; _ }
  | Concat { arr; _ } ->
      Some arr
  | Multicast_shift { ms_arr; _ } -> Some ms_arr
  | Precomp_read { r; _ } | Gather_read { r; _ } -> Some r.Ast.base
  | Comm_batch _ -> None
