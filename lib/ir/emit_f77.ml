open F90d_frontend

let buf_add = Buffer.add_string

let expr_str e = Format.asprintf "%a" Ast.pp_expr e

(* Substitute communicated references by their temporaries so loop bodies
   read the way the paper's generated code does. *)
let substitute_temps (f : Ir.forall) (e : Ast.expr) =
  Ast.map_expr
    (fun x ->
      match x.Ast.e with
      | Ast.Ref r -> (
          match List.assoc_opt r.Ast.rid f.Ir.f_access with
          | Some (Ir.Acc_box { temp; dims }) ->
              let args =
                Array.to_list dims
                |> List.map (function
                     | Ir.Collapsed -> Ast.Elem (Ast.int_lit 1)
                     | Ir.By_sub s -> Ast.Elem s)
              in
              Ast.ref_ (Printf.sprintf "TMP%d" temp) args
          | Some (Ir.Acc_flat { temp }) ->
              Ast.ref_ (Printf.sprintf "TMP%d" temp) [ Ast.Elem (Ast.var "COUNT") ]
          | Some (Ir.Acc_global_temp { temp }) ->
              Ast.ref_ (Printf.sprintf "TMP%d" temp) r.Ast.args
          | Some Ir.Acc_direct | None -> x)
      | _ -> x)
    e

let rec emit_comm b ind (c : Ir.comm) =
  let line s = buf_add b (ind ^ s ^ "\n") in
  match c with
  | Ir.Multicast { arr; dim; g; temp } ->
      line (Printf.sprintf "call set_DAD(%s_DAD, ...)" arr);
      line
        (Printf.sprintf "call multicast(%s, %s_DAD, TMP%d, source_proc=global_to_proc(%s), dim=%d)"
           arr arr temp (expr_str g) (dim + 1))
  | Ir.Transfer { arr; dim; src; dest; temp } ->
      line (Printf.sprintf "call set_DAD(%s_DAD, ...)" arr);
      line
        (Printf.sprintf
           "call transfer(%s, %s_DAD, TMP%d, source=global_to_proc(%s), dest=global_to_proc(%s), dim=%d)"
           arr arr temp (expr_str src) (expr_str dest) (dim + 1))
  | Ir.Overlap_shift { arr; dim; amount } ->
      line (Printf.sprintf "call overlap_shift(%s, %s_DAD, width=%d, dim=%d)" arr arr amount (dim + 1))
  | Ir.Temp_shift { arr; dim; amount; temp } ->
      line
        (Printf.sprintf "call temporary_shift(%s, %s_DAD, TMP%d, shift=%s, dim=%d)" arr arr temp
           (expr_str amount) (dim + 1))
  | Ir.Multicast_shift { ms_arr; mdim; ms_g; sdim; ms_amount; ms_temp; fused } ->
      if fused then
        line
          (Printf.sprintf
             "call multicast_shift(%s, %s_DAD, TMP%d, source=global_to_proc(%s), shift=%s, multicast_dim=%d, shift_dim=%d)"
             ms_arr ms_arr ms_temp (expr_str ms_g) (expr_str ms_amount) (mdim + 1) (sdim + 1))
      else begin
        line
          (Printf.sprintf "call temporary_shift(%s, %s_DAD, TMPS, shift=%s, dim=%d)" ms_arr ms_arr
             (expr_str ms_amount) (sdim + 1));
        line
          (Printf.sprintf "call multicast(TMPS, %s_DAD, TMP%d, source_proc=global_to_proc(%s), dim=%d)"
             ms_arr ms_temp (expr_str ms_g) (mdim + 1))
      end
  | Ir.Concat { arr; temp } ->
      line (Printf.sprintf "call concatenation(%s, %s_DAD, TMP%d)" arr arr temp)
  | Ir.Precomp_read { r; itemp; key } ->
      let sched = match key with Some k -> Printf.sprintf "isch('%s')" k | None -> "isch" in
      line "C     inspector (schedule1: local preprocessing only)";
      List.iteri
        (fun i s ->
          match s with
          | Ast.Elem e ->
              line (Printf.sprintf "C       dim %d subscript: %s (invertible)" (i + 1) (expr_str e))
          | Ast.Range _ -> ())
        r.Ast.args;
      (match key with
      | Some _ -> line (Printf.sprintf "if (.not. cached(%s)) %s = schedule1(...)" sched sched)
      | None -> line (Printf.sprintf "%s = schedule1(receive_list, send_list, local_list, count)" sched));
      line (Printf.sprintf "call precomp_read(%s, TMP%d, %s)" sched itemp r.Ast.base)
  | Ir.Gather_read { r; itemp; key } ->
      let sched = match key with Some k -> Printf.sprintf "isch('%s')" k | None -> "isch" in
      line "C     inspector (schedule2: preprocessing communicates)";
      (match key with
      | Some _ -> line (Printf.sprintf "if (.not. cached(%s)) %s = schedule2(...)" sched sched)
      | None -> line (Printf.sprintf "%s = schedule2(receive_list, local_list, count)" sched));
      line (Printf.sprintf "call gather(%s, TMP%d, %s)" sched itemp r.Ast.base)
  | Ir.Comm_batch members ->
      line
        (Printf.sprintf "C     coalesced: %d messages packed into one per processor pair"
           (List.length members));
      List.iter (fun (m, _sid) -> emit_comm b (ind ^ "  ") m) members

(* continuation labels for processor-masking gotos, unique per statement *)
let label_counter = ref 0

let emit_forall b ind (f : Ir.forall) =
  let line s = buf_add b (ind ^ s ^ "\n") in
  incr label_counter;
  let label = 100 + (10 * !label_counter) in
  let vars = f.Ir.f_vars in
  line
    (Printf.sprintf "C --- FORALL (%s) %s = ... ---"
       (String.concat ", "
          (List.map
             (fun (v, (r : Ast.range)) ->
               Printf.sprintf "%s=%s:%s%s" v (expr_str r.Ast.lo) (expr_str r.Ast.hi)
                 (match r.Ast.st with Some s -> ":" ^ expr_str s | None -> ""))
             vars))
       f.Ir.f_lhs.Ast.base);
  (* communication phase *)
  List.iter (emit_comm b ind) f.Ir.f_pre;
  (* set_BOUND per variable *)
  List.iteri
    (fun k (v, (r : Ast.range)) ->
      let dist =
        match f.Ir.f_iter with
        | Ir.It_canonical { var_dims; _ } -> (
            match List.assoc_opt v var_dims with
            | Some (Some d) -> Printf.sprintf "DIST(%s,dim=%d)" f.Ir.f_lhs.Ast.base (d + 1)
            | _ -> "REPLICATED")
        | Ir.It_even -> if k = 0 then "EVEN" else "REPLICATED"
        | Ir.It_replicated -> "REPLICATED"
      in
      line
        (Printf.sprintf "call set_BOUND(lb%d, ub%d, st%d, %s, %s, %s, %s)" (k + 1) (k + 1) (k + 1)
           (expr_str r.Ast.lo) (expr_str r.Ast.hi)
           (match r.Ast.st with Some s -> expr_str s | None -> "1")
           dist))
    vars;
  (match f.Ir.f_iter with
  | Ir.It_canonical { guards; _ } ->
      List.iter
        (fun (d, e) ->
          line
            (Printf.sprintf "if (.not. my_proc_owns(%s, dim=%d, %s)) goto %d" f.Ir.f_lhs.Ast.base
               (d + 1) (expr_str e) label))
        guards
  | _ -> ());
  (if f.Ir.f_post <> None then line "COUNT = 1");
  let uses_count =
    List.exists (fun (_, a) -> match a with Ir.Acc_flat _ -> true | _ -> false) f.Ir.f_access
  in
  if uses_count && f.Ir.f_post = None then line "COUNT = 1";
  (* loop nest *)
  List.iteri
    (fun k (v, _) -> line (Printf.sprintf "%sDO %s = lb%d, ub%d, st%d" (String.make (2 * k) ' ') v (k + 1) (k + 1) (k + 1)))
    vars;
  let inner = String.make (2 * List.length vars) ' ' in
  let body_line s = line (inner ^ s) in
  let rhs = substitute_temps f f.Ir.f_rhs in
  (match f.Ir.f_mask with
  | Some m -> body_line (Printf.sprintf "if (%s) then" (expr_str (substitute_temps f m)))
  | None -> ());
  (match f.Ir.f_post with
  | None ->
      body_line
        (Printf.sprintf "%s(%s) = %s" f.Ir.f_lhs.Ast.base
           (String.concat ","
              (List.map
                 (function Ast.Elem e -> expr_str e | Ast.Range _ -> ":")
                 f.Ir.f_lhs.Ast.args))
           (expr_str rhs))
  | Some _ ->
      body_line (Printf.sprintf "values(COUNT) = %s" (expr_str rhs));
      body_line
        (Printf.sprintf "send_list(COUNT) = global_to_proc(%s)"
           (String.concat ","
              (List.map
                 (function Ast.Elem e -> expr_str e | Ast.Range _ -> ":")
                 f.Ir.f_lhs.Ast.args))));
  if uses_count || f.Ir.f_post <> None then body_line "COUNT = COUNT + 1";
  (match f.Ir.f_mask with Some _ -> body_line "end if" | None -> ());
  List.iteri
    (fun k _ ->
      let k' = List.length vars - 1 - k in
      line (Printf.sprintf "%sEND DO" (String.make (2 * k') ' ')))
    vars;
  (match f.Ir.f_post with
  | Some (Ir.Postcomp_write _) ->
      line "isch3 = schedule1(send_list, local_list, count)";
      line (Printf.sprintf "call postcomp_write(isch3, %s, values)" f.Ir.f_lhs.Ast.base)
  | Some (Ir.Scatter_write _) ->
      line "isch3 = schedule3(send_list, local_list, count)";
      line (Printf.sprintf "call scatter(isch3, %s, values)" f.Ir.f_lhs.Ast.base)
  | None -> ());
  line (Printf.sprintf "%d   continue" label)

let rec emit_stmt b ind (s : Ir.stmt) =
  let line str = buf_add b (ind ^ str ^ "\n") in
  match s.Ir.s with
  | Ir.Forall f -> emit_forall b ind f
  | Ir.Scalar_assign { name; rhs } -> line (Printf.sprintf "%s = %s" name (expr_str rhs))
  | Ir.Element_assign { lhs; rhs } ->
      line
        (Printf.sprintf "if (my_proc_owns(%s)) %s(%s) = %s" lhs.Ast.base lhs.Ast.base
           (String.concat ","
              (List.map (function Ast.Elem e -> expr_str e | Ast.Range _ -> ":") lhs.Ast.args))
           (expr_str rhs))
  | Ir.Mover { target; call } ->
      line
        (Printf.sprintf "call rt_%s(%s, %s)" (String.lowercase_ascii call.Ast.base) target
           (String.concat ","
              (List.map (function Ast.Elem e -> expr_str e | Ast.Range _ -> ":") call.Ast.args)))
  | Ir.Do_loop { var; range; body } ->
      line
        (Printf.sprintf "DO %s = %s, %s%s" var (expr_str range.Ast.lo) (expr_str range.Ast.hi)
           (match range.Ast.st with Some s -> ", " ^ expr_str s | None -> ""));
      List.iter (emit_stmt b (ind ^ "  ")) body;
      line "END DO"
  | Ir.While_loop { cond; body } ->
      line (Printf.sprintf "DO WHILE (%s)" (expr_str cond));
      List.iter (emit_stmt b (ind ^ "  ")) body;
      line "END DO"
  | Ir.If_block { arms; els } ->
      List.iteri
        (fun i (c, body) ->
          line (Printf.sprintf "%sIF (%s) THEN" (if i = 0 then "" else "ELSE ") (expr_str c));
          List.iter (emit_stmt b (ind ^ "  ")) body)
        arms;
      if els <> [] then begin
        line "ELSE";
        List.iter (emit_stmt b (ind ^ "  ")) els
      end;
      line "END IF"
  | Ir.Call_sub { sub; args } ->
      line "C     dummy/actual distributions may differ: redistribute on entry/exit";
      line
        (Printf.sprintf "call %s(%s)" sub (String.concat ", " (List.map expr_str args)))
  | Ir.Print_stmt args -> line (Printf.sprintf "print *, %s" (String.concat ", " (List.map expr_str args)))
  | Ir.Return_stmt -> line "return"
  | Ir.Comm_block { cb_members; cb_guard; cb_loop } ->
      line (Printf.sprintf "C --- loop-invariant communication hoisted out of %s ---" cb_loop);
      let guard =
        match cb_guard with
        | Ir.Guard_do (r : Ast.range) ->
            Printf.sprintf "trip_count(%s, %s, %s) .gt. 0" (expr_str r.Ast.lo)
              (expr_str r.Ast.hi)
              (match r.Ast.st with Some s -> expr_str s | None -> "1")
        | Ir.Guard_while cond -> expr_str cond
      in
      line (Printf.sprintf "if (%s) then" guard);
      List.iter (fun { Ir.hc; _ } -> emit_comm b (ind ^ "  ") hc) cb_members;
      line "end if"
  | Ir.Comm_issue { sp_hid; sp_comm; sp_guard } ->
      line "C --- split-phase: issue (nonblocking) half ---";
      emit_split_guarded b ind sp_guard (fun ind ->
          let line str = buf_add b (ind ^ str ^ "\n") in
          (match sp_comm.Ir.hc with
          | Ir.Multicast { arr; dim; g; temp } ->
              line
                (Printf.sprintf
                   "call multicast_issue(H%d, %s, %s_DAD, TMP%d, source_proc=global_to_proc(%s), dim=%d)"
                   sp_hid arr arr temp (expr_str g) (dim + 1))
          | c -> emit_comm b ind c))
  | Ir.Comm_wait { sp_hid; sp_comm = _; sp_guard } ->
      line "C --- split-phase: wait (completion) half ---";
      emit_split_guarded b ind sp_guard (fun ind ->
          let line str = buf_add b (ind ^ str ^ "\n") in
          line (Printf.sprintf "call comm_wait(H%d)" sp_hid))

and emit_split_guarded b ind guard body =
  let line str = buf_add b (ind ^ str ^ "\n") in
  match guard with
  | Ir.Sg_always -> body ind
  | Ir.Sg_trip (r : Ast.range) ->
      line
        (Printf.sprintf "if (trip_count(%s, %s, %s) .gt. 0) then" (expr_str r.Ast.lo)
           (expr_str r.Ast.hi)
           (match r.Ast.st with Some s -> expr_str s | None -> "1"));
      body (ind ^ "  ");
      line "end if"
  | Ir.Sg_next { var; range = (r : Ast.range) } ->
      let st = match r.Ast.st with Some s -> expr_str s | None -> "1" in
      line (Printf.sprintf "if (has_next(%s, %s, %s)) then" var (expr_str r.Ast.hi) st);
      body (ind ^ "  ");
      line "end if"

let emit_unit (u : Ir.unit_ir) =
  label_counter := 0;
  let b = Buffer.create 1024 in
  buf_add b (Printf.sprintf "C === SPMD node program for unit %s ===\n" u.Ir.u_name);
  buf_add b "C     generated Fortran 77 + message passing (paper-style)\n";
  List.iter
    (fun (arr, dim, lo, hi) ->
      buf_add b
        (Printf.sprintf "C     overlap area: %s dim %d  ghost_lo=%d ghost_hi=%d\n" arr (dim + 1) lo hi))
    u.Ir.u_ghosts;
  List.iter (emit_stmt b "      ") u.Ir.u_body;
  buf_add b "      END\n";
  Buffer.contents b

let emit_program (p : Ir.program_ir) =
  String.concat "\n" (List.map (fun (_, u) -> emit_unit u) p.Ir.p_units)
