open F90d_base
open F90d_dist
open F90d_runtime
open F90d_frontend
open F90d_ir

type temp_nd = Tbox of Ndarray.t | Tflat of Ndarray.t | Tglobal of Ndarray.t

(* Compiled float expressions over up to three loop counters. *)
type node =
  | Nconst of float
  | Nlin of float * float * float * float  (* base + s1*c1 + s2*c2 + s3*c3 *)
  | Nload of float array * int * int * int * int  (* data, base, s1, s2, s3 *)
  | Nloadi of int array * int * int * int * int
  | Nneg of node
  | Nadd of node * node
  | Nsub of node * node
  | Nmul of node * node
  | Ndiv of node * node
  | Nidiv of node * node  (* both operands integer-valued: Fortran truncation *)
  | Nfun1 of (float -> float) * node
  | Nfun2 of (float -> float -> float) * node * node
  | Nsel of node * node * node  (* MERGE: mask (last) selects t or f *)

let rec ev n c1 c2 c3 =
  match n with
  | Nconst v -> v
  | Nlin (b, s1, s2, s3) ->
      b +. (s1 *. float_of_int c1) +. (s2 *. float_of_int c2) +. (s3 *. float_of_int c3)
  | Nload (d, b, s1, s2, s3) -> Array.unsafe_get d (b + (s1 * c1) + (s2 * c2) + (s3 * c3))
  | Nloadi (d, b, s1, s2, s3) ->
      float_of_int (Array.unsafe_get d (b + (s1 * c1) + (s2 * c2) + (s3 * c3)))
  | Nneg a -> -.ev a c1 c2 c3
  | Nadd (a, b) -> ev a c1 c2 c3 +. ev b c1 c2 c3
  | Nsub (a, b) -> ev a c1 c2 c3 -. ev b c1 c2 c3
  | Nmul (a, b) -> ev a c1 c2 c3 *. ev b c1 c2 c3
  | Ndiv (a, b) -> ev a c1 c2 c3 /. ev b c1 c2 c3
  | Nidiv (a, b) ->
      float_of_int (int_of_float (ev a c1 c2 c3) / int_of_float (ev b c1 c2 c3))
  | Nfun1 (f, a) -> f (ev a c1 c2 c3)
  | Nfun2 (f, a, b) -> f (ev a c1 c2 c3) (ev b c1 c2 c3)
  | Nsel (t, f, m) -> if ev m c1 c2 c3 <> 0. then ev t c1 c2 c3 else ev f c1 c2 c3

exception Fallback

(* counted atomically: kernels run concurrently under Engine.run_parallel *)
let run_count = Atomic.make 0
let runs () = Atomic.get run_count
let reset_runs () = Atomic.set run_count 0

(* Linear form over the loop counters: value = base + sum coefs.(k)*c_k. *)
type lin = { base : int; coefs : int array }

let lin_const nvars b = { base = b; coefs = Array.make nvars 0 }

let lin_add a b = { base = a.base + b.base; coefs = Array.map2 ( + ) a.coefs b.coefs }
let lin_scale k a = { base = k * a.base; coefs = Array.map (( * ) k) a.coefs }
let lin_sub a b = lin_add a (lin_scale (-1) b)

(* Extract a linear form in the loop counters from an index expression:
   FORALL variables contribute their progressions, scalars and parameters
   their current integer values. *)
let rec lin_of ~nvars ~var_index ~progs ~ilookup (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit n -> lin_const nvars n
  | Ast.Var v -> (
      match var_index v with
      | Some k ->
          let g0, gs = progs.(k) in
          let l = lin_const nvars g0 in
          l.coefs.(k) <- gs;
          l
      | None -> (
          match ilookup v with Some n -> lin_const nvars n | None -> raise Fallback))
  | Ast.Un (Ast.Neg, a) -> lin_scale (-1) (lin_of ~nvars ~var_index ~progs ~ilookup a)
  | Ast.Bin (Ast.Add, a, b) ->
      lin_add (lin_of ~nvars ~var_index ~progs ~ilookup a) (lin_of ~nvars ~var_index ~progs ~ilookup b)
  | Ast.Bin (Ast.Sub, a, b) ->
      lin_sub (lin_of ~nvars ~var_index ~progs ~ilookup a) (lin_of ~nvars ~var_index ~progs ~ilookup b)
  | Ast.Bin (Ast.Mul, a, b) -> (
      let la = lin_of ~nvars ~var_index ~progs ~ilookup a in
      let lb = lin_of ~nvars ~var_index ~progs ~ilookup b in
      match (Array.for_all (( = ) 0) la.coefs, Array.for_all (( = ) 0) lb.coefs) with
      | true, _ -> lin_scale la.base lb
      | _, true -> lin_scale lb.base la
      | false, false -> raise Fallback)
  | _ -> raise Fallback

(* Storage position (per dimension) as a linear form, through a layout. *)
let pos_through_layout layout ~flb (v : lin) =
  match layout with
  | Layout.Prog { first; step; _ } ->
      let num = lin_sub v (lin_const (Array.length v.coefs) (flb + first)) in
      if num.base mod step <> 0 || Array.exists (fun c -> c mod step <> 0) num.coefs then
        raise Fallback;
      { base = num.base / step; coefs = Array.map (fun c -> c / step) num.coefs }
  | Layout.Explicit _ -> raise Fallback

(* Combine per-dimension positions into a flat linear offset, checking that
   every reachable offset is inside the payload. *)
let flat_of_positions ~lens nd positions =
  let strides = Ndarray.strides nd in
  let nvars = match positions with p :: _ -> Array.length p.coefs | [] -> 0 in
  let acc = ref (lin_const nvars 0) in
  List.iteri
    (fun d p ->
      (* storage index space starts at lb; flat = (pos - lb) * stride *)
      let adjusted = lin_sub p (lin_const nvars nd.Ndarray.lb.(d)) in
      acc := lin_add !acc (lin_scale strides.(d) adjusted))
    positions;
  let flat = !acc in
  (* corner check: linear => extrema at corner points *)
  let size = Ndarray.size nd in
  let rec corners k lo hi =
    if k >= Array.length flat.coefs then begin
      if lo < 0 || hi >= size then raise Fallback
    end
    else
      let c = flat.coefs.(k) in
      let span = c * (lens.(k) - 1) in
      corners (k + 1) (lo + min 0 span) (hi + max 0 span)
  in
  if size = 0 then raise Fallback;
  corners 0 flat.base flat.base;
  flat

let load_node nd flat =
  let pad a = (a.base, a.coefs.(0), a.coefs.(1), a.coefs.(2)) in
  let b, s1, s2, s3 = pad flat in
  match nd.Ndarray.data with
  | Ndarray.Reals d -> Nload (d, b, s1, s2, s3)
  | Ndarray.Ints d -> Nloadi (d, b, s1, s2, s3)
  | Ndarray.Logs _ -> raise Fallback

(* ------------------------------------------------------------------ *)
(* Plans: the structure-only half of specialization                    *)
(* ------------------------------------------------------------------ *)

(* Everything about a FORALL that does not depend on run-time values —
   eligibility, the operator tree, which references feed which leaves,
   integer-vs-real division — is decided once and cached per statement.
   Scalars stay symbolic ([Tscal], re-read every execution: gauss's pivot
   changes each step) and references stay as slots whose flat affine
   offsets are re-derived every execution (layouts, scalar subscripts and
   the iteration space all change under the statement). *)
type tnode =
  | Tconst of float
  | Tscal of string
  | Tcounter of int
  | Tload of int  (* slot into the plan's reference vector *)
  | Tneg of tnode
  | Tadd of tnode * tnode
  | Tsub of tnode * tnode
  | Tmul of tnode * tnode
  | Tdiv of tnode * tnode
  | Tidiv of tnode * tnode
  | Tfun1 of (float -> float) * tnode
  | Tfun2 of (float -> float -> float) * tnode * tnode
  | Tsel of tnode * tnode * tnode

type plan = {
  p_f : Ir.forall;
  p_template : tnode;
  p_refs : Ast.ref_ array;
  p_eligible : bool;
}

let eligible p = p.p_eligible

let make_var_index f =
  let var_names = List.map fst f.Ir.f_vars in
  fun v ->
    let rec go k = function
      | [] -> None
      | x :: _ when x = v -> Some k
      | _ :: tl -> go (k + 1) tl
    in
    go 0 var_names

let subscripts (r : Ast.ref_) =
  List.map (function Ast.Elem e -> e | Ast.Range _ -> raise Fallback) r.Ast.args

let plan ~env ~scalar_lookup ~(f : Ir.forall) =
  try
    if f.Ir.f_mask <> None || f.Ir.f_post <> None || f.Ir.f_snapshot then raise Fallback;
    let nvars_real = List.length f.Ir.f_vars in
    if nvars_real = 0 || nvars_real > 3 then raise Fallback;
    let var_index = make_var_index f in
    (* dynamic result kind, mirroring Scalar's value dispatch: Ki means the
       interpreter would compute this subexpression on Ints, so division
       must truncate.  MIN/MAX return one of their original operands, so a
       mixed-kind MIN is Int or Real depending on runtime values (Kmix) —
       a division involving Kmix cannot be compiled to either form.
       Scalar kinds are declaration-stable, so deciding here (at first
       execution) holds for every later execution of the statement. *)
    let join a b = if a = b then a else `Kmix in
    let rec kind_of (e : Ast.expr) =
      match e.Ast.e with
      | Ast.Int_lit _ -> `Ki
      | Ast.Real_lit _ -> `Kr
      | Ast.Log_lit _ | Ast.Str_lit _ -> `Kmix
      | Ast.Var v -> (
          if var_index v <> None then `Ki
          else
            match scalar_lookup v with
            | Some (Scalar.Int _) -> `Ki
            | Some (Scalar.Real _) -> `Kr
            | _ -> `Kmix)
      | Ast.Un (_, a) -> kind_of a
      | Ast.Bin ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) -> (
          (* Scalar.num_op: Int op Int -> Int, any Real involved -> Real *)
          match (kind_of a, kind_of b) with
          | `Ki, `Ki -> `Ki
          | `Kr, (`Ki | `Kr | `Kmix) | (`Ki | `Kmix), `Kr -> `Kr
          | _ -> `Kmix)
      | Ast.Bin (Ast.Pow, a, b) -> (
          (* Int ** negative Int is Real: Ki ** Ki is value-dependent *)
          match (kind_of a, kind_of b) with
          | `Kr, _ | _, `Kr -> `Kr
          | _ -> `Kmix)
      | Ast.Bin (_, _, _) -> `Kmix
      | Ast.Ref r -> (
          match Sema.array_spec env r.Ast.base with
          | Some spec -> if spec.Sema.skind = Ast.Integer then `Ki else `Kr
          | None -> (
              match r.Ast.base with
              | "INT" | "NINT" -> `Ki
              | "REAL" | "FLOAT" | "DBLE" | "SQRT" | "EXP" | "LOG" | "LOG10" | "SIN"
              | "COS" | "TAN" | "ASIN" | "ACOS" | "ATAN" | "ATAN2" | "SIGN" ->
                  `Kr
              | "MERGE" -> (
                  (* result is one of the first two args; the mask is logical *)
                  match r.Ast.args with
                  | [ Ast.Elem t; Ast.Elem f; _ ] -> join (kind_of t) (kind_of f)
                  | _ -> `Kmix)
              | "ABS" | "MIN" | "MAX" | "MOD" | "MODULO" -> (
                  let ks =
                    List.map
                      (function Ast.Elem e -> kind_of e | Ast.Range _ -> `Kmix)
                      r.Ast.args
                  in
                  match ks with [] -> `Kmix | k :: tl -> List.fold_left join k tl)
              | _ -> `Kmix))
    in
    let refs = ref [] in
    let nrefs = ref 0 in
    let slot r =
      let s = !nrefs in
      incr nrefs;
      refs := r :: !refs;
      Tload s
    in
    let rec compile (e : Ast.expr) =
      match e.Ast.e with
      | Ast.Real_lit v -> Tconst v
      | Ast.Int_lit n -> Tconst (float_of_int n)
      | Ast.Var v -> (
          match var_index v with
          | Some k -> Tcounter k
          | None -> (
              match scalar_lookup v with
              | Some (Scalar.Int _) | Some (Scalar.Real _) -> Tscal v
              | _ -> raise Fallback))
      | Ast.Un (Ast.Neg, a) -> Tneg (compile a)
      | Ast.Un (Ast.Not, _) -> raise Fallback
      | Ast.Bin (op, a, b) -> (
          let ca = compile a and cb = compile b in
          match op with
          | Ast.Add -> Tadd (ca, cb)
          | Ast.Sub -> Tsub (ca, cb)
          | Ast.Mul -> Tmul (ca, cb)
          | Ast.Div -> (
              match (kind_of a, kind_of b) with
              | `Ki, `Ki -> Tidiv (ca, cb)
              | `Kr, _ | _, `Kr -> Tdiv (ca, cb)
              | _ -> raise Fallback)
          | Ast.Pow -> Tfun2 (Float.pow, ca, cb)
          | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
              (* 1./0. encodes logical; [compare] mirrors Scalar.compare_num
                 on numeric values (total order: NaN and -0. included) *)
              match (kind_of a, kind_of b) with
              | (`Ki | `Kr), (`Ki | `Kr) ->
                  let fn =
                    match op with
                    | Ast.Eq -> fun (x : float) y -> if compare x y = 0 then 1. else 0.
                    | Ast.Ne -> fun (x : float) y -> if compare x y <> 0 then 1. else 0.
                    | Ast.Lt -> fun (x : float) y -> if compare x y < 0 then 1. else 0.
                    | Ast.Le -> fun (x : float) y -> if compare x y <= 0 then 1. else 0.
                    | Ast.Gt -> fun (x : float) y -> if compare x y > 0 then 1. else 0.
                    | _ -> fun (x : float) y -> if compare x y >= 0 then 1. else 0.
                  in
                  Tfun2 (fn, ca, cb)
              | _ -> raise Fallback)
          | Ast.And | Ast.Or -> raise Fallback)
      | Ast.Log_lit _ | Ast.Str_lit _ -> raise Fallback
      | Ast.Ref r when Intrinsic_names.is_elemental r.Ast.base
                       && Sema.array_spec env r.Ast.base = None -> (
          let sargs = subscripts r in
          let args = List.map compile sargs in
          let kinds () = List.map kind_of sargs in
          match (r.Ast.base, args) with
          | "ABS", [ a ] -> Tfun1 (Float.abs, a)
          | "SQRT", [ a ] -> Tfun1 (Float.sqrt, a)
          | "EXP", [ a ] -> Tfun1 (Float.exp, a)
          | "LOG", [ a ] -> Tfun1 (Float.log, a)
          | "SIN", [ a ] -> Tfun1 (sin, a)
          | "COS", [ a ] -> Tfun1 (cos, a)
          (* compare-based, not Float.min/max: Scalar.min2/max2 order -0.
             and NaN by [compare], and return the first operand on ties *)
          | "MIN", [ a; b ] ->
              Tfun2 ((fun (x : float) y -> if compare x y <= 0 then x else y), a, b)
          | "MAX", [ a; b ] ->
              Tfun2 ((fun (x : float) y -> if compare x y >= 0 then x else y), a, b)
          | "MOD", [ a; b ] -> (
              match kinds () with
              | [ `Ki; `Ki ] ->
                  Tfun2
                    ((fun x y -> float_of_int (int_of_float x mod int_of_float y)), a, b)
              | [ (`Ki | `Kr); (`Ki | `Kr) ] -> Tfun2 (Float.rem, a, b)
              | _ -> raise Fallback)
          | "MODULO", [ a; b ] -> (
              match kinds () with
              | [ `Ki; `Ki ] ->
                  Tfun2
                    ( (fun x y -> float_of_int (Util.modulo (int_of_float x) (int_of_float y))),
                      a,
                      b )
              | _ -> raise Fallback)
          | "MERGE", [ t; f; m ] -> (
              (* the mask must compile to a relational (1./0.), never a
                 plain numeric expression *)
              match sargs with
              | [ _; _;
                  { Ast.e = Ast.Bin ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _); _ }
                ] ->
                  Tsel (t, f, m)
              | _ -> raise Fallback)
          | ("REAL" | "FLOAT" | "DBLE"), [ a ] -> a
          | _ -> raise Fallback)
      | Ast.Ref r -> (
          match Sema.array_spec env r.Ast.base with
          | None -> raise Fallback
          | Some spec ->
              if spec.Sema.skind = Ast.Logical then raise Fallback;
              slot r)
    in
    let template = compile f.Ir.f_rhs in
    { p_f = f; p_template = template; p_refs = Array.of_list (List.rev !refs); p_eligible = true }
  with Fallback -> { p_f = f; p_template = Tconst 0.; p_refs = [||]; p_eligible = false }

(* ------------------------------------------------------------------ *)
(* Blocked execution                                                   *)
(* ------------------------------------------------------------------ *)

(* The flat offsets an affine form reaches over the iteration box. *)
let range_of ~lens (l : lin) =
  let lo = ref l.base and hi = ref l.base in
  Array.iteri
    (fun k c ->
      let span = c * (lens.(k) - 1) in
      lo := !lo + min 0 span;
      hi := !hi + max 0 span)
    l.coefs;
  (!lo, !hi)

(* Distinct iterations write distinct flats iff, taking the dimensions
   with more than one iteration in ascending |coef| order, each |coef|
   strictly exceeds the whole span reachable by the smaller ones (a
   mixed-radix digit argument).  Reordered/blocked execution is only
   legal when this holds: with a many-to-one store map the canonical
   element order is observable (last writer wins, and identity reads
   see earlier writes). *)
let store_injective ~lens (l : lin) =
  let dims = ref [] in
  Array.iteri (fun k c -> if lens.(k) > 1 then dims := (abs c, lens.(k)) :: !dims) l.coefs;
  let dims = List.sort compare !dims in
  let span = ref 0 in
  List.for_all
    (fun (c, len) ->
      if c <= !span then false
      else begin
        span := !span + (c * (len - 1));
        true
      end)
    dims

(* Strided windows over raw float arrays: the unit of blocked evaluation.
   A load is a zero-copy view; operator nodes evaluate their operands and
   then run one tight loop into a pooled buffer.  Per element, the FP
   operations and their order are exactly those of [ev], so results are
   bit-identical to the tree walk. *)
type strip = { sa : float array; so : int; st : int }

let get_buf pool depth len =
  if Array.length !pool <= depth then begin
    let np = Array.make (depth + 4) [||] in
    Array.blit !pool 0 np 0 (Array.length !pool);
    pool := np
  end;
  if Array.length !pool.(depth) < len then !pool.(depth) <- Array.make len 0.;
  !pool.(depth)

(* [cs] carries the fixed outer counter values with [cs.(k) = 0]; the
   inner counter [k] sweeps [0, len).  Materializing nodes ([Nlin],
   [Nidiv]) re-enter [ev] per element — they are rare in real bodies. *)
let rec strip_eval pool depth n (cs : int array) k len =
  match n with
  | Nconst v ->
      let b = get_buf pool depth 1 in
      b.(0) <- v;
      { sa = b; so = 0; st = 0 }
  | Nload (d, b, s1, s2, s3) ->
      let off = b + (s1 * cs.(0)) + (s2 * cs.(1)) + (s3 * cs.(2)) in
      let st = match k with 0 -> s1 | 1 -> s2 | _ -> s3 in
      { sa = d; so = off; st }
  | Nloadi (d, b, s1, s2, s3) ->
      let off = b + (s1 * cs.(0)) + (s2 * cs.(1)) + (s3 * cs.(2)) in
      let st = match k with 0 -> s1 | 1 -> s2 | _ -> s3 in
      let out = get_buf pool depth len in
      for i = 0 to len - 1 do
        Array.unsafe_set out i (float_of_int (Array.unsafe_get d (off + (st * i))))
      done;
      { sa = out; so = 0; st = 1 }
  | Nlin _ | Nidiv _ | Nsel _ ->
      let out = get_buf pool depth len in
      for i = 0 to len - 1 do
        cs.(k) <- i;
        Array.unsafe_set out i (ev n cs.(0) cs.(1) cs.(2))
      done;
      cs.(k) <- 0;
      { sa = out; so = 0; st = 1 }
  | Nneg a ->
      let sa = strip_eval pool (depth + 1) a cs k len in
      let out = get_buf pool depth len in
      let aa = sa.sa and ao = sa.so and astr = sa.st in
      for i = 0 to len - 1 do
        Array.unsafe_set out i (-.Array.unsafe_get aa (ao + (astr * i)))
      done;
      { sa = out; so = 0; st = 1 }
  | Nadd (a, b) -> strip_bin pool depth `Add a b cs k len
  | Nsub (a, b) -> strip_bin pool depth `Sub a b cs k len
  | Nmul (a, b) -> strip_bin pool depth `Mul a b cs k len
  | Ndiv (a, b) -> strip_bin pool depth `Div a b cs k len
  | Nfun1 (f, a) ->
      let sa = strip_eval pool (depth + 1) a cs k len in
      let out = get_buf pool depth len in
      let aa = sa.sa and ao = sa.so and astr = sa.st in
      for i = 0 to len - 1 do
        Array.unsafe_set out i (f (Array.unsafe_get aa (ao + (astr * i))))
      done;
      { sa = out; so = 0; st = 1 }
  | Nfun2 (f, a, b) ->
      let sa = strip_eval pool (depth + 1) a cs k len in
      let sb = strip_eval pool (depth + 2) b cs k len in
      let out = get_buf pool depth len in
      let aa = sa.sa and ao = sa.so and astr = sa.st in
      let ba = sb.sa and bo = sb.so and bstr = sb.st in
      for i = 0 to len - 1 do
        Array.unsafe_set out i
          (f (Array.unsafe_get aa (ao + (astr * i))) (Array.unsafe_get ba (bo + (bstr * i))))
      done;
      { sa = out; so = 0; st = 1 }

and strip_bin pool depth op a b cs k len =
  let sa = strip_eval pool (depth + 1) a cs k len in
  let sb = strip_eval pool (depth + 2) b cs k len in
  let out = get_buf pool depth len in
  let aa = sa.sa and ao = sa.so and astr = sa.st in
  let ba = sb.sa and bo = sb.so and bstr = sb.st in
  (match op with
  | `Add ->
      for i = 0 to len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get aa (ao + (astr * i)) +. Array.unsafe_get ba (bo + (bstr * i)))
      done
  | `Sub ->
      for i = 0 to len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get aa (ao + (astr * i)) -. Array.unsafe_get ba (bo + (bstr * i)))
      done
  | `Mul ->
      for i = 0 to len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get aa (ao + (astr * i)) *. Array.unsafe_get ba (bo + (bstr * i)))
      done
  | `Div ->
      for i = 0 to len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get aa (ao + (astr * i)) /. Array.unsafe_get ba (bo + (bstr * i)))
      done);
  { sa = out; so = 0; st = 1 }

(* Fused multiply-update: gauss's rank-1 body A = A - L*U (and the +
   variants) reads the store at the identity offset, so the whole row is
   one in-place pass with no intermediate buffer. *)
type fmu =
  | Fsub of node * node  (* store <- store -. x*y *)
  | Fadd_r of node * node  (* store <- store +. x*y *)
  | Fadd_l of node * node  (* store <- x*y +. store *)
  | Fcopy of float array * int * int * int * int  (* store <- plain load *)
  | Fnone

let fmu_of body ~store ~sb ~ss1 ~ss2 ~ss3 =
  let identity d b t1 t2 t3 = d == store && b = sb && t1 = ss1 && t2 = ss2 && t3 = ss3 in
  match body with
  | Nsub (Nload (d, b, t1, t2, t3), Nmul (x, y)) when identity d b t1 t2 t3 -> Fsub (x, y)
  | Nadd (Nload (d, b, t1, t2, t3), Nmul (x, y)) when identity d b t1 t2 t3 -> Fadd_r (x, y)
  | Nadd (Nmul (x, y), Nload (d, b, t1, t2, t3)) when identity d b t1 t2 t3 -> Fadd_l (x, y)
  | Nload (d, b, t1, t2, t3) -> Fcopy (d, b, t1, t2, t3)
  | _ -> Fnone

(* Execute the nest through row strips.  [k] is the chosen innermost
   counter (interchanged to the store's unit-stride dimension when one
   exists); the outer two counters keep their nest order — legal because
   blocked execution is only entered when the store map is injective and
   self-reads are identity/disjoint, which makes iterations independent. *)
let exec_blocked ~store ~sb ~ss1 ~ss2 ~ss3 ~lens body =
  let ssa = [| ss1; ss2; ss3 |] in
  let candidates = List.filter (fun k -> lens.(k) > 1) [ 0; 1; 2 ] in
  match candidates with
  | [] -> false
  | _ ->
      let k =
        match List.find_opt (fun k -> abs ssa.(k) = 1) candidates with
        | Some k -> k
        | None -> List.hd (List.rev candidates)
      in
      let ssk = ssa.(k) in
      let o1, o2 =
        match List.filter (fun j -> j <> k) [ 0; 1; 2 ] with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      in
      let len = lens.(k) in
      let cs = [| 0; 0; 0 |] in
      let pool = ref [||] in
      let fmu = fmu_of body ~store ~sb ~ss1 ~ss2 ~ss3 in
      for a = 0 to lens.(o1) - 1 do
        cs.(o1) <- a;
        for b = 0 to lens.(o2) - 1 do
          cs.(o2) <- b;
          let sbase = sb + (ss1 * cs.(0)) + (ss2 * cs.(1)) + (ss3 * cs.(2)) in
          (match fmu with
          | Fsub (x, y) ->
              let xs = strip_eval pool 1 x cs k len in
              let ys = strip_eval pool 2 y cs k len in
              let xa = xs.sa and xo = xs.so and xst = xs.st in
              let ya = ys.sa and yo = ys.so and yst = ys.st in
              for i = 0 to len - 1 do
                let o = sbase + (ssk * i) in
                Array.unsafe_set store o
                  (Array.unsafe_get store o
                  -. (Array.unsafe_get xa (xo + (xst * i)) *. Array.unsafe_get ya (yo + (yst * i))
                     ))
              done
          | Fadd_r (x, y) ->
              let xs = strip_eval pool 1 x cs k len in
              let ys = strip_eval pool 2 y cs k len in
              let xa = xs.sa and xo = xs.so and xst = xs.st in
              let ya = ys.sa and yo = ys.so and yst = ys.st in
              for i = 0 to len - 1 do
                let o = sbase + (ssk * i) in
                Array.unsafe_set store o
                  (Array.unsafe_get store o
                  +. (Array.unsafe_get xa (xo + (xst * i)) *. Array.unsafe_get ya (yo + (yst * i))
                     ))
              done
          | Fadd_l (x, y) ->
              let xs = strip_eval pool 1 x cs k len in
              let ys = strip_eval pool 2 y cs k len in
              let xa = xs.sa and xo = xs.so and xst = xs.st in
              let ya = ys.sa and yo = ys.so and yst = ys.st in
              for i = 0 to len - 1 do
                let o = sbase + (ssk * i) in
                Array.unsafe_set store o
                  (Array.unsafe_get xa (xo + (xst * i))
                   *. Array.unsafe_get ya (yo + (yst * i))
                  +. Array.unsafe_get store o)
              done
          | Fcopy (d, b0, t1, t2, t3) ->
              let off = b0 + (t1 * cs.(0)) + (t2 * cs.(1)) + (t3 * cs.(2)) in
              let st = match k with 0 -> t1 | 1 -> t2 | _ -> t3 in
              for i = 0 to len - 1 do
                Array.unsafe_set store (sbase + (ssk * i)) (Array.unsafe_get d (off + (st * i)))
              done
          | Fnone ->
              let r = strip_eval pool 0 body cs k len in
              let ra = r.sa and ro = r.so and rst = r.st in
              for i = 0 to len - 1 do
                Array.unsafe_set store (sbase + (ssk * i)) (Array.unsafe_get ra (ro + (rst * i)))
              done)
        done
      done;
      true

(* ------------------------------------------------------------------ *)
(* Execution: the value-dependent half                                 *)
(* ------------------------------------------------------------------ *)

type outcome = { blocked_loops : int }

let execute (p : plan) ~me ~scalar_lookup ~darr_of ~temp_of ~values ~blocked =
  if not p.p_eligible then None
  else
    try
      let f = p.p_f in
      let nvars = 3 in
      (* progressions and lengths; pad to three counters *)
      let lens = Array.make nvars 1 in
      let progs = Array.make nvars (0, 0) in
      List.iteri
        (fun k vals ->
          let n = Array.length vals in
          if n = 0 then raise Fallback;
          let g0 = vals.(0) in
          let gs = if n >= 2 then vals.(1) - vals.(0) else 0 in
          (* iteration sets from set_BOUND are progressions by construction;
             verify cheaply on the last element *)
          if n >= 2 && vals.(n - 1) <> g0 + ((n - 1) * gs) then raise Fallback;
          lens.(k) <- n;
          progs.(k) <- (g0, gs))
        values;
      let var_index = make_var_index f in
      let ilookup v =
        match scalar_lookup v with Some (Scalar.Int n) -> Some n | _ -> None
      in
      let flookup v =
        match scalar_lookup v with
        | Some (Scalar.Int n) -> Some (float_of_int n)
        | Some (Scalar.Real r) -> Some r
        | _ -> None
      in
      let lin_of e = lin_of ~nvars ~var_index ~progs ~ilookup e in
      (* flat linear offset of an array reference under its access *)
      let flat_of_ref (r : Ast.ref_) =
        let acc = List.assoc_opt r.Ast.rid f.Ir.f_access in
        match acc with
        | None | Some Ir.Acc_direct ->
            let darr = darr_of r.Ast.base in
            let dad = darr.Darray.dad in
            let nd = darr.Darray.local in
            let positions =
              List.mapi
                (fun d e ->
                  let v = lin_of e in
                  let flb = (Dad.dims dad).(d).Dad.flb in
                  pos_through_layout (Dad.layout_at dad ~dim:d ~rank:me) ~flb v)
                (subscripts r)
            in
            (nd, flat_of_positions ~lens nd positions)
        | Some (Ir.Acc_box { temp; dims }) ->
            let nd =
              match temp_of temp with Some (Tbox nd) -> nd | _ -> raise Fallback
            in
            let darr = darr_of r.Ast.base in
            let dad = darr.Darray.dad in
            let positions =
              List.mapi
                (fun d bd ->
                  match bd with
                  | Ir.Collapsed -> lin_const nvars 1
                  | Ir.By_sub e ->
                      let v = lin_of e in
                      let flb = (Dad.dims dad).(d).Dad.flb in
                      let pl = pos_through_layout (Dad.layout_at dad ~dim:d ~rank:me) ~flb v in
                      (* temporaries have lower bound 1 *)
                      lin_add pl (lin_const nvars 1))
                (Array.to_list dims)
            in
            (nd, flat_of_positions ~lens nd positions)
        | Some (Ir.Acc_flat { temp }) ->
            let nd =
              match temp_of temp with Some (Tflat nd) -> nd | _ -> raise Fallback
            in
            (* the iteration counter in nest order *)
            let counter = ref (lin_const nvars 0) in
            let weight = ref 1 in
            for k = nvars - 1 downto 0 do
              let l = lin_const nvars 0 in
              l.coefs.(k) <- !weight;
              counter := lin_add !counter l;
              weight := !weight * lens.(k)
            done;
            (nd, flat_of_positions ~lens nd [ lin_add !counter (lin_const nvars 1) ])
        | Some (Ir.Acc_global_temp { temp }) ->
            let nd =
              match temp_of temp with Some (Tglobal nd) -> nd | _ -> raise Fallback
            in
            let positions = List.map (fun e -> lin_of e) (subscripts r) in
            (nd, flat_of_positions ~lens nd positions)
      in
      (* resolve the reference slots, then the store side *)
      let slots = Array.map flat_of_ref p.p_refs in
      let lhs_darr = darr_of f.Ir.f_lhs.Ast.base in
      let store_nd = lhs_darr.Darray.local in
      let store =
        match store_nd.Ndarray.data with Ndarray.Reals d -> d | _ -> raise Fallback
      in
      let _, sflat = flat_of_ref { f.Ir.f_lhs with Ast.rid = -1 } in
      (* -1 rid: no access entry, so the lhs resolves Acc_direct *)
      let sb = sflat.base
      and ss1 = sflat.coefs.(0)
      and ss2 = sflat.coefs.(1)
      and ss3 = sflat.coefs.(2) in
      (* instantiate the cached template against this execution's values *)
      let rec inst t =
        match t with
        | Tconst v -> Nconst v
        | Tscal v -> (
            match flookup v with Some x -> Nconst x | None -> raise Fallback)
        | Tcounter k ->
            let g0, gs = progs.(k) in
            let s = Array.make nvars 0. in
            s.(k) <- float_of_int gs;
            Nlin (float_of_int g0, s.(0), s.(1), s.(2))
        | Tload s ->
            let nd, flat = slots.(s) in
            load_node nd flat
        | Tneg a -> Nneg (inst a)
        | Tadd (a, b) -> Nadd (inst a, inst b)
        | Tsub (a, b) -> Nsub (inst a, inst b)
        | Tmul (a, b) -> Nmul (inst a, inst b)
        | Tdiv (a, b) -> Ndiv (inst a, inst b)
        | Tidiv (a, b) -> Nidiv (inst a, inst b)
        | Tfun1 (fn, a) -> Nfun1 (fn, inst a)
        | Tfun2 (fn, a, b) -> Nfun2 (fn, inst a, inst b)
        | Tsel (t, fa, m) -> Nsel (inst t, inst fa, inst m)
      in
      let body = inst p.p_template in
      (* Blocked execution is only sound when iterations are independent:
         the store map must be injective over the box, and any rhs read of
         the store array must be the identity offset (reads its own
         element, which is written only after the read in every order) or
         disjoint from the written range. *)
      let blocked_ok =
        blocked
        && store_injective ~lens sflat
        && Array.for_all
             (fun (nd, flat) ->
               match nd.Ndarray.data with
               | Ndarray.Reals d when d == store ->
                   (flat.base = sflat.base && flat.coefs = sflat.coefs)
                   ||
                   let lo, hi = range_of ~lens flat in
                   let slo, shi = range_of ~lens sflat in
                   hi < slo || lo > shi
               | _ -> true)
             slots
      in
      let did_block =
        blocked_ok && exec_blocked ~store ~sb ~ss1 ~ss2 ~ss3 ~lens body
      in
      if not did_block then
        for c1 = 0 to lens.(0) - 1 do
          for c2 = 0 to lens.(1) - 1 do
            for c3 = 0 to lens.(2) - 1 do
              Array.unsafe_set store
                (sb + (ss1 * c1) + (ss2 * c2) + (ss3 * c3))
                (ev body c1 c2 c3)
            done
          done
        done;
      Atomic.incr run_count;
      Some { blocked_loops = (if did_block then 1 else 0) }
    with Fallback -> None
