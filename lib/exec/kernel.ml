open F90d_base
open F90d_dist
open F90d_runtime
open F90d_frontend
open F90d_ir

type temp_nd = Tbox of Ndarray.t | Tflat of Ndarray.t | Tglobal of Ndarray.t

(* Compiled float expressions over up to three loop counters. *)
type node =
  | Nconst of float
  | Nlin of float * float * float * float  (* base + s1*c1 + s2*c2 + s3*c3 *)
  | Nload of float array * int * int * int * int  (* data, base, s1, s2, s3 *)
  | Nloadi of int array * int * int * int * int
  | Nneg of node
  | Nadd of node * node
  | Nsub of node * node
  | Nmul of node * node
  | Ndiv of node * node
  | Nidiv of node * node  (* both operands integer-valued: Fortran truncation *)
  | Nfun1 of (float -> float) * node
  | Nfun2 of (float -> float -> float) * node * node

let rec ev n c1 c2 c3 =
  match n with
  | Nconst v -> v
  | Nlin (b, s1, s2, s3) ->
      b +. (s1 *. float_of_int c1) +. (s2 *. float_of_int c2) +. (s3 *. float_of_int c3)
  | Nload (d, b, s1, s2, s3) -> Array.unsafe_get d (b + (s1 * c1) + (s2 * c2) + (s3 * c3))
  | Nloadi (d, b, s1, s2, s3) ->
      float_of_int (Array.unsafe_get d (b + (s1 * c1) + (s2 * c2) + (s3 * c3)))
  | Nneg a -> -.ev a c1 c2 c3
  | Nadd (a, b) -> ev a c1 c2 c3 +. ev b c1 c2 c3
  | Nsub (a, b) -> ev a c1 c2 c3 -. ev b c1 c2 c3
  | Nmul (a, b) -> ev a c1 c2 c3 *. ev b c1 c2 c3
  | Ndiv (a, b) -> ev a c1 c2 c3 /. ev b c1 c2 c3
  | Nidiv (a, b) ->
      float_of_int (int_of_float (ev a c1 c2 c3) / int_of_float (ev b c1 c2 c3))
  | Nfun1 (f, a) -> f (ev a c1 c2 c3)
  | Nfun2 (f, a, b) -> f (ev a c1 c2 c3) (ev b c1 c2 c3)

exception Fallback

(* counted atomically: kernels run concurrently under Engine.run_parallel *)
let run_count = Atomic.make 0
let runs () = Atomic.get run_count
let reset_runs () = Atomic.set run_count 0

(* Linear form over the loop counters: value = base + sum coefs.(k)*c_k. *)
type lin = { base : int; coefs : int array }

let lin_const nvars b = { base = b; coefs = Array.make nvars 0 }

let lin_add a b = { base = a.base + b.base; coefs = Array.map2 ( + ) a.coefs b.coefs }
let lin_scale k a = { base = k * a.base; coefs = Array.map (( * ) k) a.coefs }
let lin_sub a b = lin_add a (lin_scale (-1) b)

(* Extract a linear form in the loop counters from an index expression:
   FORALL variables contribute their progressions, scalars and parameters
   their current integer values. *)
let rec lin_of ~nvars ~var_index ~progs ~ilookup (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit n -> lin_const nvars n
  | Ast.Var v -> (
      match var_index v with
      | Some k ->
          let g0, gs = progs.(k) in
          let l = lin_const nvars g0 in
          l.coefs.(k) <- gs;
          l
      | None -> (
          match ilookup v with Some n -> lin_const nvars n | None -> raise Fallback))
  | Ast.Un (Ast.Neg, a) -> lin_scale (-1) (lin_of ~nvars ~var_index ~progs ~ilookup a)
  | Ast.Bin (Ast.Add, a, b) ->
      lin_add (lin_of ~nvars ~var_index ~progs ~ilookup a) (lin_of ~nvars ~var_index ~progs ~ilookup b)
  | Ast.Bin (Ast.Sub, a, b) ->
      lin_sub (lin_of ~nvars ~var_index ~progs ~ilookup a) (lin_of ~nvars ~var_index ~progs ~ilookup b)
  | Ast.Bin (Ast.Mul, a, b) -> (
      let la = lin_of ~nvars ~var_index ~progs ~ilookup a in
      let lb = lin_of ~nvars ~var_index ~progs ~ilookup b in
      match (Array.for_all (( = ) 0) la.coefs, Array.for_all (( = ) 0) lb.coefs) with
      | true, _ -> lin_scale la.base lb
      | _, true -> lin_scale lb.base la
      | false, false -> raise Fallback)
  | _ -> raise Fallback

(* Storage position (per dimension) as a linear form, through a layout. *)
let pos_through_layout layout ~flb (v : lin) =
  match layout with
  | Layout.Prog { first; step; _ } ->
      let num = lin_sub v (lin_const (Array.length v.coefs) (flb + first)) in
      if num.base mod step <> 0 || Array.exists (fun c -> c mod step <> 0) num.coefs then
        raise Fallback;
      { base = num.base / step; coefs = Array.map (fun c -> c / step) num.coefs }
  | Layout.Explicit _ -> raise Fallback

(* Combine per-dimension positions into a flat linear offset, checking that
   every reachable offset is inside the payload. *)
let flat_of_positions ~lens nd positions =
  let strides = Ndarray.strides nd in
  let nvars = match positions with p :: _ -> Array.length p.coefs | [] -> 0 in
  let acc = ref (lin_const nvars 0) in
  List.iteri
    (fun d p ->
      (* storage index space starts at lb; flat = (pos - lb) * stride *)
      let adjusted = lin_sub p (lin_const nvars nd.Ndarray.lb.(d)) in
      acc := lin_add !acc (lin_scale strides.(d) adjusted))
    positions;
  let flat = !acc in
  (* corner check: linear => extrema at corner points *)
  let size = Ndarray.size nd in
  let rec corners k lo hi =
    if k >= Array.length flat.coefs then begin
      if lo < 0 || hi >= size then raise Fallback
    end
    else
      let c = flat.coefs.(k) in
      let span = c * (lens.(k) - 1) in
      corners (k + 1) (lo + min 0 span) (hi + max 0 span)
  in
  if size = 0 then raise Fallback;
  corners 0 flat.base flat.base;
  flat

let load_node nd flat =
  let pad a = (a.base, a.coefs.(0), a.coefs.(1), a.coefs.(2)) in
  let b, s1, s2, s3 = pad flat in
  match nd.Ndarray.data with
  | Ndarray.Reals d -> Nload (d, b, s1, s2, s3)
  | Ndarray.Ints d -> Nloadi (d, b, s1, s2, s3)
  | Ndarray.Logs _ -> raise Fallback

let try_run ~env ~me ~scalar_lookup ~darr_of ~temp_of ~values ~(f : Ir.forall) =
  try
    if f.Ir.f_mask <> None || f.Ir.f_post <> None || f.Ir.f_snapshot then raise Fallback;
    let nvars_real = List.length f.Ir.f_vars in
    if nvars_real = 0 || nvars_real > 3 then raise Fallback;
    let nvars = 3 in
    let var_names = List.map fst f.Ir.f_vars in
    let var_index v =
      let rec go k = function
        | [] -> None
        | x :: _ when x = v -> Some k
        | _ :: tl -> go (k + 1) tl
      in
      go 0 var_names
    in
    (* progressions and lengths; pad to three counters *)
    let lens = Array.make nvars 1 in
    let progs = Array.make nvars (0, 0) in
    List.iteri
      (fun k vals ->
        let n = Array.length vals in
        if n = 0 then raise Fallback;
        let g0 = vals.(0) in
        let gs = if n >= 2 then vals.(1) - vals.(0) else 0 in
        (* iteration sets from set_BOUND are progressions by construction;
           verify cheaply on the last element *)
        if n >= 2 && vals.(n - 1) <> g0 + ((n - 1) * gs) then raise Fallback;
        lens.(k) <- n;
        progs.(k) <- (g0, gs))
      values;
    let ilookup v =
      match scalar_lookup v with Some (Scalar.Int n) -> Some n | _ -> None
    in
    let flookup v =
      match scalar_lookup v with
      | Some (Scalar.Int n) -> Some (float_of_int n)
      | Some (Scalar.Real r) -> Some r
      | _ -> None
    in
    let lin_of e = lin_of ~nvars ~var_index ~progs ~ilookup e in
    let subscripts (r : Ast.ref_) =
      List.map
        (function Ast.Elem e -> e | Ast.Range _ -> raise Fallback)
        r.Ast.args
    in
    (* flat linear offset of an array reference under its access *)
    let flat_of_ref (r : Ast.ref_) =
      let acc = List.assoc_opt r.Ast.rid f.Ir.f_access in
      match acc with
      | None | Some Ir.Acc_direct ->
          let darr = darr_of r.Ast.base in
          let dad = darr.Darray.dad in
          let nd = darr.Darray.local in
          let positions =
            List.mapi
              (fun d e ->
                let v = lin_of e in
                let flb = (Dad.dims dad).(d).Dad.flb in
                pos_through_layout (Dad.layout_at dad ~dim:d ~rank:me) ~flb v)
              (subscripts r)
          in
          (nd, flat_of_positions ~lens nd positions)
      | Some (Ir.Acc_box { temp; dims }) ->
          let nd =
            match temp_of temp with Some (Tbox nd) -> nd | _ -> raise Fallback
          in
          let darr = darr_of r.Ast.base in
          let dad = darr.Darray.dad in
          let positions =
            List.mapi
              (fun d bd ->
                match bd with
                | Ir.Collapsed -> lin_const nvars 1
                | Ir.By_sub e ->
                    let v = lin_of e in
                    let flb = (Dad.dims dad).(d).Dad.flb in
                    let p = pos_through_layout (Dad.layout_at dad ~dim:d ~rank:me) ~flb v in
                    (* temporaries have lower bound 1 *)
                    lin_add p (lin_const nvars 1))
              (Array.to_list dims)
          in
          (nd, flat_of_positions ~lens nd positions)
      | Some (Ir.Acc_flat { temp }) ->
          let nd =
            match temp_of temp with Some (Tflat nd) -> nd | _ -> raise Fallback
          in
          (* the iteration counter in nest order *)
          let counter = ref (lin_const nvars 0) in
          let weight = ref 1 in
          for k = nvars - 1 downto 0 do
            let l = lin_const nvars 0 in
            l.coefs.(k) <- !weight;
            counter := lin_add !counter l;
            weight := !weight * lens.(k)
          done;
          (nd, flat_of_positions ~lens nd [ lin_add !counter (lin_const nvars 1) ])
      | Some (Ir.Acc_global_temp { temp }) ->
          let nd =
            match temp_of temp with Some (Tglobal nd) -> nd | _ -> raise Fallback
          in
          let positions = List.map (fun e -> lin_of e) (subscripts r) in
          (nd, flat_of_positions ~lens nd positions)
    in
    (* dynamic result kind, mirroring Scalar's value dispatch: Ki means the
       interpreter would compute this subexpression on Ints, so division
       must truncate.  MIN/MAX return one of their original operands, so a
       mixed-kind MIN is Int or Real depending on runtime values (Kmix) —
       a division involving Kmix cannot be compiled to either form *)
    let join a b = if a = b then a else `Kmix in
    let rec kind_of (e : Ast.expr) =
      match e.Ast.e with
      | Ast.Int_lit _ -> `Ki
      | Ast.Real_lit _ -> `Kr
      | Ast.Log_lit _ | Ast.Str_lit _ -> `Kmix
      | Ast.Var v -> (
          if var_index v <> None then `Ki
          else
            match scalar_lookup v with
            | Some (Scalar.Int _) -> `Ki
            | Some (Scalar.Real _) -> `Kr
            | _ -> `Kmix)
      | Ast.Un (_, a) -> kind_of a
      | Ast.Bin ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) -> (
          (* Scalar.num_op: Int op Int -> Int, any Real involved -> Real *)
          match (kind_of a, kind_of b) with
          | `Ki, `Ki -> `Ki
          | `Kr, (`Ki | `Kr | `Kmix) | (`Ki | `Kmix), `Kr -> `Kr
          | _ -> `Kmix)
      | Ast.Bin (Ast.Pow, a, b) -> (
          (* Int ** negative Int is Real: Ki ** Ki is value-dependent *)
          match (kind_of a, kind_of b) with
          | `Kr, _ | _, `Kr -> `Kr
          | _ -> `Kmix)
      | Ast.Bin (_, _, _) -> `Kmix
      | Ast.Ref r -> (
          match Sema.array_spec env r.Ast.base with
          | Some spec -> if spec.Sema.skind = Ast.Integer then `Ki else `Kr
          | None -> (
              match r.Ast.base with
              | "INT" | "NINT" -> `Ki
              | "REAL" | "FLOAT" | "DBLE" | "SQRT" | "EXP" | "LOG" | "LOG10" | "SIN"
              | "COS" | "TAN" | "ASIN" | "ACOS" | "ATAN" | "ATAN2" | "SIGN" ->
                  `Kr
              | "ABS" | "MIN" | "MAX" | "MOD" | "MODULO" | "MERGE" -> (
                  let ks =
                    List.map
                      (function Ast.Elem e -> kind_of e | Ast.Range _ -> `Kmix)
                      r.Ast.args
                  in
                  match ks with [] -> `Kmix | k :: tl -> List.fold_left join k tl)
              | _ -> `Kmix))
    in
    (* compile the rhs *)
    let rec compile (e : Ast.expr) =
      match e.Ast.e with
      | Ast.Real_lit v -> Nconst v
      | Ast.Int_lit n -> Nconst (float_of_int n)
      | Ast.Var v -> (
          match var_index v with
          | Some k ->
              let g0, gs = progs.(k) in
              let s = Array.make nvars 0. in
              s.(k) <- float_of_int gs;
              Nlin (float_of_int g0, s.(0), s.(1), s.(2))
          | None -> (
              match flookup v with Some x -> Nconst x | None -> raise Fallback))
      | Ast.Un (Ast.Neg, a) -> Nneg (compile a)
      | Ast.Un (Ast.Not, _) -> raise Fallback
      | Ast.Bin (op, a, b) -> (
          let ca = compile a and cb = compile b in
          match op with
          | Ast.Add -> Nadd (ca, cb)
          | Ast.Sub -> Nsub (ca, cb)
          | Ast.Mul -> Nmul (ca, cb)
          | Ast.Div -> (
              match (kind_of a, kind_of b) with
              | `Ki, `Ki -> Nidiv (ca, cb)
              | `Kr, _ | _, `Kr -> Ndiv (ca, cb)
              | _ -> raise Fallback)
          | Ast.Pow -> Nfun2 (Float.pow, ca, cb)
          | _ -> raise Fallback)
      | Ast.Log_lit _ | Ast.Str_lit _ -> raise Fallback
      | Ast.Ref r when Intrinsic_names.is_elemental r.Ast.base
                       && Sema.array_spec env r.Ast.base = None -> (
          let args = List.map compile (subscripts r) in
          match (r.Ast.base, args) with
          | "ABS", [ a ] -> Nfun1 (Float.abs, a)
          | "SQRT", [ a ] -> Nfun1 (Float.sqrt, a)
          | "EXP", [ a ] -> Nfun1 (Float.exp, a)
          | "LOG", [ a ] -> Nfun1 (Float.log, a)
          | "SIN", [ a ] -> Nfun1 (sin, a)
          | "COS", [ a ] -> Nfun1 (cos, a)
          | "MIN", [ a; b ] -> Nfun2 (Float.min, a, b)
          | "MAX", [ a; b ] -> Nfun2 (Float.max, a, b)
          | ("REAL" | "FLOAT" | "DBLE"), [ a ] -> a
          | _ -> raise Fallback)
      | Ast.Ref r -> (
          match Sema.array_spec env r.Ast.base with
          | None -> raise Fallback
          | Some spec ->
              if spec.Sema.skind = Ast.Logical then raise Fallback;
              let nd, flat = flat_of_ref r in
              load_node nd flat)
    in
    let body = compile f.Ir.f_rhs in
    (* the store side *)
    let lhs_darr = darr_of f.Ir.f_lhs.Ast.base in
    let store_nd = lhs_darr.Darray.local in
    let store =
      match store_nd.Ndarray.data with Ndarray.Reals d -> d | _ -> raise Fallback
    in
    let _, sflat = flat_of_ref { f.Ir.f_lhs with Ast.rid = -1 } in
    (* -1 rid: no access entry, so the lhs resolves Acc_direct *)
    let sb = sflat.base and ss1 = sflat.coefs.(0) and ss2 = sflat.coefs.(1) and ss3 = sflat.coefs.(2) in
    for c1 = 0 to lens.(0) - 1 do
      for c2 = 0 to lens.(1) - 1 do
        for c3 = 0 to lens.(2) - 1 do
          Array.unsafe_set store (sb + (ss1 * c1) + (ss2 * c2) + (ss3 * c3)) (ev body c1 c2 c3)
        done
      done
    done;
    Atomic.incr run_count;
    true
  with Fallback -> false
