(** Blocked node-kernel specializer — the stand-in for the node Fortran
    compiler's scalar optimizer/vectorizer that §7 delegates to.

    A FORALL whose iteration sets are arithmetic progressions, whose
    references all resolve to flat offsets affine in the loop counters,
    and whose body is real arithmetic, is specialized in two halves:

    - {!plan} decides everything value-independent once per statement —
      eligibility, the operator tree, which references feed which leaves,
      integer-vs-real division — and is cached by the interpreter, so
      re-executions under a DO loop skip AST analysis entirely;
    - {!execute} re-derives the affine offsets against the current
      layouts, scalars and iteration sets, then runs the whole local
      nest: through strided row strips and fused multiply-update loops
      when blocked execution is legal (injective store map, self-reads
      identity or disjoint — gauss's rank-1 update qualifies), otherwise
      through the canonical-order tree walk.

    Anything else (masks, integer stores, indirection, write-back
    phases) reports failure and falls back to the general interpreter;
    results are bit-identical on every path (same per-element operations
    in the same per-element order). *)

open F90d_frontend

type temp_nd =
  | Tbox of F90d_base.Ndarray.t
  | Tflat of F90d_base.Ndarray.t
  | Tglobal of F90d_base.Ndarray.t

val runs : unit -> int
(** Number of loop nests executed by the specializer since {!reset_runs}
    (summed over all simulated processors) — lets performance tests assert
    that hot FORALLs actually take the fast path. *)

val reset_runs : unit -> unit

type plan
(** The structure-only half of specialization for one FORALL: safe to
    cache per statement across executions (it captures no array storage
    and no scalar values), including across the interpreter's array
    movers.  An ineligible plan is also cacheable — structural rejection
    is value-independent. *)

val plan :
  env:Sema.unit_env -> scalar_lookup:(string -> F90d_base.Scalar.t option) -> f:F90d_ir.Ir.forall -> plan
(** Analyze a FORALL.  [scalar_lookup] is used only for declaration-stable
    kind decisions (integer vs. real division), never for values. *)

val eligible : plan -> bool

type outcome = { blocked_loops : int  (** 1 if the nest ran blocked/fused, else 0 *) }

val execute :
  plan ->
  me:int ->
  scalar_lookup:(string -> F90d_base.Scalar.t option) ->
  darr_of:(string -> F90d_runtime.Darray.t) ->
  temp_of:(int -> temp_nd option) ->
  values:int array list ->
  blocked:bool ->
  outcome option
(** Runs the whole local loop nest if specialization applies; [None]
    means the caller must interpret.  [values] are this processor's
    per-variable global index values in nest order; [blocked] gates the
    strip/fused executor (off reproduces the plain tree walk). *)
