open F90d_base
open F90d_dist
open F90d_machine
open F90d_runtime
open F90d_frontend
open F90d_ir

exception Return_unwind

(* communication tracing: enable with Logs.Src.set_level src (Some Debug),
   or f90dc --trace *)
let log_src = Logs.Src.create "f90d.exec" ~doc:"SPMD interpreter communication trace"

module Log = (val Logs.src_log log_src : Logs.LOG)

type temp_val = Tbox of Ndarray.t | Tflat of Ndarray.t | Tglobal of Ndarray.t

(* One rank's copy of the last multicast slab of an array: the slice
   [rv_dim = rv_g0] (zero-based) as broadcast when the array's write
   version was [rv_version].  While the version is unchanged the slab
   still holds live data, so a repeated multicast of the same slice —
   or a remote single-element read inside it — can be served locally
   with zero messages.  All fields are identical on every rank (the
   publish is collective and versions are bumped replicatedly), so the
   serve decision can never diverge across ranks. *)
type replica = { rv_version : int; rv_dim : int; rv_g0 : int; rv_slab : Ndarray.t }

(* A split-phase pre-communication between its issue and its wait.
   [Pserved]: the issue was answered from the replica cache, nothing in
   flight — the wait just publishes the slab.  [Pflight]: the broadcast
   tree is running; the wait completes it and (like the blocking path)
   publishes the received slab to the replica cache. *)
type pending_comm =
  | Pserved of { pc_temp : int; pc_slab : Ndarray.t }
  | Pflight of {
      pc_temp : int;
      pc_arr : string;
      pc_dim : int;
      pc_g0 : int;
      pc_bp : Collectives.bcast_pending;
    }

(* What a reference's base name denotes, resolved once per unit: element
   references are the innermost loop of every compiled program, and
   re-deciding array-vs-intrinsic per access means string comparisons
   against the whole intrinsic table on the hottest path. *)
type ref_class = Rarray | Relemental | Rtransformational

type ustate = {
  ctx : Rctx.t;
  prog : Ir.program_ir;
  u : Ir.unit_ir;
  ref_classes : (string, ref_class) Hashtbl.t;
  dads : (string, Dad.t) Hashtbl.t;
  scalars : (string, Scalar.t ref) Hashtbl.t;
  arrays : (string, Darray.t) Hashtbl.t;
  out : Buffer.t;
  ptemps : (int, temp_val) Hashtbl.t;
      (** communication temporaries produced outside any FORALL frame
          (loop pre-headers, cross-statement batches); frames fall back
          here when their own table misses *)
  replicas : (string, replica) Hashtbl.t;
  kplans : (int, Kernel.plan) Hashtbl.t;
      (** kernel plans keyed by statement id: the structure-only half of
          FORALL specialization survives across executions (plans capture
          no array storage, so the movers' rebinds cannot stale them) *)
  coalesce : bool;  (** runtime half of the coalesce pass (replica cache) *)
  pending : (int, pending_comm) Hashtbl.t;
      (** split-phase comms issued but not yet waited, keyed by the
          pass-assigned slot id ([Ir.split.sp_hid]); empty between any
          issue/wait-balanced program points *)
}

type frame = {
  fvals : (string * int) list;  (** FORALL variable -> global value *)
  faccess : (int * Ir.access) list;
  ftemps : (int, temp_val) Hashtbl.t;
  fsnap : (string * Ndarray.t) option;
      (** pre-loop copy of the lhs local section: Acc_direct reads of the
          lhs array go here when the FORALL also writes it in place
          ([Ir.f_snapshot]), preserving evaluate-before-write semantics *)
  mutable counter : int;
}

type mode = Mscalar | Mloop of frame

let me st = Rctx.me st.ctx

let dad_of st name =
  match Hashtbl.find_opt st.dads name with
  | Some d -> d
  | None -> Diag.bug "interp: no DAD for '%s'" name

let darray_of st name =
  match Hashtbl.find_opt st.arrays name with
  | Some a -> a
  | None -> Diag.bug "interp: no array '%s'" name

let kind_of_decl = function
  | Ast.Integer -> Scalar.Kint
  | Ast.Real -> Scalar.Kreal
  | Ast.Logical -> Scalar.Klog

(* ------------------------------------------------------------------ *)
(* Operation counting (time charging)                                  *)
(* ------------------------------------------------------------------ *)

let rec ops_of_expr (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Log_lit _ | Ast.Str_lit _ | Ast.Var _ -> (0, 0)
  | Ast.Un (_, a) ->
      let f, i = ops_of_expr a in
      (f + 1, i)
  | Ast.Bin (op, a, b) ->
      let f1, i1 = ops_of_expr a and f2, i2 = ops_of_expr b in
      let fl, io =
        match op with
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow -> (1, 0)
        | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (1, 0)
        | Ast.And | Ast.Or -> (0, 1)
      in
      (f1 + f2 + fl, i1 + i2 + io)
  | Ast.Ref r ->
      let inner =
        List.map
          (function
            | Ast.Elem x -> ops_of_expr x
            | Ast.Range _ -> (0, 0))
          r.Ast.args
      in
      let f, i = List.fold_left (fun (a, b) (c, d) -> (a + c, b + d)) (0, 0) inner in
      if Intrinsic_names.is_elemental r.Ast.base then (f + 4, i + List.length r.Ast.args)
      else (f, i + (2 * List.length r.Ast.args))

(* ------------------------------------------------------------------ *)
(* Elemental intrinsics                                                *)
(* ------------------------------------------------------------------ *)

let apply_elemental name loc args =
  let real1 f = Scalar.Real (f (Scalar.to_real (List.nth args 0))) in
  match (name, args) with
  | "ABS", [ Scalar.Int n ] -> Scalar.Int (abs n)
  | "ABS", [ _ ] -> real1 Float.abs
  | "SQRT", [ _ ] -> real1 Float.sqrt
  | "EXP", [ _ ] -> real1 Float.exp
  | "LOG", [ _ ] -> real1 Float.log
  | "LOG10", [ _ ] -> real1 Float.log10
  | "SIN", [ _ ] -> real1 sin
  | "COS", [ _ ] -> real1 cos
  | "TAN", [ _ ] -> real1 tan
  | "ASIN", [ _ ] -> real1 asin
  | "ACOS", [ _ ] -> real1 acos
  | "ATAN", [ _ ] -> real1 atan
  | "ATAN2", [ a; b ] -> Scalar.Real (Float.atan2 (Scalar.to_real a) (Scalar.to_real b))
  | "MOD", [ Scalar.Int a; Scalar.Int b ] -> Scalar.Int (a mod b)
  | "MOD", [ a; b ] -> Scalar.Real (Float.rem (Scalar.to_real a) (Scalar.to_real b))
  | "MODULO", [ Scalar.Int a; Scalar.Int b ] -> Scalar.Int (Util.modulo a b)
  | "MIN", (_ :: _ :: _ as l) -> List.fold_left Scalar.min2 (List.hd l) (List.tl l)
  | "MAX", (_ :: _ :: _ as l) -> List.fold_left Scalar.max2 (List.hd l) (List.tl l)
  | "SIGN", [ a; b ] ->
      let x = Scalar.to_real a in
      Scalar.Real (if Scalar.to_real b >= 0. then Float.abs x else -.Float.abs x)
  | "INT", [ a ] -> Scalar.Int (Scalar.to_int a)
  | "NINT", [ a ] -> Scalar.Int (int_of_float (Float.round (Scalar.to_real a)))
  | ("REAL" | "FLOAT" | "DBLE"), [ a ] -> Scalar.Real (Scalar.to_real a)
  | "MERGE", [ t; f; m ] -> if Scalar.to_bool m then t else f
  | _ -> Diag.error ~loc "bad arguments for intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

(* Storage position (per dimension) of a global Fortran index, allowing
   ghost-area reads on contiguous layouts. *)
let storage_pos st dad ~dim g =
  let d = (Dad.dims dad).(dim) in
  let a0 = g - d.Dad.flb in
  match Dad.layout_at dad ~dim ~rank:(me st) with
  | Layout.Prog { first; step = 1; count } ->
      let pos = a0 - first in
      if pos < -d.Dad.ghost_lo || pos >= count + d.Dad.ghost_hi then
        Diag.error "index %d of %s dim %d is outside the local section (+ghosts)" g
          (Dad.name dad) (dim + 1);
      pos
  | lay ->
      if Layout.is_owned lay a0 then Layout.local_of_global lay a0
      else
        Diag.error "index %d of %s dim %d is not owned by this processor" g (Dad.name dad)
          (dim + 1)

let version_key st name = st.u.Ir.u_name ^ ":" ^ name

(* Communication temporaries normally live in the FORALL's own frame;
   hoisted and cross-statement-batched comms store theirs in the unit's
   persistent table instead. *)
let find_temp st f temp =
  match Hashtbl.find_opt f.ftemps temp with
  | Some _ as v -> v
  | None -> Hashtbl.find_opt st.ptemps temp

(* Serve a remote single-element read from the replica cache.  The miss
   path ([Darray.get_global]) is a collective, so the hit/miss decision
   must be identical on every rank: the version counter, the cached
   (dim, g0) and the distribution are all replicated, and we only serve
   when every *other* dimension is undistributed — then each rank's slab
   spans those dimensions fully and all ranks agree. *)
let replica_serve st name (darr : Darray.t) g =
  if not st.coalesce then None
  else
    match Hashtbl.find_opt st.replicas name with
    | None -> None
    | Some rv ->
        let dad = darr.Darray.dad in
        let dims = Dad.dims dad in
        if
          rv.rv_version <> Rctx.version st.ctx (version_key st name)
          || g.(rv.rv_dim) - dims.(rv.rv_dim).Dad.flb <> rv.rv_g0
        then None
        else begin
          let uniform = ref true in
          Array.iteri
            (fun d dd -> if d <> rv.rv_dim && dd.Dad.pdim <> None then uniform := false)
            dims;
          if not !uniform then None
          else begin
            let idx =
              Array.mapi
                (fun d gi -> if d = rv.rv_dim then 1 else storage_pos st dad ~dim:d gi + 1)
                g
            in
            Some (Ndarray.get rv.rv_slab idx)
          end
        end

let rec eval st mode (e : Ast.expr) : Scalar.t =
  match e.Ast.e with
  | Ast.Int_lit n -> Scalar.Int n
  | Ast.Real_lit r -> Scalar.Real r
  | Ast.Log_lit b -> Scalar.Log b
  | Ast.Str_lit s -> Scalar.Str s
  | Ast.Var v -> eval_var st mode e.Ast.loc v
  | Ast.Un (Ast.Neg, a) -> Scalar.neg (eval st mode a)
  | Ast.Un (Ast.Not, a) -> Scalar.not_ (eval st mode a)
  | Ast.Bin (op, a, b) ->
      let x = eval st mode a in
      (* short-circuit logicals to keep masks cheap *)
      (match (op, x) with
      | Ast.And, Scalar.Log false -> Scalar.Log false
      | Ast.Or, Scalar.Log true -> Scalar.Log true
      | _ ->
          let y = eval st mode b in
          let f =
            match op with
            | Ast.Add -> Scalar.add
            | Ast.Sub -> Scalar.sub
            | Ast.Mul -> Scalar.mul
            | Ast.Div -> Scalar.div
            | Ast.Pow -> Scalar.pow
            | Ast.Eq -> Scalar.cmp_eq
            | Ast.Ne -> Scalar.cmp_ne
            | Ast.Lt -> Scalar.cmp_lt
            | Ast.Le -> Scalar.cmp_le
            | Ast.Gt -> Scalar.cmp_gt
            | Ast.Ge -> Scalar.cmp_ge
            | Ast.And -> Scalar.and_
            | Ast.Or -> Scalar.or_
          in
          f x y)
  | Ast.Ref r -> eval_ref st mode e.Ast.loc r

and eval_var st mode loc v =
  (match mode with
  | Mloop f -> (
      match List.assoc_opt v f.fvals with Some g -> Some (Scalar.Int g) | None -> None)
  | Mscalar -> None)
  |> function
  | Some s -> s
  | None -> (
      match Hashtbl.find_opt st.scalars v with
      | Some r -> !r
      | None -> (
          match List.assoc_opt v st.u.Ir.u_env.Sema.uparams with
          | Some s -> s
          | None -> Diag.error ~loc "undefined variable '%s'" v))

and eval_ref st mode loc (r : Ast.ref_) =
  let elem_args () =
    List.map
      (function
        | Ast.Elem x -> x
        | Ast.Range _ -> Diag.error ~loc "unexpected array section")
      r.Ast.args
  in
  let cls =
    match Hashtbl.find_opt st.ref_classes r.Ast.base with
    | Some c -> c
    | None ->
        (* a declared array shadows any intrinsic of the same name *)
        let c =
          if Sema.array_spec st.u.Ir.u_env r.Ast.base <> None then Rarray
          else if Intrinsic_names.is_elemental r.Ast.base then Relemental
          else if Intrinsic_names.is_transformational r.Ast.base then Rtransformational
          else Diag.error ~loc "unknown function or array '%s'" r.Ast.base
        in
        Hashtbl.replace st.ref_classes r.Ast.base c;
        c
  in
  match cls with
  | Relemental -> apply_elemental r.Ast.base loc (List.map (eval st mode) (elem_args ()))
  | Rtransformational -> eval_transformational st mode loc r
  | Rarray -> (
      let subs = List.map (fun e -> Scalar.to_int (eval st mode e)) (elem_args ()) in
      let g = Array.of_list subs in
      match mode with
      | Mscalar -> read_element_scalar st r.Ast.base g
      | Mloop f -> read_element_loop st f loc r g)

and read_element_scalar st name g =
  let darr = darray_of st name in
  if Dad.is_replicated darr.Darray.dad then
    match Darray.get_local darr ~rank:(me st) g with
    | Some v -> v
    | None -> Diag.bug "interp: replicated array misses an element"
  else
    match replica_serve st name darr g with
    | Some v -> v
    | None -> Darray.get_global st.ctx darr g

and read_element_loop st f loc (r : Ast.ref_) g =
  match List.assoc_opt r.Ast.rid f.faccess with
  | None | Some Ir.Acc_direct ->
      let darr = darray_of st r.Ast.base in
      let dad = darr.Darray.dad in
      let idx = Array.mapi (fun d gi -> storage_pos st dad ~dim:d gi) g in
      let storage =
        match f.fsnap with
        | Some (base, nd) when base = r.Ast.base -> nd
        | _ -> darr.Darray.local
      in
      Ndarray.get storage idx
  | Some (Ir.Acc_box { temp; dims }) -> (
      match find_temp st f temp with
      | Some (Tbox nd) ->
          let darr = darray_of st r.Ast.base in
          let dad = darr.Darray.dad in
          let idx =
            Array.mapi
              (fun d bd ->
                match bd with
                | Ir.Collapsed -> 1
                | Ir.By_sub e ->
                    let gv = Scalar.to_int (eval st (Mloop f) e) in
                    storage_pos st dad ~dim:d gv + 1)
              (Array.of_list (Array.to_list dims))
          in
          Ndarray.get nd idx
      | _ -> Diag.error ~loc "communication temporary missing for '%s'" r.Ast.base)
  | Some (Ir.Acc_flat { temp }) -> (
      match find_temp st f temp with
      | Some (Tflat nd) -> Ndarray.get_flat nd f.counter
      | _ -> Diag.error ~loc "inspector temporary missing for '%s'" r.Ast.base)
  | Some (Ir.Acc_global_temp { temp }) -> (
      match find_temp st f temp with
      | Some (Tglobal nd) -> Ndarray.get nd g
      | _ -> Diag.error ~loc "concatenation temporary missing for '%s'" r.Ast.base)

and eval_transformational st mode loc (r : Ast.ref_) =
  (match mode with
  | Mloop _ -> Diag.error ~loc "transformational intrinsic %s inside FORALL" r.Ast.base
  | Mscalar -> ());
  let args =
    List.map
      (function
        | Ast.Elem x -> x
        | Ast.Range _ -> Diag.error ~loc "array section argument for %s" r.Ast.base)
      r.Ast.args
  in
  let whole_array (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Var v when Sema.array_spec st.u.Ir.u_env v <> None -> darray_of st v
    | _ -> Diag.error ~loc "%s expects a whole array argument" r.Ast.base
  in
  match (r.Ast.base, args) with
  | ("SUM" | "PRODUCT" | "MAXVAL" | "MINVAL" | "ALL" | "ANY"), [ a ] ->
      let op =
        match r.Ast.base with
        | "SUM" -> Redop.Sum
        | "PRODUCT" -> Redop.Prod
        | "MAXVAL" -> Redop.Max
        | "MINVAL" -> Redop.Min
        | "ALL" -> Redop.And
        | _ -> Redop.Or
      in
      Intrinsics.reduce st.ctx op (whole_array a)
  | "COUNT", [ a ] -> Intrinsics.count st.ctx (whole_array a)
  | ("DOT_PRODUCT" | "DOTPRODUCT"), [ a; b ] ->
      Intrinsics.dotproduct st.ctx (whole_array a) (whole_array b)
  | ("MAXLOC" | "MINLOC"), [ a ] ->
      let darr = whole_array a in
      if Array.length (Dad.dims darr.Darray.dad) <> 1 then
        Diag.error ~loc "%s is supported for rank-1 arrays (assign to a scalar)" r.Ast.base;
      let locv =
        if r.Ast.base = "MAXLOC" then Intrinsics.maxloc st.ctx darr
        else Intrinsics.minloc st.ctx darr
      in
      Scalar.Int locv.(0)
  | "SIZE", [ a ] -> Scalar.Int (Dad.global_size (whole_array a).Darray.dad)
  | "SIZE", [ a; d ] ->
      let dim = Scalar.to_int (eval st Mscalar d) in
      Scalar.Int (Dad.dims (whole_array a).Darray.dad).(dim - 1).Dad.extent
  | "LBOUND", [ a; d ] ->
      let dim = Scalar.to_int (eval st Mscalar d) in
      Scalar.Int (Dad.dims (whole_array a).Darray.dad).(dim - 1).Dad.flb
  | "UBOUND", [ a; d ] ->
      let dim = Scalar.to_int (eval st Mscalar d) in
      let dd = (Dad.dims (whole_array a).Darray.dad).(dim - 1) in
      Scalar.Int (dd.Dad.flb + dd.Dad.extent - 1)
  | _ -> Diag.error ~loc "unsupported use of intrinsic %s" r.Ast.base

(* ------------------------------------------------------------------ *)
(* Iteration spaces                                                    *)
(* ------------------------------------------------------------------ *)

(* Global values of each FORALL variable for [rank], in nest order.
   Returns None when the rank is masked out by a guard. *)
let iteration_values st (f : Ir.forall) ~ranges ~guard_vals ~rank =
  let full (lo, hi, stp) =
    if stp = 0 then Diag.error "zero FORALL stride";
    let n =
      if stp > 0 then max 0 (((hi - lo) / stp) + 1) else max 0 (((lo - hi) / -stp) + 1)
    in
    Array.init n (fun k -> lo + (k * stp))
  in
  match f.Ir.f_iter with
  | Ir.It_replicated -> Some (List.map full ranges)
  | Ir.It_canonical { var_dims; guards } ->
      let dad = dad_of st f.Ir.f_lhs.Ast.base in
      (* constant-subscript dimensions mask processors that do not own them *)
      let guard_ok =
        List.for_all2
          (fun (dim, _) gval -> Bounds.local_of_global_index dad ~dim ~rank gval <> None)
          guards guard_vals
      in
      if not guard_ok then None
      else
        Some
          (List.map2
             (fun (_, dim_opt) (lo, hi, stp) ->
               match dim_opt with
               | None -> full (lo, hi, stp)
               | Some dim -> (
                   match Bounds.set_bound dad ~dim ~rank ~glb:lo ~gub:hi ~gst:stp with
                   | None -> [||]
                   | Some { Bounds.llb; lub; lst } ->
                       let n = if lub < llb then 0 else ((lub - llb) / lst) + 1 in
                       (* resolve the layout once, not per index *)
                       let layout = Dad.layout_at dad ~dim ~rank in
                       let flb = (Dad.dims dad).(dim).Dad.flb in
                       Array.init n (fun k ->
                           Layout.global_of_local layout (llb + (k * lst)) + flb)))
             var_dims ranges)
  | Ir.It_even ->
      let p = Rctx.nprocs st.ctx in
      let values = List.map full ranges in
      (match values with
      | first :: rest ->
          let n = Array.length first in
          let chunk = Util.ceil_div (max n 1) p in
          let lo = rank * chunk and hi = min n ((rank + 1) * chunk) in
          let mine = if lo >= n then [||] else Array.sub first lo (hi - lo) in
          Some (mine :: rest)
      | [] -> Some [])

(* Iterate the cartesian product in nest order (first variable outermost),
   bumping the frame counter for every visited point. *)
let iterate_space vars_values (f : int list -> unit) =
  let arrays = Array.of_list vars_values in
  let n = Array.length arrays in
  if Array.for_all (fun a -> Array.length a > 0) arrays then begin
    let idx = Array.make n 0 in
    let rec go d =
      if d = n then f (List.init n (fun k -> arrays.(k).(idx.(k))))
      else
        for i = 0 to Array.length arrays.(d) - 1 do
          idx.(d) <- i;
          go (d + 1)
        done
    in
    if n = 0 then () else go 0
  end

(* ------------------------------------------------------------------ *)
(* Inspector needs                                                     *)
(* ------------------------------------------------------------------ *)

(* (owner, storage flat) of the element read by [r] at each iteration of
   [rank], in nest order.  Subscripts may only mention FORALL variables,
   parameters, scalars and replicated arrays, so any rank's needs are
   locally computable. *)
let needs_of_ref ?(every_owner = false) st (f : Ir.forall) ~ranges ~guard_vals ~frame_access
    ~ftemps (r : Ast.ref_) ~rank =
  let darr = darray_of st r.Ast.base in
  let dad = darr.Darray.dad in
  let acc = ref [] in
  (match iteration_values st f ~ranges ~guard_vals ~rank with
  | None -> ()
  | Some values ->
      (* subscripts may read indirection arrays through their own comm
         temporaries (e.g. V in A(V(I)) concatenated by an earlier pre
         op), so the frame must see the temps populated so far *)
      let fr0 = { fvals = []; faccess = frame_access; ftemps; fsnap = None; counter = 0 } in
      iterate_space values (fun point ->
          let fvals = List.map2 (fun (v, _) g -> (v, g)) f.Ir.f_vars point in
          (* the counter keeps Acc_flat subscript reads (inner inspector
             temps) in step with the iteration they were built for *)
          let fr = { fr0 with fvals; counter = fr0.counter } in
          fr0.counter <- fr0.counter + 1;
          let g =
            List.map
              (function
                | Ast.Elem e -> Scalar.to_int (eval st (Mloop fr) e)
                | Ast.Range _ -> Diag.bug "interp: section in inspector")
              r.Ast.args
            |> Array.of_list
          in
          let flat_on owner =
            let lidx =
              match Dad.local_indices dad ~rank:owner g with
              | Some l -> l
              | None -> Diag.bug "interp: home rank does not own element"
            in
            (owner, Dad.storage_flat dad ~rank:owner lidx)
          in
          if every_owner then
            (* grid dims the array is not distributed over replicate the
               element: a write must land on every copy, a read on one *)
            List.iter (fun o -> acc := flat_on o :: !acc) (Dad.owning_ranks dad g)
          else acc := flat_on (Dad.home_rank dad g) :: !acc));
  Array.of_list (List.rev !acc)

let writes_of_lhs st (f : Ir.forall) ~ranges ~guard_vals ~frame_access ~ftemps ~rank =
  needs_of_ref ~every_owner:true st f ~ranges ~guard_vals ~frame_access ~ftemps f.Ir.f_lhs ~rank

(* ------------------------------------------------------------------ *)
(* Schedule-reuse write versioning                                      *)
(* ------------------------------------------------------------------ *)

(* [Passes.key_schedules] proves a schedule's index sets depend only on
   named constants, the FORALL variables — and the *contents* of any index
   arrays in the subscripts (e.g. V in B(V(I))), which it cannot see
   change.  Every array assignment bumps a per-unit write counter
   (identically on every rank, so collective rebuilds stay consistent),
   and the current counters of a schedule's index arrays are appended to
   its cache key: a reuse after the index array was overwritten misses and
   rebuilds instead of serving the stale index sets. *)

let bump_written st name =
  if Hashtbl.mem st.arrays name then Rctx.bump_version st.ctx (version_key st name)

let version_sig st (r : Ast.ref_) =
  let bases =
    List.concat_map
      (function Ast.Elem e -> Ast.refs_of e | Ast.Range _ -> [])
      r.Ast.args
    |> List.filter_map (fun (ri : Ast.ref_) ->
           if Hashtbl.mem st.arrays ri.Ast.base then Some ri.Ast.base else None)
    |> List.sort_uniq compare
  in
  String.concat ""
    (List.map
       (fun b -> Printf.sprintf "|%s=%d" b (Rctx.version st.ctx (version_key st b)))
       bases)

(* ------------------------------------------------------------------ *)
(* Pre-communication                                                   *)
(* ------------------------------------------------------------------ *)

let zero_based_sub st name ~dim e =
  let dad = dad_of st name in
  Scalar.to_int (eval st Mscalar e) - (Dad.dims dad).(dim).Dad.flb

let log_comm st (c : Ir.comm) =
  Log.debug (fun m ->
      m "p%d t=%.6f %s(%s)" (me st) (Rctx.time st.ctx) (Ir.comm_name c)
        (match Ir.comm_source c with Some a -> a | None -> "<batch>"))

(* The multicast slab, through the replica cache when the coalesce pass is
   on: a repeat of the same (array, dim, slice) broadcast while the array
   is unmodified is served from the cached slab with no messages.  The
   reuse decision is replicated (see {!replica_serve} on why), so no rank
   skips a collective the others enter. *)
let multicast_slab st arr ~dim ~g0 =
  let darr = darray_of st arr in
  if not st.coalesce then Structured.multicast st.ctx darr ~dim ~g:g0
  else begin
    let ver = Rctx.version st.ctx (version_key st arr) in
    match Hashtbl.find_opt st.replicas arr with
    | Some rv when rv.rv_version = ver && rv.rv_dim = dim && rv.rv_g0 = g0 -> rv.rv_slab
    | _ ->
        let slab = Structured.multicast st.ctx darr ~dim ~g:g0 in
        Hashtbl.replace st.replicas arr { rv_version = ver; rv_dim = dim; rv_g0 = g0; rv_slab = slab };
        slab
  end

(* The two halves of a split-phase multicast (pass 6).  The issue makes
   the replica-cache serve/miss decision — at issue time, with the same
   replicated inputs as {!multicast_slab}, so no rank diverges — and on a
   miss starts the nonblocking broadcast tree.  The wait publishes the
   slab into the unit's persistent temp table (split comms, like hoisted
   ones, live outside any FORALL frame) and, on the in-flight path,
   refreshes the replica cache exactly as the blocking path would. *)
let exec_comm_issue st hid (c : Ir.comm) =
  log_comm st c;
  match c with
  | Ir.Multicast { arr; dim; g; temp } ->
      if Hashtbl.mem st.pending hid then Diag.bug "interp: double issue on split slot %d" hid;
      let g0 = zero_based_sub st arr ~dim g in
      let darr = darray_of st arr in
      let served =
        if not st.coalesce then None
        else
          let ver = Rctx.version st.ctx (version_key st arr) in
          match Hashtbl.find_opt st.replicas arr with
          | Some rv when rv.rv_version = ver && rv.rv_dim = dim && rv.rv_g0 = g0 ->
              Some rv.rv_slab
          | _ -> None
      in
      (match served with
      | Some slab -> Hashtbl.replace st.pending hid (Pserved { pc_temp = temp; pc_slab = slab })
      | None ->
          let bp = Structured.multicast_issue st.ctx darr ~dim ~g:g0 in
          Hashtbl.replace st.pending hid
            (Pflight { pc_temp = temp; pc_arr = arr; pc_dim = dim; pc_g0 = g0; pc_bp = bp }))
  | c -> Diag.bug "interp: split issue of non-multicast comm %s" (Ir.comm_name c)

let exec_comm_wait st hid =
  match Hashtbl.find_opt st.pending hid with
  | None -> Diag.bug "interp: wait on empty split slot %d" hid
  | Some p -> (
      Hashtbl.remove st.pending hid;
      match p with
      | Pserved { pc_temp; pc_slab } -> Hashtbl.replace st.ptemps pc_temp (Tbox pc_slab)
      | Pflight { pc_temp; pc_arr; pc_dim; pc_g0; pc_bp } ->
          let slab = Structured.multicast_wait st.ctx pc_bp in
          Hashtbl.replace st.ptemps pc_temp (Tbox slab);
          if st.coalesce then
            (* The intervening statements provably did not write the
               broadcast slice (split legality), so the slab equals the
               slice under the current version even if other parts of
               the array changed since the issue. *)
            Hashtbl.replace st.replicas pc_arr
              {
                rv_version = Rctx.version st.ctx (version_key st pc_arr);
                rv_dim = pc_dim;
                rv_g0 = pc_g0;
                rv_slab = slab;
              })

(* Comms that do not need the FORALL frame (everything but the inspector
   ops) — executable from a loop pre-header, where [ftemps] is the unit's
   persistent table [st.ptemps]. *)
let exec_comm_simple st ftemps (c : Ir.comm) =
  log_comm st c;
  match c with
  | Ir.Multicast { arr; dim; g; temp } ->
      let g0 = zero_based_sub st arr ~dim g in
      Hashtbl.replace ftemps temp (Tbox (multicast_slab st arr ~dim ~g0))
  | Ir.Transfer { arr; dim; src; dest; temp } -> (
      let s0 = zero_based_sub st arr ~dim src and d0 = zero_based_sub st arr ~dim dest in
      match Structured.transfer st.ctx (darray_of st arr) ~dim ~gsrc:s0 ~gdest:d0 with
      | Some slab -> Hashtbl.replace ftemps temp (Tbox slab)
      | None -> ())
  | Ir.Overlap_shift { arr; dim; amount } ->
      Structured.overlap_shift st.ctx (darray_of st arr) ~dim ~amount
  | Ir.Temp_shift { arr; dim; amount; temp } ->
      let a = Scalar.to_int (eval st Mscalar amount) in
      let slab = Structured.temporary_shift st.ctx (darray_of st arr) ~dim ~amount:a in
      Hashtbl.replace ftemps temp (Tbox slab)
  | Ir.Multicast_shift { ms_arr; mdim; ms_g; sdim; ms_amount; ms_temp; fused } ->
      let g0 = zero_based_sub st ms_arr ~dim:mdim ms_g in
      let a = Scalar.to_int (eval st Mscalar ms_amount) in
      let darr = darray_of st ms_arr in
      let slab =
        if fused then Structured.multicast_shift st.ctx darr ~mdim ~g:g0 ~sdim ~amount:a
        else begin
          (* unfused: shift everywhere, then broadcast the slice *)
          let shifted = Structured.temporary_shift st.ctx darr ~dim:sdim ~amount:a in
          let dad = darr.Darray.dad in
          let pd =
            match (Dad.dims dad).(mdim).Dad.pdim with
            | Some p -> p
            | None -> Diag.bug "interp: multicast dim not distributed"
          in
          let team = Collectives.team_along st.ctx ~dim:pd in
          let d = (Dad.dims dad).(mdim) in
          let root = Distrib.owner d.Dad.dist (Affine.eval d.Dad.align g0) in
          let payload =
            if (Rctx.my_coords st.ctx).(pd) = root then begin
              let pos =
                Layout.local_of_global (Dad.layout_at dad ~dim:mdim ~rank:(me st)) g0
              in
              let lo = Array.map (fun lb -> lb) shifted.Ndarray.lb in
              let extents = Array.copy shifted.Ndarray.extents in
              lo.(mdim) <- lo.(mdim) + pos;
              extents.(mdim) <- 1;
              Message.Arr (Ndarray.get_box shifted ~lo ~extents)
            end
            else Message.Empty
          in
          match Collectives.broadcast st.ctx team ~root payload with
          | Message.Arr s -> s
          | _ -> Diag.bug "interp: multicast protocol error"
        end
      in
      Hashtbl.replace ftemps ms_temp (Tbox slab)
  | Ir.Concat { arr; temp } ->
      Hashtbl.replace ftemps temp (Tglobal (Darray.gather_global st.ctx (darray_of st arr)))
  | Ir.Comm_batch members -> (
      (* one packed message per rank pair; members were proven homogeneous
         by the coalescing pass *)
      match members with
      | [] -> ()
      | (Ir.Overlap_shift _, _) :: _ ->
          let items =
            List.map
              (function
                | Ir.Overlap_shift { arr; dim; amount }, sid ->
                    (darray_of st arr, dim, amount, sid)
                | _ -> Diag.bug "interp: mixed comm batch")
              members
          in
          Structured.overlap_shift_batch st.ctx items
      | (Ir.Transfer _, _) :: _ ->
          let items =
            List.map
              (function
                | Ir.Transfer { arr; dim; src; dest; temp }, sid ->
                    ( darray_of st arr,
                      dim,
                      zero_based_sub st arr ~dim src,
                      zero_based_sub st arr ~dim dest,
                      sid,
                      temp )
                | _ -> Diag.bug "interp: mixed comm batch")
              members
          in
          let results =
            Structured.transfer_batch st.ctx
              (List.map (fun (d, dim, s0, d0, sid, _) -> (d, dim, s0, d0, sid)) items)
          in
          List.iter2
            (fun (_, _, _, _, _, temp) res ->
              match res with
              | Some slab ->
                  Hashtbl.replace ftemps temp (Tbox slab);
                  (* consumers downstream of the anchor statement read the
                     persistent table *)
                  Hashtbl.replace st.ptemps temp (Tbox slab)
              | None -> ())
            items results
      | _ -> Diag.bug "interp: unsupported comm batch")
  | Ir.Precomp_read _ | Ir.Gather_read _ ->
      Diag.bug "interp: inspector comm outside a FORALL frame"

let exec_comm st (f : Ir.forall) ~ranges ~guard_vals ~frame_access ftemps (c : Ir.comm) =
  match c with
  | Ir.Precomp_read { r; itemp; key } ->
      log_comm st c;
      let darr = darray_of st r.Ast.base in
      let build () =
        Schedule.build_read_local st.ctx
          ~needs:(needs_of_ref st f ~ranges ~guard_vals ~frame_access ~ftemps r ~rank:(me st))
          ~peer_needs:(fun peer -> needs_of_ref st f ~ranges ~guard_vals ~frame_access ~ftemps r ~rank:peer)
      in
      let sched =
        match key with
        | Some k -> Schedule.cached st.ctx ~key:(k ^ version_sig st r) build
        | None -> build ()
      in
      Hashtbl.replace ftemps itemp (Tflat (Schedule.read st.ctx sched darr))
  | Ir.Gather_read { r; itemp; key } ->
      log_comm st c;
      let darr = darray_of st r.Ast.base in
      let build () =
        Schedule.build_read_comm st.ctx
          ~needs:(needs_of_ref st f ~ranges ~guard_vals ~frame_access ~ftemps r ~rank:(me st))
      in
      let sched =
        match key with
        | Some k -> Schedule.cached st.ctx ~key:(k ^ version_sig st r) build
        | None -> build ()
      in
      Hashtbl.replace ftemps itemp (Tflat (Schedule.read st.ctx sched darr))
  | c -> exec_comm_simple st ftemps c

(* ------------------------------------------------------------------ *)
(* FORALL execution                                                    *)
(* ------------------------------------------------------------------ *)

(* Hand the whole local nest to the kernel layer.  [--fno-blocked-kernels]
   disables the layer outright — every FORALL interprets element by
   element, which is both the honest ablation baseline and the reference
   the fuzz differential compares bit-for-bit against.  Counts a run or
   a fallback in this rank's collector — empty slabs never reach here,
   so gauss's non-owning ranks count as neither. *)
let run_kernel st ftemps (f : Ir.forall) vv =
  let kcfg = Rctx.kernel_cfg st.ctx in
  if not kcfg.Rctx.kc_blocked then false
  else begin
    let scalar_lookup v =
      match Hashtbl.find_opt st.scalars v with
      | Some r -> Some !r
      | None -> List.assoc_opt v st.u.Ir.u_env.Sema.uparams
    in
    let temp_of t =
      let tv =
        match Hashtbl.find_opt ftemps t with
        | Some _ as v -> v
        | None -> Hashtbl.find_opt st.ptemps t
      in
      match tv with
      | Some (Tbox nd) -> Some (Kernel.Tbox nd)
      | Some (Tflat nd) -> Some (Kernel.Tflat nd)
      | Some (Tglobal nd) -> Some (Kernel.Tglobal nd)
      | None -> None
    in
    let pl =
      let sid, _ = Rctx.current_stmt st.ctx in
      match Hashtbl.find_opt st.kplans sid with
      | Some p -> p
      | None ->
          let p = Kernel.plan ~env:st.u.Ir.u_env ~scalar_lookup ~f in
          Hashtbl.replace st.kplans sid p;
          p
    in
    let rs = Engine.rank_stats (Rctx.engine st.ctx) in
    match
      Kernel.execute pl ~me:(me st) ~scalar_lookup ~darr_of:(darray_of st) ~temp_of ~values:vv
        ~blocked:true
    with
    | Some o ->
        Stats.record_kernel_run rs;
        if o.Kernel.blocked_loops > 0 then Stats.record_kernel_blocked rs o.Kernel.blocked_loops;
        true
    | None ->
        Stats.record_kernel_fallback rs;
        false
  end

let exec_forall_body st (f : Ir.forall) =
  let ranges =
    List.map
      (fun (_, (rg : Ast.range)) ->
        ( Scalar.to_int (eval st Mscalar rg.Ast.lo),
          Scalar.to_int (eval st Mscalar rg.Ast.hi),
          match rg.Ast.st with Some e -> Scalar.to_int (eval st Mscalar e) | None -> 1 ))
      f.Ir.f_vars
  in
  let guard_vals =
    match f.Ir.f_iter with
    | Ir.It_canonical { guards; _ } ->
        List.map (fun (_, e) -> Scalar.to_int (eval st Mscalar e)) guards
    | _ -> []
  in
  let ftemps = Hashtbl.create 8 in
  let frame_access = f.Ir.f_access in
  (* phase 1: collective pre-communication *)
  List.iter (exec_comm st f ~ranges ~guard_vals ~frame_access ftemps) f.Ir.f_pre;
  (* phase 2: local loop nest *)
  let lhs_darr = darray_of st f.Ir.f_lhs.Ast.base in
  let lhs_dad = lhs_darr.Darray.dad in
  (* the rhs reads the lhs array in place with a different subscript:
     snapshot the local section (ghosts already filled by phase 1) so the
     loop reads pre-statement values throughout *)
  let snapshot =
    if f.Ir.f_snapshot then begin
      Rctx.charge_copy_bytes st.ctx (Ndarray.bytes lhs_darr.Darray.local);
      Some (f.Ir.f_lhs.Ast.base, Ndarray.copy lhs_darr.Darray.local)
    end
    else None
  in
  let canonical_store =
    match f.Ir.f_iter with Ir.It_canonical _ | Ir.It_replicated -> true | Ir.It_even -> false
  in
  let writes = ref [] and values = ref [] in
  let flops_per_iter, iops_per_iter = ops_of_expr f.Ir.f_rhs in
  let iters = ref 0 in
  (match iteration_values st f ~ranges ~guard_vals ~rank:(me st) with
  | None -> ()
  | Some vv when
      canonical_store && f.Ir.f_mask = None && f.Ir.f_post = None && not f.Ir.f_snapshot
      && List.for_all (fun a -> Array.length a > 0) vv
      && run_kernel st ftemps f vv ->
      (* specialised kernel ran the whole nest *)
      iters := List.fold_left (fun acc a -> acc * Array.length a) 1 vv
  | Some vv ->
      let fr = { fvals = []; faccess = frame_access; ftemps; fsnap = snapshot; counter = 0 } in
      iterate_space vv (fun point ->
          let fvals = List.map2 (fun (v, _) g -> (v, g)) f.Ir.f_vars point in
          let fr2 = { fr with fvals; counter = fr.counter } in
          incr iters;
          let masked =
            match f.Ir.f_mask with
            | None -> false
            | Some m -> not (Scalar.to_bool (eval st (Mloop fr2) m))
          in
          if not masked then begin
            let v = eval st (Mloop fr2) f.Ir.f_rhs in
            let g =
              List.map
                (function
                  | Ast.Elem e -> Scalar.to_int (eval st (Mloop fr2) e)
                  | Ast.Range _ -> Diag.bug "interp: lhs section")
                f.Ir.f_lhs.Ast.args
              |> Array.of_list
            in
            if canonical_store then begin
              let idx = Array.mapi (fun d gi -> storage_pos st lhs_dad ~dim:d gi) g in
              Ndarray.set lhs_darr.Darray.local idx v
            end
            else
              (* one write per owning rank, mirroring writes_of_lhs so the
                 peer-exchange index lists line up *)
              List.iter
                (fun owner ->
                  let lidx = Option.get (Dad.local_indices lhs_dad ~rank:owner g) in
                  writes := (owner, Dad.storage_flat lhs_dad ~rank:owner lidx) :: !writes;
                  values := v :: !values)
                (Dad.owning_ranks lhs_dad g)
          end;
          fr.counter <- fr.counter + 1));
  Rctx.charge_flops st.ctx (!iters * (flops_per_iter + 1));
  Rctx.charge_iops st.ctx (!iters * (iops_per_iter + 2));
  (* phase 3: write-back *)
  match f.Ir.f_post with
  | None -> ()
  | Some post ->
      let writes_arr = Array.of_list (List.rev !writes) in
      let vals = Array.of_list (List.rev !values) in
      let tmp = Ndarray.create (Darray.kind lhs_darr) [| Array.length vals |] in
      Array.iteri (fun i v -> Ndarray.set_flat tmp i v) vals;
      let sched =
        let keyed = function
          | Some k -> Some (k ^ version_sig st f.Ir.f_lhs)
          | None -> None
        in
        match post with
        | Ir.Postcomp_write { key } when f.Ir.f_mask = None ->
            let build () =
              Schedule.build_write_local st.ctx ~writes:writes_arr ~peer_writes:(fun peer ->
                  writes_of_lhs st f ~ranges ~guard_vals ~frame_access ~ftemps ~rank:peer)
            in
            (match keyed key with Some k -> Schedule.cached st.ctx ~key:k build | None -> build ())
        | Ir.Postcomp_write { key } | Ir.Scatter_write { key } ->
            let build () = Schedule.build_write_comm st.ctx ~writes:writes_arr in
            (match keyed key with Some k -> Schedule.cached st.ctx ~key:k build | None -> build ())
      in
      Schedule.write st.ctx sched lhs_darr tmp

(* Statement-level compute span: names the FORALL by its left-hand side
   so a trace reads like the source program. *)
let exec_forall st (f : Ir.forall) =
  let tr = Rctx.trace st.ctx in
  if not (F90d_trace.Trace.enabled tr) then exec_forall_body st f
  else begin
    F90d_trace.Trace.span_begin tr ~t:(Rctx.time st.ctx)
      ("forall " ^ f.Ir.f_lhs.Ast.base) ~cat:"compute";
    exec_forall_body st f;
    F90d_trace.Trace.span_end tr ~t:(Rctx.time st.ctx)
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let coerce kind v =
  match kind with
  | Scalar.Kint -> Scalar.Int (Scalar.to_int v)
  | Scalar.Kreal -> Scalar.Real (Scalar.to_real v)
  | Scalar.Klog -> Scalar.Log (Scalar.to_bool v)
  | Scalar.Kstr -> v

let same_dist (a : Dad.t) (b : Dad.t) =
  Array.length (Dad.dims a) = Array.length (Dad.dims b)
  && Array.for_all2
       (fun (x : Dad.dim) (y : Dad.dim) ->
         x.Dad.flb = y.Dad.flb && x.Dad.extent = y.Dad.extent
         && Affine.equal x.Dad.align y.Dad.align
         && x.Dad.dist.Distrib.form = y.Dad.dist.Distrib.form
         && x.Dad.dist.Distrib.n = y.Dad.dist.Distrib.n
         && x.Dad.dist.Distrib.p = y.Dad.dist.Distrib.p
         && x.Dad.pdim = y.Dad.pdim)
       (Dad.dims a) (Dad.dims b)

(* Materialise [src] under descriptor [dad] (locally when the mapping is
   identical, by redistribution otherwise). *)
let adopt st (src : Darray.t) dad =
  if same_dist src.Darray.dad dad then begin
    let dst = Darray.create st.ctx dad in
    Darray.iter_owned dst ~rank:(me st) (fun g flat ->
        Ndarray.set_flat dst.Darray.local flat
          (Option.get (Darray.get_local src ~rank:(me st) g)));
    Rctx.charge_copy_bytes st.ctx (Ndarray.bytes dst.Darray.local);
    dst
  end
  else Redistribute.redistribute st.ctx src dad

let exec_mover_body st ~target ~(call : Ast.ref_) loc =
  let args =
    List.map
      (function
        | Ast.Elem x -> x
        | Ast.Range _ -> Diag.error ~loc "array section argument for %s" call.Ast.base)
      call.Ast.args
  in
  let arr_arg (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Var v when Hashtbl.mem st.arrays v -> darray_of st v
    | _ -> Diag.error ~loc "%s expects whole-array arguments" call.Ast.base
  in
  let int_arg e = Scalar.to_int (eval st Mscalar e) in
  let target_dad = dad_of st target in
  let result =
    match (call.Ast.base, args) with
    | "CSHIFT", [ a; s ] -> Intrinsics.cshift st.ctx (arr_arg a) ~dim:0 ~shift:(int_arg s)
    | "CSHIFT", [ a; s; d ] ->
        Intrinsics.cshift st.ctx (arr_arg a) ~dim:(int_arg d - 1) ~shift:(int_arg s)
    | "EOSHIFT", [ a; s ] ->
        let src = arr_arg a in
        Intrinsics.eoshift st.ctx src ~dim:0 ~shift:(int_arg s)
          ~boundary:(Scalar.zero (Darray.kind src))
    | "EOSHIFT", [ a; s; b ] ->
        Intrinsics.eoshift st.ctx (arr_arg a) ~dim:0 ~shift:(int_arg s)
          ~boundary:(eval st Mscalar b)
    | "EOSHIFT", [ a; s; b; d ] ->
        Intrinsics.eoshift st.ctx (arr_arg a) ~dim:(int_arg d - 1) ~shift:(int_arg s)
          ~boundary:(eval st Mscalar b)
    | "TRANSPOSE", [ a ] -> Intrinsics.transpose st.ctx (arr_arg a) ~dad:target_dad
    | "SPREAD", [ a; d; _n ] ->
        Intrinsics.spread st.ctx (arr_arg a) ~dim:(int_arg d - 1) ~dad:target_dad
    | "RESHAPE", (a :: _) -> Intrinsics.reshape st.ctx (arr_arg a) ~dad:target_dad
    | "MATMUL", [ a; b ] -> Intrinsics.matmul st.ctx (arr_arg a) (arr_arg b) ~dad:target_dad
    | ("SUM" | "PRODUCT" | "MAXVAL" | "MINVAL" | "ALL" | "ANY"), [ a; d ] ->
        let op =
          match call.Ast.base with
          | "SUM" -> Redop.Sum
          | "PRODUCT" -> Redop.Prod
          | "MAXVAL" -> Redop.Max
          | "MINVAL" -> Redop.Min
          | "ALL" -> Redop.And
          | _ -> Redop.Or
        in
        Intrinsics.reduce_dim st.ctx op (arr_arg a) ~dim:(int_arg d - 1) ~dad:target_dad
    | "PACK", [ a; m ] -> fst (Intrinsics.pack st.ctx (arr_arg a) ~mask:(arr_arg m) ~dad:target_dad)
    | "UNPACK", [ v; m; fl ] ->
        Intrinsics.unpack st.ctx (arr_arg v) ~mask:(arr_arg m) ~field:(arr_arg fl)
    | _ -> Diag.error ~loc "unsupported intrinsic call %s" call.Ast.base
  in
  Hashtbl.replace st.arrays target (adopt st result target_dad)

let exec_mover st ~target ~(call : Ast.ref_) loc =
  let tr = Rctx.trace st.ctx in
  if not (F90d_trace.Trace.enabled tr) then exec_mover_body st ~target ~call loc
  else begin
    F90d_trace.Trace.span_begin tr ~t:(Rctx.time st.ctx)
      (call.Ast.base ^ " -> " ^ target) ~cat:"compute";
    exec_mover_body st ~target ~call loc;
    F90d_trace.Trace.span_end tr ~t:(Rctx.time st.ctx)
  end

let instantiate_dads (u : Ir.unit_ir) ~grid =
  let dads = Hashtbl.create 8 in
  List.iter (fun (n, d) -> Hashtbl.replace dads n d) (Sema.instantiate u.Ir.u_env ~grid);
  List.iter
    (fun (arr, dim, lo, hi) ->
      match Hashtbl.find_opt dads arr with
      | Some dad ->
          let d = (Dad.dims dad).(dim) in
          d.Dad.ghost_lo <- max d.Dad.ghost_lo lo;
          d.Dad.ghost_hi <- max d.Dad.ghost_hi hi
      | None -> ())
    u.Ir.u_ghosts;
  dads

let fresh_ustate st (u : Ir.unit_ir) =
  let dads = instantiate_dads u ~grid:(Rctx.grid st.ctx) in
  let scalars = Hashtbl.create 16 in
  List.iter
    (fun (n, k) -> Hashtbl.replace scalars n (ref (Scalar.zero (kind_of_decl k))))
    u.Ir.u_env.Sema.uscalars;
  let arrays = Hashtbl.create 8 in
  Hashtbl.iter (fun n dad -> Hashtbl.replace arrays n (Darray.create st.ctx dad)) dads;
  {
    st with
    u;
    ref_classes = Hashtbl.create 16;
    dads;
    scalars;
    arrays;
    ptemps = Hashtbl.create 8;
    replicas = Hashtbl.create 4;
    kplans = Hashtbl.create 16;
    pending = Hashtbl.create 4;
  }

(* Every statement stamps its provenance into the engine before running:
   trace events recorded during it carry its sid, and a deadlock or a
   location-less runtime error is reported against its source line. *)
let rec exec_stmt st (s : Ir.stmt) =
  Engine.check_cancel (Rctx.engine st.ctx);
  Rctx.set_stmt st.ctx ~sid:s.Ir.sid ~loc:s.Ir.sloc;
  try exec_node st s with
  | Diag.Error (loc, msg) when loc.Loc.line = 0 ->
      raise (Diag.Error (s.Ir.sloc, msg))
  | Failure msg -> raise (Diag.Error (s.Ir.sloc, msg))

and exec_node st (s : Ir.stmt) =
  match s.Ir.s with
  | Ir.Forall f ->
      exec_forall st f;
      bump_written st f.Ir.f_lhs.Ast.base
  | Ir.Scalar_assign { name; rhs } -> (
      let v = eval st Mscalar rhs in
      match Hashtbl.find_opt st.scalars name with
      | Some r ->
          let kind =
            match Sema.scalar_kind st.u.Ir.u_env name with
            | Some k -> kind_of_decl k
            | None -> Scalar.kind v
          in
          r := coerce kind v
      | None ->
          (* implicitly declared integer (DO indices etc.) *)
          Hashtbl.replace st.scalars name (ref v))
  | Ir.Element_assign { lhs; rhs } ->
      let v = eval st Mscalar rhs in
      let g =
        List.map
          (function
            | Ast.Elem e -> Scalar.to_int (eval st Mscalar e)
            | Ast.Range _ -> Diag.bug "interp: section in element assignment")
          lhs.Ast.args
        |> Array.of_list
      in
      let darr = darray_of st lhs.Ast.base in
      ignore (Darray.set_local darr ~rank:(me st) g (coerce (Darray.kind darr) v));
      bump_written st lhs.Ast.base
  | Ir.Mover { target; call } ->
      exec_mover st ~target ~call s.Ir.sloc;
      bump_written st target
  | Ir.Do_loop { var; range; body } ->
      let lo = Scalar.to_int (eval st Mscalar range.Ast.lo) in
      let hi = Scalar.to_int (eval st Mscalar range.Ast.hi) in
      let stp =
        match range.Ast.st with Some e -> Scalar.to_int (eval st Mscalar e) | None -> 1
      in
      if stp = 0 then Diag.error "zero DO stride";
      let cell =
        match Hashtbl.find_opt st.scalars var with
        | Some r -> r
        | None ->
            let r = ref (Scalar.Int lo) in
            Hashtbl.replace st.scalars var r;
            r
      in
      let i = ref lo in
      while (stp > 0 && !i <= hi) || (stp < 0 && !i >= hi) do
        cell := Scalar.Int !i;
        List.iter (exec_stmt st) body;
        i := !i + stp
      done
  | Ir.While_loop { cond; body } ->
      (* re-stamp before each condition eval: the body left its last
         statement's sid current *)
      let restamp () = Rctx.set_stmt st.ctx ~sid:s.Ir.sid ~loc:s.Ir.sloc in
      while
        restamp ();
        Scalar.to_bool (eval st Mscalar cond)
      do
        List.iter (exec_stmt st) body
      done
  | Ir.If_block { arms; els } ->
      let rec go = function
        | [] -> List.iter (exec_stmt st) els
        | (c, body) :: rest ->
            if Scalar.to_bool (eval st Mscalar c) then List.iter (exec_stmt st) body
            else go rest
      in
      go arms
  | Ir.Call_sub { sub; args } -> exec_call st ~sid:s.Ir.sid ~loc:s.Ir.sloc sub args
  | Ir.Print_stmt args ->
      let line = Buffer.create 64 in
      List.iter
        (fun (e : Ast.expr) ->
          if Buffer.length line > 0 then Buffer.add_char line ' ';
          match e.Ast.e with
          | Ast.Var v when Hashtbl.mem st.arrays v ->
              let g = Darray.gather_global st.ctx (darray_of st v) in
              Buffer.add_string line (Format.asprintf "%a" Ndarray.pp g)
          | _ -> Buffer.add_string line (Format.asprintf "%a" Scalar.pp (eval st Mscalar e)))
        args;
      if Rctx.me st.ctx = 0 then begin
        Buffer.add_buffer st.out line;
        Buffer.add_char st.out '\n'
      end
  | Ir.Return_stmt -> raise Return_unwind
  | Ir.Comm_block { cb_members; cb_guard; cb_loop = _ } ->
      (* loop pre-header: run the hoisted comms once, iff the loop will
         execute at least one iteration (a zero-trip loop must not
         communicate).  The guard re-evaluates the loop's own bounds /
         condition, which hoisting legality proved invariant up to here. *)
      let active =
        match cb_guard with
        | Ir.Guard_do range ->
            let lo = Scalar.to_int (eval st Mscalar range.Ast.lo) in
            let hi = Scalar.to_int (eval st Mscalar range.Ast.hi) in
            let stp =
              match range.Ast.st with Some e -> Scalar.to_int (eval st Mscalar e) | None -> 1
            in
            if stp = 0 then Diag.error "zero DO stride";
            (stp > 0 && lo <= hi) || (stp < 0 && lo >= hi)
        | Ir.Guard_while cond -> Scalar.to_bool (eval st Mscalar cond)
      in
      if active then
        List.iter
          (fun { Ir.hc; hc_sid; hc_loc } ->
            (* traffic stays attributed to the statement it was lifted
               from, not to the pre-header *)
            Rctx.set_stmt st.ctx ~sid:hc_sid ~loc:hc_loc;
            exec_comm_simple st st.ptemps hc)
          cb_members;
      Rctx.set_stmt st.ctx ~sid:s.Ir.sid ~loc:s.Ir.sloc
  | Ir.Comm_issue { sp_hid; sp_comm; sp_guard } ->
      if split_guard_active st sp_guard then begin
        Rctx.set_stmt st.ctx ~sid:sp_comm.Ir.hc_sid ~loc:sp_comm.Ir.hc_loc;
        exec_comm_issue st sp_hid sp_comm.Ir.hc;
        Rctx.set_stmt st.ctx ~sid:s.Ir.sid ~loc:s.Ir.sloc
      end
  | Ir.Comm_wait { sp_hid; sp_comm; sp_guard } ->
      if split_guard_active st sp_guard then begin
        Rctx.set_stmt st.ctx ~sid:sp_comm.Ir.hc_sid ~loc:sp_comm.Ir.hc_loc;
        exec_comm_wait st sp_hid;
        Rctx.set_stmt st.ctx ~sid:s.Ir.sid ~loc:s.Ir.sloc
      end

(* Whether a split-phase half executes.  [Sg_trip] re-evaluates the
   loop's own trip test (as [Guard_do] does); [Sg_next] asks whether the
   surrounding DO loop — whose variable holds the current iteration —
   has another iteration coming, using the same continuation test as the
   loop itself so an issue for step k+1 never runs on the last step. *)
and split_guard_active st = function
  | Ir.Sg_always -> true
  | Ir.Sg_trip range ->
      let lo = Scalar.to_int (eval st Mscalar range.Ast.lo) in
      let hi = Scalar.to_int (eval st Mscalar range.Ast.hi) in
      let stp =
        match range.Ast.st with Some e -> Scalar.to_int (eval st Mscalar e) | None -> 1
      in
      if stp = 0 then Diag.error "zero DO stride";
      (stp > 0 && lo <= hi) || (stp < 0 && lo >= hi)
  | Ir.Sg_next { var; range } ->
      let v =
        match Hashtbl.find_opt st.scalars var with
        | Some r -> Scalar.to_int !r
        | None -> Diag.bug "interp: split guard reads unset loop variable %s" var
      in
      let hi = Scalar.to_int (eval st Mscalar range.Ast.hi) in
      let stp =
        match range.Ast.st with Some e -> Scalar.to_int (eval st Mscalar e) | None -> 1
      in
      if stp = 0 then Diag.error "zero DO stride";
      let v' = v + stp in
      (stp > 0 && v' <= hi) || (stp < 0 && v' >= hi)

and exec_call st ~sid ~loc sub args =
  let callee = Ir.find_unit st.prog sub in
  let cst = fresh_ustate st callee in
  let dummies = callee.Ir.u_env.Sema.usub.Ast.args in
  if List.length dummies <> List.length args then
    Diag.error "CALL %s: expected %d arguments, got %d" sub (List.length dummies)
      (List.length args);
  (* bind arguments; remember what to copy back *)
  let backs = ref [] in
  List.iter2
    (fun dummy (actual : Ast.expr) ->
      match actual.Ast.e with
      | Ast.Var v when Hashtbl.mem st.arrays v ->
          let ddad =
            match Hashtbl.find_opt cst.dads dummy with
            | Some d -> d
            | None -> Diag.error "CALL %s: dummy '%s' is not an array" sub dummy
          in
          Hashtbl.replace cst.arrays dummy (adopt st (darray_of st v) ddad);
          backs := `Array (dummy, v) :: !backs
      | Ast.Var v when Hashtbl.mem st.scalars v ->
          (match Hashtbl.find_opt cst.scalars dummy with
          | Some r -> r := !(Hashtbl.find st.scalars v)
          | None -> Hashtbl.replace cst.scalars dummy (ref !(Hashtbl.find st.scalars v)));
          backs := `Scalar (dummy, v) :: !backs
      | _ -> (
          let v = eval st Mscalar actual in
          match Hashtbl.find_opt cst.scalars dummy with
          | Some r -> r := v
          | None -> Hashtbl.replace cst.scalars dummy (ref v)))
    dummies args;
  (try List.iter (exec_stmt cst) callee.Ir.u_body with Return_unwind -> ());
  if Hashtbl.length cst.pending > 0 then
    Diag.bug "interp: %d split-phase comm(s) issued but never waited in %s"
      (Hashtbl.length cst.pending) sub;
  (* copy-back redistribution belongs to the CALL statement, not to
     whatever the callee executed last *)
  Rctx.set_stmt st.ctx ~sid ~loc;
  (* copy back (Fortran reference semantics) *)
  List.iter
    (function
      | `Array (dummy, v) ->
          let caller_dad = (darray_of st v).Darray.dad in
          Hashtbl.replace st.arrays v (adopt st (darray_of cst dummy) caller_dad);
          bump_written st v
      | `Scalar (dummy, v) -> Hashtbl.find st.scalars v := !(Hashtbl.find cst.scalars dummy))
    (List.rev !backs)

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

type outcome = {
  output : string;
  finals : (string * Ndarray.t) list;
  final_scalars : (string * Scalar.t) list;
}

let node_main ?(collect_finals = true) ?(coalesce = false) (prog : Ir.program_ir) ctx =
  let main_name = (List.hd prog.Ir.p_units |> snd).Ir.u_name in
  let u = Ir.find_unit prog main_name in
  let proto =
    {
      ctx;
      prog;
      u;
      ref_classes = Hashtbl.create 1;
      dads = Hashtbl.create 1;
      scalars = Hashtbl.create 1;
      arrays = Hashtbl.create 1;
      out = Buffer.create 256;
      ptemps = Hashtbl.create 1;
      replicas = Hashtbl.create 1;
      kplans = Hashtbl.create 1;
      coalesce;
      pending = Hashtbl.create 1;
    }
  in
  let st = fresh_ustate proto u in
  (try List.iter (exec_stmt st) u.Ir.u_body with Return_unwind -> ());
  if Hashtbl.length st.pending > 0 then
    Diag.bug "interp: %d split-phase comm(s) issued but never waited" (Hashtbl.length st.pending);
  (* the finals gather below is real communication: attribute it to the
     unit's epilogue sid so no event is left on the last body statement *)
  Rctx.set_stmt ctx ~sid:u.Ir.u_epilogue.Ir.pv_sid ~loc:u.Ir.u_epilogue.Ir.pv_loc;
  let finals =
    if collect_finals then
      List.map
        (fun (name, _) -> (name, Darray.gather_global ctx (darray_of st name)))
        u.Ir.u_env.Sema.uarrays
    else []
  in
  let final_scalars =
    Hashtbl.fold (fun n r acc -> (n, !r) :: acc) st.scalars []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { output = Buffer.contents st.out; finals; final_scalars }
