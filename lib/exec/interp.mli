(** The SPMD node-program interpreter.

    [node_main ir ctx] runs the compiled program on one simulated
    processor, calling the run-time support system for every
    communication; the engine's fibers run one [node_main] per processor.
    Virtual time is charged for the interpreted local computation from
    static per-iteration operation counts, so the simulated clock reflects
    the machine model rather than host speed. *)

open F90d_frontend

type outcome = {
  output : string;  (** rank-0 PRINT output *)
  finals : (string * F90d_base.Ndarray.t) list;
      (** gathered global contents of the main unit's arrays *)
  final_scalars : (string * F90d_base.Scalar.t) list;
}

val log_src : Logs.src
(** Communication trace: set to [Debug] to log every collective primitive
    with its processor and virtual time ([f90dc --trace]). *)

val node_main :
  ?collect_finals:bool ->
  ?coalesce:bool ->
  F90d_ir.Ir.program_ir ->
  F90d_runtime.Rctx.t ->
  outcome
(** Execute the main program unit.  When [collect_finals] (default true)
    every array is gathered at the end so callers can verify results; turn
    it off for benchmarking, where the gathers would pollute timing.
    [coalesce] (default false) enables the run-time half of the message
    coalescing pass: the multicast replica cache, which serves repeated
    broadcasts of an unmodified slice — and remote single-element reads
    inside such a slice — locally with zero messages.  The driver sets it
    from the compiled program's pass flags. *)

val instantiate_dads :
  F90d_ir.Ir.unit_ir -> grid:F90d_dist.Grid.t -> (string, F90d_dist.Dad.t) Hashtbl.t
(** The unit's DADs over a grid, with ghost widths applied (exposed for
    tests). *)

val ops_of_expr : Ast.expr -> int * int
(** Static (flops, iops) estimate per evaluation, used for time charging. *)

val apply_elemental :
  string -> F90d_base.Loc.t -> F90d_base.Scalar.t list -> F90d_base.Scalar.t
(** Elemental intrinsic application (ABS, MOD, MERGE, ...).  Exposed so the
    fuzzing reference evaluator computes bit-identical element values. *)
