open F90d_base
open F90d_dist

type sdim = {
  sflb : int;
  sext : int;
  salign : Affine.t;
  sform : Ast.distform;
  stn : int;
  spdim : int option;
}

type array_spec = { skind : Ast.kind; sdims : sdim array }

type unit_env = {
  usub : Ast.subprogram;
  uparams : (string * Scalar.t) list;
  uscalars : (string * Ast.kind) list;
  uarrays : (string * array_spec) list;
  ugrid : int array option;
}

type program_env = { uprog : Ast.program; uunits : (string * unit_env) list }

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let rec eval_const lookup (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_lit n -> Scalar.Int n
  | Ast.Real_lit r -> Scalar.Real r
  | Ast.Log_lit b -> Scalar.Log b
  | Ast.Str_lit s -> Scalar.Str s
  | Ast.Var v -> (
      match lookup v with
      | Some s -> s
      | None -> Diag.error ~loc:e.Ast.loc "'%s' is not a named constant" v)
  | Ast.Un (Ast.Neg, a) -> Scalar.neg (eval_const lookup a)
  | Ast.Un (Ast.Not, a) -> Scalar.not_ (eval_const lookup a)
  | Ast.Bin (op, a, b) ->
      let x = eval_const lookup a and y = eval_const lookup b in
      let f =
        match op with
        | Ast.Add -> Scalar.add
        | Ast.Sub -> Scalar.sub
        | Ast.Mul -> Scalar.mul
        | Ast.Div -> Scalar.div
        | Ast.Pow -> Scalar.pow
        | Ast.Eq -> Scalar.cmp_eq
        | Ast.Ne -> Scalar.cmp_ne
        | Ast.Lt -> Scalar.cmp_lt
        | Ast.Le -> Scalar.cmp_le
        | Ast.Gt -> Scalar.cmp_gt
        | Ast.Ge -> Scalar.cmp_ge
        | Ast.And -> Scalar.and_
        | Ast.Or -> Scalar.or_
      in
      f x y
  | Ast.Ref _ -> Diag.error ~loc:e.Ast.loc "array reference in a constant expression"

let eval_int lookup e = Scalar.to_int (eval_const lookup e)

(* ------------------------------------------------------------------ *)
(* Affine recognition: a*var + b                                       *)
(* ------------------------------------------------------------------ *)

let affine_of ~var ~lookup e =
  let rec go (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Int_lit n -> Some (0, n)
    | Ast.Var v when v = var -> Some (1, 0)
    | Ast.Var v -> (
        match lookup v with Some (Scalar.Int n) -> Some (0, n) | _ -> None)
    | Ast.Un (Ast.Neg, a) -> Option.map (fun (x, y) -> (-x, -y)) (go a)
    | Ast.Bin (Ast.Add, a, b) -> (
        match (go a, go b) with
        | Some (a1, b1), Some (a2, b2) -> Some (a1 + a2, b1 + b2)
        | _ -> None)
    | Ast.Bin (Ast.Sub, a, b) -> (
        match (go a, go b) with
        | Some (a1, b1), Some (a2, b2) -> Some (a1 - a2, b1 - b2)
        | _ -> None)
    | Ast.Bin (Ast.Mul, a, b) -> (
        match (go a, go b) with
        | Some (0, c), Some (x, y) | Some (x, y), Some (0, c) -> Some (c * x, c * y)
        | _ -> None)
    | _ -> None
  in
  Option.map (fun (a, b) -> Affine.make ~a ~b) (go e)

(* ------------------------------------------------------------------ *)
(* Unit analysis                                                       *)
(* ------------------------------------------------------------------ *)

type template = { text : int array; tflb : int array; tforms : Ast.distform array; tpdims : int option array }

(* A FORALL or DO stride that constant-folds to zero describes an empty
   progression that the runtime can only fault on; reject it here with the
   statement's location.  Non-constant strides are left to the runtime
   check (their value is unknowable at compile time). *)
let check_strides lookup (body : Ast.stmt list) =
  let folds_to_zero e =
    match eval_const lookup e with
    | Scalar.Int 0 -> true
    | _ -> false
    | exception Diag.Error _ -> false
  in
  let check_range what loc (r : Ast.range) =
    match r.Ast.st with
    | Some e when folds_to_zero e -> Diag.error ~loc "zero stride in %s triplet" what
    | _ -> ()
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.s with
    | Ast.Forall (triplets, _, body) ->
        List.iter (fun (_, r) -> check_range "FORALL" s.Ast.sloc r) triplets;
        List.iter stmt body
    | Ast.Do (_, r, body) ->
        check_range "DO" s.Ast.sloc r;
        List.iter stmt body
    | Ast.While (_, body) | Ast.Where (_, body, []) -> List.iter stmt body
    | Ast.Where (_, body, els) ->
        List.iter stmt body;
        List.iter stmt els
    | Ast.If (arms, els) ->
        List.iter (fun (_, b) -> List.iter stmt b) arms;
        List.iter stmt els
    | Ast.Assign _ | Ast.Call _ | Ast.Print _ | Ast.Return -> ()
  in
  List.iter stmt body

let analyze_unit (sub : Ast.subprogram) =
  let params = Hashtbl.create 8 in
  let lookup v = Hashtbl.find_opt params v in
  (* declarations: parameters first (they appear before use in source order) *)
  let scalars = ref [] and array_decls = ref [] in
  List.iter
    (fun (d : Ast.decl) ->
      match (d.Ast.dparam, d.Ast.ddims) with
      | Some v, [] -> Hashtbl.replace params d.Ast.dname (eval_const lookup v)
      | Some _, _ -> Diag.error ~loc:d.Ast.dloc "PARAMETER arrays are not supported"
      | None, [] -> scalars := (d.Ast.dname, d.Ast.dkind) :: !scalars
      | None, dims ->
          let bounds =
            List.map (fun (lo, hi) -> (eval_int lookup lo, eval_int lookup hi)) dims
          in
          array_decls := (d.Ast.dname, d.Ast.dkind, bounds, d.Ast.dloc) :: !array_decls)
    sub.Ast.decls;
  let array_decls = List.rev !array_decls in
  (* directives *)
  let grid = ref None in
  let templates : (string, template) Hashtbl.t = Hashtbl.create 4 in
  let aligns : (string, Ast.directive * Loc.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (dir, loc) ->
      match dir with
      | Ast.Processors { pdims; _ } ->
          if !grid <> None then Diag.error ~loc "duplicate PROCESSORS directive";
          grid := Some (Array.of_list (List.map (eval_int lookup) pdims))
      | Ast.Template { tname; tdims } ->
          let flbs = Array.of_list (List.map (fun (lo, _) -> eval_int lookup lo) tdims) in
          let ext =
            Array.of_list
              (List.map (fun (lo, hi) -> eval_int lookup hi - eval_int lookup lo + 1) tdims)
          in
          Hashtbl.replace templates tname
            {
              text = ext;
              tflb = flbs;
              tforms = Array.make (Array.length ext) Ast.Dstar;
              tpdims = Array.make (Array.length ext) None;
            }
      | Ast.Align { array; _ } -> Hashtbl.replace aligns array (dir, loc)
      | Ast.Distribute _ -> ())
    sub.Ast.directives;
  (* arrays named directly in DISTRIBUTE act as their own template *)
  List.iter
    (fun (dir, _loc) ->
      match dir with
      | Ast.Distribute { template; _ } when not (Hashtbl.mem templates template) -> (
          match List.find_opt (fun (n, _, _, _) -> n = template) array_decls with
          | Some (name, _, bounds, _) ->
              Hashtbl.replace templates name
                {
                  text = Array.of_list (List.map (fun (lo, hi) -> hi - lo + 1) bounds);
                  tflb = Array.of_list (List.map fst bounds);
                  tforms = Array.make (List.length bounds) Ast.Dstar;
                  tpdims = Array.make (List.length bounds) None;
                }
          | None -> ())
      | _ -> ())
    sub.Ast.directives;
  (* resolve DISTRIBUTE onto grid dimensions, in directive order *)
  let next_pdim = ref 0 in
  List.iter
    (fun (dir, loc) ->
      match dir with
      | Ast.Distribute { template; forms; _ } -> (
          match Hashtbl.find_opt templates template with
          | None -> Diag.error ~loc "DISTRIBUTE names unknown template '%s'" template
          | Some t ->
              if List.length forms <> Array.length t.text then
                Diag.error ~loc "DISTRIBUTE rank mismatch for '%s'" template;
              next_pdim := 0;
              List.iteri
                (fun d form ->
                  t.tforms.(d) <- form;
                  match form with
                  | Ast.Dstar -> ()
                  | Ast.Dblock | Ast.Dcyclic | Ast.Dcyclic_k _ ->
                      t.tpdims.(d) <- Some !next_pdim;
                      incr next_pdim)
                forms)
      | _ -> ())
    sub.Ast.directives;
  (* build array specs *)
  let arrays =
    List.map
      (fun (name, kind, bounds, _loc) ->
        let nb = List.length bounds in
        let default_dim (lo, hi) =
          {
            sflb = lo;
            sext = hi - lo + 1;
            salign = Affine.ident;
            sform = Ast.Dstar;
            stn = max 1 (hi - lo + 1);
            spdim = None;
          }
        in
        match Hashtbl.find_opt aligns name with
        | None -> (
            (* no ALIGN: the array may itself be distributed as a template *)
            match Hashtbl.find_opt templates name with
            | None -> (name, { skind = kind; sdims = Array.of_list (List.map default_dim bounds) })
            | Some t ->
                let sdims =
                  List.mapi
                    (fun d (lo, hi) ->
                      {
                        sflb = lo;
                        sext = hi - lo + 1;
                        salign = Affine.ident;
                        sform = t.tforms.(d);
                        stn = t.text.(d);
                        spdim = t.tpdims.(d);
                      })
                    bounds
                in
                (name, { skind = kind; sdims = Array.of_list sdims }))
        | Some (Ast.Align { dummies; target; subscripts; _ }, aloc) ->
            let t =
              match Hashtbl.find_opt templates target with
              | Some t -> t
              | None -> Diag.error ~loc:aloc "ALIGN names unknown template '%s'" target
            in
            if dummies <> [] && List.length dummies <> nb then
              Diag.error ~loc:aloc "ALIGN dummy count differs from rank of '%s'" name;
            let dummies = if dummies = [] then List.init nb (fun d -> Printf.sprintf "$%d" d) else dummies in
            let subscripts =
              if subscripts = [] then List.map (fun d -> Ast.var d) dummies else subscripts
            in
            if List.length subscripts <> Array.length t.text then
              Diag.error ~loc:aloc "ALIGN subscript count differs from rank of '%s'" target;
            (* for each array dimension (dummy), find the template dimension
               whose subscript mentions it *)
            let sdims =
              List.mapi
                (fun d (lo, hi) ->
                  let dummy = List.nth dummies d in
                  let tdim = ref None in
                  List.iteri
                    (fun td se ->
                      match se.Ast.e with
                      | Ast.Var "*" -> ()
                      | _ ->
                          if List.mem dummy (Ast.vars_of se) then begin
                            if !tdim <> None then
                              Diag.error ~loc:aloc "dummy '%s' appears in two template dimensions" dummy;
                            tdim := Some (td, se)
                          end)
                    subscripts;
                  match !tdim with
                  | None ->
                      (* not aligned anywhere: replicated dimension *)
                      default_dim (lo, hi)
                  | Some (td, se) -> (
                      match affine_of ~var:dummy ~lookup se with
                      | None ->
                          Diag.error ~loc:aloc "non-affine ALIGN subscript for '%s'" name
                      | Some f ->
                          (* Fortran-level: tpos = f(i); 0-based template
                             index = f(i) - template_flb; with i = flb + i0 *)
                          let f0 =
                            Affine.make ~a:f.Affine.a
                              ~b:(Affine.eval f lo - t.tflb.(td))
                          in
                          {
                            sflb = lo;
                            sext = hi - lo + 1;
                            salign = f0;
                            sform = t.tforms.(td);
                            stn = t.text.(td);
                            spdim = t.tpdims.(td);
                          }))
                bounds
            in
            (name, { skind = kind; sdims = Array.of_list sdims })
        | Some _ -> Diag.bug "sema: non-align directive in align table")
      array_decls
  in
  check_strides lookup sub.Ast.body;
  {
    usub = sub;
    uparams = Hashtbl.fold (fun k v acc -> (k, v) :: acc) params [];
    uscalars = List.rev !scalars;
    uarrays = arrays;
    ugrid = !grid;
  }

let analyze (prog : Ast.program) =
  let units =
    List.map (fun u -> (u.Ast.pname, analyze_unit u)) (prog.Ast.main :: prog.Ast.subs)
  in
  { uprog = prog; uunits = units }

let find_unit env name =
  match List.assoc_opt name env.uunits with
  | Some u -> u
  | None -> Diag.error "unknown subroutine '%s'" name

let main_env env =
  match env.uunits with
  | (_, u) :: _ -> u
  | [] -> Diag.bug "sema: empty program"

let grid_dims env ~nprocs =
  match (main_env env).ugrid with
  | None -> [| nprocs |]
  | Some dims ->
      let total = Array.fold_left ( * ) 1 dims in
      if total <> nprocs then
        Diag.error "PROCESSORS grid (%d) does not match the machine size (%d)" total nprocs;
      dims

let instantiate uenv ~grid =
  List.map
    (fun (name, spec) ->
      let dims =
        Array.map
          (fun sd ->
            let p =
              match sd.spdim with Some pd -> (Grid.dims grid).(pd) | None -> 1
            in
            let form =
              match sd.sform with
              | Ast.Dblock -> Distrib.Block
              | Ast.Dcyclic -> Distrib.Cyclic
              | Ast.Dcyclic_k k -> Distrib.Block_cyclic k
              | Ast.Dstar -> Distrib.Replicated
            in
            {
              Dad.flb = sd.sflb;
              extent = sd.sext;
              align = sd.salign;
              dist = Distrib.make form ~n:sd.stn ~p;
              pdim = sd.spdim;
              ghost_lo = 0;
              ghost_hi = 0;
            })
          spec.sdims
      in
      let kind =
        match spec.skind with
        | Ast.Integer -> Scalar.Kint
        | Ast.Real -> Scalar.Kreal
        | Ast.Logical -> Scalar.Klog
      in
      (name, Dad.make ~name ~kind ~grid dims))
    uenv.uarrays

let array_spec uenv name = List.assoc_opt name uenv.uarrays
let scalar_kind uenv name = List.assoc_opt name uenv.uscalars
let is_distributed spec = Array.exists (fun d -> d.spdim <> None) spec.sdims
