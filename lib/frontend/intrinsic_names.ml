(** Classification of Fortran 90 intrinsic names, used by the normalizer
    (elemental intrinsics distribute over FORALL indices; transformational
    ones consume whole arrays) and by code generation. *)

let elemental =
  [
    "ABS"; "SQRT"; "EXP"; "LOG"; "LOG10"; "SIN"; "COS"; "TAN"; "ASIN"; "ACOS"; "ATAN";
    "ATAN2"; "MOD"; "MODULO"; "MIN"; "MAX"; "SIGN"; "INT"; "NINT"; "REAL"; "FLOAT"; "DBLE";
    "MERGE";
  ]

let reductions = [ "SUM"; "PRODUCT"; "MAXVAL"; "MINVAL"; "ALL"; "ANY"; "COUNT"; "DOT_PRODUCT"; "DOTPRODUCT" ]
let locations = [ "MAXLOC"; "MINLOC" ]
let movers = [ "CSHIFT"; "EOSHIFT"; "SPREAD"; "TRANSPOSE"; "RESHAPE"; "PACK"; "UNPACK"; "MATMUL" ]

let queries = [ "SIZE"; "LBOUND"; "UBOUND" ]

(* membership is queried per element reference on the interpreter's hot
   path; a hash set makes each query O(1) instead of a list scan *)
let set names =
  let h = Hashtbl.create (2 * List.length names) in
  List.iter (fun n -> Hashtbl.replace h n ()) names;
  fun n -> Hashtbl.mem h n

let is_elemental = set elemental
let is_reduction = set reductions
let is_location = set locations
let is_mover = set movers
let is_query = set queries

let is_transformational n = is_reduction n || is_location n || is_mover n || is_query n
let is_intrinsic n = is_elemental n || is_transformational n

(* Calls whose value is a whole array: the movement intrinsics, and the
   reductions in their dimensional (two-argument) form — DOT_PRODUCT's two
   arguments are both data, so it stays scalar-valued. *)
let dimensional = [ "SUM"; "PRODUCT"; "MAXVAL"; "MINVAL"; "ALL"; "ANY"; "COUNT" ]
let returns_array ~nargs n = is_mover n || (List.mem n dimensional && nargs = 2)
