open F90d_base
open F90d_frontend
open F90d_commdet
open F90d_ir

(* Fresh temporary ids, unique within one lowered unit. *)
let temp_counter = ref 0

let fresh_temp () =
  incr temp_counter;
  !temp_counter

(* Statement ids: program-unique, allocated in emission order (outer
   statement before its body), reset per program.  sid 0 is reserved for
   "<runtime>" — code executing outside any statement. *)
let sid_counter = ref 0

let fresh_sid () =
  incr sid_counter;
  !sid_counter

(* Per-unit provenance/explain accumulator. *)
type acc = {
  uname : string;
  mutable prov : Ir.prov list;  (* reversed *)
  mutable explain : Ir.explain list;  (* reversed *)
}

let new_sid acc ~loc ~desc =
  let sid = fresh_sid () in
  acc.prov <- { Ir.pv_sid = sid; pv_loc = loc; pv_unit = acc.uname; pv_desc = desc } :: acc.prov;
  sid

let render_expr e = Format.asprintf "%a" Ast.pp_expr e
let render_ref (r : Ast.ref_) = render_expr (Ast.mk (Ast.Ref r))

let truncate n s = if String.length s <= n then s else String.sub s 0 (n - 3) ^ "..."

let form_name = function
  | Ast.Dblock -> "BLOCK"
  | Ast.Dcyclic -> "CYCLIC"
  | Ast.Dcyclic_k k -> Printf.sprintf "CYCLIC(%d)" k
  | Ast.Dstar -> "*"

(* One distribution-facts line per array: the DAD contents the explain
   report shows next to each decision. *)
let dist_fact env name =
  match Sema.array_spec env name with
  | None -> Printf.sprintf "%s: not an array" name
  | Some spec ->
      let exts =
        spec.Sema.sdims |> Array.to_list
        |> List.map (fun (sd : Sema.sdim) -> string_of_int sd.Sema.sext)
        |> String.concat "x"
      in
      if not (Sema.is_distributed spec) then
        Printf.sprintf "%s(%s): replicated (no DISTRIBUTE)" name exts
      else
        let dims =
          spec.Sema.sdims |> Array.to_list
          |> List.map (fun (sd : Sema.sdim) ->
                 match sd.Sema.spdim with
                 | None -> "*"
                 | Some p ->
                     let align =
                       if Affine.is_identity sd.Sema.salign then ""
                       else Format.asprintf " align %a" Affine.pp sd.Sema.salign
                     in
                     Printf.sprintf "%s on grid dim %d%s" (form_name sd.Sema.sform) (p + 1)
                       align)
          |> String.concat ", "
        in
        Printf.sprintf "%s(%s): (%s)" name exts dims

(* Accesses for the dimensions of a structured temporary: broadcast and
   transferred dimensions collapse to extent 1; shifted dimensions keep the
   owned extent and are indexed by the local position of their FORALL
   variable (the shift is baked into the slab); untouched dimensions carry
   their own subscript expression, re-evaluated per iteration point. *)
let box_dims subs classes tags =
  Array.mapi
    (fun d tag ->
      match (tag, classes.(d)) with
      | (Pattern.Multicast _ | Pattern.Transfer _), _ -> Ir.Collapsed
      | Pattern.Temp_shift _, (Subscript.Var_const (v, _) | Subscript.Var_scalar (v, _)) ->
          Ir.By_sub (Ast.var v)
      | _, _ -> Ir.By_sub subs.(d))
    tags

let lower_ref env ~vars (r : Ast.ref_) (plan : Pattern.ref_plan) =
  let var_names = List.map fst vars in
  let lookup v = List.assoc_opt v env.Sema.uparams in
  let is_int_array n =
    match Sema.array_spec env n with Some s -> s.Sema.skind = Ast.Integer | None -> false
  in
  let classes =
    List.map
      (fun (s : Ast.section) ->
        match s with
        | Ast.Elem e -> Subscript.classify ~vars:var_names ~is_const:lookup ~is_int_array e
        | Ast.Range _ -> Diag.bug "lower: section survived normalization")
      r.Ast.args
    |> Array.of_list
  in
  let subs =
    List.map
      (function
        | Ast.Elem e -> e
        | Ast.Range _ -> Diag.bug "lower: section survived normalization")
      r.Ast.args
    |> Array.of_list
  in
  let box_dims classes tags = box_dims subs classes tags in
  match plan with
  | Pattern.Direct -> ([], [ (r.Ast.rid, Ir.Acc_direct) ], [])
  | Pattern.Precomp_read ->
      let t = fresh_temp () in
      ([ Ir.Precomp_read { r; itemp = t; key = None } ], [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ], [])
  | Pattern.Gather ->
      let t = fresh_temp () in
      ([ Ir.Gather_read { r; itemp = t; key = None } ], [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ], [])
  | Pattern.Concat ->
      let t = fresh_temp () in
      ([ Ir.Concat { arr = r.Ast.base; temp = t } ], [ (r.Ast.rid, Ir.Acc_global_temp { temp = t }) ], [])
  | Pattern.Structured tags ->
      let comm_dims =
        Array.to_list (Array.mapi (fun d t -> (d, t)) tags)
        |> List.filter_map (fun (d, tag) ->
               match tag with
               | Pattern.Multicast _ | Pattern.Transfer _ | Pattern.Overlap _
               | Pattern.Temp_shift _ ->
                   Some d
               | Pattern.No_comm | Pattern.Local_dim -> None)
      in
      (match comm_dims with
      | [] -> ([], [ (r.Ast.rid, Ir.Acc_direct) ], [])
      | [ d ] -> (
          match tags.(d) with
          | Pattern.Overlap c ->
              let ghost = if c > 0 then (r.Ast.base, d, 0, c) else (r.Ast.base, d, -c, 0) in
              ( [ Ir.Overlap_shift { arr = r.Ast.base; dim = d; amount = c } ],
                [ (r.Ast.rid, Ir.Acc_direct) ],
                [ ghost ] )
          | Pattern.Multicast g ->
              let t = fresh_temp () in
              ( [ Ir.Multicast { arr = r.Ast.base; dim = d; g; temp = t } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.Transfer { src; dest } ->
              let t = fresh_temp () in
              ( [ Ir.Transfer { arr = r.Ast.base; dim = d; src; dest; temp = t } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.Temp_shift s ->
              let t = fresh_temp () in
              ( [ Ir.Temp_shift { arr = r.Ast.base; dim = d; amount = s; temp = t } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.No_comm | Pattern.Local_dim -> Diag.bug "lower: no-comm dim counted as comm")
      | [ d1; d2 ] -> (
          (* the fusable pair: one multicast + one shift *)
          match (tags.(d1), tags.(d2)) with
          | Pattern.Multicast g, Pattern.Temp_shift s ->
              let t = fresh_temp () in
              ( [ Ir.Multicast_shift
                    { ms_arr = r.Ast.base; mdim = d1; ms_g = g; sdim = d2; ms_amount = s; ms_temp = t; fused = true } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | Pattern.Temp_shift s, Pattern.Multicast g ->
              let t = fresh_temp () in
              ( [ Ir.Multicast_shift
                    { ms_arr = r.Ast.base; mdim = d2; ms_g = g; sdim = d1; ms_amount = s; ms_temp = t; fused = true } ],
                [ (r.Ast.rid, Ir.Acc_box { temp = t; dims = box_dims classes tags }) ],
                [] )
          | _ ->
              (* other double-communication patterns: inspector fallback *)
              let t = fresh_temp () in
              ( [ Ir.Precomp_read { r; itemp = t; key = None } ],
                [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ],
                [] ))
      | _ ->
          let t = fresh_temp () in
          ( [ Ir.Precomp_read { r; itemp = t; key = None } ],
            [ (r.Ast.rid, Ir.Acc_flat { temp = t }) ],
            [] ))

(* Structural equality of subscript expressions, ignoring locations and
   reference ids: decides whether an rhs read of the lhs array touches
   exactly the element being written. *)
let rec same_expr (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.e, b.Ast.e) with
  | Ast.Int_lit x, Ast.Int_lit y -> x = y
  | Ast.Real_lit x, Ast.Real_lit y -> x = y
  | Ast.Log_lit x, Ast.Log_lit y -> x = y
  | Ast.Str_lit x, Ast.Str_lit y -> x = y
  | Ast.Var x, Ast.Var y -> x = y
  | Ast.Un (o1, x), Ast.Un (o2, y) -> o1 = o2 && same_expr x y
  | Ast.Bin (o1, x1, y1), Ast.Bin (o2, x2, y2) -> o1 = o2 && same_expr x1 x2 && same_expr y1 y2
  | Ast.Ref r1, Ast.Ref r2 ->
      r1.Ast.base = r2.Ast.base
      && List.length r1.Ast.args = List.length r2.Ast.args
      && List.for_all2 same_section r1.Ast.args r2.Ast.args
  | _ -> false

and same_section (a : Ast.section) (b : Ast.section) =
  match (a, b) with
  | Ast.Elem x, Ast.Elem y -> same_expr x y
  | Ast.Range (a1, b1, c1), Ast.Range (a2, b2, c2) ->
      let opt x y = match (x, y) with
        | None, None -> true
        | Some x, Some y -> same_expr x y
        | _ -> false
      in
      opt a1 a2 && opt b1 b2 && opt c1 c2
  | _ -> false

let same_subscripts (a : Ast.ref_) (b : Ast.ref_) =
  List.length a.Ast.args = List.length b.Ast.args
  && List.for_all2 same_section a.Ast.args b.Ast.args

(* Affine view of a subscript as constant + integer combination of
   variables, for proving two subscripts never meet.  [const_diff e1 e2]
   is [Some d] when e1 - e2 normalizes to the constant d (all variable
   terms cancel symbolically). *)
let rec affine (e : Ast.expr) : (int * (string * int) list) option =
  let add_term vs (v, k) =
    let k = k + Option.value (List.assoc_opt v vs) ~default:0 in
    (v, k) :: List.remove_assoc v vs
  in
  let combine sign a b =
    match (affine a, affine b) with
    | Some (ca, va), Some (cb, vb) ->
        Some
          ( ca + (sign * cb),
            List.fold_left add_term va (List.map (fun (v, k) -> (v, sign * k)) vb) )
    | _ -> None
  in
  match e.Ast.e with
  | Ast.Int_lit n -> Some (n, [])
  | Ast.Var v -> Some (0, [ (v, 1) ])
  | Ast.Bin (Ast.Add, a, b) -> combine 1 a b
  | Ast.Bin (Ast.Sub, a, b) -> combine (-1) a b
  | Ast.Bin (Ast.Mul, { Ast.e = Ast.Int_lit n; _ }, b) | Ast.Bin (Ast.Mul, b, { Ast.e = Ast.Int_lit n; _ })
    -> (
      match affine b with
      | Some (c, vs) -> Some (n * c, List.map (fun (v, k) -> (v, n * k)) vs)
      | None -> None)
  | _ -> None

let const_diff e1 e2 =
  match (affine e1, affine e2) with
  | Some (c1, v1), Some (c2, v2) ->
      let keys = List.sort_uniq compare (List.map fst v1 @ List.map fst v2) in
      if
        List.for_all
          (fun v ->
            Option.value (List.assoc_opt v v1) ~default:0
            = Option.value (List.assoc_opt v v2) ~default:0)
          keys
      then Some (c1 - c2)
      else None
  | _ -> None

(* Does the loop need a pre-loop snapshot of the lhs local section?  Only
   Acc_direct reads are hazardous: every other access path reads a
   temporary filled during pre-communication, i.e. before any store.
   Reads with the exact lhs subscript are safe — each iteration reads its
   own element strictly before writing it.  A read with a different
   subscript is still safe when one dimension provably separates every
   write from every read: the lhs subscript there is a bare loop
   variable (so it takes exactly the iterated values, all within
   [lo, hi]), the read's subscript is loop-invariant, and the invariant
   value lies strictly outside the variable's bounds (gauss's update
   writes A(I,J), I = K+1..N while reading A(K,J)). *)
let needs_snapshot (f : Ir.forall) =
  let direct (r : Ast.ref_) =
    match List.assoc_opt r.Ast.rid f.Ir.f_access with
    | None | Some Ir.Acc_direct -> true
    | Some _ -> false
  in
  let var_names = List.map fst f.Ir.f_vars in
  let invariant e = List.for_all (fun v -> not (List.mem v var_names)) (Ast.vars_of e) in
  let never_equal (ri : Ast.range) e =
    (* with an ascending range the iterated values satisfy
       lo <= v <= hi, so either bound strictly beyond [e] separates;
       mirrored for a descending literal step *)
    let ascending =
      match ri.Ast.st with
      | None -> true
      | Some { Ast.e = Ast.Int_lit n; _ } -> n > 0
      | Some _ -> false
    in
    let descending =
      match ri.Ast.st with Some { Ast.e = Ast.Int_lit n; _ } -> n < 0 | _ -> false
    in
    let lo = const_diff ri.Ast.lo e and hi = const_diff ri.Ast.hi e in
    let gt = function Some d -> d > 0 | None -> false in
    let lt = function Some d -> d < 0 | None -> false in
    (ascending && (gt lo || lt hi)) || (descending && (lt lo || gt hi))
  in
  let separated_dim (la : Ast.section) (ra : Ast.section) =
    match (la, ra) with
    | Ast.Elem { Ast.e = Ast.Var i; _ }, Ast.Elem e -> (
        match List.assoc_opt i f.Ir.f_vars with
        | Some ri -> invariant e && never_equal ri e
        | None -> false)
    | _ -> false
  in
  let provably_disjoint (r : Ast.ref_) =
    List.length r.Ast.args = List.length f.Ir.f_lhs.Ast.args
    && List.exists2 separated_dim f.Ir.f_lhs.Ast.args r.Ast.args
  in
  let hazardous (r : Ast.ref_) =
    r.Ast.base = f.Ir.f_lhs.Ast.base && direct r
    && not (same_subscripts r f.Ir.f_lhs)
    && not (provably_disjoint r)
  in
  let refs =
    Ast.refs_of f.Ir.f_rhs
    @ (match f.Ir.f_mask with Some m -> Ast.refs_of m | None -> [])
    @ List.concat_map
        (function Ast.Elem e -> Ast.refs_of e | Ast.Range _ -> [])
        f.Ir.f_lhs.Ast.args
  in
  List.exists hazardous refs

let lower_forall_plan env ~vars ~mask ~lhs ~rhs =
  let plan = Pattern.analyze_forall env ~vars ~mask ~lhs ~rhs in
  let iter, post =
    match plan.Pattern.lhs with
    | Pattern.Lhs_canonical { var_dims; guards } ->
        (Ir.It_canonical { var_dims; guards }, None)
    | Pattern.Lhs_replicated -> (Ir.It_replicated, None)
    | Pattern.Lhs_postcomp -> (Ir.It_even, Some (Ir.Postcomp_write { key = None }))
    | Pattern.Lhs_scatter -> (Ir.It_even, Some (Ir.Scatter_write { key = None }))
  in
  (* inspector ops (Precomp/Gather) evaluate their ref's subscripts, which
     may read indirection arrays through comm temporaries of their own
     (e.g. V in A(V(I))) — order the refs innermost-first so every
     subscript's temporary is populated before an op depends on it *)
  let rec ref_depth (r : Ast.ref_) =
    1
    + List.fold_left
        (fun acc s ->
          match s with
          | Ast.Elem e ->
              List.fold_left (fun a ri -> max a (ref_depth ri)) acc (Ast.refs_of e)
          | Ast.Range _ -> acc)
        0 r.Ast.args
  in
  let refs =
    List.stable_sort
      (fun ((a : Ast.ref_), _) ((b : Ast.ref_), _) -> compare (ref_depth a) (ref_depth b))
      plan.Pattern.refs
  in
  let pre, accesses, ghosts =
    List.fold_left
      (fun (pre, accs, ghosts) (r, rplan) ->
        let p, a, g = lower_ref env ~vars r rplan in
        (pre @ p, accs @ a, ghosts @ g))
      ([], [], []) refs
  in
  let f =
    {
      Ir.f_vars = vars;
      f_mask = mask;
      f_lhs = plan.Pattern.lhs_ref;
      f_rhs = rhs;
      f_iter = iter;
      f_pre = pre;
      f_access = accesses;
      f_post = post;
      f_snapshot = false;
    }
  in
  ({ f with Ir.f_snapshot = needs_snapshot f }, ghosts, plan)

let lower_forall env ~vars ~mask ~lhs ~rhs =
  let f, g, _ = lower_forall_plan env ~vars ~mask ~lhs ~rhs in
  (f, g)

let iter_name = function
  | Ir.It_canonical _ -> "canonical (owner computes)"
  | Ir.It_even -> "even iteration partition"
  | Ir.It_replicated -> "replicated"

let post_name = function
  | Ir.Postcomp_write _ -> "postcomp_write"
  | Ir.Scatter_write _ -> "scatter_write"

(* Explain record for a lowered FORALL: the Pattern decision trail plus
   the DAD facts of every array it touches. *)
let explain_forall acc env ~sid ~loc ~vars (f : Ir.forall) (plan : Pattern.plan) =
  let arrays =
    (f.Ir.f_lhs.Ast.base :: List.map (fun ((r : Ast.ref_), _) -> r.Ast.base) plan.Pattern.refs)
    |> List.sort_uniq compare
  in
  let x =
    {
      Ir.x_sid = sid;
      x_loc = loc;
      x_unit = acc.uname;
      x_stmt =
        Printf.sprintf "FORALL (%s) %s = %s"
          (String.concat "," (List.map fst vars))
          (render_ref f.Ir.f_lhs)
          (truncate 60 (render_expr f.Ir.f_rhs));
      x_lhs = f.Ir.f_lhs.Ast.base;
      x_iter = iter_name f.Ir.f_iter;
      x_iter_why = plan.Pattern.lhs_why;
      x_dist = List.map (dist_fact env) arrays;
      x_refs =
        List.map
          (fun ((r : Ast.ref_), rplan) ->
            {
              Ir.xr_ref = render_ref r;
              xr_plan = Pattern.plan_name rplan;
              xr_why =
                Option.value (List.assoc_opt r.Ast.rid plan.Pattern.ref_whys) ~default:[];
            })
          plan.Pattern.refs;
      x_comms = List.map Ir.comm_name f.Ir.f_pre;
      x_post = Option.map post_name f.Ir.f_post;
    }
  in
  acc.explain <- x :: acc.explain

let explain_mover acc env ~sid ~loc ~target (call : Ast.ref_) =
  let arg_arrays =
    List.filter_map
      (function
        | Ast.Elem { Ast.e = Ast.Ref r; _ } when Sema.array_spec env r.Ast.base <> None ->
            Some r.Ast.base
        | _ -> None)
      call.Ast.args
  in
  let x =
    {
      Ir.x_sid = sid;
      x_loc = loc;
      x_unit = acc.uname;
      x_stmt = Printf.sprintf "%s = %s" target (truncate 60 (render_ref call));
      x_lhs = target;
      x_iter = "intrinsic mover";
      x_iter_why =
        Printf.sprintf
          "whole-array movement intrinsic %s: the run-time mover picks the transfer \
           pattern from the argument DADs"
          (String.uppercase_ascii call.Ast.base);
      x_dist = List.map (dist_fact env) (List.sort_uniq compare (target :: arg_arrays));
      x_refs = [];
      x_comms = [ "mover " ^ String.lowercase_ascii call.Ast.base ];
      x_post = None;
    }
  in
  acc.explain <- x :: acc.explain

let is_mover_call (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Ref r when Intrinsic_names.returns_array ~nargs:(List.length r.Ast.args) r.Ast.base ->
      Some r
  | _ -> None

let rec lower_stmt env acc ghosts (st : Ast.stmt) : Ir.stmt list =
  let loc = st.Ast.sloc in
  (* Allocate the statement's sid before lowering any nested body so sids
     read in source order: outer statement, then its body. *)
  let stmt ~desc node = { Ir.sid = new_sid acc ~loc ~desc; sloc = loc; s = node } in
  match st.Ast.s with
  | Ast.Assign (({ Ast.e = Ast.Var v; _ } as _lhs), rhs) -> (
      match is_mover_call rhs with
      | Some call ->
          if Sema.array_spec env v = None then
            Diag.error ~loc:st.Ast.sloc "intrinsic '%s' must be assigned to an array"
              call.Ast.base;
          let sid = new_sid acc ~loc ~desc:(Printf.sprintf "%s = %s(...)" v call.Ast.base) in
          explain_mover acc env ~sid ~loc ~target:v call;
          [ { Ir.sid; sloc = loc; s = Ir.Mover { target = v; call } } ]
      | None ->
          if Sema.array_spec env v <> None then
            Diag.error ~loc:st.Ast.sloc "unexpected whole-array assignment after normalization";
          [ stmt ~desc:(v ^ " = ...") (Ir.Scalar_assign { name = v; rhs }) ])
  | Ast.Assign (({ Ast.e = Ast.Ref r; _ } as _lhs), rhs) ->
      if Sema.array_spec env r.Ast.base = None then
        Diag.error ~loc:st.Ast.sloc "assignment to undeclared array '%s'" r.Ast.base;
      if is_mover_call rhs <> None then
        Diag.error ~loc:st.Ast.sloc "movement intrinsics must target a whole array";
      [ stmt ~desc:(render_ref r ^ " = ...") (Ir.Element_assign { lhs = r; rhs }) ]
  | Ast.Assign _ -> Diag.error ~loc:st.Ast.sloc "invalid assignment target"
  | Ast.Forall (vars, mask, [ { Ast.s = Ast.Assign (lhs, rhs); _ } ]) ->
      let f, g, plan = lower_forall_plan env ~vars ~mask ~lhs ~rhs in
      ghosts := g @ !ghosts;
      let sid = new_sid acc ~loc ~desc:("forall " ^ f.Ir.f_lhs.Ast.base) in
      explain_forall acc env ~sid ~loc ~vars f plan;
      [ { Ir.sid; sloc = loc; s = Ir.Forall f } ]
  | Ast.Forall _ -> Diag.error ~loc:st.Ast.sloc "FORALL bodies must be single assignments here"
  | Ast.Where _ -> Diag.bug "lower: WHERE survived normalization"
  | Ast.Do (var, range, body) ->
      let sid = new_sid acc ~loc ~desc:("do " ^ var) in
      [ { Ir.sid; sloc = loc; s = Ir.Do_loop { var; range; body = lower_body env acc ghosts body } } ]
  | Ast.While (cond, body) ->
      let sid = new_sid acc ~loc ~desc:"do while" in
      [ { Ir.sid; sloc = loc; s = Ir.While_loop { cond; body = lower_body env acc ghosts body } } ]
  | Ast.If (arms, els) ->
      let sid = new_sid acc ~loc ~desc:"if" in
      [
        {
          Ir.sid;
          sloc = loc;
          s =
            Ir.If_block
              {
                arms = List.map (fun (c, b) -> (c, lower_body env acc ghosts b)) arms;
                els = lower_body env acc ghosts els;
              };
        };
      ]
  | Ast.Call (sub, args) -> [ stmt ~desc:("call " ^ sub) (Ir.Call_sub { sub; args }) ]
  | Ast.Print args -> [ stmt ~desc:"print" (Ir.Print_stmt args) ]
  | Ast.Return -> [ stmt ~desc:"return" Ir.Return_stmt ]

and lower_body env acc ghosts body = List.concat_map (lower_stmt env acc ghosts) body

let lower_unit env =
  temp_counter := 0;
  let uname = env.Sema.usub.Ast.pname in
  let acc = { uname; prov = []; explain = [] } in
  let normalized = Normalize.normalize_unit env env.Sema.usub.Ast.body in
  let ghosts = ref [] in
  let body = lower_body env acc ghosts normalized in
  (* consolidate ghost requirements: widest wins per (array, dim) *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (arr, dim, lo, hi) ->
      let k = (arr, dim) in
      let lo0, hi0 = Option.value (Hashtbl.find_opt tbl k) ~default:(0, 0) in
      Hashtbl.replace tbl k (max lo lo0, max hi hi0))
    !ghosts;
  let u_ghosts = Hashtbl.fold (fun (arr, dim) (lo, hi) acc -> (arr, dim, lo, hi) :: acc) tbl [] in
  (* The epilogue sid attributes end-of-unit communication (final-value
     gather, argument copy-back) to the unit header's source line. *)
  let u_epilogue =
    {
      Ir.pv_sid = fresh_sid ();
      pv_loc = env.Sema.usub.Ast.ploc;
      pv_unit = uname;
      pv_desc = "epilogue (finals gather / copy-back)";
    }
  in
  {
    Ir.u_name = uname;
    u_env = env;
    u_body = body;
    u_ghosts;
    u_prov = List.rev acc.prov;
    u_explain = List.rev acc.explain;
    u_epilogue;
  }

let lower_program (penv : Sema.program_env) =
  sid_counter := 0;
  let units = List.map (fun (name, uenv) -> (name, lower_unit uenv)) penv.Sema.uunits in
  { Ir.p_env = penv; p_units = units }
