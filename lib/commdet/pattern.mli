(** Communication detection for FORALL statements — Algorithm 1 of the
    paper, driven by Tables 1 (structured) and 2 (unstructured).

    For every array reference in the statement (right-hand side and mask),
    each distributed dimension's subscript is paired with the left-hand
    side subscript aligned to the same processor-grid dimension and
    matched against Table 1; references that fail all structured patterns
    fall back to the unstructured primitives of Table 2.  The left-hand
    side itself is tagged canonical (owner computes), postcomp_write or
    scatter (§4's computation-partitioning cases 3/4), or replicated.

    One refinement over the paper's Algorithm 1 as printed: when the lhs
    is not distributed (line 11), a rhs dimension whose subscript is
    {e constant} is tagged multicast of that slice rather than
    concatenation of the whole array — the slab broadcast the paper's own
    Gaussian-elimination results rely on; concatenation remains the
    fallback for varying subscripts. *)

open F90d_frontend

type dim_tag =
  | No_comm
  | Local_dim  (** dimension not distributed: direct local access *)
  | Multicast of Ast.expr
  | Transfer of { src : Ast.expr; dest : Ast.expr }
  | Overlap of int
  | Temp_shift of Ast.expr  (** signed, run-time shift amount *)

type ref_plan =
  | Direct  (** fully local (replicated array or all dims owned) *)
  | Structured of dim_tag array
  | Precomp_read  (** invertible subscripts: schedule1 inspector *)
  | Gather  (** vector-valued / unknown: schedule2 inspector *)
  | Concat

type lhs_kind =
  | Lhs_canonical of {
      var_dims : (string * int option) list;
          (** each FORALL variable's lhs dimension (None: unconstrained) *)
      guards : (int * Ast.expr) list;
          (** constant-subscript distributed dimensions: only owners are active *)
    }
  | Lhs_replicated
  | Lhs_postcomp  (** non-canonical but invertible: write-back after compute *)
  | Lhs_scatter

type plan = {
  lhs_ref : Ast.ref_;
  lhs : lhs_kind;
  refs : (Ast.ref_ * ref_plan) list;  (** every rhs/mask array reference *)
  lhs_why : string;
      (** human-readable reason for the lhs classification (which §4
          computation-partitioning case applied) *)
  ref_whys : (int * string list) list;
      (** per-reference decision trail keyed by [Ast.ref_.rid]: one line
          per distributed dimension naming the Table 1 row that matched,
          or why the reference fell through to Table 2 *)
}

val analyze_forall :
  Sema.unit_env ->
  vars:(string * Ast.range) list ->
  mask:Ast.expr option ->
  lhs:Ast.expr ->
  rhs:Ast.expr ->
  plan

val tag_name : dim_tag -> string
val plan_name : ref_plan -> string
(** Short names for explain reports ("multicast", "structured[...]",
    ...). *)

val classify_pair : Subscript.t -> Subscript.t -> string
(** Table 1/2 row name for an (lhs, rhs) subscript pair assuming aligned
    block-distributed dimensions — used to regenerate the paper's tables. *)

val pp_plan : Format.formatter -> plan -> unit
