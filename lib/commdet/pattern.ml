open F90d_base
open F90d_frontend

type dim_tag =
  | No_comm
  | Local_dim
  | Multicast of Ast.expr
  | Transfer of { src : Ast.expr; dest : Ast.expr }
  | Overlap of int
  | Temp_shift of Ast.expr

type ref_plan = Direct | Structured of dim_tag array | Precomp_read | Gather | Concat

type lhs_kind =
  | Lhs_canonical of {
      var_dims : (string * int option) list;
      guards : (int * Ast.expr) list;
    }
  | Lhs_replicated
  | Lhs_postcomp
  | Lhs_scatter

type plan = {
  lhs_ref : Ast.ref_;
  lhs : lhs_kind;
  refs : (Ast.ref_ * ref_plan) list;
  lhs_why : string;
  ref_whys : (int * string list) list;
}

let subscript_exprs (r : Ast.ref_) =
  List.map
    (function
      | Ast.Elem e -> e
      | Ast.Range _ -> Diag.bug "commdet: array section survived normalization")
    r.Ast.args

let classify_ref env ~vars (r : Ast.ref_) =
  let lookup v = List.assoc_opt v env.Sema.uparams in
  let is_int_array n =
    match Sema.array_spec env n with Some s -> s.Sema.skind = Ast.Integer | None -> false
  in
  List.map (Subscript.classify ~vars ~is_const:lookup ~is_int_array) (subscript_exprs r)
  |> Array.of_list

(* Can structured/local access share local indices between two dimensions?
   Requires the same template extent, alignment and distribution. *)
let layouts_match (a : Sema.sdim) (b : Sema.sdim) =
  a.Sema.stn = b.Sema.stn && a.Sema.sform = b.Sema.sform
  && Affine.equal a.Sema.salign b.Sema.salign
  && a.Sema.sext = b.Sema.sext && a.Sema.sflb = b.Sema.sflb

(* Conservative bound for using ghost cells instead of a temporary: the
   shift must fit in the smallest block. *)
let overlap_ok (d : Sema.sdim) c =
  d.Sema.sform = Ast.Dblock && Affine.is_identity d.Sema.salign && c <> 0 && abs c <= 3

(* Table 1 / Table 2 row names for an aligned block-distributed pair. *)
let classify_pair lhs_cls rhs_cls =
  match (lhs_cls, rhs_cls) with
  | Subscript.Canonical v, Subscript.Canonical v' when v = v' -> "no communication"
  | Subscript.Canonical _, Subscript.Const _ -> "multicast"
  | Subscript.Canonical v, Subscript.Var_const (v', c) when v = v' ->
      if abs c <= 3 then "overlap_shift" else "temporary_shift"
  | Subscript.Canonical v, Subscript.Var_scalar (v', _) when v = v' -> "temporary_shift"
  | Subscript.Const _, Subscript.Const _ -> "transfer"
  | _, Subscript.Affine _ -> "precomp_read / postcomp_write"
  | _, Subscript.Vector _ -> "gather / scatter"
  | _, _ -> "gather / scatter (unknown)"

let analyze_forall env ~vars ~mask ~lhs ~rhs =
  let var_names = List.map fst vars in
  let lhs_ref =
    match lhs.Ast.e with
    | Ast.Ref r -> r
    | _ -> Diag.error ~loc:lhs.Ast.loc "FORALL assignment target must be an array element"
  in
  let lhs_spec =
    match Sema.array_spec env lhs_ref.Ast.base with
    | Some s -> s
    | None -> Diag.error ~loc:lhs.Ast.loc "'%s' is not an array" lhs_ref.Ast.base
  in
  let lhs_classes = classify_ref env ~vars:var_names lhs_ref in
  (* ----- left-hand side ----- *)
  let lhs_distributed = Sema.is_distributed lhs_spec in
  let lhs_kind =
    if not lhs_distributed then Lhs_replicated
    else begin
      (* distributed dims must be canonical or constant for owner computes *)
      let bad_structured = ref false and vector_write = ref false in
      Array.iteri
        (fun d cls ->
          if lhs_spec.Sema.sdims.(d).Sema.spdim <> None then
            match cls with
            | Subscript.Canonical _ | Subscript.Const _ -> ()
            | Subscript.Var_const _ | Subscript.Var_scalar _ | Subscript.Affine _ ->
                bad_structured := true
            | Subscript.Vector _ | Subscript.Unknown -> vector_write := true)
        lhs_classes;
      if !vector_write then Lhs_scatter
      else if !bad_structured then Lhs_postcomp
      else begin
        let guards = ref [] in
        let var_dims =
          List.map
            (fun v ->
              let dim = ref None in
              Array.iteri
                (fun d cls ->
                  match cls with
                  | Subscript.Canonical v' when v' = v && !dim = None -> dim := Some d
                  | _ -> ())
                lhs_classes;
              (v, !dim))
            var_names
        in
        Array.iteri
          (fun d cls ->
            match cls with
            | Subscript.Const e when lhs_spec.Sema.sdims.(d).Sema.spdim <> None ->
                guards := (d, e) :: !guards
            | _ -> ())
          lhs_classes;
        Lhs_canonical { var_dims; guards = List.rev !guards }
      end
    end
  in
  let lhs_why =
    match lhs_kind with
    | Lhs_replicated ->
        Printf.sprintf "'%s' is not distributed: computation replicated on every processor"
          lhs_ref.Ast.base
    | Lhs_scatter ->
        "vector-valued subscript on a distributed lhs dimension: scatter write \
         (Table 2, §4 case 4)"
    | Lhs_postcomp ->
        "non-canonical but invertible subscript on a distributed lhs dimension: \
         compute on even iteration partition, postcomp write-back (Table 2, §4 case 3)"
    | Lhs_canonical { guards; _ } ->
        if guards = [] then
          "owner computes: canonical subscripts, iterations follow the lhs distribution"
        else
          Printf.sprintf
            "owner computes with %d constant-subscript guard(s): only owning processors \
             are active in the guarded dimension(s)"
            (List.length guards)
  in
  (* ----- right-hand side and mask references ----- *)
  let cls_str c = Format.asprintf "%a" Subscript.pp c in
  let lhs_dim_on_grid p =
    let found = ref None in
    Array.iteri
      (fun d sd -> if sd.Sema.spdim = Some p && !found = None then found := Some d)
      lhs_spec.Sema.sdims;
    !found
  in
  (* under even iteration partitioning (non-canonical lhs, §4 cases 3/4)
     nothing aligns with the iterations: every distributed reference reads
     through an inspector *)
  let even_iteration =
    match lhs_kind with
    | Lhs_postcomp | Lhs_scatter -> true
    | Lhs_canonical _ | Lhs_replicated -> false
  in
  let ref_whys = ref [] in
  let plan_of_ref (r : Ast.ref_) =
    let why = ref [] in
    let say fmt = Printf.ksprintf (fun s -> why := s :: !why) fmt in
    let record plan =
      ref_whys := (r.Ast.rid, List.rev !why) :: !ref_whys;
      Some (r, plan)
    in
    match Sema.array_spec env r.Ast.base with
    | None -> None (* intrinsic call or scalar function: not a data reference *)
    | Some spec ->
        if not (Sema.is_distributed spec) then begin
          say "'%s' is not distributed: local access" r.Ast.base;
          record Direct
        end
        else if even_iteration then begin
          let classes = classify_ref env ~vars:var_names r in
          let vectorish =
            Array.exists
              (function Subscript.Vector _ | Subscript.Unknown -> true | _ -> false)
              classes
          in
          if vectorish then
            say
              "iterations evenly partitioned (non-canonical lhs) and subscript is \
               vector-valued: gather (Table 2)"
          else
            say
              "iterations evenly partitioned (non-canonical lhs): nothing aligns with the \
               iterations, read through precomp inspector (Table 2)";
          record (if vectorish then Gather else Precomp_read)
        end
        else begin
          let classes = classify_ref env ~vars:var_names r in
          let tags = Array.make (Array.length spec.Sema.sdims) Local_dim in
          let needs_precomp = ref false
          and needs_gather = ref false
          and needs_concat = ref false in
          Array.iteri
            (fun d sd ->
              match sd.Sema.spdim with
              | None -> tags.(d) <- Local_dim
              | Some p -> (
                  let cls = classes.(d) in
                  match (lhs_distributed, lhs_dim_on_grid p) with
                  | true, Some dl -> (
                      let sdl = lhs_spec.Sema.sdims.(dl) in
                      let aligned = layouts_match sd sdl in
                      let row = classify_pair lhs_classes.(dl) cls in
                      let pair_str =
                        Printf.sprintf "dim %d: lhs%s vs rhs%s%s" (d + 1)
                          (cls_str lhs_classes.(dl)) (cls_str cls)
                          (if aligned then "" else ", layouts differ")
                      in
                      match (lhs_classes.(dl), cls) with
                      | Subscript.Canonical v, Subscript.Canonical v' when v = v' && aligned ->
                          say "%s -> %s (Table 1)" pair_str row;
                          tags.(d) <- No_comm
                      | Subscript.Canonical v, Subscript.Var_const (v', c)
                        when v = v' && aligned && overlap_ok sd c ->
                          say
                            "%s -> overlap_shift(%+d) into ghost cells (Table 1; |%d| <= 3, \
                             BLOCK, identity align)"
                            pair_str c c;
                          tags.(d) <- Overlap c
                      | Subscript.Canonical v, Subscript.Var_const (v', c) when v = v' && aligned
                        ->
                          say "%s -> temporary_shift(%+d) (Table 1; too wide or uneven for \
                               ghost cells)"
                            pair_str c;
                          tags.(d) <- Temp_shift (Ast.int_lit c)
                      | Subscript.Canonical v, Subscript.Var_scalar (v', s) when v = v' && aligned
                        ->
                          say "%s -> temporary_shift by run-time scalar (Table 1)" pair_str;
                          tags.(d) <- Temp_shift s
                      | _, Subscript.Const s -> (
                          match lhs_classes.(dl) with
                          | Subscript.Const dsub when aligned ->
                              say "%s -> transfer between owners (Table 1)" pair_str;
                              tags.(d) <- Transfer { src = s; dest = dsub }
                          | Subscript.Const _ ->
                              (* the transfer destination is named by a lhs
                                 subscript: only meaningful when both sides
                                 share a layout, otherwise the slab would be
                                 delivered to the wrong owner *)
                              say
                                "%s -> transfer impossible (layouts differ): precomp \
                                 inspector (Table 2)"
                                pair_str;
                              needs_precomp := true
                          | _ ->
                              say "%s -> multicast of the owning slab (Table 1)" pair_str;
                              tags.(d) <- Multicast s)
                      | Subscript.Canonical v, Subscript.Affine (v', _) when v = v' && aligned ->
                          say "%s -> no Table 1 row (affine stride): precomp inspector \
                               (Table 2)"
                            pair_str;
                          needs_precomp := true
                      | _, (Subscript.Vector _ | Subscript.Unknown) ->
                          say "%s -> vector-valued/unknown subscript: gather (Table 2)" pair_str;
                          needs_gather := true
                      | _, _ ->
                          say "%s -> no Table 1 row (cross-variable or misaligned): precomp \
                               inspector (Table 2)"
                            pair_str;
                          needs_precomp := true)
                  | _, _ -> (
                      (* lhs is not distributed over this grid dimension *)
                      match cls with
                      | Subscript.Const s ->
                          say
                            "dim %d: rhs%s constant, lhs not on grid dim %d -> multicast of \
                             the slice (Table 1)"
                            (d + 1) (cls_str cls) (p + 1);
                          tags.(d) <- Multicast s
                      | Subscript.Vector _ | Subscript.Unknown ->
                          say "dim %d: rhs%s vector-valued/unknown -> gather (Table 2)" (d + 1)
                            (cls_str cls);
                          needs_gather := true
                      | _ ->
                          if lhs_distributed then begin
                            say
                              "dim %d: rhs%s varies but lhs has no dimension on grid dim %d \
                               -> precomp inspector (Table 2)"
                              (d + 1) (cls_str cls) (p + 1);
                            needs_precomp := true
                          end
                          else begin
                            say
                              "dim %d: rhs%s varies and lhs is replicated -> concatenation \
                               (Table 2)"
                              (d + 1) (cls_str cls);
                            needs_concat := true
                          end)))
            spec.Sema.sdims;
          let plan =
            if !needs_gather then Gather
            else if !needs_concat then Concat
            else if !needs_precomp then Precomp_read
            else if Array.for_all (fun t -> t = No_comm || t = Local_dim) tags then Direct
            else Structured tags
          in
          record plan
        end
  in
  let all_refs =
    Ast.refs_of rhs
    @ (match mask with Some m -> Ast.refs_of m | None -> [])
    @ List.concat_map Ast.refs_of (subscript_exprs lhs_ref)
  in
  let refs = List.filter_map plan_of_ref all_refs in
  { lhs_ref; lhs = lhs_kind; refs; lhs_why; ref_whys = List.rev !ref_whys }

let tag_name = function
  | No_comm -> "no_comm"
  | Local_dim -> "local"
  | Multicast _ -> "multicast"
  | Transfer _ -> "transfer"
  | Overlap c -> Printf.sprintf "overlap_shift(%+d)" c
  | Temp_shift _ -> "temporary_shift"

let plan_name = function
  | Direct -> "direct"
  | Structured tags ->
      Printf.sprintf "structured[%s]"
        (String.concat "," (Array.to_list (Array.map tag_name tags)))
  | Precomp_read -> "precomp_read"
  | Gather -> "gather"
  | Concat -> "concatenation"

let pp_plan ppf plan =
  let lhs_name =
    match plan.lhs with
    | Lhs_canonical _ -> "canonical"
    | Lhs_replicated -> "replicated"
    | Lhs_postcomp -> "postcomp_write"
    | Lhs_scatter -> "scatter"
  in
  Format.fprintf ppf "@[<v>lhs %s: %s@," plan.lhs_ref.Ast.base lhs_name;
  List.iter
    (fun ((r : Ast.ref_), p) -> Format.fprintf ppf "rhs %s: %s@," r.Ast.base (plan_name p))
    plan.refs;
  Format.fprintf ppf "@]"
