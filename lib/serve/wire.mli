(** Length-prefixed message framing for the serve protocol.

    A frame is the payload's byte length as ASCII decimal, a newline,
    then the payload — trivially debuggable with [od] and producible
    from a shell script with [printf].  Reads are bounded: a frame
    header longer than 20 bytes, a non-numeric length or a length above
    {!max_frame} tears the connection down rather than letting a rogue
    client allocate arbitrary memory. *)

exception Closed
(** Orderly end of stream while expecting a frame header. *)

exception Framing of string
(** Protocol violation (bad header, oversized frame, truncated body). *)

val max_frame : int
(** Upper bound on payload size, 256 MiB. *)

val read_frame : Unix.file_descr -> string
(** @raise Closed on clean EOF before any header byte.
    @raise Framing on malformed headers or mid-frame EOF. *)

val write_frame : Unix.file_descr -> string -> unit
