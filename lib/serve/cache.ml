type t = {
  fronts : (string, F90d.Driver.front) Hashtbl.t;  (* source digest -> front *)
  compiled : (string, F90d.Driver.compiled) Hashtbl.t;  (* digest ^ flags fp -> optimized *)
  m : Mutex.t;
  h1 : int Atomic.t;
  m1 : int Atomic.t;
  h2 : int Atomic.t;
  m2 : int Atomic.t;
}

let create () =
  {
    fronts = Hashtbl.create 16;
    compiled = Hashtbl.create 16;
    m = Mutex.create ();
    h1 = Atomic.make 0;
    m1 = Atomic.make 0;
    h2 = Atomic.make 0;
    m2 = Atomic.make 0;
  }

let source_digest source = Digest.to_hex (Digest.string source)

let flags_fp (f : F90d_opt.Passes.flags) =
  let b tag v = Printf.sprintf "%s%d" tag (if v then 1 else 0) in
  String.concat ""
    [
      b "su" f.F90d_opt.Passes.shift_union;
      b "fm" f.F90d_opt.Passes.fuse_mshift;
      b "sr" f.F90d_opt.Passes.schedule_reuse;
      b "hc" f.F90d_opt.Passes.hoist_comm;
      b "co" f.F90d_opt.Passes.coalesce;
      b "sp" f.F90d_opt.Passes.split_comm;
      b "la" f.F90d_opt.Passes.lookahead;
      b "bk" f.F90d_opt.Passes.blocked_kernels;
    ]

type temp = Hit | Miss

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let compile t ~use ~flags source =
  if not use then (F90d.Driver.compile ~flags source, Miss, Miss)
  else begin
    let d = source_digest source in
    let key2 = d ^ ":" ^ flags_fp flags in
    match locked t (fun () -> Hashtbl.find_opt t.compiled key2) with
    | Some c ->
        Atomic.incr t.h1;
        (* a level-2 hit implies the front was available too *)
        Atomic.incr t.h2;
        (c, Hit, Hit)
    | None ->
        Atomic.incr t.m2;
        let front, t1 =
          match locked t (fun () -> Hashtbl.find_opt t.fronts d) with
          | Some f ->
              Atomic.incr t.h1;
              (f, Hit)
          | None ->
              Atomic.incr t.m1;
              let f = F90d.Driver.front source in
              locked t (fun () -> Hashtbl.replace t.fronts d f);
              (f, Miss)
        in
        let c = F90d.Driver.optimize ~flags front in
        locked t (fun () -> Hashtbl.replace t.compiled key2 c);
        (c, t1, Miss)
  end

let l1_hits t = Atomic.get t.h1
let l1_misses t = Atomic.get t.m1
let l2_hits t = Atomic.get t.h2
let l2_misses t = Atomic.get t.m2

let entries t =
  locked t (fun () -> (Hashtbl.length t.fronts, Hashtbl.length t.compiled))
