(** Minimal JSON codec for the serve protocol.

    Self-contained (the container has no JSON package) and strict enough
    for a daemon boundary: the parser rejects trailing garbage, unpaired
    surrogates stay as replacement characters, and numbers keep their
    int/float identity.  Floats print with [%.17g] so values round-trip
    bit-for-bit — the serve protocol's bit-identity guarantees depend on
    it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Malformed input, with a byte offset in the message. *)

val parse : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents like the bench JSON. *)

(** {2 Object accessors} — all total; [mem] distinguishes absent from [Null]. *)

val mem : t -> string -> t option
(** Field of an [Obj] ([None] for other constructors or missing keys). *)

val str : t -> string option
val int : t -> int option
(** [Int n] and integral [Float] values. *)

val float : t -> float option
(** [Float] and [Int] values. *)

val bool : t -> bool option
val list : t -> t list option
