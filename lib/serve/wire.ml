exception Closed
exception Framing of string

let max_frame = 256 * 1024 * 1024

(* One-byte reads for the header only; the body reads in bulk. *)
let read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with 0 -> None | _ -> Some (Bytes.get b 0)

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then
      match Unix.read fd buf off (n - off) with
      | 0 -> raise (Framing (Printf.sprintf "eof %d bytes into a %d-byte frame" off n))
      | k -> go (off + k)
  in
  go 0;
  Bytes.unsafe_to_string buf

let read_frame fd =
  let header = Buffer.create 12 in
  let rec go () =
    match read_byte fd with
    | None -> if Buffer.length header = 0 then raise Closed else raise (Framing "eof in frame header")
    | Some '\n' -> ()
    | Some ('0' .. '9' as c) ->
        if Buffer.length header >= 20 then raise (Framing "frame header too long");
        Buffer.add_char header c;
        go ()
    | Some c -> raise (Framing (Printf.sprintf "bad frame header byte %C" c))
  in
  go ();
  match int_of_string_opt (Buffer.contents header) with
  | None -> raise (Framing "empty frame header")
  | Some n when n > max_frame -> raise (Framing (Printf.sprintf "frame of %d bytes exceeds limit" n))
  | Some n -> read_exact fd n

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let write_frame fd s = write_all fd (Printf.sprintf "%d\n%s" (String.length s) s)
