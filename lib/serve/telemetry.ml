(* The serving path's metric families, registered once per registry so
   the daemon, the in-process bench replay and the one-shot CLI all
   expose the identical family set.

   Two instrument styles, deliberately:
   - direct counters/histograms for events only this layer sees
     (requests by op, errors, timeouts, request latency, per-run engine
     totals accumulated from [Stats.metric_families]);
   - scrape-time callbacks for values something else already counts
     (cache hit atomics, store corruption, pool queue depth, disk
     usage) — never a second counter to drift from the first.

   When the service has no cache/store/pool, the corresponding families
   still register with a constant-zero callback, so every surface
   renders the same family set and fleet dashboards never see a family
   flap in and out of existence. *)

module M = F90d_obs.Metrics

type t = {
  registry : M.registry;
  req_ops : (string * M.Counter.t) list;  (* per known op, plus "other" *)
  errors : M.Counter.t;
  timeouts : M.Counter.t;
  in_flight : M.Gauge.t;
  durations : (string * M.Histogram.t) list;
  runs : M.Counter.t;
  sim_elapsed : M.Counter.t;
  sim : (string * M.Counter.t) list;  (* family name -> counter *)
}

let other_op = "other"

(* All engine-counter families, at zero — the name/help source for
   registration, so the family list always matches what [observe_run]
   will feed. *)
let sim_families () = F90d_machine.Stats.metric_families F90d_machine.Stats.empty

let register_pool_callbacks ?(workers = fun () -> 0.) ?(queue_depth = fun () -> 0.)
    ?(busy = fun () -> 0.) registry =
  let cb = M.register_callback ~registry in
  cb ~kind:`Gauge ~help:"size of the fixed domain-worker pool" "f90d_pool_workers" workers;
  cb ~kind:`Gauge ~help:"requests queued for a free worker domain" "f90d_pool_queue_depth"
    queue_depth;
  cb ~kind:`Gauge ~help:"worker domains currently executing a request" "f90d_pool_busy_workers"
    busy

let create ?(registry = M.create ()) ?cache ?store ~started ~ops () =
  let counter ?labels ~help name = M.Counter.v ~registry ?labels ~help name in
  let cb = M.register_callback ~registry in
  let with_other = ops @ [ other_op ] in
  let req_ops =
    List.map
      (fun op ->
        ( op,
          counter
            ~labels:[ ("op", op) ]
            ~help:"requests received, by operation (\"other\" = unknown or malformed)"
            "f90d_requests_total" ))
      with_other
  in
  let durations =
    List.map
      (fun op ->
        ( op,
          M.Histogram.v ~registry
            ~labels:[ ("op", op) ]
            ~help:"request wall-clock latency in seconds, by operation"
            "f90d_request_duration_seconds" ))
      with_other
  in
  let errors = counter ~help:"requests answered with ok=false" "f90d_request_errors_total" in
  let timeouts =
    counter ~help:"requests that exceeded their wall-clock limit" "f90d_request_timeouts_total"
  in
  let in_flight =
    M.Gauge.v ~registry ~help:"requests currently being served" "f90d_requests_in_flight"
  in
  let runs =
    counter ~help:"simulated program executions completed" "f90d_runs_total"
  in
  let sim_elapsed =
    counter ~help:"simulated machine seconds accumulated over all runs"
      "f90d_sim_elapsed_seconds_total"
  in
  let sim = List.map (fun (name, help, _) -> (name, counter ~help name)) (sim_families ()) in
  cb ~kind:`Gauge ~help:"seconds since the service started" "f90d_uptime_seconds" (fun () ->
      Unix.gettimeofday () -. started);
  cb
    ~labels:
      [
        ("version", F90d_base.Util.package_version);
        ("cache_version", string_of_int F90d_base.Util.cache_version);
      ]
    ~kind:`Gauge ~help:"build and cache-layout identity (value is always 1)" "f90d_build_info"
    (fun () -> 1.);
  (* cache levels: l1/l2 in memory, l3 the persistent schedule store *)
  let c f = match cache with None -> fun () -> 0. | Some c -> fun () -> float_of_int (f c) in
  let s f = match store with None -> fun () -> 0. | Some st -> fun () -> float_of_int (f st) in
  let hits_help = "cache hits by level (l1 front, l2 optimized, l3 schedule store)" in
  cb ~labels:[ ("level", "l1") ] ~kind:`Counter ~help:hits_help "f90d_cache_hits_total"
    (c Cache.l1_hits);
  cb ~labels:[ ("level", "l2") ] ~kind:`Counter ~help:hits_help "f90d_cache_hits_total"
    (c Cache.l2_hits);
  cb ~labels:[ ("level", "l3") ] ~kind:`Counter ~help:hits_help "f90d_cache_hits_total"
    (s Store.hits);
  let miss_help = "cache misses by level" in
  cb ~labels:[ ("level", "l1") ] ~kind:`Counter ~help:miss_help "f90d_cache_misses_total"
    (c Cache.l1_misses);
  cb ~labels:[ ("level", "l2") ] ~kind:`Counter ~help:miss_help "f90d_cache_misses_total"
    (c Cache.l2_misses);
  cb ~labels:[ ("level", "l3") ] ~kind:`Counter ~help:miss_help "f90d_cache_misses_total"
    (s Store.misses);
  let entries_help = "entries currently held by the in-memory cache levels" in
  cb ~labels:[ ("level", "l1") ] ~kind:`Gauge ~help:entries_help "f90d_cache_entries"
    (c (fun ca -> fst (Cache.entries ca)));
  cb ~labels:[ ("level", "l2") ] ~kind:`Gauge ~help:entries_help "f90d_cache_entries"
    (c (fun ca -> snd (Cache.entries ca)));
  cb ~kind:`Counter ~help:"persisted artifacts rejected by the header or digest check"
    "f90d_store_corrupt_total" (s Store.corrupt);
  cb ~kind:`Gauge ~help:"bytes of schedule artifacts on disk" "f90d_store_size_bytes"
    (s (fun st -> fst (Store.disk_usage st)));
  cb ~kind:`Gauge ~help:"schedule artifacts on disk" "f90d_store_artifacts"
    (s (fun st -> snd (Store.disk_usage st)));
  register_pool_callbacks registry;
  { registry; req_ops; errors; timeouts; in_flight; durations; runs; sim_elapsed; sim }

let registry t = t.registry

(* Re-register the pool gauges against a live pool; callback replacement
   makes this idempotent across daemon restarts in one process. *)
let set_pool t ~workers ~queue_depth ~busy =
  register_pool_callbacks t.registry
    ~workers:(fun () -> float_of_int workers)
    ~queue_depth:(fun () -> float_of_int (queue_depth ()))
    ~busy:(fun () -> float_of_int (busy ()))

(* ------------------------------------------------------------------ *)
(* Request lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let by_op assoc op =
  match List.assoc_opt op assoc with Some v -> v | None -> List.assoc other_op assoc

let count_request t op = M.Counter.inc (by_op t.req_ops op)
let count_error t = M.Counter.inc t.errors
let count_timeout t = M.Counter.inc t.timeouts
let in_flight_add t d = M.Gauge.add t.in_flight d
let observe_duration t op dt = M.Histogram.observe (by_op t.durations op) dt

let observe_run t ~elapsed stats =
  M.Counter.inc t.runs;
  M.Counter.inc_float t.sim_elapsed elapsed;
  List.iter
    (fun (name, _, v) ->
      match List.assoc_opt name t.sim with
      | Some c -> M.Counter.inc_float c v
      | None -> ())
    (F90d_machine.Stats.metric_families stats)

(* ------------------------------------------------------------------ *)
(* Thin integer views for the JSON stats op                            *)
(* ------------------------------------------------------------------ *)

let count c = int_of_float (M.Counter.value c)
let requests_by_op t = List.map (fun (op, c) -> (op, count c)) t.req_ops
let requests_total t = List.fold_left (fun acc (_, n) -> acc + n) 0 (requests_by_op t)
let errors_total t = count t.errors
let timeouts_total t = count t.timeouts
let in_flight t = int_of_float (M.Gauge.value t.in_flight)
let render t = M.render ~registry:t.registry ()
