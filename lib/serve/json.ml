type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_str f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" f (* round-trips doubles: bit-identity survives the wire *)

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let rec emit indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_str f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun k v ->
            if k > 0 then Buffer.add_string b (if pretty then ",\n" else ",")
            else if pretty then Buffer.add_char b '\n';
            if pretty then Buffer.add_string b (String.make (indent + 2) ' ');
            emit (indent + 2) v)
          vs;
        if pretty && vs <> [] then begin
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make indent ' ')
        end;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun k (key, v) ->
            if k > 0 then Buffer.add_string b (if pretty then ",\n" else ",")
            else if pretty then Buffer.add_char b '\n';
            if pretty then Buffer.add_string b (String.make (indent + 2) ' ');
            Buffer.add_char b '"';
            escape b key;
            Buffer.add_string b (if pretty then "\": " else "\":");
            emit (indent + 2) v)
          fields;
        if pretty && fields <> [] then begin
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make indent ' ')
        end;
        Buffer.add_char b '}'
  in
  emit 0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> fail st "unexpected end of input"

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c = if next st <> c then fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  String.iter (fun c -> if next st <> c then fail st ("bad literal " ^ word)) word;
  v

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end

let hex4 st =
  let digit () =
    match next st with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  let b = Buffer.create 16 in
  let rec go () =
    match next st with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match next st with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            let code = hex4 st in
            if code >= 0xd800 && code <= 0xdbff then
              (* high surrogate: pair with the following \uXXXX if present *)
              if peek st = Some '\\' && st.pos + 1 < String.length st.src
                 && st.src.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 st in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  add_utf8 b (0x10000 + ((code - 0xd800) lsl 10) + (lo - 0xdc00))
                else begin
                  add_utf8 b 0xfffd;
                  add_utf8 b 0xfffd
                end
              end
              else add_utf8 b 0xfffd
            else if code >= 0xdc00 && code <= 0xdfff then add_utf8 b 0xfffd
            else add_utf8 b code
        | _ -> fail st "bad escape");
        go ()
    | c -> (
        Buffer.add_char b c;
        go ())
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume () =
    let rec go () =
      match peek st with
      | Some ('0' .. '9' | '-' | '+') ->
          st.pos <- st.pos + 1;
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          st.pos <- st.pos + 1;
          go ()
      | _ -> ()
    in
    go ()
  in
  consume ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st ("bad number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* integer overflowing 63 bits: keep it as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st ("bad number " ^ text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' ->
      st.pos <- st.pos + 1;
      Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        let rec go () =
          skip_ws st;
          match next st with
          | ',' ->
              items := parse_value st :: !items;
              go ()
          | ']' -> ()
          | _ -> fail st "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          expect st '"';
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          (key, parse_value st)
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws st;
          match next st with
          | ',' ->
              fields := field () :: !fields;
              go ()
          | '}' -> ()
          | _ -> fail st "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let mem v key = match v with Obj fields -> List.assoc_opt key fields | _ -> None
let str = function Str s -> Some s | _ -> None

let int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None
