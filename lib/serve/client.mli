(** Client side of the serve protocol ([f90dc --client], the benches,
    the fuzzer's daemon axis): one connection, synchronous
    request/response frames. *)

type t

val connect : string -> t
(** Connect to the daemon socket at the given path.
    @raise Unix.Unix_error if nothing is listening. *)

val request : t -> Json.t -> Json.t
(** Send one request frame and block for its response frame.
    @raise Wire.Closed if the daemon hung up,
    @raise Json.Parse_error on an unparseable response. *)

val request_raw : t -> string -> string
(** Same, exchanging raw frame payloads — the transport used when byte
    equality of responses matters. *)

val close : t -> unit

val with_conn : string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)
