let magic = "f90d-sched-store"

type t = {
  dir : string;
  seq : int Atomic.t;  (* unique temp-file names within the process *)
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_corrupt : int Atomic.t;
}

let rec mkdir_p path =
  if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  ignore (Unix.stat dir);
  {
    dir;
    seq = Atomic.make 0;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_corrupt = Atomic.make 0;
  }

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "f90d"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat h ".cache/f90d"
      | _ -> ".f90d-cache")

let dir t = t.dir
let hits t = Atomic.get t.n_hits
let misses t = Atomic.get t.n_misses
let corrupt t = Atomic.get t.n_corrupt

let path_of t key = Filename.concat t.dir ("sched-" ^ key ^ ".bin")

let is_artifact name =
  String.length name > String.length "sched-.bin"
  && String.sub name 0 6 = "sched-"
  && Filename.check_suffix name ".bin"

(* (bytes, artifacts) currently on disk — scanned on demand, so the
   scrape pays for the readdir, not the save path. *)
let disk_usage t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> (0, 0)
  | names ->
      Array.fold_left
        (fun (bytes, n) name ->
          if is_artifact name then
            match Unix.stat (Filename.concat t.dir name) with
            | st -> (bytes + st.Unix.st_size, n + 1)
            | exception Unix.Unix_error _ -> (bytes, n)
          else (bytes, n))
        (0, 0) names

(* ------------------------------------------------------------------ *)
(* Body encoding: per-rank (key, blob) lists in the same little-endian  *)
(* framing Schedule.to_string uses.                                     *)
(* ------------------------------------------------------------------ *)

let ser_int b n = Buffer.add_int64_le b (Int64.of_int n)

let ser_str b s =
  ser_int b (String.length s);
  Buffer.add_string b s

let encode_body ranks =
  let b = Buffer.create 4096 in
  ser_int b (Array.length ranks);
  Array.iter
    (fun entries ->
      ser_int b (List.length entries);
      List.iter
        (fun (key, blob) ->
          ser_str b key;
          ser_str b blob)
        entries)
    ranks;
  Buffer.contents b

exception Bad of string

let decode_body s =
  let pos = ref 0 in
  let de_int () =
    if !pos + 8 > String.length s then raise (Bad "truncated body");
    let n = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    n
  in
  let de_len what =
    let n = de_int () in
    if n < 0 || n > String.length s then raise (Bad ("bad " ^ what ^ " length"));
    n
  in
  let de_str what =
    let n = de_len what in
    if !pos + n > String.length s then raise (Bad ("truncated " ^ what));
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let nranks = de_len "rank count" in
  let ranks =
    Array.init nranks (fun _ ->
        List.init (de_len "entry count") (fun _ ->
            let key = de_str "entry key" in
            let blob = de_str "entry blob" in
            (key, blob)))
  in
  if !pos <> String.length s then raise (Bad "trailing bytes");
  ranks

(* ------------------------------------------------------------------ *)
(* Artifact header                                                     *)
(* ------------------------------------------------------------------ *)

let header body =
  Printf.sprintf "%s\nf90d_cache_version %d %s\n%s\n" magic F90d_base.Util.cache_version
    F90d_base.Util.package_version
    (Digest.to_hex (Digest.string body))

let split_artifact content =
  (* magic line, version line, digest line, then the binary body *)
  let line from =
    match String.index_from_opt content from '\n' with
    | Some nl -> (String.sub content from (nl - from), nl + 1)
    | None -> raise (Bad "truncated header")
  in
  let l1, p1 = line 0 in
  if l1 <> magic then raise (Bad "not a schedule-store artifact");
  let l2, p2 = line p1 in
  (match String.split_on_char ' ' l2 with
  | "f90d_cache_version" :: v :: _ ->
      if int_of_string_opt v <> Some F90d_base.Util.cache_version then
        raise (Bad (Printf.sprintf "layout version %s (expected %d)" v F90d_base.Util.cache_version))
  | _ -> raise (Bad "missing f90d_cache_version header"));
  let l3, p3 = line p2 in
  let body = String.sub content p3 (String.length content - p3) in
  if l3 <> Digest.to_hex (Digest.string body) then raise (Bad "content digest mismatch");
  body

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load t ~key =
  let path = path_of t key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.n_misses;
    None
  end
  else
    match decode_body (split_artifact (read_file path)) with
    | ranks ->
        Atomic.incr t.n_hits;
        Some ranks
    | exception e ->
        (* Corruption is detected, logged, and the artifact removed so
           the next save rebuilds it; the caller just sees a miss. *)
        let why = match e with Bad m -> m | e -> Printexc.to_string e in
        F90d_obs.Log.warn "store_corrupt"
          [ ("path", F90d_obs.Log.S path); ("reason", F90d_obs.Log.S why) ];
        (try Sys.remove path with Sys_error _ -> ());
        Atomic.incr t.n_corrupt;
        Atomic.incr t.n_misses;
        None

let save t ~key ranks =
  let body = encode_body ranks in
  let path = path_of t key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add t.seq 1)
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header body);
        output_string oc body);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      F90d_obs.Log.warn "store_write_failed"
        [ ("path", F90d_obs.Log.S path); ("reason", F90d_obs.Log.S (Printexc.to_string e)) ];
      (try Sys.remove tmp with Sys_error _ -> ())
