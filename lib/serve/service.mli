(** The compile-and-simulate service: one JSON request in, one JSON
    response out, independent of any transport.

    The daemon ({!Server}) calls {!handle} from its domain workers; the
    CLI's one-shot cache mode and the benches call it in-process — both
    paths share every cache level, which is what makes "daemon response
    = one-shot response at equal cache temperature" a checkable
    property.

    Supported [op] values: [compile], [run], [trace], [explain],
    [profile], [stats], [metrics], [shutdown].  Every response carries
    ["ok": true/false]; failures ([Diag.Error] diagnostics, malformed
    requests, timeouts) are error responses, never exceptions — a bad
    request can not take the service down.

    Request fields (all optional unless noted):
    - [op] (required), [source] or [demo] (+[demo_n]) for program ops;
    - [nprocs] (default 4), [jobs] (1), [machine] ("ipsc860");
    - [no_opt] (false), [fno] (list of pass names as in [f90dc --fno-*]);
    - [cache] (true) — set false to bypass all three cache levels;
    - [timeout_s] — overrides the service default for this request;
    - [finals] (false) — gather and return final arrays/scalars (their
      rendering round-trips doubles bit-for-bit) plus [finals_digest];
    - [emit] (false, [compile] only) — include the generated F77+MP text.

    Level-3 schedule persistence activates when the service has a
    {!Store.t} and the request allows caching: before the run every
    rank's schedule cache is preloaded from the store artifact keyed by
    (source digest, pass flags, nprocs) — the distribution directives
    are part of the digested source — and on a store miss the built
    schedules are persisted afterwards.  A fully warm run reports
    [sched_builds = 0]. *)

type t

exception Timed_out of float
(** Raised (internally) by the engine poll hook when a request exceeds
    its deadline; {!handle} turns it into an error response with
    ["timeout": true]. *)

val create :
  ?cache:Cache.t ->
  ?store:Store.t ->
  ?registry:F90d_obs.Metrics.registry ->
  ?timeout:float ->
  ?slow:float ->
  ?workers:int ->
  unit ->
  t
(** [timeout] is the default per-request wall-clock limit in seconds
    (0 or absent = unlimited); [workers] is reported by [stats];
    [registry] receives every metric family (default: a fresh registry,
    so two services in one process never conflate counters); requests
    slower than [slow] seconds (default 10, 0 = never) log a warn-level
    [slow_request] record. *)

val ops : string list
(** The known operation vocabulary, in dispatch order. *)

val store : t -> Store.t option
val cache : t -> Cache.t

val telemetry : t -> Telemetry.t
(** The service's metric families — [Telemetry.render] is what the
    [metrics] op returns in its ["body"]. *)

val set_pool :
  t -> workers:int -> queue_depth:(unit -> int) -> busy:(unit -> int) -> unit
(** Wire the worker-pool gauges (called by {!Server.start}). *)

val handle : t -> Json.t -> Json.t
(** Serve one request.  Never raises. *)

val handle_line : t -> string -> string * [ `Continue | `Shutdown ]
(** Transport entry point: parse one frame payload (a parse failure is
    an error response), serve it, and say whether it was an accepted
    [shutdown]. *)

val strip_volatile : Json.t -> Json.t
(** Drop the fields that legitimately differ between two executions of
    the same request at equal cache temperature (host wall time); the
    rest of the response is deterministic, so equality on the result is
    the protocol's bit-identity check. *)

val demo_source : string -> nprocs:int -> n:int -> string
(** The built-in demo programs ([gauss], [gauss-cyclic], [jacobi],
    [jacobi2d], [irregular], [fft]) shared with the CLI.
    @raise Invalid_argument on an unknown name. *)

val model_of_name : string -> F90d_machine.Model.t
(** [ipsc860], [ncube2] or [ideal]; @raise Invalid_argument otherwise. *)

val flags_of_names : no_opt:bool -> string list -> F90d_opt.Passes.flags
(** Fold [--fno-*]-style pass names over the base flag set.
    @raise Invalid_argument on an unknown pass name. *)

(** {2 Level-3 plumbing shared with [f90dc --cache-dir] and the bench} *)

type sched_io = {
  sio_preload : (int -> (string * string) list) option;
      (** pass to {!F90d.Driver.run}'s [sched_preload] *)
  sio_collect : (int -> (string * string) list -> unit) option;
      (** pass to [sched_collect] *)
  sio_commit : unit -> unit;
      (** call after a successful run to persist what was collected
          (no-op on a store hit) *)
  sio_temp : string;  (** ["hit"], ["miss"] or ["off"] *)
}

val sched_io :
  Store.t option ->
  use:bool ->
  source:string ->
  flags:F90d_opt.Passes.flags ->
  nprocs:int ->
  sched_io
(** Look up the persisted schedules for (source, flags, nprocs) and
    return the run hooks: on a store hit, a preloader; on a miss, a
    per-rank collector plus the commit that persists it. *)
