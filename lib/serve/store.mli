(** The persistent level-3 cache: PARTI schedules keyed by
    (program digest, distribution, nprocs), surviving process restarts.

    One artifact per key holds {e every} rank's exported schedules, so a
    single content-digest check makes preloading all-or-nothing across
    ranks — the property that keeps a warm SPMD replay deadlock-free (a
    rank that rebuilt while its peers hit would wait on index-list
    messages nobody sends).

    Artifacts are self-identifying: a text header carries the magic, the
    [f90d_cache_version] layout version with the package version string,
    and an MD5 digest of the body.  Any mismatch (truncation, bit flip,
    stale layout) is detected on load, logged, and the artifact deleted
    — the caller sees a miss and rebuilds.  Writes go through a
    temp-file + atomic rename, so concurrent readers never observe a
    half-written artifact and concurrent writers of the same key
    last-write-win with either side valid. *)

type t

val create : dir:string -> t
(** Creates [dir] (and parents) on first use.  Raises [Unix.Unix_error]
    if the path exists but is not a writable directory. *)

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/f90d], else [$HOME/.cache/f90d], else
    [./.f90d-cache] when neither variable is set. *)

val dir : t -> string

val load : t -> key:string -> (string * string) list array option
(** The per-rank schedule entries persisted under [key] ([Some] iff a
    valid artifact exists).  Thread- and domain-safe. *)

val save : t -> key:string -> (string * string) list array -> unit
(** Persist per-rank entries (index = grid rank) under [key]
    atomically.  Failures to write (full disk, permissions) are logged
    and swallowed: the store is a cache, never a correctness
    dependency. *)

val hits : t -> int
val misses : t -> int

val corrupt : t -> int
(** Artifacts rejected (and deleted) by the header or digest check. *)

val disk_usage : t -> int * int
(** Current [(bytes, artifacts)] held on disk — a directory scan, run at
    metrics-scrape time, never on the save path. *)
