(** The serving path's metric families over {!F90d_obs.Metrics}.

    One [create] registers every family the fleet scrapes —
    [f90d_requests_total{op}], [f90d_request_duration_seconds{op}],
    error/timeout counters, the in-flight gauge, per-run engine counters
    (accumulated from {!F90d_machine.Stats.metric_families}), and
    scrape-time callbacks over the cache levels, the schedule store and
    the worker pool — so the daemon, the in-process bench replay and the
    one-shot CLI ([f90dc --metrics-out]) expose the identical family
    set.  Families whose backing object is absent (no store, no pool)
    register as constant zero rather than disappearing. *)

type t

val create :
  ?registry:F90d_obs.Metrics.registry ->
  ?cache:Cache.t ->
  ?store:Store.t ->
  started:float ->
  ops:string list ->
  unit ->
  t
(** Register all families in [registry] (default: a fresh one).  [ops]
    is the known-operation vocabulary; an extra ["other"] label value
    absorbs unknown and malformed requests so the [f90d_requests_total]
    sum covers every request received. *)

val registry : t -> F90d_obs.Metrics.registry

val set_pool :
  t -> workers:int -> queue_depth:(unit -> int) -> busy:(unit -> int) -> unit
(** Point the pool gauges ([f90d_pool_workers], [f90d_pool_queue_depth],
    [f90d_pool_busy_workers]) at a live pool; callable again after a
    restart. *)

(** {2 Request lifecycle} *)

val count_request : t -> string -> unit
(** Count one received request under its op label (unknown ops under
    ["other"]). *)

val count_error : t -> unit
val count_timeout : t -> unit

val in_flight_add : t -> float -> unit
(** [+1.] on entry, [-1.] on exit. *)

val observe_duration : t -> string -> float -> unit
(** Record a request's wall-clock seconds in its op's histogram. *)

val observe_run : t -> elapsed:float -> F90d_machine.Stats.t -> unit
(** Fold a finished run's engine totals into the counters (one call per
    run/trace/profile request). *)

(** {2 Thin integer views for the JSON [stats] op} *)

val requests_total : t -> int
val requests_by_op : t -> (string * int) list
val errors_total : t -> int
val timeouts_total : t -> int
val in_flight : t -> int

val render : t -> string
(** The registry's Prometheus text exposition. *)
