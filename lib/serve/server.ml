(* One thread per connection for the blocking socket I/O, a fixed pool
   of domains for the actual compile/simulate work.  The pool is the
   only place requests execute, so its size bounds daemon parallelism
   regardless of how many clients connect. *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let wait t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

type reply = string * [ `Continue | `Shutdown ]

module Pool = struct
  type job = Job of string * reply Ivar.t | Stop

  type t = {
    q : job Queue.t;
    m : Mutex.t;
    c : Condition.t;
    mutable closed : bool;
    mutable domains : unit Domain.t array;
    busy : int Atomic.t;  (* workers currently inside handle_line *)
  }

  let rec worker t service =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let job = Queue.pop t.q in
    Mutex.unlock t.m;
    match job with
    | Stop -> ()
    | Job (line, ivar) ->
        (* handle_line never raises, but a hung reply cell would wedge a
           connection thread forever — so belt and braces. *)
        Atomic.incr t.busy;
        let reply =
          try Service.handle_line service line
          with e ->
            ( Json.to_string
                (Json.Obj
                   [
                     ("ok", Json.Bool false);
                     ("error", Json.Str ("internal error: " ^ Printexc.to_string e));
                   ]),
              `Continue )
        in
        Atomic.decr t.busy;
        Ivar.fill ivar reply;
        worker t service

  let create ~workers service =
    let t =
      { q = Queue.create (); m = Mutex.create (); c = Condition.create (); closed = false;
        domains = [||]; busy = Atomic.make 0 }
    in
    t.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker t service));
    t

  let busy t = Atomic.get t.busy

  let queue_depth t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n

  let submit t line =
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      None
    end
    else begin
      let ivar = Ivar.create () in
      Queue.push (Job (line, ivar)) t.q;
      Condition.signal t.c;
      Mutex.unlock t.m;
      Some ivar
    end

  (* Stop sentinels queue behind every already-submitted job, so closing
     drains in-flight work before the workers exit. *)
  let close t =
    Mutex.lock t.m;
    if not t.closed then begin
      t.closed <- true;
      Array.iter (fun _ -> Queue.push Stop t.q) t.domains;
      Condition.broadcast t.c
    end;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
end

type t = {
  service : Service.t;
  path : string;
  lsock : Unix.file_descr;
  pool : Pool.t;
  stopping : bool Atomic.t;
  conns : (Unix.file_descr, Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  mutable accept_t : Thread.t option;
}

let sock_path t = t.path
let stop t = Atomic.set t.stopping true

let frame_error msg =
  Json.to_string
    (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

let serve_conn t fd =
  (try
     let rec loop () =
       let line = Wire.read_frame fd in
       match Pool.submit t.pool line with
       | None -> Wire.write_frame fd (frame_error "server is shutting down")
       | Some ivar -> (
           let reply, next = Ivar.wait ivar in
           Wire.write_frame fd reply;
           match next with `Shutdown -> stop t | `Continue -> loop ())
     in
     loop ()
   with
  | Wire.Closed -> ()
  | Wire.Framing msg ->
      (* the stream cannot be resynchronized after a framing violation,
         so answer once and drop the connection *)
      F90d_obs.Log.warn "framing_error" [ ("reason", F90d_obs.Log.S msg) ];
      (try Wire.write_frame fd (frame_error ("framing error: " ^ msg)) with _ -> ())
  | _ -> ());
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns fd;
  Mutex.unlock t.conns_m;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.lsock ] [] [] 0.2 with
    | [ _ ], _, _ -> (
        match Unix.accept ~cloexec:true t.lsock with
        | fd, _ ->
            Mutex.lock t.conns_m;
            let th = Thread.create (fun () -> serve_conn t fd) () in
            Hashtbl.replace t.conns fd th;
            Mutex.unlock t.conns_m
        | exception Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  try Sys.remove t.path with Sys_error _ -> ()

let bind_sock path =
  if Sys.file_exists path then begin
    (* replace a dead socket file, refuse to shadow a live daemon *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith ("a daemon is already listening on " ^ path);
    try Sys.remove path with Sys_error _ -> ()
  end;
  let s = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind s (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close s with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen s 64;
  s

let default_workers () = min 4 (max 1 (Domain.recommended_domain_count () - 1))

let start ?workers ~service ~sock_path () =
  let workers = match workers with Some n -> max 1 n | None -> default_workers () in
  let lsock = bind_sock sock_path in
  let t =
    {
      service;
      path = sock_path;
      lsock;
      pool = Pool.create ~workers service;
      stopping = Atomic.make false;
      conns = Hashtbl.create 16;
      conns_m = Mutex.create ();
      accept_t = None;
    }
  in
  Service.set_pool service ~workers
    ~queue_depth:(fun () -> Pool.queue_depth t.pool)
    ~busy:(fun () -> Pool.busy t.pool);
  t.accept_t <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  (match t.accept_t with Some th -> Thread.join th | None -> ());
  t.accept_t <- None;
  Pool.close t.pool;
  (* Idle connections sit in read_frame; shutting down their read side
     turns that into a clean EOF.  In-flight replies already drained
     through the pool, and the write side stays open for them. *)
  Mutex.lock t.conns_m;
  let remaining = Hashtbl.fold (fun fd th acc -> (fd, th) :: acc) t.conns [] in
  Mutex.unlock t.conns_m;
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    remaining;
  List.iter (fun (_, th) -> Thread.join th) remaining
