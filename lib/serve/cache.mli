(** In-memory content-addressed compile caches (levels 1 and 2).

    Level 1 maps a source digest to the front half of the compiler
    (parse, analyze, lower — pass-flag independent); level 2 maps
    (source digest, pass flags) to the optimized program.  Both caches
    hold immutable values ({!F90d.Driver.front}/{!F90d.Driver.compiled}
    never change after construction), so a cached entry is handed out to
    concurrent domain workers without copying.  Lookup and insert take a
    mutex; compilation itself runs outside it, so a miss never blocks
    other workers (two racing misses both compile and idempotently
    store the same value). *)

type t

val create : unit -> t

val source_digest : string -> string
(** Hex MD5 of the source text — the content address. *)

val flags_fp : F90d_opt.Passes.flags -> string
(** Stable fingerprint of a flag set, e.g. ["su1fm1sr1hc1co1sp1la1"]. *)

type temp = Hit | Miss

val compile :
  t -> use:bool -> flags:F90d_opt.Passes.flags -> string -> F90d.Driver.compiled * temp * temp
(** [compile t ~use ~flags source] returns the optimized program and the
    (level-1, level-2) cache temperatures.  With [use = false] both
    levels are bypassed (and not populated): the request runs exactly
    like batch [f90dc].  Compilation diagnostics propagate as
    [F90d_base.Diag.Error] and are never cached. *)

val l1_hits : t -> int
val l1_misses : t -> int
val l2_hits : t -> int
val l2_misses : t -> int

val entries : t -> int * int
(** Current (level-1, level-2) entry counts. *)
