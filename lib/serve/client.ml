type t = { fd : Unix.file_descr }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let request_raw t payload =
  Wire.write_frame t.fd payload;
  Wire.read_frame t.fd

let request t json = Json.parse (request_raw t (Json.to_string json))
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let with_conn path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
