(** The [f90dc --serve] daemon: a Unix-domain socket accept loop feeding
    a fixed pool of domain workers.

    Threads do the blocking I/O (one per connection, cheap under the
    runtime lock); the {!Service} dispatch — compilation and simulated
    execution — runs on the worker domains, so concurrent requests
    genuinely run in parallel.  Connection failures are strictly
    per-connection: a framing violation gets an error frame and that
    connection closed, a request that times out or fails replies
    ["ok": false], and none of it disturbs other in-flight requests.

    Shutdown (a [shutdown] request, or {!stop}) is graceful: the
    listener closes, queued requests drain through the workers, idle
    connections are released, and {!wait} returns with every thread and
    domain joined and the socket path unlinked. *)

type t

val start : ?workers:int -> service:Service.t -> sock_path:string -> unit -> t
(** Bind [sock_path] (an existing dead socket file is replaced), start
    the worker domains and the accept thread, and return immediately.
    [workers] defaults to a small pool sized from
    [Domain.recommended_domain_count].
    @raise Failure if a live daemon already listens on [sock_path]. *)

val sock_path : t -> string
val stop : t -> unit
(** Request shutdown; returns immediately ({!wait} observes it). *)

val wait : t -> unit
(** Block until shutdown is requested, then drain and join everything. *)
