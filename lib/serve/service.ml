exception Timed_out of float
exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

module Log = F90d_obs.Log

type t = {
  cache : Cache.t;
  store : Store.t option;
  timeout : float;  (* default per-request limit in seconds; 0. = unlimited *)
  slow : float;  (* requests slower than this log a warn record; 0. = never *)
  workers : int;
  started : float;
  tel : Telemetry.t;
}

let ops = [ "compile"; "run"; "trace"; "explain"; "profile"; "stats"; "metrics"; "shutdown" ]

let create ?cache ?store ?registry ?(timeout = 0.) ?(slow = 10.) ?(workers = 1) () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let started = Unix.gettimeofday () in
  let tel = Telemetry.create ?registry ~cache ?store ~started ~ops () in
  { cache; store; timeout; slow; workers; started; tel }

let store t = t.store
let cache t = t.cache
let telemetry t = t.tel

let set_pool t ~workers ~queue_depth ~busy =
  Telemetry.set_pool t.tel ~workers ~queue_depth ~busy

(* ------------------------------------------------------------------ *)
(* Request field access                                                *)
(* ------------------------------------------------------------------ *)

let field_str req name =
  match Json.mem req name with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.str v with
      | Some s -> Some s
      | None -> bad "field %S must be a string" name)

let field_int req name ~default =
  match Json.mem req name with
  | None | Some Json.Null -> default
  | Some v -> (
      match Json.int v with
      | Some n -> n
      | None -> bad "field %S must be an integer" name)

let field_bool req name ~default =
  match Json.mem req name with
  | None | Some Json.Null -> default
  | Some v -> (
      match Json.bool v with
      | Some b -> b
      | None -> bad "field %S must be a boolean" name)

let field_float req name =
  match Json.mem req name with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.float v with
      | Some x -> Some x
      | None -> bad "field %S must be a number" name)

let field_strs req name =
  match Json.mem req name with
  | None | Some Json.Null -> []
  | Some v -> (
      match Json.list v with
      | Some items ->
          List.map
            (fun item ->
              match Json.str item with
              | Some s -> s
              | None -> bad "field %S must be a list of strings" name)
            items
      | None -> bad "field %S must be a list of strings" name)

(* ------------------------------------------------------------------ *)
(* Shared CLI/daemon vocabulary                                        *)
(* ------------------------------------------------------------------ *)

let demo_source name ~nprocs ~n =
  let n = max 4 n in
  match String.lowercase_ascii name with
  | "gauss" -> F90d.Programs.gauss ~n
  | "gauss-cyclic" -> F90d.Programs.gauss_dist ~dist:`Cyclic ~n
  | "jacobi" -> F90d.Programs.jacobi ~n ~iters:10
  | "jacobi2d" ->
      let rec split p q = if p <= q then (p, q) else split (p / 2) (q * 2) in
      let p, q = split nprocs 1 in
      F90d.Programs.jacobi2d ~n:30 ~iters:5 ~p ~q
  | "irregular" -> F90d.Programs.irregular ~n
  | "fft" -> F90d.Programs.fft_butterfly ~n
  | other -> raise (Invalid_argument ("unknown demo program: " ^ other))

let model_of_name = function
  | "ipsc860" -> F90d_machine.Model.ipsc860
  | "ncube2" -> F90d_machine.Model.ncube2
  | "ideal" -> F90d_machine.Model.ideal
  | other -> raise (Invalid_argument ("unknown machine model: " ^ other))

let flags_of_names ~no_opt names =
  let base = if no_opt then F90d_opt.Passes.all_off else F90d_opt.Passes.all_on in
  List.fold_left
    (fun (f : F90d_opt.Passes.flags) name ->
      match name with
      | "shift-union" -> { f with F90d_opt.Passes.shift_union = false }
      | "fuse-mshift" -> { f with F90d_opt.Passes.fuse_mshift = false }
      | "schedule-reuse" -> { f with F90d_opt.Passes.schedule_reuse = false }
      | "hoist-comm" -> { f with F90d_opt.Passes.hoist_comm = false }
      | "coalesce" -> { f with F90d_opt.Passes.coalesce = false }
      | "split-comm" -> { f with F90d_opt.Passes.split_comm = false }
      | "lookahead" -> { f with F90d_opt.Passes.lookahead = false }
      | "blocked-kernels" -> { f with F90d_opt.Passes.blocked_kernels = false }
      | other -> raise (Invalid_argument ("unknown optimization pass: " ^ other)))
    base names

let source_of req ~nprocs =
  match (field_str req "source", field_str req "demo") with
  | Some s, _ -> s
  | None, Some d -> demo_source d ~nprocs ~n:(field_int req "demo_n" ~default:64)
  | None, None -> bad "request needs a \"source\" or \"demo\" field"

let request_flags req =
  flags_of_names
    ~no_opt:(field_bool req "no_opt" ~default:false)
    (field_strs req "fno")

(* ------------------------------------------------------------------ *)
(* Response building                                                   *)
(* ------------------------------------------------------------------ *)

let temp_str ~on = function
  | _ when not on -> "off"
  | Cache.Hit -> "hit"
  | Cache.Miss -> "miss"

(* Re-parse a report/trace document so the response is one JSON value
   instead of JSON-in-a-string; fall back to the raw text if the
   document is not strictly parseable. *)
let embed_doc s = match Json.parse s with j -> j | exception _ -> Json.Str s

let array_json (arr : F90d_base.Ndarray.t) =
  let ints a = Json.List (List.map (fun n -> Json.Int n) (Array.to_list a)) in
  let kind, data =
    match arr.F90d_base.Ndarray.data with
    | F90d_base.Ndarray.Reals a ->
        ("real", Json.List (List.map (fun x -> Json.Float x) (Array.to_list a)))
    | F90d_base.Ndarray.Ints a -> ("integer", ints a)
    | F90d_base.Ndarray.Logs a ->
        ("logical", Json.List (List.map (fun b -> Json.Bool b) (Array.to_list a)))
  in
  Json.Obj
    [
      ("kind", Json.Str kind);
      ("lb", ints arr.F90d_base.Ndarray.lb);
      ("extents", ints arr.F90d_base.Ndarray.extents);
      ("data", data);
    ]

let scalar_json = function
  | F90d_base.Scalar.Int n -> Json.Int n
  | F90d_base.Scalar.Real x -> Json.Float x
  | F90d_base.Scalar.Log b -> Json.Bool b
  | F90d_base.Scalar.Str s -> Json.Str s

let finals_fields (outcome : F90d_exec.Interp.outcome) =
  let fin =
    Json.Obj
      [
        ( "arrays",
          Json.Obj (List.map (fun (n, a) -> (n, array_json a)) outcome.F90d_exec.Interp.finals)
        );
        ( "scalars",
          Json.Obj
            (List.map (fun (n, s) -> (n, scalar_json s)) outcome.F90d_exec.Interp.final_scalars)
        );
      ]
  in
  [
    ("finals", fin);
    ("finals_digest", Json.Str (Digest.to_hex (Digest.string (Json.to_string fin))));
  ]

let err ?(extra = []) op fmt =
  Printf.ksprintf
    (fun msg ->
      Json.Obj ([ ("ok", Json.Bool false); ("op", Json.Str op); ("error", Json.Str msg) ] @ extra))
    fmt

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let compile_common t req =
  let nprocs = max 1 (field_int req "nprocs" ~default:4) in
  let source = source_of req ~nprocs in
  let flags = request_flags req in
  let use = field_bool req "cache" ~default:true in
  let compiled, l1, l2 = Cache.compile t.cache ~use ~flags source in
  (nprocs, source, flags, use, compiled, l1, l2)

let compile_head ~op ~source ~flags ~use ~l1 ~l2 ?(l3 = None) () =
  [
    ("ok", Json.Bool true);
    ("op", Json.Str op);
    ("source_digest", Json.Str (Cache.source_digest source));
    ("pass_flags", Json.Str (Cache.flags_fp flags));
    ( "cache",
      Json.Obj
        ([
           ("l1", Json.Str (temp_str ~on:use l1));
           ("l2", Json.Str (temp_str ~on:use l2));
         ]
        @ match l3 with None -> [] | Some s -> [ ("l3", Json.Str s) ]) );
  ]

let compile_op t req =
  let _, source, flags, use, compiled, l1, l2 = compile_common t req in
  let head = compile_head ~op:"compile" ~source ~flags ~use ~l1 ~l2 () in
  let extra =
    if field_bool req "emit" ~default:false then
      [ ("f77", Json.Str (F90d_ir.Emit_f77.emit_program compiled.F90d.Driver.c_ir)) ]
    else []
  in
  Json.Obj (head @ extra)

let explain_op t req =
  let _, source, flags, use, compiled, l1, l2 = compile_common t req in
  let head = compile_head ~op:"explain" ~source ~flags ~use ~l1 ~l2 () in
  Json.Obj
    (head
    @ [ ("explain", embed_doc (F90d_report.Report.explain_json compiled.F90d.Driver.c_ir)) ])

let sched_key ~source ~flags ~nprocs =
  Digest.to_hex
    (Digest.string
       (String.concat ":"
          [ Cache.source_digest source; Cache.flags_fp flags; string_of_int nprocs ]))

type sched_io = {
  sio_preload : (int -> (string * string) list) option;
  sio_collect : (int -> (string * string) list -> unit) option;
  sio_commit : unit -> unit;
  sio_temp : string;  (* "hit" | "miss" | "off" *)
}

let sched_io store ~use ~source ~flags ~nprocs =
  let off = { sio_preload = None; sio_collect = None; sio_commit = ignore; sio_temp = "off" } in
  match store with
  | Some st when use -> (
      let key = sched_key ~source ~flags ~nprocs in
      match Store.load st ~key with
      | Some ranks when Array.length ranks = nprocs ->
          {
            sio_preload = Some (fun r -> ranks.(r));
            sio_collect = None;
            sio_commit = ignore;
            sio_temp = "hit";
          }
      | _ ->
          let slots = Array.make nprocs [] in
          {
            sio_preload = None;
            sio_collect = Some (fun rank entries -> slots.(rank) <- entries);
            sio_commit = (fun () -> Store.save st ~key slots);
            sio_temp = "miss";
          })
  | _ -> off

let run_like t req ~op =
  let nprocs, source, flags, use, compiled, l1, l2 = compile_common t req in
  let jobs = max 1 (field_int req "jobs" ~default:1) in
  let machine = Option.value (field_str req "machine") ~default:"ipsc860" in
  let model = model_of_name machine in
  let show_finals = field_bool req "finals" ~default:false in
  let tracing = op <> "run" in
  let topology =
    if F90d_base.Util.is_pow2 nprocs then F90d_machine.Topology.Hypercube
    else F90d_machine.Topology.Full
  in
  let sio = sched_io t.store ~use ~source ~flags ~nprocs in
  let timeout = Option.value (field_float req "timeout_s") ~default:t.timeout in
  let poll =
    if timeout > 0. then begin
      let deadline = Unix.gettimeofday () +. timeout in
      Some (fun () -> if Unix.gettimeofday () > deadline then raise (Timed_out timeout))
    end
    else None
  in
  let t0 = Unix.gettimeofday () in
  let result =
    F90d.Driver.run ~collect_finals:show_finals ~model ~topology ~jobs ~trace:tracing ?poll
      ?sched_preload:sio.sio_preload ?sched_collect:sio.sio_collect ~nprocs compiled
  in
  let host_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  sio.sio_commit ();
  let stats = result.F90d.Driver.stats in
  Telemetry.observe_run t.tel ~elapsed:result.F90d.Driver.elapsed stats;
  let head = compile_head ~op ~source ~flags ~use ~l1 ~l2 ~l3:(Some sio.sio_temp) () in
  let body =
    [
      ("nprocs", Json.Int nprocs);
      ("jobs", Json.Int jobs);
      ("machine", Json.Str machine);
      ("elapsed_s", Json.Float result.F90d.Driver.elapsed);
      ("messages", Json.Int stats.F90d_machine.Stats.messages);
      ("bytes", Json.Int stats.F90d_machine.Stats.bytes);
      ("recv_wait_s", Json.Float stats.F90d_machine.Stats.recv_wait);
      ("recv_wait_hidden_s", Json.Float stats.F90d_machine.Stats.recv_wait_hidden);
      ("sched_builds", Json.Int stats.F90d_machine.Stats.sched_builds);
      ("sched_hits", Json.Int stats.F90d_machine.Stats.sched_hits);
      ("output", Json.Str result.F90d.Driver.outcome.F90d_exec.Interp.output);
    ]
  in
  let specific =
    match (op, result.F90d.Driver.trace) with
    | "trace", Some tr ->
        [
          ("trace_events", Json.Int (F90d_trace.Trace.total_events tr));
          ("trace", embed_doc (F90d_trace.Trace.to_chrome_json tr));
        ]
    | "profile", Some tr ->
        [
          ( "profile",
            embed_doc (F90d_report.Report.profile_json compiled.F90d.Driver.c_ir tr) );
        ]
    | _ -> []
  in
  let fin = if show_finals then finals_fields result.F90d.Driver.outcome else [] in
  Json.Obj (head @ body @ specific @ fin @ [ ("host_ms", Json.Float host_ms) ])

let stats_op t =
  let cache_fields =
    let l1e, l2e = Cache.entries t.cache in
    [
      ("l1_hits", Json.Int (Cache.l1_hits t.cache));
      ("l1_misses", Json.Int (Cache.l1_misses t.cache));
      ("l2_hits", Json.Int (Cache.l2_hits t.cache));
      ("l2_misses", Json.Int (Cache.l2_misses t.cache));
      ("l1_entries", Json.Int l1e);
      ("l2_entries", Json.Int l2e);
      ( "store",
        match t.store with
        | None -> Json.Null
        | Some st ->
            Json.Obj
              [
                ("dir", Json.Str (Store.dir st));
                ("hits", Json.Int (Store.hits st));
                ("misses", Json.Int (Store.misses st));
                ("corrupt", Json.Int (Store.corrupt st));
              ] );
    ]
  in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "stats");
      ("version", Json.Str F90d_base.Util.package_version);
      ("cache_version", Json.Int F90d_base.Util.cache_version);
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("workers", Json.Int t.workers);
      (* thin integer views over the metrics registry — the [metrics] op
         exposes the same counters in exposition format *)
      ("requests", Json.Int (Telemetry.requests_total t.tel));
      ("errors", Json.Int (Telemetry.errors_total t.tel));
      ("timeouts", Json.Int (Telemetry.timeouts_total t.tel));
      ("in_flight", Json.Int (Telemetry.in_flight t.tel));
      ( "by_op",
        Json.Obj
          (List.map (fun (op, n) -> (op, Json.Int n)) (Telemetry.requests_by_op t.tel)) );
      ("cache", Json.Obj cache_fields);
    ]

let metrics_op t =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "metrics");
      ("format", Json.Str "prometheus-text-0.0.4");
      ("body", Json.Str (Telemetry.render t.tel));
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let dispatch t req ~op =
  try
    match op with
    | "compile" -> compile_op t req
    | "run" | "trace" | "profile" -> run_like t req ~op
    | "explain" -> explain_op t req
    | "stats" -> stats_op t
    | "metrics" -> metrics_op t
    | "shutdown" ->
        Json.Obj
          [ ("ok", Json.Bool true); ("op", Json.Str "shutdown"); ("stopping", Json.Bool true) ]
    | "" ->
        Telemetry.count_error t.tel;
        err op "request needs a string \"op\" field"
    | other ->
        Telemetry.count_error t.tel;
        err op "unknown op %S (expected one of %s)" other (String.concat ", " ops)
  with
  | Timed_out limit ->
      Telemetry.count_error t.tel;
      Telemetry.count_timeout t.tel;
      err op "request exceeded its %gs wall-clock limit" limit
        ~extra:[ ("timeout", Json.Bool true); ("timeout_s", Json.Float limit) ]
  | Bad_request msg ->
      Telemetry.count_error t.tel;
      err op "%s" msg
  | F90d_base.Diag.Error (loc, msg) ->
      Telemetry.count_error t.tel;
      err op "%s" (Format.asprintf "%a: %s" F90d_base.Loc.pp loc msg)
  | Invalid_argument msg ->
      Telemetry.count_error t.tel;
      err op "%s" msg
  | e ->
      Telemetry.count_error t.tel;
      err op "internal error: %s" (Printexc.to_string e)

let response_ok = function
  | Json.Obj fields -> (
      match List.assoc_opt "ok" fields with Some (Json.Bool b) -> b | _ -> false)
  | _ -> false

let handle t req =
  let op =
    match Json.mem req "op" with
    | Some v -> Option.value (Json.str v) ~default:""
    | None -> ""
  in
  let label = if List.mem op ops then op else "other" in
  Telemetry.count_request t.tel op;
  Telemetry.in_flight_add t.tel 1.;
  let rid = Log.next_request_id () in
  Log.debug "request" [ ("id", Log.S rid); ("op", Log.S op) ];
  let t0 = Unix.gettimeofday () in
  let resp =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.in_flight_add t.tel (-1.);
        Telemetry.observe_duration t.tel label (Unix.gettimeofday () -. t0))
      (fun () -> dispatch t req ~op)
  in
  let dt = Unix.gettimeofday () -. t0 in
  if t.slow > 0. && dt >= t.slow then
    Log.warn "slow_request"
      [
        ("id", Log.S rid);
        ("op", Log.S op);
        ("elapsed_s", Log.F dt);
        ("threshold_s", Log.F t.slow);
      ];
  Log.info "request_done"
    [
      ("id", Log.S rid);
      ("op", Log.S op);
      ("ok", Log.B (response_ok resp));
      ("elapsed_s", Log.F dt);
    ];
  resp

let handle_line t line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
      Telemetry.count_request t.tel "";
      Telemetry.count_error t.tel;
      Log.warn "bad_frame" [ ("reason", Log.S msg) ];
      (Json.to_string (err "" "malformed request: %s" msg), `Continue)
  | req ->
      let resp = handle t req in
      let next =
        match Json.mem req "op" with
        | Some v when Json.str v = Some "shutdown" -> `Shutdown
        | _ -> `Continue
      in
      (Json.to_string resp, next)

let strip_volatile = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "host_ms") fields)
  | j -> j
