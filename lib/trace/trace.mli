(** Communication tracing: per-processor event streams on the virtual
    clock.

    Each simulated processor owns a private {!handle} — a ring of events
    written only by that processor's fiber (so the domain-parallel engine
    records without locks) — threaded through [Engine.ctx] alongside the
    [Stats.rank] collector.  Because recording is rank-private and the
    simulation is deterministic, the merged event streams are
    byte-identical between the sequential and domain-parallel engines.

    Recording through a [disabled] handle is a no-op: no allocation, no
    event, no change to any statistic, so tracing is zero-cost when off.

    Events:
    - sends and receives carry peer, tag, bytes and arrival time —
      enough to rebuild the message DAG (channels are exact-match
      (src, tag) FIFOs, so the k-th receive on a channel pairs with the
      k-th send);
    - named spans ([span_begin]/[span_end]) cover collective primitives,
      inspector/executor phases and compute statements, and may nest;
    - marks are instants (schedule-cache build/hit).

    Every event also carries the statement id ([sid]) of the IR
    statement executing when it was recorded — the interpreter stamps
    the current sid with {!set_stmt} before each statement, so every
    message resolves back to a source [file:line] through the program's
    provenance table.  [sid = 0] means "<runtime>" (outside any
    statement). *)

type kind =
  | Send of {
      dest : int;
      tag : int;
      bytes : int;
      arrival : float;
      sid : int;
      parts : (int * int) array;
      relay : bool;
    }
      (** [parts] is non-empty only for coalesced batch sends: (member
          sid, member bytes) in packing order, summing to [bytes].
          [relay] marks a message-system forward of just-arrived data
          (split-phase broadcast): its [t0]/[t1] lie on the relay
          timeline, not the CPU's, so relays must be excluded when
          reconciling per-rank CPU time. *)
  | Recv of { src : int; tag : int; arrival : float; sid : int; posted : float }
      (** [t1 > t0] iff the receiver blocked ([t1] = arrival).  [posted]
          is when the receive was issued — [t0] for a blocking receive,
          earlier for the wait half of a split-phase receive; the latency
          hidden by the split is [max 0 (arrival - posted) - (t1 - t0)]. *)
  | Span of { name : string; cat : string; bytes : int; sid : int }
      (** [sid] is captured at [span_begin] time. *)
  | Mark of { name : string; cat : string; sid : int }

type event = { t0 : float; t1 : float; kind : kind }

(** {2 Per-processor recording} *)

type handle
(** A processor's recorder, or the shared no-op [disabled] handle. *)

val disabled : handle
val rank_create : me:int -> handle
val enabled : handle -> bool
(** Guard for call sites that would otherwise build event names
    eagerly. *)

val set_stmt : handle -> sid:int -> unit
(** Set the current statement id; subsequent events are stamped with it
    until the next call.  No-op on [disabled]. *)

val current_sid : handle -> int
(** The sid last set with {!set_stmt} (0 initially or on [disabled]). *)

val send :
  ?parts:(int * int) array ->
  ?relay:bool ->
  handle ->
  t0:float ->
  t1:float ->
  dest:int ->
  tag:int ->
  bytes:int ->
  arrival:float ->
  unit

val recv :
  ?posted:float -> handle -> t0:float -> t1:float -> src:int -> tag:int -> arrival:float -> unit
(** [posted] defaults to [t0] (blocking receive). *)

val computed : handle -> float -> unit
(** Accumulate charged local-computation seconds (not an event). *)

val span_begin : handle -> t:float -> string -> cat:string -> unit
val span_end : ?bytes:int -> handle -> t:float -> unit
(** Spans nest; [span_end] closes the innermost open span. *)

val mark : handle -> t:float -> string -> cat:string -> unit

(** {2 Merged trace} *)

type t

val merge : clocks:float array -> handle array -> t
(** Collect per-processor streams (indexed by physical rank) and the
    final virtual clocks into a read-only trace. *)

val events : t -> rank:int -> event array
val nprocs : t -> int
val clocks : t -> float array
val compute_time : t -> rank:int -> float
val total_events : t -> int

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON (load via chrome://tracing or Perfetto):
    one pid per processor, spans as "X" complete events, marks as "i"
    instants, timestamps in virtual microseconds.  Output is
    byte-deterministic for a given trace. *)
