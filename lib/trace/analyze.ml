open F90d_base

(* ------------------------------------------------------------------ *)
(* Per-tag / per-primitive profile (the paper's Table-4 shape)         *)
(* ------------------------------------------------------------------ *)

type prow = {
  p_tag : int;
  p_msgs : int;
  p_bytes : int;
  p_send_s : float;  (* sender busy time: alpha + bytes*beta, summed *)
  p_wait_s : float;  (* receiver blocked time *)
  p_hidden_s : float;  (* latency overlapped by split-phase receives *)
}

(* Latency a split-phase receive overlapped with computation: the wire
   time since the receive was posted, minus whatever wait was still
   charged.  Zero for blocking receives (posted = t0 >= send time never
   holds spare overlap) and never negative. *)
let hidden_of ~arrival ~posted ~t0 ~t1 =
  Float.max 0. (Float.max 0. (arrival -. posted) -. (t1 -. t0))

let per_tag_profile tr =
  let acc = Hashtbl.create 16 in
  let get tag =
    match Hashtbl.find_opt acc tag with
    | Some r -> r
    | None ->
        let r =
          ref { p_tag = tag; p_msgs = 0; p_bytes = 0; p_send_s = 0.; p_wait_s = 0.; p_hidden_s = 0. }
        in
        Hashtbl.add acc tag r;
        r
  in
  for rank = 0 to Trace.nprocs tr - 1 do
    Array.iter
      (fun (ev : Trace.event) ->
        match ev.Trace.kind with
        | Trace.Send { tag; bytes; _ } ->
            let r = get tag in
            r :=
              {
                !r with
                p_msgs = !r.p_msgs + 1;
                p_bytes = !r.p_bytes + bytes;
                p_send_s = !r.p_send_s +. (ev.Trace.t1 -. ev.Trace.t0);
              }
        | Trace.Recv { tag; arrival; posted; _ } ->
            let r = get tag in
            r :=
              {
                !r with
                p_wait_s = !r.p_wait_s +. (ev.Trace.t1 -. ev.Trace.t0);
                p_hidden_s =
                  !r.p_hidden_s +. hidden_of ~arrival ~posted ~t0:ev.Trace.t0 ~t1:ev.Trace.t1;
              }
        | _ -> ())
      (Trace.events tr ~rank)
  done;
  Hashtbl.fold (fun _ r rows -> !r :: rows) acc []
  |> List.sort (fun a b -> compare a.p_tag b.p_tag)

(* Tag families are namespaced by hundreds, matching Stats.breakdown. *)
let tag_family tag = tag / 100 * 100

(* ------------------------------------------------------------------ *)
(* Per-statement profile (joined with Ir provenance by the reporter)   *)
(* ------------------------------------------------------------------ *)

type srow = {
  s_sid : int;
  s_msgs : int;
  s_bytes : int;
  s_send_s : float;
  s_wait_s : float;
  s_hidden_s : float;  (* latency overlapped by this statement's split receives *)
  s_cp_s : float;  (* critical-path wire time caused by this statement's sends *)
}

(* Send/recv accumulation per sid; the public [per_stmt_profile] adds
   the critical-path share (needs [critical_path], defined below). *)
let stmt_rows tr =
  let acc = Hashtbl.create 16 in
  let get sid =
    match Hashtbl.find_opt acc sid with
    | Some r -> r
    | None ->
        let r =
          ref
            {
              s_sid = sid;
              s_msgs = 0;
              s_bytes = 0;
              s_send_s = 0.;
              s_wait_s = 0.;
              s_hidden_s = 0.;
              s_cp_s = 0.;
            }
        in
        Hashtbl.add acc sid r;
        r
  in
  for rank = 0 to Trace.nprocs tr - 1 do
    Array.iter
      (fun (ev : Trace.event) ->
        match ev.Trace.kind with
        | Trace.Send { bytes; sid; parts; _ } ->
            (* A coalesced batch is one physical message (counted, with
               its latency, on the statement that hosts the batch) whose
               bytes split back to the member statements; member bytes
               sum to [bytes], so totals still reconcile with Stats. *)
            let r = get sid in
            r :=
              {
                !r with
                s_msgs = !r.s_msgs + 1;
                s_bytes = (!r.s_bytes + if Array.length parts = 0 then bytes else 0);
                s_send_s = !r.s_send_s +. (ev.Trace.t1 -. ev.Trace.t0);
              };
            Array.iter
              (fun (psid, pbytes) ->
                let r = get psid in
                r := { !r with s_bytes = !r.s_bytes + pbytes })
              parts
        | Trace.Recv { sid; arrival; posted; _ } ->
            let r = get sid in
            r :=
              {
                !r with
                s_wait_s = !r.s_wait_s +. (ev.Trace.t1 -. ev.Trace.t0);
                s_hidden_s =
                  !r.s_hidden_s +. hidden_of ~arrival ~posted ~t0:ev.Trace.t0 ~t1:ev.Trace.t1;
              }
        | _ -> ())
      (Trace.events tr ~rank)
  done;
  acc

let breakdown tr ~name_of =
  let fams = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let f = tag_family r.p_tag in
      let m, b, s, w, h =
        Option.value (Hashtbl.find_opt fams f) ~default:(0, 0, 0., 0., 0.)
      in
      Hashtbl.replace fams f
        (m + r.p_msgs, b + r.p_bytes, s +. r.p_send_s, w +. r.p_wait_s, h +. r.p_hidden_s))
    (per_tag_profile tr);
  Hashtbl.fold (fun f (m, b, s, w, h) acc -> (name_of f, m, b, s, w, h) :: acc) fams []
  |> List.sort (fun (_, m1, _, _, _, _) (_, m2, _, _, _, _) -> compare m2 m1)

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

(* The elapsed time of a run is the final clock of its slowest
   processor.  Walking backwards from there: the clock of a processor at
   time t was last bound either by local work since t = 0 (no receive
   ever blocked it) or by the latest blocking receive completing at
   t' <= t — the interval [t', t] is locally-charged work, the receive's
   arrival chains to the matching send on the source processor
   (exact-match FIFO channels pair the k-th receive with the k-th send),
   and the interval [send completion, arrival] is wire time.  Segments
   tile [0, elapsed] exactly, so their durations sum to the elapsed
   time: the chain *is* what determines report.elapsed. *)

type seg_kind = Local | Wire of { src : int; tag : int; bytes : int; sid : int }
type segment = { sg_rank : int; sg_t0 : float; sg_t1 : float; sg_kind : seg_kind }

let critical_path tr =
  let n = Trace.nprocs tr in
  (* per-channel send events, in send order *)
  let sends : (int * int * int, Trace.event array) Hashtbl.t = Hashtbl.create 64 in
  for src = 0 to n - 1 do
    let per_chan = Hashtbl.create 16 in
    Array.iter
      (fun (ev : Trace.event) ->
        match ev.Trace.kind with
        | Trace.Send { dest; tag; _ } ->
            let key = (src, dest, tag) in
            Hashtbl.replace per_chan key
              (ev :: Option.value (Hashtbl.find_opt per_chan key) ~default:[])
        | _ -> ())
      (Trace.events tr ~rank:src);
    Hashtbl.iter (fun key l -> Hashtbl.replace sends key (Array.of_list (List.rev l))) per_chan
  done;
  (* per-rank blocking receives, in event order, each with its channel
     occurrence index (counted over every receive on that channel) *)
  let blocked =
    Array.init n (fun rank ->
        let count = Hashtbl.create 16 in
        let out = ref [] in
        Array.iter
          (fun (ev : Trace.event) ->
            match ev.Trace.kind with
            | Trace.Recv { src; tag; _ } ->
                let k = Option.value (Hashtbl.find_opt count (src, tag)) ~default:0 in
                Hashtbl.replace count (src, tag) (k + 1);
                if ev.Trace.t1 > ev.Trace.t0 then out := (ev, src, tag, k) :: !out
            | _ -> ())
          (Trace.events tr ~rank);
        Array.of_list (List.rev !out))
  in
  let cursor = Array.map (fun a -> Array.length a - 1) blocked in
  let clocks = Trace.clocks tr in
  let rstar = ref 0 in
  Array.iteri (fun r c -> if c > clocks.(!rstar) then rstar := r) clocks;
  let segs = ref [] in
  let rank = ref !rstar and t = ref (if n > 0 then clocks.(!rstar) else 0.) in
  let running = ref (n > 0) in
  while !running do
    (* latest blocking receive on [!rank] completing at or before [!t];
       receive completion times are monotone in event order, and
       successive visits to a rank carry decreasing [!t], so a per-rank
       cursor keeps the whole walk linear in the number of events *)
    let i = ref cursor.(!rank) in
    while !i >= 0 && (let ev, _, _, _ = blocked.(!rank).(!i) in ev.Trace.t1 > !t) do
      decr i
    done;
    if !i < 0 then begin
      cursor.(!rank) <- -1;
      segs := { sg_rank = !rank; sg_t0 = 0.; sg_t1 = !t; sg_kind = Local } :: !segs;
      running := false
    end
    else begin
      let ev, src, tag, k = blocked.(!rank).(!i) in
      cursor.(!rank) <- !i - 1;
      segs := { sg_rank = !rank; sg_t0 = ev.Trace.t1; sg_t1 = !t; sg_kind = Local } :: !segs;
      let snd_ev =
        match Hashtbl.find_opt sends (src, !rank, tag) with
        | Some arr when k < Array.length arr -> arr.(k)
        | _ -> Diag.bug "trace: receive (src=%d,tag=%d) has no matching send" src tag
      in
      let bytes, snd_sid =
        match snd_ev.Trace.kind with
        | Trace.Send { bytes; sid; _ } -> (bytes, sid)
        | _ -> assert false
      in
      segs :=
        { sg_rank = !rank; sg_t0 = snd_ev.Trace.t1; sg_t1 = ev.Trace.t1;
          sg_kind = Wire { src; tag; bytes; sid = snd_sid } }
        :: !segs;
      rank := src;
      t := snd_ev.Trace.t1
    end
  done;
  !segs (* chronological: the walk pushed latest-first *)

let total segs = List.fold_left (fun acc s -> acc +. (s.sg_t1 -. s.sg_t0)) 0. segs

(* One row per statement id: send/recv totals plus this statement's wire
   time on the critical path.  Totals across rows equal the run's
   [Stats] message/byte/wait totals — every send and receive carries
   exactly one sid. *)
let per_stmt_profile tr =
  let acc = stmt_rows tr in
  List.iter
    (fun sg ->
      match sg.sg_kind with
      | Wire { sid; _ } -> (
          match Hashtbl.find_opt acc sid with
          | Some r -> r := { !r with s_cp_s = !r.s_cp_s +. (sg.sg_t1 -. sg.sg_t0) }
          | None -> ())
      | Local -> ())
    (critical_path tr);
  Hashtbl.fold (fun _ r rows -> !r :: rows) acc []
  |> List.sort (fun a b -> compare a.s_sid b.s_sid)

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let render_profile tr ~name_of =
  let b = Buffer.create 4096 in
  Printf.bprintf b "communication profile (%d processors, %d events)\n" (Trace.nprocs tr)
    (Trace.total_events tr);
  Printf.bprintf b "%-26s %10s %14s %14s %14s %14s\n" "primitive (tag family)" "messages"
    "bytes" "send busy (s)" "recv wait (s)" "hidden (s)";
  List.iter
    (fun (name, m, by, s, w, h) ->
      Printf.bprintf b "%-26s %10d %14d %14.6f %14.6f %14.6f\n" name m by s w h)
    (breakdown tr ~name_of);
  Printf.bprintf b "\nper-tag detail:\n";
  Printf.bprintf b "%8s %10s %14s %14s %14s %14s\n" "tag" "messages" "bytes" "send busy (s)"
    "recv wait (s)" "hidden (s)";
  List.iter
    (fun r ->
      Printf.bprintf b "%8d %10d %14d %14.6f %14.6f %14.6f\n" r.p_tag r.p_msgs r.p_bytes
        r.p_send_s r.p_wait_s r.p_hidden_s)
    (per_tag_profile tr);
  Printf.bprintf b "\nper-rank compute (charged) vs final clock:\n";
  let clocks = Trace.clocks tr in
  for rank = 0 to Trace.nprocs tr - 1 do
    Printf.bprintf b "  p%-3d compute %12.6f s   clock %12.6f s\n" rank
      (Trace.compute_time tr ~rank) clocks.(rank)
  done;
  let cp = critical_path tr in
  let local = List.filter (fun s -> s.sg_kind = Local) cp in
  let wire = List.filter (fun s -> s.sg_kind <> Local) cp in
  let sum = List.fold_left (fun acc s -> acc +. (s.sg_t1 -. s.sg_t0)) 0. in
  Printf.bprintf b
    "\ncritical path: %.6f s over %d segments (%d local = %.6f s, %d wire = %.6f s)\n"
    (total cp) (List.length cp) (List.length local) (sum local) (List.length wire) (sum wire);
  List.iter
    (fun s ->
      match s.sg_kind with
      | Local ->
          Printf.bprintf b "  p%-3d %12.6f .. %12.6f  local %12.6f s\n" s.sg_rank s.sg_t0
            s.sg_t1 (s.sg_t1 -. s.sg_t0)
      | Wire { src; tag; bytes; sid } ->
          Printf.bprintf b
            "  p%-3d %12.6f .. %12.6f  wire  %12.6f s (from p%d, tag %d, %d bytes, stmt %d)\n"
            s.sg_rank s.sg_t0 s.sg_t1 (s.sg_t1 -. s.sg_t0) src tag bytes sid)
    cp;
  Buffer.contents b
