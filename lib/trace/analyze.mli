(** Analyses over a merged {!Trace.t}: a per-primitive communication
    profile (the shape of the paper's Table 4) and the critical path
    through the message DAG that determines the run's elapsed time. *)

(** {2 Per-tag / per-primitive profile} *)

type prow = {
  p_tag : int;
  p_msgs : int;
  p_bytes : int;
  p_send_s : float;  (** sender busy time ([alpha + bytes*beta], summed) *)
  p_wait_s : float;  (** receiver blocked time *)
  p_hidden_s : float;
      (** latency overlapped by split-phase receives: wire time since the
          receive was posted minus the wait still charged, clamped at 0;
          always 0 for blocking receives *)
}

val per_tag_profile : Trace.t -> prow list
(** One row per message tag, sorted by tag.  Message and byte totals
    equal [Stats.per_tag] of the same run. *)

val breakdown :
  Trace.t -> name_of:(int -> string) -> (string * int * int * float * float * float) list
(** [(family name, messages, bytes, send busy s, recv wait s, hidden s)]
    per tag family (hundreds, matching [Stats.breakdown]), most messages
    first. *)

(** {2 Per-statement profile} *)

type srow = {
  s_sid : int;  (** statement id stamped by the interpreter; 0 = <runtime> *)
  s_msgs : int;
  s_bytes : int;
  s_send_s : float;
  s_wait_s : float;
  s_hidden_s : float;
      (** latency overlapped by this statement's split-phase receives
          (same clamp as {!prow.p_hidden_s}) *)
  s_cp_s : float;
      (** wire time on the critical path caused by this statement's
          sends (non-zero only on multi-hop topologies) *)
}

val per_stmt_profile : Trace.t -> srow list
(** One row per statement id, sorted by sid.  Every send and receive
    carries exactly one sid, so message/byte/wait totals across rows
    equal the run's [Stats] totals; joining rows with
    [Ir.prov_table] keys them back to source [file:line]. *)

(** {2 Critical path} *)

type seg_kind =
  | Local  (** compute, copies and send overhead charged on [sg_rank] *)
  | Wire of { src : int; tag : int; bytes : int; sid : int }
      (** in-flight time of the message from [src] that [sg_rank]
          blocked on (non-zero only on multi-hop topologies); [sid] is
          the sending statement's id *)

type segment = { sg_rank : int; sg_t0 : float; sg_t1 : float; sg_kind : seg_kind }

val critical_path : Trace.t -> segment list
(** The chain of segments bounding the slowest processor's final clock,
    chronological.  Segments tile [0, elapsed] exactly: {!total} of the
    result equals the run's elapsed time. *)

val total : segment list -> float

(** {2 Text rendering} *)

val render_profile : Trace.t -> name_of:(int -> string) -> string
(** Human-readable profile: per-family and per-tag tables, per-rank
    compute vs clock, and the critical path. *)
