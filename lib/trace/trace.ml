open F90d_base

(* Event kinds.  A [Span] covers [t0, t1] on one processor's virtual
   clock; an instant has t1 = t0.  Sends and receives carry enough
   payload to reconstruct the message DAG: channels are exact-match
   (src, tag) FIFOs, so the k-th receive on a channel pairs with the
   k-th send — no message ids are needed. *)
(* Every event carries the statement id (sid) of the IR statement that
   was executing when it was recorded — 0 means "<runtime>" (engine
   internals outside any statement).  The interpreter stamps the current
   sid via [set_stmt] before executing each statement, so attribution
   costs one integer store per statement, not per event. *)
(* [parts] is non-empty only for coalesced batch sends: (member sid,
   member bytes) in packing order, summing to the event's [bytes], so
   profiles can split one physical message back to the statements whose
   traffic it carries. *)
type kind =
  | Send of {
      dest : int;
      tag : int;
      bytes : int;
      arrival : float;
      sid : int;
      parts : (int * int) array;
      relay : bool;
          (* a message-system forward of just-arrived data (split-phase
             broadcast): t0/t1 lie on the relay timeline, not the CPU's,
             so relays are excluded from per-rank CPU time accounting *)
    }
  | Recv of { src : int; tag : int; arrival : float; sid : int; posted : float }
  (* [posted] is when the receive was issued: equal to t0 for a blocking
     receive, earlier for the wait half of a split-phase receive.  The
     hidden latency is max(0, arrival - posted) - (t1 - t0). *)
  | Span of { name : string; cat : string; bytes : int; sid : int }
  | Mark of { name : string; cat : string; sid : int }

type event = { t0 : float; t1 : float; kind : kind }

(* One processor's private recorder.  Events land in a ring that doubles
   when full; the ring, the open-span stack and the compute accumulator
   are written only by the owning fiber, so the domain-parallel engine
   records without locks and the per-rank streams are independent of
   slice interleaving. *)
type rank = {
  me : int;
  mutable ring : event array;
  mutable len : int;
  mutable open_spans : (string * string * float * int) list;  (* name, cat, t0, sid *)
  mutable computed : float;  (* total Engine.advance time, seconds *)
  mutable sid : int;  (* current statement id; 0 = outside any statement *)
}

let dummy_event = { t0 = 0.; t1 = 0.; kind = Mark { name = ""; cat = ""; sid = 0 } }

type handle = rank option

let disabled : handle = None

let rank_create ~me : handle =
  Some { me; ring = Array.make 256 dummy_event; len = 0; open_spans = []; computed = 0.; sid = 0 }

let enabled = Option.is_some
let set_stmt h ~sid = match h with None -> () | Some r -> r.sid <- sid
let current_sid h = match h with None -> 0 | Some r -> r.sid

let push r ev =
  if r.len = Array.length r.ring then begin
    let bigger = Array.make (2 * Array.length r.ring) dummy_event in
    Array.blit r.ring 0 bigger 0 r.len;
    r.ring <- bigger
  end;
  r.ring.(r.len) <- ev;
  r.len <- r.len + 1

let send ?(parts = [||]) ?(relay = false) h ~t0 ~t1 ~dest ~tag ~bytes ~arrival =
  match h with
  | None -> ()
  | Some r ->
      push r { t0; t1; kind = Send { dest; tag; bytes; arrival; sid = r.sid; parts; relay } }

let recv ?posted h ~t0 ~t1 ~src ~tag ~arrival =
  match h with
  | None -> ()
  | Some r ->
      let posted = Option.value posted ~default:t0 in
      push r { t0; t1; kind = Recv { src; tag; arrival; sid = r.sid; posted } }

let computed h dt = match h with None -> () | Some r -> r.computed <- r.computed +. dt

let span_begin h ~t name ~cat =
  match h with None -> () | Some r -> r.open_spans <- (name, cat, t, r.sid) :: r.open_spans

let span_end ?(bytes = 0) h ~t =
  match h with
  | None -> ()
  | Some r -> (
      match r.open_spans with
      | [] -> Diag.bug "trace: span_end without span_begin"
      | (name, cat, t0, sid) :: rest ->
          r.open_spans <- rest;
          push r { t0; t1 = t; kind = Span { name; cat; bytes; sid } })

let mark h ~t name ~cat =
  match h with
  | None -> ()
  | Some r -> push r { t0 = t; t1 = t; kind = Mark { name; cat; sid = r.sid } }

(* ------------------------------------------------------------------ *)
(* Merged trace                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  nprocs : int;
  events : event array array;  (* events.(rank), in recording order *)
  compute : float array;  (* total charged compute per rank *)
  clocks : float array;  (* final virtual clocks *)
}

let merge ~clocks handles =
  let take = function
    | Some r ->
        if r.open_spans <> [] then Diag.bug "trace: unterminated span at end of run";
        (Array.sub r.ring 0 r.len, r.computed)
    | None -> ([||], 0.)
  in
  let parts = Array.map take handles in
  {
    nprocs = Array.length handles;
    events = Array.map fst parts;
    compute = Array.map snd parts;
    clocks = Array.copy clocks;
  }

let events t ~rank = t.events.(rank)
let nprocs t = t.nprocs
let clocks t = t.clocks
let compute_time t ~rank = t.compute.(rank)
let total_events t = Array.fold_left (fun acc evs -> acc + Array.length evs) 0 t.events

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

(* One pid per simulated processor, everything on tid 0; spans become
   "X" (complete) events, instants become "i".  Timestamps are virtual
   microseconds printed with %.17g so exports are byte-stable across
   runs and engines. *)

let us v = Printf.sprintf "%.17g" (v *. 1e6)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_event b ~pid ev =
  let common ~name ~cat ~ph ~t =
    Printf.bprintf b "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":%d,\"tid\":0,\"ts\":%s"
      (escape name) (escape cat) ph pid (us t)
  in
  (match ev.kind with
  | Send { dest; tag; bytes; arrival; sid; parts; relay } ->
      common
        ~name:(Printf.sprintf "%s tag=%d" (if relay then "relay" else "send") tag)
        ~cat:"send" ~ph:"X" ~t:ev.t0;
      Printf.bprintf b
        ",\"dur\":%s,\"args\":{\"dest\":%d,\"tag\":%d,\"bytes\":%d,\"arrival_us\":%s,\"sid\":%d"
        (us (ev.t1 -. ev.t0)) dest tag bytes (us arrival) sid;
      if relay then Buffer.add_string b ",\"relay\":true";
      if Array.length parts > 0 then begin
        Buffer.add_string b ",\"parts\":[";
        Array.iteri
          (fun i (psid, pbytes) ->
            if i > 0 then Buffer.add_char b ',';
            Printf.bprintf b "[%d,%d]" psid pbytes)
          parts;
        Buffer.add_char b ']'
      end;
      Buffer.add_char b '}'
  | Recv { src; tag; arrival; sid; posted } ->
      common ~name:(Printf.sprintf "recv tag=%d" tag) ~cat:"recv" ~ph:"X" ~t:ev.t0;
      let hidden = Float.max 0. (arrival -. posted) -. (ev.t1 -. ev.t0) in
      Printf.bprintf b
        ",\"dur\":%s,\"args\":{\"src\":%d,\"tag\":%d,\"arrival_us\":%s,\"waited\":%s,\"sid\":%d,\"posted_us\":%s,\"hidden_us\":%s}"
        (us (ev.t1 -. ev.t0)) src tag (us arrival)
        (if ev.t1 > ev.t0 then "true" else "false")
        sid (us posted)
        (us (Float.max 0. hidden))
  | Span { name; cat; bytes; sid } ->
      common ~name ~cat ~ph:"X" ~t:ev.t0;
      Printf.bprintf b ",\"dur\":%s,\"args\":{\"bytes\":%d,\"sid\":%d}" (us (ev.t1 -. ev.t0))
        bytes sid
  | Mark { name; cat; sid } ->
      common ~name ~cat ~ph:"i" ~t:ev.t0;
      Printf.bprintf b ",\"s\":\"t\",\"args\":{\"sid\":%d}" sid);
  Buffer.add_char b '}'

let to_chrome_json t =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit pid ev =
    if !first then first := false else Buffer.add_string b ",\n";
    chrome_event b ~pid ev
  in
  for rank = 0 to t.nprocs - 1 do
    (if !first then first := false else Buffer.add_string b ",\n");
    Printf.bprintf b
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"p%d\"}}"
      rank rank;
    Array.iter (emit rank) t.events.(rank)
  done;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
