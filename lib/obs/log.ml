(* Leveled structured logging: one JSON object per line, written and
   flushed under a mutex so concurrent domains never interleave bytes.
   The level check happens before any formatting work, so disabled
   levels cost one atomic load. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other -> Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" other)

(* current minimum severity, stored as an int for the cheap fast path *)
let threshold = Atomic.make (severity Warn)
let set_level l = Atomic.set threshold (severity l)
let enabled l = severity l >= Atomic.get threshold

type value = S of string | I of int | F of float | B of bool

type sink = { mutable chan : out_channel; mutable close_old : bool }

let sink = { chan = stderr; close_old = false }
let m = Mutex.create ()

let set_channel chan =
  Mutex.lock m;
  if sink.close_old then close_out_noerr sink.chan;
  sink.chan <- chan;
  sink.close_old <- false;
  Mutex.unlock m

let set_file path =
  let chan = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Mutex.lock m;
  if sink.close_old then close_out_noerr sink.chan;
  sink.chan <- chan;
  sink.close_old <- true;
  Mutex.unlock m

(* ------------------------------------------------------------------ *)
(* JSON-line emission                                                  *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_value b = function
  | S s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | I n -> Buffer.add_string b (string_of_int n)
  | F x ->
      if Float.is_finite x then Buffer.add_string b (Printf.sprintf "%.17g" x)
      else begin
        (* JSON has no Inf/NaN literals *)
        Buffer.add_char b '"';
        Buffer.add_string b (Printf.sprintf "%g" x);
        Buffer.add_char b '"'
      end
  | B v -> Buffer.add_string b (if v then "true" else "false")

let iso8601 t =
  let tm = Unix.gmtime t in
  let ms = int_of_float (Float.rem t 1. *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec ms

let log level event fields =
  if enabled level then begin
    let b = Buffer.create 128 in
    Buffer.add_string b "{\"ts\":\"";
    Buffer.add_string b (iso8601 (Unix.gettimeofday ()));
    Buffer.add_string b "\",\"level\":\"";
    Buffer.add_string b (level_name level);
    Buffer.add_string b "\",\"event\":\"";
    escape b event;
    Buffer.add_char b '"';
    List.iter
      (fun (k, v) ->
        Buffer.add_string b ",\"";
        escape b k;
        Buffer.add_string b "\":";
        add_value b v)
      fields;
    Buffer.add_string b "}\n";
    Mutex.lock m;
    (try
       output_string sink.chan (Buffer.contents b);
       flush sink.chan
     with Sys_error _ -> ());
    Mutex.unlock m
  end

let debug event fields = log Debug event fields
let info event fields = log Info event fields
let warn event fields = log Warn event fields
let error event fields = log Error event fields

(* Request ids: unique within the process, cheap, and readable in a
   grep — "r42" not a UUID.  The pid distinguishes processes sharing a
   log file. *)
let rid_counter = Atomic.make 0

let next_request_id () =
  Printf.sprintf "r%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add rid_counter 1)
