(** Leveled structured logging: one JSON object per line.

    Every record carries ["ts"] (ISO-8601 UTC, millisecond precision),
    ["level"], ["event"] and the caller's fields, written and flushed
    atomically so lines from concurrent domains never interleave.  The
    default sink is [stderr] at level {!Warn}; [f90dc --log-file] and
    [--log-level] re-point it.  A disabled level costs one atomic load
    before any formatting happens. *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> (level, string) result
val level_name : level -> string

val set_level : level -> unit
(** Records strictly below this level are dropped.  Default: {!Warn}. *)

val enabled : level -> bool

val set_file : string -> unit
(** Append JSON lines to [path] (created if absent), replacing the
    current sink.  @raise Sys_error if the file cannot be opened. *)

val set_channel : out_channel -> unit
(** Point the sink at an already-open channel (not closed on
    replacement; used by tests). *)

type value = S of string | I of int | F of float | B of bool

val debug : string -> (string * value) list -> unit
val info : string -> (string * value) list -> unit
val warn : string -> (string * value) list -> unit
val error : string -> (string * value) list -> unit
(** [info event fields] — [event] is a stable machine-greppable name
    ("request", "daemon_start", "slow_request"), fields carry the data. *)

val next_request_id : unit -> string
(** Process-unique request id ("r<pid>-<seq>") stamped into the request
    lifecycle records so one request's lines join across levels. *)
