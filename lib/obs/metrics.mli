(** Process-wide metrics in the Prometheus data model: counters, gauges
    and fixed-bucket histograms, rendered in the text exposition format.

    Write paths are lock-free — counters and histograms accumulate into
    per-domain shards (one [Atomic] per shard) that are merged only when
    {!render} runs, so a registry nobody scrapes costs one atomic
    read-modify-write per event.  Callback instruments
    ({!register_callback}) are evaluated exclusively at scrape time and
    cost nothing between scrapes — the natural fit for values something
    else already counts (cache hit totals, queue depths, disk usage).

    Registration validates metric and label names against the exposition
    grammar and raises [Invalid_argument] on violations, including a
    duplicate (name, label set).  Instruments sharing a name form one
    family: a single [# HELP]/[# TYPE] block with one sample line per
    label set.  Families render sorted by name, so two scrapes of
    unchanged values are byte-identical. *)

type registry

val create : unit -> registry

val default : registry
(** The process-wide registry every constructor uses when [?registry]
    is omitted. *)

module Counter : sig
  type t

  val v : ?registry:registry -> ?labels:(string * string) list -> help:string -> string -> t
  (** [v ~help name] registers a counter instrument.
      @raise Invalid_argument on an invalid or duplicate name/label set. *)

  val inc : ?by:int -> t -> unit
  val inc_float : t -> float -> unit
  (** @raise Invalid_argument on a negative increment — counters are
      monotone by contract. *)

  val value : t -> float
  (** Current merged value (sums the shards). *)
end

module Gauge : sig
  type t

  val v : ?registry:registry -> ?labels:(string * string) list -> help:string -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  (** [add t x] atomically adds [x] (negative to decrement). *)

  val value : t -> float
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Request-latency-shaped: 1 ms to 30 s. *)

  val v :
    ?registry:registry ->
    ?labels:(string * string) list ->
    ?buckets:float array ->
    help:string ->
    string ->
    t
  (** [buckets] are the finite upper bounds (strictly increasing; the
      [+Inf] bucket is implicit).
      @raise Invalid_argument on empty, non-finite or non-increasing
      buckets, or if [labels] uses the reserved name ["le"]. *)

  val observe : t -> float -> unit
  val count : t -> float
  val sum : t -> float
end

val register_callback :
  ?registry:registry ->
  ?labels:(string * string) list ->
  kind:[ `Counter | `Gauge ] ->
  help:string ->
  string ->
  (unit -> float) ->
  unit
(** Register a sample evaluated at scrape time.  Re-registering the same
    (name, labels) replaces the previous callback — callbacks follow the
    lifetime of the object they read (a new worker pool, a new store). *)

val render : ?registry:registry -> unit -> string
(** The Prometheus text exposition of every family, sorted by name.
    Values that are mathematically integral render bare; all other
    doubles render via [%.17g] so the scraper recovers the exact value;
    histogram bucket bounds render as the shortest round-tripping
    decimal, with the implicit [le="+Inf"] bucket last. *)

val validate_metric_name : string -> bool
val validate_label_name : string -> bool

val float_str : float -> string
(** The sample-value formatting {!render} uses (exposed for tests). *)
