(* A process-wide metrics registry in the Prometheus data model.

   Write paths are lock-free: counters and histograms accumulate into a
   small fixed array of per-domain shards (one Atomic per shard, picked
   by the writing domain's id), so worker domains hammering the same
   family never contend on a mutex or invalidate each other's cache
   line.  Shards are merged only at scrape time — a registry that is
   never rendered costs one atomic read-modify-write per event and
   nothing else.  The registry mutex guards registration and the
   instrument-list snapshot taken by [render]; it is never held while a
   sample is recorded. *)

type kind = Kcounter | Kgauge | Khistogram

(* Enough shards that a daemon-sized worker pool (default <= 4 domains,
   capped well below 16 in practice) rarely collides; power of two so
   the pick is a mask, and collisions only cost a shared atomic, never a
   wrong count. *)
let nshards = 16

let shard_id () = (Domain.self () :> int) land (nshards - 1)

let fadd cell x =
  (* CAS loop: [compare_and_set] compares the physical value we just
     read, so concurrent adders retry rather than lose updates *)
  let rec go () =
    let v = Atomic.get cell in
    if not (Atomic.compare_and_set cell v (v +. x)) then go ()
  in
  go ()

type hist = {
  h_bounds : float array;  (* strictly increasing upper bounds, +Inf implicit *)
  h_counts : float Atomic.t array array;  (* shard -> bucket (len bounds + 1) *)
  h_sums : float Atomic.t array;  (* shard *)
}

type value =
  | Sharded of float Atomic.t array  (* counters: per-domain shards *)
  | Cell of float Atomic.t  (* gauges: single set/add cell *)
  | Callback of (unit -> float)  (* read at scrape time only *)
  | Hist of hist

type instrument = { i_labels : (string * string) list; i_value : value }

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  mutable f_instruments : instrument list;  (* reverse registration order *)
}

type registry = { mutable families : family list; rm : Mutex.t }

let create () = { families = []; rm = Mutex.create () }
let default = create ()

(* ------------------------------------------------------------------ *)
(* Name and label validation (the Prometheus exposition grammar)       *)
(* ------------------------------------------------------------------ *)

let validate_metric_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let validate_label_name s =
  s <> ""
  && not (String.length s >= 2 && s.[0] = '_' && s.[1] = '_')
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let invalid fmt = Printf.ksprintf invalid_arg fmt

let check_name name =
  if not (validate_metric_name name) then invalid "invalid metric name %S" name

let check_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (validate_label_name k) then invalid "invalid label name %S on %S" k name)
    labels;
  let keys = List.map fst labels in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    invalid "duplicate label names on %S" name

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khistogram -> "histogram"

(* Find or create the family, then attach the instrument.  A second
   registration of the same (name, labels) replaces the first when
   [replace] (callbacks re-wired to a new pool or store) and is an error
   otherwise — two owners of one counter is always a bug. *)
let register ?(registry = default) ?(replace = false) ~kind ~help name labels value =
  check_name name;
  check_labels name labels;
  (if kind = Khistogram && List.mem_assoc "le" labels then
     invalid "label \"le\" is reserved on histogram %S" name);
  Mutex.lock registry.rm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.rm)
    (fun () ->
      let fam =
        match List.find_opt (fun f -> f.f_name = name) registry.families with
        | Some f ->
            if f.f_kind <> kind then
              invalid "metric %S re-registered as %s (was %s)" name (kind_name kind)
                (kind_name f.f_kind);
            f
        | None ->
            let f = { f_name = name; f_help = help; f_kind = kind; f_instruments = [] } in
            registry.families <- f :: registry.families;
            f
      in
      let same i = List.sort compare i.i_labels = List.sort compare labels in
      (match List.find_opt same fam.f_instruments with
      | Some _ when replace ->
          fam.f_instruments <- List.filter (fun i -> not (same i)) fam.f_instruments
      | Some _ -> invalid "metric %S already has an instrument with these labels" name
      | None -> ());
      fam.f_instruments <- { i_labels = labels; i_value = value } :: fam.f_instruments)

let shards () = Array.init nshards (fun _ -> Atomic.make 0.)
let merge_shards a = Array.fold_left (fun acc c -> acc +. Atomic.get c) 0. a

(* ------------------------------------------------------------------ *)
(* Instrument front-ends                                               *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = float Atomic.t array

  let v ?registry ?(labels = []) ~help name =
    let cells = shards () in
    register ?registry ~kind:Kcounter ~help name labels (Sharded cells);
    cells

  let inc_float t x =
    if x < 0. then invalid "counter decremented by %g" x;
    fadd t.(shard_id ()) x

  let inc ?(by = 1) t = inc_float t (float_of_int by)
  let value t = merge_shards t
end

module Gauge = struct
  type t = float Atomic.t

  let v ?registry ?(labels = []) ~help name =
    let cell = Atomic.make 0. in
    register ?registry ~kind:Kgauge ~help name labels (Cell cell);
    cell

  let set t x = Atomic.set t x
  let add t x = fadd t x
  let value t = Atomic.get t
end

module Histogram = struct
  type t = hist

  let default_buckets =
    [| 0.001; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 30. |]

  let v ?registry ?(labels = []) ?(buckets = default_buckets) ~help name =
    if Array.length buckets = 0 then invalid "histogram %S needs at least one bucket" name;
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then invalid "histogram %S has a non-finite bucket" name;
        if i > 0 && b <= buckets.(i - 1) then
          invalid "histogram %S buckets must be strictly increasing" name)
      buckets;
    let h =
      {
        h_bounds = Array.copy buckets;
        h_counts =
          Array.init nshards (fun _ ->
              Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0.));
        h_sums = shards ();
      }
    in
    register ?registry ~kind:Khistogram ~help name labels (Hist h);
    h

  let observe t x =
    let nb = Array.length t.h_bounds in
    let rec bucket i = if i >= nb || x <= t.h_bounds.(i) then i else bucket (i + 1) in
    let s = shard_id () in
    fadd t.h_counts.(s).(bucket 0) 1.;
    fadd t.h_sums.(s) x

  (* merged (non-cumulative) bucket counts, then sum and count *)
  let snapshot t =
    let nb = Array.length t.h_bounds in
    let counts = Array.make (nb + 1) 0. in
    Array.iter
      (fun shard -> Array.iteri (fun i c -> counts.(i) <- counts.(i) +. Atomic.get c) shard)
      t.h_counts;
    (counts, merge_shards t.h_sums)

  let count t = Array.fold_left ( +. ) 0. (fst (snapshot t))
  let sum t = snd (snapshot t)
end

let register_callback ?registry ?(labels = []) ~kind ~help name f =
  let kind = match kind with `Counter -> Kcounter | `Gauge -> Kgauge in
  register ?registry ~replace:true ~kind ~help name labels (Callback f)

(* ------------------------------------------------------------------ *)
(* Text exposition                                                     *)
(* ------------------------------------------------------------------ *)

(* Sample values: integers render bare, everything else through %.17g so
   a scraper recovers the exact double. *)
let float_str f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* Bucket boundaries are identity, not measurement: use the shortest
   decimal that round-trips, so le="0.005" rather than le="0.005000...1". *)
let shortest_float f =
  if f = Float.infinity then "+Inf"
  else
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    go 1

let escape_label b s =
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

let escape_help b s =
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

let add_labels b = function
  | [] -> ()
  | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          escape_label b v;
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let add_sample b name labels value =
  Buffer.add_string b name;
  add_labels b labels;
  Buffer.add_char b ' ';
  Buffer.add_string b (float_str value);
  Buffer.add_char b '\n'

let render ?(registry = default) () =
  let families =
    Mutex.lock registry.rm;
    let fams =
      List.rev_map (fun f -> (f, List.rev f.f_instruments)) registry.families
    in
    Mutex.unlock registry.rm;
    List.sort (fun ((a : family), _) (b, _) -> compare a.f_name b.f_name) fams
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun (fam, instruments) ->
      Buffer.add_string b "# HELP ";
      Buffer.add_string b fam.f_name;
      Buffer.add_char b ' ';
      escape_help b fam.f_help;
      Buffer.add_char b '\n';
      Buffer.add_string b "# TYPE ";
      Buffer.add_string b fam.f_name;
      Buffer.add_char b ' ';
      Buffer.add_string b (kind_name fam.f_kind);
      Buffer.add_char b '\n';
      List.iter
        (fun i ->
          match i.i_value with
          | Sharded cells -> add_sample b fam.f_name i.i_labels (merge_shards cells)
          | Cell c -> add_sample b fam.f_name i.i_labels (Atomic.get c)
          | Callback f ->
              let v = try f () with _ -> Float.nan in
              add_sample b fam.f_name i.i_labels v
          | Hist h ->
              let counts, sum = Histogram.snapshot h in
              let cum = ref 0. in
              Array.iteri
                (fun k c ->
                  cum := !cum +. c;
                  let le =
                    if k = Array.length h.h_bounds then Float.infinity else h.h_bounds.(k)
                  in
                  add_sample b (fam.f_name ^ "_bucket")
                    (i.i_labels @ [ ("le", shortest_float le) ])
                    !cum)
                counts;
              add_sample b (fam.f_name ^ "_sum") i.i_labels sum;
              add_sample b (fam.f_name ^ "_count") i.i_labels !cum)
        instruments)
    families;
  Buffer.contents b
