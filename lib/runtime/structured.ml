open F90d_base
open F90d_dist
open F90d_machine

(* The grid dimension an array dimension is distributed over; structured
   primitives are only generated for distributed dimensions. *)
let pdim_of (darr : Darray.t) dim =
  match (Dad.dims darr.Darray.dad).(dim).Dad.pdim with
  | Some p -> p
  | None -> Diag.bug "structured: dimension %d of %s is not distributed" (dim + 1)
              (Dad.name darr.Darray.dad)

let my_counts ctx (darr : Darray.t) = Dad.local_counts darr.Darray.dad ~rank:(Rctx.me ctx)

let owner_coord (darr : Darray.t) dim g =
  let d = (Dad.dims darr.Darray.dad).(dim) in
  Distrib.owner d.Dad.dist (Affine.eval d.Dad.align g)

let my_coord ctx (darr : Darray.t) dim = (Rctx.my_coords ctx).(pdim_of darr dim)

(* Copy the slices of [local] at the given storage positions along [dim]
   into a fresh array whose [dim] extent is the number of slices. *)
let gather_dim_slices ctx local ~dim ~counts positions =
  let extents = Array.copy counts in
  extents.(dim) <- Array.length positions;
  let out = Ndarray.create (Ndarray.kind local) extents in
  Array.iteri
    (fun i pos ->
      let lo = Array.make (Array.length counts) 0 in
      lo.(dim) <- pos;
      let box_extents = Array.copy counts in
      box_extents.(dim) <- 1;
      let slab = Ndarray.get_box local ~lo ~extents:box_extents in
      let dst_lo = Array.make (Array.length counts) 1 in
      dst_lo.(dim) <- i + 1;
      Ndarray.set_box out ~lo:dst_lo slab)
    positions;
  Rctx.charge_copy_bytes ctx (Ndarray.bytes out);
  out

(* Place the [dim] slices of [src] (in order) at the given positions of
   [dst] along [dim].  [origin] is the index where the owned box starts in
   the non-shifted dimensions: 0 for local sections (whose lower bound is
   the ghost corner), 1 for fresh temporaries. *)
let scatter_dim_slices ctx ~dst ~dim ~origin positions src =
  let nd = Ndarray.rank dst in
  let box_extents = Array.copy src.Ndarray.extents in
  box_extents.(dim) <- 1;
  Array.iteri
    (fun i pos ->
      let src_lo = Array.make nd 1 in
      src_lo.(dim) <- i + 1;
      let slab = Ndarray.get_box src ~lo:src_lo ~extents:box_extents in
      let dst_lo = Array.make nd origin in
      dst_lo.(dim) <- pos;
      Ndarray.set_box dst ~lo:dst_lo slab)
    positions;
  Rctx.charge_copy_bytes ctx (Ndarray.bytes src)

let multicast ctx (darr : Darray.t) ~dim ~g =
  let me_coord = my_coord ctx darr dim in
  let root_coord = owner_coord darr dim g in
  let team = Collectives.team_along ctx ~dim:(pdim_of darr dim) in
  let counts = my_counts ctx darr in
  let payload =
    if me_coord = root_coord then begin
      let pos = Layout.local_of_global (Dad.layout_at darr.Darray.dad ~dim ~rank:(Rctx.me ctx)) g in
      Message.Arr (gather_dim_slices ctx darr.Darray.local ~dim ~counts [| pos |])
    end
    else Message.Empty
  in
  match Collectives.broadcast ctx team ~root:root_coord payload with
  | Message.Arr slab -> slab
  | _ -> Diag.bug "multicast: protocol error"

(* Split-phase multicast: the issue half gathers the owner's slab (so
   the data in flight is the source as of the issue point — the split
   pass only separates issue from wait across statements that provably
   do not write the broadcast slice) and runs the nonblocking half of
   the broadcast tree; the wait half completes it. *)
let multicast_issue ctx (darr : Darray.t) ~dim ~g =
  let me_coord = my_coord ctx darr dim in
  let root_coord = owner_coord darr dim g in
  let team = Collectives.team_along ctx ~dim:(pdim_of darr dim) in
  let counts = my_counts ctx darr in
  let payload =
    if me_coord = root_coord then begin
      let pos = Layout.local_of_global (Dad.layout_at darr.Darray.dad ~dim ~rank:(Rctx.me ctx)) g in
      Message.Arr (gather_dim_slices ctx darr.Darray.local ~dim ~counts [| pos |])
    end
    else Message.Empty
  in
  Collectives.broadcast_issue ctx team ~root:root_coord payload

let multicast_wait ctx pending =
  match Collectives.broadcast_wait ctx pending with
  | Message.Arr slab -> slab
  | _ -> Diag.bug "multicast_wait: protocol error"

let transfer ctx (darr : Darray.t) ~dim ~gsrc ~gdest =
  let me_coord = my_coord ctx darr dim in
  let src_coord = owner_coord darr dim gsrc in
  let dest_coord = owner_coord darr dim gdest in
  let team = Collectives.team_along ctx ~dim:(pdim_of darr dim) in
  let counts = my_counts ctx darr in
  let payload =
    if me_coord = src_coord then begin
      let pos = Layout.local_of_global (Dad.layout_at darr.Darray.dad ~dim ~rank:(Rctx.me ctx)) gsrc in
      Some (Message.Arr (gather_dim_slices ctx darr.Darray.local ~dim ~counts [| pos |]))
    end
    else None
  in
  match Collectives.transfer ctx team ~src:src_coord ~dest:dest_coord payload with
  | Some (Message.Arr slab) -> Some slab
  | Some _ -> Diag.bug "transfer: protocol error"
  | None -> None

let overlap_shift ctx (darr : Darray.t) ~dim ~amount =
  if amount = 0 then ()
  else begin
    let dad = darr.Darray.dad in
    let d = (Dad.dims dad).(dim) in
    let me = Rctx.me ctx in
    let counts = my_counts ctx darr in
    let n = counts.(dim) in
    let w = abs amount in
    (match Dad.layout_at dad ~dim ~rank:me with
    | Layout.Prog { step = 1; _ } -> ()
    | _ -> Diag.bug "overlap_shift: layout of %s dim %d is not contiguous" (Dad.name dad) (dim + 1));
    if (amount > 0 && d.Dad.ghost_hi < w) || (amount < 0 && d.Dad.ghost_lo < w) then
      Diag.bug "overlap_shift: ghost area of %s dim %d narrower than shift %d" (Dad.name dad)
        (dim + 1) amount;
    ignore n;
    let pd = pdim_of darr dim in
    let team = Collectives.team_along ctx ~dim:pd in
    let coord = my_coord ctx darr dim in
    let m = Array.length team in
    (* Blocks shorter than the shift make the ghost range span several
       owners, so both sides enumerate the owners of each ghost cell
       instead of assuming the adjacent neighbour supplies them all; every
       pair derives the same lists locally. *)
    let range c =
      match Dad.layout_at dad ~dim ~rank:team.(c) with
      | Layout.Prog { first; step = 1; count } -> (first, count)
      | _ ->
          Diag.bug "overlap_shift: layout of %s dim %d is not contiguous" (Dad.name dad)
            (dim + 1)
    in
    (* ghost globals coordinate c must fill, each with its ghost slot
       (storage position relative to the owned origin) *)
    let ghosts c =
      let first, cnt = range c in
      if cnt = 0 then []
      else if amount > 0 then
        List.init w (fun i -> (first + cnt + i, cnt + i))
        |> List.filter (fun (g, _) -> g < d.Dad.extent)
      else List.init w (fun i -> (first - w + i, -w + i)) |> List.filter (fun (g, _) -> g >= 0)
    in
    let owner g = owner_coord darr dim g in
    let my_first, _ = range coord in
    (* send first: the slices of mine each peer's ghost range needs, in
       that peer's ghost order *)
    for c = 0 to m - 1 do
      if c <> coord then begin
        let positions =
          ghosts c
          |> List.filter_map (fun (g, _) -> if owner g = coord then Some (g - my_first) else None)
          |> Array.of_list
        in
        if Array.length positions > 0 then
          Rctx.send ctx ~dest:team.(c) ~tag:Tags.shift
            (Message.Arr (gather_dim_slices ctx darr.Darray.local ~dim ~counts positions))
      end
    done;
    let from_peer = Array.make m [] in
    List.iter
      (fun (g, slot) ->
        let c = owner g in
        if c <> coord then from_peer.(c) <- slot :: from_peer.(c))
      (ghosts coord);
    for c = 0 to m - 1 do
      if from_peer.(c) <> [] then begin
        let msg = Rctx.recv ctx ~src:team.(c) ~tag:Tags.shift in
        scatter_dim_slices ctx ~dst:darr.Darray.local ~dim ~origin:0
          (Array.of_list (List.rev from_peer.(c)))
          (Message.arr msg)
      end
    done
  end

(* Exchange along one grid dimension: every coordinate wants the global
   dim-indices given by [wants coord] (in its local order).  Both sides of
   every pair derive their lists locally — the want-function is common
   knowledge, as with the paper's invertible subscripts — and slabs move in
   one vectorized message per communicating pair.  Wanted positions
   without an owner (outside the array) are left zero. *)
let exchange_wants ctx (darr : Darray.t) ~dim ~wants =
  let dad = darr.Darray.dad in
  let d = (Dad.dims dad).(dim) in
  let me = Rctx.me ctx in
  let pd = pdim_of darr dim in
  let team = Collectives.team_along ctx ~dim:pd in
  let coord = my_coord ctx darr dim in
  let counts = my_counts ctx darr in
  let m = Array.length team in
  let my_wants = wants coord in
  Rctx.charge_iops ctx (3 * Array.length my_wants);
  let owner_of g = if g >= 0 && g < d.Dad.extent then Some (owner_coord darr dim g) else None in
  let mylay = Dad.layout_at dad ~dim ~rank:me in
  (* send first: for each peer, the slices of mine that it wants, in its order *)
  for c = 0 to m - 1 do
    if c <> coord then begin
      let positions =
        Array.to_seq (wants c)
        |> Seq.filter_map (fun g ->
               match owner_of g with
               | Some o when o = coord -> Some (Layout.local_of_global mylay g)
               | _ -> None)
        |> Array.of_seq
      in
      if Array.length positions > 0 then
        Rctx.send ctx ~dest:team.(c) ~tag:Tags.shift
          (Message.Arr (gather_dim_slices ctx darr.Darray.local ~dim ~counts positions))
    end
  done;
  (* result temporary, filled locally then from incoming messages *)
  let extents = Array.copy counts in
  extents.(dim) <- Array.length my_wants;
  let tmp = Ndarray.create (Ndarray.kind darr.Darray.local) extents in
  let local_positions = ref [] and local_sources = ref [] in
  let from_peer = Array.make m [] in
  Array.iteri
    (fun i g ->
      match owner_of g with
      | Some c when c = coord ->
          local_positions := (i + 1) :: !local_positions;
          local_sources := Layout.local_of_global mylay g :: !local_sources
      | Some c -> from_peer.(c) <- (i + 1) :: from_peer.(c)
      | None -> ())
    my_wants;
  if !local_positions <> [] then
    scatter_dim_slices ctx ~dst:tmp ~dim ~origin:1
      (Array.of_list (List.rev !local_positions))
      (gather_dim_slices ctx darr.Darray.local ~dim ~counts
         (Array.of_list (List.rev !local_sources)));
  for c = 0 to m - 1 do
    if c <> coord && from_peer.(c) <> [] then begin
      let msg = Rctx.recv ctx ~src:team.(c) ~tag:Tags.shift in
      scatter_dim_slices ctx ~dst:tmp ~dim ~origin:1 (Array.of_list (List.rev from_peer.(c))) (Message.arr msg)
    end
  done;
  tmp

let temporary_shift ctx (darr : Darray.t) ~dim ~amount =
  let dad = darr.Darray.dad in
  let pd = pdim_of darr dim in
  let team = Collectives.team_along ctx ~dim:pd in
  let wants c =
    let l = Dad.layout_at dad ~dim ~rank:team.(c) in
    Array.init (Layout.count l) (fun i -> Layout.global_of_local l i + amount)
  in
  exchange_wants ctx darr ~dim ~wants

let multicast_shift ctx (darr : Darray.t) ~mdim ~g ~sdim ~amount =
  (* the owner row of [g] shifts among itself, then broadcasts the combined
     slab: one tree instead of shift-everywhere + broadcast *)
  let me_coord = my_coord ctx darr mdim in
  let root_coord = owner_coord darr mdim g in
  let team = Collectives.team_along ctx ~dim:(pdim_of darr mdim) in
  let payload =
    if me_coord = root_coord then begin
      let shifted = temporary_shift ctx darr ~dim:sdim ~amount in
      let pos =
        Layout.local_of_global (Dad.layout_at darr.Darray.dad ~dim:mdim ~rank:(Rctx.me ctx)) g
      in
      (* restrict the shifted temporary to the broadcast slice *)
      let lo = Array.map (fun lb -> lb) shifted.Ndarray.lb in
      let extents = Array.copy shifted.Ndarray.extents in
      lo.(mdim) <- lo.(mdim) + pos;
      extents.(mdim) <- 1;
      Message.Arr (Ndarray.get_box shifted ~lo ~extents)
    end
    else Message.Empty
  in
  match Collectives.broadcast ctx team ~root:root_coord payload with
  | Message.Arr slab -> slab
  | _ -> Diag.bug "multicast_shift: protocol error"

let concat ctx (darr : Darray.t) = Darray.gather_global ctx darr

(* ------------------------------------------------------------------ *)
(* Coalesced batches                                                   *)
(* ------------------------------------------------------------------ *)

(* One packed message per communicating rank pair.  Members keep their
   individual peer plans (arrays in one batch may have different
   distributions); what changes is the wire format: all member slabs
   bound for the same destination travel as one [Message.List] in batch
   member order, so the engine charges one latency per pair.  Both ends
   derive the member-order pair membership from the (globally known)
   layouts, exactly as the unbatched primitives do, so packing and
   unpacking agree without any extra control message.  [parts] carries
   the (member sid, member bytes) split for trace attribution. *)

let nd_of = function Message.Arr a -> a | _ -> Diag.bug "batch: protocol error"

let send_grouped ctx ~tag outs =
  (* outs: (dest rank, sid, payload) in batch member order *)
  let per_dest = Hashtbl.create 8 in
  List.iter
    (fun (dest, sid, p) ->
      Hashtbl.replace per_dest dest
        ((sid, p) :: Option.value (Hashtbl.find_opt per_dest dest) ~default:[]))
    outs;
  Hashtbl.fold (fun dest _ acc -> dest :: acc) per_dest [] |> List.sort compare
  |> List.iter (fun dest ->
         let items = List.rev (Hashtbl.find per_dest dest) in
         let parts =
           Array.of_list (List.map (fun (sid, p) -> (sid, Message.payload_bytes p)) items)
         in
         Rctx.send ~parts ctx ~dest ~tag (Message.List (List.map snd items)))

let recv_grouped ctx ~tag ins consume =
  (* ins: (src rank, item) in batch member order; calls [consume item
     payload] member-by-member as each pair's packed message arrives *)
  let per_src = Hashtbl.create 8 in
  List.iter
    (fun (src, item) ->
      Hashtbl.replace per_src src
        (item :: Option.value (Hashtbl.find_opt per_src src) ~default:[]))
    ins;
  Hashtbl.fold (fun src _ acc -> src :: acc) per_src [] |> List.sort compare
  |> List.iter (fun src ->
         let items = List.rev (Hashtbl.find per_src src) in
         let payloads = Message.list (Rctx.recv ctx ~src ~tag) in
         if List.length payloads <> List.length items then
           Diag.bug "batch: pair member count mismatch";
         List.iter2 consume items payloads)

let overlap_shift_batch ctx members =
  let members = List.filter (fun (_, _, amount, _) -> amount <> 0) members in
  let plans =
    List.map
      (fun ((darr : Darray.t), dim, amount, sid) ->
        let dad = darr.Darray.dad in
        let d = (Dad.dims dad).(dim) in
        let counts = my_counts ctx darr in
        let w = abs amount in
        (match Dad.layout_at dad ~dim ~rank:(Rctx.me ctx) with
        | Layout.Prog { step = 1; _ } -> ()
        | _ ->
            Diag.bug "overlap_shift: layout of %s dim %d is not contiguous" (Dad.name dad)
              (dim + 1));
        if (amount > 0 && d.Dad.ghost_hi < w) || (amount < 0 && d.Dad.ghost_lo < w) then
          Diag.bug "overlap_shift: ghost area of %s dim %d narrower than shift %d"
            (Dad.name dad) (dim + 1) amount;
        let pd = pdim_of darr dim in
        let team = Collectives.team_along ctx ~dim:pd in
        let coord = my_coord ctx darr dim in
        let m = Array.length team in
        let range c =
          match Dad.layout_at dad ~dim ~rank:team.(c) with
          | Layout.Prog { first; step = 1; count } -> (first, count)
          | _ ->
              Diag.bug "overlap_shift: layout of %s dim %d is not contiguous" (Dad.name dad)
                (dim + 1)
        in
        let ghosts c =
          let first, cnt = range c in
          if cnt = 0 then []
          else if amount > 0 then
            List.init w (fun i -> (first + cnt + i, cnt + i))
            |> List.filter (fun (g, _) -> g < d.Dad.extent)
          else List.init w (fun i -> (first - w + i, -w + i)) |> List.filter (fun (g, _) -> g >= 0)
        in
        let owner g = owner_coord darr dim g in
        let my_first, _ = range coord in
        let outs = ref [] in
        for c = 0 to m - 1 do
          if c <> coord then begin
            let positions =
              ghosts c
              |> List.filter_map (fun (g, _) ->
                     if owner g = coord then Some (g - my_first) else None)
              |> Array.of_list
            in
            if Array.length positions > 0 then
              outs :=
                ( team.(c),
                  sid,
                  Message.Arr (gather_dim_slices ctx darr.Darray.local ~dim ~counts positions) )
                :: !outs
          end
        done;
        let from_peer = Array.make m [] in
        List.iter
          (fun (g, slot) ->
            let c = owner g in
            if c <> coord then from_peer.(c) <- slot :: from_peer.(c))
          (ghosts coord);
        let ins = ref [] in
        for c = 0 to m - 1 do
          if from_peer.(c) <> [] then
            ins := (team.(c), (darr, dim, Array.of_list (List.rev from_peer.(c)))) :: !ins
        done;
        (List.rev !outs, List.rev !ins))
      members
  in
  send_grouped ctx ~tag:Tags.shift (List.concat_map fst plans);
  recv_grouped ctx ~tag:Tags.shift
    (List.concat_map snd plans)
    (fun ((darr : Darray.t), dim, slots) p ->
      scatter_dim_slices ctx ~dst:darr.Darray.local ~dim ~origin:0 slots (nd_of p))

let transfer_batch ctx members =
  let me = Rctx.me ctx in
  let plans =
    List.map
      (fun ((darr : Darray.t), dim, gsrc, gdest, sid) ->
        let src_coord = owner_coord darr dim gsrc in
        let dest_coord = owner_coord darr dim gdest in
        let team = Collectives.team_along ctx ~dim:(pdim_of darr dim) in
        let src_rank = team.(src_coord) and dest_rank = team.(dest_coord) in
        let payload =
          if src_rank = me then begin
            let counts = my_counts ctx darr in
            let pos =
              Layout.local_of_global (Dad.layout_at darr.Darray.dad ~dim ~rank:me) gsrc
            in
            Some (Message.Arr (gather_dim_slices ctx darr.Darray.local ~dim ~counts [| pos |]))
          end
          else None
        in
        (sid, src_rank, dest_rank, payload))
      members
  in
  let results = Array.make (List.length plans) None in
  let outs = ref [] and ins = ref [] in
  List.iteri
    (fun i (sid, src_rank, dest_rank, payload) ->
      match payload with
      | Some p when src_rank = dest_rank ->
          (* purely local: charge the copy, no message *)
          Rctx.charge_copy_bytes ctx (Message.payload_bytes p);
          results.(i) <- Some (nd_of p)
      | Some p -> outs := (dest_rank, sid, p) :: !outs
      | None -> if dest_rank = me && src_rank <> me then ins := (src_rank, i) :: !ins)
    plans;
  send_grouped ctx ~tag:Tags.transfer (List.rev !outs);
  recv_grouped ctx ~tag:Tags.transfer (List.rev !ins) (fun i p -> results.(i) <- Some (nd_of p));
  Array.to_list results
