(** Message-tag namespace of the run-time library.

    Matching in the engine is FIFO per (source, tag).  For blocking
    communication, SPMD programs issue in identical program order on
    every node, so the family tag alone suffices.  Split-phase
    collectives break that ordering — several trees can be in flight at
    once — so each instance takes a distinct tag within its
    hundreds-family (see {!Collectives.broadcast_issue}); profiles
    classify by family, i.e. [tag / 100]. *)

val transfer : int
val broadcast : int
val reduce : int
val gatherv : int
val shift : int
val schedule_counts : int
val schedule_indices : int
val exec_data : int
val redistribute : int
val concat : int

val family_name : int -> string
(** Human name of a tag's hundreds-family, for statistics breakdowns. *)
