open F90d_base
open F90d_dist
open F90d_machine

type team = int array

(* Teams are a pure function of the (fixed) grid and the calling rank, so
   they are memoized in the per-rank context: without the cache every
   collective call allocated and recomputed an O(P) rank array, which at
   4096 ranks dominated the broadcast it was setting up. *)
type Rctx.cache_entry += Cached_team of team

let team_all ctx =
  let key = "team:all" in
  match Rctx.cache_find ctx key with
  | Some (Cached_team t) -> t
  | _ ->
      let t = Array.init (Rctx.nprocs ctx) Fun.id in
      Rctx.cache_store ctx key (Cached_team t);
      t

let team_along ctx ~dim =
  let key = "team:dim:" ^ string_of_int dim in
  match Rctx.cache_find ctx key with
  | Some (Cached_team t) -> t
  | _ ->
      let t = Grid.ranks_along (Rctx.grid ctx) ~rank:(Rctx.me ctx) ~dim in
      Rctx.cache_store ctx key (Cached_team t);
      t

(* Wrap a primitive in a named trace span: [t0] at entry, [t1] when the
   last local send/receive of the tree completes.  [bytes_of] is only
   evaluated when tracing is on, so disabled tracing costs one branch. *)
let spanned ctx name ~bytes_of f =
  let tr = Rctx.trace ctx in
  if not (F90d_trace.Trace.enabled tr) then f ()
  else begin
    F90d_trace.Trace.span_begin tr ~t:(Rctx.time ctx) name ~cat:"collective";
    let r = f () in
    F90d_trace.Trace.span_end tr ~t:(Rctx.time ctx) ~bytes:(bytes_of ());
    r
  end

let payload_bytes_opt = function Some p -> Message.payload_bytes p | None -> 0

let index_in team rank =
  (* Identity fast path: [team_all] and the teams of a 1-D grid are the
     identity permutation, where a linear scan would cost O(rank) on
     every collective call — O(P^2) machine-wide per broadcast. *)
  if rank >= 0 && rank < Array.length team && team.(rank) = rank then rank
  else
    let rec go i =
      if i >= Array.length team then Diag.bug "collectives: rank %d not in team" rank
      else if team.(i) = rank then i
      else go (i + 1)
    in
    go 0

let my_index ctx team = index_in team (Rctx.me ctx)

let transfer ctx team ~src ~dest payload =
  spanned ctx "transfer" ~bytes_of:(fun () -> payload_bytes_opt payload) @@ fun () ->
  let vr = my_index ctx team in
  if src = dest then
    if vr = src then begin
      (* purely local: charge the copy, no message *)
      let p = match payload with Some p -> p | None -> Diag.bug "transfer: source passed None" in
      Rctx.charge_copy_bytes ctx (Message.payload_bytes p);
      Some p
    end
    else None
  else if vr = src then begin
    let p = match payload with Some p -> p | None -> Diag.bug "transfer: source passed None" in
    Rctx.send ctx ~dest:team.(dest) ~tag:Tags.transfer p;
    None
  end
  else if vr = dest then Some (Rctx.recv ctx ~src:team.(src) ~tag:Tags.transfer).Message.payload
  else None

let broadcast ctx team ~root payload =
  spanned ctx "broadcast" ~bytes_of:(fun () -> Message.payload_bytes payload) @@ fun () ->
  let m = Array.length team in
  let vr = Util.modulo (my_index ctx team - root) m in
  let p = ref payload in
  let mask = ref 1 in
  while !mask < m do
    let k = !mask in
    if vr < k then begin
      if vr + k < m then
        Rctx.send ctx ~dest:team.(Util.modulo (vr + k + root) m) ~tag:Tags.broadcast !p
    end
    else if vr < 2 * k then
      p := (Rctx.recv ctx ~src:team.(Util.modulo (vr - k + root) m) ~tag:Tags.broadcast).Message.payload;
    mask := k * 2
  done;
  !p

(* ------------------------------------------------------------------ *)
(* Split-phase broadcast                                               *)
(* ------------------------------------------------------------------ *)

(* The same binomial tree as {!broadcast}, cut at each node's receive:
   the issue half performs everything up to (and excluding) the blocking
   receive — the root sends to all its children, every other node posts
   a nonblocking receive on its parent — and the wait half completes the
   receive and forwards to the node's own children.  Message count,
   peers and per-channel send order are identical to the blocking tree;
   only the charging of receive latency moves. *)

(* In virtual-rank space (vr = rank rotated so the root is 0), node [vr]
   receives from [vr] with its top bit cleared and sends to [vr + k] for
   each power of two k above its top bit (every k for the root), in
   ascending order — read off the mask loop of {!broadcast}. *)
let bcast_children ~vr ~m =
  let rec above k = if vr < k then k else above (2 * k) in
  let rec go k acc = if vr + k >= m then List.rev acc else go (2 * k) ((vr + k) :: acc) in
  go (above 1) []

let bcast_parent ~vr =
  let rec top k = if 2 * k <= vr then top (2 * k) else k in
  vr - top 1

type bcast_pending = {
  bp_team : team;
  bp_root : int;
  bp_vr : int;
  bp_tag : int;  (* instance tag: concurrent trees must not share a channel *)
  bp_payload : Message.payload option;  (* Some on the root *)
  bp_handle : Engine.handle option;  (* Some everywhere else *)
}

(* Unlike the blocking tree, several split-phase broadcasts can be in
   flight at once, and two trees can give a node the same parent — FIFO
   matching on a shared (source, tag) channel would then cross-deliver
   payloads between trees.  Each instance gets its own tag inside the
   broadcast hundreds-family (so profiles still classify it), from the
   replicated SPMD sequence counter. *)
let split_bcast_tag ctx = Tags.broadcast + 1 + (Rctx.next_split_seq ctx mod 99)

let broadcast_issue ctx team ~root payload =
  spanned ctx "broadcast-issue" ~bytes_of:(fun () -> Message.payload_bytes payload)
  @@ fun () ->
  let m = Array.length team in
  let vr = Util.modulo (my_index ctx team - root) m in
  let tag = split_bcast_tag ctx in
  if vr = 0 then begin
    List.iter
      (fun c -> Rctx.send ctx ~dest:team.(Util.modulo (c + root) m) ~tag payload)
      (bcast_children ~vr ~m);
    { bp_team = team; bp_root = root; bp_vr = vr; bp_tag = tag; bp_payload = Some payload;
      bp_handle = None }
  end
  else begin
    let parent = bcast_parent ~vr in
    let h = Rctx.irecv ctx ~src:team.(Util.modulo (parent + root) m) ~tag in
    { bp_team = team; bp_root = root; bp_vr = vr; bp_tag = tag; bp_payload = None;
      bp_handle = Some h }
  end

let broadcast_wait ctx bp =
  match bp.bp_payload with
  | Some p -> p  (* the root kept its own copy; nothing to wait for *)
  | None ->
      let bytes = ref 0 in
      spanned ctx "broadcast-wait" ~bytes_of:(fun () -> !bytes) @@ fun () ->
      let h = match bp.bp_handle with Some h -> h | None -> Diag.bug "broadcast_wait: no handle" in
      let msg = Rctx.wait_recv ctx h in
      let p = msg.Message.payload in
      bytes := Message.payload_bytes p;
      let m = Array.length bp.bp_team in
      (* Forward to our own children as relays stamped at the message's
         arrival, not at the point the CPU reached the wait: the data
         cascades down the tree while every node is still computing, so
         the latency of the whole depth is hidden, not just the first
         hop.  The link serializes the per-child forwards. *)
      let link = ref msg.Message.arrival in
      List.iter
        (fun c ->
          link :=
            Rctx.relay ctx ~from_t:!link
              ~dest:bp.bp_team.(Util.modulo (c + bp.bp_root) m)
              ~tag:bp.bp_tag p)
        (bcast_children ~vr:bp.bp_vr ~m);
      p

let reduce ctx team ~root ~combine payload =
  spanned ctx "reduce" ~bytes_of:(fun () -> Message.payload_bytes payload) @@ fun () ->
  let m = Array.length team in
  let vr = Util.modulo (my_index ctx team - root) m in
  let acc = ref payload in
  let mask = ref 1 in
  let sent = ref false in
  while !mask < m && not !sent do
    let k = !mask in
    if vr mod (2 * k) = 0 then begin
      if vr + k < m then begin
        let msg = Rctx.recv ctx ~src:team.(Util.modulo (vr + k + root) m) ~tag:Tags.reduce in
        Rctx.charge_flops ctx (Message.payload_bytes msg.Message.payload / 8);
        acc := combine !acc msg.Message.payload
      end
    end
    else begin
      Rctx.send ctx ~dest:team.(Util.modulo (vr - k + root) m) ~tag:Tags.reduce !acc;
      sent := true
    end;
    mask := k * 2
  done;
  if vr = 0 then Some !acc else None

let allreduce ctx team ~combine payload =
  spanned ctx "allreduce" ~bytes_of:(fun () -> Message.payload_bytes payload) @@ fun () ->
  match reduce ctx team ~root:0 ~combine payload with
  | Some p -> broadcast ctx team ~root:0 p
  | None -> broadcast ctx team ~root:0 Message.Empty

let gather ctx team ~root payload =
  spanned ctx "gather" ~bytes_of:(fun () -> Message.payload_bytes payload) @@ fun () ->
  let m = Array.length team in
  let vr = Util.modulo (my_index ctx team - root) m in
  (* accumulate the segment [vr, vr + span) of team-ordered payloads *)
  let acc = ref [ payload ] in
  let mask = ref 1 in
  let sent = ref false in
  while !mask < m && not !sent do
    let k = !mask in
    if vr mod (2 * k) = 0 then begin
      if vr + k < m then begin
        let msg = Rctx.recv ctx ~src:team.(Util.modulo (vr + k + root) m) ~tag:Tags.gatherv in
        acc := !acc @ Message.list msg
      end
    end
    else begin
      Rctx.send ctx ~dest:team.(Util.modulo (vr - k + root) m) ~tag:Tags.gatherv (Message.List !acc);
      sent := true
    end;
    mask := k * 2
  done;
  if vr = 0 then begin
    (* accumulated in virtual-rank order; rotate back to team order *)
    let arr = Array.of_list !acc in
    Some (Array.init m (fun i -> arr.(Util.modulo (i - root) m)))
  end
  else None

let allgather ctx team payload =
  spanned ctx "allgather" ~bytes_of:(fun () -> Message.payload_bytes payload) @@ fun () ->
  match gather ctx team ~root:0 payload with
  | Some arr -> (
      match broadcast ctx team ~root:0 (Message.List (Array.to_list arr)) with
      | Message.List l -> Array.of_list l
      | _ -> Diag.bug "allgather: broadcast protocol error")
  | None -> (
      match broadcast ctx team ~root:0 Message.Empty with
      | Message.List l -> Array.of_list l
      | _ -> Diag.bug "allgather: broadcast protocol error")

let shift_edge ctx team ~delta payload =
  spanned ctx "shift_edge" ~bytes_of:(fun () -> Message.payload_bytes payload) @@ fun () ->
  let m = Array.length team in
  let vr = my_index ctx team in
  if delta = 0 then Some payload
  else begin
    let dest = vr + delta and src = vr - delta in
    (* post the send first (asynchronous), then receive *)
    if dest >= 0 && dest < m then Rctx.send ctx ~dest:team.(dest) ~tag:Tags.shift payload;
    if src >= 0 && src < m then
      Some (Rctx.recv ctx ~src:team.(src) ~tag:Tags.shift).Message.payload
    else None
  end

let shift_circular ctx team ~delta payload =
  spanned ctx "shift_circular" ~bytes_of:(fun () -> Message.payload_bytes payload) @@ fun () ->
  let m = Array.length team in
  let d = Util.modulo delta m in
  if d = 0 then payload
  else begin
    let vr = my_index ctx team in
    let dest = Util.modulo (vr + d) m and src = Util.modulo (vr - d) m in
    Rctx.send ctx ~dest:team.(dest) ~tag:Tags.shift payload;
    (Rctx.recv ctx ~src:team.(src) ~tag:Tags.shift).Message.payload
  end

let barrier ctx team =
  spanned ctx "barrier" ~bytes_of:(fun () -> 0) @@ fun () ->
  ignore (allreduce ctx team ~combine:(fun _ _ -> Message.Empty) Message.Empty)
