open F90d_base
open F90d_machine

type segment = { peer : int; positions : int array }

type t = {
  out_segs : segment list;  (* positions into the source buffer, per peer *)
  in_segs : segment list;  (* positions into the destination buffer, per peer *)
  self_src : int array;
  self_dst : int array;
  tmp_size : int;
}

(* Group (owner, remote_flat) pairs by owner in grid-rank order, keeping the
   original (iteration) order inside each group.  [pos_of] selects whether
   a pair contributes its sequence position or its remote flat index. *)
let group_by_peer ctx pairs ~pos_of =
  let p = Rctx.nprocs ctx in
  let buckets = Array.make p [] in
  Array.iteri
    (fun seq (owner, flat) -> buckets.(owner) <- pos_of seq flat :: buckets.(owner))
    pairs;
  let segs = ref [] in
  for peer = p - 1 downto 0 do
    match buckets.(peer) with
    | [] -> ()
    | l -> segs := { peer; positions = Array.of_list (List.rev l) } :: !segs
  done;
  !segs

let seq_pos seq _flat = seq

(* Preprocessing-loop cost: a few index operations per element inspected. *)
let charge_inspector ctx n = Rctx.charge_iops ctx (3 * n)

(* Inspector builds and executor exchanges as named trace spans (no-ops
   when tracing is off). *)
let spanned ctx name ~cat ~bytes_of f =
  let tr = Rctx.trace ctx in
  if not (F90d_trace.Trace.enabled tr) then f ()
  else begin
    F90d_trace.Trace.span_begin tr ~t:(Rctx.time ctx) name ~cat;
    let r = f () in
    F90d_trace.Trace.span_end tr ~t:(Rctx.time ctx) ~bytes:(bytes_of r);
    r
  end

let sched_bytes elem s =
  let seg_positions segs = List.fold_left (fun acc g -> acc + Array.length g.positions) 0 segs in
  elem * (seg_positions s.out_segs + seg_positions s.in_segs + Array.length s.self_src)

let split_self ctx segs =
  let me = Rctx.me ctx in
  let self = List.find_opt (fun s -> s.peer = me) segs in
  (List.filter (fun s -> s.peer <> me) segs, match self with Some s -> s.positions | None -> [||])

let build_read_local ctx ~needs ~peer_needs =
  spanned ctx "inspector:read_local" ~cat:"inspector" ~bytes_of:(fun _ -> 0) @@ fun () ->
  charge_inspector ctx (Array.length needs);
  let me = Rctx.me ctx in
  let in_all = group_by_peer ctx needs ~pos_of:seq_pos in
  let in_segs, self_dst = split_self ctx in_all in
  let self_src =
    Array.of_seq
      (Seq.filter_map
         (fun (owner, flat) -> if owner = me then Some flat else None)
         (Array.to_seq needs))
  in
  (* the send side is computed locally from the inverted subscript *)
  let out_segs = ref [] in
  for peer = Rctx.nprocs ctx - 1 downto 0 do
    if peer <> me then begin
      let theirs = peer_needs peer in
      let mine =
        Array.to_seq theirs
        |> Seq.filter_map (fun (owner, flat) -> if owner = me then Some flat else None)
        |> Array.of_seq
      in
      if Array.length mine > 0 then out_segs := { peer; positions = mine } :: !out_segs
    end
  done;
  { out_segs = !out_segs; in_segs; self_src; self_dst; tmp_size = Array.length needs }

(* Exchange index lists with every peer: I tell each peer which of its flat
   positions I need (or will write); each peer's reply order defines the
   packing order on its side. *)
let exchange_index_lists ctx ~mine_for =
  let me = Rctx.me ctx and p = Rctx.nprocs ctx in
  for peer = 0 to p - 1 do
    if peer <> me then Rctx.send ctx ~dest:peer ~tag:Tags.schedule_indices (Message.Ints (mine_for peer))
  done;
  let incoming = Array.make p [||] in
  for peer = 0 to p - 1 do
    if peer <> me then incoming.(peer) <- Message.ints (Rctx.recv ctx ~src:peer ~tag:Tags.schedule_indices)
  done;
  incoming

let segs_of_incoming incoming =
  let segs = ref [] in
  for peer = Array.length incoming - 1 downto 0 do
    if Array.length incoming.(peer) > 0 then
      segs := { peer; positions = incoming.(peer) } :: !segs
  done;
  !segs

let remote_flats_for pairs peer =
  Array.to_seq pairs
  |> Seq.filter_map (fun (owner, flat) -> if owner = peer then Some flat else None)
  |> Array.of_seq

let build_read_comm ctx ~needs =
  spanned ctx "inspector:read_comm" ~cat:"inspector" ~bytes_of:(fun _ -> 0) @@ fun () ->
  charge_inspector ctx (Array.length needs);
  let me = Rctx.me ctx in
  let in_all = group_by_peer ctx needs ~pos_of:seq_pos in
  let in_segs, self_dst = split_self ctx in_all in
  let self_src = remote_flats_for needs me in
  let incoming = exchange_index_lists ctx ~mine_for:(remote_flats_for needs) in
  { out_segs = segs_of_incoming incoming; in_segs; self_src; self_dst; tmp_size = Array.length needs }

let build_write_local ctx ~writes ~peer_writes =
  spanned ctx "inspector:write_local" ~cat:"inspector" ~bytes_of:(fun _ -> 0) @@ fun () ->
  charge_inspector ctx (Array.length writes);
  let me = Rctx.me ctx in
  let out_all = group_by_peer ctx writes ~pos_of:seq_pos in
  let out_segs, self_src = split_self ctx out_all in
  let self_dst = remote_flats_for writes me in
  let in_segs = ref [] in
  for peer = Rctx.nprocs ctx - 1 downto 0 do
    if peer <> me then begin
      let theirs = remote_flats_for (peer_writes peer) me in
      if Array.length theirs > 0 then in_segs := { peer; positions = theirs } :: !in_segs
    end
  done;
  { out_segs; in_segs = !in_segs; self_src; self_dst; tmp_size = Array.length writes }

let build_write_comm ctx ~writes =
  spanned ctx "inspector:write_comm" ~cat:"inspector" ~bytes_of:(fun _ -> 0) @@ fun () ->
  charge_inspector ctx (Array.length writes);
  let me = Rctx.me ctx in
  let out_all = group_by_peer ctx writes ~pos_of:seq_pos in
  let out_segs, self_src = split_self ctx out_all in
  let self_dst = remote_flats_for writes me in
  let incoming = exchange_index_lists ctx ~mine_for:(remote_flats_for writes) in
  { out_segs; in_segs = segs_of_incoming incoming; self_src; self_dst; tmp_size = Array.length writes }

let pack ctx src positions =
  let out = Ndarray.gather_flat src positions in
  Rctx.charge_copy_bytes ctx (Ndarray.bytes out);
  out

let unpack ctx dst positions values =
  Ndarray.scatter_flat dst positions values;
  Rctx.charge_copy_bytes ctx (Ndarray.elem_bytes values * Array.length positions)

let exchange ctx sched ~src ~dst =
  spanned ctx "executor:exchange" ~cat:"executor"
    ~bytes_of:(fun _ -> sched_bytes (Ndarray.elem_bytes src) sched)
  @@ fun () ->
  List.iter
    (fun s -> Rctx.send ctx ~dest:s.peer ~tag:Tags.exec_data (Message.Arr (pack ctx src s.positions)))
    sched.out_segs;
  Ndarray.copy_flat ~src ~src_positions:sched.self_src ~dst ~dst_positions:sched.self_dst;
  Rctx.charge_copy_bytes ctx (Ndarray.elem_bytes src * Array.length sched.self_src);
  List.iter
    (fun s ->
      let msg = Rctx.recv ctx ~src:s.peer ~tag:Tags.exec_data in
      unpack ctx dst s.positions (Message.arr msg))
    sched.in_segs

let read ctx sched (darr : Darray.t) =
  let tmp = Ndarray.create (Darray.kind darr) [| sched.tmp_size |] in
  exchange ctx sched ~src:darr.Darray.local ~dst:tmp;
  tmp

let write ctx sched (darr : Darray.t) tmp =
  exchange ctx sched ~src:tmp ~dst:darr.Darray.local

(* ------------------------------------------------------------------ *)
(* Schedule reuse                                                      *)
(* ------------------------------------------------------------------ *)

(* The cache lives inside the processor context (one per rank per run):
   concurrent ranks never contend on it, and consecutive runs with
   different programs, distributions or machine sizes cannot observe each
   other's schedules.  Builds/hits are charged to the rank's statistics
   collector and show up merged in the run report. *)

type Rctx.cache_entry += Cached_schedule of t

(* ------------------------------------------------------------------ *)
(* (De)serialization for the cross-process schedule store               *)
(* ------------------------------------------------------------------ *)

(* A schedule is plain index data (peer ranks and buffer positions), so a
   hand-rolled little-endian binary layout is used instead of [Marshal]:
   the bytes are stable across compiler builds, which keeps the store's
   content digests meaningful, and a malformed blob can only raise
   [Corrupt] — never segfault the daemon. *)

exception Corrupt of string

let ser_int b n = Buffer.add_int64_le b (Int64.of_int n)

let ser_int_array b a =
  ser_int b (Array.length a);
  Array.iter (ser_int b) a

let ser_segs b segs =
  ser_int b (List.length segs);
  List.iter
    (fun s ->
      ser_int b s.peer;
      ser_int_array b s.positions)
    segs

let to_string t =
  let b = Buffer.create 256 in
  ser_segs b t.out_segs;
  ser_segs b t.in_segs;
  ser_int_array b t.self_src;
  ser_int_array b t.self_dst;
  ser_int b t.tmp_size;
  Buffer.contents b

let of_string s =
  let pos = ref 0 in
  let de_int () =
    if !pos + 8 > String.length s then raise (Corrupt "schedule blob truncated");
    let n = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    n
  in
  let de_len what =
    let n = de_int () in
    if n < 0 || n > String.length s then raise (Corrupt ("bad " ^ what ^ " length"));
    n
  in
  let de_int_array what = Array.init (de_len what) (fun _ -> de_int ()) in
  let de_segs what =
    List.init (de_len what) (fun _ ->
        let peer = de_int () in
        { peer; positions = de_int_array (what ^ " positions") })
  in
  let out_segs = de_segs "out_segs" in
  let in_segs = de_segs "in_segs" in
  let self_src = de_int_array "self_src" in
  let self_dst = de_int_array "self_dst" in
  let tmp_size = de_int () in
  if !pos <> String.length s then raise (Corrupt "trailing bytes in schedule blob");
  { out_segs; in_segs; self_src; self_dst; tmp_size }

let export ctx =
  Rctx.cache_fold ctx
    (fun key entry acc ->
      match entry with Cached_schedule s -> (key, to_string s) :: acc | _ -> acc)
    []
  |> List.sort compare

let preload ctx entries =
  List.iter (fun (key, blob) -> Rctx.cache_store ctx key (Cached_schedule (of_string blob))) entries

let cached ctx ~key builder =
  let tr = Rctx.trace ctx in
  match Rctx.cache_find ctx key with
  | Some (Cached_schedule s) ->
      Stats.record_sched_hit (Engine.rank_stats (Rctx.engine ctx));
      if F90d_trace.Trace.enabled tr then
        F90d_trace.Trace.mark tr ~t:(Rctx.time ctx) ("schedule hit " ^ key) ~cat:"schedule";
      s
  | _ ->
      Stats.record_sched_build (Engine.rank_stats (Rctx.engine ctx));
      if F90d_trace.Trace.enabled tr then
        F90d_trace.Trace.mark tr ~t:(Rctx.time ctx) ("schedule build " ^ key) ~cat:"schedule";
      let s = builder () in
      Rctx.cache_store ctx key (Cached_schedule s);
      s
