(** The collective communication library (§5 of the paper).

    Every routine is collective over a {e team} — an ordered set of grid
    ranks, typically a grid row/column ({!team_along}) or the whole grid
    ({!team_all}) — and must be called by every member in the same program
    order.  All routines are built exclusively on the simulated machine's
    point-to-point send/receive, mirroring the paper's library-on-Express
    portability layer (§8.1).

    Tree-shaped operations (broadcast, reduce, gather) use binomial trees,
    giving the O(log P) behaviour the paper cites for its broadcast. *)

open F90d_machine

type team = int array
(** Grid ranks in team order. *)

val team_all : Rctx.t -> team
val team_along : Rctx.t -> dim:int -> team
(** The grid row/column through this processor along grid dimension
    [dim].  Both teams are memoized per rank context (the grid is fixed
    for a run), so repeated collectives do not reallocate O(P) arrays;
    callers must treat the returned array as read-only. *)

val index_in : team -> int -> int
(** Position of a grid rank in a team; fails if absent.  O(1) on
    identity teams ({!team_all}, any 1-D grid row). *)

val transfer : Rctx.t -> team -> src:int -> dest:int -> Message.payload option -> Message.payload option
(** Single source to single destination (team indices).  The source passes
    [Some p]; everyone else passes [None]; the destination receives
    [Some p], everyone else [None].  Self-transfer charges a local copy. *)

val broadcast : Rctx.t -> team -> root:int -> Message.payload -> Message.payload
(** Binomial-tree multicast from team index [root]; only the root's
    [payload] argument is meaningful. *)

type bcast_pending
(** A split-phase broadcast in flight (see {!broadcast_issue}). *)

val broadcast_issue : Rctx.t -> team -> root:int -> Message.payload -> bcast_pending
(** The nonblocking half of {!broadcast}: the root sends to its binomial
    children immediately, every other team member posts a receive on its
    tree parent.  Peers, message count and per-channel send order are
    identical to the blocking tree.  Collective — every team member must
    call it, and must later complete it with {!broadcast_wait} (in the
    same relative order when several are in flight). *)

val broadcast_wait : Rctx.t -> bcast_pending -> Message.payload
(** Complete a split broadcast: block for the parent's message (latency
    since the issue is accounted as hidden), forward to this node's own
    children, and return the payload. *)

val reduce :
  Rctx.t ->
  team ->
  root:int ->
  combine:(Message.payload -> Message.payload -> Message.payload) ->
  Message.payload ->
  Message.payload option
(** Binomial-tree reduction to [root] ([Some] there, [None] elsewhere).
    [combine] must be associative; combination cost is charged as flops
    proportional to the payload size. *)

val allreduce :
  Rctx.t ->
  team ->
  combine:(Message.payload -> Message.payload -> Message.payload) ->
  Message.payload ->
  Message.payload

val gather : Rctx.t -> team -> root:int -> Message.payload -> Message.payload array option
(** Team-ordered payloads at the root. *)

val allgather : Rctx.t -> team -> Message.payload -> Message.payload array
(** The paper's {e concatenation} primitive: the result ends up on all
    team members. *)

val shift_edge : Rctx.t -> team -> delta:int -> Message.payload -> Message.payload option
(** Send to team index [i+delta], receive from [i-delta]; ends of the team
    send/receive nothing ([None] = nothing arrived) — EOSHIFT's pattern. *)

val shift_circular : Rctx.t -> team -> delta:int -> Message.payload -> Message.payload
(** Circular shift (CSHIFT's pattern).  [delta] may be negative or exceed
    the team size. *)

val barrier : Rctx.t -> team -> unit
