open F90d_base
open F90d_dist
open F90d_machine

type cache_entry = ..

type kcfg = { kc_blocked : bool; kc_block : int }

(* Block size for the tiled DGEMM kernels; overridable per-process for
   cache-geometry experiments.  Parsed once — the env is not re-read
   between runs. *)
let default_block =
  match Sys.getenv_opt "F90D_BLOCK" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some b when b > 0 -> b | _ -> 64)
  | None -> 64

let default_kcfg = { kc_blocked = true; kc_block = default_block }

type t = {
  eng : Engine.ctx;
  grid : Grid.t;
  sched_cache : (string, cache_entry) Hashtbl.t;
  versions : (string, int) Hashtbl.t;
  mutable split_seq : int;
  kcfg : kcfg;
}

let make ?(kcfg = default_kcfg) eng grid =
  if Grid.size grid <> Engine.nprocs eng then
    Diag.bug "rctx: grid size %d does not cover the machine (%d nodes)" (Grid.size grid)
      (Engine.nprocs eng);
  {
    eng;
    grid;
    sched_cache = Hashtbl.create 16;
    versions = Hashtbl.create 16;
    split_seq = 0;
    kcfg;
  }

let kernel_cfg t = t.kcfg

let engine t = t.eng
let grid t = t.grid
let me t = Grid.rank_of_phys t.grid (Engine.rank t.eng)
let nprocs t = Grid.size t.grid
let my_coords t = Grid.coords_of_rank t.grid (me t)
let time t = Engine.time t.eng

let cache_find t key = Hashtbl.find_opt t.sched_cache key
let cache_store t key entry = Hashtbl.replace t.sched_cache key entry
let cache_fold t f acc = Hashtbl.fold f t.sched_cache acc
let version t key = Option.value (Hashtbl.find_opt t.versions key) ~default:0
let bump_version t key = Hashtbl.replace t.versions key (version t key + 1)
let trace t = Engine.trace t.eng
let set_stmt t ~sid ~loc = Engine.set_stmt t.eng ~sid ~loc
let current_stmt t = Engine.current_stmt t.eng

let send ?parts t ~dest ~tag payload =
  Engine.send ?parts t.eng ~dest:(Grid.phys_of_rank t.grid dest) ~tag payload

let recv t ~src ~tag = Engine.recv t.eng ~src:(Grid.phys_of_rank t.grid src) ~tag

(* Split-phase receive: the logical->physical rank translation happens at
   issue time, so a handle is engine-level and valid regardless of later
   grid lookups. *)
let irecv t ~src ~tag = Engine.irecv t.eng ~src:(Grid.phys_of_rank t.grid src) ~tag
let wait_recv t h = Engine.wait t.eng h

(* Several split-phase collectives can be in flight at once, and their
   trees may share a (source, tag) channel — FIFO matching would then
   cross-deliver between trees.  Every rank executes the same sequence
   of collective calls (SPMD), so a per-rank counter yields the same
   instance number on all ranks with no extra messages. *)
let next_split_seq t =
  t.split_seq <- t.split_seq + 1;
  t.split_seq

let relay t ~from_t ~dest ~tag payload =
  Engine.relay t.eng ~from_t ~dest:(Grid.phys_of_rank t.grid dest) ~tag payload

let charge_flops t n = Engine.charge_flops t.eng n
let charge_iops t n = Engine.charge_iops t.eng n
let charge_copy_bytes t n = Engine.charge_copy_bytes t.eng n
