open F90d_base
open F90d_dist
open F90d_machine

type cache_entry = ..

type t = {
  eng : Engine.ctx;
  grid : Grid.t;
  sched_cache : (string, cache_entry) Hashtbl.t;
  versions : (string, int) Hashtbl.t;
}

let make eng grid =
  if Grid.size grid <> Engine.nprocs eng then
    Diag.bug "rctx: grid size %d does not cover the machine (%d nodes)" (Grid.size grid)
      (Engine.nprocs eng);
  { eng; grid; sched_cache = Hashtbl.create 16; versions = Hashtbl.create 16 }

let engine t = t.eng
let grid t = t.grid
let me t = Grid.rank_of_phys t.grid (Engine.rank t.eng)
let nprocs t = Grid.size t.grid
let my_coords t = Grid.coords_of_rank t.grid (me t)
let time t = Engine.time t.eng

let cache_find t key = Hashtbl.find_opt t.sched_cache key
let cache_store t key entry = Hashtbl.replace t.sched_cache key entry
let version t key = Option.value (Hashtbl.find_opt t.versions key) ~default:0
let bump_version t key = Hashtbl.replace t.versions key (version t key + 1)
let trace t = Engine.trace t.eng
let set_stmt t ~sid ~loc = Engine.set_stmt t.eng ~sid ~loc
let current_stmt t = Engine.current_stmt t.eng

let send ?parts t ~dest ~tag payload =
  Engine.send ?parts t.eng ~dest:(Grid.phys_of_rank t.grid dest) ~tag payload

let recv t ~src ~tag = Engine.recv t.eng ~src:(Grid.phys_of_rank t.grid src) ~tag

let charge_flops t n = Engine.charge_flops t.eng n
let charge_iops t n = Engine.charge_iops t.eng n
let charge_copy_bytes t n = Engine.charge_copy_bytes t.eng n
