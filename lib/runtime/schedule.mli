(** PARTI-style communication schedules (§5.3.2).

    A schedule records, per peer, which buffer positions to pack into a
    single vectorized message and where incoming values land — the
    inspector half of the inspector/executor model.  Data always moves in
    one message per communicating pair, which is the paper's message
    vectorization optimization.

    Two build families mirror the paper's two kinds of preprocessing:

    - {e local} builds (schedule1 of precomp_read / postcomp_write): both
      sides of every exchange are computed without communication, from an
      invertible subscript.  The caller supplies a closure able to
      enumerate any peer's needs/writes (cheap local arithmetic).
    - {e communicating} builds (schedule2/schedule3 of gather / scatter):
      only one side is locally known; index lists are exchanged during
      scheduling (the fan-in the paper describes).

    [needs]/[writes] pair each tmp-buffer position (in iteration order)
    with [(owner grid rank, flat storage position on the owner)]. *)

type t

val build_read_local :
  Rctx.t -> needs:(int * int) array -> peer_needs:(int -> (int * int) array) -> t
(** schedule1 for precomp_read. *)

val build_read_comm : Rctx.t -> needs:(int * int) array -> t
(** schedule2 for gather. *)

val build_write_local :
  Rctx.t -> writes:(int * int) array -> peer_writes:(int -> (int * int) array) -> t
(** schedule1 for postcomp_write. *)

val build_write_comm : Rctx.t -> writes:(int * int) array -> t
(** schedule3 for scatter. *)

val read : Rctx.t -> t -> Darray.t -> F90d_base.Ndarray.t
(** Executor: fetch every needed element into a flat tmp buffer ordered
    like [needs]. *)

val write : Rctx.t -> t -> Darray.t -> F90d_base.Ndarray.t -> unit
(** Executor: store tmp values (ordered like [writes]) into their owners'
    local sections. *)

(** {2 Schedule reuse (§7, optimization 3)} *)

val cached : Rctx.t -> key:string -> (unit -> t) -> t
(** Returns the cached schedule for [key] on this processor, building it
    once per run (the cache lives in the {!Rctx.t}, so runs and ranks are
    isolated).  The compiler emits stable keys for reusable inspectors.
    Builds and hits are recorded in the processor's {!F90d_machine.Stats}
    collector and appear as [sched_builds]/[sched_hits] in the run
    report. *)
