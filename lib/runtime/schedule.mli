(** PARTI-style communication schedules (§5.3.2).

    A schedule records, per peer, which buffer positions to pack into a
    single vectorized message and where incoming values land — the
    inspector half of the inspector/executor model.  Data always moves in
    one message per communicating pair, which is the paper's message
    vectorization optimization.

    Two build families mirror the paper's two kinds of preprocessing:

    - {e local} builds (schedule1 of precomp_read / postcomp_write): both
      sides of every exchange are computed without communication, from an
      invertible subscript.  The caller supplies a closure able to
      enumerate any peer's needs/writes (cheap local arithmetic).
    - {e communicating} builds (schedule2/schedule3 of gather / scatter):
      only one side is locally known; index lists are exchanged during
      scheduling (the fan-in the paper describes).

    [needs]/[writes] pair each tmp-buffer position (in iteration order)
    with [(owner grid rank, flat storage position on the owner)]. *)

type t

val build_read_local :
  Rctx.t -> needs:(int * int) array -> peer_needs:(int -> (int * int) array) -> t
(** schedule1 for precomp_read. *)

val build_read_comm : Rctx.t -> needs:(int * int) array -> t
(** schedule2 for gather. *)

val build_write_local :
  Rctx.t -> writes:(int * int) array -> peer_writes:(int -> (int * int) array) -> t
(** schedule1 for postcomp_write. *)

val build_write_comm : Rctx.t -> writes:(int * int) array -> t
(** schedule3 for scatter. *)

val read : Rctx.t -> t -> Darray.t -> F90d_base.Ndarray.t
(** Executor: fetch every needed element into a flat tmp buffer ordered
    like [needs]. *)

val write : Rctx.t -> t -> Darray.t -> F90d_base.Ndarray.t -> unit
(** Executor: store tmp values (ordered like [writes]) into their owners'
    local sections. *)

(** {2 Schedule reuse (§7, optimization 3)} *)

val cached : Rctx.t -> key:string -> (unit -> t) -> t
(** Returns the cached schedule for [key] on this processor, building it
    once per run (the cache lives in the {!Rctx.t}, so runs and ranks are
    isolated).  The compiler emits stable keys for reusable inspectors.
    Builds and hits are recorded in the processor's {!F90d_machine.Stats}
    collector and appear as [sched_builds]/[sched_hits] in the run
    report. *)

(** {2 Cross-process persistence}

    Schedules are pure index data, so a rank's cache can be exported at
    the end of a run and preloaded into a fresh {!Rctx.t} before the
    next run of the {e same} (program, distribution, machine size) —
    the deterministic SPMD replay then generates the same key sequence
    on every rank, each lookup hits, and the inspector (including its
    index-list exchange messages) is skipped.  Preloading must be
    all-or-nothing across ranks: a rank that rebuilds while its peers
    hit would wait for index lists nobody sends. *)

exception Corrupt of string
(** Raised by {!of_string} on a malformed blob (truncated, negative
    lengths, trailing bytes).  Store layers turn this into a cache-miss
    plus rebuild, never a crash. *)

val to_string : t -> string
(** Stable little-endian binary encoding (no [Marshal]: blobs survive
    compiler rebuilds and digest checks stay meaningful). *)

val of_string : string -> t
(** Inverse of {!to_string}; raises {!Corrupt} on malformed input. *)

val export : Rctx.t -> (string * string) list
(** This rank's cached schedules as [(key, to_string blob)] pairs,
    sorted by key (deterministic across engines). *)

val preload : Rctx.t -> (string * string) list -> unit
(** Seed a fresh context's cache; subsequent {!cached} lookups on these
    keys record hits, so a fully warm run reports [sched_builds = 0].
    Raises {!Corrupt} on a bad blob. *)
