(** Structured communication primitives (§5.1, Table 1).

    All primitives are collective over the processor-grid dimension that
    the named array dimension is distributed on; every grid processor must
    call them in the same program order (inactive processors participate
    with empty roles).  Results are {e temporaries} shaped like this
    processor's owned box of the array, with broadcast/transferred
    dimensions collapsed to extent 1; the generated loop indexes them with
    its local loop indices.

    Global indices ([g], [gsrc], ...) are 0-based positions in the array
    dimension (the caller converts from Fortran indices). *)

open F90d_base

val multicast : Rctx.t -> Darray.t -> dim:int -> g:int -> Ndarray.t
(** Broadcast the slice [dim = g] from its owner along the grid dimension:
    result has extent 1 in [dim], the owned box elsewhere. *)

val multicast_issue : Rctx.t -> Darray.t -> dim:int -> g:int -> Collectives.bcast_pending
(** Nonblocking half of {!multicast}: the owner gathers its slab — the
    data in flight is the source {e as of the issue point} — and starts
    the broadcast tree; everyone else posts a receive.  Collective; must
    be completed with {!multicast_wait} before the result is read. *)

val multicast_wait : Rctx.t -> Collectives.bcast_pending -> Ndarray.t
(** Complete a {!multicast_issue}: the latency since the issue is
    accounted as hidden rather than charged as blocking wait. *)

val transfer : Rctx.t -> Darray.t -> dim:int -> gsrc:int -> gdest:int -> Ndarray.t option
(** One-to-one: processors owning [gsrc] send the slice to those owning
    [gdest] (pointwise along the other grid dimensions).  [Some slab] on
    receivers, [None] elsewhere. *)

val overlap_shift : Rctx.t -> Darray.t -> dim:int -> amount:int -> unit
(** Shift boundary slices into ghost cells in place ([amount > 0] fetches
    from the next coordinate).  Requires a BLOCK-contiguous layout and
    ghost widths of at least [|amount|] — the compiler guarantees both. *)

val exchange_wants :
  Rctx.t -> Darray.t -> dim:int -> wants:(int -> int array) -> Ndarray.t
(** Generic exchange along the grid dimension of [dim]: coordinate [c]
    receives the slices for global dim-indices [wants c] (in that order;
    out-of-range entries are left zero).  The want-function is common
    knowledge, so both sides of every pair are derived locally and data
    moves in one vectorized message per pair.  Building block of
    {!temporary_shift} and of CSHIFT/EOSHIFT. *)

val temporary_shift : Rctx.t -> Darray.t -> dim:int -> amount:int -> Ndarray.t
(** General shift into a temporary: position [l] along [dim] holds the
    value of global index [g_l + amount] (zero when outside the array;
    the loop bounds never read those).  Works for any distribution and
    shift amount; one vectorized message per communicating pair. *)

val multicast_shift :
  Rctx.t -> Darray.t -> mdim:int -> g:int -> sdim:int -> amount:int -> Ndarray.t
(** Fused multicast + shift (§5.3.1, example 3): the owner row performs the
    shift among itself, then broadcasts — saving the temporary copies and
    message unpacking of running the two primitives over the full grid. *)

val concat : Rctx.t -> Darray.t -> Ndarray.t
(** The concatenation primitive: the full global array, replicated. *)

(** {2 Coalesced batches}

    Batched variants pack every member slab bound for the same rank pair
    into one [Message.List] (member order), charging one latency per
    pair instead of one per member.  Members carry the sid of the
    statement whose traffic they perform; each packed send is traced
    with the per-member (sid, bytes) split. *)

val overlap_shift_batch : Rctx.t -> (Darray.t * int * int * int) list -> unit
(** Members are [(darr, dim, amount, sid)]; semantics of each member are
    exactly {!overlap_shift}.  Arrays may have different distributions —
    pair membership is derived per member from the layouts. *)

val transfer_batch : Rctx.t -> (Darray.t * int * int * int * int) list -> Ndarray.t option list
(** Members are [(darr, dim, gsrc, gdest, sid)]; returns each member's
    {!transfer} result in order. *)
