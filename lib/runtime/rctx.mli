(** Grid-aware processor context.

    The engine deals in physical node ids; the run-time system and the
    compiled node programs deal in logical grid ranks (stage 3 of the
    paper's mapping keeps them distinct).  An [Rctx.t] carries both the
    engine context and the grid, translating at every send/receive. *)

type t

type cache_entry = ..
(** Per-processor, per-run memo slot.  Each module that caches run-time
    state (e.g. {!Schedule}) extends this variant with its own
    constructor; keeping the table inside the context means concurrent
    ranks, and back-to-back runs with different programs or machine
    sizes, can never observe each other's entries. *)

type kcfg = { kc_blocked : bool; kc_block : int }
(** Node-kernel execution configuration: [kc_blocked] enables the
    blocked kernel layer ({!F90d_exec.Kernel} plan cache and the tiled
    intrinsics), [kc_block] is the DGEMM tile edge. *)

val default_kcfg : kcfg
(** Kernels on; block size from [F90D_BLOCK] (default 64). *)

val make : ?kcfg:kcfg -> F90d_machine.Engine.ctx -> F90d_dist.Grid.t -> t
(** The grid must exactly cover the machine ([Grid.size = nprocs]).  The
    context owns a fresh (empty) cache. *)

val kernel_cfg : t -> kcfg

val cache_find : t -> string -> cache_entry option
val cache_store : t -> string -> cache_entry -> unit

val cache_fold : t -> (string -> cache_entry -> 'a -> 'a) -> 'a -> 'a
(** Iterate the cache (order unspecified).  {!F90d_runtime.Schedule}
    uses this to export its entries for cross-process persistence. *)

val version : t -> string -> int
(** Monotonic write-version counter under a caller-chosen key (0 until the
    first {!bump_version}).  The interpreter bumps one counter per array
    assignment — identically on every rank, since every rank executes every
    statement — and stamps the current versions of a schedule's mutable
    inputs (index arrays) into its cache key, so reuse can never serve a
    schedule built from values that have since been overwritten. *)

val bump_version : t -> string -> unit

val trace : t -> F90d_trace.Trace.handle
(** This processor's trace recorder (no-op handle when tracing is off). *)

val set_stmt : t -> sid:int -> loc:F90d_base.Loc.t -> unit
(** Declare the statement about to execute (see
    {!F90d_machine.Engine.set_stmt}): stamps subsequent trace events and
    names the source line in deadlock diagnostics. *)

val current_stmt : t -> int * F90d_base.Loc.t

val engine : t -> F90d_machine.Engine.ctx
val grid : t -> F90d_dist.Grid.t

val me : t -> int
(** This processor's logical grid rank. *)

val nprocs : t -> int
val my_coords : t -> int array
val time : t -> float

val send :
  ?parts:(int * int) array -> t -> dest:int -> tag:int -> F90d_machine.Message.payload -> unit
(** [dest] is a grid rank.  [parts] is the traced per-member
    (sid, bytes) split of a coalesced batch message. *)

val recv : t -> src:int -> tag:int -> F90d_machine.Message.t

val irecv : t -> src:int -> tag:int -> F90d_machine.Engine.handle
(** Post a split-phase receive ([src] is a grid rank; the logical ->
    physical translation happens here, at issue time). *)

val wait_recv : t -> F90d_machine.Engine.handle -> F90d_machine.Message.t
(** Complete a receive posted with {!irecv}. *)

val next_split_seq : t -> int
(** Replicated instance number for a split-phase collective.  Every rank
    executes the same sequence of collective calls, so per-rank counting
    agrees machine-wide; the caller folds it into the tag so concurrent
    in-flight trees never share a (source, tag) channel. *)

val relay : t -> from_t:float -> dest:int -> tag:int -> F90d_machine.Message.payload -> float
(** {!F90d_machine.Engine.relay} with a grid-rank destination. *)

val charge_flops : t -> int -> unit
val charge_iops : t -> int -> unit
val charge_copy_bytes : t -> int -> unit
