open F90d_base
open F90d_dist
open F90d_machine

let table3_category name =
  match String.uppercase_ascii name with
  | "CSHIFT" | "EOSHIFT" -> Some "structured communication"
  | "DOTPRODUCT" | "DOT_PRODUCT" | "ALL" | "ANY" | "COUNT" | "MAXVAL" | "MINVAL" | "PRODUCT"
  | "SUM" | "MAXLOC" | "MINLOC" ->
      Some "reduction"
  | "SPREAD" -> Some "multicasting"
  | "PACK" | "UNPACK" | "RESHAPE" | "TRANSPOSE" -> Some "unstructured communication"
  | "MATMUL" -> Some "special routines"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Structured: CSHIFT / EOSHIFT                                        *)
(* ------------------------------------------------------------------ *)

let shifted_darray ctx (src : Darray.t) ~dim ~shift ~circular ~boundary =
  let dad = src.Darray.dad in
  let d = (Dad.dims dad).(dim) in
  let out = Darray.create ctx dad in
  (match d.Dad.pdim with
  | None ->
      (* dimension lives wholly on-processor: pure local movement *)
      let me = Rctx.me ctx in
      Darray.iter_owned out ~rank:me (fun g flat ->
          let sg = Array.copy g in
          let p = g.(dim) - d.Dad.flb + shift in
          let v =
            if circular then begin
              sg.(dim) <- d.Dad.flb + Util.modulo p d.Dad.extent;
              Option.get (Darray.get_local src ~rank:me sg)
            end
            else if p >= 0 && p < d.Dad.extent then begin
              sg.(dim) <- d.Dad.flb + p;
              Option.get (Darray.get_local src ~rank:me sg)
            end
            else boundary
          in
          Ndarray.set_flat out.Darray.local flat v);
      Rctx.charge_copy_bytes ctx (Darray.owned_count out ~rank:me * 8)
  | Some _ ->
      let wants c =
        let l = Dad.layout_at dad ~dim ~rank:(Collectives.team_along ctx ~dim:(Option.get d.Dad.pdim)).(c) in
        Array.init (Layout.count l) (fun i ->
            let g = Layout.global_of_local l i + shift in
            if circular then Util.modulo g d.Dad.extent else g)
      in
      let tmp = Structured.exchange_wants ctx src ~dim ~wants in
      (* tmp is the owned box in local order; positions that fell outside a
         non-circular shift keep zero and are overwritten with boundary *)
      let me = Rctx.me ctx in
      let lay = Dad.layout_at dad ~dim ~rank:me in
      Dad.iter_local dad ~rank:me (fun _ lidx ->
          let tmp_idx = Array.map (( + ) 1) lidx in
          let v =
            let p = Layout.global_of_local lay lidx.(dim) + shift in
            if (not circular) && (p < 0 || p >= d.Dad.extent) then boundary
            else Ndarray.get tmp tmp_idx
          in
          Ndarray.set out.Darray.local (Array.copy lidx) v));
  out

let cshift ctx src ~dim ~shift =
  shifted_darray ctx src ~dim ~shift ~circular:true ~boundary:(Scalar.zero (Darray.kind src))

let eoshift ctx src ~dim ~shift ~boundary =
  shifted_darray ctx src ~dim ~shift ~circular:false ~boundary

(* ------------------------------------------------------------------ *)
(* Reductions                                                          *)
(* ------------------------------------------------------------------ *)

(* Owned elements only; replicated dimensions would otherwise be counted
   once per processor holding them.  Processors owning a replicated copy
   contribute only when they hold grid coordinate 0 on the unused grid
   dimensions. *)
let is_contributor ctx (darr : Darray.t) =
  let dad = darr.Darray.dad in
  let used = Array.make (Grid.ndims (Dad.grid dad)) false in
  Array.iter
    (fun d -> match d.Dad.pdim with Some p -> used.(p) <- true | None -> ())
    (Dad.dims dad);
  let coords = Rctx.my_coords ctx in
  let ok = ref true in
  Array.iteri (fun i u -> if (not u) && coords.(i) <> 0 then ok := false) used;
  !ok

let local_fold ctx op (darr : Darray.t) =
  let me = Rctx.me ctx in
  let acc = ref (Redop.identity op (Darray.kind darr)) in
  (if is_contributor ctx darr then
     match ((Rctx.kernel_cfg ctx).Rctx.kc_blocked, op, darr.Darray.local.Ndarray.data) with
     | true, (Redop.Sum | Redop.Prod | Redop.Max | Redop.Min), Ndarray.Reals d ->
         (* unboxed fold in iteration order; MAX/MIN use [compare] like
            Scalar.max2/min2 (first operand wins ties), so the result is
            bit-identical to the Redop.scalar chain *)
         let f =
           match op with
           | Redop.Sum -> ( +. )
           | Redop.Prod -> ( *. )
           | Redop.Max -> fun (x : float) y -> if compare x y >= 0 then x else y
           | _ -> fun (x : float) y -> if compare x y <= 0 then x else y
         in
         let r = ref (Scalar.to_real !acc) in
         Darray.iter_owned darr ~rank:me (fun _ flat -> r := f !r (Array.unsafe_get d flat));
         acc := Scalar.Real !r
     | _ ->
         Darray.iter_owned darr ~rank:me (fun _ flat ->
             acc := Redop.scalar op !acc (Ndarray.get_flat darr.Darray.local flat)));
  Rctx.charge_flops ctx (Darray.owned_count darr ~rank:me);
  !acc

let reduce ctx op darr =
  let local = local_fold ctx op darr in
  let team = Collectives.team_all ctx in
  match
    Collectives.allreduce ctx team ~combine:(Redop.payload op) (Message.Scalar local)
  with
  | Message.Scalar v -> v
  | _ -> Diag.bug "reduce: protocol error"

let reduce_dim ctx op (src : Darray.t) ~dim ~dad =
  let me = Rctx.me ctx in
  let sdad = src.Darray.dad in
  let counts = Dad.local_counts sdad ~rank:me in
  (* local partial fold along [dim] into a slab of extent 1 *)
  let pextents = Array.copy counts in
  pextents.(dim) <- min 1 counts.(dim);
  let partial = Ndarray.create (Darray.kind src) (Array.map (max 1) pextents) in
  Ndarray.fill partial (Redop.identity op (Darray.kind src));
  Dad.iter_local sdad ~rank:me (fun _ lidx ->
      let p = Array.mapi (fun d l -> if d = dim then 1 else l + 1) lidx in
      let v = Ndarray.get src.Darray.local lidx in
      Ndarray.set partial p (Redop.scalar op (Ndarray.get partial p) v));
  Rctx.charge_flops ctx (Darray.owned_count src ~rank:me);
  (* combine partial slabs across the grid axis of the folded dimension *)
  let combined =
    match (Dad.dims sdad).(dim).Dad.pdim with
    | None -> partial
    | Some p -> (
        let team = Collectives.team_along ctx ~dim:p in
        match
          Collectives.allreduce ctx team ~combine:(Redop.payload op) (Message.Arr partial)
        with
        | Message.Arr a -> a
        | _ -> Diag.bug "reduce_dim: protocol error")
  in
  (* an intermediate descriptor: the source with [dim] collapsed *)
  let mid_dims =
    Array.mapi
      (fun d (sd : Dad.dim) ->
        if d = dim then Dad.replicated_dim ~flb:1 ~extent:1
        else
          {
            Dad.flb = sd.Dad.flb;
            extent = sd.Dad.extent;
            align = sd.Dad.align;
            dist = sd.Dad.dist;
            pdim = sd.Dad.pdim;
            ghost_lo = 0;
            ghost_hi = 0;
          })
      (Dad.dims sdad)
  in
  let mid_dad =
    Dad.make
      ~name:(Dad.name sdad ^ "#fold")
      ~kind:(Dad.kind sdad) ~grid:(Dad.grid sdad) mid_dims
  in
  let mid = Darray.create ctx mid_dad in
  let i = ref 0 in
  Darray.iter_owned mid ~rank:me (fun _ flat ->
      Ndarray.set_flat mid.Darray.local flat (Ndarray.get_flat combined !i);
      incr i);
  (* drop the folded dimension into the caller's descriptor *)
  let dst = Darray.create ctx dad in
  Redistribute.remap ctx ~dst ~src:mid ~f:(fun g ->
      let out = Array.make (Array.length g + 1) 1 in
      Array.iteri (fun d v -> out.(if d < dim then d else d + 1) <- v) g;
      out)
  |> fun () -> dst

let count ctx darr =
  let me = Rctx.me ctx in
  let c = ref 0 in
  if is_contributor ctx darr then
    Darray.iter_owned darr ~rank:me (fun _ flat ->
        if Scalar.to_bool (Ndarray.get_flat darr.Darray.local flat) then incr c);
  Rctx.charge_iops ctx (Darray.owned_count darr ~rank:me);
  let team = Collectives.team_all ctx in
  match
    Collectives.allreduce ctx team ~combine:(Redop.payload Redop.Sum) (Message.Scalar (Scalar.Int !c))
  with
  | Message.Scalar v -> v
  | _ -> Diag.bug "count: protocol error"

let same_layout (a : Darray.t) (b : Darray.t) =
  let da = Dad.dims a.Darray.dad and db = Dad.dims b.Darray.dad in
  Array.length da = Array.length db
  && Array.for_all2
       (fun x y ->
         x.Dad.extent = y.Dad.extent && x.Dad.pdim = y.Dad.pdim
         && x.Dad.dist.Distrib.form = y.Dad.dist.Distrib.form
         && Affine.equal x.Dad.align y.Dad.align)
       da db

(* After alignment b shares a's layout; when the ghost halos also agree
   the two locals are congruent and a's flat offsets index b directly. *)
let congruent_locals (a : Darray.t) (b : Darray.t) =
  let da = Dad.dims a.Darray.dad and db = Dad.dims b.Darray.dad in
  Array.length da = Array.length db
  && Array.for_all2
       (fun (x : Dad.dim) (y : Dad.dim) ->
         x.Dad.ghost_lo = y.Dad.ghost_lo && x.Dad.ghost_hi = y.Dad.ghost_hi)
       da db

let dotproduct ctx (a : Darray.t) (b : Darray.t) =
  let b = if same_layout a b then b else Redistribute.redistribute ctx b a.Darray.dad in
  let me = Rctx.me ctx in
  let acc = ref 0. in
  (if is_contributor ctx a then
     match ((Rctx.kernel_cfg ctx).Rctx.kc_blocked, a.Darray.local.Ndarray.data, b.Darray.local.Ndarray.data) with
     | true, Ndarray.Reals ad, Ndarray.Reals bd when congruent_locals a b ->
         Darray.iter_owned a ~rank:me (fun _ flat ->
             acc := !acc +. (Array.unsafe_get ad flat *. Array.unsafe_get bd flat))
     | _ ->
         Darray.iter_owned a ~rank:me (fun g flat ->
             let x = Scalar.to_real (Ndarray.get_flat a.Darray.local flat) in
             let y = Scalar.to_real (Option.get (Darray.get_local b ~rank:me g)) in
             acc := !acc +. (x *. y)));
  Rctx.charge_flops ctx (2 * Darray.owned_count a ~rank:me);
  let team = Collectives.team_all ctx in
  match
    Collectives.allreduce ctx team ~combine:(Redop.payload Redop.Sum)
      (Message.Scalar (Scalar.Real !acc))
  with
  | Message.Scalar v -> v
  | _ -> Diag.bug "dotproduct: protocol error"

(* Column-major flat position of a global Fortran index vector — the
   tie-breaking order for MAXLOC/MINLOC. *)
let global_flat (darr : Darray.t) g =
  let dims = Dad.dims darr.Darray.dad in
  let off = ref 0 and stride = ref 1 in
  Array.iteri
    (fun d gd ->
      off := !off + ((gd - dims.(d).Dad.flb) * !stride);
      stride := !stride * dims.(d).Dad.extent)
    g;
  !off

let loc_reduce ctx ~better ~combine (darr : Darray.t) =
  let me = Rctx.me ctx in
  let best = ref None in
  if is_contributor ctx darr then
    Darray.iter_owned darr ~rank:me (fun g flat ->
        let v = Ndarray.get_flat darr.Darray.local flat in
        match !best with
        | None -> best := Some (v, Array.copy g)
        | Some (bv, bg) ->
            if
              Scalar.to_bool (better v bv)
              || (Scalar.equal v bv && global_flat darr g < global_flat darr bg)
            then best := Some (v, Array.copy g));
  Rctx.charge_flops ctx (Darray.owned_count darr ~rank:me);
  let payload =
    match !best with
    | None -> Message.Empty
    | Some (v, g) -> Message.Pair (Message.Scalar v, Message.Ints g)
  in
  let team = Collectives.team_all ctx in
  match Collectives.allreduce ctx team ~combine payload with
  | Message.Pair (_, Message.Ints g) -> g
  | _ -> Diag.bug "maxloc/minloc: empty array"

(* combine with Fortran first-occurrence tie-breaking on the global flat
   position *)
let loc_combine darr better a b =
  match (a, b) with
  | Message.Empty, x | x, Message.Empty -> x
  | ( Message.Pair (Message.Scalar va, Message.Ints ga),
      Message.Pair (Message.Scalar vb, Message.Ints gb) ) ->
      if Scalar.to_bool (better vb va) then b
      else if Scalar.equal va vb && global_flat darr gb < global_flat darr ga then b
      else a
  | _ -> Diag.bug "maxloc/minloc: bad payload"

let maxloc ctx darr =
  loc_reduce ctx ~better:Scalar.cmp_gt ~combine:(loc_combine darr Scalar.cmp_gt) darr

let minloc ctx darr =
  loc_reduce ctx ~better:Scalar.cmp_lt ~combine:(loc_combine darr Scalar.cmp_lt) darr

(* ------------------------------------------------------------------ *)
(* Multicast / unstructured                                            *)
(* ------------------------------------------------------------------ *)

let spread ctx (src : Darray.t) ~dim ~dad =
  let dst = Darray.create ctx dad in
  Redistribute.remap ctx ~dst ~src ~f:(fun g ->
      (* drop the spread dimension *)
      Array.of_list (List.filteri (fun d _ -> d <> dim) (Array.to_list g)));
  dst

let transpose ctx (src : Darray.t) ~dad =
  let dst = Darray.create ctx dad in
  Redistribute.remap ctx ~dst ~src ~f:(fun g -> [| g.(1); g.(0) |]);
  dst

let reshape ctx (src : Darray.t) ~dad =
  let dst = Darray.create ctx dad in
  let src_dims = Dad.dims src.Darray.dad in
  let dst_dims = Dad.dims dad in
  if Dad.global_size dad <> Dad.global_size src.Darray.dad then
    Diag.bug "reshape: element counts differ";
  Redistribute.remap ctx ~dst ~src ~f:(fun g ->
      (* column-major element order in both shapes *)
      let flat = ref 0 and stride = ref 1 in
      Array.iteri
        (fun d gd ->
          flat := !flat + ((gd - dst_dims.(d).Dad.flb) * !stride);
          stride := !stride * dst_dims.(d).Dad.extent)
        g;
      let out = Array.make (Array.length src_dims) 0 in
      let r = ref !flat in
      Array.iteri
        (fun d sd ->
          out.(d) <- sd.Dad.flb + (!r mod sd.Dad.extent);
          r := !r / sd.Dad.extent)
        src_dims;
      out);
  dst

(* PACK needs a data-dependent mapping, so the mask positions are counted
   on a replicated copy first (the paper routes PACK through the
   unstructured executors too). *)
let pack ctx (src : Darray.t) ~mask ~dad =
  let gmask = Darray.gather_global ctx mask in
  let positions = ref [] and n = ref 0 in
  Ndarray.iteri gmask (fun idx v ->
      if Scalar.to_bool v then begin
        positions := Array.copy idx :: !positions;
        incr n
      end);
  let positions = Array.of_list (List.rev !positions) in
  Rctx.charge_iops ctx (Ndarray.size gmask);
  let dst = Darray.create ctx dad in
  let flb = (Dad.dims dad).(0).Dad.flb in
  let src_first = Array.map (fun d -> d.Dad.flb) (Dad.dims src.Darray.dad) in
  Redistribute.remap ctx ~dst ~src ~f:(fun g ->
      let i = g.(0) - flb in
      if i < Array.length positions then positions.(i) else src_first);
  (* zero-pad the tail beyond the packed count *)
  let me = Rctx.me ctx in
  Darray.iter_owned dst ~rank:me (fun g flat ->
      if g.(0) - flb >= !n then
        Ndarray.set_flat dst.Darray.local flat (Scalar.zero (Darray.kind dst)));
  (dst, !n)

let unpack ctx (vec : Darray.t) ~mask ~field =
  let gmask = Darray.gather_global ctx mask in
  let dst = Darray.create ctx field.Darray.dad in
  (* positions of .TRUE. cells in array-element order, mapped to vector indices *)
  let index_of = Hashtbl.create 64 in
  let n = ref 0 in
  Ndarray.iteri gmask (fun idx v ->
      if Scalar.to_bool v then begin
        Hashtbl.add index_of (Array.to_list idx) !n;
        incr n
      end);
  Rctx.charge_iops ctx (Ndarray.size gmask);
  let vlb = (Dad.dims vec.Darray.dad).(0).Dad.flb in
  (* first fill from field, then overwrite masked cells from the vector *)
  let me = Rctx.me ctx in
  Darray.iter_owned dst ~rank:me (fun g flat ->
      Ndarray.set_flat dst.Darray.local flat (Option.get (Darray.get_local field ~rank:me g)));
  let masked = Darray.create ctx field.Darray.dad in
  Redistribute.remap ctx ~dst:masked ~src:vec ~f:(fun g ->
      match Hashtbl.find_opt index_of (Array.to_list g) with
      | Some i -> [| vlb + i |]
      | None -> [| vlb |]);
  Darray.iter_owned dst ~rank:me (fun g flat ->
      if Scalar.to_bool (Ndarray.get gmask g) then
        Ndarray.set_flat dst.Darray.local flat (Option.get (Darray.get_local masked ~rank:me g)));
  dst

(* ------------------------------------------------------------------ *)
(* Special: MATMUL                                                     *)
(* ------------------------------------------------------------------ *)

(* Is this the SUMMA-friendly shape: C, A, B all 2-D with C(i,j), A(i,k)
   sharing the row mapping and B(k,j) sharing the column mapping, identity
   alignments?  Then the classic panel-broadcast algorithm applies. *)
let summa_compatible (a : Darray.t) (b : Darray.t) (cdad : Dad.t) =
  let dims d = Dad.dims d in
  let same (x : Dad.dim) (y : Dad.dim) =
    x.Dad.flb = y.Dad.flb && x.Dad.extent = y.Dad.extent && x.Dad.pdim = y.Dad.pdim
    && x.Dad.dist.Distrib.form = y.Dad.dist.Distrib.form
    && Affine.equal x.Dad.align y.Dad.align
  in
  Array.length (dims a.Darray.dad) = 2
  && Array.length (dims b.Darray.dad) = 2
  && Array.length (dims cdad) = 2
  && same (dims a.Darray.dad).(0) (dims cdad).(0)
  && same (dims b.Darray.dad).(1) (dims cdad).(1)
  && (dims a.Darray.dad).(1).Dad.pdim <> None
  && (dims b.Darray.dad).(0).Dad.pdim <> None
  && Array.for_all (fun (d : Dad.dim) -> Affine.is_identity d.Dad.align) (dims a.Darray.dad)
  && Array.for_all (fun (d : Dad.dim) -> Affine.is_identity d.Dad.align) (dims b.Darray.dad)

(* SUMMA: for every inner index k, the owners of A(:,k) broadcast their
   column piece along the grid rows and the owners of B(k,:) broadcast
   their row piece along the grid columns; everyone adds the outer
   product of the two slabs into its owned block of C.  Communication is
   O(K log P) slab broadcasts instead of replicating both operands. *)
let matmul_summa ctx (a : Darray.t) (b : Darray.t) ~dad =
  let me = Rctx.me ctx in
  let dst = Darray.create ctx dad in
  let inner = (Dad.dims a.Darray.dad).(1).Dad.extent in
  let crows = (Dad.local_counts dad ~rank:me).(0)
  and ccols = (Dad.local_counts dad ~rank:me).(1) in
  let acc = Array.make (crows * ccols) 0. in
  let kb = (Rctx.kernel_cfg ctx).Rctx.kc_blocked in
  for k0 = 0 to inner - 1 do
    let apanel = Structured.multicast ctx a ~dim:1 ~g:k0 in
    let bpanel = Structured.multicast ctx b ~dim:0 ~g:k0 in
    match (kb, apanel.Ndarray.data, bpanel.Ndarray.data) with
    | true, Ndarray.Reals ad, Ndarray.Reals bd
      when Ndarray.size apanel = crows && Ndarray.size bpanel = ccols
           && apanel.Ndarray.lb = [| 1; 1 |] && bpanel.Ndarray.lb = [| 1; 1 |] ->
        (* panels are dense slabs with one unit extent, so element (i,1)
           (resp. (1,j)) sits at flat i-1 (j-1) under either stride order;
           same j-outer/i-inner rank-1 update, minus the Scalar boxing *)
        for j = 0 to ccols - 1 do
          let bkj = Array.unsafe_get bd j in
          let jo = j * crows in
          for i = 0 to crows - 1 do
            Array.unsafe_set acc (jo + i)
              (Array.unsafe_get acc (jo + i) +. (Array.unsafe_get ad i *. bkj))
          done
        done
    | _ ->
        for j = 0 to ccols - 1 do
          let bkj = Scalar.to_real (Ndarray.get bpanel [| 1; j + 1 |]) in
          for i = 0 to crows - 1 do
            acc.((j * crows) + i) <-
              acc.((j * crows) + i)
              +. (Scalar.to_real (Ndarray.get apanel [| i + 1; 1 |]) *. bkj)
          done
        done
  done;
  Rctx.charge_flops ctx (2 * inner * crows * ccols);
  let i = ref 0 in
  Darray.iter_owned dst ~rank:me (fun _ flat ->
      (* iter_owned runs column-major over the local box, matching acc *)
      Ndarray.set_flat dst.Darray.local flat (Scalar.Real acc.(!i));
      incr i);
  dst

(* Fallback for arbitrary shapes/alignments: replicate both operands
   (tree-based gathers) and compute only the owned block. *)
let matmul_replicated ctx (a : Darray.t) (b : Darray.t) ~dad =
  let ga = Darray.gather_global ctx a and gb = Darray.gather_global ctx b in
  let inner = (Dad.dims a.Darray.dad).(1).Dad.extent in
  let a1 = (Dad.dims a.Darray.dad).(1).Dad.flb in
  let b0 = (Dad.dims b.Darray.dad).(0).Dad.flb in
  let dst = Darray.create ctx dad in
  let me = Rctx.me ctx in
  let kcfg = Rctx.kernel_cfg ctx in
  (match (kcfg.Rctx.kc_blocked, ga.Ndarray.data, gb.Ndarray.data) with
  | true, Ndarray.Reals gad, Ndarray.Reals gbd ->
      (* k-tiled DGEMM: the accumulator for every owned C(i,j) persists
         across tiles and the k tiles run in ascending order, so each
         element sees its contributions in exactly the scalar-loop order
         — bit-identical, but A panels and B rows stay cache-resident
         for a whole tile *)
      let sa = Ndarray.strides ga and sb = Ndarray.strides gb in
      let la = ga.Ndarray.lb and lb = gb.Ndarray.lb in
      let rows = ref [] in
      Darray.iter_owned dst ~rank:me (fun g flat -> rows := (g.(0), g.(1), flat) :: !rows);
      let items = Array.of_list (List.rev !rows) in
      let n = Array.length items in
      let acc = Array.make (max 1 n) 0. in
      let bs = max 1 kcfg.Rctx.kc_block in
      let k0 = ref 0 in
      while !k0 < inner do
        let khi = min inner (!k0 + bs) in
        for idx = 0 to n - 1 do
          let g0, g1, _ = Array.unsafe_get items idx in
          let abase = ((g0 - la.(0)) * sa.(0)) + ((a1 - la.(1)) * sa.(1)) in
          let bbase = ((b0 - lb.(0)) * sb.(0)) + ((g1 - lb.(1)) * sb.(1)) in
          let s = ref (Array.unsafe_get acc idx) in
          for k = !k0 to khi - 1 do
            s :=
              !s
              +. (Array.unsafe_get gad (abase + (k * sa.(1)))
                 *. Array.unsafe_get gbd (bbase + (k * sb.(0))))
          done;
          Array.unsafe_set acc idx !s
        done;
        k0 := !k0 + bs
      done;
      Array.iteri
        (fun idx (_, _, flat) -> Ndarray.set_flat dst.Darray.local flat (Scalar.Real acc.(idx)))
        items
  | _ ->
      Darray.iter_owned dst ~rank:me (fun g flat ->
          let acc = ref 0. in
          for k = 0 to inner - 1 do
            acc :=
              !acc
              +. Scalar.to_real (Ndarray.get ga [| g.(0); a1 + k |])
                 *. Scalar.to_real (Ndarray.get gb [| b0 + k; g.(1) |])
          done;
          Ndarray.set_flat dst.Darray.local flat (Scalar.Real !acc)));
  Rctx.charge_flops ctx (2 * inner * Darray.owned_count dst ~rank:me);
  dst

let matmul ctx (a : Darray.t) (b : Darray.t) ~dad =
  if summa_compatible a b dad then matmul_summa ctx a b ~dad
  else matmul_replicated ctx a b ~dad
