(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8), plus micro-benchmarks and optimization ablations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig5    -- one experiment:
       fig3 | fig5 | table4 | fig6 | table1 | table2 | table3
       ablation | dist | portability | serve | scale | micro

   Flags (after the experiment name):
     --json [PATH]   write machine-readable results to PATH (default
                     BENCH_<experiment>.json); supported for table4, fig5,
                     serve and scale
     --jobs N        verify and time the domain-parallel engine with N
                     worker domains (default: the F90D_JOBS environment
                     variable, else sequential only)
     --trace [PATH]  (table4 only) re-run the 16-PE Gaussian elimination
                     with tracing on and write a Chrome trace_event JSON
                     to PATH (default BENCH_table4_trace.json); load it in
                     chrome://tracing or https://ui.perfetto.dev
     --profile-json [PATH]
                     (table4 only) write the per-statement profile of the
                     same traced 16-PE run (messages, bytes, send busy,
                     recv wait, critical-path wire time, joined with the
                     compile-time communication decision) to PATH
                     (default BENCH_table4_profile.json)

   Problem sizes can be scaled down for quick runs:
     F90D_TABLE4_N=255 dune exec bench/main.exe -- table4
   (default 511; the paper's Table 4 uses 1023, which takes minutes of
   host time per engine pass) *)

open F90d
open F90d_machine

let table4_n =
  match Sys.getenv_opt "F90D_TABLE4_N" with Some s -> int_of_string s | None -> 511

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json): a minimal JSON value printer so    *)
(* perf numbers are trackable across commits without new dependencies.  *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec emit b indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        (* %.17g round-trips doubles, keeping "bit-identical" claims honest *)
        Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List vs ->
        let pad = String.make indent ' ' in
        Buffer.add_string b "[";
        List.iteri
          (fun k v ->
            Buffer.add_string b (if k = 0 then "\n" else ",\n");
            Buffer.add_string b (pad ^ "  ");
            emit b (indent + 2) v)
          vs;
        if vs <> [] then Buffer.add_string b ("\n" ^ pad);
        Buffer.add_string b "]"
    | Obj fields ->
        let pad = String.make indent ' ' in
        Buffer.add_string b "{";
        List.iteri
          (fun k (key, v) ->
            Buffer.add_string b (if k = 0 then "\n" else ",\n");
            Buffer.add_string b (pad ^ "  \"" ^ escape key ^ "\": ");
            emit b (indent + 2) v)
          fields;
        if fields <> [] then Buffer.add_string b ("\n" ^ pad);
        Buffer.add_string b "}"

  let write path v =
    let b = Buffer.create 4096 in
    emit b 0 v;
    Buffer.add_char b '\n';
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "\n[wrote %s]\n" path
end

(* ------------------------------------------------------------------ *)
(* Figure 5: Gaussian elimination on 16 nodes, iPSC/860 vs nCUBE/2     *)
(* ------------------------------------------------------------------ *)

let run_fig5 () =
  let sizes = [ 50; 100; 150; 200; 250; 300 ] in
  List.map
    (fun n ->
      let compiled = Driver.compile (Programs.gauss ~n) in
      let time model =
        (Driver.run ~collect_finals:false ~model ~topology:Topology.Hypercube ~nprocs:16
           compiled)
          .Driver.elapsed
      in
      (n, time Model.ipsc860, time Model.ncube2))
    sizes

let fig5 rows =
  section
    "Figure 5: compiler-generated Gaussian elimination on 16 nodes\n\
     (execution time in seconds vs problem size, N x (N+1) real)";
  Printf.printf "%8s  %12s  %12s  %8s\n" "N" "iPSC/860" "nCUBE/2" "ratio";
  List.iter
    (fun (n, ti, tn) -> Printf.printf "%8d  %12.3f  %12.3f  %8.2f\n%!" n ti tn (tn /. ti))
    rows;
  print_newline ();
  Printf.printf
    "paper's shape: both curves grow ~N^3; nCUBE/2 roughly 2x slower than\n\
     iPSC/860 over the whole range.\n"

(* ------------------------------------------------------------------ *)
(* Table 4: hand-written vs compiler-generated                         *)
(* ------------------------------------------------------------------ *)

let paper_hand = [ (1, 623.16); (2, 446.60); (4, 235.37); (8, 134.89); (16, 79.48) ]
let paper_f90d = [ (1, 618.79); (2, 451.93); (4, 261.87); (8, 147.25); (16, 87.44) ]

type t4row = {
  t4_p : int;
  t4_hand : float;  (* simulated, hand-written baseline *)
  t4_f90d : float;  (* simulated, compiler-generated *)
  t4_stats : Stats.t;
  t4_wall_seq : float;  (* host seconds, sequential engine *)
  t4_wall_par : float option;  (* host seconds, run_parallel (with --jobs) *)
  t4_par_identical : bool;  (* parallel report bit-identical to sequential *)
}

let run_table4 ~jobs () =
  let n = table4_n in
  let compiled = Driver.compile (Programs.gauss ~n) in
  let run ~jobs p =
    Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube ~jobs
      ~nprocs:p compiled
  in
  List.map
    (fun p ->
      let t0 = Unix.gettimeofday () in
      let r = run ~jobs:1 p in
      let wall_seq = Unix.gettimeofday () -. t0 in
      let wall_par, identical =
        if jobs > 1 then begin
          let t0 = Unix.gettimeofday () in
          let rp = run ~jobs p in
          let wall = Unix.gettimeofday () -. t0 in
          ( Some wall,
            rp.Driver.elapsed = r.Driver.elapsed
            && rp.Driver.clocks = r.Driver.clocks
            && Stats.per_tag rp.Driver.stats = Stats.per_tag r.Driver.stats )
        end
        else (None, true)
      in
      let h = Baselines.run_hand_gauss ~nprocs:p ~n () in
      {
        t4_p = p;
        t4_hand = h.Baselines.elapsed;
        t4_f90d = r.Driver.elapsed;
        t4_stats = r.Driver.stats;
        t4_wall_seq = wall_seq;
        t4_wall_par = wall_par;
        t4_par_identical = identical;
      })
    [ 1; 2; 4; 8; 16 ]

(* Blocked-kernel gate at the Table 4 16-PE point: the same program with
   the node-kernel layer on and off.  The layer is a host-side execution
   strategy, so the two runs must agree bit-for-bit on the simulated
   report (elapsed, clocks, per-tag messages) and on the gathered final
   arrays, while the host wall drops. *)
type kern_gate = {
  kg_wall_on : float;
  kg_wall_off : float;
  kg_runs : int;  (* kernel nests executed, kernels on *)
  kg_fallbacks : int;
  kg_blocked : int;
  kg_identical : bool;
}

let run_kernel_gate () =
  let src = Programs.gauss ~n:table4_n in
  let run flags =
    let compiled = Driver.compile ~flags src in
    let t0 = Unix.gettimeofday () in
    let r =
      Driver.run ~collect_finals:true ~model:Model.ipsc860 ~topology:Topology.Hypercube
        ~jobs:1 ~nprocs:16 compiled
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let r_on, w_on = run F90d_opt.Passes.all_on in
  let r_off, w_off =
    run { F90d_opt.Passes.all_on with F90d_opt.Passes.blocked_kernels = false }
  in
  let finals r = r.Driver.outcome.F90d_exec.Interp.finals in
  let identical =
    r_on.Driver.elapsed = r_off.Driver.elapsed
    && r_on.Driver.clocks = r_off.Driver.clocks
    && Stats.per_tag r_on.Driver.stats = Stats.per_tag r_off.Driver.stats
    && List.length (finals r_on) = List.length (finals r_off)
    && List.for_all2
         (fun (na, a) (nb, b) -> na = nb && F90d_base.Ndarray.equal a b)
         (finals r_on) (finals r_off)
  in
  {
    kg_wall_on = w_on;
    kg_wall_off = w_off;
    kg_runs = r_on.Driver.stats.Stats.kernel_runs;
    kg_fallbacks = r_on.Driver.stats.Stats.kernel_fallbacks;
    kg_blocked = r_on.Driver.stats.Stats.kernel_blocked;
    kg_identical = identical;
  }

let kernel_gate_table kg =
  Printf.printf
    "\nblocked node kernels (16 PEs): on %.2f host-s, off %.2f host-s (%.2fx), %d runs, %d \
     fallbacks, %d blocked, results %s\n"
    kg.kg_wall_on kg.kg_wall_off
    (kg.kg_wall_off /. kg.kg_wall_on)
    kg.kg_runs kg.kg_fallbacks kg.kg_blocked
    (if kg.kg_identical then "identical" else "DIFFER!")

let json_kernel_gate kg =
  Json.Obj
    [
      ("nprocs", Json.Int 16);
      ("host_wall_on_s", Json.Float kg.kg_wall_on);
      ("host_wall_off_s", Json.Float kg.kg_wall_off);
      ("speedup", Json.Float (kg.kg_wall_off /. kg.kg_wall_on));
      ("kernel_runs", Json.Int kg.kg_runs);
      ("kernel_fallbacks", Json.Int kg.kg_fallbacks);
      ("kernel_blocked", Json.Int kg.kg_blocked);
      ("identical", Json.Bool kg.kg_identical);
    ]

let table4 rows4 =
  let rows = List.map (fun r -> (r.t4_p, r.t4_hand, r.t4_f90d)) rows4 in
  section
    (Printf.sprintf
       "Table 4: hand-written vs compiler-generated Gaussian elimination\n\
        (%dx%d, column distributed, iPSC/860, seconds)" table4_n (table4_n + 1));
  Printf.printf "%4s  %12s  %12s  %7s  |  %10s  %10s  %7s\n" "PEs" "hand" "Fortran90D"
    "ratio" "paper-hand" "paper-90D" "ratio";
  List.iter
    (fun (p, hand, f90d) ->
      let ph = List.assoc p paper_hand and pf = List.assoc p paper_f90d in
      Printf.printf "%4d  %12.2f  %12.2f  %7.3f  |  %10.2f  %10.2f  %7.3f\n%!" p hand f90d
        (f90d /. hand) ph pf (pf /. ph))
    rows;
  (match List.rev rows4 with
  | { t4_stats = stats; _ } :: _ ->
      Printf.printf "\ncommunication breakdown of the compiled code at 16 PEs:\n";
      List.iter
        (fun (name, msgs, bytes) ->
          Printf.printf "  %-24s %8d messages  %12d bytes\n" name msgs bytes)
        (Stats.breakdown stats ~name_of:F90d_runtime.Tags.family_name)
  | [] -> ());
  (if List.exists (fun r -> r.t4_wall_par <> None) rows4 then begin
     Printf.printf "\ndomain-parallel engine (host seconds per run):\n";
     Printf.printf "%4s  %10s  %10s  %8s  %s\n" "PEs" "seq wall" "par wall" "speedup" "identical";
     List.iter
       (fun r ->
         match r.t4_wall_par with
         | Some wp ->
             Printf.printf "%4d  %10.2f  %10.2f  %8.2f  %s\n" r.t4_p r.t4_wall_seq wp
               (r.t4_wall_seq /. wp)
               (if r.t4_par_identical then "yes" else "NO!")
         | None -> ())
       rows4
   end);
  print_newline ();
  Printf.printf
    "paper's shape: compiler-generated within ~10%% of hand-written; the gap\n\
     grows with P because of the extra O(log P) broadcast per elimination step.\n"

(* One traced re-run of the Table 4 16-PE point, shared by --trace,
   --profile-json and the hot-statement rows of --json. *)
let traced16 =
  lazy
    (let compiled = Driver.compile (Programs.gauss ~n:table4_n) in
     let r =
       Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube
         ~trace:true ~nprocs:16 compiled
     in
     (compiled, r, Option.get r.Driver.trace))

(* Writes the Chrome trace and prints the critical-path summary so the
   trace and the table can be read side by side. *)
let table4_trace ~path () =
  let _, r, tr = Lazy.force traced16 in
  let oc = open_out path in
  output_string oc (F90d_trace.Trace.to_chrome_json tr);
  close_out oc;
  Printf.printf "\n[wrote %s: %d events over 16 ranks]\n" path (F90d_trace.Trace.total_events tr);
  let segs = F90d_trace.Analyze.critical_path tr in
  let wires = List.filter (fun s -> s.F90d_trace.Analyze.sg_kind <> F90d_trace.Analyze.Local) segs in
  Printf.printf
    "critical path: %.6f s (= elapsed %.6f s), %d segments, %d message hops\n"
    (F90d_trace.Analyze.total segs) r.Driver.elapsed (List.length segs) (List.length wires)

(* Per-statement profile (compile-time decision joined with measured
   traffic) of the same traced run, as JSON. *)
let table4_profile_json ~path () =
  let compiled, _, tr = Lazy.force traced16 in
  let oc = open_out path in
  output_string oc (F90d_report.Report.profile_json compiled.Driver.c_ir tr);
  close_out oc;
  let hots = F90d_report.Report.hot_statements compiled.Driver.c_ir tr in
  Printf.printf "[wrote %s: per-statement profile, %d statements]\n" path (List.length hots);
  print_string (F90d_report.Report.hot_text ~top:5 hots)

(* ------------------------------------------------------------------ *)
(* Figure 6: speedups                                                  *)
(* ------------------------------------------------------------------ *)

let fig6 rows4 =
  let rows = List.map (fun r -> (r.t4_p, r.t4_hand, r.t4_f90d)) rows4 in
  section "Figure 6: speed-up against the sequential code (same runs as Table 4)";
  let seq_hand = match rows with (_, h, _) :: _ -> h | [] -> 1. in
  Printf.printf "%4s  %14s  %14s  |  %12s  %12s\n" "PEs" "hand-written" "compiler" "paper-hand"
    "paper-90D";
  let paper_seq = List.assoc 1 paper_hand in
  List.iter
    (fun (p, hand, f90d) ->
      Printf.printf "%4d  %14.2f  %14.2f  |  %12.2f  %12.2f\n" p (seq_hand /. hand)
        (seq_hand /. f90d)
        (paper_seq /. List.assoc p paper_hand)
        (paper_seq /. List.assoc p paper_f90d))
    rows;
  print_newline ();
  Printf.printf
    "paper's shape: hand-written speedup above compiler-generated, both\n\
     sub-linear (~5-6x at 16 PEs for this communication-bound size).\n"

(* ------------------------------------------------------------------ *)
(* Tables 1-3: regenerated from the implementation                     *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "Table 1: structured communication primitives from (lhs, rhs) subscript\n\
     pairs (block distribution), regenerated from the live classifier";
  let open F90d_commdet in
  let i = Subscript.Canonical "I" in
  let ic c = Subscript.Var_const ("I", c) in
  let is = Subscript.Var_scalar ("I", F90d_frontend.Ast.var "S") in
  let s = Subscript.Const (F90d_frontend.Ast.var "S") in
  let d = Subscript.Const (F90d_frontend.Ast.var "D") in
  let rows =
    [
      ("(i, s)", i, s);
      ("(i, i+c)", i, ic 2);
      ("(i, i-c)", i, ic (-2));
      ("(i, i+s)", i, is);
      ("(i, i-s)", i, Subscript.Var_scalar ("I", F90d_frontend.Ast.mk (F90d_frontend.Ast.Un (F90d_frontend.Ast.Neg, F90d_frontend.Ast.var "S"))));
      ("(d, s)", d, s);
      ("(i, i)", i, i);
    ]
  in
  Printf.printf "%6s  %-12s  %s\n" "step" "(lhs,rhs)" "communication primitive";
  List.iteri
    (fun k (nm, l, r) -> Printf.printf "%6d  %-12s  %s\n" (k + 1) nm (Pattern.classify_pair l r))
    rows

let table2 () =
  section
    "Table 2: unstructured communication primitives by reference pattern,\n\
     regenerated from the live classifier";
  let open F90d_commdet in
  let i = Subscript.Canonical "I" in
  let rows =
    [
      ("f(i)  invertible", Subscript.Affine ("I", F90d_base.Affine.make ~a:2 ~b:1));
      ("V(i)  indirection", Subscript.Vector ("I", F90d_frontend.Ast.var "V"));
      ("unknown (i+j, ...)", Subscript.Unknown);
    ]
  in
  Printf.printf "%6s  %-20s  %s\n" "step" "pattern" "read rhs / write lhs";
  List.iteri
    (fun k (nm, r) -> Printf.printf "%6d  %-20s  %s\n" (k + 1) nm (Pattern.classify_pair i r))
    rows

let table3 () =
  section "Table 3: Fortran 90D intrinsic functions by communication category";
  let names =
    [
      "CSHIFT"; "EOSHIFT"; "DOTPRODUCT"; "ALL"; "ANY"; "COUNT"; "MAXVAL"; "MINVAL"; "PRODUCT";
      "SUM"; "MAXLOC"; "MINLOC"; "SPREAD"; "PACK"; "UNPACK"; "RESHAPE"; "TRANSPOSE"; "MATMUL";
    ]
  in
  let categories =
    [
      "structured communication"; "reduction"; "multicasting"; "unstructured communication";
      "special routines";
    ]
  in
  List.iteri
    (fun k cat ->
      let members =
        List.filter (fun n -> F90d_runtime.Intrinsics.table3_category n = Some cat) names
      in
      Printf.printf "%d. %-28s %s\n" (k + 1) cat (String.concat ", " members))
    categories

(* ------------------------------------------------------------------ *)
(* Ablations of the section 7 optimizations                            *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: the communication optimizations of section 7";
  let open F90d_opt in
  let run_flags flags src nprocs =
    let r =
      Driver.run ~collect_finals:false ~model:Model.ipsc860 ~nprocs
        (Driver.compile ~flags src)
    in
    (r.Driver.elapsed, r.Driver.stats.Stats.messages)
  in
  (* 1. shift union: B(I+2) + B(I+3) repeated in a time loop *)
  let shift_src =
    {|
      PROGRAM SHIFTU
      INTEGER, PARAMETER :: N = 256
      REAL A(256), B(256)
      INTEGER T
C$    TEMPLATE TP(256)
C$    ALIGN A(I) WITH TP(I)
C$    ALIGN B(I) WITH TP(I)
C$    DISTRIBUTE TP(BLOCK)
      FORALL (I = 1:N) B(I) = I
      DO T = 1, 50
        FORALL (I = 1:N-3) A(I) = B(I+2) + B(I+3)
        FORALL (I = 1:N) B(I) = A(MIN(I, N-3)) + 1
      END DO
      END
|}
  in
  (* coalescing would batch the two B-shifts into one message per pair
     either way, masking this row; hold it off to isolate shift union *)
  let base = { Passes.all_on with Passes.coalesce = false } in
  let on = { base with Passes.shift_union = true } in
  let off = { base with Passes.shift_union = false } in
  let t_on, m_on = run_flags on shift_src 8 and t_off, m_off = run_flags off shift_src 8 in
  Printf.printf "shift union        : %8.4f s / %5d msgs (on)   %8.4f s / %5d msgs (off)\n"
    t_on m_on t_off m_off;
  (* 2. multicast_shift fusion *)
  let fuse_src =
    {|
      PROGRAM FUSE
      INTEGER, PARAMETER :: N = 64
      INTEGER S, T
      REAL A(64, 64), B(64, 64)
C$    PROCESSORS P(2, 4)
C$    TEMPLATE TP(64, 64)
C$    ALIGN A(I, J) WITH TP(I, J)
C$    ALIGN B(I, J) WITH TP(I, J)
C$    DISTRIBUTE TP(BLOCK, BLOCK)
      S = 2
      FORALL (I = 1:N, J = 1:N) B(I, J) = I + J
      DO T = 1, 20
        FORALL (I = 1:N, J = 1:N-2) A(I, J) = B(3, J+S)
      END DO
      END
|}
  in
  let on = { Passes.all_on with Passes.fuse_mshift = true } in
  let off = { Passes.all_on with Passes.fuse_mshift = false } in
  let t_on, m_on = run_flags on fuse_src 8 and t_off, m_off = run_flags off fuse_src 8 in
  Printf.printf "multicast_shift    : %8.4f s / %5d msgs (fused) %7.4f s / %5d msgs (separate)\n"
    t_on m_on t_off m_off;
  (* 3. schedule reuse *)
  let irr = Programs.irregular ~n:256 in
  let on = { Passes.all_on with Passes.schedule_reuse = true } in
  let off = { Passes.all_on with Passes.schedule_reuse = false } in
  let t_on, m_on = run_flags on irr 8 and t_off, m_off = run_flags off irr 8 in
  Printf.printf "schedule reuse     : %8.4f s / %5d msgs (on)   %8.4f s / %5d msgs (off)\n"
    t_on m_on t_off m_off;
  (* 4. loop-invariant hoisting: the stencil source array is loop-invariant *)
  let hoist_src =
    {|
      PROGRAM HOISTA
      INTEGER, PARAMETER :: N = 256
      REAL A(256), B(256)
      INTEGER T
C$    TEMPLATE TP(256)
C$    ALIGN A(I) WITH TP(I)
C$    ALIGN B(I) WITH TP(I)
C$    DISTRIBUTE TP(BLOCK)
      FORALL (I = 1:N) A(I) = MOD(3*I, 17)
      FORALL (I = 1:N) B(I) = 0.0
      DO T = 1, 50
        FORALL (I = 2:N-1) B(I) = B(I) + 0.5*(A(I-1) + A(I+1))
      END DO
      END
|}
  in
  let on = { Passes.all_on with Passes.hoist_comm = true } in
  let off = { Passes.all_on with Passes.hoist_comm = false } in
  let t_on, m_on = run_flags on hoist_src 8 and t_off, m_off = run_flags off hoist_src 8 in
  Printf.printf "comm hoisting      : %8.4f s / %5d msgs (on)   %8.4f s / %5d msgs (off)\n"
    t_on m_on t_off m_off;
  (* 5. message coalescing (incl. the multicast replica cache): gauss *)
  let gsrc = Programs.gauss ~n:128 in
  let on = { Passes.all_on with Passes.coalesce = true } in
  let off = { Passes.all_on with Passes.coalesce = false } in
  let t_on, m_on = run_flags on gsrc 8 and t_off, m_off = run_flags off gsrc 8 in
  Printf.printf "msg coalescing     : %8.4f s / %5d msgs (on)   %8.4f s / %5d msgs (off)\n"
    t_on m_on t_off m_off;
  Printf.printf
    "(message vectorization, the fourth section-7 item, is structural: every\n\
     primitive packs one message per processor pair by construction)\n"

(* ------------------------------------------------------------------ *)
(* Figure 3: the four communication/computation placements (§4)        *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section
    "Figure 3: communication placement around the local computation,\n\
     regenerated by compiling one statement per case";
  let preamble =
    {|
      PROGRAM CASES
      INTEGER, PARAMETER :: N = 16
      REAL A(16), B(16), X(16)
      INTEGER U(16), V(16)
C$    TEMPLATE T(16)
C$    ALIGN A(I) WITH T(I)
C$    ALIGN B(I) WITH T(I)
C$    ALIGN X(I) WITH T(I)
C$    ALIGN U(I) WITH T(I)
C$    ALIGN V(I) WITH T(I)
C$    DISTRIBUTE T(BLOCK)
|}
  in
  let phase_shape stmt =
    let compiled = Driver.compile (preamble ^ stmt ^ "\n      END\n") in
    let u = snd (List.hd compiled.Driver.c_ir.F90d_ir.Ir.p_units) in
    let fs =
      List.filter_map
        (fun (s : F90d_ir.Ir.stmt) ->
          match s.F90d_ir.Ir.s with F90d_ir.Ir.Forall f -> Some f | _ -> None)
        u.F90d_ir.Ir.u_body
    in
    match List.rev fs with
    | f :: _ ->
        let pre = List.map F90d_ir.Ir.comm_name f.F90d_ir.Ir.f_pre in
        let post =
          match f.F90d_ir.Ir.f_post with
          | Some (F90d_ir.Ir.Postcomp_write _) -> [ "postcomp_write" ]
          | Some (F90d_ir.Ir.Scatter_write _) -> [ "scatter" ]
          | None -> []
        in
        (pre, post)
    | [] -> ([], [])
  in
  let show name stmt expected =
    let pre, post = phase_shape stmt in
    let fmt = function [] -> "-" | l -> String.concat ", " l in
    Printf.printf "%-7s %-38s before: %-28s after: %-15s (%s)\n" name (String.trim stmt)
      (fmt pre) (fmt post) expected
  in
  show "Case 1" "      FORALL (I = 1:16) A(I) = B(I)" "no communication";
  show "Case 2" "      FORALL (I = 2:16) A(I) = B(I-1)" "communication before";
  show "Case 3" "      FORALL (I = 1:8) A(2*I) = B(I)" "communication after";
  show "Case 4" "      FORALL (I = 1:16) A(U(I)) = B(V(I))" "before and after"

(* ------------------------------------------------------------------ *)
(* Portability (§8.1): one compiled program, every machine             *)
(* ------------------------------------------------------------------ *)

let portability () =
  section
    "Portability (§8.1): the same compiled program on every machine model\n\
     and topology (2-D Jacobi, 4 processors; results must be identical)";
  let compiled = Driver.compile (Programs.jacobi2d ~n:30 ~iters:6 ~p:2 ~q:2) in
  let reference = ref None in
  Printf.printf "%-10s %-10s  %10s  %8s  %s\n" "machine" "topology" "time (s)" "msgs" "result";
  List.iter
    (fun (model, topo) ->
      let r = Driver.run ~model ~topology:topo ~nprocs:4 compiled in
      let a = Driver.final r "A" in
      let same =
        match !reference with
        | None ->
            reference := Some a;
            true
        | Some b -> F90d_base.Ndarray.approx_equal a b
      in
      Printf.printf "%-10s %-10s  %10.4f  %8d  %s\n%!" model.Model.name (Topology.name topo)
        r.Driver.elapsed r.Driver.stats.Stats.messages
        (if same then "identical" else "DIFFERS!"))
    [
      (Model.ipsc860, Topology.Hypercube);
      (Model.ipsc860, Topology.Mesh);
      (Model.ncube2, Topology.Hypercube);
      (Model.ideal, Topology.Full);
    ];
  Printf.printf
    "only the communication-library machine model changes between rows —\n\
     the compiled program and the runtime calls are identical (§8.1).\n"

(* ------------------------------------------------------------------ *)
(* Distribution choice (§3): BLOCK vs CYCLIC columns for GE            *)
(* ------------------------------------------------------------------ *)

let dist_choice () =
  section
    "Distribution choice (§3): BLOCK vs CYCLIC column distribution for\n\
     Gaussian elimination on 16 iPSC/860 nodes";
  Printf.printf "%8s  %12s  %12s  %14s\n" "N" "BLOCK (s)" "CYCLIC (s)" "CYCLIC/BLOCK";
  List.iter
    (fun n ->
      let time dist =
        (Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube
           ~nprocs:16
           (Driver.compile (Programs.gauss_dist ~dist ~n)))
          .Driver.elapsed
      in
      let tb = time `Block and tc = time `Cyclic in
      Printf.printf "%8d  %12.3f  %12.3f  %14.2f\n%!" n tb tc (tc /. tb))
    [ 128; 256 ];
  Printf.printf
    "CYCLIC keeps every processor busy as the active region shrinks (BLOCK\n\
     idles low-numbered processors), the load-balance effect §3 describes.\n"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (host time of the compiler and runtime kernels)    *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel, host nanoseconds per call)";
  let open Bechamel in
  let open Toolkit in
  let layout =
    F90d_dist.Layout.resolve
      (F90d_dist.Distrib.make Block ~n:4096 ~p:16)
      ~align:F90d_base.Affine.ident ~extent:4096 ~proc:7
  in
  let cyc =
    F90d_dist.Layout.resolve
      (F90d_dist.Distrib.make Cyclic ~n:4096 ~p:16)
      ~align:F90d_base.Affine.ident ~extent:4096 ~proc:7
  in
  let gauss64 = Programs.gauss ~n:64 in
  let nd = F90d_base.Ndarray.create F90d_base.Scalar.Kreal [| 64; 64 |] in
  let tests =
    [
      Test.make ~name:"set_BOUND (block)"
        (Staged.stage (fun () -> F90d_dist.Layout.set_bound layout ~glb:100 ~gub:3000 ~gst:3));
      Test.make ~name:"set_BOUND (cyclic)"
        (Staged.stage (fun () -> F90d_dist.Layout.set_bound cyc ~glb:100 ~gub:3000 ~gst:3));
      Test.make ~name:"layout resolve (cyclic)"
        (Staged.stage (fun () ->
             F90d_dist.Layout.resolve
               (F90d_dist.Distrib.make Cyclic ~n:4096 ~p:16)
               ~align:(F90d_base.Affine.make ~a:2 ~b:1) ~extent:2000 ~proc:3));
      Test.make ~name:"crt_first_ge"
        (Staged.stage (fun () -> F90d_base.Util.crt_first_ge ~lo:37 ~r1:2 ~m1:5 ~r2:3 ~m2:8));
      Test.make ~name:"ndarray get_box 8x8"
        (Staged.stage (fun () -> F90d_base.Ndarray.get_box nd ~lo:[| 4; 4 |] ~extents:[| 8; 8 |]));
      Test.make ~name:"parse gauss(64)"
        (Staged.stage (fun () -> F90d_frontend.Parser.parse ~file:"g" gauss64));
      Test.make ~name:"compile gauss(64)" (Staged.stage (fun () -> Driver.compile gauss64));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg instances elt in
          let ols =
            Analyze.one
              (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
              Instance.monotonic_clock m
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/call\n%!" (Test.Elt.name elt) est
          | _ -> Printf.printf "%-28s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* --ablate: per-pass optimized-vs-off comparison on gauss             *)
(* ------------------------------------------------------------------ *)

type ab_row = {
  ab_name : string;
  ab_flags : F90d_opt.Passes.flags;
  ab_msgs : int;
  ab_bytes : int;
  ab_elapsed : float;
  ab_wait : float;
  ab_hidden : float;
  ab_wall : float;  (* host seconds for the run *)
}

let json_pass_flags (f : F90d_opt.Passes.flags) =
  Json.Obj
    [
      ("shift_union", Json.Bool f.F90d_opt.Passes.shift_union);
      ("fuse_mshift", Json.Bool f.F90d_opt.Passes.fuse_mshift);
      ("schedule_reuse", Json.Bool f.F90d_opt.Passes.schedule_reuse);
      ("hoist_comm", Json.Bool f.F90d_opt.Passes.hoist_comm);
      ("coalesce", Json.Bool f.F90d_opt.Passes.coalesce);
      ("split_comm", Json.Bool f.F90d_opt.Passes.split_comm);
      ("lookahead", Json.Bool f.F90d_opt.Passes.lookahead);
      ("blocked_kernels", Json.Bool f.F90d_opt.Passes.blocked_kernels);
    ]

(* Each pass alone on top of all_off, bracketed by all_off and all_on, so
   a row's delta against the first row is that pass's lone contribution
   on Gaussian elimination. *)
let run_ablate () =
  let open F90d_opt in
  let src = Programs.gauss ~n:table4_n in
  let run name flags =
    let t0 = Unix.gettimeofday () in
    let r =
      Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube
        ~nprocs:16
        (Driver.compile ~flags src)
    in
    {
      ab_name = name;
      ab_flags = flags;
      ab_msgs = r.Driver.stats.Stats.messages;
      ab_bytes = r.Driver.stats.Stats.bytes;
      ab_elapsed = r.Driver.elapsed;
      ab_wait = r.Driver.stats.Stats.recv_wait;
      ab_hidden = r.Driver.stats.Stats.recv_wait_hidden;
      ab_wall = Unix.gettimeofday () -. t0;
    }
  in
  run "all_off" Passes.all_off
  :: List.map
       (fun (name, flags) -> run name flags)
       [
         ("shift_union", { Passes.all_off with Passes.shift_union = true });
         ("fuse_mshift", { Passes.all_off with Passes.fuse_mshift = true });
         ("schedule_reuse", { Passes.all_off with Passes.schedule_reuse = true });
         ("hoist_comm", { Passes.all_off with Passes.hoist_comm = true });
         ("coalesce", { Passes.all_off with Passes.coalesce = true });
         (* split-phase needs the pass on; lookahead additionally
            pipelines the loop-carried issue one step ahead *)
         ("split_comm", { Passes.all_off with Passes.split_comm = true });
         ( "split+lookahead",
           { Passes.all_off with Passes.split_comm = true; Passes.lookahead = true } );
         (* execution-strategy axis: identical simulated columns, the
            host-wall column shows the node-kernel layer's contribution *)
         ("no_blocked_kernels", { Passes.all_on with Passes.blocked_kernels = false });
       ]
  @ [ run "all_on" Passes.all_on ]

let ablate_table rows =
  section
    (Printf.sprintf
       "Ablation on gauss (%dx%d, 16 PEs, iPSC/860): each pass alone vs all off" table4_n
       (table4_n + 1));
  Printf.printf "%-18s %10s %12s %12s %12s %10s %9s\n" "passes" "msgs" "bytes" "elapsed(s)"
    "recv_wait(s)" "hidden(s)" "host(s)";
  List.iter
    (fun r ->
      Printf.printf "%-18s %10d %12d %12.4f %12.4f %10.4f %9.2f\n" r.ab_name r.ab_msgs
        r.ab_bytes r.ab_elapsed r.ab_wait r.ab_hidden r.ab_wall)
    rows

let json_ablation rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("passes", Json.Str r.ab_name);
             ("pass_flags", json_pass_flags r.ab_flags);
             ("messages", Json.Int r.ab_msgs);
             ("bytes", Json.Int r.ab_bytes);
             ("f90d_elapsed_s", Json.Float r.ab_elapsed);
             ("recv_wait_s", Json.Float r.ab_wait);
             ("recv_wait_hidden_s", Json.Float r.ab_hidden);
             ("host_wall_s", Json.Float r.ab_wall);
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* serve: daemon throughput, cold vs warm caches (§ service mode)      *)
(* ------------------------------------------------------------------ *)

(* A mixed compile+run workload replayed twice against a fresh daemon:
   the first pass populates all three cache levels, the second hits
   them.  The same request list also replays against an in-process
   Service with its own store, so every daemon response can be checked
   byte-for-byte against the one-shot path at equal cache temperature. *)
module SJ = F90d_serve.Json

let serve_workload () =
  let compile demo demo_n =
    SJ.Obj
      [ ("op", SJ.Str "compile"); ("demo", SJ.Str demo); ("demo_n", SJ.Int demo_n) ]
  in
  let run demo demo_n nprocs =
    SJ.Obj
      [
        ("op", SJ.Str "run");
        ("demo", SJ.Str demo);
        ("demo_n", SJ.Int demo_n);
        ("nprocs", SJ.Int nprocs);
        ("finals", SJ.Bool true);
      ]
  in
  (* compile-heavy on purpose: a build service sees many more compile
     requests than simulations, and compilation is where the
     content-addressed levels pay (a warm compile is a digest lookup) *)
  List.map (compile "gauss") (List.init 40 (fun i -> 64 + i))
  @ List.map (compile "jacobi") (List.init 20 (fun i -> 64 + i))
  @ List.map (compile "irregular") (List.init 10 (fun i -> 64 + i))
  @ [ run "irregular" 256 4; run "jacobi" 64 4; run "gauss" 32 4 ]

type serve_phase = {
  sv_wall : float;
  sv_responses : SJ.t list;
  sv_sched_builds : int;  (* summed over run responses *)
  sv_sched_hits : int;
  sv_errors : int;
}

let serve_phase responses wall =
  let geti resp key = Option.value ~default:0 (Option.bind (SJ.mem resp key) SJ.int) in
  {
    sv_wall = wall;
    sv_responses = responses;
    sv_sched_builds = List.fold_left (fun a r -> a + geti r "sched_builds") 0 responses;
    sv_sched_hits = List.fold_left (fun a r -> a + geti r "sched_hits") 0 responses;
    sv_errors =
      List.fold_left
        (fun a r -> a + match SJ.mem r "ok" with Some (SJ.Bool true) -> 0 | _ -> 1)
        0 responses;
  }

type serve_result = {
  sr_workload : SJ.t list;
  sr_cold : serve_phase;
  sr_warm : serve_phase;
  sr_stats : SJ.t;  (* daemon stats op, after both passes *)
  sr_metrics_cold : string;  (* exposition scrape after the cold pass *)
  sr_metrics_warm : string;  (* ... and after the warm pass *)
  sr_identical_cold : bool;
  sr_identical_warm : bool;
}

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Sum of a family's samples in an exposition text, optionally filtered
   to lines whose label block contains [label] (e.g. {|level="l3"|}). *)
let metric_value ?(label = "") text family =
  String.split_on_char '\n' text
  |> List.fold_left
       (fun acc line ->
         if String.length line = 0 || line.[0] = '#' then acc
         else
           match String.rindex_opt line ' ' with
           | None -> acc
           | Some sp ->
               let name_labels = String.sub line 0 sp in
               let name =
                 match String.index_opt name_labels '{' with
                 | Some i -> String.sub name_labels 0 i
                 | None -> name_labels
               in
               if name = family && (label = "" || contains name_labels label) then
                 acc
                 +. Option.value ~default:0.
                      (float_of_string_opt
                         (String.sub line (sp + 1) (String.length line - sp - 1)))
               else acc)
       0.

let run_serve () =
  let tmp = Filename.temp_dir "f90d-bench-serve" "" in
  let sock = Filename.concat tmp "daemon.sock" in
  let workload = serve_workload () in
  let service =
    F90d_serve.Service.create
      ~store:(F90d_serve.Store.create ~dir:(Filename.concat tmp "store-daemon"))
      ~workers:2 ()
  in
  let srv = F90d_serve.Server.start ~workers:2 ~service ~sock_path:sock () in
  let debug_lat = Sys.getenv_opt "F90D_SERVE_LAT" <> None in
  let replay () =
    F90d_serve.Client.with_conn sock (fun conn ->
        let t0 = Unix.gettimeofday () in
        let responses =
          List.map
            (fun req ->
              let r0 = Unix.gettimeofday () in
              let resp = F90d_serve.Client.request conn req in
              if debug_lat then
                Printf.printf "%8.3f ms  %s\n%!"
                  ((Unix.gettimeofday () -. r0) *. 1000.)
                  (String.sub (SJ.to_string req) 0 (min 60 (String.length (SJ.to_string req))));
              resp)
            workload
        in
        serve_phase responses (Unix.gettimeofday () -. t0))
  in
  let scrape () =
    F90d_serve.Client.with_conn sock (fun c ->
        let r = F90d_serve.Client.request c (SJ.Obj [ ("op", SJ.Str "metrics") ]) in
        Option.value ~default:"" (Option.bind (SJ.mem r "body") SJ.str))
  in
  let cold = replay () in
  let metrics_cold = scrape () in
  let warm = replay () in
  let metrics_warm = scrape () in
  let stats = F90d_serve.Client.with_conn sock (fun c ->
      F90d_serve.Client.request c (SJ.Obj [ ("op", SJ.Str "stats") ])) in
  F90d_serve.Client.with_conn sock (fun c ->
      ignore (F90d_serve.Client.request c (SJ.Obj [ ("op", SJ.Str "shutdown") ])));
  F90d_serve.Server.wait srv;
  (* the one-shot reference: same requests, same order, its own caches *)
  let solo =
    F90d_serve.Service.create
      ~store:(F90d_serve.Store.create ~dir:(Filename.concat tmp "store-solo"))
      ()
  in
  let identical phase =
    List.for_all2
      (fun req daemon_resp ->
        let solo_resp = F90d_serve.Service.handle solo req in
        SJ.to_string (F90d_serve.Service.strip_volatile solo_resp)
        = SJ.to_string (F90d_serve.Service.strip_volatile daemon_resp))
      workload phase.sv_responses
  in
  let identical_cold = identical cold in
  let identical_warm = identical warm in
  {
    sr_workload = workload;
    sr_cold = cold;
    sr_warm = warm;
    sr_stats = stats;
    sr_metrics_cold = metrics_cold;
    sr_metrics_warm = metrics_warm;
    sr_identical_cold = identical_cold;
    sr_identical_warm = identical_warm;
  }

let serve_table res =
  section "Service mode: daemon throughput, cold vs warm content-addressed caches";
  let n = List.length res.sr_workload in
  let rps p = float_of_int n /. p.sv_wall in
  Printf.printf "%-6s %10s %12s %14s %14s %8s\n" "phase" "requests" "wall (s)" "throughput/s"
    "sched_builds" "errors";
  let row name p =
    Printf.printf "%-6s %10d %12.3f %14.1f %14d %8d\n" name n p.sv_wall (rps p)
      p.sv_sched_builds p.sv_errors
  in
  row "cold" res.sr_cold;
  row "warm" res.sr_warm;
  Printf.printf "\nwarm/cold throughput : %.2fx\n" (rps res.sr_warm /. rps res.sr_cold);
  Printf.printf "warm sched_builds    : %d (schedules preloaded from the store)\n"
    res.sr_warm.sv_sched_builds;
  let mc f ?label () = metric_value ?label res.sr_metrics_cold f in
  let mw f ?label () = metric_value ?label res.sr_metrics_warm f in
  Printf.printf "metrics scrape       : sched_builds_total %.0f -> %.0f (warm delta %.0f)\n"
    (mc "f90d_sched_builds_total" ())
    (mw "f90d_sched_builds_total" ())
    (mw "f90d_sched_builds_total" () -. mc "f90d_sched_builds_total" ());
  Printf.printf "                       l3 cache hits %.0f -> %.0f, requests %.0f -> %.0f\n"
    (mc "f90d_cache_hits_total" ~label:{|level="l3"|} ())
    (mw "f90d_cache_hits_total" ~label:{|level="l3"|} ())
    (mc "f90d_requests_total" ())
    (mw "f90d_requests_total" ());
  Printf.printf "daemon = one-shot    : cold %s, warm %s\n"
    (if res.sr_identical_cold then "bit-identical" else "DIFFERS!")
    (if res.sr_identical_warm then "bit-identical" else "DIFFERS!")

(* ------------------------------------------------------------------ *)
(* Scale: the simulated machine at up to 4096 ranks                    *)
(*                                                                     *)
(* Sweeps P over powers of two on a fixed problem size, so the sweep   *)
(* isolates the engine's own scaling (scheduler, mailboxes, routing)   *)
(* rather than the application's.  Two communication shapes: gauss     *)
(* (machine-wide broadcast cascades every iteration) and the jacobi2d  *)
(* stencil (nearest-neighbour shifts on a sqrt(P) x sqrt(P) grid).     *)
(* ------------------------------------------------------------------ *)

let scale_n =
  match Sys.getenv_opt "F90D_SCALE_N" with Some s -> int_of_string s | None -> 256

(* CI caps the sweep (F90D_SCALE_MAX_P=1024) to stay inside its wall
   budget; the committed baseline is generated with the full sweep. *)
let scale_max_p =
  match Sys.getenv_opt "F90D_SCALE_MAX_P" with Some s -> int_of_string s | None -> 4096

let scale_ps = List.filter (fun p -> p <= scale_max_p) [ 16; 64; 256; 1024; 4096 ]

(* Host memory, from /proc/self/status (0 where the kernel interface is
   absent): VmRSS is the resident set now, VmHWM its high-water mark. *)
let proc_status_kb key =
  match open_in "/proc/self/status" with
  | exception _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > String.length key && String.sub line 0 (String.length key) = key
            then
              Scanf.sscanf (String.sub line (String.length key) (String.length line - String.length key))
                " %d" (fun kb -> kb)
            else scan ()
      in
      let kb = scan () in
      close_in ic;
      kb

type scale_row = {
  sc_program : string;
  sc_p : int;
  sc_elapsed : float;  (* simulated seconds *)
  sc_messages : int;
  sc_bytes : int;
  sc_wall_seq : float;  (* host seconds, sequential engine *)
  sc_wall_par : float option;  (* host seconds, run_parallel (with --jobs) *)
  sc_par_identical : bool;
  sc_rss_kb : int;  (* resident set right after the sequential run *)
  sc_hwm_kb : int;  (* process high-water mark so far *)
  sc_heap_mb : float;  (* OCaml major-heap words after the run, in MB *)
  sc_kruns : int;  (* FORALL nests taken by the kernel layer *)
  sc_kfalls : int;  (* nests handed back to the interpreter *)
}

(* One row of the collective micro-benchmark: a machine-wide binomial
   broadcast's critical path, in units of one message time.  The depth
   column must read log2 P — that is the O(log P) cascade made visible. *)
type depth_row = { dr_p : int; dr_elapsed : float; dr_depth : float }

let run_scale_depth () =
  let m = Model.ipsc860 in
  let t_msg = m.Model.alpha +. (8. *. m.Model.beta) in
  List.map
    (fun p ->
      let cfg = Engine.config ~model:m p in
      let r =
        Engine.run cfg (fun ctx ->
            let rctx = F90d_runtime.Rctx.make ctx (F90d_dist.Grid.make [| p |]) in
            let team = F90d_runtime.Collectives.team_all rctx in
            ignore
              (F90d_runtime.Collectives.broadcast rctx team ~root:0
                 (Message.Scalar (F90d_base.Scalar.Real 1.0))))
      in
      { dr_p = p; dr_elapsed = r.Engine.elapsed; dr_depth = r.Engine.elapsed /. t_msg })
    scale_ps

let run_scale ~jobs () =
  let gauss = lazy (Driver.compile (Programs.gauss ~n:scale_n)) in
  let programs p =
    let side = int_of_float (sqrt (float_of_int p) +. 0.5) in
    [
      ("gauss", Lazy.force gauss);
      ("jacobi2d", Driver.compile (Programs.jacobi2d ~n:scale_n ~iters:4 ~p:side ~q:side));
    ]
  in
  List.concat_map
    (fun p ->
      List.map
        (fun (name, compiled) ->
          let run ~jobs =
            Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube
              ~jobs ~nprocs:p compiled
          in
          let t0 = Unix.gettimeofday () in
          let r = run ~jobs:1 in
          let wall_seq = Unix.gettimeofday () -. t0 in
          let rss = proc_status_kb "VmRSS:" and hwm = proc_status_kb "VmHWM:" in
          let heap_mb = float_of_int (Gc.quick_stat ()).Gc.heap_words *. 8. /. 1048576. in
          let wall_par, identical =
            if jobs > 1 then begin
              let t0 = Unix.gettimeofday () in
              let rp = run ~jobs in
              let wall = Unix.gettimeofday () -. t0 in
              ( Some wall,
                rp.Driver.elapsed = r.Driver.elapsed
                && rp.Driver.clocks = r.Driver.clocks
                && Stats.per_tag rp.Driver.stats = Stats.per_tag r.Driver.stats )
            end
            else (None, true)
          in
          Printf.printf "  %-9s P=%-5d %10.3f sim-s  %9d msgs  %8.2f host-s%s\n%!" name p
            r.Driver.elapsed r.Driver.stats.Stats.messages wall_seq
            (match wall_par with
            | Some w -> Printf.sprintf "  (par %.2f, %s)" w (if identical then "identical" else "DIFFERS!")
            | None -> "");
          {
            sc_program = name;
            sc_p = p;
            sc_elapsed = r.Driver.elapsed;
            sc_messages = r.Driver.stats.Stats.messages;
            sc_bytes = r.Driver.stats.Stats.bytes;
            sc_wall_seq = wall_seq;
            sc_wall_par = wall_par;
            sc_par_identical = identical;
            sc_rss_kb = rss;
            sc_hwm_kb = hwm;
            sc_heap_mb = heap_mb;
            sc_kruns = r.Driver.stats.Stats.kernel_runs;
            sc_kfalls = r.Driver.stats.Stats.kernel_fallbacks;
          })
        (programs p))
    scale_ps

let scale_table rows depths =
  section
    (Printf.sprintf
       "Scale: fixed problem size (N=%d), machine size up to %d ranks\n\
        (event-driven scheduler: host cost tracks messages, not P^2)" scale_n scale_max_p);
  Printf.printf "%-9s %6s  %12s  %10s  %10s  %9s  %9s  %s\n" "program" "PEs" "simulated(s)"
    "messages" "host(s)" "RSS(MB)" "HWM(MB)" "par identical";
  List.iter
    (fun r ->
      Printf.printf "%-9s %6d  %12.3f  %10d  %10.2f  %9.1f  %9.1f  %s\n" r.sc_program r.sc_p
        r.sc_elapsed r.sc_messages r.sc_wall_seq
        (float_of_int r.sc_rss_kb /. 1024.)
        (float_of_int r.sc_hwm_kb /. 1024.)
        (match r.sc_wall_par with
        | Some w -> Printf.sprintf "%.2fs %s" w (if r.sc_par_identical then "yes" else "NO!")
        | None -> "-"))
    rows;
  Printf.printf "\nbroadcast cascade depth (critical path / one message time):\n";
  Printf.printf "%6s  %10s  %8s  %8s\n" "PEs" "elapsed(s)" "depth" "log2 P";
  List.iter
    (fun d ->
      Printf.printf "%6d  %10.6f  %8.2f  %8d\n" d.dr_p d.dr_elapsed d.dr_depth
        (F90d_base.Util.ilog2 d.dr_p))
    depths

(* ------------------------------------------------------------------ *)
(* JSON emitters                                                       *)
(* ------------------------------------------------------------------ *)

let version_fields =
  [
    ("version", Json.Str F90d_base.Util.package_version);
    ("cache_version", Json.Int F90d_base.Util.cache_version);
  ]

(* Top-k hot statements of the traced 16-PE run: each row joins the
   compile-time decision (primitive + source line) with measured cost. *)
let json_hot_statements ?(top = 5) () =
  let compiled, _, tr = Lazy.force traced16 in
  F90d_report.Report.hot_statements compiled.Driver.c_ir tr
  |> List.filteri (fun i _ -> i < top)
  |> List.map (fun (h : F90d_report.Report.hot) ->
         Json.Obj
           [
             ("sid", Json.Int h.F90d_report.Report.h_sid);
             ("source", Json.Str (F90d_base.Loc.file_line h.F90d_report.Report.h_loc));
             ("stmt", Json.Str h.F90d_report.Report.h_desc);
             ("decision", Json.Str h.F90d_report.Report.h_decision);
             ("messages", Json.Int h.F90d_report.Report.h_msgs);
             ("bytes", Json.Int h.F90d_report.Report.h_bytes);
             ("send_busy_s", Json.Float h.F90d_report.Report.h_send_s);
             ("recv_wait_s", Json.Float h.F90d_report.Report.h_wait_s);
             ("recv_wait_hidden_s", Json.Float h.F90d_report.Report.h_hidden_s);
             ("critical_path_wire_s", Json.Float h.F90d_report.Report.h_cp_s);
           ])
  |> fun rows -> Json.List rows

(* Convert a serve-protocol JSON value into the bench's own printer type
   so BENCH_serve.json is emitted with the same pretty-printing as every
   other bench artifact. *)
let rec of_sj = function
  | SJ.Null -> Json.Null
  | SJ.Bool b -> Json.Bool b
  | SJ.Int n -> Json.Int n
  | SJ.Float x -> Json.Float x
  | SJ.Str s -> Json.Str s
  | SJ.List l -> Json.List (List.map of_sj l)
  | SJ.Obj fields -> Json.Obj (List.map (fun (k, v) -> (k, of_sj v)) fields)

let json_serve ~host_wall res =
  let n = List.length res.sr_workload in
  let phase p =
    Json.Obj
      [
        ("requests", Json.Int n);
        ("wall_s", Json.Float p.sv_wall);
        ("throughput_rps", Json.Float (float_of_int n /. p.sv_wall));
        ("sched_builds", Json.Int p.sv_sched_builds);
        ("sched_hits", Json.Int p.sv_sched_hits);
        ("errors", Json.Int p.sv_errors);
      ]
  in
  (* the per-pass scrape, reduced to the families the acceptance gates
     read, plus the warm exposition text verbatim for the artifact *)
  let scrape text =
    Json.Obj
      [
        ("requests_total", Json.Float (metric_value text "f90d_requests_total"));
        ("sched_builds_total", Json.Float (metric_value text "f90d_sched_builds_total"));
        ( "cache_hits_l3_total",
          Json.Float (metric_value ~label:{|level="l3"|} text "f90d_cache_hits_total") );
        ("store_corrupt_total", Json.Float (metric_value text "f90d_store_corrupt_total"));
      ]
  in
  Json.Obj
    (("experiment", Json.Str "serve") :: version_fields
    @ [
        ("workload", Json.List (List.map of_sj res.sr_workload));
        ("cold", phase res.sr_cold);
        ("warm", phase res.sr_warm);
        ( "warm_over_cold",
          Json.Float
            ((float_of_int n /. res.sr_warm.sv_wall) /. (float_of_int n /. res.sr_cold.sv_wall))
        );
        ("identical_to_oneshot_cold", Json.Bool res.sr_identical_cold);
        ("identical_to_oneshot_warm", Json.Bool res.sr_identical_warm);
        ("daemon_stats", of_sj res.sr_stats);
        ("metrics_cold", scrape res.sr_metrics_cold);
        ("metrics_warm", scrape res.sr_metrics_warm);
        ("metrics_warm_exposition", Json.Str res.sr_metrics_warm);
        ("host_wall_total_s", Json.Float host_wall);
      ])

let json_table4 ?ablation ?kernel ~jobs ~host_wall rows4 =
  Json.Obj
    (("experiment", Json.Str "table4") :: version_fields
    @ [
       ("program", Json.Str "gauss");
       ("problem_size", Json.Int table4_n);
       ("model", Json.Str Model.ipsc860.Model.name);
       ("topology", Json.Str (Topology.name Topology.Hypercube));
       ("pass_flags", json_pass_flags F90d_opt.Passes.all_on);
       ("jobs", Json.Int jobs);
      ("host_cores", Json.Int (Domain.recommended_domain_count ()));
      ("host_wall_total_s", Json.Float host_wall);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 ([
                    ("nprocs", Json.Int r.t4_p);
                    ("hand_elapsed_s", Json.Float r.t4_hand);
                    ("f90d_elapsed_s", Json.Float r.t4_f90d);
                    ("host_wall_seq_s", Json.Float r.t4_wall_seq);
                  ]
                 (* measured value or no key at all — never a null row *)
                 @ (match r.t4_wall_par with
                   | Some w -> [ ("host_wall_par_s", Json.Float w) ]
                   | None -> [])
                 @ [
                   ("parallel_identical", Json.Bool r.t4_par_identical);
                   ("messages", Json.Int r.t4_stats.Stats.messages);
                   ("bytes", Json.Int r.t4_stats.Stats.bytes);
                   ("recv_wait_s", Json.Float r.t4_stats.Stats.recv_wait);
                   ("recv_wait_hidden_s", Json.Float r.t4_stats.Stats.recv_wait_hidden);
                   ("sched_builds", Json.Int r.t4_stats.Stats.sched_builds);
                   ("sched_hits", Json.Int r.t4_stats.Stats.sched_hits);
                   ("kernel_runs", Json.Int r.t4_stats.Stats.kernel_runs);
                   ("kernel_fallbacks", Json.Int r.t4_stats.Stats.kernel_fallbacks);
                   ("kernel_blocked", Json.Int r.t4_stats.Stats.kernel_blocked);
                 ]))
             rows4) );
       ("hot_statements_16pe", json_hot_statements ());
     ]
    @ (match kernel with Some kg -> [ ("kernel", json_kernel_gate kg) ] | None -> [])
    @ match ablation with Some rows -> [ ("ablation", json_ablation rows) ] | None -> [])

let json_fig5 ~host_wall rows =
  Json.Obj
    (("experiment", Json.Str "fig5") :: version_fields
    @ [
      ("program", Json.Str "gauss");
      ("pass_flags", json_pass_flags F90d_opt.Passes.all_on);
      ("nprocs", Json.Int 16);
      ("topology", Json.Str (Topology.name Topology.Hypercube));
      ("host_wall_total_s", Json.Float host_wall);
      ( "rows",
        Json.List
          (List.map
             (fun (n, ti, tn) ->
               Json.Obj
                 [
                   ("problem_size", Json.Int n);
                   ("ipsc860_elapsed_s", Json.Float ti);
                   ("ncube2_elapsed_s", Json.Float tn);
                 ])
             rows) );
    ])

let json_scale ~jobs ~host_wall rows depths =
  Json.Obj
    (("experiment", Json.Str "scale") :: version_fields
    @ [
        ("problem_size", Json.Int scale_n);
        ("max_p", Json.Int scale_max_p);
        ("model", Json.Str Model.ipsc860.Model.name);
        ("topology", Json.Str (Topology.name Topology.Hypercube));
        ("jobs", Json.Int jobs);
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("host_wall_total_s", Json.Float host_wall);
        ( "rows",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   ([
                      ("program", Json.Str r.sc_program);
                      ("nprocs", Json.Int r.sc_p);
                      ("elapsed_s", Json.Float r.sc_elapsed);
                      ("messages", Json.Int r.sc_messages);
                      ("bytes", Json.Int r.sc_bytes);
                      ("host_wall_seq_s", Json.Float r.sc_wall_seq);
                    ]
                   @ (match r.sc_wall_par with
                     | Some w -> [ ("host_wall_par_s", Json.Float w) ]
                     | None -> [])
                   @ [
                       ("parallel_identical", Json.Bool r.sc_par_identical);
                       ("rss_kb", Json.Int r.sc_rss_kb);
                       ("hwm_kb", Json.Int r.sc_hwm_kb);
                       ("heap_mb", Json.Float r.sc_heap_mb);
                       ("kernel_runs", Json.Int r.sc_kruns);
                       ("kernel_fallbacks", Json.Int r.sc_kfalls);
                     ]))
               rows) );
        ( "broadcast_depth",
          Json.List
            (List.map
               (fun d ->
                 Json.Obj
                   [
                     ("nprocs", Json.Int d.dr_p);
                     ("elapsed_s", Json.Float d.dr_elapsed);
                     ("depth", Json.Float d.dr_depth);
                     ("log2_p", Json.Int (F90d_base.Util.ilog2 d.dr_p));
                   ])
               depths) );
      ])

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let what, flags =
    match argv with
    | _ :: w :: rest when String.length w > 0 && w.[0] <> '-' -> (w, rest)
    | _ :: rest -> ("all", rest)
    | [] -> ("all", [])
  in
  let json_path = ref None and jobs = ref (Driver.default_jobs ()) and trace_path = ref None in
  let profile_path = ref None and ablate = ref false in
  let rec parse = function
    | [] -> ()
    | "--ablate" :: rest ->
        ablate := true;
        parse rest
    | "--json" :: p :: rest when String.length p > 0 && p.[0] <> '-' ->
        json_path := Some p;
        parse rest
    | "--json" :: rest ->
        json_path := Some (Printf.sprintf "BENCH_%s.json" what);
        parse rest
    | "--trace" :: p :: rest when String.length p > 0 && p.[0] <> '-' ->
        trace_path := Some p;
        parse rest
    | "--trace" :: rest ->
        trace_path := Some "BENCH_table4_trace.json";
        parse rest
    | "--profile-json" :: p :: rest when String.length p > 0 && p.[0] <> '-' ->
        profile_path := Some p;
        parse rest
    | "--profile-json" :: rest ->
        profile_path := Some "BENCH_table4_profile.json";
        parse rest
    | "--jobs" :: n :: rest ->
        (jobs := try max 1 (int_of_string n) with _ -> 1);
        parse rest
    | other :: _ ->
        Printf.eprintf
          "unknown flag '%s' (--json [PATH] | --jobs N | --trace [PATH] | --profile-json \
           [PATH] | --ablate)\n"
          other;
        exit 1
  in
  parse flags;
  let jobs = !jobs in
  let t0 = Unix.gettimeofday () in
  let warn_json () =
    match !json_path with
    | Some _ ->
        Printf.eprintf
          "warning: --json is only supported for table4, fig5, serve and scale; ignoring\n"
    | None -> ()
  in
  let warn_trace () =
    match !trace_path with
    | Some _ -> Printf.eprintf "warning: --trace is only supported for table4; ignoring\n"
    | None -> ()
  in
  let warn_profile () =
    match !profile_path with
    | Some _ ->
        Printf.eprintf "warning: --profile-json is only supported for table4; ignoring\n"
    | None -> ()
  in
  (match what with
  | "fig5" ->
      warn_trace ();
      warn_profile ();
      let rows = run_fig5 () in
      fig5 rows;
      Option.iter
        (fun p -> Json.write p (json_fig5 ~host_wall:(Unix.gettimeofday () -. t0) rows))
        !json_path
  | "table4" ->
      let rows = run_table4 ~jobs () in
      table4 rows;
      let kernel = run_kernel_gate () in
      kernel_gate_table kernel;
      let ablation =
        if !ablate then begin
          let ab = run_ablate () in
          ablate_table ab;
          Some ab
        end
        else None
      in
      Option.iter
        (fun p ->
          Json.write p
            (json_table4 ?ablation ~kernel ~jobs ~host_wall:(Unix.gettimeofday () -. t0) rows))
        !json_path;
      Option.iter (fun p -> table4_trace ~path:p ()) !trace_path;
      Option.iter (fun p -> table4_profile_json ~path:p ()) !profile_path
  | "serve" ->
      warn_trace ();
      warn_profile ();
      let res = run_serve () in
      serve_table res;
      Option.iter
        (fun p -> Json.write p (json_serve ~host_wall:(Unix.gettimeofday () -. t0) res))
        !json_path
  | "scale" ->
      warn_trace ();
      warn_profile ();
      let rows = run_scale ~jobs () in
      let depths = run_scale_depth () in
      scale_table rows depths;
      Option.iter
        (fun p ->
          Json.write p (json_scale ~jobs ~host_wall:(Unix.gettimeofday () -. t0) rows depths))
        !json_path
  | "fig6" ->
      warn_json ();
      warn_trace ();
      warn_profile ();
      fig6 (run_table4 ~jobs ())
  | "table1" -> warn_json (); warn_trace (); warn_profile (); table1 ()
  | "table2" -> warn_json (); warn_trace (); warn_profile (); table2 ()
  | "table3" -> warn_json (); warn_trace (); warn_profile (); table3 ()
  | "micro" -> warn_json (); warn_trace (); warn_profile (); micro ()
  | "ablation" -> warn_json (); warn_trace (); warn_profile (); ablation ()
  | "dist" -> warn_json (); warn_trace (); warn_profile (); dist_choice ()
  | "portability" -> warn_json (); warn_trace (); warn_profile (); portability ()
  | "fig3" -> warn_json (); warn_trace (); warn_profile (); fig3 ()
  | "all" ->
      warn_json ();
      warn_trace ();
      warn_profile ();
      table1 ();
      table2 ();
      table3 ();
      fig3 ();
      fig5 (run_fig5 ());
      let rows = run_table4 ~jobs () in
      table4 rows;
      kernel_gate_table (run_kernel_gate ());
      fig6 rows;
      ablation ();
      dist_choice ();
      portability ();
      serve_table (run_serve ());
      micro ()
  | other ->
      Printf.eprintf
        "unknown experiment '%s' (fig5 | table4 | fig6 | table1 | table2 | table3 | fig3 | micro | ablation | dist | portability | serve | scale | all)\n"
        other;
      exit 1);
  Printf.printf "\n[bench completed in %.1f s of host time]\n" (Unix.gettimeofday () -. t0)
