open F90d_base
open F90d_dist
open F90d_machine
open F90d_runtime

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Run an SPMD program on a [dims] grid of the ideal machine; each node
   program receives an Rctx. *)
let run_grid ?(model = Model.ideal) dims f =
  let grid = Grid.make dims in
  let cfg = Engine.config ~model (Grid.size grid) in
  Engine.run cfg (fun eng -> f (Rctx.make eng grid))

let results r = r.Engine.results

(* A distributed 1-D real array over a [p] grid. *)
let dad1 ?(name = "A") ?(form = `Block) ~n ~p () =
  let grid = Grid.make [| p |] in
  let dim =
    match form with
    | `Block -> Dad.block_dim ~flb:1 ~extent:n ~pdim:0 ~p ()
    | `Cyclic -> Dad.cyclic_dim ~flb:1 ~extent:n ~pdim:0 ~p ()
  in
  Dad.make ~name ~kind:Scalar.Kreal ~grid [| dim |]

let dad2 ?(name = "M") ~n ~m ~p ~q ~forms () =
  let grid = Grid.make [| p; q |] in
  let f1, f2 = forms in
  let mk form ~extent ~pdim ~np =
    match form with
    | `Block -> Dad.block_dim ~flb:1 ~extent ~pdim ~p:np ()
    | `Cyclic -> Dad.cyclic_dim ~flb:1 ~extent ~pdim ~p:np ()
    | `Repl -> Dad.replicated_dim ~flb:1 ~extent
  in
  Dad.make ~name ~kind:Scalar.Kreal ~grid [| mk f1 ~extent:n ~pdim:0 ~np:p; mk f2 ~extent:m ~pdim:1 ~np:q |]

let init1 g = Scalar.Real (float_of_int (10 * g.(0)))
let init2 g = Scalar.Real (float_of_int ((100 * g.(0)) + g.(1)))

(* ------------------------------------------------------------------ *)
(* Collectives                                                         *)
(* ------------------------------------------------------------------ *)

let test_broadcast () =
  let r =
    run_grid [| 5 |] (fun ctx ->
        let team = Collectives.team_all ctx in
        match Collectives.broadcast ctx team ~root:2
                (if Rctx.me ctx = 2 then Message.Scalar (Scalar.Int 99) else Message.Empty)
        with
        | Message.Scalar v -> Scalar.to_int v
        | _ -> -1)
  in
  Array.iter (fun v -> check "bcast" 99 v) (results r)

let test_broadcast_tree_latency () =
  (* binomial tree over P=8: elapsed = 3 rounds, not 7 sequential sends *)
  let m = Model.ipsc860 in
  let r =
    run_grid ~model:m [| 8 |] (fun ctx ->
        let team = Collectives.team_all ctx in
        ignore (Collectives.broadcast ctx team ~root:0 (Message.Scalar (Scalar.Int 1))))
  in
  let per_msg = m.Model.alpha +. (8. *. m.Model.beta) in
  checkb "O(log P) broadcast" true (r.Engine.elapsed <= (3.2 *. per_msg));
  check "P-1 messages total" 7 r.Engine.stats.Stats.messages

let test_reduce_allreduce () =
  let r =
    run_grid [| 6 |] (fun ctx ->
        let team = Collectives.team_all ctx in
        let mine = Message.Scalar (Scalar.Int (Rctx.me ctx + 1)) in
        let total =
          match Collectives.allreduce ctx team ~combine:(Redop.payload Redop.Sum) mine with
          | Message.Scalar v -> Scalar.to_int v
          | _ -> -1
        in
        let rooted = Collectives.reduce ctx team ~root:3 ~combine:(Redop.payload Redop.Max) mine in
        (total, rooted))
  in
  Array.iteri
    (fun me (total, rooted) ->
      check "allreduce sum" 21 total;
      if me = 3 then
        match rooted with
        | Some (Message.Scalar v) -> check "reduce max at root" 6 (Scalar.to_int v)
        | _ -> Alcotest.fail "root missing reduction"
      else checkb "non-root has no result" true (rooted = None))
    (results r)

let test_allgather_order () =
  let r =
    run_grid [| 5 |] (fun ctx ->
        let team = Collectives.team_all ctx in
        Collectives.allgather ctx team (Message.Scalar (Scalar.Int (Rctx.me ctx * 7)))
        |> Array.map (function Message.Scalar v -> Scalar.to_int v | _ -> -1))
  in
  Array.iter
    (fun got -> Alcotest.(check (array int)) "team order" [| 0; 7; 14; 21; 28 |] got)
    (results r)

let test_shift_edge_circular () =
  let r =
    run_grid [| 4 |] (fun ctx ->
        let team = Collectives.team_all ctx in
        let me = Rctx.me ctx in
        let edge =
          match Collectives.shift_edge ctx team ~delta:1 (Message.Scalar (Scalar.Int me)) with
          | Some (Message.Scalar v) -> Scalar.to_int v
          | Some _ -> -2
          | None -> -1
        in
        let circ =
          match Collectives.shift_circular ctx team ~delta:(-1) (Message.Scalar (Scalar.Int me)) with
          | Message.Scalar v -> Scalar.to_int v
          | _ -> -2
        in
        (edge, circ))
  in
  (* edge: proc i receives from i-1 (proc 0 nothing); circular -1: from (i+1) mod 4 *)
  Alcotest.(check (list (pair int int)))
    "shifts"
    [ (-1, 1); (0, 2); (1, 3); (2, 0) ]
    (Array.to_list (results r))

let test_transfer_between_columns () =
  let r =
    run_grid [| 4 |] (fun ctx ->
        let team = Collectives.team_all ctx in
        let payload = if Rctx.me ctx = 1 then Some (Message.Scalar (Scalar.Int 5)) else None in
        match Collectives.transfer ctx team ~src:1 ~dest:3 payload with
        | Some (Message.Scalar v) -> Scalar.to_int v
        | Some _ -> -2
        | None -> -1)
  in
  Alcotest.(check (list int)) "transfer" [ -1; -1; -1; 5 ] (Array.to_list (results r))

(* ------------------------------------------------------------------ *)
(* Darray                                                              *)
(* ------------------------------------------------------------------ *)

let test_darray_gather_matches_init () =
  List.iter
    (fun form ->
      let dad = dad1 ~form ~n:13 ~p:4 () in
      let r =
        run_grid [| 4 |] (fun ctx ->
            let a = Darray.init_global ctx dad init1 in
            Darray.gather_global ctx a)
      in
      let expected = Ndarray.init Scalar.Kreal [| 13 |] init1 in
      Array.iter (fun got -> checkb "gathered = init" true (Ndarray.approx_equal got expected))
        (results r))
    [ `Block; `Cyclic ]

let test_darray_2d_gather () =
  let dad = dad2 ~n:6 ~m:7 ~p:2 ~q:2 ~forms:(`Block, `Cyclic) () in
  let r =
    run_grid [| 2; 2 |] (fun ctx ->
        let a = Darray.init_global ctx dad init2 in
        Darray.gather_global ctx a)
  in
  let expected = Ndarray.init Scalar.Kreal [| 6; 7 |] init2 in
  Array.iter (fun got -> checkb "2d gather" true (Ndarray.approx_equal got expected)) (results r)

let test_darray_get_global () =
  let dad = dad1 ~n:10 ~p:3 () in
  let r =
    run_grid [| 3 |] (fun ctx ->
        let a = Darray.init_global ctx dad init1 in
        Scalar.to_real (Darray.get_global ctx a [| 7 |]))
  in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "get_global" 70. v) (results r)

(* ------------------------------------------------------------------ *)
(* Schedules (PARTI)                                                   *)
(* ------------------------------------------------------------------ *)

(* A(i) = B(2i+1) for i = 1..5 over B(1..11): needs computed per rank from
   the iteration layout of a block-distributed A(1..5). *)
let parti_setup n_a n_b p =
  let grid_dims = [| p |] in
  let dad_a = dad1 ~name:"A" ~n:n_a ~p () in
  let dad_b = dad1 ~name:"B" ~n:n_b ~p () in
  let needs_for rank =
    let lay = Dad.layout_at dad_a ~dim:0 ~rank in
    Array.init (Layout.count lay) (fun l ->
        let i = Layout.global_of_local lay l + 1 in
        (* Fortran i *)
        let src = [| (2 * i) + 1 |] in
        let owner = Dad.home_rank dad_b src in
        let lidx = Option.get (Dad.local_indices dad_b ~rank:owner src) in
        (owner, Dad.storage_flat dad_b ~rank:owner lidx))
  in
  (grid_dims, dad_a, dad_b, needs_for)

let expected_parti n_a = Array.init n_a (fun l -> float_of_int (10 * ((2 * (l + 1)) + 1)))

let test_precomp_read () =
  let grid_dims, dad_a, dad_b, needs_for = parti_setup 5 11 3 in
  ignore dad_a;
  let r =
    run_grid grid_dims (fun ctx ->
        let b = Darray.init_global ctx dad_b init1 in
        let sched =
          Schedule.build_read_local ctx ~needs:(needs_for (Rctx.me ctx)) ~peer_needs:needs_for
        in
        let tmp = Schedule.read ctx sched b in
        (* allgather the tmps to verify the full fetched sequence *)
        Collectives.allgather ctx (Collectives.team_all ctx) (Message.Arr tmp))
  in
  let whole =
    Array.concat
      (List.map
         (function Message.Arr a -> Ndarray.reals a | _ -> [||])
         (Array.to_list (results r).(0)))
  in
  Alcotest.(check (array (float 1e-9))) "precomp_read" (expected_parti 5) whole

let test_gather_schedule_equivalent () =
  let grid_dims, _, dad_b, needs_for = parti_setup 5 11 3 in
  let r =
    run_grid grid_dims (fun ctx ->
        let b = Darray.init_global ctx dad_b init1 in
        let sched = Schedule.build_read_comm ctx ~needs:(needs_for (Rctx.me ctx)) in
        let tmp = Schedule.read ctx sched b in
        Collectives.allgather ctx (Collectives.team_all ctx) (Message.Arr tmp))
  in
  let whole =
    Array.concat
      (List.map
         (function Message.Arr a -> Ndarray.reals a | _ -> [||])
         (Array.to_list (results r).(0)))
  in
  Alcotest.(check (array (float 1e-9))) "gather" (expected_parti 5) whole

let test_scatter_roundtrip () =
  (* A(V(i)) = B(i): scatter values to a permutation, then check *)
  let n = 12 and p = 4 in
  let dad_a = dad1 ~name:"A" ~n ~p () in
  let dad_b = dad1 ~name:"B" ~n ~p () in
  let perm i = ((i * 5) mod n) + 1 in
  let r =
    run_grid [| p |] (fun ctx ->
        let me = Rctx.me ctx in
        let a = Darray.create ctx dad_a in
        let b = Darray.init_global ctx dad_b init1 in
        let lay = Dad.layout_at dad_b ~dim:0 ~rank:me in
        let writes =
          Array.init (Layout.count lay) (fun l ->
              let i = Layout.global_of_local lay l + 1 in
              let target = [| perm i |] in
              let owner = Dad.home_rank dad_a target in
              let lidx = Option.get (Dad.local_indices dad_a ~rank:owner target) in
              (owner, Dad.storage_flat dad_a ~rank:owner lidx))
        in
        let sched = Schedule.build_write_comm ctx ~writes in
        Schedule.write ctx sched a (Darray.pack_owned b ~rank:me);
        Darray.gather_global ctx a)
  in
  let expected =
    Ndarray.init Scalar.Kreal [| n |] (fun g ->
        (* find i with perm i = g *)
        let rec find i = if perm i = g.(0) then i else find (i + 1) in
        Scalar.Real (float_of_int (10 * find 1)))
  in
  Array.iter (fun got -> checkb "scatter" true (Ndarray.approx_equal got expected)) (results r)

let test_postcomp_write_local_build () =
  (* postcomp_write: A(2i) = B(i) — invertible, schedule built locally *)
  let n = 16 and p = 4 in
  let dad_a = dad1 ~name:"A" ~n ~p () in
  let dad_b = dad1 ~name:"B" ~n:(n / 2) ~p () in
  let writes_for rank =
    let lay = Dad.layout_at dad_b ~dim:0 ~rank in
    Array.init (Layout.count lay) (fun l ->
        let i = Layout.global_of_local lay l + 1 in
        let target = [| 2 * i |] in
        let owner = Dad.home_rank dad_a target in
        let lidx = Option.get (Dad.local_indices dad_a ~rank:owner target) in
        (owner, Dad.storage_flat dad_a ~rank:owner lidx))
  in
  let r =
    run_grid [| p |] (fun ctx ->
        let me = Rctx.me ctx in
        let a = Darray.create ctx dad_a in
        let b = Darray.init_global ctx dad_b init1 in
        let sched = Schedule.build_write_local ctx ~writes:(writes_for me) ~peer_writes:writes_for in
        Schedule.write ctx sched a (Darray.pack_owned b ~rank:me);
        Darray.gather_global ctx a)
  in
  let expected =
    Ndarray.init Scalar.Kreal [| n |] (fun g ->
        if g.(0) mod 2 = 0 then Scalar.Real (float_of_int (10 * (g.(0) / 2))) else Scalar.Real 0.)
  in
  Array.iter (fun got -> checkb "postcomp_write" true (Ndarray.approx_equal got expected))
    (results r)

let test_schedule_cache () =
  let grid_dims, _, dad_b, needs_for = parti_setup 5 11 3 in
  let r =
    run_grid grid_dims (fun ctx ->
        let b = Darray.init_global ctx dad_b init1 in
        for _ = 1 to 4 do
          let sched =
            Schedule.cached ctx ~key:"test-sched" (fun () ->
                Schedule.build_read_comm ctx ~needs:(needs_for (Rctx.me ctx)))
          in
          ignore (Schedule.read ctx sched b)
        done)
  in
  check "one build per proc" 3 r.Engine.stats.Stats.sched_builds;
  check "three hits per proc" 9 r.Engine.stats.Stats.sched_hits

(* The executor charges memcpy per byte moved; the charge must use the
   array's element size (8 B reals, 4 B integers), not a hard-coded 4*n.
   With a model where only memcpy costs time, the elapsed clock pins the
   charged byte count exactly. *)
let test_exchange_charged_bytes () =
  let memcpy_only = { Model.ideal with Model.name = "memcpy-only"; flop = 0.; iop = 0. } in
  let init kind g =
    match kind with
    | Scalar.Kint -> Scalar.Int g.(0)
    | _ -> Scalar.Real (float_of_int g.(0))
  in
  let mk_dad kind ~n ~p =
    let grid = Grid.make [| p |] in
    Dad.make ~name:"X" ~kind ~grid [| Dad.block_dim ~flb:1 ~extent:n ~pdim:0 ~p () |]
  in
  let pairs_for dad gidxs =
    Array.map
      (fun g ->
        let g = [| g |] in
        let owner = Dad.home_rank dad g in
        let lidx = Option.get (Dad.local_indices dad ~rank:owner g) in
        (owner, Dad.storage_flat dad ~rank:owner lidx))
      gidxs
  in
  (* cross-rank: 2 ranks, each needs the peer's 4 elements, so each rank
     packs 4 elements (4e bytes) and unpacks 4 (4e bytes): elapsed = 8e *)
  let cross kind =
    let dad = mk_dad kind ~n:8 ~p:2 in
    let r =
      run_grid ~model:memcpy_only [| 2 |] (fun ctx ->
          let b = Darray.init_global ctx dad (init kind) in
          let peer = 1 - Rctx.me ctx in
          let needs = pairs_for dad (Array.init 4 (fun i -> (peer * 4) + i + 1)) in
          let sched = Schedule.build_read_comm ctx ~needs in
          ignore (Schedule.read ctx sched b))
    in
    r.Engine.elapsed
  in
  (* self path: 1 rank reads its own 8 elements through the schedule's
     self-copy: elapsed = 8e *)
  let self kind =
    let dad = mk_dad kind ~n:8 ~p:1 in
    let r =
      run_grid ~model:memcpy_only [| 1 |] (fun ctx ->
          let b = Darray.init_global ctx dad (init kind) in
          let needs = pairs_for dad (Array.init 8 (fun i -> i + 1)) in
          let sched = Schedule.build_read_comm ctx ~needs in
          ignore (Schedule.read ctx sched b))
    in
    r.Engine.elapsed
  in
  Alcotest.(check (float 0.)) "float64 exchange: 8 elems * 8 B" 64. (cross Scalar.Kreal);
  Alcotest.(check (float 0.)) "int32 exchange: 8 elems * 4 B" 32. (cross Scalar.Kint);
  Alcotest.(check (float 0.)) "float64 self-copy: 8 elems * 8 B" 64. (self Scalar.Kreal);
  Alcotest.(check (float 0.)) "int32 self-copy: 8 elems * 4 B" 32. (self Scalar.Kint)

(* ------------------------------------------------------------------ *)
(* Structured primitives                                               *)
(* ------------------------------------------------------------------ *)

let test_multicast () =
  (* broadcast global column index 4 (0-based 3) of a block row-distributed
     matrix: tmp(i, 1) = M(i_local, 4) everywhere *)
  let dad = dad2 ~n:4 ~m:8 ~p:1 ~q:4 ~forms:(`Repl, `Block) () in
  let r =
    run_grid [| 1; 4 |] (fun ctx ->
        let a = Darray.init_global ctx dad init2 in
        let tmp = Structured.multicast ctx a ~dim:1 ~g:3 in
        Array.init 4 (fun i -> Scalar.to_real (Ndarray.get tmp [| i + 1; 1 |])))
  in
  Array.iter
    (fun got ->
      Alcotest.(check (array (float 1e-9))) "multicast col 4" [| 104.; 204.; 304.; 404. |] got)
    (results r)

let test_transfer_slab () =
  (* B(:, 3) moves to the owners of column 8 *)
  let dad = dad2 ~n:4 ~m:8 ~p:1 ~q:4 ~forms:(`Repl, `Block) () in
  let r =
    run_grid [| 1; 4 |] (fun ctx ->
        let a = Darray.init_global ctx dad init2 in
        match Structured.transfer ctx a ~dim:1 ~gsrc:2 ~gdest:7 with
        | Some tmp -> Scalar.to_real (Ndarray.get tmp [| 2; 1 |])
        | None -> -1.)
  in
  (* column 8 (0-based 7) owned by coord 3 *)
  Alcotest.(check (list (float 1e-9))) "transfer slab" [ -1.; -1.; -1.; 203. ]
    (Array.to_list (results r))

let test_overlap_shift () =
  let dad = dad1 ~n:12 ~p:3 () in
  (Dad.dims dad).(0).Dad.ghost_hi <- 1;
  (Dad.dims dad).(0).Dad.ghost_lo <- 1;
  let r =
    run_grid [| 3 |] (fun ctx ->
        let a = Darray.init_global ctx dad init1 in
        Structured.overlap_shift ctx a ~dim:0 ~amount:1;
        Structured.overlap_shift ctx a ~dim:0 ~amount:(-1);
        let me = Rctx.me ctx in
        (* ghost cells: storage position -1 holds left neighbour's last,
           position count holds right neighbour's first *)
        let lo = Ndarray.get a.Darray.local [| -1 |] in
        let hi = Ndarray.get a.Darray.local [| 4 |] in
        ignore me;
        (Scalar.to_real lo, Scalar.to_real hi))
  in
  (* proc 1 owns globals 5..8: ghost lo = A(4) = 40, ghost hi = A(9) = 90 *)
  let lo, hi = (results r).(1) in
  Alcotest.(check (float 1e-9)) "ghost lo" 40. lo;
  Alcotest.(check (float 1e-9)) "ghost hi" 90. hi

let test_overlap_shift_2d () =
  (* the non-shifted dimension must anchor at the owned origin, not the
     ghost corner (regression for a 2-D stencil bug) *)
  let dad = dad2 ~n:4 ~m:6 ~p:1 ~q:3 ~forms:(`Repl, `Block) () in
  (Dad.dims dad).(1).Dad.ghost_lo <- 1;
  (Dad.dims dad).(1).Dad.ghost_hi <- 1;
  let r =
    run_grid [| 1; 3 |] (fun ctx ->
        let a = Darray.init_global ctx dad init2 in
        Structured.overlap_shift ctx a ~dim:1 ~amount:1;
        Structured.overlap_shift ctx a ~dim:1 ~amount:(-1);
        (* middle processor (owns cols 3..4): ghost col -1 = global col 2,
           ghost col 2 = global col 5; check every row *)
        if (Rctx.my_coords ctx).(1) = 1 then
          Array.init 4 (fun i ->
              ( Scalar.to_real (Ndarray.get a.Darray.local [| i; -1 |]),
                Scalar.to_real (Ndarray.get a.Darray.local [| i; 2 |]) ))
        else [||])
  in
  Array.iter
    (fun per_proc ->
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check (float 1e-9)) "ghost lo row" (float_of_int ((100 * (i + 1)) + 2)) lo;
          Alcotest.(check (float 1e-9)) "ghost hi row" (float_of_int ((100 * (i + 1)) + 5)) hi)
        per_proc)
    (results r)

let test_temporary_shift () =
  let dad = dad1 ~n:12 ~p:3 () in
  let shift = 5 in
  let r =
    run_grid [| 3 |] (fun ctx ->
        let a = Darray.init_global ctx dad init1 in
        let tmp = Structured.temporary_shift ctx a ~dim:0 ~amount:shift in
        Collectives.allgather ctx (Collectives.team_all ctx)
          (Message.Arr tmp))
  in
  let whole =
    Array.concat
      (List.map (function Message.Arr a -> Ndarray.reals a | _ -> [||])
         (Array.to_list (results r).(0)))
  in
  let expected =
    Array.init 12 (fun l -> if l + shift < 12 then float_of_int (10 * (l + shift + 1)) else 0.)
  in
  Alcotest.(check (array (float 1e-9))) "temporary shift" expected whole

let test_multicast_shift () =
  (* tmp(j) = M(3, j+2) broadcast along dim 0 with shift along dim 1 *)
  let dad = dad2 ~n:4 ~m:6 ~p:2 ~q:3 ~forms:(`Block, `Block) () in
  let r =
    run_grid [| 2; 3 |] (fun ctx ->
        let a = Darray.init_global ctx dad init2 in
        let tmp = Structured.multicast_shift ctx a ~mdim:0 ~g:2 ~sdim:1 ~amount:2 in
        Array.init (tmp.Ndarray.extents.(1)) (fun j ->
            Scalar.to_real (Ndarray.get tmp [| 1; j + 1 |])))
  in
  (* each proc's row slab: for its owned columns j (global), value M(3, j+2) *)
  let expected_for coords =
    let layout = Distrib.make Block ~n:6 ~p:3 in
    let count = Distrib.local_count layout ~proc:coords in
    Array.init count (fun l ->
        let j = Distrib.global_of_local layout ~proc:coords l in
        if j + 2 < 6 then float_of_int ((100 * 3) + (j + 2 + 1)) else 0.)
  in
  let grid = Grid.make [| 2; 3 |] in
  Array.iteri
    (fun rank got ->
      let coords = Grid.coords_of_rank grid rank in
      Alcotest.(check (array (float 1e-9))) "multicast_shift" (expected_for coords.(1)) got)
    (results r)

let test_concat () =
  let dad = dad1 ~form:`Cyclic ~n:9 ~p:3 () in
  let r =
    run_grid [| 3 |] (fun ctx ->
        let a = Darray.init_global ctx dad init1 in
        Structured.concat ctx a)
  in
  let expected = Ndarray.init Scalar.Kreal [| 9 |] init1 in
  Array.iter (fun got -> checkb "concat" true (Ndarray.approx_equal got expected)) (results r)

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                          *)
(* ------------------------------------------------------------------ *)

let seq_array1 n = Ndarray.init Scalar.Kreal [| n |] init1

let test_cshift_eoshift () =
  List.iter
    (fun form ->
      let dad = dad1 ~form ~n:10 ~p:4 () in
      let r =
        run_grid [| 4 |] (fun ctx ->
            let a = Darray.init_global ctx dad init1 in
            let c = Intrinsics.cshift ctx a ~dim:0 ~shift:3 in
            let e = Intrinsics.eoshift ctx a ~dim:0 ~shift:(-2) ~boundary:(Scalar.Real (-1.)) in
            (Darray.gather_global ctx c, Darray.gather_global ctx e))
      in
      let exp_c =
        Ndarray.init Scalar.Kreal [| 10 |] (fun g -> init1 [| ((g.(0) - 1 + 3) mod 10) + 1 |])
      in
      let exp_e =
        Ndarray.init Scalar.Kreal [| 10 |] (fun g ->
            if g.(0) - 2 >= 1 then init1 [| g.(0) - 2 |] else Scalar.Real (-1.))
      in
      let gc, ge = (results r).(0) in
      checkb "cshift" true (Ndarray.approx_equal gc exp_c);
      checkb "eoshift" true (Ndarray.approx_equal ge exp_e))
    [ `Block; `Cyclic ]

let test_reductions () =
  let n = 11 in
  let dad = dad1 ~n ~p:4 () in
  let r =
    run_grid [| 4 |] (fun ctx ->
        let a = Darray.init_global ctx dad init1 in
        ( Scalar.to_real (Intrinsics.reduce ctx Redop.Sum a),
          Scalar.to_real (Intrinsics.reduce ctx Redop.Max a),
          Scalar.to_real (Intrinsics.reduce ctx Redop.Min a) ))
  in
  let s, mx, mn = (results r).(0) in
  Alcotest.(check (float 1e-9)) "sum" (float_of_int (10 * n * (n + 1) / 2)) s;
  Alcotest.(check (float 1e-9)) "max" 110. mx;
  Alcotest.(check (float 1e-9)) "min" 10. mn

let test_reduction_replicated_dim () =
  (* a replicated dimension must not be double-counted *)
  let dad = dad2 ~n:3 ~m:4 ~p:2 ~q:2 ~forms:(`Block, `Repl) () in
  let r =
    run_grid [| 2; 2 |] (fun ctx ->
        let a = Darray.init_global ctx dad (fun _ -> Scalar.Real 1.) in
        Scalar.to_real (Intrinsics.reduce ctx Redop.Sum a))
  in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "sum=12" 12. v) (results r)

let test_maxloc_first_occurrence () =
  let dad = dad1 ~n:10 ~p:4 () in
  let r =
    run_grid [| 4 |] (fun ctx ->
        let a =
          Darray.init_global ctx dad (fun g ->
              Scalar.Real (if g.(0) = 3 || g.(0) = 7 then 99. else 0.))
        in
        (Intrinsics.maxloc ctx a).(0))
  in
  Array.iter (fun v -> check "first max at 3" 3 v) (results r)

let test_count_any_all () =
  let grid = Grid.make [| 4 |] in
  let dad =
    Dad.make ~name:"L" ~kind:Scalar.Klog ~grid [| Dad.block_dim ~flb:1 ~extent:10 ~pdim:0 ~p:4 () |]
  in
  let r =
    run_grid [| 4 |] (fun ctx ->
        let a = Darray.init_global ctx dad (fun g -> Scalar.Log (g.(0) mod 3 = 0)) in
        ( Scalar.to_int (Intrinsics.count ctx a),
          Scalar.to_bool (Intrinsics.reduce ctx Redop.Or a),
          Scalar.to_bool (Intrinsics.reduce ctx Redop.And a) ))
  in
  let c, any, all = (results r).(0) in
  check "count" 3 c;
  checkb "any" true any;
  checkb "all" false all

let test_dotproduct () =
  let dad_a = dad1 ~name:"X" ~n:8 ~p:4 () in
  let dad_b = dad1 ~name:"Y" ~form:`Cyclic ~n:8 ~p:4 () in
  let r =
    run_grid [| 4 |] (fun ctx ->
        let x = Darray.init_global ctx dad_a (fun g -> Scalar.Real (float_of_int g.(0))) in
        let y = Darray.init_global ctx dad_b (fun g -> Scalar.Real (float_of_int g.(0))) in
        Scalar.to_real (Intrinsics.dotproduct ctx x y))
  in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "dot" 204. v) (results r)

let test_transpose () =
  let src = dad2 ~name:"S" ~n:3 ~m:5 ~p:2 ~q:2 ~forms:(`Block, `Block) () in
  let grid = Grid.make [| 2; 2 |] in
  let dst =
    Dad.make ~name:"T" ~kind:Scalar.Kreal ~grid
      [| Dad.block_dim ~flb:1 ~extent:5 ~pdim:0 ~p:2 (); Dad.block_dim ~flb:1 ~extent:3 ~pdim:1 ~p:2 () |]
  in
  let r =
    run_grid [| 2; 2 |] (fun ctx ->
        let a = Darray.init_global ctx src init2 in
        let t = Intrinsics.transpose ctx a ~dad:dst in
        Darray.gather_global ctx t)
  in
  let expected = Ndarray.init Scalar.Kreal [| 5; 3 |] (fun g -> init2 [| g.(1); g.(0) |]) in
  Array.iter (fun got -> checkb "transpose" true (Ndarray.approx_equal got expected)) (results r)

let test_reshape () =
  let src = dad2 ~name:"S" ~n:4 ~m:3 ~p:2 ~q:2 ~forms:(`Block, `Block) () in
  let grid = Grid.make [| 2; 2 |] in
  let dst =
    Dad.make ~name:"R" ~kind:Scalar.Kreal ~grid
      [| Dad.block_dim ~flb:1 ~extent:12 ~pdim:0 ~p:2 (); Dad.replicated_dim ~flb:1 ~extent:1 |]
  in
  let r =
    run_grid [| 2; 2 |] (fun ctx ->
        let a = Darray.init_global ctx src init2 in
        let t = Intrinsics.reshape ctx a ~dad:dst in
        Darray.gather_global ctx t)
  in
  (* column-major: element k of the vector = S(1 + k mod 4, 1 + k/4) *)
  let expected =
    Ndarray.init Scalar.Kreal [| 12; 1 |] (fun g ->
        let k = g.(0) - 1 in
        init2 [| 1 + (k mod 4); 1 + (k / 4) |])
  in
  Array.iter (fun got -> checkb "reshape" true (Ndarray.approx_equal got expected)) (results r)

let test_pack_unpack () =
  let grid = Grid.make [| 4 |] in
  let dad_src = dad1 ~name:"S" ~n:10 ~p:4 () in
  let dad_mask =
    Dad.make ~name:"MK" ~kind:Scalar.Klog ~grid [| Dad.block_dim ~flb:1 ~extent:10 ~pdim:0 ~p:4 () |]
  in
  let dad_vec = dad1 ~name:"V" ~n:10 ~p:4 () in
  let r =
    run_grid [| 4 |] (fun ctx ->
        let s = Darray.init_global ctx dad_src init1 in
        let mask = Darray.init_global ctx dad_mask (fun g -> Scalar.Log (g.(0) mod 2 = 0)) in
        let packed, n = Intrinsics.pack ctx s ~mask ~dad:dad_vec in
        let unpacked = Intrinsics.unpack ctx packed ~mask ~field:s in
        (Darray.gather_global ctx packed, n, Darray.gather_global ctx unpacked))
  in
  let packed, n, unpacked = (results r).(0) in
  check "pack count" 5 n;
  Alcotest.(check (array (float 1e-9)))
    "packed" [| 20.; 40.; 60.; 80.; 100.; 0.; 0.; 0.; 0.; 0. |] (Ndarray.reals packed);
  (* unpack(pack(x)) over the same mask restores x *)
  checkb "unpack" true (Ndarray.approx_equal unpacked (seq_array1 10))

let test_matmul () =
  let grid = Grid.make [| 2; 2 |] in
  let da = dad2 ~name:"A" ~n:4 ~m:3 ~p:2 ~q:2 ~forms:(`Block, `Block) () in
  let db = dad2 ~name:"B" ~n:3 ~m:5 ~p:2 ~q:2 ~forms:(`Block, `Block) () in
  let dc =
    Dad.make ~name:"C" ~kind:Scalar.Kreal ~grid
      [| Dad.block_dim ~flb:1 ~extent:4 ~pdim:0 ~p:2 (); Dad.block_dim ~flb:1 ~extent:5 ~pdim:1 ~p:2 () |]
  in
  let fa g = float_of_int (g.(0) + g.(1)) and fb g = float_of_int (g.(0) * g.(1)) in
  let r =
    run_grid [| 2; 2 |] (fun ctx ->
        let a = Darray.init_global ctx da (fun g -> Scalar.Real (fa g)) in
        let b = Darray.init_global ctx db (fun g -> Scalar.Real (fb g)) in
        let c = Intrinsics.matmul ctx a b ~dad:dc in
        Darray.gather_global ctx c)
  in
  let expected =
    Ndarray.init Scalar.Kreal [| 4; 5 |] (fun g ->
        let acc = ref 0. in
        for k = 1 to 3 do
          acc := !acc +. (fa [| g.(0); k |] *. fb [| k; g.(1) |])
        done;
        Scalar.Real !acc)
  in
  Array.iter (fun got -> checkb "matmul" true (Ndarray.approx_equal got expected)) (results r)

let test_spread () =
  let grid = Grid.make [| 3 |] in
  let dad_src =
    Dad.make ~name:"V" ~kind:Scalar.Kreal ~grid [| Dad.block_dim ~flb:1 ~extent:6 ~pdim:0 ~p:3 () |]
  in
  let dad_dst =
    Dad.make ~name:"S2" ~kind:Scalar.Kreal ~grid
      [| Dad.replicated_dim ~flb:1 ~extent:4; Dad.block_dim ~flb:1 ~extent:6 ~pdim:0 ~p:3 () |]
  in
  let r =
    run_grid [| 3 |] (fun ctx ->
        let v = Darray.init_global ctx dad_src init1 in
        let s = Intrinsics.spread ctx v ~dim:0 ~dad:dad_dst in
        Darray.gather_global ctx s)
  in
  let expected = Ndarray.init Scalar.Kreal [| 4; 6 |] (fun g -> init1 [| g.(1) |]) in
  Array.iter (fun got -> checkb "spread" true (Ndarray.approx_equal got expected)) (results r)

let test_matmul_summa_vs_replicated () =
  (* same product through both algorithms; SUMMA moves panel slabs, the
     fallback replicates whole operands *)
  let grid = Grid.make [| 2; 2 |] in
  let mk name n m =
    Dad.make ~name ~kind:Scalar.Kreal ~grid
      [| Dad.block_dim ~flb:1 ~extent:n ~pdim:0 ~p:2 ();
         Dad.block_dim ~flb:1 ~extent:m ~pdim:1 ~p:2 () |]
  in
  let da = mk "MA" 6 5 and db = mk "MB" 5 4 and dc = mk "MC" 6 4 in
  (* a non-conforming C descriptor forces the replicated fallback *)
  let dc_repl =
    Dad.make ~name:"MCR" ~kind:Scalar.Kreal ~grid
      [| Dad.cyclic_dim ~flb:1 ~extent:6 ~pdim:0 ~p:2 ();
         Dad.block_dim ~flb:1 ~extent:4 ~pdim:1 ~p:2 () |]
  in
  let fa g = float_of_int ((2 * g.(0)) + g.(1)) and fb g = float_of_int (g.(0) * g.(1)) in
  let run dad =
    run_grid [| 2; 2 |] (fun ctx ->
        let a = Darray.init_global ctx da (fun g -> Scalar.Real (fa g)) in
        let b = Darray.init_global ctx db (fun g -> Scalar.Real (fb g)) in
        Darray.gather_global ctx (Intrinsics.matmul ctx a b ~dad))
  in
  let summa = run dc and repl = run dc_repl in
  let expected =
    Ndarray.init Scalar.Kreal [| 6; 4 |] (fun g ->
        let acc = ref 0. in
        for k = 1 to 5 do
          acc := !acc +. (fa [| g.(0); k |] *. fb [| k; g.(1) |])
        done;
        Scalar.Real !acc)
  in
  checkb "summa result" true (Ndarray.approx_equal (results summa).(0) expected);
  checkb "replicated result" true (Ndarray.approx_equal (results repl).(0) expected)

(* ------------------------------------------------------------------ *)
(* Redistribute                                                        *)
(* ------------------------------------------------------------------ *)

let test_redistribute_roundtrip () =
  let dad_b = dad1 ~name:"RB" ~form:`Block ~n:17 ~p:4 () in
  let dad_c = dad1 ~name:"RC" ~form:`Cyclic ~n:17 ~p:4 () in
  let r =
    run_grid [| 4 |] (fun ctx ->
        let a = Darray.init_global ctx dad_b init1 in
        let c = Redistribute.redistribute ctx a dad_c in
        let b = Redistribute.redistribute ctx c dad_b in
        (Darray.gather_global ctx c, Darray.gather_global ctx b))
  in
  let expected = Ndarray.init Scalar.Kreal [| 17 |] init1 in
  let gc, gb = (results r).(0) in
  checkb "block->cyclic" true (Ndarray.approx_equal gc expected);
  checkb "roundtrip" true (Ndarray.approx_equal gb expected)

let test_redistribute_no_preprocessing_messages () =
  (* schedule1-style: data messages only; with P=4 block->cyclic, each pair
     exchanges at most one message *)
  let dad_b = dad1 ~name:"RB2" ~form:`Block ~n:16 ~p:4 () in
  let dad_c = dad1 ~name:"RC2" ~form:`Cyclic ~n:16 ~p:4 () in
  let r =
    run_grid [| 4 |] (fun ctx ->
        let a = Darray.init_global ctx dad_b init1 in
        ignore (Redistribute.redistribute ctx a dad_c))
  in
  checkb "at most P*(P-1) data messages" true (r.Engine.stats.Stats.messages <= 12)

let prop_redistribute_roundtrip =
  QCheck.Test.make ~name:"redistribute: random src/dst forms preserve contents" ~count:40
    QCheck.(quad (int_range 1 30) (int_range 1 4) (int_range 0 2) (int_range 0 2))
    (fun (n, p, f1, f2) ->

      let form i = List.nth [ `Block; `Cyclic; `Bc ] i in
      let mk name f =
        let grid = Grid.make [| p |] in
        let dim =
          match f with
          | `Block -> Dad.block_dim ~flb:1 ~extent:n ~pdim:0 ~p ()
          | `Cyclic -> Dad.cyclic_dim ~flb:1 ~extent:n ~pdim:0 ~p ()
          | `Bc ->
              {
                Dad.flb = 1;
                extent = n;
                align = Affine.ident;
                dist = Distrib.make (Block_cyclic 2) ~n ~p;
                pdim = Some 0;
                ghost_lo = 0;
                ghost_hi = 0;
              }
        in
        Dad.make ~name ~kind:Scalar.Kreal ~grid [| dim |]
      in
      let src = mk "PSRC" (form f1) and dst = mk "PDST" (form f2) in
      let r =
        run_grid [| p |] (fun ctx ->
            let a = Darray.init_global ctx src init1 in
            let b = Redistribute.redistribute ctx a dst in
            Darray.gather_global ctx b)
      in
      let expected = Ndarray.init Scalar.Kreal [| n |] init1 in
      Array.for_all (fun got -> Ndarray.approx_equal got expected) (results r))

let prop_cshift_inverse =
  QCheck.Test.make ~name:"cshift by s then -s is the identity" ~count:40
    QCheck.(triple (int_range 1 25) (int_range 1 4) (int_range (-30) 30))
    (fun (n, p, s) ->
      let dad = dad1 ~name:"CSH" ~n ~p () in
      let r =
        run_grid [| p |] (fun ctx ->
            let a = Darray.init_global ctx dad init1 in
            let b = Intrinsics.cshift ctx a ~dim:0 ~shift:s in
            let c = Intrinsics.cshift ctx b ~dim:0 ~shift:(-s) in
            Darray.gather_global ctx c)
      in
      let expected = Ndarray.init Scalar.Kreal [| n |] init1 in
      Array.for_all (fun got -> Ndarray.approx_equal got expected) (results r))

let prop_reduce_matches_fold =
  QCheck.Test.make ~name:"parallel reductions equal sequential folds" ~count:40
    QCheck.(triple (int_range 1 40) (int_range 1 5) (int_range 0 3))
    (fun (n, p, which) ->
      let op = List.nth [ Redop.Sum; Redop.Prod; Redop.Max; Redop.Min ] which in
      let f g = Scalar.Real (float_of_int ((g.(0) * 7 mod 5) + 1) /. 4.) in
      let dad = dad1 ~name:"RED" ~n ~p () in
      let r =
        run_grid [| p |] (fun ctx ->
            let a = Darray.init_global ctx dad f in
            Scalar.to_real (Intrinsics.reduce ctx op a))
      in
      let seq = ref (Scalar.to_real (Redop.identity op Scalar.Kreal)) in
      for g = 1 to n do
        let v = Scalar.to_real (f [| g |]) in
        seq :=
          (match op with
          | Redop.Sum -> !seq +. v
          | Redop.Prod -> !seq *. v
          | Redop.Max -> Float.max !seq v
          | Redop.Min -> Float.min !seq v
          | _ -> !seq)
      done;
      Array.for_all (fun got -> Float.abs (got -. !seq) < 1e-9) (results r))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_redistribute_roundtrip; prop_cshift_inverse; prop_reduce_matches_fold ]

let () =
  Alcotest.run "f90d_runtime"
    [
      ( "collectives",
        [
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "broadcast O(log P)" `Quick test_broadcast_tree_latency;
          Alcotest.test_case "reduce/allreduce" `Quick test_reduce_allreduce;
          Alcotest.test_case "allgather order" `Quick test_allgather_order;
          Alcotest.test_case "shifts" `Quick test_shift_edge_circular;
          Alcotest.test_case "transfer" `Quick test_transfer_between_columns;
        ] );
      ( "darray",
        [
          Alcotest.test_case "gather matches init" `Quick test_darray_gather_matches_init;
          Alcotest.test_case "2d gather" `Quick test_darray_2d_gather;
          Alcotest.test_case "get_global" `Quick test_darray_get_global;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "precomp_read" `Quick test_precomp_read;
          Alcotest.test_case "gather" `Quick test_gather_schedule_equivalent;
          Alcotest.test_case "scatter" `Quick test_scatter_roundtrip;
          Alcotest.test_case "postcomp_write" `Quick test_postcomp_write_local_build;
          Alcotest.test_case "schedule cache" `Quick test_schedule_cache;
          Alcotest.test_case "charged bytes use element size" `Quick
            test_exchange_charged_bytes;
        ] );
      ( "structured",
        [
          Alcotest.test_case "multicast" `Quick test_multicast;
          Alcotest.test_case "transfer slab" `Quick test_transfer_slab;
          Alcotest.test_case "overlap_shift" `Quick test_overlap_shift;
          Alcotest.test_case "overlap_shift 2d" `Quick test_overlap_shift_2d;
          Alcotest.test_case "temporary_shift" `Quick test_temporary_shift;
          Alcotest.test_case "multicast_shift" `Quick test_multicast_shift;
          Alcotest.test_case "concat" `Quick test_concat;
        ] );
      ( "intrinsics",
        [
          Alcotest.test_case "cshift/eoshift" `Quick test_cshift_eoshift;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "replicated dims" `Quick test_reduction_replicated_dim;
          Alcotest.test_case "maxloc first" `Quick test_maxloc_first_occurrence;
          Alcotest.test_case "count/any/all" `Quick test_count_any_all;
          Alcotest.test_case "dotproduct" `Quick test_dotproduct;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "reshape" `Quick test_reshape;
          Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "matmul summa vs replicated" `Quick test_matmul_summa_vs_replicated;
          Alcotest.test_case "spread" `Quick test_spread;
        ] );
      ( "redistribute",
        [
          Alcotest.test_case "roundtrip" `Quick test_redistribute_roundtrip;
          Alcotest.test_case "message bound" `Quick test_redistribute_no_preprocessing_messages;
        ] );
      ("properties", qsuite);
    ]
